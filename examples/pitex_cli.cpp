// pitex_cli: command-line PITEX explorer.
//
// Usage:
//   pitex_cli gen <lastfm|diggs|dblp|twitter> <scale> <out.pitex>
//       Generate a Table-2 analog dataset and save it.
//   pitex_cli query <net.pitex> <user> <k> [method] [index.rridx]
//       Answer a PITEX query on a saved network. method is one of
//       mc, rr, lazy, lt, tim, indexest, indexest+, delaymat
//       (default: lazy). Index methods load `index.rridx` when given
//       instead of rebuilding.
//   pitex_cli stats <net.pitex> [--format=json|prom] [--out=<file>]
//       Print network statistics, then run a short deterministic
//       serving burst and dump the metrics registry snapshot, the
//       hot-counter table, and the event journal (docs/observability.md)
//       in the chosen format (default json) to stdout or --out.
//   pitex_cli index <net.pitex> <out.rridx> [theta_per_vertex]
//       Build the RR-Graph index offline and persist it.
//   pitex_cli plan <net.pitex> <expected_queries> <k>
//       Price online sampling vs the index for a workload.
//   pitex_cli screen <net.pitex> <count>
//       Top users by envelope influence (bottom-k sketches).
//   pitex_cli seeds <net.pitex> <k_seeds> <tag> [tag...]
//       Topic-aware influence maximization for a fixed tag set.
//   pitex_cli batch <net.pitex> <queries> <k> <threads> [method]
//       Answer a batch of queries across a worker pool and report
//       throughput.
//   pitex_cli serve <net.pitex> <queries> <updates> <threads> [wal_dir]
//             [--stats-out=<file>] [--stats-format=json|prom]
//       Run the serving tier end to end: answer queries, fold in edge
//       updates, and report the full ServiceStats dump. With a wal_dir
//       the service is durable (write-ahead log + checkpoints) and
//       recovers whatever state the directory already holds. With
//       --stats-out the final metrics snapshot + event journal are
//       written to the file (json by default) after serving, leaving
//       the human-readable stdout report unchanged.
//   pitex_cli replicate <net.pitex> <updates> <dir>
//             [--primary-stats-out=<file>] [--follower-stats-out=<file>]
//             [--stats-format=json|prom]
//       Run the replicated serving tier end to end in one process: a
//       durable primary ships its WAL to a follower over an in-process
//       transport, the follower replays and serves, then the primary
//       goes quiet and the follower is promoted -- and the deposed
//       primary's next write is fenced (docs/robustness.md). Fail
//       points armed via PITEX_FAILPOINTS (e.g. repl/ship_drop) inject
//       transport faults along the way; the CI chaos job drives this.
//       The stats flags dump each side's metrics + journal.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "src/core/batch_engine.h"
#include "src/core/engine.h"
#include "src/core/im_solver.h"
#include "src/core/planner.h"
#include "src/datasets/synthetic.h"
#include "src/index/index_io.h"
#include "src/model/network_io.h"
#include "src/obs/journal.h"
#include "src/obs/metrics.h"
#include "src/sampling/sketch_oracle.h"
#include "src/serve/pitex_service.h"
#include "src/serve/replication.h"
#include "src/serve/term_authority.h"
#include "src/util/timer.h"

namespace {

using namespace pitex;

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  pitex_cli gen <lastfm|diggs|dblp|twitter> <scale> <out>\n"
               "  pitex_cli query <net> <user> <k> [method] [index.rridx]\n"
               "  pitex_cli stats <net> [--format=json|prom] [--out=<file>]\n"
               "  pitex_cli index <net> <out.rridx> [theta_per_vertex]\n"
               "  pitex_cli plan <net> <expected_queries> <k>\n"
               "  pitex_cli screen <net> <count>\n"
               "  pitex_cli seeds <net> <k_seeds> <tag> [tag...]\n"
               "  pitex_cli batch <net> <queries> <k> <threads> [method]\n"
               "  pitex_cli serve <net> <queries> <updates> <threads> "
               "[wal_dir]\n"
               "             [--stats-out=<file>] [--stats-format=json|prom]\n"
               "  pitex_cli replicate <net> <updates> <dir>\n"
               "             [--primary-stats-out=<file>] "
               "[--follower-stats-out=<file>]\n"
               "             [--stats-format=json|prom]\n");
  return 2;
}

int CmdGen(int argc, char** argv) {
  if (argc != 5) return Usage();
  const std::string name = argv[2];
  const double scale = std::atof(argv[3]);
  DatasetSpec spec;
  if (name == "lastfm") {
    spec = LastfmSpec(scale);
  } else if (name == "diggs") {
    spec = DiggsSpec(scale);
  } else if (name == "dblp") {
    spec = DblpSpec(scale);
  } else if (name == "twitter") {
    spec = TwitterSpec(scale);
  } else {
    return Usage();
  }
  std::printf("generating %s at scale %.3f...\n", name.c_str(), scale);
  const SocialNetwork network = GenerateDataset(spec);
  if (!SaveNetwork(network, argv[4])) {
    std::fprintf(stderr, "error: cannot write %s\n", argv[4]);
    return 1;
  }
  std::printf("wrote %s: %zu vertices, %zu edges, %zu tags, %zu topics\n",
              argv[4], network.num_vertices(), network.num_edges(),
              network.tags.size(), network.topics.num_topics());
  return 0;
}

bool ParseMethod(const std::string& name, Method* method) {
  const struct {
    const char* name;
    Method method;
  } table[] = {
      {"mc", Method::kMc},           {"rr", Method::kRr},
      {"lazy", Method::kLazy},       {"lt", Method::kLt},
      {"tim", Method::kTim},         {"indexest", Method::kIndexEst},
      {"indexest+", Method::kIndexEstPlus},
      {"delaymat", Method::kDelayMat},
  };
  for (const auto& row : table) {
    if (name == row.name) {
      *method = row.method;
      return true;
    }
  }
  return false;
}

int CmdQuery(int argc, char** argv) {
  if (argc < 5 || argc > 7) return Usage();
  auto network = LoadNetwork(argv[2]);
  if (!network) {
    std::fprintf(stderr, "error: cannot load %s\n", argv[2]);
    return 1;
  }
  const auto user = static_cast<VertexId>(std::atoi(argv[3]));
  const auto k = static_cast<size_t>(std::atoi(argv[4]));
  if (user >= network->num_vertices() || k == 0 ||
      k > network->topics.num_tags()) {
    std::fprintf(stderr, "error: user or k out of range\n");
    return 1;
  }
  Method method = Method::kLazy;
  if (argc >= 6 && !ParseMethod(argv[5], &method)) return Usage();

  EngineOptions options;
  options.method = method;
  PitexEngine engine(network.operator->(), options);
  if (argc == 7) {
    std::string error;
    auto loaded = LoadRrIndex(*network, argv[6], &error);
    if (loaded == nullptr) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 1;
    }
    engine.AdoptRrIndex(std::move(loaded));
    std::printf("loaded index from %s\n", argv[6]);
  }
  Timer build_timer;
  engine.BuildIndex();
  if (engine.IndexSizeBytes() > 0) {
    std::printf("index: %.2f MB in %.2f s\n",
                static_cast<double>(engine.IndexSizeBytes()) / 1048576.0,
                build_timer.Seconds());
  }
  Timer query_timer;
  const PitexResult result = engine.Explore({.user = user, .k = k});
  std::printf("user %u, k=%zu, method=%s\n", user, k, MethodName(method));
  std::printf("best tags:");
  for (TagId w : result.tags) {
    std::printf(" %s", network->tags.Name(w).c_str());
  }
  std::printf("\nestimated spread: %.3f users\n", result.influence);
  std::printf("query time: %.3f s (%llu sets evaluated, %llu pruned)\n",
              query_timer.Seconds(),
              static_cast<unsigned long long>(result.sets_evaluated),
              static_cast<unsigned long long>(result.sets_pruned));
  return 0;
}

// --name=value flag matcher: fills *value and returns true on a match.
bool FlagValue(const char* arg, const char* name, std::string* value) {
  const size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0 || arg[n] != '=') return false;
  *value = arg + n + 1;
  return true;
}

// Renders the service's registry snapshot, the process-wide hot-counter
// table, and the event journal (oldest-first) to `out`. The journal
// section follows the metrics in both formats -- the dump is a
// diagnostic artifact, not a scrape endpoint (docs/observability.md).
void DumpObservability(PitexService& service, const std::string& format,
                       std::FILE* out) {
  const obs::MetricsSnapshot snapshot = service.SnapshotMetrics();
  const obs::MetricsSnapshot hot = obs::HotCountersSnapshot();
  if (format == "prom") {
    std::fputs(snapshot.ToPrometheus().c_str(), out);
    std::fputs(hot.ToPrometheus().c_str(), out);
  } else {
    std::fputs(snapshot.ToJson().c_str(), out);
    std::fputc('\n', out);
    std::fputs(hot.ToJson().c_str(), out);
    std::fputc('\n', out);
  }
  service.journal().DumpTo(out);
}

int CmdStats(int argc, char** argv) {
  std::string format = "json";
  std::string out_path;
  std::vector<char*> positional;
  for (int i = 2; i < argc; ++i) {
    if (FlagValue(argv[i], "--format", &format) ||
        FlagValue(argv[i], "--out", &out_path)) {
      continue;
    }
    positional.push_back(argv[i]);
  }
  if (positional.size() != 1) return Usage();
  if (format != "json" && format != "prom") return Usage();
  auto network = LoadNetwork(positional[0]);
  if (!network) {
    std::fprintf(stderr, "error: cannot load %s\n", positional[0]);
    return 1;
  }
  std::printf("|V| = %zu\n|E| = %zu\n|E|/|V| = %.2f\n|Z| = %zu\n|W| = %zu\n",
              network->num_vertices(), network->num_edges(),
              network->graph.AverageDegree(), network->topics.num_topics(),
              network->topics.num_tags());
  std::printf("tag-topic density = %.3f\n", network->topics.Density());

  // A short deterministic serving burst so the registry, hot-counter
  // table, and journal have something to say: two passes over the same
  // users (the second hits the epoch-keyed cache) plus one published
  // update batch (WAL-free here; `serve` covers the durable paths).
  ServeOptions options;
  options.engine.method = Method::kIndexEst;
  options.num_threads = 2;
  options.enable_updates = true;
  PitexService service(network.operator->(), options);
  service.Start();
  const auto users = SampleUserGroup(network->graph, UserGroup::kMid,
                                     /*count=*/8, /*seed=*/9);
  const size_t k = std::min<size_t>(3, network->topics.num_tags());
  std::vector<PitexQuery> queries;
  for (VertexId user : users) queries.push_back({.user = user, .k = k});
  service.ServeAll(queries);
  service.ServeAll(queries);
  std::vector<EdgeInfluenceUpdate> batch(1);
  batch[0].edge = 0;
  batch[0].entries = {{static_cast<TopicId>(0), 0.3}};
  service.ApplyUpdates(batch);

  std::FILE* out = stdout;
  if (!out_path.empty()) {
    out = std::fopen(out_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
      return 1;
    }
  }
  std::printf("\nobservability dump (%s, %zu queries + 1 update)%s%s:\n",
              format.c_str(), queries.size() * 2,
              out_path.empty() ? "" : " -> ", out_path.c_str());
  DumpObservability(service, format, out);
  if (out != stdout) std::fclose(out);
  return 0;
}

int CmdIndex(int argc, char** argv) {
  if (argc < 4 || argc > 5) return Usage();
  auto network = LoadNetwork(argv[2]);
  if (!network) {
    std::fprintf(stderr, "error: cannot load %s\n", argv[2]);
    return 1;
  }
  RrIndexOptions options;
  options.theta_per_vertex = argc == 5 ? std::atof(argv[4]) : 4.0;
  RrIndex index(*network, options);
  Timer timer;
  index.Build();
  std::string error;
  if (!SaveRrIndex(index, argv[3], &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  std::printf("built theta=%llu RR-Graphs in %.2f s, wrote %s (%.2f MB in "
              "memory)\n",
              static_cast<unsigned long long>(index.theta()), timer.Seconds(),
              argv[3], static_cast<double>(index.SizeBytes()) / 1048576.0);
  return 0;
}

int CmdPlan(int argc, char** argv) {
  if (argc != 5) return Usage();
  auto network = LoadNetwork(argv[2]);
  if (!network) {
    std::fprintf(stderr, "error: cannot load %s\n", argv[2]);
    return 1;
  }
  const QueryPlanner planner(network.operator->());
  PlannerInputs inputs;
  inputs.expected_queries = static_cast<uint64_t>(std::atoll(argv[3]));
  inputs.k = static_cast<size_t>(std::atoi(argv[4]));
  const PlanDecision decision = planner.Plan(inputs);
  const NetworkProfile& profile = planner.profile();
  std::printf("profile: avg reach %.1f, avg RR size %.1f, density %.3f\n",
              profile.avg_envelope_reach, profile.avg_rr_graph_size,
              profile.tag_topic_density);
  std::printf("online:  %.3g expected edge probes\n", decision.online_cost);
  std::printf("index:   %.3g build + %.3g serving\n",
              decision.index_build_cost, decision.index_query_cost);
  std::printf("plan:    %s (%s)\n", MethodName(decision.method),
              decision.rationale.c_str());
  return 0;
}

int CmdScreen(int argc, char** argv) {
  if (argc != 4) return Usage();
  auto network = LoadNetwork(argv[2]);
  if (!network) {
    std::fprintf(stderr, "error: cannot load %s\n", argv[2]);
    return 1;
  }
  SketchOracle oracle(network.operator->());
  oracle.Build();
  std::printf("sketches built in %.2f s (%.1f KB)\n", oracle.build_seconds(),
              static_cast<double>(oracle.SizeBytes()) / 1024.0);
  const auto count = static_cast<size_t>(std::atoi(argv[3]));
  for (const auto& [user, influence] : oracle.TopInfluencers(count)) {
    std::printf("user %-8u ~ %.1f potential spread\n", user, influence);
  }
  return 0;
}

int CmdSeeds(int argc, char** argv) {
  if (argc < 5) return Usage();
  auto network = LoadNetwork(argv[2]);
  if (!network) {
    std::fprintf(stderr, "error: cannot load %s\n", argv[2]);
    return 1;
  }
  ImOptions options;
  options.num_seeds = static_cast<size_t>(std::atoi(argv[3]));
  std::vector<TagId> tags;
  for (int i = 4; i < argc; ++i) {
    const auto tag = network->tags.Find(argv[i]);
    if (!tag) {
      std::fprintf(stderr, "error: unknown tag '%s'\n", argv[i]);
      return 1;
    }
    tags.push_back(*tag);
  }
  Timer timer;
  const ImResult result = SolveTopicAwareIm(*network, tags, options);
  std::printf("seed set (greedy RIS, %.2f s, theta=%llu):\n", timer.Seconds(),
              static_cast<unsigned long long>(result.theta));
  for (size_t i = 0; i < result.seeds.size(); ++i) {
    std::printf("  user %-8u marginal spread %.1f\n", result.seeds[i],
                result.marginal_spread[i]);
  }
  std::printf("total expected spread: %.1f users\n", result.spread);
  return 0;
}

int CmdBatch(int argc, char** argv) {
  if (argc < 6 || argc > 7) return Usage();
  auto network = LoadNetwork(argv[2]);
  if (!network) {
    std::fprintf(stderr, "error: cannot load %s\n", argv[2]);
    return 1;
  }
  const auto num_queries = static_cast<size_t>(std::atoi(argv[3]));
  const auto k = static_cast<size_t>(std::atoi(argv[4]));
  BatchOptions options;
  options.num_threads = static_cast<size_t>(std::atoi(argv[5]));
  options.engine.method = Method::kIndexEstPlus;
  if (argc == 7 && !ParseMethod(argv[6], &options.engine.method)) {
    return Usage();
  }

  const auto users = SampleUserGroup(network->graph, UserGroup::kMid,
                                     num_queries, /*seed=*/9);
  std::vector<PitexQuery> queries;
  for (size_t i = 0; i < num_queries; ++i) {
    queries.push_back({.user = users[i % users.size()], .k = k});
  }
  BatchEngine batch(network.operator->(), options);
  Timer prepare_timer;
  batch.Prepare();
  std::printf("prepared %s on %zu workers in %.2f s\n",
              MethodName(options.engine.method), options.num_threads,
              prepare_timer.Seconds());
  const auto results = batch.ExploreAll(queries);
  double total_influence = 0.0;
  for (const PitexResult& r : results) total_influence += r.influence;
  std::printf("%zu queries in %.3f s -> %.1f q/s, avg spread %.2f\n",
              results.size(), batch.last_batch_seconds(),
              static_cast<double>(results.size()) /
                  std::max(batch.last_batch_seconds(), 1e-9),
              total_influence / static_cast<double>(results.size()));
  return 0;
}

int CmdServe(int argc, char** argv) {
  std::string stats_out;
  std::string stats_format = "json";
  std::vector<char*> positional;
  for (int i = 2; i < argc; ++i) {
    if (FlagValue(argv[i], "--stats-out", &stats_out) ||
        FlagValue(argv[i], "--stats-format", &stats_format)) {
      continue;
    }
    positional.push_back(argv[i]);
  }
  if (positional.size() < 4 || positional.size() > 5) return Usage();
  if (stats_format != "json" && stats_format != "prom") return Usage();
  auto network = LoadNetwork(positional[0]);
  if (!network) {
    std::fprintf(stderr, "error: cannot load %s\n", positional[0]);
    return 1;
  }
  const auto num_queries = static_cast<size_t>(std::atoi(positional[1]));
  const auto num_updates = static_cast<size_t>(std::atoi(positional[2]));

  ServeOptions options;
  options.engine.method = Method::kIndexEst;
  options.num_threads = static_cast<size_t>(std::atoi(positional[3]));
  options.enable_updates = true;
  if (positional.size() == 5) {
    options.durability_dir = positional[4];
    options.checkpoint_every = 4;
  }
  PitexService service(network.operator->(), options);
  Timer start_timer;
  service.Start();  // durable runs recover the directory's state here
  const double start_seconds = start_timer.Seconds();

  const auto users = SampleUserGroup(network->graph, UserGroup::kMid,
                                     std::max<size_t>(num_queries, 1),
                                     /*seed=*/9);
  std::vector<PitexQuery> queries;
  for (size_t i = 0; i < num_queries; ++i) {
    queries.push_back({.user = users[i % users.size()], .k = 3});
  }
  size_t rejected = 0;
  size_t deferred = 0;
  for (size_t i = 0; i < num_updates; ++i) {
    std::vector<EdgeInfluenceUpdate> batch(1);
    batch[0].edge = static_cast<EdgeId>((i * 97) % network->num_edges());
    batch[0].entries = {
        {static_cast<TopicId>(i % network->topics.num_topics()),
         0.2 + 0.1 * static_cast<double>(i % 5)}};
    ApplyUpdatesOutcome outcome;
    if (service.ApplyUpdates(batch, &outcome) == 0) {
      // A deferred publish is not a rejection: the batch is applied
      // (and durable) -- only the epoch bump is pending.
      if (outcome == ApplyUpdatesOutcome::kPublishFailed) ++deferred;
      else ++rejected;
    }
  }
  const auto served = service.ServeAll(queries);
  double total_influence = 0.0;
  for (const ServedResult& r : served) total_influence += r.result.influence;

  const ServiceStats stats = service.Stats();
  std::printf("started in %.2f s (%llu WAL records replayed)\n",
              start_seconds,
              static_cast<unsigned long long>(stats.recovery_replayed_lsns));
  std::printf(
      "%zu queries, avg spread %.2f; %zu updates (%zu rejected, "
      "%zu deferred)\n",
      served.size(),
      served.empty() ? 0.0
                     : total_influence / static_cast<double>(served.size()),
      num_updates, rejected, deferred);
  std::printf("serving:    epoch %llu, %llu published, %llu cache hits, "
              "%llu steals, p95 %.2f ms\n",
              static_cast<unsigned long long>(stats.current_epoch),
              static_cast<unsigned long long>(stats.epochs_published),
              static_cast<unsigned long long>(stats.cache_hits),
              static_cast<unsigned long long>(stats.steals),
              stats.latency.p95 * 1e3);
  std::printf("durability: %llu WAL appends (%llu failed), %llu fsyncs, "
              "%llu checkpoints (%llu failed)\n",
              static_cast<unsigned long long>(stats.wal_appends),
              static_cast<unsigned long long>(stats.wal_append_failures),
              static_cast<unsigned long long>(stats.wal_fsyncs),
              static_cast<unsigned long long>(stats.checkpoints),
              static_cast<unsigned long long>(stats.checkpoint_failures));
  if (!stats_out.empty()) {
    std::FILE* out = std::fopen(stats_out.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "error: cannot write %s\n", stats_out.c_str());
      return 1;
    }
    DumpObservability(service, stats_format, out);
    std::fclose(out);
    std::printf("stats:      %s snapshot + journal -> %s\n",
                stats_format.c_str(), stats_out.c_str());
  }
  return 0;
}

// Polls `pred` every 2 ms until it holds or `timeout_ms` expires.
template <typename Pred>
bool WaitFor(Pred pred, int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return pred();
}

int CmdReplicate(int argc, char** argv) {
  std::string primary_out;
  std::string follower_out;
  std::string stats_format = "json";
  std::vector<char*> positional;
  for (int i = 2; i < argc; ++i) {
    if (FlagValue(argv[i], "--primary-stats-out", &primary_out) ||
        FlagValue(argv[i], "--follower-stats-out", &follower_out) ||
        FlagValue(argv[i], "--stats-format", &stats_format)) {
      continue;
    }
    positional.push_back(argv[i]);
  }
  if (positional.size() != 3) return Usage();
  if (stats_format != "json" && stats_format != "prom") return Usage();
  auto network = LoadNetwork(positional[0]);
  if (!network) {
    std::fprintf(stderr, "error: cannot load %s\n", positional[0]);
    return 1;
  }
  const auto num_updates = static_cast<size_t>(std::atoi(positional[1]));
  const std::string dir = positional[2];

  // Primary and follower share one term authority (the in-process
  // stand-in for a coordination service) and one in-process transport.
  InProcessTermAuthority authority(1);
  ServeOptions primary_options;
  primary_options.engine.method = Method::kIndexEst;
  primary_options.num_threads = 2;
  primary_options.enable_updates = true;
  primary_options.durability_dir = dir + "/primary";
  primary_options.checkpoint_every = 4;
  primary_options.term_authority = &authority;
  primary_options.term = 1;
  PitexService primary(network.operator->(), primary_options);

  auto [primary_end, follower_end] = MakeInProcessTransportPair();
  WalShipperOptions ship;
  ship.wal_dir = primary_options.durability_dir;
  ship.term = 1;
  WalShipper shipper(&primary, primary_end.get(), ship);

  FollowerOptions follower_options;
  follower_options.serve = primary_options;
  follower_options.serve.durability_dir = dir + "/follower";
  follower_options.heartbeat_timeout_ms = 250.0;
  follower_options.authority = &authority;
  FollowerService follower(network.operator->(), follower_end.get(),
                           follower_options);

  Timer start_timer;
  shipper.Start();  // starts the primary and ships the bootstrap checkpoint
  std::string error;
  if (!follower.Start(&error)) {
    std::fprintf(stderr, "error: follower bootstrap failed: %s\n",
                 error.c_str());
    return 1;
  }
  std::printf("replica pair up in %.2f s (term %llu)\n", start_timer.Seconds(),
              static_cast<unsigned long long>(primary.term()));

  // Replicated steady state: every primary batch must land on the
  // follower (fail points may drop/tear/reorder frames along the way --
  // the resync protocol has to converge regardless).
  size_t rejected = 0;
  for (size_t i = 0; i < num_updates; ++i) {
    std::vector<EdgeInfluenceUpdate> batch(1);
    batch[0].edge = static_cast<EdgeId>((i * 97) % network->num_edges());
    batch[0].entries = {
        {static_cast<TopicId>(i % network->topics.num_topics()),
         0.2 + 0.1 * static_cast<double>(i % 5)}};
    if (primary.ApplyUpdates(batch) == 0) ++rejected;
  }
  const uint64_t durable = primary.durable_lsn();
  if (!WaitFor([&] { return shipper.acked_lsn() >= durable; }, 30000)) {
    std::fprintf(stderr, "error: follower never caught up (acked %llu of "
                 "%llu)\n",
                 static_cast<unsigned long long>(shipper.acked_lsn()),
                 static_cast<unsigned long long>(durable));
    return 1;
  }
  const auto users = SampleUserGroup(network->graph, UserGroup::kMid,
                                     /*count=*/8, /*seed=*/9);
  std::vector<PitexQuery> queries;
  for (VertexId user : users) queries.push_back({.user = user, .k = 3});
  primary.ServeAll(queries);
  follower.service().ServeAll(queries);  // the follower serves while replaying
  std::printf("replicated %zu updates (%zu rejected): shipped lsn %llu, "
              "follower applied %llu, lag 0\n",
              num_updates, rejected,
              static_cast<unsigned long long>(shipper.shipped_lsn()),
              static_cast<unsigned long long>(follower.applied_lsn()));

  // Failover: the primary goes quiet (shipper stopped), the follower's
  // heartbeat timeout expires, and it promotes itself through the term
  // authority. The deposed primary's next write dies on the fence.
  shipper.Stop();
  if (!WaitFor([&] { return follower.promoted(); }, 15000)) {
    std::fprintf(stderr, "error: follower never promoted\n");
    return 1;
  }
  std::vector<EdgeInfluenceUpdate> post(1);
  post[0].edge = 0;
  post[0].entries = {{static_cast<TopicId>(0), 0.4}};
  ApplyUpdatesOutcome outcome;
  const uint64_t deposed = primary.ApplyUpdates(post, &outcome);
  const bool fenced =
      deposed == 0 && outcome == ApplyUpdatesOutcome::kFencedStaleTerm;
  const uint64_t accepted = follower.service().ApplyUpdates(post);
  follower.service().ServeAll(queries);
  std::printf("failover: follower promoted to term %llu; deposed primary "
              "%s; new primary %s\n",
              static_cast<unsigned long long>(follower.term()),
              fenced ? "fenced (stale term)" : "NOT FENCED -- bug",
              accepted != 0 ? "accepting writes" : "rejecting writes -- bug");

  auto dump = [&](PitexService& service, const std::string& path,
                  const char* who) {
    if (path.empty()) return true;
    std::FILE* out = std::fopen(path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
      return false;
    }
    DumpObservability(service, stats_format, out);
    std::fclose(out);
    std::printf("stats: %s %s snapshot + journal -> %s\n", who,
                stats_format.c_str(), path.c_str());
    return true;
  };
  if (!dump(primary, primary_out, "primary")) return 1;
  if (!dump(follower.service(), follower_out, "follower")) return 1;
  follower.Stop();
  return fenced && accepted != 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  if (std::strcmp(argv[1], "--help") == 0 ||
      std::strcmp(argv[1], "-h") == 0 ||
      std::strcmp(argv[1], "help") == 0) {
    Usage();
    return 0;
  }
  if (std::strcmp(argv[1], "gen") == 0) return CmdGen(argc, argv);
  if (std::strcmp(argv[1], "query") == 0) return CmdQuery(argc, argv);
  if (std::strcmp(argv[1], "stats") == 0) return CmdStats(argc, argv);
  if (std::strcmp(argv[1], "index") == 0) return CmdIndex(argc, argv);
  if (std::strcmp(argv[1], "plan") == 0) return CmdPlan(argc, argv);
  if (std::strcmp(argv[1], "screen") == 0) return CmdScreen(argc, argv);
  if (std::strcmp(argv[1], "seeds") == 0) return CmdSeeds(argc, argv);
  if (std::strcmp(argv[1], "batch") == 0) return CmdBatch(argc, argv);
  if (std::strcmp(argv[1], "serve") == 0) return CmdServe(argc, argv);
  if (std::strcmp(argv[1], "replicate") == 0) return CmdReplicate(argc, argv);
  return Usage();
}
