// Research profile explorer: the paper's Table-4 case study.
//
// Builds the planted co-authorship network with eight named researchers,
// asks PITEX for each researcher's five most influential research
// keywords, and scores the answers against the planted ground truth —
// printing a table shaped like the paper's Table 4.
//
// Run: ./examples/research_profile

#include <cstdio>
#include <string>

#include "src/core/engine.h"
#include "src/datasets/case_study.h"

int main() {
  std::printf("building co-authorship network with planted ground truth...\n");
  const pitex::CaseStudyData data = pitex::GenerateCaseStudy({});
  std::printf("network: %zu authors, %zu citation/co-author edges\n\n",
              data.network.num_vertices(), data.network.num_edges());

  pitex::EngineOptions options;
  options.method = pitex::Method::kLazy;
  options.eps = 0.4;
  options.min_samples = 1000;
  options.max_samples = 6000;
  pitex::PitexEngine engine(&data.network, options);

  std::printf("%-14s %-52s %s\n", "researcher", "influential tags",
              "accuracy");
  double total = 0.0;
  for (const auto& researcher : data.researchers) {
    const pitex::PitexResult result =
        engine.Explore({.user = researcher.vertex, .k = 5});
    std::string tags;
    for (pitex::TagId w : result.tags) {
      if (!tags.empty()) tags += ", ";
      tags += data.network.tags.Name(w);
    }
    const double accuracy =
        pitex::CaseStudyAccuracy(result.tags, researcher.ground_truth);
    total += accuracy;
    std::printf("%-14s %-52s %.2f\n", researcher.name.c_str(), tags.c_str(),
                accuracy);
  }
  std::printf("\naverage accuracy: %.2f (paper's annotator study: 0.78)\n",
              total / static_cast<double>(data.researchers.size()));
  return 0;
}
