// Example: the production serving workflow.
//
// A deployment rarely answers one PITEX query on a frozen network. This
// walkthrough covers the full life cycle the extension modules support:
//
//   1. plan    — QueryPlanner prices online sampling vs. the index for
//                the expected workload;
//   2. screen  — SketchOracle finds the users worth querying at all;
//   3. build   — the RR-Graph index is built once and persisted to disk
//                (index_io), then reloaded as a serving replica;
//   4. serve   — PitexService answers a query stream across a
//                work-stealing worker pool with per-worker engine
//                replicas and an epoch-keyed result cache;
//   5. evolve  — ApplyUpdates repairs the shadow DynamicRrIndex master
//                and hot-swaps a new immutable snapshot epoch while the
//                service keeps answering;
//   6. survive — overload drill: per-query deadlines degrade gracefully,
//                admission control sheds a hot-user flood, and an
//                injected publish fault is retried through
//                (docs/robustness.md);
//   7. recover — restart drill: with a durability_dir every acknowledged
//                update is in the write-ahead log before the caller
//                hears about it, so a new process on the same directory
//                (checkpoint + WAL replay) resumes bit-identically
//                where the old one stopped (docs/robustness.md,
//                "Durability");
//   8. observe — observability drill: arm the span sampler, trace one
//                query end to end (admission -> queue wait -> solve ->
//                result), read the metrics registry snapshot with its
//                conservation identities and staleness gauges, and dump
//                the event journal (docs/observability.md);
//   9. replicate — failover drill: a WalShipper streams the primary's
//                write-ahead log to a FollowerService that replays and
//                serves in lockstep; when the primary goes quiet the
//                follower promotes itself through the shared term
//                authority, and the deposed primary's next write is
//                fenced — no split-brain (docs/robustness.md,
//                "Replication & failover").
//
// Run: ./build/examples/index_server

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "src/core/planner.h"
#include "src/datasets/synthetic.h"
#include "src/index/index_io.h"
#include "src/obs/journal.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/sampling/sketch_oracle.h"
#include "src/serve/pitex_service.h"
#include "src/serve/replication.h"
#include "src/serve/term_authority.h"
#include "src/util/failpoint.h"

int main() {
  using namespace pitex;

  // A diggs-shaped network stands in for the deployment's social graph.
  DatasetSpec spec = DiggsSpec(0.08);
  spec.seed = 2024;
  const SocialNetwork network = GenerateDataset(spec);
  std::printf("network: |V|=%zu |E|=%zu |Z|=%zu |Omega|=%zu\n\n",
              network.num_vertices(), network.num_edges(),
              network.topics.num_topics(), network.topics.num_tags());

  // -- 1. plan ------------------------------------------------------------
  const QueryPlanner planner(&network);
  PlannerInputs workload;
  workload.expected_queries = 10000;  // a day of traffic
  workload.k = 3;
  const PlanDecision decision = planner.Plan(workload);
  std::printf("planner: %s\n  -> %s\n\n", decision.rationale.c_str(),
              MethodName(decision.method));

  // -- 2. screen ----------------------------------------------------------
  SketchOptions sketch_options;
  sketch_options.sketch_size = 64;
  sketch_options.num_worlds = 32;
  SketchOracle sketch(&network, sketch_options);
  sketch.Build();
  const auto influencers = sketch.TopInfluencers(8);
  std::printf("screening: top users by envelope influence (sketch, %.0f KB, "
              "%.3fs build)\n",
              static_cast<double>(sketch.SizeBytes()) / 1024.0,
              sketch.build_seconds());
  for (const auto& [user, influence] : influencers) {
    std::printf("  user %-6u ~ %.1f potential spread\n", user, influence);
  }
  std::printf("\n");

  // -- 3. build + persist ---------------------------------------------------
  RrIndexOptions index_options;
  index_options.theta_per_vertex = 4.0;
  index_options.seed = 7;
  RrIndex index(network, index_options);
  index.Build();
  const std::string path = "/tmp/pitex_index_server.rridx";
  std::string error;
  if (!SaveRrIndex(index, path, &error)) {
    std::printf("save failed: %s\n", error.c_str());
    return 1;
  }
  auto replica = LoadRrIndex(network, path, &error);
  if (replica == nullptr) {
    std::printf("load failed: %s\n", error.c_str());
    return 1;
  }
  std::printf("index: theta=%llu built in %.3fs, persisted and reloaded "
              "(fingerprint-checked)\n\n",
              static_cast<unsigned long long>(index.theta()),
              index.build_seconds());

  // -- 4. serve -------------------------------------------------------------
  ServeOptions serve_options;
  serve_options.engine.method = decision.method == Method::kLazy
                                    ? Method::kIndexEstPlus  // index is built
                                    : decision.method;
  serve_options.engine.index_theta_per_vertex = index_options.theta_per_vertex;
  serve_options.engine.seed = index_options.seed;
  serve_options.num_threads = 4;
  serve_options.cache_capacity = 1024;
  serve_options.enable_updates = true;  // keep a repairable shadow master
  PitexService service(&network, serve_options);
  service.Start();

  // The influencer screen repeats hot users — exactly the stream shape
  // the epoch-keyed result cache absorbs. Serve each twice.
  std::vector<PitexQuery> queries;
  for (int round = 0; round < 2; ++round) {
    for (const auto& [user, influence] : influencers) {
      queries.push_back({.user = user, .k = 3});
    }
  }
  const auto served = service.ServeAll(queries);
  ServiceStats stats = service.Stats();
  std::printf("serving: %zu queries on %zu workers (epoch %llu): "
              "%llu cache hits, %llu steals, p95 %.2fms\n",
              served.size(), serve_options.num_threads,
              static_cast<unsigned long long>(stats.current_epoch),
              static_cast<unsigned long long>(stats.cache_hits),
              static_cast<unsigned long long>(stats.steals),
              stats.latency.p95 * 1e3);
  for (size_t i = 0; i < influencers.size(); ++i) {
    std::string tags;
    for (const TagId w : served[i].result.tags) {
      if (!tags.empty()) tags += ", ";
      tags += network.tags.Name(w);
    }
    std::printf("  user %-6u E[I]=%6.1f  selling points: %s%s\n",
                queries[i].user, served[i].result.influence, tags.c_str(),
                served[i].cache_hit ? "  (cached)" : "");
  }
  std::printf("\n");

  // -- 5. evolve ------------------------------------------------------------
  // The model drifts; repairs go to the shadow master and are published
  // as a new immutable epoch — in-flight queries finish on their
  // snapshot, the cache entries of the old epoch age out by keying.
  std::vector<EdgeInfluenceUpdate> drift(3);
  for (size_t i = 0; i < drift.size(); ++i) {
    drift[i].edge = static_cast<EdgeId>(i * 101 % network.num_edges());
    drift[i].entries = {{static_cast<TopicId>(i % spec.num_topics), 0.3}};
  }
  const uint64_t epoch = service.ApplyUpdates(drift);
  const auto refreshed = service.ServeAll(
      std::span<const PitexQuery>(queries.data(), influencers.size()));
  stats = service.Stats();
  std::printf("model drift: %zu edges re-learned -> hot-swapped to epoch "
              "%llu (%llu snapshots retired), answers refreshed:\n",
              drift.size(), static_cast<unsigned long long>(epoch),
              static_cast<unsigned long long>(stats.epochs_published - 1));
  for (size_t i = 0; i < refreshed.size(); ++i) {
    std::printf("  user %-6u E[I]=%6.1f (epoch %llu%s)\n", queries[i].user,
                refreshed[i].result.influence,
                static_cast<unsigned long long>(refreshed[i].epoch),
                refreshed[i].cache_hit ? ", cached" : "");
  }
  std::printf("\n");

  // -- 6. survive -----------------------------------------------------------
  // Overload drill on a bounded deployment: at most 32 queries in flight,
  // one principal capped at 200 qps (burst 4). The same knobs are
  // reachable without recompiling via PITEX_FAILPOINTS and ServeOptions.
  ServeOptions drill_options = serve_options;
  drill_options.cache_capacity = 0;  // measure the work, not the cache
  drill_options.admission.max_queue_depth = 32;
  drill_options.admission.user_rate_limit = 200.0;
  drill_options.admission.user_burst = 4.0;
  PitexService drilled(&network, drill_options);
  drilled.Start();

  // A latency-sensitive client sets a budget; the service answers with
  // whatever the solver has converged on by the deadline (`degraded`)
  // instead of blowing the SLO, and a burst past the queue bound is shed
  // at admission instead of growing the queue without bound.
  std::vector<PitexQuery> storm;
  for (int i = 0; i < 64; ++i) {
    PitexQuery q{.user = influencers[i % influencers.size()].first, .k = 3};
    if (i % 2 == 0) q.budget_seconds = 200e-6;  // 200 us: below the p95
    storm.push_back(q);
  }
  const auto drill_served = drilled.ServeAll(storm);
  size_t ok = 0, degraded = 0, expired = 0, shed = 0;
  for (const auto& r : drill_served) {
    switch (r.status) {
      case ServeStatus::kOk: ++ok; break;
      case ServeStatus::kDegraded: ++degraded; break;
      case ServeStatus::kDeadlineExpired: ++expired; break;
      case ServeStatus::kShed: ++shed; break;
    }
  }
  ServiceStats drill_stats = drilled.Stats();
  std::printf("overload drill: %zu queries -> %zu ok, %zu degraded, "
              "%zu expired, %zu shed, admitted p95 %.2fms\n",
              storm.size(), ok, degraded, expired, shed,
              drill_stats.latency.p95 * 1e3);

  // Now the queue has drained: a hot user floods back-to-back and is
  // rate-limited by its token bucket — the rest of the stream would be
  // unaffected (buckets are per-user).
  std::vector<PitexQuery> flood(
      24, PitexQuery{.user = influencers.front().first, .k = 3});
  const auto flood_served = drilled.ServeAll(flood);
  size_t flood_shed = 0;
  for (const auto& r : flood_served) {
    if (r.status == ServeStatus::kShed) ++flood_shed;
  }
  drill_stats = drilled.Stats();
  std::printf("hot-user flood: %zu back-to-back queries -> %zu shed "
              "(%llu queue-full, %llu rate-limited in the drill so far)\n",
              flood.size(), flood_shed,
              static_cast<unsigned long long>(drill_stats.shed_queue_full),
              static_cast<unsigned long long>(drill_stats.shed_rate_limited));

  // Fault drill: inject one freeze failure into the next publish and
  // watch the retry/backoff path absorb it — the epoch still advances.
  FailpointRegistry::Instance().Enable(
      "serve/publish_freeze",
      {.mode = FailpointMode::kError, .fires = 1});
  const uint64_t drilled_epoch = drilled.ApplyUpdates(drift);
  FailpointRegistry::Instance().DisableAll();
  drill_stats = drilled.Stats();
  std::printf("fault drill: 1 injected freeze failure -> publish retried "
              "%llu time(s), epoch %llu published anyway (%llu failures)\n",
              static_cast<unsigned long long>(drill_stats.publish_retries),
              static_cast<unsigned long long>(drilled_epoch),
              static_cast<unsigned long long>(drill_stats.publish_failures));

  // -- 7. restart and recover ----------------------------------------------
  // The same service, now durable: a directory holds the group-committed
  // write-ahead log plus periodic checkpoints, and ApplyUpdates only
  // acknowledges after its batch is fsynced. Kill the process at any
  // moment (tests/crash_recovery_test.cc does, with SIGKILL) and a
  // restart on the directory replays the tail and serves on.
  const std::string wal_dir = "/tmp/pitex_index_server_wal";
  std::filesystem::remove_all(wal_dir);
  ServeOptions durable_options = serve_options;
  durable_options.durability_dir = wal_dir;
  durable_options.checkpoint_every = 2;  // checkpoint every 2nd publish
  uint64_t down_epoch = 0;
  double durable_answer = 0.0;
  {
    PitexService durable(&network, durable_options);
    durable.Start();
    for (int round = 0; round < 3; ++round) {
      durable.ApplyUpdates(drift);  // each batch fsynced before the ack
    }
    down_epoch = durable.current_epoch();
    durable_answer = durable.Submit(queries.front()).get().result.influence;
    ServiceStats durable_stats = durable.Stats();
    std::printf("\ndurability: %llu batches logged (%llu fsyncs), "
                "%llu checkpoint(s) written, serving epoch %llu\n",
                static_cast<unsigned long long>(durable_stats.wal_appends),
                static_cast<unsigned long long>(durable_stats.wal_fsyncs),
                static_cast<unsigned long long>(durable_stats.checkpoints),
                static_cast<unsigned long long>(down_epoch));
  }  // process "dies" here; the directory is all that survives

  PitexService restarted(&network, durable_options);
  restarted.Start();  // loads the checkpoint, replays the WAL tail
  ServiceStats recovered_stats = restarted.Stats();
  const double recovered_answer =
      restarted.Submit(queries.front()).get().result.influence;
  std::printf("restart: recovered to epoch %llu (%llu LSNs replayed past "
              "the checkpoint), answers %s\n",
              static_cast<unsigned long long>(restarted.current_epoch()),
              static_cast<unsigned long long>(
                  recovered_stats.recovery_replayed_lsns),
              restarted.current_epoch() == down_epoch &&
                      recovered_answer == durable_answer
                  ? "bit-identical to the pre-restart service"
                  : "DIVERGED (bug!)");

  // -- 8. observe -----------------------------------------------------------
  // The recovered service keeps serving; now look inside it. Arm the
  // span sampler (every query until turned back off -- production would
  // use PITEX_TRACE_SAMPLE=1000 for one in a thousand) and trace one
  // query end to end. With -DPITEX_TRACING=OFF the sampler stays
  // disarmed and this prints an empty trace; everything else below
  // still works.
  obs::Tracer& tracer = obs::Tracer::Instance();
  tracer.SetSampleEvery(1);
  tracer.Clear();
  // A user this service has not answered yet, so the trace shows the
  // full miss path (a repeat would short-circuit at cache_probe).
  (void)restarted.ServeAll(
      std::span<const PitexQuery>(queries.data() + 1, 1));
  const auto spans = tracer.CollectAll();
  tracer.SetSampleEvery(0);
  std::printf("\ntraced query (%zu spans): where did the time go?\n",
              spans.size());
  for (const obs::SpanRecord& s : spans) {
    std::printf("  %-10s %8.1f us\n", obs::SpanKindName(s.kind),
                static_cast<double>(s.end_ns - s.start_ns) * 1e-3);
  }

  // The registry snapshot is one consistent pass: counters obey
  // conservation identities (every submitted query is accounted for,
  // terminally, exactly once) and the staleness gauges tie the serving
  // epoch to the newest acked LSN -- both are asserted under fault
  // storms in tests/serve_under_faults_test.cc.
  const obs::MetricsSnapshot snap = restarted.SnapshotMetrics();
  const uint64_t submitted = snap.CounterValue("pitex_queries_submitted_total");
  const uint64_t admitted = snap.CounterValue("pitex_queries_admitted_total");
  const uint64_t answered_ok = snap.CounterValue("pitex_queries_ok_total");
  std::printf("registry: %zu metrics; submitted=%llu admitted=%llu ok=%llu "
              "(conservation %s), staleness %lld batch(es) / %lld LSN(s)\n",
              snap.metrics.size(), static_cast<unsigned long long>(submitted),
              static_cast<unsigned long long>(admitted),
              static_cast<unsigned long long>(answered_ok),
              submitted == admitted +
                      snap.CounterValue("pitex_queries_shed_queue_full_total") +
                      snap.CounterValue("pitex_queries_shed_rate_limited_total")
                  ? "holds"
                  : "VIOLATED (bug!)",
              static_cast<long long>(snap.GaugeValue("pitex_staleness_batches")),
              static_cast<long long>(snap.GaugeValue("pitex_staleness_lsns")));

  // The journal is the flight recorder: every lifecycle event (epoch
  // swaps, WAL trouble, sheds, recovery replay) in one bounded ring,
  // dumped automatically on crash-adjacent paths and on demand here.
  restarted.journal().DumpTo(stdout);

  // -- 9. replicate and fail over -------------------------------------------
  // The durable service gains a warm standby: a WalShipper tails the
  // primary's committed WAL and streams it (checkpoint bootstrap, then
  // records) to a FollowerService that replays deterministically and
  // serves reads the whole time. The pair shares a term authority; when
  // the primary goes quiet past the heartbeat timeout the follower
  // promotes itself, and the old primary's next write is fenced.
  const std::string repl_dir = "/tmp/pitex_index_server_repl";
  std::filesystem::remove_all(repl_dir);
  InProcessTermAuthority authority(1);
  ServeOptions primary_options = durable_options;
  primary_options.durability_dir = repl_dir + "/primary";
  primary_options.term_authority = &authority;
  primary_options.term = 1;
  PitexService primary(&network, primary_options);
  auto [primary_end, follower_end] = MakeInProcessTransportPair();
  WalShipperOptions ship_options;
  ship_options.wal_dir = primary_options.durability_dir;
  WalShipper shipper(&primary, primary_end.get(), ship_options);
  FollowerOptions follower_options;
  follower_options.serve = durable_options;
  follower_options.serve.durability_dir = repl_dir + "/follower";
  follower_options.heartbeat_timeout_ms = 250.0;
  follower_options.authority = &authority;
  FollowerService follower(&network, follower_end.get(), follower_options);
  shipper.Start();
  std::string follower_error;
  if (!follower.Start(&follower_error)) {
    std::printf("follower bootstrap failed: %s\n", follower_error.c_str());
    return 1;
  }
  for (int round = 0; round < 3; ++round) {
    primary.ApplyUpdates(drift);  // group-committed, then shipped
  }
  // Semi-synchronous shipping: wait until the follower has confirmed
  // every durable record before reading its replica.
  const uint64_t durable_lsn = primary.durable_lsn();
  while (shipper.acked_lsn() < durable_lsn) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const double follower_answer =
      follower.service().Submit(queries.front()).get().result.influence;
  const double primary_answer =
      primary.Submit(queries.front()).get().result.influence;
  std::printf("\nreplication: %llu LSNs shipped and applied, replica lag 0, "
              "answers %s\n",
              static_cast<unsigned long long>(follower.applied_lsn()),
              follower_answer == primary_answer
                  ? "bit-identical on both replicas"
                  : "DIVERGED (bug!)");

  // Failover: stop shipping (the primary "dies"), let the heartbeat
  // timeout elect the follower, then watch the fence reject the deposed
  // primary's late write.
  shipper.Stop();
  while (!follower.promoted()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ApplyUpdatesOutcome deposed_outcome;
  const uint64_t deposed_epoch = primary.ApplyUpdates(drift, &deposed_outcome);
  const uint64_t new_epoch = follower.service().ApplyUpdates(drift);
  std::printf("failover: follower promoted to term %llu after heartbeat "
              "loss; deposed primary's write %s; new primary published "
              "epoch %llu\n",
              static_cast<unsigned long long>(follower.term()),
              deposed_epoch == 0 &&
                      deposed_outcome == ApplyUpdatesOutcome::kFencedStaleTerm
                  ? "fenced (stale term)"
                  : "ACCEPTED (split-brain bug!)",
              static_cast<unsigned long long>(new_epoch));
  follower.Stop();

  std::filesystem::remove_all(repl_dir);
  std::filesystem::remove_all(wal_dir);
  std::remove(path.c_str());
  return 0;
}
