// Example: the production serving workflow.
//
// A deployment rarely answers one PITEX query on a frozen network. This
// walkthrough covers the full life cycle the extension modules support:
//
//   1. plan    — QueryPlanner prices online sampling vs. the index for
//                the expected workload;
//   2. screen  — SketchOracle finds the users worth querying at all;
//   3. build   — the RR-Graph index is built once and persisted to disk
//                (index_io), then reloaded as a serving replica;
//   4. serve   — BatchEngine answers a query stream across workers from
//                the shared loaded index;
//   5. evolve  — DynamicRrIndex repairs the index when the influence
//                model drifts, instead of rebuilding it.
//
// Run: ./build/examples/index_server

#include <cstdio>
#include <string>
#include <vector>

#include "src/core/batch_engine.h"
#include "src/core/planner.h"
#include "src/datasets/synthetic.h"
#include "src/index/dynamic_index.h"
#include "src/index/index_io.h"
#include "src/sampling/sketch_oracle.h"

int main() {
  using namespace pitex;

  // A diggs-shaped network stands in for the deployment's social graph.
  DatasetSpec spec = DiggsSpec(0.08);
  spec.seed = 2024;
  const SocialNetwork network = GenerateDataset(spec);
  std::printf("network: |V|=%zu |E|=%zu |Z|=%zu |Omega|=%zu\n\n",
              network.num_vertices(), network.num_edges(),
              network.topics.num_topics(), network.topics.num_tags());

  // -- 1. plan ------------------------------------------------------------
  const QueryPlanner planner(&network);
  PlannerInputs workload;
  workload.expected_queries = 10000;  // a day of traffic
  workload.k = 3;
  const PlanDecision decision = planner.Plan(workload);
  std::printf("planner: %s\n  -> %s\n\n", decision.rationale.c_str(),
              MethodName(decision.method));

  // -- 2. screen ----------------------------------------------------------
  SketchOptions sketch_options;
  sketch_options.sketch_size = 64;
  sketch_options.num_worlds = 32;
  SketchOracle sketch(&network, sketch_options);
  sketch.Build();
  const auto influencers = sketch.TopInfluencers(8);
  std::printf("screening: top users by envelope influence (sketch, %.0f KB, "
              "%.3fs build)\n",
              static_cast<double>(sketch.SizeBytes()) / 1024.0,
              sketch.build_seconds());
  for (const auto& [user, influence] : influencers) {
    std::printf("  user %-6u ~ %.1f potential spread\n", user, influence);
  }
  std::printf("\n");

  // -- 3. build + persist ---------------------------------------------------
  RrIndexOptions index_options;
  index_options.theta_per_vertex = 4.0;
  index_options.seed = 7;
  RrIndex index(network, index_options);
  index.Build();
  const std::string path = "/tmp/pitex_index_server.rridx";
  std::string error;
  if (!SaveRrIndex(index, path, &error)) {
    std::printf("save failed: %s\n", error.c_str());
    return 1;
  }
  auto replica = LoadRrIndex(network, path, &error);
  if (replica == nullptr) {
    std::printf("load failed: %s\n", error.c_str());
    return 1;
  }
  std::printf("index: theta=%llu built in %.3fs, persisted and reloaded "
              "(fingerprint-checked)\n\n",
              static_cast<unsigned long long>(index.theta()),
              index.build_seconds());

  // -- 4. serve -------------------------------------------------------------
  BatchOptions batch_options;
  batch_options.engine.method = decision.method == Method::kLazy
                                    ? Method::kIndexEstPlus  // index is built
                                    : decision.method;
  batch_options.engine.index_theta_per_vertex = index_options.theta_per_vertex;
  batch_options.engine.seed = index_options.seed;
  batch_options.num_threads = 4;
  BatchEngine server(&network, batch_options);

  std::vector<PitexQuery> queries;
  for (const auto& [user, influence] : influencers) {
    queries.push_back({.user = user, .k = 3});
  }
  const auto results = server.ExploreAll(queries);
  std::printf("serving: %zu queries on %zu workers in %.3fs\n",
              results.size(), batch_options.num_threads,
              server.last_batch_seconds());
  for (size_t i = 0; i < results.size(); ++i) {
    std::string tags;
    for (const TagId w : results[i].tags) {
      if (!tags.empty()) tags += ", ";
      tags += network.tags.Name(w);
    }
    std::printf("  user %-6u E[I]=%6.1f  selling points: %s\n",
                queries[i].user, results[i].influence, tags.c_str());
  }
  std::printf("\n");

  // -- 5. evolve ------------------------------------------------------------
  DynamicRrIndex dynamic_index(network, index_options);
  dynamic_index.Build();
  std::vector<EdgeInfluenceUpdate> drift(3);
  for (size_t i = 0; i < drift.size(); ++i) {
    drift[i].edge = static_cast<EdgeId>(i * 101 % network.num_edges());
    drift[i].entries = {{static_cast<TopicId>(i % spec.num_topics), 0.3}};
  }
  dynamic_index.ApplyUpdates(drift);
  const auto& stats = dynamic_index.stats();
  std::printf("model drift: %llu edges re-learned -> examined %llu of %zu "
              "RR-Graphs, %llu changed\n",
              static_cast<unsigned long long>(stats.edges_updated),
              static_cast<unsigned long long>(stats.graphs_examined),
              dynamic_index.num_graphs(),
              static_cast<unsigned long long>(stats.graphs_changed));
  std::remove(path.c_str());
  return 0;
}
