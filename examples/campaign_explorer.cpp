// Campaign explorer: the paper's motivating scenario (Fig. 1).
//
// A political campaign wants to know which standpoints ("selling points")
// propagate furthest from each candidate through a re-tweet network. We
// simulate a campaign-season network with the synthetic dataset suite,
// pretend the top-degree users are candidates, and run PITEX with the
// fast RR-Graph index so repeated exploration is interactive.
//
// Run: ./examples/campaign_explorer

#include <cstdio>

#include "src/core/engine.h"
#include "src/datasets/synthetic.h"
#include "src/util/timer.h"

int main() {
  // A diggs-shaped network stands in for the re-tweet graph.
  pitex::DatasetSpec spec = pitex::DiggsSpec(0.15);
  spec.name = "campaign";
  spec.num_tags = 24;
  spec.num_topics = 8;
  spec.tag_topic_density = 0.25;
  std::printf("generating campaign network (%zu users)...\n",
              spec.num_vertices);
  const pitex::SocialNetwork network = pitex::GenerateDataset(spec);
  std::printf("network: %zu users, %zu follow edges, %zu hashtags, %zu topics\n",
              network.num_vertices(), network.num_edges(),
              network.topics.num_tags(), network.topics.num_topics());

  pitex::EngineOptions options;
  options.method = pitex::Method::kIndexEstPlus;
  options.index_theta_per_vertex = 8.0;
  pitex::PitexEngine engine(&network, options);

  pitex::Timer build_timer;
  engine.BuildIndex();
  std::printf("RR-Graph index: %.1f MB built in %.2f s\n",
              static_cast<double>(engine.IndexSizeBytes()) / (1024.0 * 1024.0),
              engine.IndexBuildSeconds());

  // The three highest out-degree users play the candidates.
  const auto candidates =
      pitex::SampleUserGroup(network.graph, pitex::UserGroup::kHigh, 3, 1);
  for (pitex::VertexId candidate : candidates) {
    pitex::Timer query_timer;
    const pitex::PitexResult result =
        engine.Explore({.user = candidate, .k = 3});
    std::printf(
        "\ncandidate user %u (%zu followers):\n  winning hashtags:",
        candidate, network.graph.OutDegree(candidate));
    for (pitex::TagId w : result.tags) {
      std::printf(" #%s", network.tags.Name(w).c_str());
    }
    std::printf(
        "\n  estimated reach: %.1f users | query time %.3f s "
        "(evaluated %llu tag sets, pruned %llu)\n",
        result.influence, query_timer.Seconds(),
        static_cast<unsigned long long>(result.sets_evaluated),
        static_cast<unsigned long long>(result.sets_pruned));
  }
  return 0;
}
