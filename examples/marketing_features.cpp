// Social media marketing: learn the propagation model from an action log,
// then explore influential product features.
//
// This exercises the full paper pipeline end to end:
//   1. simulate a "log of past propagation" (users re-sharing tagged
//      product posts) on a planted network;
//   2. learn p(e|z) and p(w|z) from the log with the TIC learner;
//   3. answer PITEX queries on the *learned* model — exactly what a
//      marketing team with only an interaction log would do.
//
// Run: ./examples/marketing_features

#include <cstdio>

#include "src/core/engine.h"
#include "src/datasets/synthetic.h"
#include "src/model/action_log.h"
#include "src/model/tic_learner.h"

int main() {
  // Ground-truth world: a lastfm-shaped network whose tags we rename to
  // product features.
  pitex::DatasetSpec spec = pitex::LastfmSpec(0.5);
  spec.name = "market";
  spec.num_tags = 12;
  spec.num_topics = 4;
  spec.tag_topic_density = 0.4;
  pitex::SocialNetwork truth = pitex::GenerateDataset(spec);

  const char* features[12] = {
      "high-tech",  "energy-saving", "budget",     "luxury",
      "compact",    "durable",       "eco",        "smart-home",
      "portable",   "professional",  "family",     "gaming"};
  pitex::TagCatalog catalog;
  for (const char* f : features) catalog.Intern(f);

  std::printf("simulating 4000 re-share cascades of tagged product posts...\n");
  pitex::Rng rng(2024);
  const pitex::ActionLog log =
      pitex::SimulateCascades(truth, {.num_cascades = 4000}, &rng);
  std::printf("log: %zu cascades, %zu activations\n", log.cascades.size(),
              log.TotalActivations());

  std::printf("learning TIC model (EM) from the log...\n");
  pitex::TicLearnerOptions learn_options;
  learn_options.num_topics = 4;
  learn_options.num_iterations = 25;
  const pitex::LearnedModel learned =
      pitex::LearnTicModel(truth.graph, 12, log, learn_options);

  // Assemble the learned network (same topology, learned probabilities).
  pitex::SocialNetwork network;
  network.graph = truth.graph;
  network.topics = learned.topics;
  network.influence = learned.influence;
  network.tags = catalog;

  pitex::EngineOptions options;
  options.method = pitex::Method::kLazy;
  options.eps = 0.4;
  options.min_samples = 1000;
  options.max_samples = 8000;
  pitex::PitexEngine engine(&network, options);

  const auto brands =
      pitex::SampleUserGroup(network.graph, pitex::UserGroup::kHigh, 3, 3);
  for (pitex::VertexId brand : brands) {
    const pitex::PitexResult result = engine.Explore({.user = brand, .k = 3});
    std::printf("\nbrand account %u should lead with:", brand);
    for (pitex::TagId w : result.tags) {
      std::printf(" [%s]", network.tags.Name(w).c_str());
    }
    std::printf("\n  projected reach %.1f users (learned model)\n",
                result.influence);
  }
  return 0;
}
