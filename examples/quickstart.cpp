// Quickstart: build a tiny topic-aware social network, ask PITEX for a
// user's best tags, and print the answer.
//
// This constructs the paper's running example (Fig. 2) by hand, so the
// output can be checked against Example 1: the best two tags for user u1
// are {w3, w4} with expected spread ~1.733.
//
// Run: ./examples/quickstart

#include <cstdio>

#include "src/core/engine.h"

namespace {

pitex::SocialNetwork BuildExampleNetwork() {
  pitex::SocialNetwork network;

  // 1) Topology: 7 users, 7 follow edges.
  pitex::GraphBuilder graph(7);
  graph.AddEdge(0, 1);  // u1 -> u2
  graph.AddEdge(0, 2);  // u1 -> u3
  graph.AddEdge(2, 3);  // u3 -> u4
  graph.AddEdge(2, 5);  // u3 -> u6
  graph.AddEdge(3, 5);  // u4 -> u6
  graph.AddEdge(3, 6);  // u4 -> u7
  graph.AddEdge(5, 6);  // u6 -> u7
  network.graph = graph.Build();

  // 2) Tag/topic model: 3 topics, 4 tags, likelihoods from Fig. 2(b).
  network.topics = pitex::TopicModel(3, 4);
  const double table[4][3] = {
      {0.6, 0.4, 0.0},
      {0.4, 0.6, 0.0},
      {0.0, 0.4, 0.6},
      {0.0, 0.4, 0.6},
  };
  const char* names[4] = {"infrastructure", "income-tax", "social-security",
                          "foreign-policy"};
  for (pitex::TagId w = 0; w < 4; ++w) {
    network.tags.Intern(names[w]);
    for (pitex::TopicId z = 0; z < 3; ++z) {
      network.topics.SetTagTopic(w, z, table[w][z]);
    }
  }

  // 3) Per-edge topic-wise influence probabilities p(e|z).
  pitex::InfluenceGraphBuilder influence(network.graph.num_edges());
  auto set = [&](pitex::EdgeId e,
                 std::initializer_list<pitex::EdgeTopicEntry> entries) {
    influence.SetEdgeTopics(e, std::vector<pitex::EdgeTopicEntry>(entries));
  };
  set(0, {{0, 0.4}});
  set(1, {{1, 0.5}, {2, 0.5}});
  set(2, {{0, 0.5}});
  set(3, {{2, 0.5}});
  set(4, {{2, 0.8}});
  set(5, {{2, 0.4}});
  set(6, {{2, 0.5}});
  network.influence = influence.Build();
  return network;
}

}  // namespace

int main() {
  const pitex::SocialNetwork network = BuildExampleNetwork();

  pitex::EngineOptions options;
  options.method = pitex::Method::kLazy;  // online lazy-propagation sampling
  options.eps = 0.2;
  options.min_samples = 5000;
  pitex::PitexEngine engine(&network, options);

  std::printf("PITEX quickstart: who does user u1 influence, and with what?\n");
  const pitex::PitexResult result = engine.Explore({.user = 0, .k = 2});

  std::printf("best %zu-tag set for u1:", result.tags.size());
  for (pitex::TagId w : result.tags) {
    std::printf(" %s", network.tags.Name(w).c_str());
  }
  std::printf("\nestimated influence spread: %.3f users\n", result.influence);
  std::printf("tag sets evaluated: %llu, pruned: %llu, samples: %llu\n",
              static_cast<unsigned long long>(result.sets_evaluated),
              static_cast<unsigned long long>(result.sets_pruned),
              static_cast<unsigned long long>(result.total_samples));

  // Direct estimation for a specific tag set (Example 1 reports 1.5125).
  const pitex::TagId w1w2[] = {0, 1};
  const pitex::Estimate est = engine.EstimateInfluence(0, w1w2);
  std::printf("E[I(u1 | {infrastructure, income-tax})] ~= %.4f (paper: 1.5125)\n",
              est.influence);
  return 0;
}
