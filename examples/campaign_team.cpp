// Example: composing influence maximization with PITEX.
//
// The Fig. 1 scenario, one step earlier: before a campaign asks "which
// standpoints should each surrogate push?" (PITEX), it asks "which
// surrogates should speak at all?" (influence maximization — the
// related-work problem of Sec. 2). This example runs both:
//
//   1. pick the campaign's core message: the tag set the whole network
//      responds to most (the topic with the widest tag support);
//   2. recruit the team: greedy RIS seeds maximizing the message's
//      expected spread (SolveTopicAwareIm);
//   3. brief each member: their personal top-k selling points via PITEX
//      (which may *differ* from the campaign message — each member
//      influences their own audience best with their own tags).
//
// Run: ./build/examples/campaign_team

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "src/core/engine.h"
#include "src/core/im_solver.h"
#include "src/datasets/synthetic.h"

int main() {
  using namespace pitex;

  DatasetSpec spec = LastfmSpec(0.8);
  spec.seed = 99;
  const SocialNetwork network = GenerateDataset(spec);
  std::printf("network: |V|=%zu |E|=%zu |Z|=%zu |Omega|=%zu\n\n",
              network.num_vertices(), network.num_edges(),
              network.topics.num_topics(), network.topics.num_tags());

  // -- 1. campaign message: top tags of the best-supported topic --------
  const TopicModel& topics = network.topics;
  TopicId message_topic = 0;
  size_t best_support = 0;
  for (TopicId z = 0; z < topics.num_topics(); ++z) {
    size_t support = 0;
    for (TagId w = 0; w < topics.num_tags(); ++w) {
      support += (topics.TagTopic(w, z) > 0.0);
    }
    if (support > best_support) {
      best_support = support;
      message_topic = z;
    }
  }
  std::vector<TagId> ranked(topics.num_tags());
  for (TagId w = 0; w < topics.num_tags(); ++w) ranked[w] = w;
  const size_t take = std::min<size_t>(3, std::max<size_t>(1, best_support));
  std::partial_sort(ranked.begin(),
                    ranked.begin() + static_cast<ptrdiff_t>(take),
                    ranked.end(), [&](TagId a, TagId b) {
                      return topics.TagTopic(a, message_topic) >
                             topics.TagTopic(b, message_topic);
                    });
  ranked.resize(take);
  std::string message;
  for (const TagId w : ranked) {
    if (!message.empty()) message += ", ";
    message += network.tags.Name(w);
  }
  std::printf("campaign message (topic %u): %s\n\n", message_topic,
              message.c_str());

  // -- 2. recruit the team (influence maximization) ---------------------
  ImOptions im_options;
  im_options.num_seeds = 5;
  im_options.theta_per_vertex = 8.0;
  const ImResult team = SolveTopicAwareIm(network, ranked, im_options);
  std::printf("campaign team (greedy RIS, expected spread %.1f users):\n",
              team.spread);
  for (size_t i = 0; i < team.seeds.size(); ++i) {
    std::printf("  member %u: +%.1f users\n", team.seeds[i],
                team.marginal_spread[i]);
  }
  std::printf("\n");

  // -- 3. brief each member (PITEX) -------------------------------------
  EngineOptions options;
  options.method = Method::kIndexEstPlus;
  options.index_theta_per_vertex = 4.0;
  PitexEngine engine(&network, options);
  engine.BuildIndex();

  std::printf("personal selling points (PITEX, k = 3):\n");
  for (const VertexId member : team.seeds) {
    const PitexResult brief = engine.Explore({.user = member, .k = 3});
    std::string tags;
    for (const TagId w : brief.tags) {
      if (!tags.empty()) tags += ", ";
      tags += network.tags.Name(w);
    }
    std::printf("  member %-6u E[I]=%5.1f  %s\n", member, brief.influence,
                tags.c_str());
  }
  std::printf(
      "\nnote how members' personal tags can deviate from the campaign "
      "message:\nthe best tags *for a user* (PITEX) and the best users "
      "*for a tag set* (IM)\nare different optimizations — the paper's "
      "Sec. 2 contrast, made runnable.\n");
  return 0;
}
