// Monte-Carlo influence estimation (Sec. 4, after Kempe et al. [19]).
//
// Each sample instance runs a forward IC simulation from u, probing every
// out-edge of every activated vertex with a Bernoulli coin. The estimate is
// the mean activated count. Sampling stops early via the martingale rule of
// SampleSizePolicy. MC's weakness (Example 2 of the paper): a high-out-
// degree, low-probability source probes all its edges in every instance.

#ifndef PITEX_SRC_SAMPLING_MC_SAMPLER_H_
#define PITEX_SRC_SAMPLING_MC_SAMPLER_H_

#include <cstdint>
#include <vector>

#include "src/sampling/influence_estimator.h"
#include "src/sampling/sample_size.h"
#include "src/util/random.h"

namespace pitex {

class McSampler final : public InfluenceOracle {
 public:
  McSampler(const Graph& graph, SampleSizePolicy policy, uint64_t seed);

  Estimate EstimateInfluence(VertexId u, const EdgeProbFn& probs) override;
  const char* Name() const override { return "MC"; }

 private:
  const Graph& graph_;
  SampleSizePolicy policy_;
  Rng rng_;
  // Scratch reused across calls: epoch-stamped visited marks.
  std::vector<uint32_t> visit_epoch_;
  uint32_t epoch_ = 0;
};

}  // namespace pitex

#endif  // PITEX_SRC_SAMPLING_MC_SAMPLER_H_
