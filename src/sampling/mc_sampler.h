// Monte-Carlo influence estimation (Sec. 4, after Kempe et al. [19]).
//
// Each sample instance runs a forward IC simulation from u, probing every
// out-edge of every activated vertex with a Bernoulli coin. The estimate is
// the mean activated count. Sampling stops early via the martingale rule of
// SampleSizePolicy. MC's weakness (Example 2 of the paper): a high-out-
// degree, low-probability source probes all its edges in every instance —
// which is exactly why it benefits the most from the self-materialized
// probability table the reachability sweep fills (ReachScratch::edge_prob):
// every repeat probe becomes an array load instead of a virtual sparse
// dot product.

#ifndef PITEX_SRC_SAMPLING_MC_SAMPLER_H_
#define PITEX_SRC_SAMPLING_MC_SAMPLER_H_

#include <cstdint>
#include <vector>

#include "src/sampling/estimator_common.h"
#include "src/sampling/influence_estimator.h"
#include "src/sampling/sample_size.h"
#include "src/util/random.h"

namespace pitex {

class McSampler final : public InfluenceOracle {
 public:
  McSampler(const Graph& graph, SampleSizePolicy policy, uint64_t seed);

  Estimate EstimateInfluence(VertexId u, const EdgeProbFn& probs) override;
  const char* Name() const override { return "MC"; }

 private:
  // The simulation loop; all probability reads go through `table`.
  Estimate EstimateImpl(VertexId u, const double* table);

  const Graph& graph_;
  SampleSizePolicy policy_;
  double threshold_;  // cached policy_.StoppingThreshold()
  Rng rng_;
  // Scratch reused across calls: epoch-stamped visited marks plus the
  // simulation stack and the reachability sweep.
  std::vector<uint32_t> visit_epoch_;
  uint32_t epoch_ = 0;
  std::vector<VertexId> stack_;
  ReachScratch reach_;
};

}  // namespace pitex

#endif  // PITEX_SRC_SAMPLING_MC_SAMPLER_H_
