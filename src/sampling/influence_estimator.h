// Estimator interfaces shared by the online samplers (MC, RR, Lazy, TIM)
// and the index-based estimators (IndexEst, IndexEst+, DelayMat).
//
// Every PITEX algorithm reduces influence estimation to "expected IC spread
// from u when edge e activates with probability f(e)" for some edge
// probability function f: the true tag-set probabilities p(e|W) (Eq. 1),
// the Lemma-8 upper bounds p+(e|W) used by best-effort exploration, or the
// index envelope p(e) = max_z p(e|z). The EdgeProbFn abstraction lets one
// estimator implementation serve all three.

#ifndef PITEX_SRC_SAMPLING_INFLUENCE_ESTIMATOR_H_
#define PITEX_SRC_SAMPLING_INFLUENCE_ESTIMATOR_H_

#include <cstdint>

#include "src/model/influence_graph.h"

namespace pitex {

/// Edge activation probability function. Implementations must be pure
/// (same EdgeId -> same probability for the lifetime of the call).
class EdgeProbFn {
 public:
  virtual ~EdgeProbFn() = default;
  /// Activation probability of edge e, in [0, 1].
  virtual double Prob(EdgeId e) const = 0;
  /// When non-null: a dense table with table[e] == Prob(e) for every edge
  /// of the graph. Sampler inner loops index it directly, skipping the
  /// virtual dispatch (see MaterializedProbs in estimator_common.h).
  virtual const double* DenseTable() const { return nullptr; }
};

/// p(e|W): the true activation probabilities under posterior p(z|W).
class PosteriorProbs final : public EdgeProbFn {
 public:
  PosteriorProbs(const InfluenceGraph& influence,
                 const TopicPosterior& posterior)
      : influence_(influence), posterior_(posterior) {}
  double Prob(EdgeId e) const override {
    return influence_.EdgeProb(e, posterior_);
  }

 private:
  const InfluenceGraph& influence_;
  const TopicPosterior& posterior_;
};

/// p(e) = max_z p(e|z): the envelope used for RR-Graph generation (Def. 2).
class EnvelopeProbs final : public EdgeProbFn {
 public:
  explicit EnvelopeProbs(const InfluenceGraph& influence)
      : influence_(influence) {}
  double Prob(EdgeId e) const override { return influence_.MaxProb(e); }

 private:
  const InfluenceGraph& influence_;
};

/// Result of one influence estimation.
struct Estimate {
  /// Estimated expected spread E[I(u|W)] (>= 1: the source is active).
  double influence = 0.0;
  /// Sample standard error of `influence`: the usual s / sqrt(n) over
  /// the estimator's i.i.d. observations. 0 when not applicable
  /// (deterministic estimators like TIM, or fewer than two samples).
  /// `influence +- 2 * std_error` is an approximate 95% interval.
  double std_error = 0.0;
  /// Number of sample instances generated (0 for deterministic methods).
  uint64_t samples = 0;
  /// Number of edge probes performed — the complexity measure of Sec. 4 /
  /// Fig. 13.
  uint64_t edges_visited = 0;
};

/// Standard error of a sample mean given the accumulated sum and sum of
/// squares of n i.i.d. observations; 0 for n < 2. Numerical noise that
/// would make the variance negative is clamped.
double SampleMeanStdError(double sum, double sum_squares, uint64_t n);

/// An influence oracle answers spread queries for arbitrary edge
/// probability functions. Online oracles sample on the fly; index oracles
/// consult pre-built RR-Graphs.
class InfluenceOracle {
 public:
  virtual ~InfluenceOracle() = default;

  /// Estimates the expected IC spread from `u` with activation
  /// probabilities `probs`.
  virtual Estimate EstimateInfluence(VertexId u, const EdgeProbFn& probs) = 0;

  /// Human-readable method name for logs and benchmark tables.
  virtual const char* Name() const = 0;
};

/// BFS over edges with probs.Prob(e) > 0: computes R_W(u) and |E_W(u)| for
/// an arbitrary probability function (generalizes ComputeReachableSet).
ReachableSet ComputeReachable(const Graph& graph, const EdgeProbFn& probs,
                              VertexId u);

}  // namespace pitex

#endif  // PITEX_SRC_SAMPLING_INFLUENCE_ESTIMATOR_H_
