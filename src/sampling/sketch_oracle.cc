#include "src/sampling/sketch_oracle.h"

#include <algorithm>
#include <limits>

#include "src/util/check.h"
#include "src/util/random.h"
#include "src/util/timer.h"

namespace pitex {

namespace {

constexpr float kInf = std::numeric_limits<float>::infinity();

// Merges sorted `other` into sorted `dst`, keeping the k smallest.
// Returns true when dst changed.
bool MergeBottomK(std::vector<float>* dst, const std::vector<float>& other,
                  size_t k, std::vector<float>* scratch) {
  if (other.empty()) return false;
  scratch->clear();
  std::merge(dst->begin(), dst->end(), other.begin(), other.end(),
             std::back_inserter(*scratch));
  scratch->erase(std::unique(scratch->begin(), scratch->end()),
                 scratch->end());
  if (scratch->size() > k) scratch->resize(k);
  if (*scratch == *dst) return false;
  dst->swap(*scratch);
  return true;
}

}  // namespace

SketchOracle::SketchOracle(const SocialNetwork* network,
                           const SketchOptions& options)
    : network_(network), options_(options) {
  PITEX_CHECK(network != nullptr);
  options_.sketch_size = std::max<size_t>(2, options_.sketch_size);
  options_.num_worlds = std::max<size_t>(1, options_.num_worlds);
}

void SketchOracle::Build() {
  PITEX_CHECK_MSG(!built_, "Build() called twice");
  built_ = true;
  Timer timer;

  const size_t n = network_->num_vertices();
  const size_t k = options_.sketch_size;
  const Graph& graph = network_->graph;
  const InfluenceGraph& influence = network_->influence;

  // Global accumulating sketches.
  std::vector<std::vector<float>> global(n);

  Rng rng(options_.seed);
  std::vector<uint8_t> live(network_->num_edges());
  std::vector<std::vector<float>> world(n);
  std::vector<float> scratch;

  for (size_t w = 0; w < options_.num_worlds; ++w) {
    // One envelope possible world: edge e is live with p(e).
    for (EdgeId e = 0; e < network_->num_edges(); ++e) {
      live[e] = rng.NextBernoulli(influence.MaxProb(e)) ? 1 : 0;
    }
    // Fresh per-vertex ranks; world sketches start as singletons.
    for (VertexId v = 0; v < n; ++v) {
      world[v].assign(1, static_cast<float>(rng.NextDouble()));
    }
    // Backward fix point: R(u) includes R(v) through every live edge
    // u -> v, so u's bottom-k absorbs v's. Converges within the longest
    // live path; each pass is O(|E| * k).
    bool changed = true;
    size_t passes = 0;
    while (changed && passes < n + 1) {
      changed = false;
      ++passes;
      for (VertexId u = 0; u < n; ++u) {
        for (const auto& [v, e] : graph.OutEdges(u)) {
          if (!live[e]) continue;
          changed |= MergeBottomK(&world[u], world[v], k, &scratch);
        }
      }
    }
    // Fold the world into the running global sketches. Ranks from
    // different worlds collide with probability 0, so the union is a
    // disjoint-element bottom-k merge.
    for (VertexId v = 0; v < n; ++v) {
      MergeBottomK(&global[v], world[v], k, &scratch);
    }
  }

  sketches_.assign(n * k, kInf);
  sketch_counts_.assign(n, 0);
  for (VertexId v = 0; v < n; ++v) {
    sketch_counts_[v] = static_cast<uint32_t>(global[v].size());
    std::copy(global[v].begin(), global[v].end(),
              sketches_.begin() + static_cast<ptrdiff_t>(v * k));
  }
  build_seconds_ = timer.Seconds();
}

double SketchOracle::EnvelopeInfluence(VertexId u) const {
  PITEX_CHECK_MSG(built_, "call Build() first");
  const size_t k = options_.sketch_size;
  const uint32_t count = sketch_counts_[u];
  double total;  // estimated |{(i, v) : v in R_i(u)}|
  if (count < k) {
    // The sketch saw every element: exact count.
    total = static_cast<double>(count);
  } else {
    const double tau = sketches_[u * k + (k - 1)];
    total = (static_cast<double>(k) - 1.0) / tau;
  }
  return std::max(1.0, total / static_cast<double>(options_.num_worlds));
}

std::vector<std::pair<VertexId, double>> SketchOracle::TopInfluencers(
    size_t count) const {
  PITEX_CHECK_MSG(built_, "call Build() first");
  std::vector<std::pair<VertexId, double>> all;
  all.reserve(network_->num_vertices());
  for (VertexId v = 0; v < network_->num_vertices(); ++v) {
    all.emplace_back(v, EnvelopeInfluence(v));
  }
  // The comparator is a strict total order (ties broken by vertex id), so
  // partial_sort of the leading `count` entries returns exactly what a
  // full stable sort + truncate would — in O(n log count) instead of
  // O(n log n), the usual screening case being count << n.
  const auto better = [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  };
  if (count < all.size()) {
    std::partial_sort(all.begin(),
                      all.begin() + static_cast<ptrdiff_t>(count), all.end(),
                      better);
    all.resize(count);
  } else {
    std::sort(all.begin(), all.end(), better);
  }
  return all;
}

size_t SketchOracle::SizeBytes() const {
  return sketches_.capacity() * sizeof(float) +
         sketch_counts_.capacity() * sizeof(uint32_t) + sizeof(SketchOracle);
}

std::vector<float> SketchOracle::SketchOf(VertexId u) const {
  const size_t k = options_.sketch_size;
  return {sketches_.begin() + static_cast<ptrdiff_t>(u * k),
          sketches_.begin() + static_cast<ptrdiff_t>(u * k + sketch_counts_[u])};
}

}  // namespace pitex
