// Shared estimator machinery for the online samplers: materialized edge
// probabilities and reusable reachability scratch.
//
// EdgeProbFn::Prob is a virtual call, and both the Eq.-1 posterior
// probabilities and the Lemma-8 bound probabilities perform a sparse dot
// product per call. The online samplers probe edges many times per
// estimation (every instance in MC, every initialization/re-arm in Lazy,
// plus the reachability BFS), so once a tag set or bound is fixed the
// probabilities are materialized into a flat reusable table the inner
// loops index directly — branch-free array loads, no virtual dispatch.
// Two flavors:
//
//  * the samplers self-materialize during their reachability sweep
//    (ReachScratch::edge_prob): the sweep already probes exactly the
//    edges the simulation can ever touch, so the table covers the
//    relevant subgraph in one pass at zero extra probes. Materializing
//    ALL |E| edges up front instead would invert the economics — on
//    small-reach queries the eager pass costs more than the whole
//    estimate (measured ~60x slower end-to-end on BM_BestEffortQuery);
//  * MaterializedProbs eagerly evaluates every edge once, for callers
//    that genuinely reuse the full table many times (the exact
//    possible-world oracle probes each edge 2^m times) or want to hand a
//    precomputed table to samplers via EdgeProbFn::DenseTable().
//
// Both tables store doubles, not floats: best-effort results are pinned
// bit-identical against the pre-materialization reference implementation
// (tests/best_effort_equivalence_test.cc), and a float round-trip would
// perturb the Bernoulli/geometric draws that consume the probabilities.

#ifndef PITEX_SRC_SAMPLING_ESTIMATOR_COMMON_H_
#define PITEX_SRC_SAMPLING_ESTIMATOR_COMMON_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "src/sampling/influence_estimator.h"
#include "src/util/thread_annotations.h"

namespace pitex {

/// A dense edge-probability table. Assign() is the single pass that
/// evaluates the source function; afterwards Prob is an array load and
/// DenseTable() lets hot loops skip the virtual call entirely.
class MaterializedProbs final : public EdgeProbFn {
 public:
  MaterializedProbs() = default;

  /// Fills the table with source.Prob(e) for every e in [0, num_edges).
  /// Reuses the table's capacity: zero allocations after the first call
  /// with the largest edge count.
  void Assign(const EdgeProbFn& source, size_t num_edges);

  double Prob(EdgeId e) const override { return table_[e]; }
  const double* DenseTable() const override { return table_.data(); }
  size_t size() const { return table_.size(); }

 private:
  std::vector<double> table_;
};

/// Epoch-validated lazy dense probability cache for samplers whose
/// probes can leave R_W(u) (the RR reverse BFS, triggering-set draws on
/// in-edges): each source edge is evaluated through the virtual Prob at
/// most once per Begin, later probes are array loads, and stale entries
/// from earlier calls cost nothing to discard. A caller-provided
/// DenseTable bypasses the fill entirely. Reused across calls; zero
/// allocations after the first Begin with the largest edge count.
class LazyEdgeProbCache {
 public:
  /// Starts a new estimation against `probs`.
  void Begin(const EdgeProbFn& probs, size_t num_edges) {
    source_ = &probs;
    dense_ = probs.DenseTable();
    if (dense_ != nullptr) return;
    if (table_.size() < num_edges) {
      table_.resize(num_edges);
      epoch_of_.assign(num_edges, 0);
      epoch_ = 0;
    }
    if (++epoch_ == 0) {  // epoch wrapped: drop all stale entries
      std::fill(epoch_of_.begin(), epoch_of_.end(), 0);
      epoch_ = 1;
    }
  }

  /// probs.Prob(e), cached. Valid until the next Begin.
  double Prob(EdgeId e) {
    if (dense_ != nullptr) return dense_[e];
    if (epoch_of_[e] != epoch_) {
      epoch_of_[e] = epoch_;
      table_[e] = source_->Prob(e);
    }
    return table_[e];
  }

  /// True when the source supplied a full DenseTable (no on-demand
  /// validation needed before bulk reads).
  bool has_dense() const { return dense_ != nullptr; }

  /// Raw dense view for handing to bulk readers (e.g. a
  /// TriggeringDistribution): entries are valid only where Prob was
  /// called since the last Begin (everywhere for a DenseTable source).
  std::span<const double> Table(size_t num_edges) const {
    return dense_ != nullptr
               ? std::span<const double>(dense_, num_edges)
               : std::span<const double>(table_.data(), table_.size());
  }

 private:
  const EdgeProbFn* source_ = nullptr;
  const double* dense_ = nullptr;
  std::vector<double> table_;
  std::vector<uint32_t> epoch_of_;
  uint32_t epoch_ = 0;
};

/// Reusable state for allocation-free reachability sweeps: epoch-stamped
/// visited marks (bumping the epoch invalidates all marks without touching
/// memory) plus the BFS stack and the output vertex list. `edge_prob` is
/// the samplers' self-materialized probability table: the sweep's lookup
/// writes every probed edge's probability into it, and since the sweep
/// probes every out-edge of every reachable vertex, all entries a
/// subsequent simulation from u can read are valid for the current call
/// (stale entries belong to edges the simulation cannot reach).
struct ReachScratch {
  std::vector<uint32_t> visit_epoch;
  uint32_t epoch = 0;
  std::vector<VertexId> stack;
  std::vector<VertexId> vertices;  // R_W(u), in discovery order
  std::vector<double> edge_prob;   // dense [EdgeId] -> p, see above
};

/// ComputeReachable without the allocations and without the internal-edge
/// counting pass (the samplers only consume |R_W(u)|). Fills
/// scratch->vertices in the same discovery order as ComputeReachable.
/// `prob` is any callable EdgeId -> double (a dense table lookup or a
/// virtual Prob call).
template <typename Lookup>
PITEX_NOALLOC void ComputeReachableInto(const Graph& graph, const Lookup& prob, VertexId u,
                          ReachScratch* scratch) {
  if (scratch->visit_epoch.size() < graph.num_vertices()) {
    scratch->visit_epoch.assign(graph.num_vertices(), 0);
    scratch->epoch = 0;
  }
  if (++scratch->epoch == 0) {  // epoch wrapped: drop all stale marks
    std::fill(scratch->visit_epoch.begin(), scratch->visit_epoch.end(), 0);
    scratch->epoch = 1;
  }
  const uint32_t epoch = scratch->epoch;
  scratch->stack.clear();
  scratch->vertices.clear();
  scratch->stack.push_back(u);
  scratch->visit_epoch[u] = epoch;
  scratch->vertices.push_back(u);
  while (!scratch->stack.empty()) {
    const VertexId v = scratch->stack.back();
    scratch->stack.pop_back();
    for (const auto& [w, e] : graph.OutEdges(v)) {
      if (prob(e) <= 0.0) continue;
      if (scratch->visit_epoch[w] != epoch) {
        scratch->visit_epoch[w] = epoch;
        scratch->vertices.push_back(w);
        scratch->stack.push_back(w);
      }
    }
  }
}

/// Runs the reachability sweep for `probs` from `u`, self-materializing
/// every probed edge's probability into scratch->edge_prob — unless the
/// caller already holds a dense table (EdgeProbFn::DenseTable), which is
/// used as-is. Returns the table the estimation loops should read; valid
/// until the next sweep on the same scratch.
PITEX_NOALLOC inline const double* SweepAndMaterialize(const Graph& graph,
                                         const EdgeProbFn& probs, VertexId u,
                                         ReachScratch* scratch) {
  if (const double* table = probs.DenseTable()) {
    ComputeReachableInto(
        graph, [table](EdgeId e) { return table[e]; }, u, scratch);
    return table;
  }
  scratch->edge_prob.resize(graph.num_edges());
  double* cache = scratch->edge_prob.data();
  ComputeReachableInto(
      graph,
      [&probs, cache](EdgeId e) {
        const double p = probs.Prob(e);
        cache[e] = p;
        return p;
      },
      u, scratch);
  return cache;
}

}  // namespace pitex

#endif  // PITEX_SRC_SAMPLING_ESTIMATOR_COMMON_H_
