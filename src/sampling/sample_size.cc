#include "src/sampling/sample_size.h"

#include <algorithm>
#include <cmath>

#include "src/util/chernoff.h"
#include "src/util/check.h"

namespace pitex {

double SampleSizePolicy::StoppingThreshold() const {
  PITEX_CHECK(eps > 0.0 && delta > 1.0);
  const double log_sets =
      use_phi ? LogPhi(num_tags, k) : LogBinomial(num_tags, k);
  const double log_terms = std::log(delta) + log_sets + std::log(2.0);
  return (2.0 + eps) / (eps * eps) * log_terms;
}

uint64_t SampleSizePolicy::SampleCap(uint64_t reachable_size) const {
  return SampleCapFor(StoppingThreshold(), reachable_size);
}

uint64_t SampleSizePolicy::SampleCapFor(double threshold,
                                        uint64_t reachable_size) const {
  const double cap =
      threshold * static_cast<double>(std::max<uint64_t>(reachable_size, 1));
  uint64_t theta = max_samples;
  if (cap < static_cast<double>(max_samples)) {
    theta = static_cast<uint64_t>(std::ceil(cap));
  }
  return std::clamp<uint64_t>(theta, min_samples, max_samples);
}

}  // namespace pitex
