// Linear Threshold (LT) propagation support — the paper's footnote 1
// notes the PITEX framework also applies to the LT model [14]; this
// sampler provides that extension.
//
// LT semantics: each vertex v draws a threshold theta_v ~ U[0,1] once; v
// activates as soon as the sum of incoming edge weights from active
// in-neighbors reaches theta_v. Edge weights are supplied by the same
// EdgeProbFn used everywhere else (p(e|W) under a tag set); weights
// accumulating past 1 are clamped, which realizes the standard
// "sum of in-weights <= 1" normalization degenerately.
//
// The estimator is a forward Monte-Carlo simulation with the same
// stopping rule as the IC samplers, so it plugs into both solvers and the
// engine unchanged.
//
// Hot path (the PR-3 dense-table treatment, see estimator_common.h): the
// reachability sweep self-materializes every probed edge's weight into a
// flat table, the simulation loop reads array entries instead of calling
// the virtual sparse-dot Prob(e), the lgamma-heavy stopping threshold is
// cached at construction, and all per-instance state lives in
// epoch-stamped member scratch — zero allocations at steady state.
// Results are pinned bit-identical to the pre-treatment implementation
// by tests/samplers_test.cc.

#ifndef PITEX_SRC_SAMPLING_LT_SAMPLER_H_
#define PITEX_SRC_SAMPLING_LT_SAMPLER_H_

#include <cstdint>
#include <vector>

#include "src/sampling/estimator_common.h"
#include "src/sampling/influence_estimator.h"
#include "src/sampling/sample_size.h"
#include "src/util/random.h"

namespace pitex {

class LtSampler final : public InfluenceOracle {
 public:
  LtSampler(const Graph& graph, SampleSizePolicy policy, uint64_t seed);

  Estimate EstimateInfluence(VertexId u, const EdgeProbFn& probs) override;
  const char* Name() const override { return "LT"; }

 private:
  const Graph& graph_;
  SampleSizePolicy policy_;
  const double threshold_;  // StoppingThreshold() is lgamma-heavy
  Rng rng_;
  // Forward reachability sweep scratch; the sweep self-materializes the
  // dense weight table the simulation loop reads (SweepAndMaterialize).
  ReachScratch reach_;
  // Per-instance scratch, epoch-stamped: touched (threshold drawn),
  // active, accumulated in-weight, plus the frontier stack.
  std::vector<uint32_t> epoch_;
  std::vector<double> threshold_v_;
  std::vector<double> accumulated_;
  std::vector<uint32_t> active_epoch_;
  std::vector<VertexId> frontier_;
  uint32_t current_epoch_ = 0;
};

}  // namespace pitex

#endif  // PITEX_SRC_SAMPLING_LT_SAMPLER_H_
