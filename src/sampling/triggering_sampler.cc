#include "src/sampling/triggering_sampler.h"

#include <algorithm>

namespace pitex {

void IcTriggering::SampleTriggeringSet(const Graph& graph, VertexId v,
                                       const EdgeProbFn& probs, Rng* rng,
                                       std::vector<EdgeId>* live) const {
  for (const auto& [tail, e] : graph.InEdges(v)) {
    const double p = probs.Prob(e);
    if (p > 0.0 && rng->NextBernoulli(p)) live->push_back(e);
  }
}

void LtTriggering::SampleTriggeringSet(const Graph& graph, VertexId v,
                                       const EdgeProbFn& probs, Rng* rng,
                                       std::vector<EdgeId>* live) const {
  double total = 0.0;
  for (const auto& [tail, e] : graph.InEdges(v)) total += probs.Prob(e);
  if (total <= 0.0) return;
  // With sum <= 1 the leftover mass selects nobody; with sum > 1 the
  // draw is renormalized (every in-weight profile is still a valid
  // categorical distribution).
  const double scale = std::max(total, 1.0);
  double pick = rng->NextDouble() * scale;
  for (const auto& [tail, e] : graph.InEdges(v)) {
    pick -= probs.Prob(e);
    if (pick < 0.0) {
      live->push_back(e);
      return;
    }
  }
  // pick landed in the [total, 1) leftover: empty triggering set.
}

TriggeringSampler::TriggeringSampler(const Graph& graph,
                                     const TriggeringDistribution* distribution,
                                     SampleSizePolicy policy, uint64_t seed)
    : graph_(graph),
      distribution_(distribution),
      policy_(policy),
      rng_(seed),
      decided_epoch_(graph.num_vertices(), 0),
      live_epoch_(graph.num_edges(), 0),
      active_epoch_(graph.num_vertices(), 0) {}

Estimate TriggeringSampler::EstimateInfluence(VertexId u,
                                              const EdgeProbFn& probs) {
  const ReachableSet reach = ComputeReachable(graph_, probs, u);
  const auto rw = static_cast<double>(reach.vertices.size());
  const double threshold = policy_.StoppingThreshold();
  const uint64_t cap = policy_.SampleCap(reach.vertices.size());

  Estimate result;
  uint64_t total_activated = 0;
  double sum_squares = 0.0;
  std::vector<VertexId> frontier;
  for (uint64_t i = 0; i < cap; ++i) {
    ++epoch_;
    const uint64_t before = total_activated;
    frontier.assign(1, u);
    active_epoch_[u] = epoch_;
    while (!frontier.empty()) {
      const VertexId x = frontier.back();
      frontier.pop_back();
      ++total_activated;
      for (const auto& [v, e] : graph_.OutEdges(x)) {
        if (active_epoch_[v] == epoch_) continue;
        // Draw T_v lazily on first probe; the draw is independent of the
        // probing order, so deferring it preserves the distribution.
        if (decided_epoch_[v] != epoch_) {
          decided_epoch_[v] = epoch_;
          scratch_live_.clear();
          distribution_->SampleTriggeringSet(graph_, v, probs, &rng_,
                                             &scratch_live_);
          result.edges_visited += graph_.InDegree(v);
          for (const EdgeId live : scratch_live_) live_epoch_[live] = epoch_;
        }
        if (live_epoch_[e] == epoch_) {
          active_epoch_[v] = epoch_;
          frontier.push_back(v);
        }
      }
    }
    ++result.samples;
    const auto instance_spread = static_cast<double>(total_activated - before);
    sum_squares += instance_spread * instance_spread;
    if (result.samples >= policy_.min_samples && rw > 0.0 &&
        static_cast<double>(total_activated) / rw >= threshold) {
      break;
    }
  }
  result.influence = static_cast<double>(total_activated) /
                     static_cast<double>(std::max<uint64_t>(result.samples, 1));
  result.std_error = SampleMeanStdError(static_cast<double>(total_activated),
                                        sum_squares, result.samples);
  return result;
}

}  // namespace pitex
