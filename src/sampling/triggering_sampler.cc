#include "src/sampling/triggering_sampler.h"

#include <algorithm>

namespace pitex {

void IcTriggering::SampleTriggeringSet(const Graph& graph, VertexId v,
                                       std::span<const double> edge_probs,
                                       Rng* rng,
                                       std::vector<EdgeId>* live) const {
  for (const auto& [tail, e] : graph.InEdges(v)) {
    const double p = edge_probs[e];
    if (p > 0.0 && rng->NextBernoulli(p)) live->push_back(e);
  }
}

void LtTriggering::SampleTriggeringSet(const Graph& graph, VertexId v,
                                       std::span<const double> edge_probs,
                                       Rng* rng,
                                       std::vector<EdgeId>* live) const {
  double total = 0.0;
  for (const auto& [tail, e] : graph.InEdges(v)) total += edge_probs[e];
  if (total <= 0.0) return;
  // With sum <= 1 the leftover mass selects nobody; with sum > 1 the
  // draw is renormalized (every in-weight profile is still a valid
  // categorical distribution).
  const double scale = std::max(total, 1.0);
  double pick = rng->NextDouble() * scale;
  for (const auto& [tail, e] : graph.InEdges(v)) {
    pick -= edge_probs[e];
    if (pick < 0.0) {
      live->push_back(e);
      return;
    }
  }
  // pick landed in the [total, 1) leftover: empty triggering set.
}

TriggeringSampler::TriggeringSampler(const Graph& graph,
                                     const TriggeringDistribution* distribution,
                                     SampleSizePolicy policy, uint64_t seed)
    : graph_(graph),
      distribution_(distribution),
      policy_(policy),
      threshold_(policy.StoppingThreshold()),
      rng_(seed),
      decided_epoch_(graph.num_vertices(), 0),
      live_epoch_(graph.num_edges(), 0),
      active_epoch_(graph.num_vertices(), 0) {}

Estimate TriggeringSampler::EstimateInfluence(VertexId u,
                                              const EdgeProbFn& probs) {
  // One sparse-dot lookup per edge per call; triggering draws then read
  // the dense table. The cache is filled by the reachability sweep and,
  // for in-edges whose tails leave R_W(u), validated on demand below.
  cache_.Begin(probs, graph_.num_edges());
  const auto prob = [this](EdgeId e) { return cache_.Prob(e); };
  const std::span<const double> table = cache_.Table(graph_.num_edges());

  ComputeReachableInto(graph_, prob, u, &reach_);
  const auto rw = static_cast<double>(reach_.vertices.size());
  const double stop = threshold_;
  const uint64_t cap =
      policy_.SampleCapFor(threshold_, reach_.vertices.size());

  Estimate result;
  uint64_t total_activated = 0;
  double sum_squares = 0.0;
  for (uint64_t i = 0; i < cap; ++i) {
    if (++epoch_ == 0) {  // wrapped: drop all stale stamps
      std::fill(decided_epoch_.begin(), decided_epoch_.end(), 0);
      std::fill(live_epoch_.begin(), live_epoch_.end(), 0);
      std::fill(active_epoch_.begin(), active_epoch_.end(), 0);
      epoch_ = 1;
    }
    const uint64_t before = total_activated;
    frontier_.assign(1, u);
    active_epoch_[u] = epoch_;
    while (!frontier_.empty()) {
      const VertexId x = frontier_.back();
      frontier_.pop_back();
      ++total_activated;
      for (const auto& [v, e] : graph_.OutEdges(x)) {
        if (active_epoch_[v] == epoch_) continue;
        // Draw T_v lazily on first probe; the draw is independent of the
        // probing order, so deferring it preserves the distribution.
        if (decided_epoch_[v] != epoch_) {
          decided_epoch_[v] = epoch_;
          // Validate v's in-edge table entries (tails may lie outside
          // R_W(u); at most one sparse dot per edge per estimation).
          if (!cache_.has_dense()) {
            for (const auto& [tail, in_edge] : graph_.InEdges(v)) {
              cache_.Prob(in_edge);
            }
          }
          scratch_live_.clear();
          distribution_->SampleTriggeringSet(graph_, v, table, &rng_,
                                             &scratch_live_);
          result.edges_visited += graph_.InDegree(v);
          for (const EdgeId live : scratch_live_) live_epoch_[live] = epoch_;
        }
        if (live_epoch_[e] == epoch_) {
          active_epoch_[v] = epoch_;
          frontier_.push_back(v);
        }
      }
    }
    ++result.samples;
    const auto instance_spread = static_cast<double>(total_activated - before);
    sum_squares += instance_spread * instance_spread;
    if (result.samples >= policy_.min_samples && rw > 0.0 &&
        static_cast<double>(total_activated) / rw >= stop) {
      break;
    }
  }
  result.influence = static_cast<double>(total_activated) /
                     static_cast<double>(std::max<uint64_t>(result.samples, 1));
  result.std_error = SampleMeanStdError(static_cast<double>(total_activated),
                                        sum_squares, result.samples);
  return result;
}

}  // namespace pitex
