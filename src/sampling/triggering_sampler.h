// The general triggering model of Kempe et al. [19] — the paper's
// footnote 1 notes every PITEX technique carries over to it.
//
// In the triggering model each vertex v independently draws a random
// *triggering set* T_v of its in-neighbors; v activates one step after
// any member of T_v activates. The model subsumes both cascades used in
// this library:
//
//   * IC: each in-neighbor joins T_v independently with probability
//     p(e|W) — edges flip independent coins;
//   * LT: T_v holds at most one in-neighbor, picked with probability
//     proportional to p(e|W) (empty with the leftover mass) — the
//     classic live-edge construction for Linear Threshold.
//
// TriggeringSampler is a forward Monte-Carlo estimator parameterized by a
// TriggeringDistribution. Because the triggering set of v is a property
// of v (not of individual edges), the sampler lazily materializes T_v the
// first time any active in-neighbor probes v in an instance and caches
// the draw for the rest of that instance — exactly the deferred-decision
// principle of Sec. 5.1, lifted from edges to vertices.
//
// Hot path (the PR-3/PR-4 dense-table treatment): distributions read a
// dense EdgeId-indexed probability table instead of calling the virtual
// sparse-dot Prob(e) per probe — the sampler validates the in-edge
// entries of v (at most one sparse dot per edge per estimation, cached
// by epoch stamp) before drawing T_v, so a triggering-set draw costs one
// virtual call total, not one per in-edge. Results are pinned
// bit-identical to the pre-treatment implementation by
// tests/samplers_test.cc.
//
// McSampler / LtSampler remain the fast paths for their models; this
// sampler is the general, model-agnostic reference implementation and
// the extension point for custom propagation semantics.

#ifndef PITEX_SRC_SAMPLING_TRIGGERING_SAMPLER_H_
#define PITEX_SRC_SAMPLING_TRIGGERING_SAMPLER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/sampling/estimator_common.h"
#include "src/sampling/influence_estimator.h"
#include "src/sampling/sample_size.h"
#include "src/util/random.h"

namespace pitex {

/// Samples triggering sets. Implementations must be stateless across
/// calls (all randomness comes from the provided Rng), so one instance
/// can serve any number of samplers and threads.
class TriggeringDistribution {
 public:
  virtual ~TriggeringDistribution() = default;

  /// Appends to `live` the EdgeIds of v's in-edges whose tails belong to
  /// the freshly drawn T_v. `edge_probs` is a dense EdgeId-indexed table
  /// of the tag-set-dependent probabilities p(e|W); the caller
  /// guarantees the entries of v's in-edges are valid (other entries may
  /// be stale — implementations must only read v's in-edges).
  virtual void SampleTriggeringSet(const Graph& graph, VertexId v,
                                   std::span<const double> edge_probs,
                                   Rng* rng,
                                   std::vector<EdgeId>* live) const = 0;

  virtual const char* Name() const = 0;
};

/// Independent cascade as a triggering distribution: every in-edge joins
/// the triggering set independently with probability p(e|W).
class IcTriggering final : public TriggeringDistribution {
 public:
  void SampleTriggeringSet(const Graph& graph, VertexId v,
                           std::span<const double> edge_probs, Rng* rng,
                           std::vector<EdgeId>* live) const override;
  const char* Name() const override { return "TRIG-IC"; }
};

/// Linear threshold as a triggering distribution: at most one in-edge is
/// selected, edge e with probability p(e|W); none with the remaining
/// mass. In-weights summing past 1 are renormalized (the standard LT
/// requirement sum <= 1 is enforced degenerately, matching LtSampler).
class LtTriggering final : public TriggeringDistribution {
 public:
  void SampleTriggeringSet(const Graph& graph, VertexId v,
                           std::span<const double> edge_probs, Rng* rng,
                           std::vector<EdgeId>* live) const override;
  const char* Name() const override { return "TRIG-LT"; }
};

/// Forward Monte-Carlo influence estimation under an arbitrary triggering
/// distribution, with the same stopping rule as the IC samplers so it
/// plugs into the solvers and engine unchanged.
class TriggeringSampler final : public InfluenceOracle {
 public:
  /// `distribution` must outlive the sampler.
  TriggeringSampler(const Graph& graph,
                    const TriggeringDistribution* distribution,
                    SampleSizePolicy policy, uint64_t seed);

  Estimate EstimateInfluence(VertexId u, const EdgeProbFn& probs) override;
  const char* Name() const override { return distribution_->Name(); }

 private:
  const Graph& graph_;
  const TriggeringDistribution* distribution_;
  SampleSizePolicy policy_;
  const double threshold_;  // StoppingThreshold() is lgamma-heavy
  Rng rng_;

  // Forward reachability sweep scratch (allocation-free after warmup).
  ReachScratch reach_;
  // Lazily validated dense probability table; triggering draws probe
  // the in-edges of out-neighbors, whose tails can lie outside R_W(u),
  // so stragglers are validated on demand.
  LazyEdgeProbCache cache_;
  // Per-instance scratch, epoch-stamped to avoid O(|V|) clears.
  std::vector<uint32_t> decided_epoch_;  // T_v drawn this instance?
  std::vector<uint32_t> live_epoch_;     // per-edge: e in T_head(e)?
  std::vector<uint32_t> active_epoch_;   // vertex active this instance?
  uint32_t epoch_ = 0;
  std::vector<EdgeId> scratch_live_;
  std::vector<VertexId> frontier_;
};

}  // namespace pitex

#endif  // PITEX_SRC_SAMPLING_TRIGGERING_SAMPLER_H_
