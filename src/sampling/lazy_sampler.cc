#include "src/sampling/lazy_sampler.h"

#include <algorithm>

namespace pitex {

namespace {
struct DueGreater {
  bool operator()(const LazySampler::HeapEntry&,
                  const LazySampler::HeapEntry&) const;
};
}  // namespace

// Min-heap comparator (std heap primitives build max-heaps).
bool DueGreater::operator()(const LazySampler::HeapEntry& a,
                            const LazySampler::HeapEntry& b) const {
  return a.due > b.due;
}

LazySampler::LazySampler(const Graph& graph, SampleSizePolicy policy,
                         uint64_t seed, bool reuse_queues)
    : graph_(graph),
      policy_(policy),
      threshold_(policy.StoppingThreshold()),
      rng_(seed),
      reuse_queues_(reuse_queues),
      states_(graph.num_vertices()),
      state_epoch_(graph.num_vertices(), 0),
      visit_epoch_(graph.num_vertices(), 0) {}

LazySampler::VertexState& LazySampler::StateOf(VertexId v,
                                               const double* table,
                                               uint64_t sample_cap,
                                               uint64_t* edge_probes) {
  VertexState& state = states_[v];
  if (state_epoch_[v] == call_epoch_) return state;
  state_epoch_[v] = call_epoch_;
  state.visits = 0;
  state.heap.clear();
  for (const auto& [w, e] : graph_.OutEdges(v)) {
    const double p = table[e];
    if (p <= 0.0) continue;
    ++*edge_probes;
    const uint64_t skip = rng_.NextGeometric(p);
    if (skip > sample_cap) continue;  // can never fire within this call
    state.heap.push_back(HeapEntry{skip, w, p});
  }
  std::make_heap(state.heap.begin(), state.heap.end(), DueGreater{});
  return state;
}

Estimate LazySampler::EstimateImpl(VertexId u, const double* table) {
  if (!reuse_queues_) {
    // Paper behaviour (Appendix D): heaps are created per estimation and
    // destroyed afterwards. Swapping in a fresh vector releases every
    // vertex's retained capacity.
    std::vector<VertexState>(graph_.num_vertices()).swap(states_);
  }
  const auto rw = static_cast<double>(reach_.vertices.size());
  const double threshold = threshold_;
  const uint64_t cap = policy_.SampleCapFor(threshold_, reach_.vertices.size());

  ++call_epoch_;
  Estimate result;
  uint64_t total_activated = 0;  // "s" in Algorithm 2
  double sum_squares = 0.0;
  std::vector<VertexId>& frontier = frontier_;
  for (uint64_t i = 0; i < cap; ++i) {
    ++instance_epoch_;
    const uint64_t before = total_activated;
    frontier.assign(1, u);
    visit_epoch_[u] = instance_epoch_;
    while (!frontier.empty()) {
      const VertexId v = frontier.back();
      frontier.pop_back();
      ++total_activated;
      VertexState& state = StateOf(v, table, cap, &result.edges_visited);
      ++state.visits;  // this is the state.visits-th visit of v
      while (!state.heap.empty() && state.heap.front().due == state.visits) {
        std::pop_heap(state.heap.begin(), state.heap.end(), DueGreater{});
        HeapEntry entry = state.heap.back();
        state.heap.pop_back();
        ++result.edges_visited;  // the edge actually fired: one probe
        if (visit_epoch_[entry.neighbor] != instance_epoch_) {
          visit_epoch_[entry.neighbor] = instance_epoch_;
          frontier.push_back(entry.neighbor);
        }
        // Re-arm the edge for its next activation.
        const uint64_t skip = rng_.NextGeometric(entry.prob);
        if (skip <= cap && state.visits + skip > state.visits) {
          entry.due = state.visits + skip;
          if (entry.due <= cap) {
            state.heap.push_back(entry);
            std::push_heap(state.heap.begin(), state.heap.end(), DueGreater{});
          }
        }
      }
    }
    ++result.samples;
    const auto instance_spread = static_cast<double>(total_activated - before);
    sum_squares += instance_spread * instance_spread;
    // Martingale stop (Algorithm 2, line 17).
    if (result.samples >= policy_.min_samples &&
        static_cast<double>(total_activated) / rw >= threshold) {
      break;
    }
  }
  result.influence = static_cast<double>(total_activated) /
                     static_cast<double>(std::max<uint64_t>(result.samples, 1));
  result.std_error = SampleMeanStdError(static_cast<double>(total_activated),
                                        sum_squares, result.samples);
  return result;
}

Estimate LazySampler::EstimateInfluence(VertexId u, const EdgeProbFn& probs) {
  return EstimateImpl(u, SweepAndMaterialize(graph_, probs, u, &reach_));
}

}  // namespace pitex
