// TIM baseline: tree-based influence estimation (Sec. 7.1 comparator,
// after Chen et al.'s MIA/PMIA [7] as adapted by [6]).
//
// Instead of sampling, the estimator runs a Dijkstra-style search from u
// maximizing path probability (minimizing sum of -log p(e|W)) and
// approximates E[I(u|W)] by the sum over reached vertices of their maximum
// influence path probability. Paths below `path_threshold` are pruned and
// at most `max_vertices` vertices are settled — this is the "shortest path
// search to a limited number of vertices" behaviour the paper describes.
// The estimate carries no approximation guarantee (influence along
// distinct paths is treated as independent and non-maximum paths are
// ignored), which is why TIM shows inferior spread in Fig. 8.

#ifndef PITEX_SRC_SAMPLING_TIM_ESTIMATOR_H_
#define PITEX_SRC_SAMPLING_TIM_ESTIMATOR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/sampling/influence_estimator.h"

namespace pitex {

struct TimOptions {
  /// Prune influence paths with probability below this.
  double path_threshold = 0.01;
  /// Settle at most this many vertices per estimation.
  size_t max_vertices = 2000;
};

class TimEstimator final : public InfluenceOracle {
 public:
  TimEstimator(const Graph& graph, TimOptions options);

  Estimate EstimateInfluence(VertexId u, const EdgeProbFn& probs) override;
  const char* Name() const override { return "TIM"; }

 private:
  const Graph& graph_;
  TimOptions options_;
  std::vector<double> best_prob_;     // scratch, per vertex
  std::vector<uint32_t> seen_epoch_;  // scratch validity stamp
  uint32_t epoch_ = 0;
};

}  // namespace pitex

#endif  // PITEX_SRC_SAMPLING_TIM_ESTIMATOR_H_
