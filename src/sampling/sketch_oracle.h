// Bottom-k combined reachability sketches over envelope possible worlds —
// a constant-time influence screening oracle.
//
// Every PITEX method ultimately spends per-query work proportional to
// reach sizes. Some applications only need a *screening* answer first:
// "roughly how influential can user u ever be?" (the |W| = 0 root bound
// of best-effort exploration, Lemma 8 with p+(e|emptyset) = max_z
// p(e|z)), or "which users are worth a full PITEX query at all?". This
// module answers those in O(sketch size) per user after one offline
// pass, using the classic bottom-k reachability-set size estimator
// (Cohen) over L independent possible worlds sampled under the envelope
// probabilities p(e) = max_z p(e|z) — the same envelope the RR-Graph
// index samples (Definition 2), so the estimate targets E[I(u|*)], which
// dominates E[I(u|W)] for every tag set W.
//
// Construction: for each world, every vertex draws a uniform rank; a
// backward fix-point propagation merges bottom-k rank sets along live
// edges (u keeps the k smallest ranks among {(world, v) : u reaches v}).
// Estimation: with tau_k the k-th smallest rank of u's combined sketch,
// |{(i, v) : v in R_i(u)}| ~ (k-1)/tau_k, and dividing by L gives
// E[I(u|*)]. When fewer than k elements were ever seen the count is
// exact.
//
// The estimate is statistical: it concentrates around the envelope
// influence (an upper bound for every W) but is not a deterministic
// bound — callers screening for admissibility should inflate by a slack
// factor. bench/ablation_sketch.cc measures accuracy and speed against
// sampling the envelope directly.

#ifndef PITEX_SRC_SAMPLING_SKETCH_ORACLE_H_
#define PITEX_SRC_SAMPLING_SKETCH_ORACLE_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "src/model/influence_graph.h"

namespace pitex {

struct SketchOptions {
  /// Bottom-k sketch size per vertex. Relative error of the size
  /// estimator is O(1/sqrt(k)).
  size_t sketch_size = 64;
  /// Number of envelope possible worlds averaged over.
  size_t num_worlds = 32;
  uint64_t seed = 77;
};

class SketchOracle {
 public:
  /// `network` must outlive the oracle.
  explicit SketchOracle(const SocialNetwork* network,
                        const SketchOptions& options = {});

  /// Samples the worlds and builds all vertex sketches.
  void Build();

  /// Screening estimate of the envelope influence E[I(u|*)] — the spread
  /// when every edge fires with p(e) = max_z p(e|z). Concentrates on an
  /// upper bound of E[I(u|W)] for every tag set W. Requires Build().
  double EnvelopeInfluence(VertexId u) const;

  /// The `count` users with the largest screening estimates, descending
  /// (ties broken by smaller vertex id). Requires Build().
  std::vector<std::pair<VertexId, double>> TopInfluencers(size_t count) const;

  /// Approximate memory footprint of the sketches.
  size_t SizeBytes() const;
  double build_seconds() const { return build_seconds_; }

 private:
  /// u's combined sketch: the k smallest ranks over reachable
  /// (world, vertex) pairs, sorted ascending.
  std::vector<float> SketchOf(VertexId u) const;

  const SocialNetwork* network_;
  SketchOptions options_;
  // All sketches in one rectangle: sketch of u occupies
  // [u * sketch_size, (u+1) * sketch_size), padded with +inf.
  std::vector<float> sketches_;
  std::vector<uint32_t> sketch_counts_;  // valid entries per vertex
  bool built_ = false;
  double build_seconds_ = 0.0;
};

}  // namespace pitex

#endif  // PITEX_SRC_SAMPLING_SKETCH_ORACLE_H_
