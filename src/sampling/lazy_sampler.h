// Lazy propagation sampling (Sec. 5.1, Algorithm 2) — the paper's key
// online optimization.
//
// Across theta sample instances, the activation events of an edge e are
// i.i.d. Bernoulli(p(e|W)) coins. Instead of probing e in every instance,
// the sampler draws a Geometric(p(e|W)) "skip" telling it in which future
// visit of the tail vertex the edge fires next (Lemma 6 establishes the
// statistical equivalence). Each vertex v keeps a counter c_v of how many
// instances have visited it and a min-heap of (due-visit, neighbor)
// entries; an edge is touched only when it actually activates, plus one
// initialization draw. This reduces the expected edge work from
// O(|E_W(u)| * E[I(u ~> v_ot|W)]) to O(|R_W(u)| * E[I(u ~> v*|W)])
// (Lemma 7).
//
// Hot-path layout: the reachability sweep materializes every probed
// edge's probability into a flat table (ReachScratch::edge_prob) as it
// runs, so the estimation loop proper performs zero virtual Prob calls —
// heap initialization reads the table directly. Callers holding a
// precomputed dense table (EdgeProbFn::DenseTable) skip even the fill.
// All per-call state — the sweep, the BFS frontier, and (with
// `reuse_queues`) every vertex's lazy heap — lives in pooled members, so
// a warmed-up sampler estimates without heap allocations.

#ifndef PITEX_SRC_SAMPLING_LAZY_SAMPLER_H_
#define PITEX_SRC_SAMPLING_LAZY_SAMPLER_H_

#include <cstdint>
#include <vector>

#include "src/sampling/estimator_common.h"
#include "src/sampling/influence_estimator.h"
#include "src/sampling/sample_size.h"
#include "src/util/random.h"

namespace pitex {

class LazySampler final : public InfluenceOracle {
 public:
  /// `reuse_queues` keeps each vertex's lazy heap allocated across
  /// estimations (epoch-stamped), implementing the priority-queue reuse
  /// the paper's Appendix D flags as the main overhead of Lazy and
  /// leaves as future work. Pass false to reproduce the paper's
  /// allocate-per-estimation behaviour (bench/ablation_queue_reuse.cc
  /// measures the difference).
  LazySampler(const Graph& graph, SampleSizePolicy policy, uint64_t seed,
              bool reuse_queues = true);

  Estimate EstimateInfluence(VertexId u, const EdgeProbFn& probs) override;
  const char* Name() const override { return "LAZY"; }

  /// One pending edge activation: the edge fires at the `due`-th visit of
  /// its tail vertex. Public for the implementation's heap helpers.
  struct HeapEntry {
    uint64_t due;
    VertexId neighbor;
    double prob;
  };

 private:
  struct VertexState {
    uint64_t visits = 0;  // c_v in Algorithm 2
    std::vector<HeapEntry> heap;  // min-heap on `due`
  };

  // Initializes (or reuses) the lazy state of v for the current call.
  // `table` is the dense probability table valid for this call.
  VertexState& StateOf(VertexId v, const double* table, uint64_t sample_cap,
                       uint64_t* edge_probes);

  // The estimation loop; all probability reads go through `table`.
  Estimate EstimateImpl(VertexId u, const double* table);

  const Graph& graph_;
  SampleSizePolicy policy_;
  double threshold_;  // cached policy_.StoppingThreshold()
  Rng rng_;
  bool reuse_queues_;
  std::vector<VertexState> states_;
  std::vector<uint32_t> state_epoch_;   // which call initialized states_[v]
  std::vector<uint32_t> visit_epoch_;   // which instance visited v
  uint32_t call_epoch_ = 0;
  uint32_t instance_epoch_ = 0;
  // Pooled per-call scratch: reachability sweep (+ materialized edge
  // probabilities) and the BFS frontier.
  ReachScratch reach_;
  std::vector<VertexId> frontier_;
};

}  // namespace pitex

#endif  // PITEX_SRC_SAMPLING_LAZY_SAMPLER_H_
