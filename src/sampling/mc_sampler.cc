#include "src/sampling/mc_sampler.h"

#include <algorithm>

namespace pitex {

McSampler::McSampler(const Graph& graph, SampleSizePolicy policy,
                     uint64_t seed)
    : graph_(graph),
      policy_(policy),
      threshold_(policy.StoppingThreshold()),
      rng_(seed),
      visit_epoch_(graph.num_vertices(), 0) {}

Estimate McSampler::EstimateImpl(VertexId u, const double* table) {
  const auto rw = static_cast<double>(reach_.vertices.size());
  const double threshold = threshold_;
  const uint64_t cap = policy_.SampleCapFor(threshold_, reach_.vertices.size());

  Estimate result;
  uint64_t total_activated = 0;  // "s" in Algo 2
  double sum_squares = 0.0;
  std::vector<VertexId>& stack = stack_;
  for (uint64_t i = 0; i < cap; ++i) {
    ++epoch_;
    stack.assign(1, u);
    visit_epoch_[u] = epoch_;
    uint64_t activated = 1;
    while (!stack.empty()) {
      const VertexId v = stack.back();
      stack.pop_back();
      for (const auto& [w, e] : graph_.OutEdges(v)) {
        const double p = table[e];
        if (p <= 0.0) continue;
        ++result.edges_visited;  // MC probes every positive-prob edge
        if (visit_epoch_[w] == epoch_) continue;
        if (rng_.NextBernoulli(p)) {
          visit_epoch_[w] = epoch_;
          stack.push_back(w);
          ++activated;
        }
      }
    }
    total_activated += activated;
    sum_squares += static_cast<double>(activated) *
                   static_cast<double>(activated);
    ++result.samples;
    // Martingale stop: accumulated normalized spread crossed Lambda.
    if (result.samples >= policy_.min_samples &&
        static_cast<double>(total_activated) / rw >= threshold) {
      break;
    }
  }
  result.influence = static_cast<double>(total_activated) /
                     static_cast<double>(std::max<uint64_t>(result.samples, 1));
  result.std_error = SampleMeanStdError(static_cast<double>(total_activated),
                                        sum_squares, result.samples);
  return result;
}

Estimate McSampler::EstimateInfluence(VertexId u, const EdgeProbFn& probs) {
  return EstimateImpl(u, SweepAndMaterialize(graph_, probs, u, &reach_));
}

}  // namespace pitex
