#include "src/sampling/tim_estimator.h"

#include <queue>
#include <utility>

namespace pitex {

TimEstimator::TimEstimator(const Graph& graph, TimOptions options)
    : graph_(graph),
      options_(options),
      best_prob_(graph.num_vertices(), 0.0),
      seen_epoch_(graph.num_vertices(), 0) {}

Estimate TimEstimator::EstimateInfluence(VertexId u, const EdgeProbFn& probs) {
  ++epoch_;
  Estimate result;

  // Max-probability-path Dijkstra: the priority queue orders by path
  // probability, largest first.
  using QueueEntry = std::pair<double, VertexId>;
  std::priority_queue<QueueEntry> queue;
  queue.emplace(1.0, u);
  best_prob_[u] = 1.0;
  seen_epoch_[u] = epoch_;

  double influence = 0.0;
  size_t settled = 0;
  while (!queue.empty() && settled < options_.max_vertices) {
    const auto [p, v] = queue.top();
    queue.pop();
    if (p < best_prob_[v] || seen_epoch_[v] != epoch_) continue;  // stale
    // Mark settled by bumping best above any future entry.
    influence += p;
    ++settled;
    best_prob_[v] = 2.0;  // sentinel: settled
    for (const auto& [w, e] : graph_.OutEdges(v)) {
      const double pe = probs.Prob(e);
      if (pe <= 0.0) continue;
      ++result.edges_visited;
      const double pw = p * pe;
      if (pw < options_.path_threshold) continue;
      if (seen_epoch_[w] != epoch_) {
        seen_epoch_[w] = epoch_;
        best_prob_[w] = pw;
        queue.emplace(pw, w);
      } else if (best_prob_[w] < 2.0 && pw > best_prob_[w]) {
        best_prob_[w] = pw;
        queue.emplace(pw, w);
      }
    }
  }
  result.influence = influence;
  return result;
}

}  // namespace pitex
