#include "src/sampling/lt_sampler.h"

#include <algorithm>

namespace pitex {

LtSampler::LtSampler(const Graph& graph, SampleSizePolicy policy,
                     uint64_t seed)
    : graph_(graph),
      policy_(policy),
      rng_(seed),
      epoch_(graph.num_vertices(), 0),
      threshold_(graph.num_vertices(), 0.0),
      accumulated_(graph.num_vertices(), 0.0) {}

Estimate LtSampler::EstimateInfluence(VertexId u, const EdgeProbFn& probs) {
  const ReachableSet reach = ComputeReachable(graph_, probs, u);
  const auto rw = static_cast<double>(reach.vertices.size());
  const double stop = policy_.StoppingThreshold();
  const uint64_t cap = policy_.SampleCap(reach.vertices.size());

  Estimate result;
  uint64_t total_activated = 0;
  double sum_squares = 0.0;
  std::vector<VertexId> frontier;
  // -1 epoch parity: epoch_ marks "touched this instance"; a separate
  // "active" mark is threshold_ <= accumulated_ checked on the fly.
  std::vector<uint8_t> active(graph_.num_vertices(), 0);
  std::vector<VertexId> touched;
  for (uint64_t i = 0; i < cap; ++i) {
    ++current_epoch_;
    frontier.assign(1, u);
    active[u] = 1;
    touched.assign(1, u);
    uint64_t activated = 1;
    while (!frontier.empty()) {
      const VertexId v = frontier.back();
      frontier.pop_back();
      for (const auto& [w, e] : graph_.OutEdges(v)) {
        const double weight = probs.Prob(e);
        if (weight <= 0.0) continue;
        ++result.edges_visited;
        if (active[w]) continue;
        if (epoch_[w] != current_epoch_) {
          epoch_[w] = current_epoch_;
          threshold_[w] = rng_.NextDouble();
          accumulated_[w] = 0.0;
          touched.push_back(w);
        }
        accumulated_[w] = std::min(1.0, accumulated_[w] + weight);
        if (accumulated_[w] >= threshold_[w]) {
          active[w] = 1;
          frontier.push_back(w);
          ++activated;
        }
      }
    }
    for (VertexId v : touched) active[v] = 0;
    total_activated += activated;
    sum_squares += static_cast<double>(activated) *
                   static_cast<double>(activated);
    ++result.samples;
    if (result.samples >= policy_.min_samples &&
        static_cast<double>(total_activated) / rw >= stop) {
      break;
    }
  }
  result.influence = static_cast<double>(total_activated) /
                     static_cast<double>(std::max<uint64_t>(result.samples, 1));
  result.std_error = SampleMeanStdError(static_cast<double>(total_activated),
                                        sum_squares, result.samples);
  return result;
}

}  // namespace pitex
