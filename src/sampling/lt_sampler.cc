#include "src/sampling/lt_sampler.h"

#include <algorithm>

namespace pitex {

LtSampler::LtSampler(const Graph& graph, SampleSizePolicy policy,
                     uint64_t seed)
    : graph_(graph),
      policy_(policy),
      threshold_(policy.StoppingThreshold()),
      rng_(seed),
      epoch_(graph.num_vertices(), 0),
      threshold_v_(graph.num_vertices(), 0.0),
      accumulated_(graph.num_vertices(), 0.0),
      active_epoch_(graph.num_vertices(), 0) {}

Estimate LtSampler::EstimateInfluence(VertexId u, const EdgeProbFn& probs) {
  // The simulation only probes out-edges of activated vertices, all of
  // which lie inside R_W(u) — exactly the edges the sweep materializes,
  // so the inner loop is a plain table load (same pattern as McSampler).
  const double* table = SweepAndMaterialize(graph_, probs, u, &reach_);
  const auto rw = static_cast<double>(reach_.vertices.size());
  const double stop = threshold_;
  const uint64_t cap =
      policy_.SampleCapFor(threshold_, reach_.vertices.size());

  Estimate result;
  uint64_t total_activated = 0;
  double sum_squares = 0.0;
  for (uint64_t i = 0; i < cap; ++i) {
    if (++current_epoch_ == 0) {  // wrapped: drop all stale stamps
      std::fill(epoch_.begin(), epoch_.end(), 0);
      std::fill(active_epoch_.begin(), active_epoch_.end(), 0);
      current_epoch_ = 1;
    }
    frontier_.assign(1, u);
    active_epoch_[u] = current_epoch_;
    uint64_t activated = 1;
    while (!frontier_.empty()) {
      const VertexId v = frontier_.back();
      frontier_.pop_back();
      for (const auto& [w, e] : graph_.OutEdges(v)) {
        const double weight = table[e];
        if (weight <= 0.0) continue;
        ++result.edges_visited;
        if (active_epoch_[w] == current_epoch_) continue;
        if (epoch_[w] != current_epoch_) {
          epoch_[w] = current_epoch_;
          threshold_v_[w] = rng_.NextDouble();
          accumulated_[w] = 0.0;
        }
        accumulated_[w] = std::min(1.0, accumulated_[w] + weight);
        if (accumulated_[w] >= threshold_v_[w]) {
          active_epoch_[w] = current_epoch_;
          frontier_.push_back(w);
          ++activated;
        }
      }
    }
    total_activated += activated;
    sum_squares += static_cast<double>(activated) *
                   static_cast<double>(activated);
    ++result.samples;
    if (result.samples >= policy_.min_samples &&
        static_cast<double>(total_activated) / rw >= stop) {
      break;
    }
  }
  result.influence = static_cast<double>(total_activated) /
                     static_cast<double>(std::max<uint64_t>(result.samples, 1));
  result.std_error = SampleMeanStdError(static_cast<double>(total_activated),
                                        sum_squares, result.samples);
  return result;
}

}  // namespace pitex
