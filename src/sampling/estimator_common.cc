#include "src/sampling/estimator_common.h"

#include <algorithm>
#include <cmath>

#include "src/sampling/influence_estimator.h"

namespace pitex {

void MaterializedProbs::Assign(const EdgeProbFn& source, size_t num_edges) {
  table_.resize(num_edges);
  for (EdgeId e = 0; e < num_edges; ++e) table_[e] = source.Prob(e);
}

double SampleMeanStdError(double sum, double sum_squares, uint64_t n) {
  if (n < 2) return 0.0;
  const auto count = static_cast<double>(n);
  const double mean = sum / count;
  const double variance =
      std::max(0.0, (sum_squares - count * mean * mean) / (count - 1.0));
  return std::sqrt(variance / count);
}

ReachableSet ComputeReachable(const Graph& graph, const EdgeProbFn& probs,
                              VertexId u) {
  ReachableSet result;
  std::vector<uint8_t> visited(graph.num_vertices(), 0);
  std::vector<VertexId> stack{u};
  visited[u] = 1;
  result.vertices.push_back(u);
  while (!stack.empty()) {
    const VertexId v = stack.back();
    stack.pop_back();
    for (const auto& [w, e] : graph.OutEdges(v)) {
      if (probs.Prob(e) <= 0.0) continue;
      if (!visited[w]) {
        visited[w] = 1;
        result.vertices.push_back(w);
        stack.push_back(w);
      }
    }
  }
  for (VertexId v : result.vertices) {
    for (const auto& [w, e] : graph.OutEdges(v)) {
      if (probs.Prob(e) > 0.0 && visited[w]) ++result.num_internal_edges;
    }
  }
  return result;
}

}  // namespace pitex
