// Exact expected-spread computation by possible-world enumeration.
//
// Influence computation is #P-hard [7], so this oracle is exponential in
// the number of probabilistic edges and exists for tests and tiny
// demonstrations: it enumerates every live/dead assignment of the edges
// with probability in (0, 1) that are incident to the reachable set,
// weights each world by its probability, and BFS-counts the spread.

#ifndef PITEX_SRC_SAMPLING_EXACT_H_
#define PITEX_SRC_SAMPLING_EXACT_H_

#include <cstddef>
#include <span>

#include "src/sampling/influence_estimator.h"

namespace pitex {

/// Maximum number of probabilistic edges the exact oracle accepts
/// (2^kMaxExactEdges worlds are enumerated).
inline constexpr size_t kMaxExactEdges = 24;

/// Exact E[I(u)] under edge probabilities `probs`. Requires the reachable
/// subgraph to contain at most kMaxExactEdges edges with prob in (0, 1).
double ExactInfluence(const Graph& graph, const EdgeProbFn& probs, VertexId u);

/// Convenience wrapper: exact E[I(u|W)] for a tag set.
double ExactInfluenceForTags(const SocialNetwork& network,
                             std::span<const TagId> tags, VertexId u);

}  // namespace pitex

#endif  // PITEX_SRC_SAMPLING_EXACT_H_
