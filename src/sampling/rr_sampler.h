// Reverse-Reachable set influence estimation (Sec. 4, after Borgs et
// al. [5] / Tang et al. [36]).
//
// Each sample picks a uniform target v from R_W(u) and grows a reverse IC
// sample from v, probing in-edges with Bernoulli coins; the indicator
// 1[u ~> v] estimates E[I(u|W)] / |R_W(u)|. RR's weakness (Example 3 of
// the paper): a celebrity vertex with huge in-degree is probed in full by
// nearly every sample.

#ifndef PITEX_SRC_SAMPLING_RR_SAMPLER_H_
#define PITEX_SRC_SAMPLING_RR_SAMPLER_H_

#include <cstdint>
#include <vector>

#include "src/sampling/influence_estimator.h"
#include "src/sampling/sample_size.h"
#include "src/util/random.h"

namespace pitex {

class RrSampler final : public InfluenceOracle {
 public:
  RrSampler(const Graph& graph, SampleSizePolicy policy, uint64_t seed);

  Estimate EstimateInfluence(VertexId u, const EdgeProbFn& probs) override;
  const char* Name() const override { return "RR"; }

 private:
  const Graph& graph_;
  SampleSizePolicy policy_;
  Rng rng_;
  std::vector<uint32_t> visit_epoch_;
  uint32_t epoch_ = 0;
};

}  // namespace pitex

#endif  // PITEX_SRC_SAMPLING_RR_SAMPLER_H_
