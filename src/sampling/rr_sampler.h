// Reverse-Reachable set influence estimation (Sec. 4, after Borgs et
// al. [5] / Tang et al. [36]).
//
// Each sample picks a uniform target v from R_W(u) and grows a reverse IC
// sample from v, probing in-edges with Bernoulli coins; the indicator
// 1[u ~> v] estimates E[I(u|W)] / |R_W(u)|. RR's weakness (Example 3 of
// the paper): a celebrity vertex with huge in-degree is probed in full by
// nearly every sample.
//
// Hot path: like the lazy/MC samplers (estimator_common.h), edge
// probabilities are materialized into a flat dense table so the
// per-sample loops do array loads instead of virtual Prob calls. The
// forward reachability sweep self-materializes every out-edge of R_W(u);
// the reverse BFS can additionally walk in-edges whose tails lie outside
// R_W(u), so those stragglers are filled lazily through an epoch-stamped
// validity array — each edge's posterior is evaluated at most once per
// estimation, then reused by up to max_samples reverse probes.

#ifndef PITEX_SRC_SAMPLING_RR_SAMPLER_H_
#define PITEX_SRC_SAMPLING_RR_SAMPLER_H_

#include <cstdint>
#include <vector>

#include "src/sampling/estimator_common.h"
#include "src/sampling/influence_estimator.h"
#include "src/sampling/sample_size.h"
#include "src/util/random.h"

namespace pitex {

class RrSampler final : public InfluenceOracle {
 public:
  RrSampler(const Graph& graph, SampleSizePolicy policy, uint64_t seed);

  Estimate EstimateInfluence(VertexId u, const EdgeProbFn& probs) override;
  const char* Name() const override { return "RR"; }

 private:
  const Graph& graph_;
  SampleSizePolicy policy_;
  const double threshold_;  // StoppingThreshold() is lgamma-heavy
  Rng rng_;
  // Reverse-BFS visited marks + stack (reused across samples and calls).
  std::vector<uint32_t> visit_epoch_;
  uint32_t epoch_ = 0;
  std::vector<VertexId> stack_;
  // Forward reachability sweep scratch (allocation-free after warmup).
  ReachScratch reach_;
  // Lazily validated dense probability table (estimator_common.h).
  LazyEdgeProbCache cache_;
};

}  // namespace pitex

#endif  // PITEX_SRC_SAMPLING_RR_SAMPLER_H_
