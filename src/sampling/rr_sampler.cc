#include "src/sampling/rr_sampler.h"

#include <algorithm>

namespace pitex {

RrSampler::RrSampler(const Graph& graph, SampleSizePolicy policy,
                     uint64_t seed)
    : graph_(graph),
      policy_(policy),
      rng_(seed),
      visit_epoch_(graph.num_vertices(), 0) {}

Estimate RrSampler::EstimateInfluence(VertexId u, const EdgeProbFn& probs) {
  const ReachableSet reach = ComputeReachable(graph_, probs, u);
  const auto rw = static_cast<double>(reach.vertices.size());
  const double threshold = policy_.StoppingThreshold();
  const uint64_t cap = policy_.SampleCap(reach.vertices.size());

  Estimate result;
  uint64_t hits = 0;
  std::vector<VertexId> stack;
  for (uint64_t i = 0; i < cap; ++i) {
    const VertexId target =
        reach.vertices[rng_.NextBounded(reach.vertices.size())];
    ++result.samples;
    ++epoch_;
    // Reverse BFS from the target; stop as soon as u is reached (the
    // indicator is already determined).
    bool hit = (target == u);
    if (!hit) {
      stack.assign(1, target);
      visit_epoch_[target] = epoch_;
      while (!stack.empty() && !hit) {
        const VertexId v = stack.back();
        stack.pop_back();
        for (const auto& [w, e] : graph_.InEdges(v)) {
          const double p = probs.Prob(e);
          if (p <= 0.0) continue;
          ++result.edges_visited;  // RR probes every positive in-edge
          if (visit_epoch_[w] == epoch_) continue;
          if (rng_.NextBernoulli(p)) {
            if (w == u) {
              hit = true;
              break;
            }
            visit_epoch_[w] = epoch_;
            stack.push_back(w);
          }
        }
      }
    }
    if (hit) ++hits;
    // Bernoulli samples: the normalized accumulated spread is exactly the
    // hit count.
    if (result.samples >= policy_.min_samples &&
        static_cast<double>(hits) >= threshold) {
      break;
    }
  }
  result.influence = static_cast<double>(hits) /
                     static_cast<double>(std::max<uint64_t>(result.samples, 1)) *
                     rw;
  result.influence = std::max(result.influence, 1.0);
  // Observations are Bernoulli * |R_W(u)|.
  result.std_error = SampleMeanStdError(static_cast<double>(hits) * rw,
                                        static_cast<double>(hits) * rw * rw,
                                        result.samples);
  return result;
}

}  // namespace pitex
