#include "src/sampling/rr_sampler.h"

#include <algorithm>

namespace pitex {

RrSampler::RrSampler(const Graph& graph, SampleSizePolicy policy,
                     uint64_t seed)
    : graph_(graph),
      policy_(policy),
      threshold_(policy.StoppingThreshold()),
      rng_(seed),
      visit_epoch_(graph.num_vertices(), 0) {}

Estimate RrSampler::EstimateInfluence(VertexId u, const EdgeProbFn& probs) {
  // One probability lookup per edge per call; every later probe of the
  // same edge is an array load. The lazily validated cache backs both
  // the forward sweep and the reverse BFS (whose tails may leave
  // R_W(u)).
  cache_.Begin(probs, graph_.num_edges());
  const auto prob = [this](EdgeId e) { return cache_.Prob(e); };

  ComputeReachableInto(graph_, prob, u, &reach_);
  const std::vector<VertexId>& reachable = reach_.vertices;
  const auto rw = static_cast<double>(reachable.size());
  const double threshold = threshold_;
  const uint64_t cap = policy_.SampleCapFor(threshold_, reachable.size());

  Estimate result;
  uint64_t hits = 0;
  for (uint64_t i = 0; i < cap; ++i) {
    const VertexId target = reachable[rng_.NextBounded(reachable.size())];
    ++result.samples;
    ++epoch_;
    // Reverse BFS from the target; stop as soon as u is reached (the
    // indicator is already determined).
    bool hit = (target == u);
    if (!hit) {
      stack_.assign(1, target);
      visit_epoch_[target] = epoch_;
      while (!stack_.empty() && !hit) {
        const VertexId v = stack_.back();
        stack_.pop_back();
        for (const auto& [w, e] : graph_.InEdges(v)) {
          const double p = prob(e);
          if (p <= 0.0) continue;
          ++result.edges_visited;  // RR probes every positive in-edge
          if (visit_epoch_[w] == epoch_) continue;
          if (rng_.NextBernoulli(p)) {
            if (w == u) {
              hit = true;
              break;
            }
            visit_epoch_[w] = epoch_;
            stack_.push_back(w);
          }
        }
      }
    }
    if (hit) ++hits;
    // Bernoulli samples: the normalized accumulated spread is exactly the
    // hit count.
    if (result.samples >= policy_.min_samples &&
        static_cast<double>(hits) >= threshold) {
      break;
    }
  }
  result.influence = static_cast<double>(hits) /
                     static_cast<double>(std::max<uint64_t>(result.samples, 1)) *
                     rw;
  result.influence = std::max(result.influence, 1.0);
  // Observations are Bernoulli * |R_W(u)|.
  result.std_error = SampleMeanStdError(static_cast<double>(hits) * rw,
                                        static_cast<double>(hits) * rw * rw,
                                        result.samples);
  return result;
}

}  // namespace pitex
