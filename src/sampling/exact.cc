#include "src/sampling/exact.h"

#include <algorithm>
#include <unordered_map>

#include "src/util/check.h"

namespace pitex {

double ExactInfluence(const Graph& graph, const EdgeProbFn& probs,
                      VertexId u) {
  // Restrict attention to the positive-probability reachable subgraph.
  const ReachableSet reach = ComputeReachable(graph, probs, u);
  std::vector<uint8_t> in_reach(graph.num_vertices(), 0);
  for (VertexId v : reach.vertices) in_reach[v] = 1;

  // Collect probabilistic edges (0 < p < 1) and certain edges (p == 1)
  // inside the reachable subgraph.
  std::vector<EdgeId> random_edges;
  std::vector<EdgeId> sure_edges;
  for (VertexId v : reach.vertices) {
    for (const auto& [w, e] : graph.OutEdges(v)) {
      if (!in_reach[w]) continue;
      const double p = probs.Prob(e);
      if (p <= 0.0) continue;
      if (p >= 1.0) {
        sure_edges.push_back(e);
      } else {
        random_edges.push_back(e);
      }
    }
  }
  PITEX_CHECK_MSG(random_edges.size() <= kMaxExactEdges,
                  "graph too large for exact possible-world enumeration");

  std::vector<uint8_t> visited(graph.num_vertices(), 0);
  std::vector<VertexId> stack;
  std::vector<uint8_t> live(random_edges.size(), 0);

  double expected = 0.0;
  const uint64_t worlds = uint64_t{1} << random_edges.size();
  for (uint64_t mask = 0; mask < worlds; ++mask) {
    double weight = 1.0;
    // Live-edge lookup for this world.
    std::unordered_map<EdgeId, bool> live_map;
    live_map.reserve(random_edges.size());
    for (size_t i = 0; i < random_edges.size(); ++i) {
      const bool is_live = (mask >> i) & 1;
      const double p = probs.Prob(random_edges[i]);
      weight *= is_live ? p : (1.0 - p);
      live_map[random_edges[i]] = is_live;
    }
    if (weight == 0.0) continue;

    // BFS in the world.
    for (VertexId v : reach.vertices) visited[v] = 0;
    stack.assign(1, u);
    visited[u] = 1;
    uint64_t count = 1;
    while (!stack.empty()) {
      const VertexId v = stack.back();
      stack.pop_back();
      for (const auto& [w, e] : graph.OutEdges(v)) {
        if (!in_reach[w] || visited[w]) continue;
        const double p = probs.Prob(e);
        bool is_live = false;
        if (p >= 1.0) {
          is_live = true;
        } else if (p > 0.0) {
          is_live = live_map[e];
        }
        if (is_live) {
          visited[w] = 1;
          stack.push_back(w);
          ++count;
        }
      }
    }
    expected += weight * static_cast<double>(count);
  }
  return expected;
}

double ExactInfluenceForTags(const SocialNetwork& network,
                             std::span<const TagId> tags, VertexId u) {
  const TopicPosterior posterior = network.topics.Posterior(tags);
  const PosteriorProbs probs(network.influence, posterior);
  return ExactInfluence(network.graph, probs, u);
}

}  // namespace pitex
