#include "src/sampling/exact.h"

#include <algorithm>
#include <vector>

#include "src/sampling/estimator_common.h"
#include "src/util/check.h"

namespace pitex {

double ExactInfluence(const Graph& graph, const EdgeProbFn& probs,
                      VertexId u) {
  // World enumeration probes every edge 2^m times: materialize the
  // probabilities into a dense table up front (one pass, the only place
  // the virtual Prob is consulted) unless the caller already did.
  const double* table = probs.DenseTable();
  std::vector<double> owned;
  if (table == nullptr) {
    owned.resize(graph.num_edges());
    for (EdgeId e = 0; e < graph.num_edges(); ++e) owned[e] = probs.Prob(e);
    table = owned.data();
  }
  const auto prob = [table](EdgeId e) { return table[e]; };

  // Restrict attention to the positive-probability reachable subgraph.
  ReachScratch scratch;
  ComputeReachableInto(graph, prob, u, &scratch);
  const std::vector<VertexId>& reach = scratch.vertices;
  std::vector<uint8_t> in_reach(graph.num_vertices(), 0);
  for (VertexId v : reach) in_reach[v] = 1;

  // Collect probabilistic edges (0 < p < 1) inside the reachable
  // subgraph; `random_index[e]` maps such an edge to its bit in the world
  // mask (certain p == 1 edges are always live and need no bit).
  constexpr uint32_t kNotRandom = 0xffffffffu;
  std::vector<EdgeId> random_edges;
  std::vector<uint32_t> random_index(graph.num_edges(), kNotRandom);
  for (VertexId v : reach) {
    for (const auto& [w, e] : graph.OutEdges(v)) {
      if (!in_reach[w]) continue;
      const double p = prob(e);
      if (p <= 0.0 || p >= 1.0) continue;
      random_index[e] = static_cast<uint32_t>(random_edges.size());
      random_edges.push_back(e);
    }
  }
  PITEX_CHECK_MSG(random_edges.size() <= kMaxExactEdges,
                  "graph too large for exact possible-world enumeration");

  std::vector<uint8_t> visited(graph.num_vertices(), 0);
  std::vector<VertexId> stack;

  double expected = 0.0;
  const uint64_t worlds = uint64_t{1} << random_edges.size();
  for (uint64_t mask = 0; mask < worlds; ++mask) {
    double weight = 1.0;
    for (size_t i = 0; i < random_edges.size(); ++i) {
      const bool is_live = (mask >> i) & 1;
      const double p = prob(random_edges[i]);
      weight *= is_live ? p : (1.0 - p);
    }
    if (weight == 0.0) continue;

    // BFS in the world.
    for (VertexId v : reach) visited[v] = 0;
    stack.assign(1, u);
    visited[u] = 1;
    uint64_t count = 1;
    while (!stack.empty()) {
      const VertexId v = stack.back();
      stack.pop_back();
      for (const auto& [w, e] : graph.OutEdges(v)) {
        if (!in_reach[w] || visited[w]) continue;
        const double p = prob(e);
        bool is_live = false;
        if (p >= 1.0) {
          is_live = true;
        } else if (p > 0.0) {
          is_live = (mask >> random_index[e]) & 1;
        }
        if (is_live) {
          visited[w] = 1;
          stack.push_back(w);
          ++count;
        }
      }
    }
    expected += weight * static_cast<double>(count);
  }
  return expected;
}

double ExactInfluenceForTags(const SocialNetwork& network,
                             std::span<const TagId> tags, VertexId u) {
  const TopicPosterior posterior = network.topics.Posterior(tags);
  const PosteriorProbs probs(network.influence, posterior);
  return ExactInfluence(network.graph, probs, u);
}

}  // namespace pitex
