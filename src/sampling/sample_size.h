// Sample-size policy implementing Eq. (2) and the early-stopping rule of
// Algorithm 2 (line 17).
//
// Eq. (2) prescribes theta_W proportional to |R_W(u)| / E[I(u|W)] — but
// E[I(u|W)] is exactly the quantity being estimated. The paper resolves
// this with a martingale stopping rule: normalize each sample's spread by
// |R_W(u)| (a [0,1] variable with mean E[I]/|R_W|) and stop once the
// accumulated sum crosses the Lambda threshold
//
//   Lambda = (2+eps)/eps^2 * (ln(delta) + ln C(|Omega|, k) + ln 2),
//
// at which point the number of samples drawn matches Eq. (2) up to
// constants. A hard cap (Eq. (2) with the trivial bound E[I] >= 1, further
// clamped by `max_samples`) bounds the worst case.

#ifndef PITEX_SRC_SAMPLING_SAMPLE_SIZE_H_
#define PITEX_SRC_SAMPLING_SAMPLE_SIZE_H_

#include <cstdint>

namespace pitex {

struct SampleSizePolicy {
  /// Relative error target (eps in the paper; default matches Sec. 7).
  double eps = 0.7;
  /// Confidence parameter: guarantees hold with probability 1 - 1/delta.
  double delta = 1000.0;
  /// Tag vocabulary size |Omega|.
  int64_t num_tags = 1;
  /// Query size k (the union bound runs over all C(|Omega|, k) tag sets;
  /// best-effort uses phi_k = sum_i C(|Omega|, i) instead — set
  /// `use_phi` for that).
  int64_t k = 1;
  bool use_phi = false;

  /// Never draw fewer samples than this (protects tiny instances).
  uint64_t min_samples = 32;
  /// Hard cap on samples per estimation, independent of graph size.
  uint64_t max_samples = 1 << 17;

  /// The stopping threshold Lambda (see file comment). Involves several
  /// lgamma evaluations — samplers with a fixed policy compute it once at
  /// construction and reuse it via SampleCapFor.
  double StoppingThreshold() const;

  /// Eq. (2) with E[I(u|W)] >= 1, clamped to [min_samples, max_samples].
  uint64_t SampleCap(uint64_t reachable_size) const;

  /// SampleCap with a precomputed StoppingThreshold() value, skipping the
  /// log-binomial arithmetic on the per-estimation hot path.
  uint64_t SampleCapFor(double threshold, uint64_t reachable_size) const;
};

}  // namespace pitex

#endif  // PITEX_SRC_SAMPLING_SAMPLE_SIZE_H_
