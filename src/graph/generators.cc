#include "src/graph/generators.h"

#include <vector>

#include "src/util/check.h"

namespace pitex {

Graph ErdosRenyi(size_t n, size_t m, Rng* rng) {
  PITEX_CHECK(n >= 2);
  GraphBuilder builder(n);
  for (size_t i = 0; i < m; ++i) {
    auto u = static_cast<VertexId>(rng->NextBounded(n));
    auto v = static_cast<VertexId>(rng->NextBounded(n - 1));
    if (v >= u) ++v;  // skip self-loop
    builder.AddEdge(u, v);
  }
  return builder.Build();
}

Graph PreferentialAttachment(size_t n, size_t out_degree, Rng* rng) {
  PITEX_CHECK(n >= 2 && out_degree >= 1);
  GraphBuilder builder(n);
  // `targets` holds one entry per (in-degree + 1) unit so that sampling a
  // uniform element implements preferential attachment.
  std::vector<VertexId> targets;
  targets.reserve(n * (out_degree + 1));
  targets.push_back(0);
  for (VertexId v = 1; v < n; ++v) {
    const size_t d = std::min<size_t>(out_degree, v);
    for (size_t j = 0; j < d; ++j) {
      const VertexId t = targets[rng->NextBounded(targets.size())];
      if (t == v) continue;
      builder.AddEdge(v, t);
      targets.push_back(t);
    }
    targets.push_back(v);
  }
  return builder.Build();
}

Graph Star(size_t n) {
  PITEX_CHECK(n >= 2);
  GraphBuilder builder(n);
  for (VertexId v = 1; v < n; ++v) builder.AddEdge(0, v);
  return builder.Build();
}

Graph Celebrity(size_t n) {
  PITEX_CHECK(n >= 1);
  GraphBuilder builder(2 * n + 1);
  for (VertexId v = 1; v <= n; ++v) builder.AddEdge(0, v);
  for (VertexId v = static_cast<VertexId>(n + 1); v <= 2 * n; ++v) {
    builder.AddEdge(v, 0);
  }
  return builder.Build();
}

Graph Chain(size_t n) {
  PITEX_CHECK(n >= 1);
  GraphBuilder builder(n);
  for (VertexId v = 0; v + 1 < n; ++v) builder.AddEdge(v, v + 1);
  return builder.Build();
}

}  // namespace pitex
