// Plain-text edge-list persistence for Graph.
//
// Format: first line "<num_vertices> <num_edges>", then one "tail head"
// pair per line, in EdgeId order (so that edge-aligned payloads such as
// p(e|z) tables stay aligned across a save/load round trip).

#ifndef PITEX_SRC_GRAPH_GRAPH_IO_H_
#define PITEX_SRC_GRAPH_GRAPH_IO_H_

#include <optional>
#include <string>

#include "src/graph/graph.h"

namespace pitex {

/// Writes `g` to `path`. Returns false on I/O failure.
bool SaveGraph(const Graph& g, const std::string& path);

/// Loads a graph previously written by SaveGraph. Returns std::nullopt on
/// I/O failure or malformed content.
std::optional<Graph> LoadGraph(const std::string& path);

}  // namespace pitex

#endif  // PITEX_SRC_GRAPH_GRAPH_IO_H_
