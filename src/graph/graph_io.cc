#include "src/graph/graph_io.h"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace pitex {

bool SaveGraph(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << g.num_vertices() << ' ' << g.num_edges() << '\n';
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    out << g.Tail(e) << ' ' << g.Head(e) << '\n';
  }
  return static_cast<bool>(out);
}

std::optional<Graph> LoadGraph(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  size_t n = 0, m = 0;
  if (!(in >> n >> m)) return std::nullopt;
  GraphBuilder builder(n);
  for (size_t i = 0; i < m; ++i) {
    VertexId u = 0, v = 0;
    if (!(in >> u >> v)) return std::nullopt;
    if (u >= n || v >= n) return std::nullopt;
    builder.AddEdge(u, v);
  }
  return builder.Build();
}

}  // namespace pitex
