#include "src/graph/graph.h"

#include "src/util/check.h"

namespace pitex {

double Graph::AverageDegree() const {
  if (num_vertices() == 0) return 0.0;
  return static_cast<double>(num_edges()) /
         static_cast<double>(num_vertices());
}

GraphBuilder::GraphBuilder(size_t num_vertices)
    : num_vertices_(num_vertices) {}

EdgeId GraphBuilder::AddEdge(VertexId u, VertexId v) {
  PITEX_CHECK(u < num_vertices_ && v < num_vertices_);
  edges_.emplace_back(u, v);
  return static_cast<EdgeId>(edges_.size() - 1);
}

Graph GraphBuilder::Build() {
  Graph g;
  const size_t n = num_vertices_;
  const size_t m = edges_.size();
  g.tails_.resize(m);
  g.heads_.resize(m);

  // Counting sort into CSR for both directions.
  g.out_offsets_.assign(n + 1, 0);
  g.in_offsets_.assign(n + 1, 0);
  for (const auto& [u, v] : edges_) {
    ++g.out_offsets_[u + 1];
    ++g.in_offsets_[v + 1];
  }
  for (size_t i = 0; i < n; ++i) {
    g.out_offsets_[i + 1] += g.out_offsets_[i];
    g.in_offsets_[i + 1] += g.in_offsets_[i];
  }
  g.out_adj_.resize(m);
  g.in_adj_.resize(m);
  std::vector<uint64_t> out_pos(g.out_offsets_.begin(),
                                g.out_offsets_.end() - 1);
  std::vector<uint64_t> in_pos(g.in_offsets_.begin(), g.in_offsets_.end() - 1);
  for (size_t e = 0; e < m; ++e) {
    const auto [u, v] = edges_[e];
    const auto id = static_cast<EdgeId>(e);
    g.tails_[e] = u;
    g.heads_[e] = v;
    g.out_adj_[out_pos[u]++] = AdjEntry{v, id};
    g.in_adj_[in_pos[v]++] = AdjEntry{u, id};
  }
  edges_.clear();
  return g;
}

}  // namespace pitex
