// Synthetic graph topologies.
//
// Includes the two adversarial shapes from Sec. 4 of the paper (Fig. 3):
// the *star* graph where MC sampling degenerates to quadratic cost, and the
// *celebrity* graph where RR sampling does, plus general-purpose random
// topologies (Erdos-Renyi and a preferential-attachment power-law model)
// used by the synthetic dataset suite.

#ifndef PITEX_SRC_GRAPH_GENERATORS_H_
#define PITEX_SRC_GRAPH_GENERATORS_H_

#include <cstddef>
#include <cstdint>

#include "src/graph/graph.h"
#include "src/util/random.h"

namespace pitex {

/// G(n, m) Erdos-Renyi digraph: m directed edges drawn uniformly with
/// replacement (self-loops excluded, parallel edges possible but rare for
/// sparse m).
Graph ErdosRenyi(size_t n, size_t m, Rng* rng);

/// Directed preferential-attachment graph: vertices arrive one at a time
/// and emit `out_degree` edges whose targets are chosen proportionally to
/// (in-degree + 1) among earlier vertices, producing a power-law in-degree
/// distribution typical of social networks. Vertex 0..seed_size-1 form a
/// clique-free seed set targeted uniformly at the start.
Graph PreferentialAttachment(size_t n, size_t out_degree, Rng* rng);

/// Fig. 3(a): root vertex 0 with a single edge to each of the other n-1
/// vertices ("a user with many followers but low impact"). Pair with
/// activation probability 1/(n-1) per edge to reproduce the MC
/// counterexample.
Graph Star(size_t n);

/// Fig. 3(b): central vertex 0 has an edge to each of vertices 1..n
/// ("followers"), and each of vertices n+1..2n ("fans") has an edge to the
/// center. Pair with probability 1 on center->follower edges and 1/n on
/// fan->center edges to reproduce the RR counterexample. Query any fan.
Graph Celebrity(size_t n);

/// Directed chain 0 -> 1 -> ... -> n-1.
Graph Chain(size_t n);

}  // namespace pitex

#endif  // PITEX_SRC_GRAPH_GENERATORS_H_
