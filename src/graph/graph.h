// Directed social graph in compressed-sparse-row form.
//
// The graph stores both out-adjacency (forward propagation: MC / Lazy
// sampling) and in-adjacency (reverse sampling: RR / RR-Graph index). Each
// directed edge has a stable EdgeId so that per-edge influence
// probabilities (p(e|z), src/model/influence_graph.h) can live in parallel
// arrays. Out- and in-adjacency reference the same EdgeIds.

#ifndef PITEX_SRC_GRAPH_GRAPH_H_
#define PITEX_SRC_GRAPH_GRAPH_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace pitex {

using VertexId = uint32_t;
using EdgeId = uint32_t;

/// A directed edge endpoint paired with the EdgeId of the edge it belongs
/// to. In the out-adjacency of u, `vertex` is the head; in the
/// in-adjacency of v, `vertex` is the tail.
struct AdjEntry {
  VertexId vertex;
  EdgeId edge;
};

/// Immutable CSR digraph. Build with GraphBuilder.
class Graph {
 public:
  Graph() = default;

  size_t num_vertices() const { return out_offsets_.size() - 1; }
  size_t num_edges() const { return heads_.size(); }

  /// Out-neighbors of u with their EdgeIds.
  std::span<const AdjEntry> OutEdges(VertexId u) const {
    return {out_adj_.data() + out_offsets_[u],
            out_adj_.data() + out_offsets_[u + 1]};
  }

  /// In-neighbors of v with their EdgeIds.
  std::span<const AdjEntry> InEdges(VertexId v) const {
    return {in_adj_.data() + in_offsets_[v],
            in_adj_.data() + in_offsets_[v + 1]};
  }

  /// Position of v's first in-edge in the global in-adjacency array:
  /// InEdges(v)[j] corresponds to in-adjacency slot InEdgeOffset(v) + j.
  /// Lets per-in-edge side tables (e.g. the dense envelope table of
  /// src/model/influence_graph.h) lie in traversal order.
  uint64_t InEdgeOffset(VertexId v) const { return in_offsets_[v]; }

  size_t OutDegree(VertexId u) const {
    return out_offsets_[u + 1] - out_offsets_[u];
  }
  size_t InDegree(VertexId v) const {
    return in_offsets_[v + 1] - in_offsets_[v];
  }

  /// Tail of edge e.
  VertexId Tail(EdgeId e) const { return tails_[e]; }
  /// Head of edge e.
  VertexId Head(EdgeId e) const { return heads_[e]; }

  /// Average out-degree |E| / |V|.
  double AverageDegree() const;

 private:
  friend class GraphBuilder;

  std::vector<uint64_t> out_offsets_{0};
  std::vector<AdjEntry> out_adj_;
  std::vector<uint64_t> in_offsets_{0};
  std::vector<AdjEntry> in_adj_;
  std::vector<VertexId> tails_;
  std::vector<VertexId> heads_;
};

/// Accumulates edges and produces an immutable Graph. EdgeIds are assigned
/// in insertion order. Self-loops are allowed (they never matter for
/// influence: a source is already active); parallel edges are allowed and
/// behave as independent activation chances.
class GraphBuilder {
 public:
  /// `num_vertices` fixes the vertex universe [0, num_vertices).
  explicit GraphBuilder(size_t num_vertices);

  /// Adds a directed edge u -> v and returns its EdgeId.
  EdgeId AddEdge(VertexId u, VertexId v);

  size_t num_vertices() const { return num_vertices_; }
  size_t num_edges() const { return edges_.size(); }

  /// Finalizes into a Graph. The builder is left empty.
  Graph Build();

 private:
  size_t num_vertices_;
  std::vector<std::pair<VertexId, VertexId>> edges_;
};

}  // namespace pitex

#endif  // PITEX_SRC_GRAPH_GRAPH_H_
