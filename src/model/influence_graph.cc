#include "src/model/influence_graph.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"

namespace pitex {

float EnvelopeProbability(double p) {
  PITEX_DCHECK(p >= 0.0 && p <= 1.0);
  auto f = static_cast<float>(p);  // round-to-nearest
  if (static_cast<double>(f) < p) f = std::nextafterf(f, 2.0f);
  return f;
}

EnvelopeTable::EnvelopeTable(const Graph& graph,
                             const InfluenceGraph& influence) {
  in_env_.resize(graph.num_edges());
  in_pos_.resize(graph.num_edges());
  vertex_max_.resize(graph.num_vertices());
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    const uint64_t base = graph.InEdgeOffset(v);
    const auto in = graph.InEdges(v);
    float vmax = 0.0f;
    for (size_t j = 0; j < in.size(); ++j) {
      const float p = EnvelopeProbability(influence.MaxProb(in[j].edge));
      in_env_[base + j] = p;
      in_pos_[in[j].edge] = static_cast<uint32_t>(base + j);
      vmax = std::max(vmax, p);
    }
    vertex_max_[v] = vmax;
  }
}

void EnvelopeTable::Update(const Graph& graph, EdgeId e, double max_prob) {
  in_env_[in_pos_[e]] = EnvelopeProbability(max_prob);
  const VertexId head = graph.Head(e);
  float vmax = 0.0f;
  for (const float p : InEnvelopes(graph, head)) vmax = std::max(vmax, p);
  vertex_max_[head] = vmax;
}

size_t EnvelopeTable::SizeBytes() const {
  return in_env_.capacity() * sizeof(float) +
         in_pos_.capacity() * sizeof(uint32_t) +
         vertex_max_.capacity() * sizeof(float);
}

double InfluenceGraph::EdgeTopicProb(EdgeId e, TopicId z) const {
  for (const auto& entry : EdgeTopics(e)) {
    if (entry.topic == z) return entry.prob;
  }
  return 0.0;
}

double InfluenceGraph::EdgeProb(EdgeId e, const TopicPosterior& posterior) const {
  double p = 0.0;
  for (const auto& entry : EdgeTopics(e)) {
    p += entry.prob * posterior[entry.topic];
  }
  return p;
}

InfluenceGraph ReplaceEdgeTopics(
    const InfluenceGraph& influence,
    std::span<const EdgeTopicsReplacement> replacements) {
  const size_t num_edges = influence.num_edges();
  // Validate each replacement into a shared scratch (kept entries are
  // sorted by topic with zeros dropped, like InfluenceGraphBuilder) and
  // index them by edge.
  std::vector<uint32_t> replacement_of(num_edges, UINT32_MAX);
  std::vector<std::pair<uint32_t, uint32_t>> kept_range(replacements.size());
  std::vector<EdgeTopicEntry> kept;
  for (uint32_t r = 0; r < replacements.size(); ++r) {
    const auto& [e, entries] = replacements[r];
    PITEX_CHECK(e < num_edges);
    PITEX_CHECK_MSG(replacement_of[e] == UINT32_MAX,
                    "edge replaced twice in one batch");
    replacement_of[e] = r;
    const auto begin = static_cast<uint32_t>(kept.size());
    for (const EdgeTopicEntry& entry : entries) {
      PITEX_CHECK(entry.prob >= 0.0 && entry.prob <= 1.0);
      if (entry.prob > 0.0) kept.push_back(entry);
    }
    std::sort(kept.begin() + begin, kept.end(),
              [](const EdgeTopicEntry& a, const EdgeTopicEntry& b) {
                return a.topic < b.topic;
              });
    for (size_t i = begin + 1; i < kept.size(); ++i) {
      PITEX_CHECK_MSG(kept[i].topic != kept[i - 1].topic, "duplicate topic");
    }
    kept_range[r] = {begin, static_cast<uint32_t>(kept.size())};
  }

  // Exact-size single pass: unchanged edges block-copy their CSR slice.
  InfluenceGraph out;
  int64_t nnz_delta = 0;
  for (uint32_t r = 0; r < replacements.size(); ++r) {
    nnz_delta +=
        static_cast<int64_t>(kept_range[r].second) -
        static_cast<int64_t>(kept_range[r].first) -
        static_cast<int64_t>(influence.EdgeTopics(replacements[r].edge).size());
  }
  out.offsets_.clear();
  out.offsets_.reserve(num_edges + 1);
  out.offsets_.push_back(0);
  out.entries_.reserve(influence.entries_.size() +
                       static_cast<size_t>(std::max<int64_t>(0, nnz_delta)));
  out.max_prob_.reserve(num_edges);
  for (EdgeId e = 0; e < num_edges; ++e) {
    std::span<const EdgeTopicEntry> entries;
    if (replacement_of[e] != UINT32_MAX) {
      const auto [begin, end] = kept_range[replacement_of[e]];
      entries = {kept.data() + begin, kept.data() + end};
    } else {
      entries = influence.EdgeTopics(e);
    }
    double max_p = 0.0;
    for (const EdgeTopicEntry& entry : entries) {
      max_p = std::max(max_p, entry.prob);
    }
    out.entries_.insert(out.entries_.end(), entries.begin(), entries.end());
    out.offsets_.push_back(out.entries_.size());
    out.max_prob_.push_back(max_p);
  }
  return out;
}

InfluenceGraphBuilder::InfluenceGraphBuilder(size_t num_edges)
    : num_edges_(num_edges), staged_(num_edges) {}

void InfluenceGraphBuilder::SetEdgeTopics(
    EdgeId e, std::span<const EdgeTopicEntry> entries) {
  PITEX_CHECK(e < num_edges_);
  PITEX_CHECK_MSG(staged_[e].empty(), "edge topic vector set twice");
  auto& dst = staged_[e];
  dst.reserve(entries.size());
  for (const auto& entry : entries) {
    PITEX_CHECK(entry.prob >= 0.0 && entry.prob <= 1.0);
    if (entry.prob > 0.0) dst.push_back(entry);
  }
  std::sort(dst.begin(), dst.end(),
            [](const EdgeTopicEntry& a, const EdgeTopicEntry& b) {
              return a.topic < b.topic;
            });
  for (size_t i = 1; i < dst.size(); ++i) {
    PITEX_CHECK_MSG(dst[i].topic != dst[i - 1].topic, "duplicate topic");
  }
}

InfluenceGraph InfluenceGraphBuilder::Build() {
  InfluenceGraph g;
  g.offsets_.reserve(num_edges_ + 1);
  g.max_prob_.reserve(num_edges_);
  size_t total = 0;
  for (const auto& v : staged_) total += v.size();
  g.entries_.reserve(total);
  for (auto& v : staged_) {
    double max_p = 0.0;
    for (const auto& entry : v) max_p = std::max(max_p, entry.prob);
    g.entries_.insert(g.entries_.end(), v.begin(), v.end());
    g.offsets_.push_back(g.entries_.size());
    g.max_prob_.push_back(max_p);
    v.clear();
  }
  staged_.clear();
  return g;
}

namespace {

template <typename KeepEdge>
ReachableSet Bfs(const Graph& graph, VertexId u, KeepEdge keep) {
  ReachableSet result;
  std::vector<uint8_t> visited(graph.num_vertices(), 0);
  std::vector<VertexId> frontier{u};
  visited[u] = 1;
  result.vertices.push_back(u);
  while (!frontier.empty()) {
    const VertexId v = frontier.back();
    frontier.pop_back();
    for (const auto& [w, e] : graph.OutEdges(v)) {
      if (!keep(e)) continue;
      if (!visited[w]) {
        visited[w] = 1;
        result.vertices.push_back(w);
        frontier.push_back(w);
      }
    }
  }
  // Count edges with both endpoints in the reachable set and positive
  // probability (|E_W(u)| in the paper's notation).
  for (VertexId v : result.vertices) {
    for (const auto& [w, e] : graph.OutEdges(v)) {
      if (keep(e) && visited[w]) ++result.num_internal_edges;
    }
  }
  return result;
}

}  // namespace

ReachableSet ComputeReachableSet(const Graph& graph,
                                 const InfluenceGraph& influence,
                                 const TopicPosterior& posterior, VertexId u) {
  return Bfs(graph, u,
             [&](EdgeId e) { return influence.EdgeProb(e, posterior) > 0.0; });
}

ReachableSet ComputeMaxReachableSet(const Graph& graph,
                                    const InfluenceGraph& influence,
                                    VertexId u) {
  return Bfs(graph, u, [&](EdgeId e) { return influence.MaxProb(e) > 0.0; });
}

}  // namespace pitex
