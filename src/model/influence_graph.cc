#include "src/model/influence_graph.h"

#include <algorithm>

#include "src/util/check.h"

namespace pitex {

double InfluenceGraph::EdgeTopicProb(EdgeId e, TopicId z) const {
  for (const auto& entry : EdgeTopics(e)) {
    if (entry.topic == z) return entry.prob;
  }
  return 0.0;
}

double InfluenceGraph::EdgeProb(EdgeId e, const TopicPosterior& posterior) const {
  double p = 0.0;
  for (const auto& entry : EdgeTopics(e)) {
    p += entry.prob * posterior[entry.topic];
  }
  return p;
}

InfluenceGraphBuilder::InfluenceGraphBuilder(size_t num_edges)
    : num_edges_(num_edges), staged_(num_edges) {}

void InfluenceGraphBuilder::SetEdgeTopics(
    EdgeId e, std::span<const EdgeTopicEntry> entries) {
  PITEX_CHECK(e < num_edges_);
  PITEX_CHECK_MSG(staged_[e].empty(), "edge topic vector set twice");
  auto& dst = staged_[e];
  dst.reserve(entries.size());
  for (const auto& entry : entries) {
    PITEX_CHECK(entry.prob >= 0.0 && entry.prob <= 1.0);
    if (entry.prob > 0.0) dst.push_back(entry);
  }
  std::sort(dst.begin(), dst.end(),
            [](const EdgeTopicEntry& a, const EdgeTopicEntry& b) {
              return a.topic < b.topic;
            });
  for (size_t i = 1; i < dst.size(); ++i) {
    PITEX_CHECK_MSG(dst[i].topic != dst[i - 1].topic, "duplicate topic");
  }
}

InfluenceGraph InfluenceGraphBuilder::Build() {
  InfluenceGraph g;
  g.offsets_.reserve(num_edges_ + 1);
  g.max_prob_.reserve(num_edges_);
  size_t total = 0;
  for (const auto& v : staged_) total += v.size();
  g.entries_.reserve(total);
  for (auto& v : staged_) {
    double max_p = 0.0;
    for (const auto& entry : v) max_p = std::max(max_p, entry.prob);
    g.entries_.insert(g.entries_.end(), v.begin(), v.end());
    g.offsets_.push_back(g.entries_.size());
    g.max_prob_.push_back(max_p);
    v.clear();
  }
  staged_.clear();
  return g;
}

namespace {

template <typename KeepEdge>
ReachableSet Bfs(const Graph& graph, VertexId u, KeepEdge keep) {
  ReachableSet result;
  std::vector<uint8_t> visited(graph.num_vertices(), 0);
  std::vector<VertexId> frontier{u};
  visited[u] = 1;
  result.vertices.push_back(u);
  while (!frontier.empty()) {
    const VertexId v = frontier.back();
    frontier.pop_back();
    for (const auto& [w, e] : graph.OutEdges(v)) {
      if (!keep(e)) continue;
      if (!visited[w]) {
        visited[w] = 1;
        result.vertices.push_back(w);
        frontier.push_back(w);
      }
    }
  }
  // Count edges with both endpoints in the reachable set and positive
  // probability (|E_W(u)| in the paper's notation).
  for (VertexId v : result.vertices) {
    for (const auto& [w, e] : graph.OutEdges(v)) {
      if (keep(e) && visited[w]) ++result.num_internal_edges;
    }
  }
  return result;
}

}  // namespace

ReachableSet ComputeReachableSet(const Graph& graph,
                                 const InfluenceGraph& influence,
                                 const TopicPosterior& posterior, VertexId u) {
  return Bfs(graph, u,
             [&](EdgeId e) { return influence.EdgeProb(e, posterior) > 0.0; });
}

ReachableSet ComputeMaxReachableSet(const Graph& graph,
                                    const InfluenceGraph& influence,
                                    VertexId u) {
  return Bfs(graph, u, [&](EdgeId e) { return influence.MaxProb(e) > 0.0; });
}

}  // namespace pitex
