#include "src/model/tic_learner.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "src/util/check.h"
#include "src/util/random.h"

namespace pitex {

namespace {

// Per-cascade edge trial/success events, extracted once.
struct EdgeEvents {
  std::vector<EdgeId> tried;
  std::vector<EdgeId> succeeded;
};

EdgeEvents ExtractEvents(const Graph& graph, const Cascade& cascade) {
  EdgeEvents events;
  std::unordered_map<VertexId, uint32_t> step_of;
  step_of.reserve(cascade.activations.size());
  for (const auto& [v, step] : cascade.activations) step_of[v] = step;
  for (const auto& [u, step_u] : cascade.activations) {
    for (const auto& [v, e] : graph.OutEdges(u)) {
      auto it = step_of.find(v);
      if (it == step_of.end()) {
        events.tried.push_back(e);
      } else if (it->second == step_u + 1) {
        events.tried.push_back(e);
        events.succeeded.push_back(e);
      }
      // v active at a step <= step_u: u never got to try e; no trial.
    }
  }
  return events;
}

}  // namespace

LearnedModel LearnTicModel(const Graph& graph, size_t num_tags,
                           const ActionLog& log,
                           const TicLearnerOptions& options) {
  PITEX_CHECK(options.num_topics >= 1);
  const size_t num_z = options.num_topics;
  Rng rng(options.seed);

  // Random positive initialization of p(w|z) so EM can break symmetry.
  std::vector<double> tag_topic(num_tags * num_z);
  for (double& v : tag_topic) v = 0.1 + 0.9 * rng.NextDouble();
  std::vector<double> prior(num_z, 1.0 / static_cast<double>(num_z));

  std::vector<EdgeEvents> events;
  events.reserve(log.cascades.size());
  for (const auto& cascade : log.cascades) {
    events.push_back(ExtractEvents(graph, cascade));
  }

  std::vector<double> gamma(log.cascades.size() * num_z, 0.0);
  std::vector<double> succ(graph.num_edges() * num_z);
  std::vector<double> trial(graph.num_edges() * num_z);

  for (size_t iter = 0; iter < options.num_iterations; ++iter) {
    // E-step: responsibilities from current p(w|z) and prior.
    for (size_t i = 0; i < log.cascades.size(); ++i) {
      double norm = 0.0;
      for (size_t z = 0; z < num_z; ++z) {
        double g = prior[z];
        for (TagId w : log.cascades[i].item_tags) {
          g *= tag_topic[static_cast<size_t>(w) * num_z + z];
        }
        gamma[i * num_z + z] = g;
        norm += g;
      }
      if (norm > 0.0) {
        for (size_t z = 0; z < num_z; ++z) gamma[i * num_z + z] /= norm;
      } else {
        for (size_t z = 0; z < num_z; ++z) {
          gamma[i * num_z + z] = 1.0 / static_cast<double>(num_z);
        }
      }
    }

    // M-step: tag-topic weights, prior, and edge probabilities.
    std::fill(tag_topic.begin(), tag_topic.end(), options.tag_smoothing);
    std::vector<double> topic_mass(num_z, 0.0);
    for (size_t i = 0; i < log.cascades.size(); ++i) {
      for (size_t z = 0; z < num_z; ++z) {
        const double g = gamma[i * num_z + z];
        topic_mass[z] += g;
        for (TagId w : log.cascades[i].item_tags) {
          tag_topic[static_cast<size_t>(w) * num_z + z] += g;
        }
      }
    }
    // Normalize p(w|z) columns to [0, 1] by the max so entries stay
    // interpretable as likelihood weights.
    for (size_t z = 0; z < num_z; ++z) {
      double col_max = 0.0;
      for (size_t w = 0; w < num_tags; ++w) {
        col_max = std::max(col_max, tag_topic[w * num_z + z]);
      }
      if (col_max > 0.0) {
        for (size_t w = 0; w < num_tags; ++w) tag_topic[w * num_z + z] /= col_max;
      }
    }
    double prior_norm = 0.0;
    for (double m : topic_mass) prior_norm += m;
    if (prior_norm > 0.0) {
      for (size_t z = 0; z < num_z; ++z) prior[z] = topic_mass[z] / prior_norm;
    }

    std::fill(succ.begin(), succ.end(), 0.0);
    std::fill(trial.begin(), trial.end(), 0.0);
    for (size_t i = 0; i < log.cascades.size(); ++i) {
      for (size_t z = 0; z < num_z; ++z) {
        const double g = gamma[i * num_z + z];
        if (g <= 0.0) continue;
        for (EdgeId e : events[i].tried) {
          trial[static_cast<size_t>(e) * num_z + z] += g;
        }
        for (EdgeId e : events[i].succeeded) {
          succ[static_cast<size_t>(e) * num_z + z] += g;
        }
      }
    }
  }

  LearnedModel model;
  model.topics = TopicModel(num_z, num_tags);
  for (size_t w = 0; w < num_tags; ++w) {
    for (size_t z = 0; z < num_z; ++z) {
      model.topics.SetTagTopic(static_cast<TagId>(w),
                               static_cast<TopicId>(z),
                               std::min(1.0, tag_topic[w * num_z + z]));
    }
  }
  model.topics.SetPrior(prior);

  InfluenceGraphBuilder builder(graph.num_edges());
  std::vector<EdgeTopicEntry> entries;
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    entries.clear();
    for (size_t z = 0; z < num_z; ++z) {
      const double t = trial[static_cast<size_t>(e) * num_z + z];
      if (t <= 0.0) continue;
      const double p = succ[static_cast<size_t>(e) * num_z + z] / t;
      if (p >= options.min_edge_prob) {
        entries.push_back({static_cast<TopicId>(z), std::min(1.0, p)});
      }
    }
    builder.SetEdgeTopics(e, entries);
  }
  model.influence = builder.Build();
  return model;
}

}  // namespace pitex
