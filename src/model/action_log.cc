#include "src/model/action_log.h"

#include <algorithm>

#include "src/util/check.h"

namespace pitex {

size_t ActionLog::TotalActivations() const {
  size_t total = 0;
  for (const auto& c : cascades) total += c.activations.size();
  return total;
}

namespace {

// Draws one topic from the prior.
TopicId SampleTopic(const TopicModel& topics, Rng* rng) {
  const double u = rng->NextDouble();
  double acc = 0.0;
  const auto& prior = topics.prior();
  for (TopicId z = 0; z + 1 < prior.size(); ++z) {
    acc += prior[z];
    if (u < acc) return z;
  }
  return static_cast<TopicId>(prior.size() - 1);
}

// Draws `count` distinct tags proportionally to p(w|z); falls back to
// uniform tags if the topic has no mass.
std::vector<TagId> SampleTags(const TopicModel& topics, TopicId z,
                              size_t count, Rng* rng) {
  std::vector<double> weights(topics.num_tags());
  double total = 0.0;
  for (TagId w = 0; w < topics.num_tags(); ++w) {
    weights[w] = topics.TagTopic(w, z);
    total += weights[w];
  }
  std::vector<TagId> result;
  count = std::min(count, topics.num_tags());
  while (result.size() < count) {
    TagId pick = 0;
    if (total > 0.0) {
      double u = rng->NextDouble() * total;
      for (TagId w = 0; w < topics.num_tags(); ++w) {
        if (weights[w] <= 0.0) continue;
        u -= weights[w];
        if (u <= 0.0) {
          pick = w;
          break;
        }
      }
    } else {
      pick = static_cast<TagId>(rng->NextBounded(topics.num_tags()));
    }
    if (std::find(result.begin(), result.end(), pick) == result.end()) {
      result.push_back(pick);
    } else if (total > 0.0) {
      // Remove the weight so the loop terminates even with one hot tag.
      total -= weights[pick];
      weights[pick] = 0.0;
      if (total <= 0.0) total = 0.0;
    }
  }
  std::sort(result.begin(), result.end());
  return result;
}

}  // namespace

ActionLog SimulateCascades(const SocialNetwork& network,
                           const CascadeSimOptions& options, Rng* rng) {
  PITEX_CHECK(network.num_vertices() > 0);
  ActionLog log;
  log.cascades.reserve(options.num_cascades);
  std::vector<uint8_t> active(network.num_vertices(), 0);
  for (size_t i = 0; i < options.num_cascades; ++i) {
    Cascade cascade;
    const TopicId z = SampleTopic(network.topics, rng);
    cascade.item_tags =
        SampleTags(network.topics, z, options.tags_per_item, rng);
    const TopicPosterior posterior =
        network.topics.Posterior(cascade.item_tags);

    const auto seed =
        static_cast<VertexId>(rng->NextBounded(network.num_vertices()));
    std::vector<VertexId> frontier{seed};
    std::vector<VertexId> touched{seed};
    active[seed] = 1;
    cascade.activations.emplace_back(seed, 0);
    uint32_t step = 0;
    while (!frontier.empty()) {
      ++step;
      std::vector<VertexId> next;
      for (VertexId v : frontier) {
        for (const auto& [w, e] : network.graph.OutEdges(v)) {
          if (active[w]) continue;
          const double p = network.influence.EdgeProb(e, posterior);
          if (p > 0.0 && rng->NextBernoulli(p)) {
            active[w] = 1;
            touched.push_back(w);
            next.push_back(w);
            cascade.activations.emplace_back(w, step);
          }
        }
      }
      frontier = std::move(next);
    }
    for (VertexId v : touched) active[v] = 0;
    log.cascades.push_back(std::move(cascade));
  }
  return log;
}

}  // namespace pitex
