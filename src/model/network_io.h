// Persistence for the full SocialNetwork bundle (topology, topic model,
// per-edge influence probabilities, tag names).
//
// Text format, versioned header, self-describing sections:
//
//   PITEX-NET 1
//   graph <|V|> <|E|>
//   <tail> <head>                      x |E|   (EdgeId order)
//   topics <|Z|> <|Omega|>
//   prior <p(z_0)> ... <p(z_{|Z|-1})>
//   tagtopic <nnz>
//   <w> <z> <p(w|z)>                   x nnz
//   influence <total entries>
//   <e> <z> <p(e|z)>                   x entries (EdgeId order within file)
//   tags <count>
//   <name>                             x count  (one per line, TagId order)
//
// The format is deliberately plain so that generated datasets can be
// inspected, diffed, and checked into experiment repositories.

#ifndef PITEX_SRC_MODEL_NETWORK_IO_H_
#define PITEX_SRC_MODEL_NETWORK_IO_H_

#include <optional>
#include <string>

#include "src/model/influence_graph.h"

namespace pitex {

/// Writes `network` to `path`. Returns false on I/O failure.
bool SaveNetwork(const SocialNetwork& network, const std::string& path);

/// Loads a network previously written by SaveNetwork. Returns nullopt on
/// I/O failure or malformed/mis-versioned content.
std::optional<SocialNetwork> LoadNetwork(const std::string& path);

}  // namespace pitex

#endif  // PITEX_SRC_MODEL_NETWORK_IO_H_
