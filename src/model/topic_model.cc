#include "src/model/topic_model.h"

#include <cmath>

#include "src/util/check.h"

namespace pitex {

TopicModel::TopicModel(size_t num_topics, size_t num_tags)
    : num_topics_(num_topics),
      num_tags_(num_tags),
      tag_topic_(num_topics * num_tags, 0.0),
      prior_(num_topics, num_topics > 0 ? 1.0 / num_topics : 0.0) {
  PITEX_CHECK(num_topics > 0);
}

void TopicModel::SetTagTopic(TagId w, TopicId z, double p) {
  PITEX_CHECK(w < num_tags_ && z < num_topics_);
  PITEX_CHECK(p >= 0.0 && p <= 1.0);
  tag_topic_[static_cast<size_t>(w) * num_topics_ + z] = p;
}

void TopicModel::SetPrior(std::vector<double> prior) {
  PITEX_CHECK(prior.size() == num_topics_);
  double sum = 0.0;
  for (double p : prior) {
    PITEX_CHECK(p >= 0.0);
    sum += p;
  }
  PITEX_CHECK(std::abs(sum - 1.0) < 1e-6);
  prior_ = std::move(prior);
}

TopicPosterior TopicModel::Posterior(std::span<const TagId> tags) const {
  TopicPosterior post;
  PosteriorInto(tags, &post);
  return post;
}

PITEX_NOALLOC void TopicModel::PosteriorInto(std::span<const TagId> tags,
                               TopicPosterior* out) const {
  out->assign(prior_.begin(), prior_.end());
  if (tags.empty()) return;
  TopicPosterior& post = *out;
  for (TopicId z = 0; z < num_topics_; ++z) {
    for (TagId w : tags) {
      PITEX_DCHECK(w < num_tags_);
      post[z] *= TagTopic(w, z);
      if (post[z] == 0.0) break;
    }
  }
  double norm = 0.0;
  for (double v : post) norm += v;
  if (norm <= 0.0) {
    // p(W) = 0: the tag set is unexpressible; all edge probabilities vanish.
    out->assign(num_topics_, 0.0);
    return;
  }
  for (double& v : post) v /= norm;
}

double TopicModel::Density() const {
  size_t nonzero = 0;
  for (double v : tag_topic_) nonzero += (v > 0.0);
  return tag_topic_.empty()
             ? 0.0
             : static_cast<double>(nonzero) /
                   static_cast<double>(tag_topic_.size());
}

}  // namespace pitex
