#include "src/model/tag_catalog.h"

#include "src/util/check.h"

namespace pitex {

TagId TagCatalog::Intern(std::string_view name) {
  auto it = ids_.find(std::string(name));
  if (it != ids_.end()) return it->second;
  const auto id = static_cast<TagId>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(names_.back(), id);
  return id;
}

std::optional<TagId> TagCatalog::Find(std::string_view name) const {
  auto it = ids_.find(std::string(name));
  if (it == ids_.end()) return std::nullopt;
  return it->second;
}

const std::string& TagCatalog::Name(TagId id) const {
  PITEX_CHECK(id < names_.size());
  return names_[id];
}

}  // namespace pitex
