// Simplified Topic-aware IC (TIC) parameter learner [Barbieri et al. 2012].
//
// Estimates p(e|z) and p(w|z) jointly from an action log via
// expectation-maximization:
//
//   E-step: each cascade i gets a topic responsibility gamma_i(z)
//           proportional to p(z) * prod_{w in W_i} p(w|z).
//   M-step: p(e|z) = soft success / trial counts of edge e, weighted by
//           gamma_i(z); an edge (u, v) is *tried* in cascade i when u
//           activates and v is u's out-neighbor, and *succeeds* when v
//           activates exactly one step after u (standard IC credit
//           assignment, as in Goyal et al. 2010);
//           p(w|z) proportional to sum of gamma_i(z) over cascades
//           containing w.
//
// This is a deliberate simplification of the full TIC EM (which also
// handles partial credit among multiple possible parents); it is the
// substrate that lets the repo exercise the paper's "learn the model from a
// log of past propagation" pipeline end to end on synthetic logs.

#ifndef PITEX_SRC_MODEL_TIC_LEARNER_H_
#define PITEX_SRC_MODEL_TIC_LEARNER_H_

#include <cstddef>
#include <cstdint>

#include "src/model/action_log.h"
#include "src/model/influence_graph.h"

namespace pitex {

struct TicLearnerOptions {
  size_t num_topics = 4;
  size_t num_iterations = 20;
  /// Additive smoothing for p(w|z) counts.
  double tag_smoothing = 0.01;
  /// Edges whose learned probability falls below this are dropped,
  /// mirroring the sparsity of learned models noted in Sec 5.1.
  double min_edge_prob = 1e-3;
  uint64_t seed = 7;
};

/// Learned model: a topic model over the same tag universe plus per-edge
/// p(e|z) aligned with `graph`'s EdgeIds.
struct LearnedModel {
  TopicModel topics{1, 0};
  InfluenceGraph influence;
};

/// Runs EM on `log` over `graph` with `num_tags` vocabulary entries.
LearnedModel LearnTicModel(const Graph& graph, size_t num_tags,
                           const ActionLog& log,
                           const TicLearnerOptions& options);

}  // namespace pitex

#endif  // PITEX_SRC_MODEL_TIC_LEARNER_H_
