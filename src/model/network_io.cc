#include "src/model/network_io.h"

#include <fstream>
#include <limits>
#include <sstream>
#include <vector>

namespace pitex {

bool SaveNetwork(const SocialNetwork& network, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out.precision(17);

  out << "PITEX-NET 1\n";
  out << "graph " << network.num_vertices() << ' ' << network.num_edges()
      << '\n';
  for (EdgeId e = 0; e < network.num_edges(); ++e) {
    out << network.graph.Tail(e) << ' ' << network.graph.Head(e) << '\n';
  }

  const TopicModel& topics = network.topics;
  out << "topics " << topics.num_topics() << ' ' << topics.num_tags() << '\n';
  out << "prior";
  for (double p : topics.prior()) out << ' ' << p;
  out << '\n';
  size_t nnz = 0;
  for (TagId w = 0; w < topics.num_tags(); ++w) {
    for (TopicId z = 0; z < topics.num_topics(); ++z) {
      nnz += (topics.TagTopic(w, z) > 0.0);
    }
  }
  out << "tagtopic " << nnz << '\n';
  for (TagId w = 0; w < topics.num_tags(); ++w) {
    for (TopicId z = 0; z < topics.num_topics(); ++z) {
      const double p = topics.TagTopic(w, z);
      if (p > 0.0) out << w << ' ' << z << ' ' << p << '\n';
    }
  }

  size_t influence_entries = 0;
  for (EdgeId e = 0; e < network.num_edges(); ++e) {
    influence_entries += network.influence.EdgeTopics(e).size();
  }
  out << "influence " << influence_entries << '\n';
  for (EdgeId e = 0; e < network.num_edges(); ++e) {
    for (const auto& [z, p] : network.influence.EdgeTopics(e)) {
      out << e << ' ' << z << ' ' << p << '\n';
    }
  }

  out << "tags " << network.tags.size() << '\n';
  for (TagId w = 0; w < network.tags.size(); ++w) {
    out << network.tags.Name(w) << '\n';
  }
  return static_cast<bool>(out);
}

std::optional<SocialNetwork> LoadNetwork(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;

  std::string magic;
  int version = 0;
  if (!(in >> magic >> version) || magic != "PITEX-NET" || version != 1) {
    return std::nullopt;
  }

  SocialNetwork network;
  std::string section;
  size_t n = 0, m = 0;
  if (!(in >> section >> n >> m) || section != "graph") return std::nullopt;
  GraphBuilder graph(n);
  for (size_t i = 0; i < m; ++i) {
    VertexId u = 0, v = 0;
    if (!(in >> u >> v) || u >= n || v >= n) return std::nullopt;
    graph.AddEdge(u, v);
  }
  network.graph = graph.Build();

  size_t num_topics = 0, num_tags = 0;
  if (!(in >> section >> num_topics >> num_tags) || section != "topics" ||
      num_topics == 0) {
    return std::nullopt;
  }
  network.topics = TopicModel(num_topics, num_tags);
  if (!(in >> section) || section != "prior") return std::nullopt;
  std::vector<double> prior(num_topics);
  for (double& p : prior) {
    if (!(in >> p) || p < 0.0) return std::nullopt;
  }
  network.topics.SetPrior(std::move(prior));

  size_t nnz = 0;
  if (!(in >> section >> nnz) || section != "tagtopic") return std::nullopt;
  for (size_t i = 0; i < nnz; ++i) {
    TagId w = 0;
    TopicId z = 0;
    double p = 0.0;
    if (!(in >> w >> z >> p) || w >= num_tags || z >= num_topics || p < 0.0 ||
        p > 1.0) {
      return std::nullopt;
    }
    network.topics.SetTagTopic(w, z, p);
  }

  size_t influence_entries = 0;
  if (!(in >> section >> influence_entries) || section != "influence") {
    return std::nullopt;
  }
  InfluenceGraphBuilder influence(m);
  std::vector<EdgeTopicEntry> staged;
  EdgeId current = std::numeric_limits<EdgeId>::max();
  auto flush = [&]() {
    if (current != std::numeric_limits<EdgeId>::max()) {
      influence.SetEdgeTopics(current, staged);
      staged.clear();
    }
  };
  for (size_t i = 0; i < influence_entries; ++i) {
    EdgeId e = 0;
    TopicId z = 0;
    double p = 0.0;
    if (!(in >> e >> z >> p) || e >= m || z >= num_topics || p < 0.0 ||
        p > 1.0) {
      return std::nullopt;
    }
    if (e != current) {
      if (current != std::numeric_limits<EdgeId>::max() && e < current) {
        return std::nullopt;  // entries must be grouped by ascending edge
      }
      flush();
      current = e;
    }
    staged.push_back({z, p});
  }
  flush();
  network.influence = influence.Build();

  size_t tag_count = 0;
  if (!(in >> section >> tag_count) || section != "tags") return std::nullopt;
  in.ignore(std::numeric_limits<std::streamsize>::max(), '\n');
  for (size_t i = 0; i < tag_count; ++i) {
    std::string name;
    if (!std::getline(in, name) || name.empty()) return std::nullopt;
    network.tags.Intern(name);
  }
  return network;
}

}  // namespace pitex
