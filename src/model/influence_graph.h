// Per-edge topic-wise influence probabilities p(e|z) and the tag-set
// activation probability p(e|W) of Eq. (1).
//
// Learned propagation models are sparse (Sec 5.1): most edges carry
// probability mass on only a few topics. We therefore store each edge's
// topic vector in CSR form over (topic, probability) pairs. Computing
// p(e|W) is then a sparse dot product with the topic posterior p(z|W).
//
// The SocialNetwork aggregate bundles the graph topology, the topic model
// and the influence probabilities — the triple every PITEX algorithm
// consumes.

#ifndef PITEX_SRC_MODEL_INFLUENCE_GRAPH_H_
#define PITEX_SRC_MODEL_INFLUENCE_GRAPH_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "src/graph/graph.h"
#include "src/model/topic_model.h"

namespace pitex {

/// One (topic, probability) entry of an edge's sparse topic vector.
struct EdgeTopicEntry {
  TopicId topic;
  double prob;
};

/// One edge's replacement topic vector for ReplaceEdgeTopics (empty
/// entries delete the edge's influence entirely).
struct EdgeTopicsReplacement {
  EdgeId edge = 0;
  std::span<const EdgeTopicEntry> entries;
};

/// Immutable per-edge p(e|z) table. Build with InfluenceGraphBuilder.
class InfluenceGraph {
 public:
  InfluenceGraph() = default;

  size_t num_edges() const { return offsets_.size() - 1; }

  /// Sparse topic vector of edge e.
  std::span<const EdgeTopicEntry> EdgeTopics(EdgeId e) const {
    return {entries_.data() + offsets_[e], entries_.data() + offsets_[e + 1]};
  }

  /// p(e|z); 0 when the edge carries no mass on z.
  double EdgeTopicProb(EdgeId e, TopicId z) const;

  /// p(e|W) = sum_z p(e|z) * posterior[z] (Eq. 1).
  double EdgeProb(EdgeId e, const TopicPosterior& posterior) const;

  /// p(e) = max_z p(e|z) — the "any topic" envelope used by the RR-Graph
  /// index (Def. 2): p(e) >= p(e|W) for every W.
  double MaxProb(EdgeId e) const { return max_prob_[e]; }

 private:
  friend class InfluenceGraphBuilder;
  friend InfluenceGraph ReplaceEdgeTopics(
      const InfluenceGraph& influence,
      std::span<const EdgeTopicsReplacement> replacements);

  std::vector<uint64_t> offsets_{0};
  std::vector<EdgeTopicEntry> entries_;
  std::vector<double> max_prob_;
};

/// Accumulates edge topic vectors in EdgeId order.
class InfluenceGraphBuilder {
 public:
  explicit InfluenceGraphBuilder(size_t num_edges);

  /// Sets the topic vector of edge e. May be called in any order; each edge
  /// at most once. Probabilities must be in [0, 1]; zero entries are
  /// dropped.
  void SetEdgeTopics(EdgeId e, std::span<const EdgeTopicEntry> entries);

  InfluenceGraph Build();

 private:
  size_t num_edges_;
  std::vector<std::vector<EdgeTopicEntry>> staged_;
};

/// Copy of `influence` with the listed edges' topic vectors replaced —
/// the batch-fold primitive of DynamicRrIndex::ApplyUpdates. Entry
/// validation matches InfluenceGraphBuilder (probabilities in [0, 1],
/// zero entries dropped, sorted by topic, duplicate topics rejected),
/// but the copy is one exact-size pass over the CSR: unchanged edges
/// are block-copied, so a batch costs O(|E| + nnz) with three array
/// allocations instead of one staging vector per edge. Each edge may
/// appear at most once in `replacements`.
InfluenceGraph ReplaceEdgeTopics(
    const InfluenceGraph& influence,
    std::span<const EdgeTopicsReplacement> replacements);

/// Smallest float >= p. The RR-Graph build consumes envelope
/// probabilities through a dense float table (half the bytes of the
/// double array, so the reverse-BFS inner loop streams twice the edges
/// per cache line); rounding *up* preserves the Definition-2 envelope
/// invariant p(e) >= p(e|W) for every tag set W that the double value
/// guaranteed. Requires p in [0, 1].
float EnvelopeProbability(double p);

/// Dense envelope table for index construction: p(e) = max_z p(e|z) as
/// floats laid out in *in-adjacency order* (entry Graph::InEdgeOffset(v)
/// + j belongs to InEdges(v)[j]), plus the per-vertex maximum over
/// in-edges. The reverse-BFS probe loop of RR-Graph generation reads the
/// per-vertex slice sequentially — no virtual MaxProb call, no sparse
/// indirection — and the per-vertex maximum drives the geometric-skip
/// decision (see SampleLiveInEdges in src/index/sketch_arena.h).
/// Materialized once per build (O(|E|)); DynamicRrIndex keeps one as its
/// O(1)-updatable envelope mirror across repair batches.
class EnvelopeTable {
 public:
  EnvelopeTable() = default;
  EnvelopeTable(const Graph& graph, const InfluenceGraph& influence);

  /// Envelope slice aligned with graph.InEdges(v).
  std::span<const float> InEnvelopes(const Graph& graph, VertexId v) const {
    return {in_env_.data() + graph.InEdgeOffset(v), graph.InDegree(v)};
  }
  /// max over InEnvelopes(v); 0 for in-degree-0 vertices.
  float VertexMax(VertexId v) const { return vertex_max_[v]; }
  /// Envelope of edge e (EdgeId-indexed random access).
  float Prob(EdgeId e) const { return in_env_[in_pos_[e]]; }

  /// Replaces edge e's envelope with EnvelopeProbability(max_prob) and
  /// rescans the head's per-vertex maximum — O(InDegree(head(e))).
  void Update(const Graph& graph, EdgeId e, double max_prob);

  size_t SizeBytes() const;

 private:
  std::vector<float> in_env_;      // in-adjacency order
  std::vector<uint32_t> in_pos_;   // EdgeId -> slot in in_env_
  std::vector<float> vertex_max_;  // per-vertex max over in-edges
};

/// The full PITEX input: topology + tag/topic model + p(e|z).
struct SocialNetwork {
  Graph graph;
  TopicModel topics{1, 0};
  InfluenceGraph influence;
  TagCatalog tags;

  size_t num_vertices() const { return graph.num_vertices(); }
  size_t num_edges() const { return graph.num_edges(); }
};

/// Result of a forward reachability sweep restricted to edges with
/// p(e|W) > 0: the set R_W(u) and the count |E_W(u)| of edges with both
/// endpoints inside it (Table 1 of the paper).
struct ReachableSet {
  std::vector<VertexId> vertices;
  size_t num_internal_edges = 0;
};

/// Computes R_W(u) / E_W(u) by BFS over edges with positive p(e|W).
ReachableSet ComputeReachableSet(const Graph& graph,
                                 const InfluenceGraph& influence,
                                 const TopicPosterior& posterior, VertexId u);

/// Computes the reachable set when every edge with p(e) > 0 is kept —
/// R(u) under the index envelope probabilities.
ReachableSet ComputeMaxReachableSet(const Graph& graph,
                                    const InfluenceGraph& influence,
                                    VertexId u);

}  // namespace pitex

#endif  // PITEX_SRC_MODEL_INFLUENCE_GRAPH_H_
