// Per-edge topic-wise influence probabilities p(e|z) and the tag-set
// activation probability p(e|W) of Eq. (1).
//
// Learned propagation models are sparse (Sec 5.1): most edges carry
// probability mass on only a few topics. We therefore store each edge's
// topic vector in CSR form over (topic, probability) pairs. Computing
// p(e|W) is then a sparse dot product with the topic posterior p(z|W).
//
// The SocialNetwork aggregate bundles the graph topology, the topic model
// and the influence probabilities — the triple every PITEX algorithm
// consumes.

#ifndef PITEX_SRC_MODEL_INFLUENCE_GRAPH_H_
#define PITEX_SRC_MODEL_INFLUENCE_GRAPH_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "src/graph/graph.h"
#include "src/model/topic_model.h"

namespace pitex {

/// One (topic, probability) entry of an edge's sparse topic vector.
struct EdgeTopicEntry {
  TopicId topic;
  double prob;
};

/// Immutable per-edge p(e|z) table. Build with InfluenceGraphBuilder.
class InfluenceGraph {
 public:
  InfluenceGraph() = default;

  size_t num_edges() const { return offsets_.size() - 1; }

  /// Sparse topic vector of edge e.
  std::span<const EdgeTopicEntry> EdgeTopics(EdgeId e) const {
    return {entries_.data() + offsets_[e], entries_.data() + offsets_[e + 1]};
  }

  /// p(e|z); 0 when the edge carries no mass on z.
  double EdgeTopicProb(EdgeId e, TopicId z) const;

  /// p(e|W) = sum_z p(e|z) * posterior[z] (Eq. 1).
  double EdgeProb(EdgeId e, const TopicPosterior& posterior) const;

  /// p(e) = max_z p(e|z) — the "any topic" envelope used by the RR-Graph
  /// index (Def. 2): p(e) >= p(e|W) for every W.
  double MaxProb(EdgeId e) const { return max_prob_[e]; }

 private:
  friend class InfluenceGraphBuilder;

  std::vector<uint64_t> offsets_{0};
  std::vector<EdgeTopicEntry> entries_;
  std::vector<double> max_prob_;
};

/// Accumulates edge topic vectors in EdgeId order.
class InfluenceGraphBuilder {
 public:
  explicit InfluenceGraphBuilder(size_t num_edges);

  /// Sets the topic vector of edge e. May be called in any order; each edge
  /// at most once. Probabilities must be in [0, 1]; zero entries are
  /// dropped.
  void SetEdgeTopics(EdgeId e, std::span<const EdgeTopicEntry> entries);

  InfluenceGraph Build();

 private:
  size_t num_edges_;
  std::vector<std::vector<EdgeTopicEntry>> staged_;
};

/// The full PITEX input: topology + tag/topic model + p(e|z).
struct SocialNetwork {
  Graph graph;
  TopicModel topics{1, 0};
  InfluenceGraph influence;
  TagCatalog tags;

  size_t num_vertices() const { return graph.num_vertices(); }
  size_t num_edges() const { return graph.num_edges(); }
};

/// Result of a forward reachability sweep restricted to edges with
/// p(e|W) > 0: the set R_W(u) and the count |E_W(u)| of edges with both
/// endpoints inside it (Table 1 of the paper).
struct ReachableSet {
  std::vector<VertexId> vertices;
  size_t num_internal_edges = 0;
};

/// Computes R_W(u) / E_W(u) by BFS over edges with positive p(e|W).
ReachableSet ComputeReachableSet(const Graph& graph,
                                 const InfluenceGraph& influence,
                                 const TopicPosterior& posterior, VertexId u);

/// Computes the reachable set when every edge with p(e) > 0 is kept —
/// R(u) under the index envelope probabilities.
ReachableSet ComputeMaxReachableSet(const Graph& graph,
                                    const InfluenceGraph& influence,
                                    VertexId u);

}  // namespace pitex

#endif  // PITEX_SRC_MODEL_INFLUENCE_GRAPH_H_
