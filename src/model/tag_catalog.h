// Tag vocabulary: maps human-readable tag strings to dense TagIds.
//
// Tags are the user-facing vocabulary of PITEX (hashtags, keywords,
// product features). Algorithms work on dense ids; the catalog is only
// consulted at the API boundary and when printing results.

#ifndef PITEX_SRC_MODEL_TAG_CATALOG_H_
#define PITEX_SRC_MODEL_TAG_CATALOG_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace pitex {

using TagId = uint32_t;

/// Bidirectional tag-name <-> TagId mapping. Ids are dense and assigned in
/// insertion order.
class TagCatalog {
 public:
  /// Interns `name` and returns its id (existing id if already present).
  TagId Intern(std::string_view name);

  /// Returns the id of `name` if present.
  std::optional<TagId> Find(std::string_view name) const;

  /// Returns the name of `id`. Requires id < size().
  const std::string& Name(TagId id) const;

  size_t size() const { return names_.size(); }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, TagId> ids_;
};

}  // namespace pitex

#endif  // PITEX_SRC_MODEL_TAG_CATALOG_H_
