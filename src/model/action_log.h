// Propagation ("action") logs and a synthetic trace generator.
//
// The paper derives p(e|z) and p(w|z) from a "log of past propagation" [2]:
// timestamped records of users re-sharing tagged items. Real logs (lastfm,
// diggs) are unavailable offline, so we provide (a) the log data structure
// and (b) a simulator that plants a ground-truth topic-aware IC model and
// rolls cascades forward through the graph, producing exactly the kind of
// log the TIC learner (src/model/tic_learner.h) consumes.

#ifndef PITEX_SRC_MODEL_ACTION_LOG_H_
#define PITEX_SRC_MODEL_ACTION_LOG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "src/model/influence_graph.h"
#include "src/util/random.h"

namespace pitex {

/// One item's cascade: the tags describing the item and the ordered list of
/// (user, activation step) pairs, seed included at step 0.
struct Cascade {
  std::vector<TagId> item_tags;
  std::vector<std::pair<VertexId, uint32_t>> activations;
};

/// A log of cascades over a fixed graph.
struct ActionLog {
  std::vector<Cascade> cascades;

  size_t TotalActivations() const;
};

/// Options for the cascade simulator.
struct CascadeSimOptions {
  /// Number of cascades (items) to simulate.
  size_t num_cascades = 1000;
  /// Tags per item, drawn from the planted topic of the item.
  size_t tags_per_item = 2;
};

/// Simulates `options.num_cascades` cascades on `network`: each item picks
/// a topic from the prior, draws `tags_per_item` distinct tags
/// proportionally to p(w|z), seeds a uniformly random user, and runs the
/// IC process with the tag-set probabilities p(e|W) of Eq. (1).
ActionLog SimulateCascades(const SocialNetwork& network,
                           const CascadeSimOptions& options, Rng* rng);

}  // namespace pitex

#endif  // PITEX_SRC_MODEL_ACTION_LOG_H_
