// Always-on structured event journal for the serving tier
// (docs/observability.md, "Journal events").
//
// Answers "what happened in the 2s before the publish stalled?":
// counters say HOW OFTEN the serving tier shed, degraded, retried or
// failed; the journal says WHEN and in WHAT ORDER. It is a fixed-size
// lock-free ring of small structured events -- kind + monotonic
// timestamp + two integer payload slots -- recorded on the rare-event
// paths (shed, degraded, WAL failure, publish retry, epoch swap,
// recovery replay), never on the per-query happy path. Treating these
// as structured data instead of log lines keeps recording allocation-
// free and makes the buffer queryable after the fact.
//
// Concurrency: Record() is wait-free -- one fetch_add claims a slot,
// then a per-slot seqlock (stamp 0 while the fields are in flight, the
// claim index + 1 when complete) publishes it. Snapshot() validates
// each slot's stamp before and after reading the fields and simply
// skips slots a concurrent writer is mid-flight on; with the ring
// sized well above the event rate, a skipped slot means the event was
// about to be overwritten anyway.
//
// Dumping: DumpTo(stderr) renders the ring oldest-first, and
// PitexService invokes it automatically on its crash-adjacent paths
// (recovery failure, initial-freeze failure) so the flight recorder is
// on the console exactly when the process is about to abort.

#ifndef PITEX_SRC_OBS_JOURNAL_H_
#define PITEX_SRC_OBS_JOURNAL_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <vector>

namespace pitex {
namespace obs {

enum class EventKind : uint8_t {
  /// Query refused at admission. a = user, b = verdict
  /// (1 = queue full, 2 = rate limited).
  kShed = 0,
  /// Budget expired mid-search (best-so-far answer). a = user, b = worker.
  kDegraded,
  /// Budget already gone at pickup (no search run). a = user, b = worker.
  kDeadlineExpired,
  /// WAL append/commit failed; the batch was rejected. a = batch size.
  kWalFailure,
  /// One snapshot-freeze attempt failed and will back off. a = epoch,
  /// b = retries so far this publish.
  kPublishRetry,
  /// Every freeze attempt failed; updates stay staged. a = epoch.
  kPublishFailure,
  /// A new epoch became visible to queries. a = epoch, b = durable LSN.
  kEpochSwap,
  /// Checkpoint written and WAL truncated. a = LSN, b = epoch.
  kCheckpoint,
  /// Checkpoint attempt failed (non-fatal). a = LSN.
  kCheckpointFailure,
  /// Start() replayed the WAL tail over a checkpoint. a = replayed
  /// records, b = last LSN.
  kRecoveryReplay,
  /// A worker rebuilt its engine for a new epoch. a = worker, b = epoch.
  kWorkerRebind,
  /// The WAL shipper sent its bootstrap checkpoint to a follower.
  /// a = checkpoint LSN (0 = none existed), b = shipper term.
  kReplShipCheckpoint,
  /// A follower requested (or the shipper served) a resync: the shipping
  /// cursor rewinds and records are resent. a = resync-from LSN.
  kReplResync,
  /// A follower promoted itself to primary after heartbeat loss.
  /// a = new term, b = last applied LSN at promotion.
  kReplPromote,
  /// A write was rejected because this writer's term is stale (a newer
  /// primary was elected). a = authority's current term, b = this
  /// writer's (deposed) term.
  kFencedWrite,
  kEventKindCount,
};

const char* EventKindName(EventKind kind);

struct Event {
  int64_t t_ns = 0;  // steady_clock (obs::NowNs)
  EventKind kind = EventKind::kShed;
  uint64_t a = 0;
  uint64_t b = 0;
};

class EventJournal {
 public:
  /// `capacity` is rounded up to a power of two (slot indexing is a
  /// mask). The ring is allocated once here; Record never allocates.
  explicit EventJournal(size_t capacity = 1024);

  EventJournal(const EventJournal&) = delete;
  EventJournal& operator=(const EventJournal&) = delete;

  /// Wait-free append; overwrites the oldest event when full.
  void Record(EventKind kind, uint64_t a = 0, uint64_t b = 0);

  /// Stable events oldest-first (mid-write slots skipped).
  std::vector<Event> Snapshot() const;

  /// Renders Snapshot() to `out`, one line per event.
  void DumpTo(std::FILE* out) const;

  /// Events recorded over the journal's lifetime (>= ring occupancy).
  uint64_t total_recorded() const {
    return next_.load(std::memory_order_relaxed);
  }

  size_t capacity() const { return slots_.size(); }

 private:
  struct Slot {
    // Seqlock stamp: 0 = never written or write in flight; otherwise
    // claim index + 1. Fields are only meaningful when the stamp reads
    // identically (and nonzero) before and after.
    std::atomic<uint64_t> stamp{0};
    std::atomic<int64_t> t_ns{0};
    std::atomic<uint8_t> kind{0};
    std::atomic<uint64_t> a{0};
    std::atomic<uint64_t> b{0};
  };

  std::vector<Slot> slots_;
  size_t mask_;
  std::atomic<uint64_t> next_{0};
};

}  // namespace obs
}  // namespace pitex

#endif  // PITEX_SRC_OBS_JOURNAL_H_
