// Allocation-free tracing spans for the serving tier
// (docs/observability.md, "Span taxonomy").
//
// Answers "where did this query's 40ms go?": each sampled query (and
// each publish) gets a TraceContext -- an 8-byte identity that crosses
// threads with the query -- and the instrumented pipeline records
// timed spans against it: admission -> queue wait -> cache probe ->
// solve -> result delivery on the query path, and publish -> WAL
// append/fsync -> freeze/pack -> swap -> checkpoint on the publish
// path.
//
// Storage deliberately does NOT live in the context: a span array
// embedded per query would bloat PendingQuery and be memcpy'd through
// every scheduler move/steal. Spans land in preallocated THREAD-LOCAL
// ring buffers (fixed capacity, overwrite-oldest) owned by the process
// tracer; Collect(trace_id) stitches a query's spans back together by
// identity. Buffers are recycled through a free list when threads
// exit, so churning thread pools do not grow the footprint.
//
// Cost model (mirrors src/util/failpoint.h, measured by
// BM_SpanStartStop in bench/micro_components.cc):
//   * compiled out (-DPITEX_TRACING=OFF): the macros vanish; the class
//     stays linkable but StartTrace() always returns 0;
//   * disarmed (sampling off, or this query not sampled): a span is a
//     thread-local load and a branch -- no clock read, ~1ns;
//   * armed: two steady_clock reads plus a ring append under the
//     buffer's own (uncontended) mutex.
//
// The sampling knob: SetSampleEvery(n) samples one of every n traces
// (0 disables; 1 traces everything). Arm from the environment with
// PITEX_TRACE_SAMPLE=<n> -- same pattern as PITEX_FAILPOINTS. All
// timestamps are steady_clock (the tree's blessed monotonic clock;
// system_clock is banned by tools/check rule `determinism`).

#ifndef PITEX_SRC_OBS_TRACE_H_
#define PITEX_SRC_OBS_TRACE_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

// CMake sets this to 0 under -DPITEX_TRACING=OFF; the default build
// (and a standalone include) compiles the spans in.
#ifndef PITEX_TRACING_ENABLED
#define PITEX_TRACING_ENABLED 1
#endif

namespace pitex {
namespace obs {

enum class SpanKind : uint8_t {
  // Query path.
  kAdmission = 0,  // admission verdict + enqueue
  kQueueWait,      // enqueue -> worker pickup (recorded by the worker)
  kCacheProbe,     // ResultCache lookup
  kSolve,          // engine execution (Explore / ExploreTopN)
  kResult,         // answer delivery (promise/slot + batch countdown)
  // Publish path.
  kPublish,    // whole ApplyUpdates critical section
  kWalAppend,  // WriteAheadLog::Append
  kWalFsync,   // WriteAheadLog::Sync (the commit point)
  kFreeze,     // FreezeSnapshotLocked (retry loop included)
  kPack,       // IndexSnapshot::FromDynamic (network copy + sketch pack)
  kSwap,       // IndexSnapshotRegistry::Publish (the epoch swap)
  kCheckpoint, // checkpoint write + WAL truncation
  kSpanKindCount,
};

const char* SpanKindName(SpanKind kind);

struct SpanRecord {
  uint64_t trace_id = 0;
  int64_t start_ns = 0;
  int64_t end_ns = 0;
  SpanKind kind = SpanKind::kAdmission;
};

/// Monotonic nanoseconds (steady_clock), the time base of every span
/// and journal event.
inline int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

inline int64_t ToNs(std::chrono::steady_clock::time_point tp) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             tp.time_since_epoch())
      .count();
}

// Spans a thread-local buffer can hold before overwriting the oldest
// (drops are counted, never silent).
inline constexpr size_t kSpanBufferCapacity = 4096;

/// Process-wide span recorder. Thread-safe throughout.
class Tracer {
 public:
  /// First use parses PITEX_TRACE_SAMPLE from the environment.
  static Tracer& Instance();

  /// Sample one of every `n` started traces; 0 disables sampling (and
  /// with it every span cost beyond one relaxed load per StartTrace).
  void SetSampleEvery(uint64_t n) {
    sample_every_.store(n, std::memory_order_relaxed);
  }
  uint64_t sample_every() const {
    return sample_every_.load(std::memory_order_relaxed);
  }

  /// Returns a fresh nonzero trace id when this trace is sampled, 0
  /// otherwise. Always returns 0 when tracing is compiled out.
  uint64_t StartTrace();

  /// The trace id armed on this thread by ScopedTrace (0 = none).
  static uint64_t CurrentTrace();

  /// Records one completed span. A zero trace_id is a no-op, which is
  /// what makes unsampled queries free at every record site.
  void Record(uint64_t trace_id, SpanKind kind, int64_t start_ns,
              int64_t end_ns);

  /// All spans recorded for `trace_id`, ordered by start time.
  std::vector<SpanRecord> Collect(uint64_t trace_id) PITEX_EXCLUDES(mutex_);
  /// Every live span in every thread buffer, ordered by start time.
  std::vector<SpanRecord> CollectAll() PITEX_EXCLUDES(mutex_);

  /// Spans overwritten before collection (ring wrap), cumulative.
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

  /// Empties every buffer (test isolation between cases).
  void Clear() PITEX_EXCLUDES(mutex_);

 private:
  friend class ScopedTrace;
  friend struct TracerThreadHandle;

  struct SpanBuffer {
    Mutex mutex;
    std::array<SpanRecord, kSpanBufferCapacity> ring PITEX_GUARDED_BY(mutex);
    size_t size PITEX_GUARDED_BY(mutex) = 0;
    size_t pos PITEX_GUARDED_BY(mutex) = 0;  // next write slot once full
    bool free = false;  // guarded by the tracer's mutex_
  };

  Tracer();

  SpanBuffer* AcquireBuffer() PITEX_EXCLUDES(mutex_);
  void ReleaseBuffer(SpanBuffer* buffer) PITEX_EXCLUDES(mutex_);
  SpanBuffer* ThisThreadBuffer();

  std::atomic<uint64_t> sample_every_{0};
  std::atomic<uint64_t> next_id_{1};
  std::atomic<uint64_t> dropped_{0};

  mutable Mutex mutex_;
  // Owns every buffer ever handed out; exited threads mark theirs free
  // for reuse instead of destroying them (Collect may still read them).
  std::vector<std::unique_ptr<SpanBuffer>> buffers_ PITEX_GUARDED_BY(mutex_);
};

/// Thin per-query handle: the identity spans are recorded against.
class TraceContext {
 public:
  TraceContext() = default;
  /// Samples: a sampled context has a nonzero id.
  static TraceContext Start() { return TraceContext(Tracer::Instance().StartTrace()); }

  uint64_t id() const { return id_; }
  bool sampled() const { return id_ != 0; }
  /// Explicit-timestamp record (cross-thread spans like queue wait,
  /// whose start was observed on the submitting thread).
  void Record(SpanKind kind, int64_t start_ns, int64_t end_ns) const {
    Tracer::Instance().Record(id_, kind, start_ns, end_ns);
  }

 private:
  explicit TraceContext(uint64_t id) : id_(id) {}
  uint64_t id_ = 0;
};

/// Arms `trace_id` as this thread's current trace for the enclosing
/// scope, so PITEX_SPAN sites in callees (the pack inside a freeze, the
/// solver inside a serve run) attribute to it without plumbing.
class ScopedTrace {
 public:
  explicit ScopedTrace(uint64_t trace_id);
  ~ScopedTrace();
  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;

 private:
  uint64_t saved_;
};

/// RAII span against the thread's current trace: inert (no clock read)
/// when no trace is armed.
class ScopedSpan {
 public:
  explicit ScopedSpan(SpanKind kind)
      : trace_id_(Tracer::CurrentTrace()), kind_(kind) {
    if (trace_id_ != 0) start_ns_ = NowNs();
  }
  ~ScopedSpan() {
    if (trace_id_ != 0) {
      Tracer::Instance().Record(trace_id_, kind_, start_ns_, NowNs());
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  uint64_t trace_id_;
  int64_t start_ns_ = 0;
  SpanKind kind_;
};

}  // namespace obs
}  // namespace pitex

#define PITEX_OBS_CAT_INNER(a, b) a##b
#define PITEX_OBS_CAT(a, b) PITEX_OBS_CAT_INNER(a, b)

#if PITEX_TRACING_ENABLED
/// Times the enclosing scope against the thread's current trace.
#define PITEX_SPAN(kind)                 \
  ::pitex::obs::ScopedSpan PITEX_OBS_CAT(pitex_span_, __LINE__)( \
      ::pitex::obs::SpanKind::kind)
/// Arms `id` as the current trace for the enclosing scope.
#define PITEX_TRACE_SCOPE(id) \
  ::pitex::obs::ScopedTrace PITEX_OBS_CAT(pitex_trace_scope_, __LINE__)(id)
#else
#define PITEX_SPAN(kind) \
  do {                   \
  } while (0)
#define PITEX_TRACE_SCOPE(id) \
  do {                        \
    (void)(id);               \
  } while (0)
#endif

#endif  // PITEX_SRC_OBS_TRACE_H_
