// Unified metrics registry for the serving tier (docs/observability.md).
//
// The serving layer grew its counters organically: ServiceStats fields,
// per-subsystem accessors (WriteAheadLog::appends()), and atomics
// sprinkled through PitexService. This registry gives every counter one
// home with three properties the ad-hoc scheme lacked:
//
//   * typed handles -- Counter (monotonic), Gauge (instantaneous) and
//     Histogram (fixed log-scaled buckets) are registered ONCE at
//     startup and then incremented through stable pointers. The hot
//     path never touches the registry again: no name lookup, no hash,
//     no lock;
//   * sharded relaxed atomics -- a Counter spreads its increments over
//     cacheline-padded shards selected by a thread-local slot, so N
//     serving pumps incrementing the same metric never ping-pong one
//     cache line. Value() folds the shards; monotonicity per shard
//     makes the fold a consistent lower bound at every instant and
//     exact in quiescence;
//   * snapshot-consistent export -- Snapshot() first runs registered
//     collector callbacks (which pull values out of internally-locked
//     sources like ResultCache or the snapshot registry into gauges),
//     then reads every metric, and the result renders to JSON or the
//     Prometheus text format without further synchronization.
//
// Ownership: a MetricsRegistry instance is embedded in the subsystem it
// describes (PitexService owns one per service -- two services in one
// process never share counts, which the conservation-invariant tests
// rely on). Code with no service context (the solver's deadline
// checkpoint, the thread pool dispatch loop, the result-cache probes)
// reports through the process-wide *hot counter table*: a fixed static
// array of Counters indexed by enum, incremented via PITEX_COUNT --
// the only metrics form tools/check rule `obs-hotpath` permits inside
// PITEX_NOALLOC bodies, because it is allocation-free and lookup-free
// by construction.

#ifndef PITEX_SRC_OBS_METRICS_H_
#define PITEX_SRC_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace pitex {
namespace obs {

// Shards per counter. 16 x 64B = 1KiB per counter: cheap enough for a
// few dozen registered metrics, wide enough that a typical serving pool
// (4-16 pumps) rarely collides.
inline constexpr size_t kMetricShards = 16;

/// Stable per-thread shard slot in [0, kMetricShards): assigned
/// round-robin on first use so concurrent threads spread evenly.
size_t ThreadShard();

/// Monotonic counter. Inc() is wait-free: one relaxed fetch_add on the
/// calling thread's shard. Value() folds the shards (exact once writers
/// quiesce; a consistent lower bound while they run).
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Inc(uint64_t n = 1) {
    shards_[ThreadShard()].value.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t Value() const {
    uint64_t total = 0;
    for (const Shard& shard : shards_) {
      total += shard.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };
  std::array<Shard, kMetricShards> shards_;
};

/// Instantaneous value, set by whoever observed it last (collectors use
/// Set to mirror internally-locked sources at export time).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Cumulative-bucket histogram over fixed upper bounds (the Prometheus
/// shape). Observe() is a short linear scan (bucket lists are small,
/// ~16 bounds) plus relaxed increments; the sum uses a CAS loop because
/// pre-C++20 toolchains lack atomic<double>::fetch_add.
class Histogram {
 public:
  /// `bounds` must be strictly increasing; an implicit +Inf bucket
  /// catches everything above the last bound.
  explicit Histogram(std::vector<double> bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(double v);

  const std::vector<double>& bounds() const { return bounds_; }
  /// counts()[i] covers (bounds[i-1], bounds[i]]; the last element is
  /// the +Inf bucket.
  std::vector<uint64_t> Counts() const;
  uint64_t TotalCount() const;
  double Sum() const;

 private:
  std::vector<double> bounds_;
  // One atomic per bucket (buckets are already spread by value, so
  // cross-thread collisions need both the same metric AND the same
  // bucket -- rare enough to skip the per-bucket shard fan-out).
  std::vector<std::atomic<uint64_t>> counts_;
  std::atomic<uint64_t> total_{0};
  std::atomic<double> sum_{0.0};
};

enum class MetricType : uint8_t { kCounter, kGauge, kHistogram };

/// One exported metric value (see MetricsSnapshot).
struct MetricValue {
  std::string name;
  std::string help;
  MetricType type = MetricType::kCounter;
  uint64_t counter = 0;  // kCounter
  int64_t gauge = 0;     // kGauge
  // kHistogram: per-bucket (non-cumulative) counts; bounds from the
  // histogram, +Inf implicit as the trailing entry.
  std::vector<double> bounds;
  std::vector<uint64_t> bucket_counts;
  uint64_t count = 0;
  double sum = 0.0;
};

/// A point-in-time read of every registered metric; renders to JSON or
/// the Prometheus text exposition format.
struct MetricsSnapshot {
  std::vector<MetricValue> metrics;

  const MetricValue* Find(std::string_view name) const;
  /// Checked lookups for tests and invariant assertions: abort on a
  /// missing name or a type mismatch (a misspelled metric name must be
  /// a loud failure, not a silent zero).
  uint64_t CounterValue(std::string_view name) const;
  int64_t GaugeValue(std::string_view name) const;

  std::string ToJson() const;
  std::string ToPrometheus() const;
};

/// Registry of named metrics. Registration happens once at subsystem
/// startup (idempotent per name: re-registering returns the existing
/// handle, so a restarted component keeps its counts); handles stay
/// valid for the registry's lifetime. All methods are thread-safe.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* RegisterCounter(std::string_view name, std::string_view help)
      PITEX_EXCLUDES(mutex_);
  Gauge* RegisterGauge(std::string_view name, std::string_view help)
      PITEX_EXCLUDES(mutex_);
  Histogram* RegisterHistogram(std::string_view name, std::string_view help,
                               std::vector<double> bounds)
      PITEX_EXCLUDES(mutex_);

  /// Collectors run (serialized, under the registry lock) at the start
  /// of every Snapshot(): the hook that turns internally-locked sources
  /// (cache shards, the snapshot registry, admission) into gauge values
  /// read in the same pass as everything else.
  void AddCollector(std::function<void()> collector) PITEX_EXCLUDES(mutex_);

  MetricsSnapshot Snapshot() PITEX_EXCLUDES(mutex_);

 private:
  struct Entry {
    std::string name;
    std::string help;
    MetricType type;
    // Exactly one of these is engaged, matching `type`. deque storage
    // below keeps the pointers stable across registrations.
    Counter counter;
    Gauge gauge;
    std::unique_ptr<Histogram> histogram;

    explicit Entry(std::string_view n, std::string_view h, MetricType t)
        : name(n), help(h), type(t) {}
  };

  Entry* FindLocked(std::string_view name, MetricType type)
      PITEX_REQUIRES(mutex_);

  mutable Mutex mutex_;
  std::deque<Entry> entries_ PITEX_GUARDED_BY(mutex_);
  std::vector<std::function<void()>> collectors_ PITEX_GUARDED_BY(mutex_);
};

// ---------------------------------------------------------------------------
// Process-wide hot counter table.
//
// Hot paths that cannot carry a registry handle (the PITEX_NOALLOC
// solver loop, the pool dispatch loop) increment these. The table is a
// static array -- no registration, no lookup, no allocation, ever --
// and HotCountersSnapshot() exports it with stable names.

enum class HotCounter : uint8_t {
  /// Cooperative deadline checkpoints evaluated by the best-effort
  /// solver (one per frontier pop under a budget).
  kSolveDeadlineChecks = 0,
  /// Frontier pops in the best-effort solver (budgeted or not).
  kSolveFrontierPops,
  /// ResultCache::Lookup calls (hits + misses).
  kCacheProbes,
  /// ResultCache::Insert calls.
  kCacheInserts,
  /// Tasks executed by any ThreadPool worker.
  kPoolTasks,
  kHotCounterCount,
};

/// The Counter behind one table slot. Constant-time array index into
/// static storage -- safe before main() and inside PITEX_NOALLOC code.
Counter& HotCounterRef(HotCounter which);

/// Named export of the whole table (appended to CLI stats dumps).
MetricsSnapshot HotCountersSnapshot();

}  // namespace obs
}  // namespace pitex

/// The sanctioned counter form for PITEX_NOALLOC bodies (tools/check
/// rule `obs-hotpath`): indexes the static hot-counter table and does
/// one relaxed fetch_add -- no registry, no strings, no allocation.
#define PITEX_COUNT(which, n) \
  (::pitex::obs::HotCounterRef(::pitex::obs::HotCounter::which).Inc(n))

#endif  // PITEX_SRC_OBS_METRICS_H_
