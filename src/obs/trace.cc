#include "src/obs/trace.h"

#include <algorithm>
#include <cstdlib>

namespace pitex {
namespace obs {

// The thread's buffer plus a destructor hook: when the thread exits,
// its buffer goes back to the tracer's free list (the tracer keeps
// ownership, so Collect can still read spans a dead thread recorded).
// Namespace scope (not anonymous) so the Tracer friend declaration in
// trace.h names this exact type.
struct TracerThreadHandle {
  Tracer::SpanBuffer* buffer = nullptr;
  Tracer* owner = nullptr;
  ~TracerThreadHandle() {
    if (buffer != nullptr && owner != nullptr) owner->ReleaseBuffer(buffer);
  }
};

namespace {
thread_local TracerThreadHandle t_buffer_handle;
}  // namespace

const char* SpanKindName(SpanKind kind) {
  switch (kind) {
    case SpanKind::kAdmission:
      return "admission";
    case SpanKind::kQueueWait:
      return "queue_wait";
    case SpanKind::kCacheProbe:
      return "cache_probe";
    case SpanKind::kSolve:
      return "solve";
    case SpanKind::kResult:
      return "result";
    case SpanKind::kPublish:
      return "publish";
    case SpanKind::kWalAppend:
      return "wal_append";
    case SpanKind::kWalFsync:
      return "wal_fsync";
    case SpanKind::kFreeze:
      return "freeze";
    case SpanKind::kPack:
      return "pack";
    case SpanKind::kSwap:
      return "swap";
    case SpanKind::kCheckpoint:
      return "checkpoint";
    case SpanKind::kSpanKindCount:
      break;
  }
  return "unknown";
}

Tracer::Tracer() {
  if (const char* env = std::getenv("PITEX_TRACE_SAMPLE")) {
    const long value = std::atol(env);
    if (value > 0) SetSampleEvery(static_cast<uint64_t>(value));
  }
}

Tracer& Tracer::Instance() {
  // Leaked singleton, same lifetime policy as FailpointRegistry: worker
  // threads may record during static destruction of other objects, and
  // a destructed tracer would turn those records into use-after-free.
  static Tracer* tracer = new Tracer();
  return *tracer;
}

uint64_t Tracer::StartTrace() {
#if PITEX_TRACING_ENABLED
  const uint64_t every = sample_every_.load(std::memory_order_relaxed);
  if (every == 0) return 0;
  const uint64_t seq = next_id_.fetch_add(1, std::memory_order_relaxed);
  if (every > 1 && seq % every != 0) return 0;
  return seq;
#else
  return 0;
#endif
}

namespace {
thread_local uint64_t t_current_trace = 0;
}  // namespace

uint64_t Tracer::CurrentTrace() { return t_current_trace; }

ScopedTrace::ScopedTrace(uint64_t trace_id) : saved_(t_current_trace) {
  t_current_trace = trace_id;
}

ScopedTrace::~ScopedTrace() { t_current_trace = saved_; }

Tracer::SpanBuffer* Tracer::AcquireBuffer() {
  MutexLock lock(mutex_);
  for (std::unique_ptr<SpanBuffer>& buffer : buffers_) {
    if (buffer->free) {
      buffer->free = false;
      return buffer.get();
    }
  }
  buffers_.push_back(std::make_unique<SpanBuffer>());
  return buffers_.back().get();
}

void Tracer::ReleaseBuffer(SpanBuffer* buffer) {
  MutexLock lock(mutex_);
  buffer->free = true;
}

Tracer::SpanBuffer* Tracer::ThisThreadBuffer() {
  if (t_buffer_handle.buffer == nullptr) {
    t_buffer_handle.buffer = AcquireBuffer();
    t_buffer_handle.owner = this;
  }
  return t_buffer_handle.buffer;
}

void Tracer::Record(uint64_t trace_id, SpanKind kind, int64_t start_ns,
                    int64_t end_ns) {
  if (trace_id == 0) return;
  SpanBuffer* buffer = ThisThreadBuffer();
  SpanRecord record;
  record.trace_id = trace_id;
  record.kind = kind;
  record.start_ns = start_ns;
  record.end_ns = end_ns;
  MutexLock lock(buffer->mutex);
  if (buffer->size < buffer->ring.size()) {
    buffer->ring[buffer->size++] = record;
  } else {
    // Overwrite the oldest; the drop is counted so a collector knows
    // the trace may be incomplete.
    buffer->ring[buffer->pos] = record;
    buffer->pos = (buffer->pos + 1) % buffer->ring.size();
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }
}

std::vector<SpanRecord> Tracer::Collect(uint64_t trace_id) {
  std::vector<SpanRecord> out;
  MutexLock lock(mutex_);
  for (std::unique_ptr<SpanBuffer>& buffer : buffers_) {
    MutexLock buffer_lock(buffer->mutex);
    for (size_t i = 0; i < buffer->size; ++i) {
      if (trace_id == 0 || buffer->ring[i].trace_id == trace_id) {
        out.push_back(buffer->ring[i]);
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              return static_cast<int>(a.kind) < static_cast<int>(b.kind);
            });
  return out;
}

std::vector<SpanRecord> Tracer::CollectAll() { return Collect(0); }

void Tracer::Clear() {
  MutexLock lock(mutex_);
  for (std::unique_ptr<SpanBuffer>& buffer : buffers_) {
    MutexLock buffer_lock(buffer->mutex);
    buffer->size = 0;
    buffer->pos = 0;
  }
  dropped_.store(0, std::memory_order_relaxed);
}

}  // namespace obs
}  // namespace pitex
