#include "src/obs/journal.h"

#include <algorithm>

#include "src/obs/trace.h"  // NowNs
#include "src/util/check.h"

namespace pitex {
namespace obs {

const char* EventKindName(EventKind kind) {
  switch (kind) {
    case EventKind::kShed:
      return "shed";
    case EventKind::kDegraded:
      return "degraded";
    case EventKind::kDeadlineExpired:
      return "deadline_expired";
    case EventKind::kWalFailure:
      return "wal_failure";
    case EventKind::kPublishRetry:
      return "publish_retry";
    case EventKind::kPublishFailure:
      return "publish_failure";
    case EventKind::kEpochSwap:
      return "epoch_swap";
    case EventKind::kCheckpoint:
      return "checkpoint";
    case EventKind::kCheckpointFailure:
      return "checkpoint_failure";
    case EventKind::kRecoveryReplay:
      return "recovery_replay";
    case EventKind::kWorkerRebind:
      return "worker_rebind";
    case EventKind::kReplShipCheckpoint:
      return "repl_ship_checkpoint";
    case EventKind::kReplResync:
      return "repl_resync";
    case EventKind::kReplPromote:
      return "repl_promote";
    case EventKind::kFencedWrite:
      return "fenced_write";
    case EventKind::kEventKindCount:
      break;
  }
  return "unknown";
}

EventJournal::EventJournal(size_t capacity) {
  size_t rounded = 1;
  while (rounded < capacity) rounded <<= 1;
  slots_ = std::vector<Slot>(rounded);
  mask_ = rounded - 1;
}

void EventJournal::Record(EventKind kind, uint64_t a, uint64_t b) {
  const uint64_t claim = next_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[claim & mask_];
  // Seqlock write: stamp 0 marks the fields in flight; the final
  // release-store of claim+1 publishes them. Two writers lapping onto
  // the same slot can interleave -- the reader's stamp re-check
  // discards such torn slots, which is the overwrite-oldest policy
  // anyway.
  slot.stamp.store(0, std::memory_order_release);
  slot.t_ns.store(NowNs(), std::memory_order_relaxed);
  slot.kind.store(static_cast<uint8_t>(kind), std::memory_order_relaxed);
  slot.a.store(a, std::memory_order_relaxed);
  slot.b.store(b, std::memory_order_relaxed);
  slot.stamp.store(claim + 1, std::memory_order_release);
}

std::vector<Event> EventJournal::Snapshot() const {
  struct Stamped {
    uint64_t seq;
    Event event;
  };
  std::vector<Stamped> stable;
  stable.reserve(slots_.size());
  for (const Slot& slot : slots_) {
    const uint64_t before = slot.stamp.load(std::memory_order_acquire);
    if (before == 0) continue;
    Event event;
    event.t_ns = slot.t_ns.load(std::memory_order_relaxed);
    event.kind = static_cast<EventKind>(slot.kind.load(std::memory_order_relaxed));
    event.a = slot.a.load(std::memory_order_relaxed);
    event.b = slot.b.load(std::memory_order_relaxed);
    const uint64_t after = slot.stamp.load(std::memory_order_acquire);
    if (after != before) continue;  // torn by a concurrent writer
    stable.push_back(Stamped{before - 1, event});
  }
  std::sort(stable.begin(), stable.end(),
            [](const Stamped& x, const Stamped& y) { return x.seq < y.seq; });
  std::vector<Event> out;
  out.reserve(stable.size());
  for (const Stamped& s : stable) out.push_back(s.event);
  return out;
}

void EventJournal::DumpTo(std::FILE* out) const {
  PITEX_CHECK(out != nullptr);
  const std::vector<Event> events = Snapshot();
  std::fprintf(out, "-- event journal (%zu events, %llu recorded) --\n",
               events.size(),
               static_cast<unsigned long long>(total_recorded()));
  for (const Event& event : events) {
    std::fprintf(out, "t=%lldns %s a=%llu b=%llu\n",
                 static_cast<long long>(event.t_ns), EventKindName(event.kind),
                 static_cast<unsigned long long>(event.a),
                 static_cast<unsigned long long>(event.b));
  }
}

}  // namespace obs
}  // namespace pitex
