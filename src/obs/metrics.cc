#include "src/obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "src/util/check.h"

namespace pitex {
namespace obs {

size_t ThreadShard() {
  // Round-robin assignment at first use spreads concurrent threads over
  // the shards deterministically-enough; the slot is sticky for the
  // thread's lifetime so a counter's shard never migrates mid-burst.
  static std::atomic<size_t> next{0};
  thread_local const size_t slot =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return slot;
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1) {
  for (size_t i = 1; i < bounds_.size(); ++i) {
    PITEX_CHECK_MSG(bounds_[i - 1] < bounds_[i],
                    "histogram bounds must be strictly increasing");
  }
}

void Histogram::Observe(double v) {
  size_t bucket = bounds_.size();  // +Inf
  for (size_t i = 0; i < bounds_.size(); ++i) {
    if (v <= bounds_[i]) {
      bucket = i;
      break;
    }
  }
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  total_.fetch_add(1, std::memory_order_relaxed);
  double expected = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(expected, expected + v,
                                     std::memory_order_relaxed)) {
  }
}

std::vector<uint64_t> Histogram::Counts() const {
  std::vector<uint64_t> out(counts_.size());
  for (size_t i = 0; i < counts_.size(); ++i) {
    out[i] = counts_[i].load(std::memory_order_relaxed);
  }
  return out;
}

uint64_t Histogram::TotalCount() const {
  return total_.load(std::memory_order_relaxed);
}

double Histogram::Sum() const { return sum_.load(std::memory_order_relaxed); }

const MetricValue* MetricsSnapshot::Find(std::string_view name) const {
  for (const MetricValue& metric : metrics) {
    if (metric.name == name) return &metric;
  }
  return nullptr;
}

uint64_t MetricsSnapshot::CounterValue(std::string_view name) const {
  const MetricValue* metric = Find(name);
  PITEX_CHECK_MSG(metric != nullptr, "unknown counter name");
  PITEX_CHECK_MSG(metric->type == MetricType::kCounter,
                  "metric is not a counter");
  return metric->counter;
}

int64_t MetricsSnapshot::GaugeValue(std::string_view name) const {
  const MetricValue* metric = Find(name);
  PITEX_CHECK_MSG(metric != nullptr, "unknown gauge name");
  PITEX_CHECK_MSG(metric->type == MetricType::kGauge, "metric is not a gauge");
  return metric->gauge;
}

namespace {

void AppendDouble(std::string* out, double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", v);
  out->append(buffer);
}

void AppendUint(std::string* out, uint64_t v) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%llu",
                static_cast<unsigned long long>(v));
  out->append(buffer);
}

void AppendInt(std::string* out, int64_t v) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%lld", static_cast<long long>(v));
  out->append(buffer);
}

const char* TypeName(MetricType type) {
  switch (type) {
    case MetricType::kCounter:
      return "counter";
    case MetricType::kGauge:
      return "gauge";
    case MetricType::kHistogram:
      return "histogram";
  }
  return "unknown";
}

}  // namespace

std::string MetricsSnapshot::ToJson() const {
  // Metric names are [a-z0-9_] identifiers and help strings are ASCII
  // prose without quotes/backslashes (enforced by convention, not
  // escaping), so plain concatenation yields valid JSON.
  std::string out = "{\"metrics\":[";
  bool first = true;
  for (const MetricValue& metric : metrics) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"";
    out += metric.name;
    out += "\",\"type\":\"";
    out += TypeName(metric.type);
    out += "\"";
    switch (metric.type) {
      case MetricType::kCounter:
        out += ",\"value\":";
        AppendUint(&out, metric.counter);
        break;
      case MetricType::kGauge:
        out += ",\"value\":";
        AppendInt(&out, metric.gauge);
        break;
      case MetricType::kHistogram: {
        out += ",\"count\":";
        AppendUint(&out, metric.count);
        out += ",\"sum\":";
        AppendDouble(&out, metric.sum);
        out += ",\"buckets\":[";
        for (size_t i = 0; i < metric.bucket_counts.size(); ++i) {
          if (i > 0) out += ",";
          out += "{\"le\":";
          if (i < metric.bounds.size()) {
            AppendDouble(&out, metric.bounds[i]);
          } else {
            out += "\"+Inf\"";
          }
          out += ",\"count\":";
          AppendUint(&out, metric.bucket_counts[i]);
          out += "}";
        }
        out += "]";
        break;
      }
    }
    out += "}";
  }
  out += "]}";
  return out;
}

std::string MetricsSnapshot::ToPrometheus() const {
  std::string out;
  for (const MetricValue& metric : metrics) {
    out += "# HELP ";
    out += metric.name;
    out += " ";
    out += metric.help;
    out += "\n# TYPE ";
    out += metric.name;
    out += " ";
    out += TypeName(metric.type);
    out += "\n";
    switch (metric.type) {
      case MetricType::kCounter:
        out += metric.name;
        out += " ";
        AppendUint(&out, metric.counter);
        out += "\n";
        break;
      case MetricType::kGauge:
        out += metric.name;
        out += " ";
        AppendInt(&out, metric.gauge);
        out += "\n";
        break;
      case MetricType::kHistogram: {
        // Prometheus buckets are cumulative and always end at +Inf.
        uint64_t cumulative = 0;
        for (size_t i = 0; i < metric.bucket_counts.size(); ++i) {
          cumulative += metric.bucket_counts[i];
          out += metric.name;
          out += "_bucket{le=\"";
          if (i < metric.bounds.size()) {
            AppendDouble(&out, metric.bounds[i]);
          } else {
            out += "+Inf";
          }
          out += "\"} ";
          AppendUint(&out, cumulative);
          out += "\n";
        }
        out += metric.name;
        out += "_sum ";
        AppendDouble(&out, metric.sum);
        out += "\n";
        out += metric.name;
        out += "_count ";
        AppendUint(&out, metric.count);
        out += "\n";
        break;
      }
    }
  }
  return out;
}

MetricsRegistry::Entry* MetricsRegistry::FindLocked(std::string_view name,
                                                    MetricType type) {
  for (Entry& entry : entries_) {
    if (entry.name == name) {
      PITEX_CHECK_MSG(entry.type == type,
                      "metric re-registered with a different type");
      return &entry;
    }
  }
  return nullptr;
}

Counter* MetricsRegistry::RegisterCounter(std::string_view name,
                                          std::string_view help) {
  MutexLock lock(mutex_);
  if (Entry* existing = FindLocked(name, MetricType::kCounter)) {
    return &existing->counter;
  }
  entries_.emplace_back(name, help, MetricType::kCounter);
  return &entries_.back().counter;
}

Gauge* MetricsRegistry::RegisterGauge(std::string_view name,
                                      std::string_view help) {
  MutexLock lock(mutex_);
  if (Entry* existing = FindLocked(name, MetricType::kGauge)) {
    return &existing->gauge;
  }
  entries_.emplace_back(name, help, MetricType::kGauge);
  return &entries_.back().gauge;
}

Histogram* MetricsRegistry::RegisterHistogram(std::string_view name,
                                              std::string_view help,
                                              std::vector<double> bounds) {
  MutexLock lock(mutex_);
  if (Entry* existing = FindLocked(name, MetricType::kHistogram)) {
    return existing->histogram.get();
  }
  entries_.emplace_back(name, help, MetricType::kHistogram);
  entries_.back().histogram = std::make_unique<Histogram>(std::move(bounds));
  return entries_.back().histogram.get();
}

void MetricsRegistry::AddCollector(std::function<void()> collector) {
  PITEX_CHECK(collector != nullptr);
  MutexLock lock(mutex_);
  collectors_.push_back(std::move(collector));
}

MetricsSnapshot MetricsRegistry::Snapshot() {
  MetricsSnapshot snapshot;
  MutexLock lock(mutex_);
  // Collectors mirror internally-synchronized sources into gauges
  // before the read pass; holding mutex_ serializes concurrent
  // Snapshot() callers so collector-side delta state needs no extra
  // locking. Collectors must not call back into this registry.
  for (const std::function<void()>& collector : collectors_) collector();
  snapshot.metrics.reserve(entries_.size());
  for (const Entry& entry : entries_) {
    MetricValue value;
    value.name = entry.name;
    value.help = entry.help;
    value.type = entry.type;
    switch (entry.type) {
      case MetricType::kCounter:
        value.counter = entry.counter.Value();
        break;
      case MetricType::kGauge:
        value.gauge = entry.gauge.Value();
        break;
      case MetricType::kHistogram:
        value.bounds = entry.histogram->bounds();
        value.bucket_counts = entry.histogram->Counts();
        value.count = entry.histogram->TotalCount();
        value.sum = entry.histogram->Sum();
        break;
    }
    snapshot.metrics.push_back(std::move(value));
  }
  return snapshot;
}

namespace {

struct HotCounterInfo {
  const char* name;
  const char* help;
};

constexpr HotCounterInfo kHotCounterInfo[] = {
    {"pitex_solve_deadline_checks_total",
     "Cooperative deadline checkpoints evaluated by the best-effort solver"},
    {"pitex_solve_frontier_pops_total",
     "Frontier pops in the best-effort solver search loop"},
    {"pitex_cache_probes_total", "ResultCache lookup calls (hits + misses)"},
    {"pitex_cache_insert_calls_total", "ResultCache insert calls"},
    {"pitex_pool_tasks_total", "Tasks executed by ThreadPool workers"},
};
static_assert(sizeof(kHotCounterInfo) / sizeof(kHotCounterInfo[0]) ==
                  static_cast<size_t>(HotCounter::kHotCounterCount),
              "hot counter names out of sync with the enum");

// Static storage: usable before main() and from PITEX_NOALLOC bodies
// (no dynamic initialization -- Counter's members are zero-initialized
// atomics).
Counter g_hot_counters[static_cast<size_t>(HotCounter::kHotCounterCount)];

}  // namespace

Counter& HotCounterRef(HotCounter which) {
  return g_hot_counters[static_cast<size_t>(which)];
}

MetricsSnapshot HotCountersSnapshot() {
  MetricsSnapshot snapshot;
  for (size_t i = 0; i < static_cast<size_t>(HotCounter::kHotCounterCount);
       ++i) {
    MetricValue value;
    value.name = kHotCounterInfo[i].name;
    value.help = kHotCounterInfo[i].help;
    value.type = MetricType::kCounter;
    value.counter = g_hot_counters[i].Value();
    snapshot.metrics.push_back(std::move(value));
  }
  return snapshot;
}

}  // namespace obs
}  // namespace pitex
