// Constructions behind the paper's hardness results (Sec. 3.2).
//
// Lemma 1 reduces Set Cover to k-label s-t reachability; Theorem 1 reduces
// k-label s-t reachability to PITEX via a gadget graph whose spread jumps
// from <= n-1 to >= n^2-n+2 depending on whether s reaches t. These
// constructions are executable here so that tests can verify the
// reductions' combinatorial properties on small instances — they also
// serve as worked examples for readers of the proof.

#ifndef PITEX_SRC_CORE_HARDNESS_H_
#define PITEX_SRC_CORE_HARDNESS_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "src/model/influence_graph.h"

namespace pitex {

/// A directed multigraph with one label per edge (Lemma 1 input).
struct LabeledGraph {
  size_t num_vertices = 0;
  size_t num_labels = 0;
  struct Edge {
    VertexId tail;
    VertexId head;
    uint32_t label;
  };
  std::vector<Edge> edges;
};

/// Lemma 1 construction: Set Cover instance (universe {0..n-1}, subsets)
/// -> labeled chain graph on n+1 vertices where s=0 reaches t=n using
/// exactly the labels of a covering sub-collection.
LabeledGraph BuildKLabelFromSetCover(
    size_t universe_size, const std::vector<std::vector<uint32_t>>& subsets);

/// True if s reaches t in the subgraph of `g` induced by `labels`.
bool LabelReachable(const LabeledGraph& g, std::span<const uint32_t> labels,
                    VertexId s, VertexId t);

/// Theorem 1 gadget: lifts a k-label s-t reachability instance into a
/// PITEX instance. The output network has n^2 vertices (n = g.num_vertices
/// original + an appended amplification chain), one tag and one topic per
/// label (p(w_i|z_i) = 1), deterministic edges, and query user s. The
/// amplification chain hangs off t so that reaching t is worth n^2 - n + 1
/// additional activations.
struct HardnessGadget {
  SocialNetwork network;
  VertexId query_user;
  VertexId t;
  /// Spread threshold separating the two cases of the proof: spread
  /// > num_original - 1 implies s reaches t.
  double spread_threshold;
};

HardnessGadget BuildPitexFromKLabel(const LabeledGraph& g, VertexId s,
                                    VertexId t);

}  // namespace pitex

#endif  // PITEX_SRC_CORE_HARDNESS_H_
