#include "src/core/best_effort_solver.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <utility>

#include "src/util/check.h"
#include "src/util/timer.h"

namespace pitex {

namespace {

struct HeapNode {
  double bound;
  std::vector<TagId> tags;  // sorted ascending

  bool operator<(const HeapNode& other) const {  // max-heap on bound
    return bound < other.bound;
  }
};

// Min-ordered comparator so the worst of the current top-N sits on top.
struct WorstFirst {
  bool operator()(const RankedTagSet& a, const RankedTagSet& b) const {
    return a.influence > b.influence;
  }
};

}  // namespace

std::vector<RankedTagSet> SolveTopNByBestEffort(
    const SocialNetwork& network, const PitexQuery& query,
    const UpperBoundContext& context, InfluenceOracle* oracle, size_t n,
    PitexResult* stats) {
  PITEX_CHECK(query.k >= 1 && query.k <= network.topics.num_tags());
  PITEX_CHECK(query.user < network.num_vertices());
  PITEX_CHECK(n >= 1);
  Timer timer;
  PitexResult local_stats;
  PitexResult& counters = stats != nullptr ? *stats : local_stats;
  counters = PitexResult{};

  // The incumbent for pruning is the N-th best influence seen so far (or
  // "nothing" until N full sets have been evaluated).
  std::priority_queue<RankedTagSet, std::vector<RankedTagSet>, WorstFirst>
      best;
  auto incumbent = [&]() -> double {
    return best.size() < n ? -1.0 : best.top().influence;
  };

  std::priority_queue<HeapNode> heap;
  heap.push(HeapNode{std::numeric_limits<double>::infinity(), {}});
  const size_t num_tags = network.topics.num_tags();

  while (!heap.empty()) {
    HeapNode node = heap.top();
    heap.pop();
    // Bounds only shrink down the tree: once the best inherited bound
    // cannot beat the incumbent, nothing remaining can.
    if (node.bound <= incumbent()) {
      ++counters.sets_pruned;
      break;
    }
    if (node.tags.size() == query.k) {
      const TopicPosterior posterior = network.topics.Posterior(node.tags);
      const PosteriorProbs probs(network.influence, posterior);
      const Estimate est = oracle->EstimateInfluence(query.user, probs);
      ++counters.sets_evaluated;
      counters.total_samples += est.samples;
      counters.edges_visited += est.edges_visited;
      best.push(RankedTagSet{std::move(node.tags), est.influence});
      if (best.size() > n) best.pop();
      continue;
    }
    // Partial set: evaluate its own (tighter) Lemma-8 bound.
    const UpperBoundProbs bound_probs(network.influence, context, node.tags,
                                      query.k);
    const Estimate bound_est =
        oracle->EstimateInfluence(query.user, bound_probs);
    ++counters.bounds_evaluated;
    counters.total_samples += bound_est.samples;
    counters.edges_visited += bound_est.edges_visited;
    if (bound_est.influence <= incumbent()) {
      ++counters.sets_pruned;
      continue;
    }
    // Expand: append every tag below the current minimum (canonical
    // generation — each subset is reached along exactly one path). A
    // child {w} + tags still needs k - |tags| - 1 more tags below w, so
    // children with smaller w are dead ends and skipped.
    const TagId limit = node.tags.empty() ? static_cast<TagId>(num_tags)
                                          : node.tags.front();
    const auto start = static_cast<TagId>(query.k - node.tags.size() - 1);
    for (TagId w = start; w < limit; ++w) {
      HeapNode child;
      child.bound = bound_est.influence;
      child.tags.reserve(node.tags.size() + 1);
      child.tags.push_back(w);
      child.tags.insert(child.tags.end(), node.tags.begin(), node.tags.end());
      heap.push(std::move(child));
    }
  }

  std::vector<RankedTagSet> result;
  result.reserve(best.size());
  while (!best.empty()) {
    result.push_back(best.top());
    best.pop();
  }
  std::reverse(result.begin(), result.end());  // descending influence
  counters.seconds = timer.Seconds();
  if (!result.empty()) {
    counters.tags = result.front().tags;
    counters.influence = result.front().influence;
  }
  return result;
}

PitexResult SolveByBestEffort(const SocialNetwork& network,
                              const PitexQuery& query,
                              const UpperBoundContext& context,
                              InfluenceOracle* oracle) {
  PitexResult stats;
  SolveTopNByBestEffort(network, query, context, oracle, 1, &stats);
  return stats;
}

}  // namespace pitex
