#include "src/core/best_effort_solver.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "src/obs/metrics.h"
#include "src/util/check.h"
#include "src/util/timer.h"

namespace pitex {

namespace {

// Min-ordered comparator so the worst of the current top-N sits on top.
struct WorstFirst {
  bool operator()(const RankedTagSet& a, const RankedTagSet& b) const {
    return a.influence > b.influence;
  }
};

// Field-wise reset that keeps the tags vector's capacity (a plain
// `*r = PitexResult{}` would free and later re-grow it every call).
void ResetCounters(PitexResult* r) {
  r->tags.clear();
  r->influence = 0.0;
  r->sets_evaluated = 0;
  r->sets_pruned = 0;
  r->bounds_evaluated = 0;
  r->total_samples = 0;
  r->edges_visited = 0;
  r->seconds = 0.0;
  r->degraded = false;
}

}  // namespace

PITEX_NOALLOC void SolveTopNByBestEffort(const SocialNetwork& network,
                           const PitexQuery& query,
                           const UpperBoundContext& context,
                           InfluenceOracle* oracle, size_t n,
                           std::vector<RankedTagSet>* out,
                           PitexResult* stats, BestEffortScratch* scratch) {
  PITEX_CHECK(query.k >= 1 && query.k <= network.topics.num_tags());
  PITEX_CHECK(query.user < network.num_vertices());
  PITEX_CHECK(n >= 1);
  PITEX_CHECK(out != nullptr && scratch != nullptr);
  Timer timer;
  PitexResult local_stats;
  PitexResult& counters = stats != nullptr ? *stats : local_stats;
  ResetCounters(&counters);

  // Recycle last query's incumbent slots (their tag vectors keep their
  // capacity), then start from an empty top-N heap. The incumbent for
  // pruning is the N-th best influence seen so far (or "nothing" until N
  // full sets have been evaluated).
  std::vector<RankedTagSet>& top = scratch->top;
  std::vector<RankedTagSet>& pool = scratch->pool;
  for (RankedTagSet& slot : top) pool.push_back(std::move(slot));
  top.clear();
  auto incumbent = [&]() -> double {
    return top.size() < n ? -1.0 : top.front().influence;
  };

  SearchArena& arena = scratch->arena;
  arena.Reset();
  arena.Push({std::numeric_limits<double>::infinity(), SearchArena::kNoChain,
              0});
  const size_t num_tags = network.topics.num_tags();

  const double budget = query.budget_seconds;
  while (!arena.empty()) {
    // Hot counters use the preallocated PITEX_COUNT form -- the only
    // metrics primitive allowed in a PITEX_NOALLOC body (tools/check
    // rule `obs-hotpath`); one relaxed sharded fetch_add is noise
    // against the estimation a pop performs.
    PITEX_COUNT(kSolveFrontierPops, 1);
    // Cooperative deadline checkpoint, once per frontier pop (one pop
    // costs at least one bounded estimation, so the clock read is noise
    // against the work it gates). Without a budget the check is a single
    // double compare -- no clock read, and the search is bit-identical
    // to a budget-free build.
    if (budget > 0.0) {
      PITEX_COUNT(kSolveDeadlineChecks, 1);
      if (timer.Seconds() >= budget) {
        counters.degraded = true;
        break;
      }
    }
    const SearchArena::HeapSlot node = arena.Pop();
    // Bounds only shrink down the tree: once the best inherited bound
    // cannot beat the incumbent, nothing remaining can.
    if (node.bound <= incumbent()) {
      ++counters.sets_pruned;
      break;
    }
    scratch->tags.resize(node.size);
    arena.Materialize(node.chain, node.size, scratch->tags.data());
    if (node.size == query.k) {
      network.topics.PosteriorInto(scratch->tags, &scratch->posterior);
      const PosteriorProbs probs(network.influence, scratch->posterior);
      const Estimate est = oracle->EstimateInfluence(query.user, probs);
      ++counters.sets_evaluated;
      counters.total_samples += est.samples;
      counters.edges_visited += est.edges_visited;
      // Push into the top-N heap through a recycled slot; evicting the
      // worst returns its storage to the pool. Same push/pop primitives
      // as the reference's std::priority_queue, so tie order matches.
      RankedTagSet slot;
      if (!pool.empty()) {
        slot = std::move(pool.back());
        pool.pop_back();
      }
      // assign() below reuses the capacity donated by the pool slot.
      // pitex-check: allow(noalloc): recycled slot, grows only on warmup
      slot.tags.assign(scratch->tags.begin(), scratch->tags.end());
      slot.influence = est.influence;
      top.push_back(std::move(slot));
      std::push_heap(top.begin(), top.end(), WorstFirst{});
      if (top.size() > n) {
        std::pop_heap(top.begin(), top.end(), WorstFirst{});
        pool.push_back(std::move(top.back()));
        top.pop_back();
      }
      continue;
    }
    // Partial set: evaluate its own (tighter) Lemma-8 bound.
    const UpperBoundProbs bound_probs(network.influence, context,
                                      scratch->tags, query.k,
                                      &scratch->bound);
    const Estimate bound_est =
        oracle->EstimateInfluence(query.user, bound_probs);
    ++counters.bounds_evaluated;
    counters.total_samples += bound_est.samples;
    counters.edges_visited += bound_est.edges_visited;
    if (bound_est.influence <= incumbent()) {
      ++counters.sets_pruned;
      continue;
    }
    // Expand: append every tag below the current minimum (canonical
    // generation — each subset is reached along exactly one path). A
    // child {w} + tags still needs k - |tags| - 1 more tags below w, so
    // children with smaller w are dead ends and skipped.
    const TagId limit = node.size == 0 ? static_cast<TagId>(num_tags)
                                       : scratch->tags.front();
    const auto start = static_cast<TagId>(query.k - node.size - 1);
    for (TagId w = start; w < limit; ++w) {
      arena.Push({bound_est.influence, arena.Extend(node.chain, w),
                  node.size + 1});
    }
  }

  // Drain the incumbent heap. sort_heap pops worst-first to the back, so
  // front-to-back equals the reference's pop-all-then-reverse order —
  // descending influence with identical tie order.
  std::sort_heap(top.begin(), top.end(), WorstFirst{});
  if (out->size() > top.size()) out->resize(top.size());
  while (out->size() < top.size()) out->emplace_back();
  for (size_t i = 0; i < top.size(); ++i) {
    (*out)[i].tags.assign(top[i].tags.begin(), top[i].tags.end());
    (*out)[i].influence = top[i].influence;
  }
  counters.seconds = timer.Seconds();
  if (!out->empty()) {
    counters.tags.assign(out->front().tags.begin(), out->front().tags.end());
    counters.influence = out->front().influence;
  }
}

std::vector<RankedTagSet> SolveTopNByBestEffort(
    const SocialNetwork& network, const PitexQuery& query,
    const UpperBoundContext& context, InfluenceOracle* oracle, size_t n,
    PitexResult* stats) {
  BestEffortScratch scratch;
  std::vector<RankedTagSet> result;
  SolveTopNByBestEffort(network, query, context, oracle, n, &result, stats,
                        &scratch);
  return result;
}

PitexResult SolveByBestEffort(const SocialNetwork& network,
                              const PitexQuery& query,
                              const UpperBoundContext& context,
                              InfluenceOracle* oracle) {
  PitexResult stats;
  SolveTopNByBestEffort(network, query, context, oracle, 1, &stats);
  return stats;
}

}  // namespace pitex
