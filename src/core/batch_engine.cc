#include "src/core/batch_engine.h"

#include <algorithm>
#include <sstream>

#include "src/index/index_io.h"
#include "src/util/check.h"
#include "src/util/timer.h"

namespace pitex {

BatchEngine::BatchEngine(const SocialNetwork* network,
                         const BatchOptions& options)
    : network_(network), options_(options) {
  PITEX_CHECK(network != nullptr);
  options_.num_threads = std::max<size_t>(1, options_.num_threads);
}

BatchEngine::~BatchEngine() = default;

void BatchEngine::Prepare() {
  if (prepared_) return;
  prepared_ = true;
  pool_ = std::make_unique<ThreadPool>(options_.num_threads);

  const Method method = options_.engine.method;
  if (method == Method::kIndexEst || method == Method::kIndexEstPlus) {
    // Build the shared index with the full pool's parallelism: the batch
    // amortizes one offline pass, not one per worker.
    EngineOptions build_options = options_.engine;
    RrIndexOptions index_options;
    index_options.eps = build_options.eps;
    index_options.delta = build_options.delta;
    index_options.cap_k = build_options.index_cap_k;
    index_options.theta_per_vertex = build_options.index_theta_per_vertex;
    index_options.max_theta = build_options.index_max_theta;
    index_options.seed = build_options.seed;
    index_options.num_build_threads = options_.num_threads;
    shared_index_ = std::make_unique<RrIndex>(*network_, index_options);
    // The query worker pool doubles as the build pool: no extra thread
    // spawn, and the sampled index is bit-identical for any pool size.
    shared_index_->Build(pool_.get());
  } else if (method == Method::kDelayMat) {
    RrIndexOptions index_options;
    index_options.eps = options_.engine.eps;
    index_options.delta = options_.engine.delta;
    index_options.cap_k = options_.engine.index_cap_k;
    index_options.theta_per_vertex = options_.engine.index_theta_per_vertex;
    index_options.max_theta = options_.engine.index_max_theta;
    index_options.seed = options_.engine.seed;
    DelayMatIndex prototype(*network_, index_options);
    prototype.Build();
    std::stringstream snapshot;
    std::string error;
    PITEX_CHECK_MSG(SaveDelayMatIndex(prototype, snapshot, &error),
                    error.c_str());
    delay_snapshot_ = snapshot.str();
  }

  workers_.reserve(options_.num_threads);
  for (size_t w = 0; w < options_.num_threads; ++w) {
    EngineOptions worker_options = options_.engine;
    worker_options.seed = options_.engine.seed + w;
    auto engine = std::make_unique<PitexEngine>(network_, worker_options);
    if (shared_index_ != nullptr) {
      engine->UseSharedRrIndex(shared_index_.get());
    } else if (!delay_snapshot_.empty()) {
      std::stringstream snapshot(delay_snapshot_);
      std::string error;
      auto replica = LoadDelayMatIndex(*network_, snapshot, &error);
      PITEX_CHECK_MSG(replica != nullptr, error.c_str());
      engine->AdoptDelayMatIndex(std::move(replica));
    }
    engine->BuildIndex();  // wraps/attaches; cheap for adopted indexes
    workers_.push_back(std::move(engine));
  }
}

std::vector<PitexResult> BatchEngine::ExploreAll(
    std::span<const PitexQuery> queries) {
  Prepare();
  std::vector<PitexResult> results(queries.size());
  Timer timer;
  const size_t num_workers = workers_.size();
  last_worker_stats_.assign(num_workers, BatchWorkerStats{});
  for (size_t w = 0; w < num_workers; ++w) {
    pool_->Submit([this, w, num_workers, queries, &results] {
      PitexEngine& engine = *workers_[w];
      BatchWorkerStats& stats = last_worker_stats_[w];  // exclusive slot
      Timer worker_timer;
      for (size_t i = w; i < queries.size(); i += num_workers) {
        results[i] = engine.Explore(queries[i]);
        ++stats.queries;
      }
      stats.seconds = worker_timer.Seconds();
    });
  }
  pool_->Wait();
  last_batch_seconds_ = timer.Seconds();
  return results;
}

size_t BatchEngine::SharedIndexSizeBytes() const {
  if (shared_index_ != nullptr) return shared_index_->SizeBytes();
  return delay_snapshot_.size();
}

}  // namespace pitex
