// Lemma 8: per-edge influence probability upper bounds for partial tag
// sets, powering best-effort exploration (Sec. 5.2).
//
// For a partial set W (|W| < k), p+(e|W) must dominate p(e|W') for every
// size-k completion W' of W. The lemma combines two bounds and takes the
// minimum:
//
//  (Eq. 5, sparse regime)  max over topics z compatible with W
//                          (p(z|W) > 0) of p(e|z);
//  (Eq. 6, dense regime)   sum_z p(e|z) * B(z) with
//                          B(z) = p(z) * prod_{w in W u W*} r(w, z), where
//                          r(w, z) = p(w|z) / prod_z' p(w|z')^{p(z')}
//                          (a Jensen bound on the posterior: the weighted
//                          geometric mean lower-bounds the normalizer) and
//                          W* ranges over completions — maximized by
//                          taking the k - |W| largest r(w, z) among the
//                          remaining tags.
//
// Note on Eq. 6: the paper's statement distributes a p(z) factor into
// every tag's term (prod_w p(w|z) p(z)), i.e. p(z)^{|W|}; since the
// posterior numerator carries exactly one p(z), that variant can
// *under*-estimate and is not admissible (our randomized property tests
// catch the violation). The Jensen step in the paper's own proof
// (Appendix B.8) supports the single-p(z) form implemented here.
//
// r(w, z) is +infinity when some p(w|z') = 0 with positive prior (the
// geometric-mean denominator vanishes); Eq. 6 then degenerates and the
// minimum falls back to Eq. 5 — which is why Eq. 6 only helps on dense
// tag-topic matrices, exactly as the paper discusses.

#ifndef PITEX_SRC_CORE_UPPER_BOUND_H_
#define PITEX_SRC_CORE_UPPER_BOUND_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "src/sampling/influence_estimator.h"
#include "src/util/thread_annotations.h"

namespace pitex {

/// Reusable scratch for allocation-free Lemma-8 bound evaluation along the
/// best-effort enumeration tree. The per-topic running log_b accumulators
/// land in `multipliers`/`compatible`, which double as the storage the
/// scratch-based UpperBoundProbs constructor points into; `tag_epoch`
/// gives O(1) "is w in the current partial set" tests (the reference
/// implementation re-scanned the partial set with std::find for every
/// entry of the per-topic sorted order, an O(k) scan each). Everything is
/// epoch-stamped or assign()ed in place, so after warmup a bound
/// evaluation allocates nothing.
struct BoundScratch {
  std::vector<double> multipliers;  // B(z) per topic; 0 when incompatible
  std::vector<uint8_t> compatible;  // per-topic compatibility mask
  std::vector<uint32_t> tag_epoch;  // per-tag "in current partial" stamps
  uint32_t epoch = 0;
};

/// Precomputed per-(tag, topic) log r(w, z) values plus per-topic sorted
/// orders. Built once per network; shared by all queries.
class UpperBoundContext {
 public:
  explicit UpperBoundContext(const TopicModel& topics);

  const TopicModel& topics() const { return *topics_; }

  /// Returns the Eq.-6 multiplier B(z) for each topic given the partial
  /// set and the target size k, or +infinity where the bound degenerates;
  /// entries are 0 for topics incompatible with `partial` (p(z|W) = 0).
  /// This is the reference implementation — byte-for-byte the pre-arena
  /// code path — kept for tests and one-off callers; the query hot path
  /// uses TopicMultipliersInto.
  std::vector<double> TopicMultipliers(std::span<const TagId> partial,
                                       size_t k) const;

  /// TopicMultipliers plus the compatibility mask, written into
  /// caller-owned scratch: zero allocations after warmup and O(|Z| * k)
  /// work per call thanks to the epoch-stamped membership test. The
  /// floating-point accumulation order is kept exactly as
  /// TopicMultipliers' so the results are bit-identical (a true
  /// parent-to-child delta of the log sums would reorder the additions
  /// and break the bit-reproducibility the equivalence tests pin —
  /// docs/perf.md discusses the tradeoff).
  PITEX_NOALLOC void TopicMultipliersInto(std::span<const TagId> partial, size_t k,
                            BoundScratch* scratch) const;

  /// True if topic z is compatible with the partial set (every w in W has
  /// p(w|z) > 0 and the prior is positive).
  PITEX_NOALLOC bool Compatible(std::span<const TagId> partial,
                                TopicId z) const;

 private:
  const TopicModel* topics_;
  // log r(w, z), row-major [tag][topic]; -inf when p(w|z) = 0, +inf when
  // the geometric-mean denominator vanishes.
  std::vector<double> log_r_;
  // Per topic: tag ids sorted by descending log r(w, z).
  std::vector<std::vector<TagId>> sorted_tags_;

  double LogR(TagId w, TopicId z) const {
    return log_r_[static_cast<size_t>(w) * topics_->num_topics() + z];
  }
};

/// EdgeProbFn view of p+(e|W): plugs into any InfluenceOracle to estimate
/// the influence upper bound of a partial tag set.
class UpperBoundProbs final : public EdgeProbFn {
 public:
  /// Owning constructor: computes and stores the multipliers through the
  /// reference TopicMultipliers path (allocates). For tests and one-off
  /// callers.
  UpperBoundProbs(const InfluenceGraph& influence,
                  const UpperBoundContext& context,
                  std::span<const TagId> partial, size_t k);

  /// Non-allocating constructor: fills *scratch via TopicMultipliersInto
  /// and points into it. `scratch` must outlive this object and must not
  /// be refilled while it is in use.
  PITEX_NOALLOC UpperBoundProbs(const InfluenceGraph& influence,
                                const UpperBoundContext& context,
                                std::span<const TagId> partial, size_t k,
                                BoundScratch* scratch);

  // Not copyable: the spans may alias this object's owned storage, so a
  // memberwise copy would dangle once the source is destroyed.
  UpperBoundProbs(const UpperBoundProbs&) = delete;
  UpperBoundProbs& operator=(const UpperBoundProbs&) = delete;

  PITEX_NOALLOC double Prob(EdgeId e) const override;

 private:
  const InfluenceGraph& influence_;
  // Owning storage, used only by the first constructor.
  std::vector<double> owned_multipliers_;
  std::vector<uint8_t> owned_compatible_;
  // What Prob reads: either the owned storage or the caller's scratch.
  std::span<const double> multipliers_;   // B(z), 0 for incompatible topics
  std::span<const uint8_t> compatible_;   // topic mask
};

}  // namespace pitex

#endif  // PITEX_SRC_CORE_UPPER_BOUND_H_
