// Lemma 8: per-edge influence probability upper bounds for partial tag
// sets, powering best-effort exploration (Sec. 5.2).
//
// For a partial set W (|W| < k), p+(e|W) must dominate p(e|W') for every
// size-k completion W' of W. The lemma combines two bounds and takes the
// minimum:
//
//  (Eq. 5, sparse regime)  max over topics z compatible with W
//                          (p(z|W) > 0) of p(e|z);
//  (Eq. 6, dense regime)   sum_z p(e|z) * B(z) with
//                          B(z) = p(z) * prod_{w in W u W*} r(w, z), where
//                          r(w, z) = p(w|z) / prod_z' p(w|z')^{p(z')}
//                          (a Jensen bound on the posterior: the weighted
//                          geometric mean lower-bounds the normalizer) and
//                          W* ranges over completions — maximized by
//                          taking the k - |W| largest r(w, z) among the
//                          remaining tags.
//
// Note on Eq. 6: the paper's statement distributes a p(z) factor into
// every tag's term (prod_w p(w|z) p(z)), i.e. p(z)^{|W|}; since the
// posterior numerator carries exactly one p(z), that variant can
// *under*-estimate and is not admissible (our randomized property tests
// catch the violation). The Jensen step in the paper's own proof
// (Appendix B.8) supports the single-p(z) form implemented here.
//
// r(w, z) is +infinity when some p(w|z') = 0 with positive prior (the
// geometric-mean denominator vanishes); Eq. 6 then degenerates and the
// minimum falls back to Eq. 5 — which is why Eq. 6 only helps on dense
// tag-topic matrices, exactly as the paper discusses.

#ifndef PITEX_SRC_CORE_UPPER_BOUND_H_
#define PITEX_SRC_CORE_UPPER_BOUND_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "src/sampling/influence_estimator.h"

namespace pitex {

/// Precomputed per-(tag, topic) log r(w, z) values plus per-topic sorted
/// orders. Built once per network; shared by all queries.
class UpperBoundContext {
 public:
  explicit UpperBoundContext(const TopicModel& topics);

  const TopicModel& topics() const { return *topics_; }

  /// Returns the Eq.-6 multiplier B(z) for each topic given the partial
  /// set and the target size k, or +infinity where the bound degenerates;
  /// entries are 0 for topics incompatible with `partial` (p(z|W) = 0).
  std::vector<double> TopicMultipliers(std::span<const TagId> partial,
                                       size_t k) const;

  /// True if topic z is compatible with the partial set (every w in W has
  /// p(w|z) > 0 and the prior is positive).
  bool Compatible(std::span<const TagId> partial, TopicId z) const;

 private:
  const TopicModel* topics_;
  // log r(w, z), row-major [tag][topic]; -inf when p(w|z) = 0, +inf when
  // the geometric-mean denominator vanishes.
  std::vector<double> log_r_;
  // Per topic: tag ids sorted by descending log r(w, z).
  std::vector<std::vector<TagId>> sorted_tags_;

  double LogR(TagId w, TopicId z) const {
    return log_r_[static_cast<size_t>(w) * topics_->num_topics() + z];
  }
};

/// EdgeProbFn view of p+(e|W): plugs into any InfluenceOracle to estimate
/// the influence upper bound of a partial tag set.
class UpperBoundProbs final : public EdgeProbFn {
 public:
  UpperBoundProbs(const InfluenceGraph& influence,
                  const UpperBoundContext& context,
                  std::span<const TagId> partial, size_t k);

  double Prob(EdgeId e) const override;

 private:
  const InfluenceGraph& influence_;
  std::vector<double> multipliers_;   // B(z), 0 for incompatible topics
  std::vector<uint8_t> compatible_;   // topic mask
};

}  // namespace pitex

#endif  // PITEX_SRC_CORE_UPPER_BOUND_H_
