#include "src/core/upper_bound.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/util/check.h"

namespace pitex {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

UpperBoundContext::UpperBoundContext(const TopicModel& topics)
    : topics_(&topics) {
  const size_t num_z = topics.num_topics();
  const size_t num_w = topics.num_tags();
  log_r_.resize(num_w * num_z);
  for (TagId w = 0; w < num_w; ++w) {
    // Weighted geometric-mean denominator: sum_z' p(z') * log p(w|z').
    double log_denom = 0.0;
    for (TopicId z = 0; z < num_z; ++z) {
      const double prior = topics.prior()[z];
      if (prior <= 0.0) continue;
      const double p = topics.TagTopic(w, z);
      if (p <= 0.0) {
        log_denom = -kInf;
        break;
      }
      log_denom += prior * std::log(p);
    }
    for (TopicId z = 0; z < num_z; ++z) {
      const double p = topics.TagTopic(w, z);
      const double prior = topics.prior()[z];
      double value;
      if (p <= 0.0 || prior <= 0.0) {
        value = -kInf;  // r = 0: the factor annihilates the product
      } else if (log_denom == -kInf) {
        value = kInf;  // denominator vanished: bound degenerates
      } else {
        value = std::log(p) - log_denom;
      }
      log_r_[static_cast<size_t>(w) * num_z + z] = value;
    }
  }
  sorted_tags_.resize(num_z);
  for (TopicId z = 0; z < num_z; ++z) {
    auto& order = sorted_tags_[z];
    order.resize(num_w);
    for (TagId w = 0; w < num_w; ++w) order[w] = w;
    std::sort(order.begin(), order.end(), [&](TagId a, TagId b) {
      return LogR(a, z) > LogR(b, z);
    });
  }
}

PITEX_NOALLOC bool UpperBoundContext::Compatible(
    std::span<const TagId> partial,
                                   TopicId z) const {
  if (topics_->prior()[z] <= 0.0) return false;
  for (TagId w : partial) {
    if (topics_->TagTopic(w, z) <= 0.0) return false;
  }
  return true;
}

std::vector<double> UpperBoundContext::TopicMultipliers(
    std::span<const TagId> partial, size_t k) const {
  PITEX_CHECK(partial.size() <= k);
  const size_t num_z = topics_->num_topics();
  const size_t need = k - partial.size();
  std::vector<double> result(num_z, 0.0);
  for (TopicId z = 0; z < num_z; ++z) {
    if (!Compatible(partial, z)) continue;  // p(z|W) = 0: excluded from sum
    // Single leading p(z) from the posterior numerator (see header note).
    double log_b = std::log(topics_->prior()[z]);
    for (TagId w : partial) log_b += LogR(w, z);
    // Complete with the `need` largest r(w, z) among remaining tags.
    size_t taken = 0;
    for (TagId w : sorted_tags_[z]) {
      if (taken == need) break;
      if (std::find(partial.begin(), partial.end(), w) != partial.end()) {
        continue;
      }
      log_b += LogR(w, z);
      ++taken;
    }
    if (std::isnan(log_b)) {
      // inf + (-inf): a mandatory tag kills the product while another
      // degenerates; the annihilating factor wins (product is 0).
      result[z] = 0.0;
    } else if (log_b == kInf) {
      result[z] = kInf;
    } else {
      result[z] = std::exp(log_b);
    }
  }
  return result;
}

PITEX_NOALLOC void UpperBoundContext::TopicMultipliersInto(
    std::span<const TagId> partial,
                                             size_t k,
                                             BoundScratch* scratch) const {
  PITEX_CHECK(partial.size() <= k);
  const size_t num_z = topics_->num_topics();
  const size_t num_w = topics_->num_tags();
  if (scratch->tag_epoch.size() < num_w) {
    scratch->tag_epoch.assign(num_w, 0);
    scratch->epoch = 0;
  }
  if (++scratch->epoch == 0) {  // epoch wrapped: drop all stale stamps
    std::fill(scratch->tag_epoch.begin(), scratch->tag_epoch.end(), 0);
    scratch->epoch = 1;
  }
  const uint32_t epoch = scratch->epoch;
  for (TagId w : partial) scratch->tag_epoch[w] = epoch;

  scratch->multipliers.assign(num_z, 0.0);
  scratch->compatible.assign(num_z, 0);
  const size_t need = k - partial.size();
  // Identical accumulation order to TopicMultipliers above — only the
  // membership test (epoch stamp vs std::find) and the output storage
  // differ, so the doubles come out bit-identical.
  for (TopicId z = 0; z < num_z; ++z) {
    if (!Compatible(partial, z)) continue;
    scratch->compatible[z] = 1;
    double log_b = std::log(topics_->prior()[z]);
    for (TagId w : partial) log_b += LogR(w, z);
    size_t taken = 0;
    for (TagId w : sorted_tags_[z]) {
      if (taken == need) break;
      if (scratch->tag_epoch[w] == epoch) continue;
      log_b += LogR(w, z);
      ++taken;
    }
    if (std::isnan(log_b)) {
      scratch->multipliers[z] = 0.0;
    } else if (log_b == kInf) {
      scratch->multipliers[z] = kInf;
    } else {
      scratch->multipliers[z] = std::exp(log_b);
    }
  }
}

UpperBoundProbs::UpperBoundProbs(const InfluenceGraph& influence,
                                 const UpperBoundContext& context,
                                 std::span<const TagId> partial, size_t k)
    : influence_(influence),
      owned_multipliers_(context.TopicMultipliers(partial, k)),
      owned_compatible_(owned_multipliers_.size(), 0) {
  for (TopicId z = 0; z < owned_compatible_.size(); ++z) {
    owned_compatible_[z] = context.Compatible(partial, z) ? 1 : 0;
  }
  multipliers_ = owned_multipliers_;
  compatible_ = owned_compatible_;
}

PITEX_NOALLOC UpperBoundProbs::UpperBoundProbs(
    const InfluenceGraph& influence, const UpperBoundContext& context,
    std::span<const TagId> partial, size_t k, BoundScratch* scratch)
    : influence_(influence) {
  context.TopicMultipliersInto(partial, k, scratch);
  multipliers_ = scratch->multipliers;
  compatible_ = scratch->compatible;
}

PITEX_NOALLOC double UpperBoundProbs::Prob(EdgeId e) const {
  double eq5 = 0.0;  // max over compatible topics of p(e|z)
  double eq6 = 0.0;  // sum_z p(e|z) * B(z)
  for (const auto& [z, p] : influence_.EdgeTopics(e)) {
    if (!compatible_[z]) continue;
    eq5 = std::max(eq5, p);
    eq6 += p * multipliers_[z];
  }
  return std::clamp(std::min(eq5, eq6), 0.0, 1.0);
}

}  // namespace pitex
