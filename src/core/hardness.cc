#include "src/core/hardness.h"

#include <algorithm>

#include "src/util/check.h"

namespace pitex {

LabeledGraph BuildKLabelFromSetCover(
    size_t universe_size,
    const std::vector<std::vector<uint32_t>>& subsets) {
  LabeledGraph g;
  g.num_vertices = universe_size + 1;
  g.num_labels = subsets.size();
  for (uint32_t j = 0; j < subsets.size(); ++j) {
    for (uint32_t element : subsets[j]) {
      PITEX_CHECK(element < universe_size);
      g.edges.push_back(LabeledGraph::Edge{
          static_cast<VertexId>(element), static_cast<VertexId>(element + 1),
          j});
    }
  }
  return g;
}

bool LabelReachable(const LabeledGraph& g, std::span<const uint32_t> labels,
                    VertexId s, VertexId t) {
  std::vector<uint8_t> allowed(g.num_labels, 0);
  for (uint32_t l : labels) {
    PITEX_CHECK(l < g.num_labels);
    allowed[l] = 1;
  }
  // BFS on the label-induced subgraph (adjacency built on the fly; the
  // gadget graphs are tiny).
  std::vector<uint8_t> visited(g.num_vertices, 0);
  std::vector<VertexId> stack{s};
  visited[s] = 1;
  while (!stack.empty()) {
    const VertexId v = stack.back();
    stack.pop_back();
    if (v == t) return true;
    for (const auto& e : g.edges) {
      if (e.tail != v || !allowed[e.label] || visited[e.head]) continue;
      visited[e.head] = 1;
      stack.push_back(e.head);
    }
  }
  return visited[t];
}

HardnessGadget BuildPitexFromKLabel(const LabeledGraph& g, VertexId s,
                                    VertexId t) {
  const size_t n = g.num_vertices;
  const size_t total = n * n;  // V plus |V'| = n^2 - n amplification chain
  HardnessGadget gadget;
  gadget.query_user = s;
  gadget.t = t;
  gadget.spread_threshold = static_cast<double>(n) - 1.0;

  GraphBuilder graph_builder(total);
  std::vector<uint32_t> edge_labels;
  for (const auto& e : g.edges) {
    graph_builder.AddEdge(e.tail, e.head);
    edge_labels.push_back(e.label);
  }
  // Amplification chain t -> u'_1 -> ... -> u'_{n^2-n}, live under every
  // topic.
  constexpr uint32_t kChainLabel = UINT32_MAX;
  VertexId prev = t;
  for (size_t i = 0; i < total - n; ++i) {
    const auto next = static_cast<VertexId>(n + i);
    graph_builder.AddEdge(prev, next);
    edge_labels.push_back(kChainLabel);
    prev = next;
  }
  gadget.network.graph = graph_builder.Build();

  // One tag and one topic per label, diagonal p(w_i|z_i) = 1.
  const size_t num_labels = std::max<size_t>(g.num_labels, 1);
  gadget.network.topics = TopicModel(num_labels, num_labels);
  for (uint32_t l = 0; l < num_labels; ++l) {
    gadget.network.topics.SetTagTopic(l, l, 1.0);
  }

  InfluenceGraphBuilder influence_builder(gadget.network.graph.num_edges());
  std::vector<EdgeTopicEntry> entries;
  for (EdgeId e = 0; e < gadget.network.graph.num_edges(); ++e) {
    entries.clear();
    if (edge_labels[e] == kChainLabel) {
      for (uint32_t z = 0; z < num_labels; ++z) {
        entries.push_back({z, 1.0});
      }
    } else {
      entries.push_back({edge_labels[e], 1.0});
    }
    influence_builder.SetEdgeTopics(e, entries);
  }
  gadget.network.influence = influence_builder.Build();
  return gadget;
}

}  // namespace pitex
