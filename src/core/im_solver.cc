#include "src/core/im_solver.h"

#include <algorithm>
#include <cmath>

#include "src/sampling/influence_estimator.h"
#include "src/util/check.h"
#include "src/util/random.h"

namespace pitex {

namespace {

// One reverse-reachable vertex set sampled under fixed probabilities:
// every vertex that reaches a uniform root in a live-edge world.
std::vector<VertexId> SampleRrSet(const Graph& graph, const EdgeProbFn& probs,
                                  VertexId root, Rng* rng,
                                  uint64_t* edges_visited,
                                  std::vector<uint32_t>* visit_epoch,
                                  uint32_t epoch) {
  std::vector<VertexId> set{root};
  (*visit_epoch)[root] = epoch;
  std::vector<VertexId> stack{root};
  while (!stack.empty()) {
    const VertexId v = stack.back();
    stack.pop_back();
    for (const auto& [w, e] : graph.InEdges(v)) {
      ++*edges_visited;
      if ((*visit_epoch)[w] == epoch) continue;
      const double p = probs.Prob(e);
      if (p <= 0.0 || !rng->NextBernoulli(p)) continue;
      (*visit_epoch)[w] = epoch;
      set.push_back(w);
      stack.push_back(w);
    }
  }
  return set;
}

}  // namespace

ImResult SolveImWithProbs(const Graph& graph, const EdgeProbFn& probs,
                          const ImOptions& options) {
  PITEX_CHECK(graph.num_vertices() > 0);
  ImResult result;
  uint64_t theta = options.theta_override;
  if (theta == 0) {
    const double target = options.theta_per_vertex *
                          static_cast<double>(graph.num_vertices());
    theta = std::min<uint64_t>(
        options.max_theta,
        std::max<uint64_t>(64, static_cast<uint64_t>(std::llround(target))));
  }
  result.theta = theta;

  // Sampling pass.
  Rng rng(options.seed);
  std::vector<std::vector<VertexId>> rr_sets;
  rr_sets.reserve(theta);
  std::vector<std::vector<uint32_t>> containing(graph.num_vertices());
  std::vector<uint32_t> visit_epoch(graph.num_vertices(), 0);
  for (uint64_t i = 0; i < theta; ++i) {
    const auto root =
        static_cast<VertexId>(rng.NextBounded(graph.num_vertices()));
    rr_sets.push_back(SampleRrSet(graph, probs, root, &rng,
                                  &result.edges_visited, &visit_epoch,
                                  static_cast<uint32_t>(i + 1)));
    for (const VertexId v : rr_sets.back()) {
      containing[v].push_back(static_cast<uint32_t>(i));
    }
  }

  // Greedy max coverage with lazy (CELF-style) re-evaluation: coverage
  // counts only decrease as sets get covered, so a stale count is an
  // upper bound and the heap pop with a fresh count is the true argmax.
  std::vector<uint64_t> cover_count(graph.num_vertices());
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    cover_count[v] = containing[v].size();
  }
  std::vector<uint8_t> covered(theta, 0);
  std::vector<uint8_t> stale(graph.num_vertices(), 0);
  std::vector<VertexId> heap(graph.num_vertices());
  for (VertexId v = 0; v < graph.num_vertices(); ++v) heap[v] = v;
  auto by_count = [&](VertexId a, VertexId b) {
    return cover_count[a] < cover_count[b];  // max-heap on count
  };
  std::make_heap(heap.begin(), heap.end(), by_count);

  const double scale = static_cast<double>(graph.num_vertices()) /
                       static_cast<double>(theta);
  uint64_t covered_total = 0;
  while (result.seeds.size() < options.num_seeds && !heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), by_count);
    const VertexId candidate = heap.back();
    heap.pop_back();
    if (stale[candidate]) {
      // Refresh: drop covered sets from the count, re-push.
      uint64_t fresh = 0;
      for (const uint32_t id : containing[candidate]) {
        fresh += !covered[id];
      }
      cover_count[candidate] = fresh;
      stale[candidate] = 0;
      heap.push_back(candidate);
      std::push_heap(heap.begin(), heap.end(), by_count);
      continue;
    }
    if (cover_count[candidate] == 0) break;  // nothing left to gain
    // Take it: cover its sets, mark everyone else stale.
    result.seeds.push_back(candidate);
    result.marginal_spread.push_back(
        static_cast<double>(cover_count[candidate]) * scale);
    covered_total += cover_count[candidate];
    for (const uint32_t id : containing[candidate]) covered[id] = 1;
    std::fill(stale.begin(), stale.end(), 1);
  }
  result.spread = static_cast<double>(covered_total) * scale;
  return result;
}

ImResult SolveTopicAwareIm(const SocialNetwork& network,
                           std::span<const TagId> tags,
                           const ImOptions& options) {
  const TopicPosterior posterior = network.topics.Posterior(tags);
  const PosteriorProbs probs(network.influence, posterior);
  return SolveImWithProbs(network.graph, probs, options);
}

}  // namespace pitex
