// PitexEngine: the library's top-level facade.
//
// Selects one of the paper's seven estimation methods, optionally builds
// the offline index, and answers PITEX queries via best-effort exploration
// (default) or plain enumeration. Typical use:
//
//   pitex::SocialNetwork network = ...;
//   pitex::EngineOptions options;
//   options.method = pitex::Method::kIndexEstPlus;
//   pitex::PitexEngine engine(&network, options);
//   engine.BuildIndex();  // no-op for online methods
//   pitex::PitexResult r = engine.Explore({.user = 42, .k = 3});

#ifndef PITEX_SRC_CORE_ENGINE_H_
#define PITEX_SRC_CORE_ENGINE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/core/best_effort_solver.h"
#include "src/core/query.h"
#include "src/core/upper_bound.h"
#include "src/index/delay_mat.h"
#include "src/index/edge_cut.h"
#include "src/index/rr_index.h"
#include "src/sampling/influence_estimator.h"
#include "src/sampling/sample_size.h"
#include "src/sampling/tim_estimator.h"

namespace pitex {

/// The estimation methods compared in Sec. 7.
enum class Method {
  kMc,           // Monte-Carlo sampling (Sec. 4)
  kRr,           // Reverse-reachable sampling (Sec. 4)
  kLazy,         // Lazy propagation sampling (Sec. 5.1)
  kTim,          // Tree-based baseline (Sec. 7.1)
  kIndexEst,     // RR-Graph index (Sec. 6.1)
  kIndexEstPlus, // + edge-cut pruning (Sec. 6.2)
  kDelayMat,     // delay materialization (Sec. 6.3)
  kLt,           // Linear Threshold sampling (footnote 1 extension)
};

/// Parses/prints method names as used in the paper's figures.
const char* MethodName(Method method);

struct EngineOptions {
  Method method = Method::kLazy;
  /// Accuracy knobs (defaults match Sec. 7.3: eps=0.7, delta=1000).
  double eps = 0.7;
  double delta = 1000.0;
  /// Use best-effort exploration (Sec. 5.2); all reported methods do.
  bool best_effort = true;
  /// Sampling caps (see SampleSizePolicy).
  uint64_t min_samples = 32;
  uint64_t max_samples = 1 << 15;
  /// Index parameters (methods kIndexEst / kIndexEstPlus / kDelayMat).
  double index_theta_per_vertex = 1.0;
  uint64_t index_max_theta = 4'000'000;
  int64_t index_cap_k = 10;
  /// Threads for the offline RR-Graph sampling pass (result is
  /// bit-identical for any thread count).
  size_t index_build_threads = 1;
  /// TIM parameters.
  TimOptions tim;
  uint64_t seed = 1;
};

class PitexEngine {
 public:
  /// `network` must outlive the engine.
  PitexEngine(const SocialNetwork* network, const EngineOptions& options);
  ~PitexEngine();

  PitexEngine(const PitexEngine&) = delete;
  PitexEngine& operator=(const PitexEngine&) = delete;

  /// Builds the offline index when the method requires one; no-op (and
  /// zero cost) otherwise. Must be called before Explore for index
  /// methods.
  void BuildIndex();

  /// Serves kIndexEst / kIndexEstPlus from an externally owned, already
  /// built RR-Graph index instead of building one. RrIndex estimation is
  /// read-only after Build() and keeps its reachability scratch
  /// per-thread, so one index may back many engines concurrently — this
  /// is how BatchEngine shares the offline cost across workers and how a
  /// server adopts an index loaded via LoadRrIndex. `shared` must
  /// outlive the engine. Call before BuildIndex().
  void UseSharedRrIndex(RrIndex* shared);

  /// Like UseSharedRrIndex but transfers ownership (e.g. the result of
  /// LoadRrIndex). Call before BuildIndex().
  void AdoptRrIndex(std::unique_ptr<RrIndex> index);

  /// Serves kDelayMat from an externally built (e.g. loaded) index.
  /// DelayMat caches recovered graphs per query user, so an instance
  /// must never be shared across engines — ownership transfers. Call
  /// before BuildIndex().
  void AdoptDelayMatIndex(std::unique_ptr<DelayMatIndex> index);

  /// Answers a PITEX query: the size-k tag set maximizing the target
  /// user's estimated influence spread.
  PitexResult Explore(const PitexQuery& query);

  /// Top-N variant: up to `n` size-k tag sets in descending estimated
  /// influence (n = 1 matches Explore). Useful for exploration UIs that
  /// show alternatives, not just the argmax. Always uses best-effort
  /// search (pruning against the N-th incumbent). `stats` (optional)
  /// receives the execution counters -- including the `degraded` flag
  /// when the query carried a budget that expired mid-search.
  std::vector<RankedTagSet> ExploreTopN(const PitexQuery& query, size_t n,
                                        PitexResult* stats = nullptr);

  /// Estimates E[I(u|W)] for an explicit tag set (no search).
  Estimate EstimateInfluence(VertexId user, std::span<const TagId> tags);

  /// Index footprint in bytes (0 for online methods).
  size_t IndexSizeBytes() const;
  /// Index build wall-clock seconds (0 for online methods).
  double IndexBuildSeconds() const;

  const EngineOptions& options() const { return options_; }

 private:
  SampleSizePolicy PolicyFor(size_t k) const;
  InfluenceOracle* OracleFor(size_t k);

  const SocialNetwork* network_;
  EngineOptions options_;
  UpperBoundContext bound_context_;
  // Pooled best-effort state: queries after the first allocate nothing
  // inside the search loop.
  BestEffortScratch best_effort_scratch_;
  std::vector<RankedTagSet> best_effort_out_;

  // At most one of each, created on demand. `rr_index_ptr_` is the index
  // actually served (owned or shared).
  std::unique_ptr<RrIndex> rr_index_;
  RrIndex* rr_index_ptr_ = nullptr;
  std::unique_ptr<PrunedRrIndex> pruned_index_;
  std::unique_ptr<DelayMatIndex> delay_index_;
  std::unique_ptr<InfluenceOracle> online_oracle_;
  size_t online_oracle_k_ = 0;
};

}  // namespace pitex

#endif  // PITEX_SRC_CORE_ENGINE_H_
