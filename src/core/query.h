// PITEX query and result types (Definition 1).

#ifndef PITEX_SRC_CORE_QUERY_H_
#define PITEX_SRC_CORE_QUERY_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/model/influence_graph.h"

namespace pitex {

/// A PITEX query: the target user and the number of tags to select.
struct PitexQuery {
  VertexId user = 0;
  size_t k = 3;
  /// Soft wall-clock budget in seconds; 0 (default) disables deadlines
  /// entirely -- the search runs to completion and behaves bit-identically
  /// to a budget-free build. With a positive budget the best-effort
  /// search checks the clock at every frontier pop and, on expiry,
  /// returns its current best top-N with `PitexResult::degraded` set
  /// (graceful degradation, never an error). The budget covers the
  /// best-effort search only; enumeration (best_effort=false) ignores
  /// it. The serving layer (src/serve/) measures the budget from enqueue
  /// time, so queue wait counts against it.
  double budget_seconds = 0.0;
};

/// Query answer plus execution statistics (the quantities the paper's
/// evaluation section reports).
struct PitexResult {
  /// The selected tag set W* (sorted by TagId), |tags| == k.
  std::vector<TagId> tags;
  /// Estimated expected spread E[I(u|W*)].
  double influence = 0.0;

  /// Number of full-size tag sets whose influence was estimated.
  uint64_t sets_evaluated = 0;
  /// Number of (partial or full) tag sets discarded by best-effort bounds.
  uint64_t sets_pruned = 0;
  /// Number of upper-bound estimations performed.
  uint64_t bounds_evaluated = 0;
  /// Total sample instances drawn across all estimations.
  uint64_t total_samples = 0;
  /// Total edge probes across all estimations (Fig. 13 metric).
  uint64_t edges_visited = 0;
  /// End-to-end wall-clock seconds.
  double seconds = 0.0;
  /// True when a query budget (PitexQuery::budget_seconds) expired
  /// before the search space was exhausted: `tags`/`influence` hold the
  /// best answer found so far (possibly empty when the budget expired
  /// before the first full set was evaluated), not the proven optimum.
  bool degraded = false;
};

}  // namespace pitex

#endif  // PITEX_SRC_CORE_QUERY_H_
