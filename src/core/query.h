// PITEX query and result types (Definition 1).

#ifndef PITEX_SRC_CORE_QUERY_H_
#define PITEX_SRC_CORE_QUERY_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/model/influence_graph.h"

namespace pitex {

/// A PITEX query: the target user and the number of tags to select.
struct PitexQuery {
  VertexId user = 0;
  size_t k = 3;
};

/// Query answer plus execution statistics (the quantities the paper's
/// evaluation section reports).
struct PitexResult {
  /// The selected tag set W* (sorted by TagId), |tags| == k.
  std::vector<TagId> tags;
  /// Estimated expected spread E[I(u|W*)].
  double influence = 0.0;

  /// Number of full-size tag sets whose influence was estimated.
  uint64_t sets_evaluated = 0;
  /// Number of (partial or full) tag sets discarded by best-effort bounds.
  uint64_t sets_pruned = 0;
  /// Number of upper-bound estimations performed.
  uint64_t bounds_evaluated = 0;
  /// Total sample instances drawn across all estimations.
  uint64_t total_samples = 0;
  /// Total edge probes across all estimations (Fig. 13 metric).
  uint64_t edges_visited = 0;
  /// End-to-end wall-clock seconds.
  double seconds = 0.0;
};

}  // namespace pitex

#endif  // PITEX_SRC_CORE_QUERY_H_
