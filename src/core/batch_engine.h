// Concurrent batch PITEX processing.
//
// The paper's evaluation answers 100 queries per configuration
// (Sec. 7.1); a deployment answers streams of them. BatchEngine runs a
// batch of PITEX queries across a worker pool while paying the offline
// index cost once:
//
//   * kIndexEst / kIndexEstPlus: one shared RR-Graph index is built on
//     the batch's worker pool (or adopted from disk) and backs every
//     worker — RrIndex estimation is read-only after Build() and its
//     reachability scratch is per-thread, so concurrent readers are safe
//     and allocation-free. Each worker keeps its own PrunedRrIndex
//     wrapper (the edge-cut filter cache and verification scratch are
//     per-worker mutable state).
//   * kDelayMat: the counter table is built once, snapshotted through
//     the serialization path, and each worker hydrates a private replica
//     (DelayMat caches recovered RR-Graphs per query user and must not
//     be shared).
//   * online methods (kMc/kRr/kLazy/kLt/kTim): each worker owns an
//     independent sampler with a distinct seed.
//
// Queries are assigned to workers statically (round-robin), so results
// are deterministic for a fixed (seed, num_threads) — worker w uses seed
// base_seed + w, and query i always lands on worker i % num_threads.

#ifndef PITEX_SRC_CORE_BATCH_ENGINE_H_
#define PITEX_SRC_CORE_BATCH_ENGINE_H_

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/core/engine.h"
#include "src/util/thread_pool.h"

namespace pitex {

struct BatchOptions {
  /// Per-worker engine configuration (method, eps, delta, ...). Worker w
  /// derives its seed as engine.seed + w.
  EngineOptions engine;
  size_t num_threads = 4;
};

/// Per-worker execution accounting of one ExploreAll call. Static
/// round-robin assignment balances query *counts* but not query *cost*
/// (hub users are orders of magnitude more expensive), so the wall-time
/// spread across workers is the load-imbalance signal — and the quantity
/// the work-stealing serving scheduler (src/serve/pitex_service.h)
/// removes.
struct BatchWorkerStats {
  /// Queries this worker answered.
  uint64_t queries = 0;
  /// Wall-clock seconds this worker spent answering them.
  double seconds = 0.0;
};

class BatchEngine {
 public:
  /// `network` must outlive the engine.
  BatchEngine(const SocialNetwork* network, const BatchOptions& options);
  ~BatchEngine();

  BatchEngine(const BatchEngine&) = delete;
  BatchEngine& operator=(const BatchEngine&) = delete;

  /// Builds the shared index (index methods) and the worker engines.
  /// Invoked lazily by ExploreAll if not called explicitly.
  void Prepare();

  /// Answers every query; results[i] corresponds to queries[i].
  std::vector<PitexResult> ExploreAll(std::span<const PitexQuery> queries);

  /// Wall-clock seconds of the most recent ExploreAll (excludes Prepare).
  double last_batch_seconds() const { return last_batch_seconds_; }
  /// Per-worker query counts and wall times of the most recent
  /// ExploreAll (one entry per worker; empty before the first call).
  const std::vector<BatchWorkerStats>& last_worker_stats() const {
    return last_worker_stats_;
  }
  /// Offline index footprint shared across workers (0 for online methods).
  size_t SharedIndexSizeBytes() const;

 private:
  const SocialNetwork* network_;
  BatchOptions options_;
  bool prepared_ = false;

  std::unique_ptr<RrIndex> shared_index_;      // kIndexEst / kIndexEstPlus
  std::string delay_snapshot_;                 // serialized DelayMat
  std::vector<std::unique_ptr<PitexEngine>> workers_;
  std::unique_ptr<ThreadPool> pool_;
  double last_batch_seconds_ = 0.0;
  std::vector<BatchWorkerStats> last_worker_stats_;
};

}  // namespace pitex

#endif  // PITEX_SRC_CORE_BATCH_ENGINE_H_
