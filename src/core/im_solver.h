// Topic-aware influence maximization for a fixed tag set — the
// related-work problem PITEX is contrasted against (Sec. 2, [2, 6, 16]).
//
// PITEX fixes the user and searches over tag sets; topic-aware IM fixes
// the tag set W and searches for the k *users* whose joint activation
// maximizes the expected spread. The library ships it both because the
// paper positions PITEX against it and because the two compose: first
// find who could campaign (IM), then find each campaigner's selling
// points (PITEX) — examples/index_server.cpp style workflows.
//
// The solver is standard RIS (reverse influence sampling, the machinery
// behind [5, 35, 36] that Sec. 4 adapts): sample theta reverse-reachable
// vertex sets under the fixed probabilities p(e|W), then greedily pick
// seeds by lazy max-coverage. Coverage is a monotone submodular set
// function, so greedy is a (1 - 1/e)-approximation of the best coverage,
// and coverage/theta * |V| estimates the seed set's expected spread.

#ifndef PITEX_SRC_CORE_IM_SOLVER_H_
#define PITEX_SRC_CORE_IM_SOLVER_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "src/model/influence_graph.h"

namespace pitex {

struct ImOptions {
  /// Seed set size (the k of influence maximization).
  size_t num_seeds = 5;
  /// Reverse-reachable sets to sample. More sets, tighter estimates;
  /// RIS theory wants O(k |V| log|V| / eps^2), laptop defaults are
  /// per-vertex like the PITEX index.
  double theta_per_vertex = 8.0;
  uint64_t max_theta = 4'000'000;
  /// If non-zero, overrides the theta computation.
  uint64_t theta_override = 0;
  uint64_t seed = 31;
};

struct ImResult {
  /// Selected seed users, in greedy pick order (most marginal coverage
  /// first).
  std::vector<VertexId> seeds;
  /// Estimated expected spread E[I(seeds|W)] of the whole seed set.
  double spread = 0.0;
  /// Estimated marginal spread contributed by each seed, aligned with
  /// `seeds` (diagnostic: shows the diminishing returns curve).
  std::vector<double> marginal_spread;
  /// Number of reverse-reachable sets sampled.
  uint64_t theta = 0;
  /// Total edges probed during sampling.
  uint64_t edges_visited = 0;
};

/// Picks `options.num_seeds` seed users maximizing expected spread under
/// the fixed tag set `tags` (greedy RIS; (1-1/e)-approximate coverage).
/// Fewer seeds are returned when the graph runs out of vertices with
/// positive marginal coverage.
ImResult SolveTopicAwareIm(const SocialNetwork& network,
                           std::span<const TagId> tags,
                           const ImOptions& options);

/// Same, for an arbitrary edge-probability function (used by tests and
/// by callers with custom propagation weights).
class EdgeProbFn;
ImResult SolveImWithProbs(const Graph& graph, const EdgeProbFn& probs,
                          const ImOptions& options);

}  // namespace pitex

#endif  // PITEX_SRC_CORE_IM_SOLVER_H_
