// Enumeration-based PITEX solver (Sec. 4): estimate E[I(u|W)] for every
// size-k tag set and return the maximum. Theorem 2: with the Eq.-2 sample
// sizes this achieves a (1-eps)/(1+eps) approximation with probability
// 1 - 1/delta.

#ifndef PITEX_SRC_CORE_ENUMERATION_SOLVER_H_
#define PITEX_SRC_CORE_ENUMERATION_SOLVER_H_

#include "src/core/query.h"
#include "src/sampling/influence_estimator.h"

namespace pitex {

/// Solves `query` on `network` using `oracle` for influence estimation.
/// Requires 1 <= query.k <= network.topics.num_tags().
PitexResult SolveByEnumeration(const SocialNetwork& network,
                               const PitexQuery& query,
                               InfluenceOracle* oracle);

}  // namespace pitex

#endif  // PITEX_SRC_CORE_ENUMERATION_SOLVER_H_
