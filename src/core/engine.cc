#include "src/core/engine.h"

#include "src/core/best_effort_solver.h"
#include "src/core/enumeration_solver.h"
#include "src/sampling/lazy_sampler.h"
#include "src/sampling/lt_sampler.h"
#include "src/sampling/mc_sampler.h"
#include "src/sampling/rr_sampler.h"
#include "src/util/check.h"

namespace pitex {

const char* MethodName(Method method) {
  switch (method) {
    case Method::kMc: return "MC";
    case Method::kRr: return "RR";
    case Method::kLazy: return "LAZY";
    case Method::kTim: return "TIM";
    case Method::kIndexEst: return "INDEXEST";
    case Method::kIndexEstPlus: return "INDEXEST+";
    case Method::kDelayMat: return "DELAYMAT";
    case Method::kLt: return "LT";
  }
  return "?";
}

PitexEngine::PitexEngine(const SocialNetwork* network,
                         const EngineOptions& options)
    : network_(network),
      options_(options),
      bound_context_(network->topics) {
  PITEX_CHECK(network != nullptr);
}

PitexEngine::~PitexEngine() = default;

SampleSizePolicy PitexEngine::PolicyFor(size_t k) const {
  SampleSizePolicy policy;
  policy.eps = options_.eps;
  policy.delta = options_.delta;
  policy.num_tags = static_cast<int64_t>(network_->topics.num_tags());
  policy.k = static_cast<int64_t>(k);
  // Best-effort explores partial sets too: the union bound must run over
  // phi_k = sum_i C(|Omega|, i) (Eq. 12 in Appendix C).
  policy.use_phi = options_.best_effort;
  policy.min_samples = options_.min_samples;
  policy.max_samples = options_.max_samples;
  return policy;
}

void PitexEngine::BuildIndex() {
  RrIndexOptions index_options;
  index_options.eps = options_.eps;
  index_options.delta = options_.delta;
  index_options.cap_k = options_.index_cap_k;
  index_options.theta_per_vertex = options_.index_theta_per_vertex;
  index_options.max_theta = options_.index_max_theta;
  index_options.seed = options_.seed;
  index_options.num_build_threads = options_.index_build_threads;
  switch (options_.method) {
    case Method::kIndexEst:
    case Method::kIndexEstPlus:
      if (rr_index_ptr_ == nullptr) {
        rr_index_ = std::make_unique<RrIndex>(*network_, index_options);
        rr_index_->Build();
        rr_index_ptr_ = rr_index_.get();
      }
      if (options_.method == Method::kIndexEstPlus &&
          pruned_index_ == nullptr) {
        pruned_index_ = std::make_unique<PrunedRrIndex>(
            rr_index_ptr_, &network_->influence);
      }
      break;
    case Method::kDelayMat:
      if (delay_index_ == nullptr) {
        delay_index_ = std::make_unique<DelayMatIndex>(*network_,
                                                       index_options);
        delay_index_->Build();
      }
      break;
    default:
      break;  // online methods need no index
  }
}

void PitexEngine::UseSharedRrIndex(RrIndex* shared) {
  PITEX_CHECK(shared != nullptr);
  PITEX_CHECK_MSG(rr_index_ptr_ == nullptr, "index already set");
  rr_index_ptr_ = shared;
}

void PitexEngine::AdoptRrIndex(std::unique_ptr<RrIndex> index) {
  PITEX_CHECK(index != nullptr);
  PITEX_CHECK_MSG(rr_index_ptr_ == nullptr, "index already set");
  rr_index_ = std::move(index);
  rr_index_ptr_ = rr_index_.get();
}

void PitexEngine::AdoptDelayMatIndex(std::unique_ptr<DelayMatIndex> index) {
  PITEX_CHECK(index != nullptr);
  PITEX_CHECK_MSG(delay_index_ == nullptr, "index already set");
  delay_index_ = std::move(index);
}

InfluenceOracle* PitexEngine::OracleFor(size_t k) {
  switch (options_.method) {
    case Method::kIndexEst:
      PITEX_CHECK_MSG(rr_index_ptr_ != nullptr, "call BuildIndex() first");
      return rr_index_ptr_;
    case Method::kIndexEstPlus:
      PITEX_CHECK_MSG(pruned_index_ != nullptr, "call BuildIndex() first");
      return pruned_index_.get();
    case Method::kDelayMat:
      PITEX_CHECK_MSG(delay_index_ != nullptr, "call BuildIndex() first");
      return delay_index_.get();
    default:
      break;
  }
  // Online oracles embed the k-dependent sample-size policy; rebuild when
  // k changes.
  if (online_oracle_ == nullptr || online_oracle_k_ != k) {
    const SampleSizePolicy policy = PolicyFor(k);
    switch (options_.method) {
      case Method::kMc:
        online_oracle_ = std::make_unique<McSampler>(network_->graph, policy,
                                                     options_.seed);
        break;
      case Method::kRr:
        online_oracle_ = std::make_unique<RrSampler>(network_->graph, policy,
                                                     options_.seed);
        break;
      case Method::kLazy:
        online_oracle_ = std::make_unique<LazySampler>(network_->graph,
                                                       policy, options_.seed);
        break;
      case Method::kLt:
        online_oracle_ = std::make_unique<LtSampler>(network_->graph, policy,
                                                     options_.seed);
        break;
      case Method::kTim:
        online_oracle_ = std::make_unique<TimEstimator>(network_->graph,
                                                        options_.tim);
        break;
      default:
        PITEX_CHECK_MSG(false, "unhandled method");
    }
    online_oracle_k_ = k;
  }
  return online_oracle_.get();
}

PitexResult PitexEngine::Explore(const PitexQuery& query) {
  InfluenceOracle* oracle = OracleFor(query.k);
  if (options_.best_effort) {
    // Route through the engine-owned scratch so repeated queries reuse
    // the search arena, bound scratch, and materialized-probability
    // table instead of re-allocating them.
    PitexResult stats;
    SolveTopNByBestEffort(*network_, query, bound_context_, oracle, 1,
                          &best_effort_out_, &stats, &best_effort_scratch_);
    return stats;
  }
  return SolveByEnumeration(*network_, query, oracle);
}

std::vector<RankedTagSet> PitexEngine::ExploreTopN(const PitexQuery& query,
                                                   size_t n,
                                                   PitexResult* stats) {
  InfluenceOracle* oracle = OracleFor(query.k);
  SolveTopNByBestEffort(*network_, query, bound_context_, oracle, n,
                        &best_effort_out_, stats, &best_effort_scratch_);
  return best_effort_out_;
}

Estimate PitexEngine::EstimateInfluence(VertexId user,
                                        std::span<const TagId> tags) {
  InfluenceOracle* oracle = OracleFor(std::max<size_t>(tags.size(), 1));
  const TopicPosterior posterior = network_->topics.Posterior(tags);
  const PosteriorProbs probs(network_->influence, posterior);
  return oracle->EstimateInfluence(user, probs);
}

size_t PitexEngine::IndexSizeBytes() const {
  if (rr_index_ptr_ != nullptr) return rr_index_ptr_->SizeBytes();
  if (delay_index_ != nullptr) return delay_index_->SizeBytes();
  return 0;
}

double PitexEngine::IndexBuildSeconds() const {
  if (rr_index_ptr_ != nullptr) return rr_index_ptr_->build_seconds();
  if (delay_index_ != nullptr) return delay_index_->build_seconds();
  return 0.0;
}

}  // namespace pitex
