// Cost-based method selection for PITEX workloads.
//
// The paper evaluates seven estimation methods and leaves choosing one to
// the reader: online sampling costs nothing up front but pays
// O(Lambda * |R_W(u)|) per influence estimation (Lemma 7), while the
// RR-Graph index pays a large offline build (Table 3) to make each
// estimation nearly free (Lemma 9). Which side wins depends on how many
// queries will amortize the build — a number only the application knows.
//
// QueryPlanner makes the trade explicit. It probes the network once
// (sampled envelope reach and RR-Graph sizes — the quantities the
// paper's complexity results are stated in), prices both strategies in
// units of *expected edge probes*, and picks the cheaper plan:
//
//   online_cost = queries * sets_per_query * Lambda * avg_reach
//   index_cost  = theta * avg_rr_size                      (build)
//               + queries * sets_per_query * avg_theta_u * avg_rr_size
//
// sets_per_query applies the best-effort pruning observation of
// Sec. 7.3: low tag-topic density prunes most candidate sets, which the
// planner models with the measured density.
//
// The decision also honors deployment constraints: a memory-constrained
// profile swaps the RR-Graphs index for DelayMat (Table 3's space/time
// trade), and an already-available index makes index serving free.

#ifndef PITEX_SRC_CORE_PLANNER_H_
#define PITEX_SRC_CORE_PLANNER_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "src/core/engine.h"
#include "src/model/influence_graph.h"

namespace pitex {

/// Workload description supplied by the application.
struct PlannerInputs {
  /// How many PITEX queries the deployment expects to serve against this
  /// network (the index build amortizes across them).
  uint64_t expected_queries = 1;
  /// Query size k and accuracy knobs (paper defaults).
  size_t k = 3;
  double eps = 0.7;
  double delta = 1000.0;
  /// A pre-built index is already loaded (e.g. via LoadRrIndex): serving
  /// from it is free, so online sampling can never win.
  bool index_available = false;
  /// Keep the resident index small (Table 3: DelayMat stores one counter
  /// per vertex instead of theta RR-Graphs).
  bool memory_constrained = false;
};

/// The planner's verdict plus the numbers that produced it.
struct PlanDecision {
  Method method = Method::kLazy;
  /// Expected edge probes paid by the best online plan (Lazy).
  double online_cost = 0.0;
  /// Expected edge probes paid by the index plan (build + serving).
  double index_build_cost = 0.0;
  double index_query_cost = 0.0;
  /// Human-readable one-line justification for logs.
  std::string rationale;
};

/// Network statistics the cost model consumes; measured once per network
/// by Probe() (sampling a handful of users and RR-Graphs).
struct NetworkProfile {
  double avg_envelope_reach = 0.0;   // mean |R(u)| over sampled users
  double avg_rr_graph_size = 0.0;    // mean vertices+edges per RR-Graph
  double avg_theta_u_fraction = 0.0; // mean |R-graphs containing u|/theta
  double tag_topic_density = 0.0;    // nnz(p(w|z)) / (|Omega| * |Z|)
};

class QueryPlanner {
 public:
  /// `network` must outlive the planner. `probe_samples` controls how
  /// many users / RR-Graphs the profile averages over.
  explicit QueryPlanner(const SocialNetwork* network,
                        size_t probe_samples = 32, uint64_t seed = 101);

  /// The measured profile (probing happens in the constructor).
  const NetworkProfile& profile() const { return profile_; }

  /// Prices both strategies and returns the cheaper plan.
  PlanDecision Plan(const PlannerInputs& inputs) const;

  /// The number of size-<=k tag-set evaluations the cost model expects
  /// per query after best-effort pruning (public for tests and benches).
  double ExpectedSetsPerQuery(size_t k) const;

 private:
  const SocialNetwork* network_;
  NetworkProfile profile_;
};

}  // namespace pitex

#endif  // PITEX_SRC_CORE_PLANNER_H_
