// Greedy heuristic solver: grow the tag set one tag at a time, always
// adding the tag with the largest estimated marginal influence.
//
// PITEX's objective is NOT submodular in the tag set (the posterior
// p(z|W) is a ratio of products — Theorem 1 in fact rules out any
// constant-factor approximation), so greedy carries no guarantee; it is
// included as the natural fast baseline a practitioner would try first.
// Cost: O(k * |Omega|) influence estimations instead of the (pruned)
// exponential search — the ablation bench quantifies the answer-quality
// gap against best-effort exploration.

#ifndef PITEX_SRC_CORE_GREEDY_SOLVER_H_
#define PITEX_SRC_CORE_GREEDY_SOLVER_H_

#include "src/core/query.h"
#include "src/sampling/influence_estimator.h"

namespace pitex {

/// Solves `query` greedily using `oracle` for influence estimation.
PitexResult SolveByGreedy(const SocialNetwork& network,
                          const PitexQuery& query, InfluenceOracle* oracle);

}  // namespace pitex

#endif  // PITEX_SRC_CORE_GREEDY_SOLVER_H_
