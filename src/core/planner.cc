#include "src/core/planner.h"

#include <algorithm>
#include <cmath>

#include "src/index/rr_graph.h"
#include "src/sampling/estimator_common.h"
#include "src/sampling/sample_size.h"
#include "src/util/check.h"
#include "src/util/random.h"

namespace pitex {

QueryPlanner::QueryPlanner(const SocialNetwork* network, size_t probe_samples,
                           uint64_t seed)
    : network_(network) {
  PITEX_CHECK(network != nullptr);
  probe_samples = std::max<size_t>(4, probe_samples);
  Rng rng(seed);

  // Forward probe: average envelope reach |R(u)| over random users
  // (the per-estimation cost driver of Lemma 7). One shared scratch keeps
  // the sweep allocation-free across probes.
  const InfluenceGraph& influence = network_->influence;
  ReachScratch reach;
  double reach_sum = 0.0;
  for (size_t i = 0; i < probe_samples; ++i) {
    const auto u =
        static_cast<VertexId>(rng.NextBounded(network_->num_vertices()));
    ComputeReachableInto(
        network_->graph, [&influence](EdgeId e) { return influence.MaxProb(e); },
        u, &reach);
    reach_sum += static_cast<double>(reach.vertices.size());
  }
  profile_.avg_envelope_reach = reach_sum / static_cast<double>(probe_samples);

  // Reverse probe: average RR-Graph footprint and the chance a random
  // user lands in a random RR-Graph (theta(u)/theta, Sec. 6.3 notation).
  double size_sum = 0.0;
  double containment_sum = 0.0;
  for (size_t i = 0; i < probe_samples; ++i) {
    const auto root =
        static_cast<VertexId>(rng.NextBounded(network_->num_vertices()));
    const RRGraph rr =
        GenerateRRGraph(network_->graph, network_->influence, root, &rng);
    size_sum += static_cast<double>(rr.vertices.size() + rr.edges.size());
    containment_sum += static_cast<double>(rr.vertices.size()) /
                       static_cast<double>(network_->num_vertices());
  }
  profile_.avg_rr_graph_size = size_sum / static_cast<double>(probe_samples);
  profile_.avg_theta_u_fraction =
      containment_sum / static_cast<double>(probe_samples);

  // Tag-topic density (Sec. 7.3 footnote 7): drives best-effort pruning.
  const TopicModel& topics = network_->topics;
  size_t nnz = 0;
  for (TagId w = 0; w < topics.num_tags(); ++w) {
    for (TopicId z = 0; z < topics.num_topics(); ++z) {
      nnz += (topics.TagTopic(w, z) > 0.0);
    }
  }
  const size_t cells = topics.num_tags() * topics.num_topics();
  profile_.tag_topic_density =
      cells == 0 ? 0.0
                 : static_cast<double>(nnz) / static_cast<double>(cells);
}

double QueryPlanner::ExpectedSetsPerQuery(size_t k) const {
  const auto num_tags = static_cast<double>(network_->topics.num_tags());
  const auto num_topics = static_cast<double>(network_->topics.num_topics());
  if (num_tags <= 0.0 || k == 0) return 1.0;

  // log C(|Omega|, k), clamped so the cost stays finite.
  double log_choose = 0.0;
  for (size_t i = 0; i < k; ++i) {
    log_choose += std::log(num_tags - static_cast<double>(i)) -
                  std::log(static_cast<double>(i + 1));
  }
  // Best-effort prunes any set whose tags share no topic: with density d,
  // a fixed topic supports all k tags with probability d^k, so roughly
  // |Z| * d^k of the candidate mass survives (Sec. 7.3's explanation of
  // why runtime does not explode with k).
  const double d = std::max(profile_.tag_topic_density, 1e-6);
  const double survive =
      std::min(1.0, num_topics * std::pow(d, static_cast<double>(k)));
  const double log_sets = log_choose + std::log(survive);
  // Partial sets are always explored at least once per tag.
  const double floor_sets = num_tags;
  return std::max(floor_sets, std::exp(std::min(log_sets, 60.0)));
}

PlanDecision QueryPlanner::Plan(const PlannerInputs& inputs) const {
  PlanDecision decision;
  const auto queries = static_cast<double>(
      std::max<uint64_t>(1, inputs.expected_queries));
  const double sets = ExpectedSetsPerQuery(inputs.k);

  SampleSizePolicy policy;
  policy.eps = inputs.eps;
  policy.delta = inputs.delta;
  policy.num_tags = static_cast<int64_t>(network_->topics.num_tags());
  policy.k = static_cast<int64_t>(inputs.k);
  policy.use_phi = true;
  const double lambda = policy.StoppingThreshold();

  // Lazy propagation: Lambda * |R_W(u)| expected probes per estimation
  // (Lemma 7), per candidate set, per query.
  decision.online_cost = queries * sets * lambda * profile_.avg_envelope_reach;

  // Index build: theta RR-Graphs at avg_rr_graph_size probes each —
  // theta matching the engine's default policy (theta_per_vertex = 1).
  EngineOptions defaults;
  const double theta = std::min<double>(
      static_cast<double>(defaults.index_max_theta),
      std::max(64.0, defaults.index_theta_per_vertex *
                         static_cast<double>(network_->num_vertices())));
  decision.index_build_cost =
      inputs.index_available ? 0.0 : theta * profile_.avg_rr_graph_size;

  // Index serving: theta(u) graphs checked per estimation, each a BFS
  // bounded by the graph footprint (edge-cut pruning only helps).
  const double theta_u = theta * profile_.avg_theta_u_fraction;
  decision.index_query_cost =
      queries * sets * std::max(1.0, theta_u) * profile_.avg_rr_graph_size;

  const double index_total =
      decision.index_build_cost + decision.index_query_cost;
  if (index_total <= decision.online_cost) {
    decision.method = inputs.memory_constrained ? Method::kDelayMat
                                                : Method::kIndexEstPlus;
    decision.rationale =
        std::string("index amortizes: build+serve ") +
        std::to_string(index_total) + " < online " +
        std::to_string(decision.online_cost) + " expected probes" +
        (inputs.memory_constrained ? " (DelayMat: memory-constrained)" : "");
  } else {
    decision.method = Method::kLazy;
    decision.rationale =
        std::string("online sampling wins: ") +
        std::to_string(decision.online_cost) + " < index " +
        std::to_string(index_total) + " expected probes";
  }
  return decision;
}

}  // namespace pitex
