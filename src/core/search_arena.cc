#include "src/core/search_arena.h"

#include <algorithm>

#include "src/util/check.h"

namespace pitex {

namespace {
// Max-heap on bound — the reference solver's HeapNode::operator<.
struct BoundLess {
  bool operator()(const SearchArena::HeapSlot& a,
                  const SearchArena::HeapSlot& b) const {
    return a.bound < b.bound;
  }
};
}  // namespace

PITEX_NOALLOC void SearchArena::Reset() {
  chain_.clear();
  heap_.clear();
}

PITEX_NOALLOC uint32_t SearchArena::Extend(uint32_t parent, TagId tag) {
  chain_.push_back(ChainNode{tag, parent});
  return static_cast<uint32_t>(chain_.size() - 1);
}

PITEX_NOALLOC void SearchArena::Materialize(uint32_t chain, uint32_t size,
                              TagId* out) const {
  uint32_t index = chain;
  for (uint32_t i = 0; i < size; ++i) {
    PITEX_DCHECK(index != kNoChain);
    out[i] = chain_[index].tag;
    index = chain_[index].parent;
  }
  PITEX_DCHECK(index == kNoChain);
}

PITEX_NOALLOC void SearchArena::Push(const HeapSlot& slot) {
  heap_.push_back(slot);
  std::push_heap(heap_.begin(), heap_.end(), BoundLess{});
}

PITEX_NOALLOC SearchArena::HeapSlot SearchArena::Pop() {
  const HeapSlot top = heap_.front();
  std::pop_heap(heap_.begin(), heap_.end(), BoundLess{});
  heap_.pop_back();
  return top;
}

}  // namespace pitex
