#include "src/core/enumeration_solver.h"

#include "src/core/tagset_enumerator.h"
#include "src/util/check.h"
#include "src/util/timer.h"

namespace pitex {

PitexResult SolveByEnumeration(const SocialNetwork& network,
                               const PitexQuery& query,
                               InfluenceOracle* oracle) {
  PITEX_CHECK(query.k >= 1 && query.k <= network.topics.num_tags());
  PITEX_CHECK(query.user < network.num_vertices());
  Timer timer;
  PitexResult result;
  result.influence = 0.0;

  // The posterior is computed into reused storage; the samplers
  // themselves materialize each set's edge probabilities during their
  // reachability sweep (see estimator_common.h).
  TopicPosterior posterior;

  for (TagSetEnumerator it(network.topics.num_tags(), query.k); !it.Done();
       it.Next()) {
    const auto& tags = it.Current();
    network.topics.PosteriorInto(tags, &posterior);
    const PosteriorProbs probs(network.influence, posterior);
    const Estimate est = oracle->EstimateInfluence(query.user, probs);
    ++result.sets_evaluated;
    result.total_samples += est.samples;
    result.edges_visited += est.edges_visited;
    if (est.influence > result.influence) {
      result.influence = est.influence;
      result.tags = tags;
    }
  }
  result.seconds = timer.Seconds();
  return result;
}

}  // namespace pitex
