#include "src/core/greedy_solver.h"

#include <algorithm>

#include "src/util/check.h"
#include "src/util/timer.h"

namespace pitex {

PitexResult SolveByGreedy(const SocialNetwork& network,
                          const PitexQuery& query, InfluenceOracle* oracle) {
  PITEX_CHECK(query.k >= 1 && query.k <= network.topics.num_tags());
  PITEX_CHECK(query.user < network.num_vertices());
  Timer timer;
  PitexResult result;

  std::vector<TagId> current;
  std::vector<uint8_t> used(network.topics.num_tags(), 0);
  std::vector<TagId> candidate;
  for (size_t round = 0; round < query.k; ++round) {
    double best_influence = -1.0;
    TagId best_tag = 0;
    for (TagId w = 0; w < network.topics.num_tags(); ++w) {
      if (used[w]) continue;
      candidate = current;
      candidate.push_back(w);
      std::sort(candidate.begin(), candidate.end());
      const TopicPosterior posterior = network.topics.Posterior(candidate);
      const PosteriorProbs probs(network.influence, posterior);
      const Estimate est = oracle->EstimateInfluence(query.user, probs);
      ++result.sets_evaluated;
      result.total_samples += est.samples;
      result.edges_visited += est.edges_visited;
      if (est.influence > best_influence) {
        best_influence = est.influence;
        best_tag = w;
      }
    }
    used[best_tag] = 1;
    current.push_back(best_tag);
    std::sort(current.begin(), current.end());
    result.influence = best_influence;
  }
  result.tags = std::move(current);
  result.seconds = timer.Seconds();
  return result;
}

}  // namespace pitex
