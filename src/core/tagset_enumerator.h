// Lexicographic enumeration of size-k tag subsets of [0, n).
//
// Used by the enumeration-based solver (Sec. 4) and by tests that need the
// exact optimum on small vocabularies.

#ifndef PITEX_SRC_CORE_TAGSET_ENUMERATOR_H_
#define PITEX_SRC_CORE_TAGSET_ENUMERATOR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/model/tag_catalog.h"

namespace pitex {

/// Stateful combination generator: yields all C(n, k) sorted size-k
/// subsets of {0, .., n-1} in lexicographic order.
class TagSetEnumerator {
 public:
  /// Requires 1 <= k <= n.
  TagSetEnumerator(size_t n, size_t k);

  /// Current combination (valid while !Done()).
  const std::vector<TagId>& Current() const { return current_; }

  bool Done() const { return done_; }

  /// Advances to the next combination; sets Done() after the last one.
  void Next();

  /// Total number of combinations C(n, k) as a double (may be large).
  double Count() const;

 private:
  size_t n_;
  size_t k_;
  bool done_ = false;
  std::vector<TagId> current_;
};

}  // namespace pitex

#endif  // PITEX_SRC_CORE_TAGSET_ENUMERATOR_H_
