// Pooled, allocation-free storage for the best-effort search frontier
// (Sec. 5.2 / Appendix C, Algorithm 5).
//
// The reference implementation kept a std::priority_queue of nodes each
// owning a std::vector<TagId>: one heap allocation plus an O(k) copy per
// pushed child, and another allocation per pop (copying the top before
// popping it). The arena replaces both with two pooled arrays:
//
//  * a tag-chain pool: each node stores only its own tag and the index of
//    its parent's chain node. Canonical child generation always prepends a
//    tag smaller than the node's minimum, so walking the chain from a node
//    towards the root yields its tags in ascending order — Materialize()
//    writes them into a caller buffer in O(k);
//  * the binary heap itself, stored as {bound, chain, size} slots and
//    sifted with std::push_heap/std::pop_heap under exactly the reference
//    comparator (max-heap on bound). std::priority_queue uses the same
//    primitives, so the pop order — ties included — is bit-identical.
//
// Both arrays keep their capacity across Reset(), so a solver that reuses
// one arena performs zero heap allocations at steady state
// (tests/best_effort_equivalence_test.cc counts operator new to prove it).

#ifndef PITEX_SRC_CORE_SEARCH_ARENA_H_
#define PITEX_SRC_CORE_SEARCH_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/model/tag_catalog.h"
#include "src/util/thread_annotations.h"

namespace pitex {

class SearchArena {
 public:
  /// Sentinel chain index of the empty tag set (the search root).
  static constexpr uint32_t kNoChain = 0xffffffffu;

  /// One frontier entry: the node's inherited bound plus its tag chain.
  struct HeapSlot {
    double bound;
    uint32_t chain;  // kNoChain for the root (empty set)
    uint32_t size;   // |tags| — the chain length, cached
  };

  /// Clears the frontier and the chain pool, keeping both capacities.
  PITEX_NOALLOC void Reset();

  /// Appends `tag` to the chain ending at `parent` (kNoChain for the empty
  /// set) and returns the new chain's index. Chain nodes are never freed
  /// individually — only Reset() reclaims them.
  PITEX_NOALLOC uint32_t Extend(uint32_t parent, TagId tag);

  /// Writes the tags of `chain` (ascending) into out[0..size). `out` must
  /// hold at least `size` entries.
  PITEX_NOALLOC void Materialize(uint32_t chain, uint32_t size,
                                 TagId* out) const;

  bool empty() const { return heap_.empty(); }
  size_t frontier_size() const { return heap_.size(); }
  size_t num_chain_nodes() const { return chain_.size(); }

  /// Heap push/pop, behaviourally identical to
  /// std::priority_queue<HeapNode> ordered by bound (max-heap).
  PITEX_NOALLOC void Push(const HeapSlot& slot);
  PITEX_NOALLOC HeapSlot Pop();

 private:
  struct ChainNode {
    TagId tag;
    uint32_t parent;
  };

  std::vector<ChainNode> chain_;
  std::vector<HeapSlot> heap_;
};

}  // namespace pitex

#endif  // PITEX_SRC_CORE_SEARCH_ARENA_H_
