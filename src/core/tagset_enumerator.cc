#include "src/core/tagset_enumerator.h"

#include <cmath>

#include "src/util/chernoff.h"
#include "src/util/check.h"

namespace pitex {

TagSetEnumerator::TagSetEnumerator(size_t n, size_t k) : n_(n), k_(k) {
  PITEX_CHECK(k >= 1 && k <= n);
  current_.resize(k);
  for (size_t i = 0; i < k; ++i) current_[i] = static_cast<TagId>(i);
}

void TagSetEnumerator::Next() {
  // Find the rightmost element that can still be incremented.
  size_t i = k_;
  while (i > 0) {
    --i;
    if (current_[i] < static_cast<TagId>(n_ - k_ + i)) {
      ++current_[i];
      for (size_t j = i + 1; j < k_; ++j) current_[j] = current_[j - 1] + 1;
      return;
    }
  }
  done_ = true;
}

double TagSetEnumerator::Count() const {
  // Exact integer binomial whenever a double can represent it: the
  // lgamma-based exp(LogBinomial) carries rounding error (C(50, 3) came
  // back 19599.999...), which breaks callers that display or compare
  // counts. The log form remains only as the overflow fallback, where the
  // nearest double is the best answer anyway.
  const uint64_t exact =
      BinomialExact(static_cast<int64_t>(n_), static_cast<int64_t>(k_));
  if (exact != 0 && exact <= (uint64_t{1} << 53)) {
    return static_cast<double>(exact);
  }
  return std::exp(LogBinomial(static_cast<int64_t>(n_),
                              static_cast<int64_t>(k_)));
}

}  // namespace pitex
