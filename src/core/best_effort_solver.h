// Best-effort exploration (Sec. 5.2 / Appendix C, Algorithm 5).
//
// A max-heap explores partial tag sets ordered by (inherited) influence
// upper bounds. Popping a full-size set estimates its true influence and
// updates the incumbent; popping a partial set first re-evaluates its own
// (tighter) Lemma-8 bound — pruning the whole subtree when the bound
// cannot beat the incumbent — and otherwise expands it by appending every
// tag smaller than its minimum element (so each k-set is generated exactly
// once). Because children inherit their parent's bound and bounds only
// tighten going down, the search can terminate as soon as the heap top
// cannot beat the incumbent.
//
// Hot-path architecture: the frontier lives in a SearchArena (pooled
// chain-coded tag sets, no per-node vectors), Lemma-8 multipliers are
// evaluated into a reusable BoundScratch, and the online samplers
// materialize each node's fixed edge probabilities into a flat table
// during their reachability sweep (see estimator_common.h). With a
// caller-provided BestEffortScratch the whole search performs zero heap
// allocations at steady state while returning results bit-identical to
// the reference implementation
// (tests/best_effort_equivalence_test.cc pins both properties).

#ifndef PITEX_SRC_CORE_BEST_EFFORT_SOLVER_H_
#define PITEX_SRC_CORE_BEST_EFFORT_SOLVER_H_

#include <cstddef>
#include <vector>

#include "src/core/query.h"
#include "src/core/search_arena.h"
#include "src/core/upper_bound.h"
#include "src/sampling/estimator_common.h"
#include "src/sampling/influence_estimator.h"
#include "src/util/thread_annotations.h"

namespace pitex {

/// Solves `query` on `network` using `oracle` for both influence and
/// upper-bound estimation. `context` must be built from `network.topics`.
PitexResult SolveByBestEffort(const SocialNetwork& network,
                              const PitexQuery& query,
                              const UpperBoundContext& context,
                              InfluenceOracle* oracle);

/// One ranked answer of a top-N exploration.
struct RankedTagSet {
  std::vector<TagId> tags;
  double influence = 0.0;
};

/// Reusable cross-query state for SolveTopNByBestEffort. Everything is
/// pooled: after the first query of a given shape has warmed the
/// capacities up, subsequent queries allocate nothing.
struct BestEffortScratch {
  SearchArena arena;               // frontier heap + chain-coded tag sets
  BoundScratch bound;              // Lemma-8 multipliers and masks
  TopicPosterior posterior;        // p(z|W) of the popped full set
  std::vector<TagId> tags;         // materialized tags of the popped node
  std::vector<RankedTagSet> top;   // incumbent heap (worst on top)
  std::vector<RankedTagSet> pool;  // recycled incumbent slots
};

/// Top-N variant: returns up to `n` size-k tag sets in descending
/// estimated influence. Pruning uses the N-th best incumbent, so the
/// search degrades gracefully (n=1 is exactly SolveByBestEffort). `stats`
/// (optional) receives the execution counters.
std::vector<RankedTagSet> SolveTopNByBestEffort(
    const SocialNetwork& network, const PitexQuery& query,
    const UpperBoundContext& context, InfluenceOracle* oracle, size_t n,
    PitexResult* stats = nullptr);

/// Scratch-explicit overload: writes the ranking into `*out` (cleared and
/// refilled, element storage reused) and keeps all transient state in
/// `*scratch`. Zero heap allocations at steady state. `stats` may be
/// null.
PITEX_NOALLOC void SolveTopNByBestEffort(
    const SocialNetwork& network, const PitexQuery& query,
                           const UpperBoundContext& context,
                           InfluenceOracle* oracle, size_t n,
                           std::vector<RankedTagSet>* out,
                           PitexResult* stats, BestEffortScratch* scratch);

}  // namespace pitex

#endif  // PITEX_SRC_CORE_BEST_EFFORT_SOLVER_H_
