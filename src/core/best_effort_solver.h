// Best-effort exploration (Sec. 5.2 / Appendix C, Algorithm 5).
//
// A max-heap explores partial tag sets ordered by (inherited) influence
// upper bounds. Popping a full-size set estimates its true influence and
// updates the incumbent; popping a partial set first re-evaluates its own
// (tighter) Lemma-8 bound — pruning the whole subtree when the bound
// cannot beat the incumbent — and otherwise expands it by appending every
// tag smaller than its minimum element (so each k-set is generated exactly
// once). Because children inherit their parent's bound and bounds only
// tighten going down, the search can terminate as soon as the heap top
// cannot beat the incumbent.

#ifndef PITEX_SRC_CORE_BEST_EFFORT_SOLVER_H_
#define PITEX_SRC_CORE_BEST_EFFORT_SOLVER_H_

#include <cstddef>
#include <vector>

#include "src/core/query.h"
#include "src/core/upper_bound.h"
#include "src/sampling/influence_estimator.h"

namespace pitex {

/// Solves `query` on `network` using `oracle` for both influence and
/// upper-bound estimation. `context` must be built from `network.topics`.
PitexResult SolveByBestEffort(const SocialNetwork& network,
                              const PitexQuery& query,
                              const UpperBoundContext& context,
                              InfluenceOracle* oracle);

/// One ranked answer of a top-N exploration.
struct RankedTagSet {
  std::vector<TagId> tags;
  double influence = 0.0;
};

/// Top-N variant: returns up to `n` size-k tag sets in descending
/// estimated influence. Pruning uses the N-th best incumbent, so the
/// search degrades gracefully (n=1 is exactly SolveByBestEffort). `stats`
/// (optional) receives the execution counters.
std::vector<RankedTagSet> SolveTopNByBestEffort(
    const SocialNetwork& network, const PitexQuery& query,
    const UpperBoundContext& context, InfluenceOracle* oracle, size_t n,
    PitexResult* stats = nullptr);

}  // namespace pitex

#endif  // PITEX_SRC_CORE_BEST_EFFORT_SOLVER_H_
