#include "src/serve/recovery.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "src/index/index_io.h"
#include "src/serve/wal.h"
#include "src/util/failpoint.h"
#include "src/util/file_sync.h"
#include "src/util/serialize.h"

namespace pitex {

namespace {

constexpr char kManifestMagic[] = "PITEXMAN";
constexpr uint32_t kManifestVersion = 1;
constexpr char kManifestFile[] = "CHECKPOINT";

bool Fail(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
  return false;
}

}  // namespace

bool WriteCheckpointManifest(const std::string& dir,
                             const CheckpointManifest& manifest,
                             std::string* error) {
  const std::string path = dir + "/" + kManifestFile;
  const std::string tmp = TempPathFor(path);
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Fail(error, "cannot open manifest temp file: " + tmp);
    }
    BinaryWriter writer(&out);
    writer.WriteString(kManifestMagic);
    writer.WriteU32(kManifestVersion);
    writer.WriteU64(manifest.lsn);
    writer.WriteU64(manifest.epoch);
    writer.WriteU64(manifest.index_version);
    writer.WriteString(manifest.snapshot_file);
    writer.WriteU64(manifest.model_delta.size());
    for (const EdgeInfluenceUpdate& update : manifest.model_delta) {
      writer.WriteU32(update.edge);
      writer.WriteU64(update.entries.size());
      for (const EdgeTopicEntry& entry : update.entries) {
        writer.WriteU32(entry.topic);
        writer.WriteF64(entry.prob);
      }
    }
    writer.WriteChecksum();
    out.close();
    if (!writer.ok() || !out) {
      std::remove(tmp.c_str());
      return Fail(error, "I/O failure while staging checkpoint manifest");
    }
  }
  if (PITEX_FAILPOINT("checkpoint/rename")) {
    std::remove(tmp.c_str());
    return Fail(error, "fault injected: checkpoint/rename");
  }
  if (!AtomicReplaceFile(tmp, path)) {
    return Fail(error, "cannot publish checkpoint manifest: " + path);
  }
  return true;
}

bool ReadCheckpointManifest(const std::string& dir,
                            CheckpointManifest* manifest, bool* present,
                            std::string* error) {
  if (present != nullptr) *present = false;
  const std::string path = dir + "/" + kManifestFile;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::error_code ec;
    if (std::filesystem::exists(path, ec)) {
      return Fail(error, "cannot open checkpoint manifest: " + path);
    }
    return true;  // no checkpoint yet: recover from scratch
  }
  BinaryReader reader(&in);
  std::string magic;
  uint32_t version = 0;
  if (!reader.ReadString(&magic) || magic != kManifestMagic ||
      !reader.ReadU32(&version) || version != kManifestVersion) {
    return Fail(error, "bad checkpoint manifest header");
  }
  uint64_t delta_count = 0;
  if (!reader.ReadU64(&manifest->lsn) || !reader.ReadU64(&manifest->epoch) ||
      !reader.ReadU64(&manifest->index_version) ||
      !reader.ReadString(&manifest->snapshot_file) ||
      manifest->snapshot_file.empty() ||
      manifest->snapshot_file.find('/') != std::string::npos ||
      !reader.ReadU64(&delta_count)) {
    return Fail(error, "truncated checkpoint manifest");
  }
  manifest->model_delta.clear();
  for (uint64_t i = 0; i < delta_count; ++i) {
    EdgeInfluenceUpdate& update = manifest->model_delta.emplace_back();
    uint32_t edge = 0;
    uint64_t entries = 0;
    if (!reader.ReadU32(&edge) || !reader.ReadU64(&entries)) {
      return Fail(error, "truncated checkpoint delta");
    }
    update.edge = edge;
    for (uint64_t j = 0; j < entries; ++j) {
      EdgeTopicEntry entry;
      if (!reader.ReadU32(&entry.topic) || !reader.ReadF64(&entry.prob)) {
        return Fail(error, "truncated checkpoint delta entry");
      }
      update.entries.push_back(entry);
    }
  }
  if (!reader.VerifyChecksum()) {
    return Fail(error, "checkpoint manifest checksum mismatch");
  }
  if (present != nullptr) *present = true;
  return true;
}

bool WriteCheckpoint(const std::string& dir, const RrIndex& snapshot_index,
                     const CheckpointManifest& manifest, std::string* error) {
  IndexIoError io_error;
  const std::string snapshot_path = dir + "/" + manifest.snapshot_file;
  if (!SaveRrIndex(snapshot_index, snapshot_path, &io_error)) {
    return Fail(error, "cannot save checkpoint snapshot (" +
                           std::string(IndexIoCodeName(io_error.code)) +
                           "): " + io_error.message);
  }
  if (!WriteCheckpointManifest(dir, manifest, error)) {
    // The new snapshot file is an orphan until the next successful
    // checkpoint's cleanup; the previous manifest stays authoritative.
    return false;
  }
  // Superseded snapshots are garbage now that the manifest moved on.
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("checkpoint-", 0) == 0 && name != manifest.snapshot_file) {
      std::error_code remove_ec;
      std::filesystem::remove(entry.path(), remove_ec);
    }
  }
  return true;
}

namespace {

bool ReadFileBytes(const std::string& path, std::string* bytes) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!in.good() && !in.eof()) return false;
  *bytes = buffer.str();
  return true;
}

bool WriteFileBytesAtomic(const std::string& path, const std::string& bytes,
                          std::string* error) {
  const std::string tmp = TempPathFor(path);
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Fail(error, "cannot open temp file: " + tmp);
    }
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.close();
    if (!out) {
      std::remove(tmp.c_str());
      return Fail(error, "I/O failure while staging: " + tmp);
    }
  }
  if (!AtomicReplaceFile(tmp, path)) {
    return Fail(error, "cannot publish file: " + path);
  }
  return true;
}

}  // namespace

bool ReadCheckpointForShipping(const std::string& dir, ShippedCheckpoint* out,
                               std::string* error) {
  // The snapshot file named by the manifest can be deleted between the
  // manifest read and the file read when a concurrent checkpoint
  // supersedes it (WriteCheckpoint's cleanup pass). Retrying re-reads
  // the fresh manifest, which names a file that again exists; two
  // checkpoints racing one bootstrap read is already pathological, so a
  // small retry budget is plenty.
  for (int attempt = 0; attempt < 3; ++attempt) {
    *out = ShippedCheckpoint{};
    CheckpointManifest manifest;
    bool present = false;
    if (!ReadCheckpointManifest(dir, &manifest, &present, error)) {
      return false;
    }
    if (!present) return true;  // out->present stays false
    const std::string manifest_path = std::string(dir) + "/" + kManifestFile;
    if (!ReadFileBytes(manifest_path, &out->manifest_bytes)) {
      continue;  // replaced mid-read; retry
    }
    if (!ReadFileBytes(dir + "/" + manifest.snapshot_file,
                       &out->snapshot_bytes)) {
      continue;  // superseded and deleted; retry against the new manifest
    }
    out->present = true;
    out->lsn = manifest.lsn;
    out->snapshot_name = manifest.snapshot_file;
    return true;
  }
  return Fail(error,
              "checkpoint files kept changing under the shipping read: " +
                  dir);
}

bool InstallShippedCheckpoint(const std::string& dir,
                              const ShippedCheckpoint& cp, std::string* error) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Fail(error, "cannot create follower directory: " + dir);
  }
  if (!cp.present) return true;
  // The snapshot name came off the wire: re-apply the manifest reader's
  // own constraint (a bare filename) before using it in a path.
  if (cp.snapshot_name.empty() ||
      cp.snapshot_name.find('/') != std::string::npos) {
    return Fail(error, "shipped checkpoint has a bad snapshot name");
  }
  // Snapshot first, manifest last: the manifest is the durable pointer,
  // so it must never (even transiently) name a file that is not fully
  // on disk.
  if (!WriteFileBytesAtomic(dir + "/" + cp.snapshot_name, cp.snapshot_bytes,
                            error)) {
    return false;
  }
  return WriteFileBytesAtomic(std::string(dir) + "/" + kManifestFile,
                              cp.manifest_bytes, error);
}

bool RecoverServingState(const SocialNetwork& base,
                         const RrIndexOptions& options,
                         const std::string& dir, RecoveredState* state,
                         std::string* error) {
  CheckpointManifest manifest;
  bool have_checkpoint = false;
  std::string manifest_error;
  if (!ReadCheckpointManifest(dir, &manifest, &have_checkpoint,
                              &manifest_error)) {
    // The manifest is atomically replaced, so a corrupt one is real
    // damage, not a crash artifact — and the WAL below it is already
    // truncated, so silently rebuilding would lose acknowledged
    // updates. Refuse.
    return Fail(error, "unrecoverable checkpoint manifest: " + manifest_error);
  }

  auto master = std::make_unique<DynamicRrIndex>(base, options);
  uint64_t after_lsn = 0;
  uint64_t base_epoch = 1;  // the epoch Start()'s initial publish uses
  std::vector<EdgeId> touched;
  if (have_checkpoint) {
    for (const EdgeInfluenceUpdate& update : manifest.model_delta) {
      if (update.edge >= base.num_edges()) {
        return Fail(error, "checkpoint delta references an unknown edge");
      }
      for (const EdgeTopicEntry& entry : update.entries) {
        if (!std::isfinite(entry.prob) || entry.prob < 0.0 ||
            entry.prob > 1.0) {
          return Fail(error, "checkpoint delta probability out of [0, 1]");
        }
      }
      touched.push_back(update.edge);
    }
    master->RestoreModel(manifest.model_delta, manifest.index_version);
    // The snapshot file embeds the fingerprint of the evolved model it
    // was saved against; loading it against the restored model proves
    // the delta fold reproduced that model bit-identically.
    IndexIoError io_error;
    auto snapshot = LoadRrIndex(master->network(),
                                dir + "/" + manifest.snapshot_file, &io_error);
    if (snapshot == nullptr) {
      return Fail(error, "checkpoint snapshot unreadable (" +
                             std::string(IndexIoCodeName(io_error.code)) +
                             "): " + io_error.message);
    }
    master->AdoptSketches(*snapshot);
    after_lsn = manifest.lsn;
    base_epoch = manifest.epoch;
  } else {
    master->Build();
  }

  std::vector<WalRecord> records;
  const WalReadResult read = ReadWalAfter(dir, after_lsn, &records);
  if (!read.ok()) {
    return Fail(error, "unrecoverable WAL: " + read.message);
  }
  uint64_t last_lsn = after_lsn;
  for (const WalRecord& record : records) {
    if (PITEX_FAILPOINT("recovery/replay")) {
      return Fail(error, "fault injected: recovery/replay");
    }
    for (const EdgeInfluenceUpdate& update : record.updates) {
      if (update.edge >= base.num_edges()) {
        return Fail(error, "WAL record references an unknown edge");
      }
      for (const EdgeTopicEntry& entry : update.entries) {
        if (!std::isfinite(entry.prob) || entry.prob < 0.0 ||
            entry.prob > 1.0) {
          return Fail(error, "WAL record probability out of [0, 1]");
        }
      }
      touched.push_back(update.edge);
    }
    master->ApplyUpdates(record.updates);
    last_lsn = record.lsn;
  }
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());

  state->master = std::move(master);
  state->last_lsn = last_lsn;
  state->replayed_records = records.size();
  state->publish_epoch = base_epoch + records.size();
  state->torn_tail = read.status == WalReadStatus::kTornTail;
  state->had_checkpoint = have_checkpoint;
  state->touched_edges = std::move(touched);
  return true;
}

}  // namespace pitex
