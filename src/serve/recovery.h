// Checkpointing and crash recovery for the serving tier
// (docs/robustness.md, "Durability").
//
// A checkpoint is two crash-atomically written files in the durability
// directory:
//
//   checkpoint-<lsn, 16 hex>.rridx — the published snapshot's RrIndex,
//     saved through index_io (temp file + fsync + rename), carrying the
//     NetworkFingerprint of the *evolved* influence model;
//   CHECKPOINT — the manifest: {snapshot filename, last-applied LSN,
//     epoch, DynamicRrIndex version counter, model delta}, checksummed
//     and atomically replaced, so the newest valid checkpoint is always
//     exactly the one the manifest names.
//
// The model delta is the current topic vector of every edge that has
// diverged from the base network. It must live here, not in the log:
// after the WAL is truncated below the checkpoint the update history
// needed to rebuild the evolved influence CSR is gone, while "final
// entries per touched edge" is compact and — because ReplaceEdgeTopics
// folds are last-writer-wins per edge — exact.
//
// Recovery inverts the pipeline: restore the base network + delta into
// a fresh DynamicRrIndex (RestoreModel), load the snapshot against the
// restored model (LoadRrIndex's fingerprint check *proves* the model
// restore is bit-identical — a mismatch fails recovery rather than
// serving subtly wrong answers), adopt its sketches (AdoptSketches),
// then replay the WAL tail through the ordinary deterministic repair
// path. The repair RNG is stateless per (seed, sketch, version), so
// replaying records in LSN order from the restored version counter
// re-draws exactly the coins the crashed process drew: the recovered
// master is bit-identical to a never-crashed reference.
//
// Fail points: "checkpoint/rename" (between manifest staging and its
// atomic publication) and "recovery/replay" (before each replayed
// record).

#ifndef PITEX_SRC_SERVE_RECOVERY_H_
#define PITEX_SRC_SERVE_RECOVERY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/index/dynamic_index.h"
#include "src/index/rr_index.h"

namespace pitex {

/// The durable pointer to the newest checkpoint (file "CHECKPOINT").
struct CheckpointManifest {
  /// Last LSN folded into the checkpointed snapshot; recovery replays
  /// the WAL strictly after this.
  uint64_t lsn = 0;
  /// Epoch the snapshot was published at (recovery republishes at
  /// epoch + replayed records, matching a fault-free reference).
  uint64_t epoch = 0;
  /// DynamicRrIndex::version() at checkpoint time (repair-RNG salt).
  uint64_t index_version = 0;
  /// Snapshot filename, relative to the durability directory.
  std::string snapshot_file;
  /// Current topic vector of every edge diverged from the base network.
  std::vector<EdgeInfluenceUpdate> model_delta;
};

/// Atomically persists `manifest` as `dir`/CHECKPOINT (temp + fsync +
/// rename). The "checkpoint/rename" fail point fires between staging
/// and publication — a hit (or crash there) leaves the previous
/// manifest authoritative.
bool WriteCheckpointManifest(const std::string& dir,
                             const CheckpointManifest& manifest,
                             std::string* error = nullptr);

/// Reads `dir`/CHECKPOINT. Returns false with `*error` on a corrupt
/// manifest; an absent file is not an error (`*present` = false).
bool ReadCheckpointManifest(const std::string& dir,
                            CheckpointManifest* manifest, bool* present,
                            std::string* error = nullptr);

/// Full checkpoint: saves `snapshot_index` crash-atomically as the
/// manifest's snapshot file, publishes the manifest, then deletes
/// superseded checkpoint files. On failure the previous checkpoint
/// remains fully intact and authoritative.
bool WriteCheckpoint(const std::string& dir, const RrIndex& snapshot_index,
                     const CheckpointManifest& manifest,
                     std::string* error = nullptr);

/// Everything a restarting service needs from disk.
struct RecoveredState {
  /// The reconstructed master, bit-identical to a never-crashed
  /// reference that applied the same acknowledged batches.
  std::unique_ptr<DynamicRrIndex> master;
  /// LSN of the last applied record; the reopened WAL appends from
  /// last_lsn + 1.
  uint64_t last_lsn = 0;
  /// Epoch the recovered state should be republished at.
  uint64_t publish_epoch = 1;
  /// WAL records replayed over the checkpoint.
  uint64_t replayed_records = 0;
  /// True when the log ended in a torn (never-acknowledged) tail.
  bool torn_tail = false;
  /// Whether a checkpoint existed (false: fresh Build + full replay).
  bool had_checkpoint = false;
  /// Edges diverged from the base network (checkpoint delta plus every
  /// replayed edge), sorted and unique — seeds the service's
  /// touched-edge tracking for the next checkpoint.
  std::vector<EdgeId> touched_edges;
};

/// A checkpoint read back as raw bytes for shipping to a follower
/// (src/serve/replication.h). The follower installs the two files
/// verbatim into its own durability directory and then recovers through
/// the ordinary RecoverServingState path — the manifest checksum and
/// the snapshot's NetworkFingerprint re-validate everything on the
/// receiving side, so shipping adds no trust the recovery path did not
/// already demand.
struct ShippedCheckpoint {
  /// False when the primary has not checkpointed yet: the follower
  /// starts from a fresh Build and replays the log from LSN 1.
  bool present = false;
  /// manifest.lsn — the follower needs records strictly after this.
  uint64_t lsn = 0;
  /// Raw bytes of the CHECKPOINT manifest file.
  std::string manifest_bytes;
  /// The manifest's snapshot filename and that file's raw bytes.
  std::string snapshot_name;
  std::string snapshot_bytes;
};

/// Reads the newest checkpoint's files from `dir` as raw bytes. Safe to
/// call while the owning service keeps checkpointing: a checkpoint that
/// supersedes the manifest mid-read (deleting the snapshot file under
/// us) is retried against the fresh manifest. An absent checkpoint is
/// success with `out->present` false.
bool ReadCheckpointForShipping(const std::string& dir, ShippedCheckpoint* out,
                               std::string* error = nullptr);

/// Installs a shipped checkpoint into `dir` (created if absent),
/// snapshot file first, manifest last, each via temp + atomic rename —
/// a crash mid-install leaves either no checkpoint or a complete one,
/// never a manifest naming a missing snapshot. With `cp.present` false
/// only the directory is created.
bool InstallShippedCheckpoint(const std::string& dir,
                              const ShippedCheckpoint& cp,
                              std::string* error = nullptr);

/// Recovers serving state from `dir`: loads the newest valid checkpoint
/// (or falls back to a fresh Build when none exists), replays the WAL
/// tail, and returns the reconstructed master. Returns false with
/// `*error` on unrecoverable state (corrupt log/checkpoint, fingerprint
/// mismatch, injected replay fault) — the caller must not serve.
bool RecoverServingState(const SocialNetwork& base,
                         const RrIndexOptions& options,
                         const std::string& dir, RecoveredState* state,
                         std::string* error = nullptr);

}  // namespace pitex

#endif  // PITEX_SRC_SERVE_RECOVERY_H_
