// Observability for the online serving layer (src/serve/pitex_service.h).
//
// The serving loop records one latency sample per engine-served query
// (sojourn time: queue wait + engine execution, the quantity a latency
// SLO is written against) into bounded per-worker rings, and counts
// cache hits, steals, and per-worker load. PitexService::Stats()
// assembles everything into one ServiceStats value — a consistent
// snapshot cheap enough to poll from a metrics scraper.

#ifndef PITEX_SRC_SERVE_SERVICE_STATS_H_
#define PITEX_SRC_SERVE_SERVICE_STATS_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace pitex {

/// Order statistics of a latency sample set, in seconds.
struct LatencySummary {
  uint64_t count = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

/// Computes the summary by sorting a copy of `samples` (nearest-rank
/// percentiles). Empty input yields an all-zero summary.
inline LatencySummary SummarizeLatencies(std::vector<double> samples) {
  LatencySummary summary;
  if (samples.empty()) return summary;
  std::sort(samples.begin(), samples.end());
  summary.count = samples.size();
  double sum = 0.0;
  for (const double s : samples) sum += s;
  summary.mean = sum / static_cast<double>(samples.size());
  const auto at = [&samples](double q) {
    const size_t n = samples.size();
    const size_t rank = std::min(
        n - 1, static_cast<size_t>(q * static_cast<double>(n)));
    return samples[rank];
  };
  summary.p50 = at(0.50);
  summary.p95 = at(0.95);
  summary.p99 = at(0.99);
  summary.max = samples.back();
  return summary;
}

/// One serving-side counter snapshot (PitexService::Stats()).
struct ServiceStats {
  /// Queries answered (cache hits + engine executions).
  uint64_t queries_served = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  /// Result-cache entries currently resident / evicted so far.
  size_t cache_entries = 0;
  uint64_t cache_evictions = 0;
  /// Queries a worker served off another worker's deque (work-stealing
  /// mode only; always 0 in deterministic mode).
  uint64_t steals = 0;
  /// Index snapshots published so far (initial snapshot included).
  uint64_t epochs_published = 0;
  /// The epoch new queries are currently served from.
  uint64_t current_epoch = 0;
  /// Retired snapshots still pinned by in-flight readers.
  size_t snapshots_alive = 0;
  /// Engine-served queries per worker (load-balance visibility).
  std::vector<uint64_t> per_worker_served;
  /// Sojourn latency (enqueue -> answered) of engine-served queries,
  /// over a bounded window of recent samples.
  LatencySummary latency;

  // --- overload / robustness counters (docs/robustness.md) ---

  /// Queries refused at admission because the bounded queue was full
  /// (ServeStatus::kShed). Only ever non-zero with admission enabled.
  uint64_t shed_queue_full = 0;
  /// Queries refused at admission by the per-user token bucket.
  uint64_t shed_rate_limited = 0;
  /// Queries whose budget expired mid-search: answered with the
  /// best-so-far ranking (ServeStatus::kDegraded).
  uint64_t degraded = 0;
  /// Queries whose budget was already gone when a worker picked them up
  /// (expired in queue; ServeStatus::kDeadlineExpired, no search run).
  uint64_t deadline_expired = 0;
  /// Admitted queries currently in flight (queued + executing).
  size_t admission_in_flight = 0;
  /// Order statistics of the queue depth seen at admission decisions
  /// (unit: queries, not seconds -- reuses LatencySummary's shape).
  LatencySummary queue_depth;

  /// Snapshot-publish attempts that failed (fault-injected or real) and
  /// were retried with backoff.
  uint64_t publish_retries = 0;
  /// Publishes abandoned after exhausting every retry attempt (the
  /// staged updates stay in the master copy and fold into the next
  /// publish).
  uint64_t publish_failures = 0;
  /// True while ApplyUpdates is freezing/packing a snapshot.
  bool publish_in_flight = false;
  /// Watchdog verdict: publish_in_flight has been true for longer than
  /// ServeOptions::publish_stuck_after_seconds. A stuck publish never
  /// blocks serving (readers stay on the previous epoch) but indicates
  /// the maintenance pool is wedged or faults keep firing.
  bool publish_stuck = false;

  // --- durability counters (docs/robustness.md, "Durability"); all
  // zero unless ServeOptions::durability_dir is set ---

  /// Update batches appended to the WAL (== acknowledged batches since
  /// the log was opened).
  uint64_t wal_appends = 0;
  /// fsync(2) calls the WAL issued (0 under WalFsyncPolicy::kNever).
  uint64_t wal_fsyncs = 0;
  /// Batches rejected because the WAL append or commit failed
  /// (fault-injected or real). Rejected batches were never applied or
  /// acknowledged -- the caller must retry.
  uint64_t wal_append_failures = 0;
  /// Checkpoints taken (each one truncates the log behind it).
  uint64_t checkpoints = 0;
  /// Checkpoint attempts that failed; the previous checkpoint stays
  /// authoritative and the next publish retries.
  uint64_t checkpoint_failures = 0;
  /// WAL records replayed over the checkpoint by the last Start()
  /// recovery (0 for a clean start).
  uint64_t recovery_replayed_lsns = 0;
};

}  // namespace pitex

#endif  // PITEX_SRC_SERVE_SERVICE_STATS_H_
