#include "src/serve/term_authority.h"

#include <cstdio>
#include <fstream>

#include "src/util/file_sync.h"

namespace pitex {

uint64_t FileTermAuthority::Current() const {
  std::ifstream in(path_);
  if (!in) return initial_;
  unsigned long long term = 0;
  in >> term;
  if (in.fail()) return initial_;
  return static_cast<uint64_t>(term);
}

bool FileTermAuthority::Advance(uint64_t to) {
  if (Current() >= to) return false;
  const std::string tmp = TempPathFor(path_);
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return false;
    out << static_cast<unsigned long long>(to) << "\n";
    out.close();
    if (!out) {
      std::remove(tmp.c_str());
      return false;
    }
  }
  return AtomicReplaceFile(tmp, path_);
}

}  // namespace pitex
