// Term authority: the fencing oracle for replicated serving
// (docs/robustness.md, "Replication & failover").
//
// A replica set has at most one acknowledging writer at a time. The
// authority is the single source of truth for *which* one: a monotonic
// term counter every writer compares against its own adopted term on
// each write. Promotion (src/serve/replication.h, FollowerService)
// advances the term; a deposed primary that wakes up after a partition
// still holds its old term, so its writes fail with
// ApplyUpdatesOutcome::kFencedStaleTerm instead of forking history —
// the no-split-brain invariant reduces to "Advance is monotonic and
// writers check Current before acknowledging".
//
// Two implementations: an atomic in-process counter (tests and
// single-process drills) and a file-backed one (cross-process drills —
// a SIGCONT'd deposed primary re-reads the file and observes the
// election it slept through). Both model the third-party coordination
// service a production deployment would consult; the single-writer
// guarantee is exactly as strong as Advance's atomicity, and the file
// variant's read-check-replace is atomic only against readers — the
// drills run one promotion candidate per election, and docs state the
// restriction.

#ifndef PITEX_SRC_SERVE_TERM_AUTHORITY_H_
#define PITEX_SRC_SERVE_TERM_AUTHORITY_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>

namespace pitex {

class TermAuthority {
 public:
  virtual ~TermAuthority() = default;
  /// The current term. Writers compare against their own adopted term
  /// on every write; a mismatch means a newer primary was elected.
  virtual uint64_t Current() const = 0;
  /// Advances the term to exactly `to`; fails (returns false) when the
  /// current term is already >= `to` — someone else won the election.
  virtual bool Advance(uint64_t to) = 0;
};

/// Atomic in-process authority (unit tests, single-process drills).
class InProcessTermAuthority final : public TermAuthority {
 public:
  explicit InProcessTermAuthority(uint64_t initial = 1) : term_(initial) {}
  uint64_t Current() const override {
    return term_.load(std::memory_order_acquire);
  }
  bool Advance(uint64_t to) override {
    uint64_t current = term_.load(std::memory_order_acquire);
    while (current < to) {
      if (term_.compare_exchange_weak(current, to,
                                      std::memory_order_acq_rel)) {
        return true;
      }
    }
    return false;
  }

 private:
  std::atomic<uint64_t> term_;
};

/// File-backed authority for cross-process drills: the term lives in a
/// decimal text file replaced atomically (temp + rename + parent
/// fsync), so Current() re-reading it every call always sees a complete
/// value. Advance is read-check-replace — one candidate per election.
class FileTermAuthority final : public TermAuthority {
 public:
  /// `path` is the term file; an absent (or unreadable) file reads as
  /// `initial`.
  explicit FileTermAuthority(std::string path, uint64_t initial = 1)
      : path_(std::move(path)), initial_(initial) {}
  uint64_t Current() const override;
  bool Advance(uint64_t to) override;

 private:
  std::string path_;
  uint64_t initial_;
};

}  // namespace pitex

#endif  // PITEX_SRC_SERVE_TERM_AUTHORITY_H_
