// Write-ahead log of edge-update batches (docs/robustness.md,
// "Durability").
//
// PitexService::ApplyUpdates appends each batch here and makes it
// durable *before* repairing the master index or acknowledging the
// caller — so a SIGKILL at any instant loses no acknowledged update:
// restart replays the log tail over the newest checkpoint through the
// same deterministic repair path (src/serve/recovery.h) and republishes
// bit-identical state. The log doubles as the globally ordered update
// sequence the ROADMAP's sharded tier needs: every record carries a
// log sequence number (LSN, dense from 1), and replaying a prefix is
// replaying history.
//
// On-disk layout — a directory of segments:
//
//   wal-<start_lsn, 16 hex digits>.log
//     header : magic "PITEXWAL" | version u32 LE | start_lsn u64 LE
//     record*: frame-magic u32 LE | blob-length u32 LE | blob
//
// where each blob is a self-checksummed BinaryWriter stream:
//
//   lsn u64 | batch-size u64 | { edge u32 | n u64 | {topic u32,
//   prob f64} * n } * batch-size | fnv64 checksum
//
// Torn-tail rule: a record whose bytes run out exactly at end-of-log
// (incomplete frame or short blob in the *newest* segment) is the
// expected artifact of a crash mid-append — the reader consumes it as
// the end of history. The same damage anywhere else (bytes follow the
// broken record, or a complete-but-checksum-failing blob) is
// corruption and recovery refuses the log rather than guess.
//
// Group commit: Append buffers through the OS; Sync() is the commit
// point — everything appended since the last Sync becomes durable (one
// fsync) or is rolled back together (the file is truncated back to the
// last committed offset, so the log never holds records the caller was
// told failed). The fsync policy knob trades the zero-acknowledged-
// loss guarantee for throughput: kNever acknowledges after write(2)
// and leaves durability to the page cache.
//
// Not thread-safe: the service owns exactly one writer and serializes
// it under its publisher mutex. The one exception is the retention-hold
// registry (retention()): it is internally synchronized so log
// consumers on other threads — the WAL shipper of
// src/serve/replication.h — can pin un-shipped LSNs against truncation
// without ever touching the publisher mutex.

#ifndef PITEX_SRC_SERVE_WAL_H_
#define PITEX_SRC_SERVE_WAL_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "src/index/dynamic_index.h"
#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace pitex {

enum class WalFsyncPolicy : uint8_t {
  /// fsync on every Sync(): acknowledged implies durable (the default;
  /// required for the zero-acknowledged-update-loss guarantee).
  kAlways,
  /// Never fsync: Sync() only marks the commit point. Durability is
  /// whatever the OS page cache provides — survives process crashes
  /// (the kill-9 drills) but not power loss.
  kNever,
};

struct WalOptions {
  /// Rotate to a fresh segment once the current one reaches this size
  /// (checked before an append, so segments overshoot by at most one
  /// record).
  uint64_t segment_bytes = 8ull << 20;
  WalFsyncPolicy fsync = WalFsyncPolicy::kAlways;
};

/// One decoded log record: batch `updates` was acknowledged as `lsn`.
struct WalRecord {
  uint64_t lsn = 0;
  std::vector<EdgeInfluenceUpdate> updates;
};

/// Registered minimum-retained-LSN holds: the fix for the truncation /
/// shipping race. TruncateThrough was written when the checkpointer was
/// the log's only consumer; a WAL shipper tailing the log for a
/// follower is a second one, and deleting a segment the follower has
/// not caught up past would strand it permanently (ReadWalAfter
/// rightly refuses a log that starts past its cursor). Each consumer
/// registers a hold naming the first LSN it still needs; truncation
/// never deletes a record at or above the minimum across live holds.
///
/// Thread-safe (unlike its owning WriteAheadLog): holds are registered
/// and advanced from consumer threads while the publisher appends.
class WalRetentionHolds {
 public:
  /// Registers a hold: records with LSN >= `first_needed_lsn` survive
  /// truncation until the hold advances or is released. Returns the
  /// hold's id (never 0).
  uint64_t Register(uint64_t first_needed_lsn) PITEX_EXCLUDES(mutex_);
  /// Advances (or rewinds — a resyncing follower may need history back)
  /// an existing hold. Unknown ids are ignored.
  void Update(uint64_t id, uint64_t first_needed_lsn) PITEX_EXCLUDES(mutex_);
  /// Drops the hold; the consumer no longer constrains truncation.
  void Release(uint64_t id) PITEX_EXCLUDES(mutex_);
  /// Minimum first-needed LSN across live holds, or UINT64_MAX when no
  /// hold is registered (truncation unconstrained).
  uint64_t Floor() const PITEX_EXCLUDES(mutex_);

 private:
  mutable Mutex mutex_;
  std::vector<std::pair<uint64_t, uint64_t>> holds_ PITEX_GUARDED_BY(mutex_);
  uint64_t next_id_ PITEX_GUARDED_BY(mutex_) = 1;
};

class WriteAheadLog {
 public:
  /// Opens `dir` (created if absent) for appending; the first record
  /// gets `next_lsn`. Always starts a fresh segment named after
  /// next_lsn — after recovery that overwrites at most a torn
  /// (never-acknowledged) tail, never committed records. Returns null
  /// with `*error` set on failure. Fail points: "wal/append",
  /// "wal/fsync".
  static std::unique_ptr<WriteAheadLog> Open(const std::string& dir,
                                             uint64_t next_lsn,
                                             const WalOptions& options,
                                             std::string* error = nullptr);

  ~WriteAheadLog();
  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  /// Appends one batch (buffered; durable only after Sync). Returns the
  /// assigned LSN, or 0 on failure — a failed append is truncated back
  /// out of the file and the LSN is not consumed.
  uint64_t Append(std::span<const EdgeInfluenceUpdate> updates);

  /// Commit point for everything appended since the last Sync: fsyncs
  /// per policy and returns true, or rolls the uncommitted suffix back
  /// (truncate + LSN rewind) and returns false.
  bool Sync();

  /// Deletes segments every record of which has LSN <= `lsn` (called
  /// after a checkpoint at `lsn`). The active segment is never deleted,
  /// and registered retention holds (retention()) cap the truncation
  /// point: a record some consumer still needs is never deleted even
  /// when the checkpoint has moved past it.
  void TruncateThrough(uint64_t lsn);

  /// Retention-hold registry for secondary log consumers (shipping).
  /// Internally synchronized; safe to use from any thread while the
  /// owner appends. The reference stays valid for the log's lifetime.
  WalRetentionHolds& retention() { return retention_; }

  /// LSN the next Append will assign.
  uint64_t next_lsn() const { return next_lsn_; }
  /// Successful Append calls over this writer's lifetime.
  uint64_t appends() const { return appends_; }
  /// fsync(2) calls actually issued (0 under WalFsyncPolicy::kNever).
  uint64_t fsyncs() const { return fsyncs_; }

 private:
  WriteAheadLog(std::string dir, uint64_t next_lsn,
                const WalOptions& options)
      : dir_(std::move(dir)), options_(options), next_lsn_(next_lsn),
        committed_lsn_(next_lsn) {}

  bool OpenSegment(uint64_t start_lsn, std::string* error);
  bool RotateIfNeeded();
  /// Truncates the active segment back to `offset` and rewinds the
  /// write cursor (failed-append / failed-commit rollback). If the
  /// truncate/seek itself fails the writer is poisoned (fd_ = -1):
  /// appending after a failed rollback would interleave live records
  /// with stale uncommitted bytes, so every later Append/Sync fails
  /// instead and the on-disk committed prefix stays intact.
  void RollBackTo(uint64_t offset);
  bool FsyncSegment();

  std::string dir_;
  WalOptions options_;
  int fd_ = -1;
  std::string segment_path_;
  uint64_t segment_start_lsn_ = 0;
  uint64_t offset_ = 0;            // current end of the active segment
  uint64_t committed_offset_ = 0;  // end as of the last successful Sync
  uint64_t next_lsn_ = 1;
  uint64_t committed_lsn_ = 1;     // next_lsn as of the last Sync
  uint64_t appends_ = 0;
  uint64_t fsyncs_ = 0;
  WalRetentionHolds retention_;
};

enum class WalReadStatus : uint8_t {
  /// Read every record to a clean end of log.
  kOk,
  /// Read every committed record; a torn tail (crash mid-append) was
  /// detected and consumed as the end of history. Still a success.
  kTornTail,
  /// A broken record with further data behind it, a checksum failure on
  /// a complete record, or an LSN discontinuity: real corruption, the
  /// log must not be trusted.
  kCorrupt,
  /// The directory or a segment could not be read.
  kIoError,
};

struct WalReadResult {
  WalReadStatus status = WalReadStatus::kOk;
  std::string message;

  bool ok() const {
    return status == WalReadStatus::kOk || status == WalReadStatus::kTornTail;
  }
};

/// Decodes every record with LSN > `after_lsn`, in LSN order, across
/// all segments in `dir` (an absent or empty directory reads as an
/// empty log). Appends to `*records`.
WalReadResult ReadWalAfter(const std::string& dir, uint64_t after_lsn,
                           std::vector<WalRecord>* records);

/// Segment filename for a given starting LSN ("wal-<16 hex>.log").
std::string WalSegmentName(uint64_t start_lsn);

}  // namespace pitex

#endif  // PITEX_SRC_SERVE_WAL_H_
