// Sharded LRU memoization of PITEX top-N rankings for the serving layer.
//
// A production query stream is heavily repetitive — the same influential
// users get explored again and again — while a PITEX answer is a pure
// function of (user, k, top_n, method, index epoch): the index methods
// are deterministic given a snapshot, and for the sampling methods any
// best-effort answer within the accuracy envelope is equally valid, so
// replaying the first one is sound. Keying on the snapshot epoch makes
// invalidation free: publishing a repaired index bumps the epoch and all
// cached entries for older epochs simply stop being reachable (and age
// out of the LRU) — no scan, no flush, and a query in flight on an old
// snapshot can still hit entries of its own epoch.
//
// Sharding: the key hash picks one of N independently locked shards, so
// concurrent workers rarely contend; each shard runs its own LRU list.

#ifndef PITEX_SRC_SERVE_RESULT_CACHE_H_
#define PITEX_SRC_SERVE_RESULT_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/core/best_effort_solver.h"
#include "src/model/influence_graph.h"
#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace pitex {

/// Identity of a memoizable serving answer. Two queries with equal keys
/// are interchangeable: same user, same search shape, same method, and
/// the same immutable index snapshot.
struct ResultCacheKey {
  VertexId user = 0;
  uint32_t k = 0;
  uint32_t top_n = 0;
  uint8_t method = 0;  // static_cast<uint8_t>(Method)
  uint64_t epoch = 0;

  bool operator==(const ResultCacheKey&) const = default;
};

struct ResultCacheKeyHash {
  size_t operator()(const ResultCacheKey& key) const {
    // FNV-1a over the field values; cheap and well-mixed for shard
    // selection and bucket placement alike.
    uint64_t h = 0xcbf29ce484222325ULL;
    const auto mix = [&h](uint64_t v) {
      h ^= v;
      h *= 0x100000001b3ULL;
    };
    mix(key.user);
    mix((static_cast<uint64_t>(key.k) << 40) |
        (static_cast<uint64_t>(key.top_n) << 8) | key.method);
    mix(key.epoch);
    return static_cast<size_t>(h);
  }
};

class ResultCache {
 public:
  /// `capacity` is the total entry budget across all shards (rounded up
  /// to at least one entry per shard). A zero capacity disables the
  /// cache: Lookup always misses, Insert is a no-op.
  ResultCache(size_t capacity, size_t num_shards);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// On hit, copies the cached ranking into `*out` (cleared first),
  /// promotes the entry to most-recently-used, and returns true.
  bool Lookup(const ResultCacheKey& key, std::vector<RankedTagSet>* out);

  /// Inserts (or refreshes) the ranking for `key`, evicting the shard's
  /// least-recently-used entry when over budget.
  void Insert(const ResultCacheKey& key,
              const std::vector<RankedTagSet>& ranking);

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;
    size_t entries = 0;
  };
  /// Aggregated over all shards.
  Stats GetStats() const;

  size_t capacity() const { return capacity_; }
  size_t num_shards() const { return shards_.size(); }
  bool enabled() const { return capacity_ > 0; }

 private:
  using Entry = std::pair<ResultCacheKey, std::vector<RankedTagSet>>;
  struct Shard {
    Mutex mutex;
    std::list<Entry> lru PITEX_GUARDED_BY(mutex);  // front = MRU
    std::unordered_map<ResultCacheKey, std::list<Entry>::iterator,
                       ResultCacheKeyHash>
        index PITEX_GUARDED_BY(mutex);
    // Written once by the ResultCache constructor before any concurrent
    // access (the shard vector is published by the constructor's return),
    // immutable afterwards — deliberately not guarded.
    size_t capacity = 0;
    uint64_t hits PITEX_GUARDED_BY(mutex) = 0;
    uint64_t misses PITEX_GUARDED_BY(mutex) = 0;
    uint64_t insertions PITEX_GUARDED_BY(mutex) = 0;
    uint64_t evictions PITEX_GUARDED_BY(mutex) = 0;
  };

  Shard& ShardFor(const ResultCacheKey& key);

  size_t capacity_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace pitex

#endif  // PITEX_SRC_SERVE_RESULT_CACHE_H_
