// Admission control for the serving tier (docs/robustness.md).
//
// PitexService's work-stealing scheduler is throughput-optimal but
// admission-blind: under a query storm every arrival is queued, sojourn
// times grow without bound, and the CPU the publish path needs to freeze
// a snapshot is burned serving queries that will miss any reasonable
// deadline anyway. The admission layer sits in front of the scheduler
// and decides, per query, admit or shed:
//
//   * bounded queue -- at most `max_queue_depth` admitted queries may be
//     in flight (queued or executing); arrivals beyond the bound are
//     shed immediately with ServeStatus::kShed, which keeps queue wait
//     (and hence every admitted query's latency) bounded;
//   * priority classes (publish > query) -- while a snapshot publish is
//     in flight the effective queue bound contracts by
//     `publish_headroom`, shedding query load early so the freeze+pack
//     never starves behind a storm. Publishes themselves are never shed:
//     they run on the caller thread + maintenance pool and only ever
//     *tighten* query admission;
//   * per-user token buckets -- a single hot user (or an abusive
//     client) is rate-limited to `user_rate_limit` queries/sec with
//     burst capacity `user_burst`, so one principal cannot monopolize
//     the admitted slots. Buckets live in a fixed hashed table
//     (bounded memory; colliding users share a bucket, which only ever
//     sheds *more* aggressively, never less).
//
// The controller is self-contained and lock-cheap (one short mutex hold
// per decision; see BM_AdmissionOverhead for the happy-path cost) so it
// is unit-testable with synthetic clocks and reusable by future
// front-ends (e.g. the sharded tier's scatter/gather router).

#ifndef PITEX_SRC_SERVE_ADMISSION_H_
#define PITEX_SRC_SERVE_ADMISSION_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/model/influence_graph.h"
#include "src/serve/service_stats.h"
#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace pitex {

struct AdmissionOptions {
  /// Maximum admitted queries in flight (queued + executing); arrivals
  /// beyond it are shed. 0 = unbounded (no queue-based shedding).
  size_t max_queue_depth = 0;
  /// While a publish is in flight the effective queue bound is scaled by
  /// this factor (clamped to at least 1 slot), shedding query load early
  /// so publishes keep CPU headroom. 1.0 = no tightening.
  double publish_headroom = 0.5;
  /// Sustained per-user admission rate in queries/sec; 0 = unlimited.
  double user_rate_limit = 0.0;
  /// Token-bucket burst capacity (max queries admitted back-to-back for
  /// one user after an idle period).
  double user_burst = 8.0;
  /// Hashed token-bucket table size (fixed memory; users sharing a
  /// bucket share its budget).
  size_t user_buckets = 1024;
  /// Ring size for queue-depth samples (percentiles in Stats()).
  size_t depth_window = 4096;
};

enum class AdmissionVerdict : uint8_t {
  kAdmit,
  kShedQueueFull,
  kShedRateLimited,
};

class AdmissionController {
 public:
  using Clock = std::chrono::steady_clock;

  explicit AdmissionController(const AdmissionOptions& options);

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// One admission decision for a query from `user` arriving at `now`
  /// (caller passes the timestamp so tests can drive a synthetic clock).
  /// kAdmit increments the in-flight count; the caller must pair it with
  /// Release() once the query leaves the system.
  AdmissionVerdict TryAdmit(VertexId user, Clock::time_point now)
      PITEX_EXCLUDES(mutex_);

  /// Returns `count` admitted queries' slots (served or abandoned).
  void Release(size_t count) PITEX_EXCLUDES(mutex_);

  /// Publish-priority window: between Begin and End the queue bound is
  /// tightened by `publish_headroom`. Nestable (concurrent publishers
  /// each count).
  void BeginPublish() PITEX_EXCLUDES(mutex_);
  void EndPublish() PITEX_EXCLUDES(mutex_);

  struct Stats {
    uint64_t admitted = 0;
    uint64_t shed_queue_full = 0;
    uint64_t shed_rate_limited = 0;
    /// Admitted queries currently in flight.
    size_t in_flight = 0;
    /// Order statistics of the queue depth observed at admission time
    /// (recent `depth_window` decisions).
    LatencySummary queue_depth;
  };
  Stats GetStats() const PITEX_EXCLUDES(mutex_);

  const AdmissionOptions& options() const { return options_; }

 private:
  struct Bucket {
    double tokens = 0.0;
    Clock::time_point refilled;
    bool touched = false;
  };

  AdmissionOptions options_;

  mutable Mutex mutex_;
  size_t in_flight_ PITEX_GUARDED_BY(mutex_) = 0;
  size_t publish_active_ PITEX_GUARDED_BY(mutex_) = 0;
  uint64_t admitted_ PITEX_GUARDED_BY(mutex_) = 0;
  uint64_t shed_queue_full_ PITEX_GUARDED_BY(mutex_) = 0;
  uint64_t shed_rate_limited_ PITEX_GUARDED_BY(mutex_) = 0;
  std::vector<Bucket> buckets_ PITEX_GUARDED_BY(mutex_);
  // Queue-depth sample ring (depths observed at admission decisions).
  std::vector<double> depth_ring_ PITEX_GUARDED_BY(mutex_);
  size_t depth_pos_ PITEX_GUARDED_BY(mutex_) = 0;
};

}  // namespace pitex

#endif  // PITEX_SRC_SERVE_ADMISSION_H_
