#include "src/serve/pitex_service.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <thread>
#include <utility>

#include "src/index/index_io.h"
#include "src/serve/recovery.h"
#include "src/util/check.h"
#include "src/util/failpoint.h"

namespace pitex {

PitexService::PitexService(const SocialNetwork* network,
                           const ServeOptions& options)
    : network_(network), options_(options) {
  PITEX_CHECK(network != nullptr);
  options_.num_threads = std::max<size_t>(1, options_.num_threads);
  options_.top_n = std::max<size_t>(1, options_.top_n);
  options_.latency_window = std::max<size_t>(1, options_.latency_window);
  PITEX_CHECK_MSG(options_.durability_dir.empty() || options_.enable_updates,
                  "durability_dir requires enable_updates");
  term_.store(options_.term, std::memory_order_relaxed);
  // Containers that Stats()/ClearLatencyWindow() traverse are sized here
  // and never reassigned again, so those methods stay safe to call
  // concurrently with a lazy Start() from another thread.
  deques_.resize(options_.num_threads);
  workers_ = std::vector<WorkerState>(options_.num_threads);
  counters_ = std::vector<WorkerCounters>(options_.num_threads);
  // Deterministic mode forbids the cache: a hit skips the engine, so the
  // worker's sampler RNG would not advance and every subsequent answer
  // on that worker would diverge from BatchEngine.
  if (options_.mode == ScheduleMode::kWorkStealing &&
      options_.cache_capacity > 0) {
    cache_ = std::make_unique<ResultCache>(options_.cache_capacity,
                                           options_.cache_shards);
  }
  // Admission is load-shedding, and shedding is inherently
  // load-dependent -- deterministic mode must answer every query, so the
  // controller only exists in work-stealing mode with a limit set.
  if (options_.mode == ScheduleMode::kWorkStealing &&
      (options_.admission.max_queue_depth > 0 ||
       options_.admission.user_rate_limit > 0.0)) {
    admission_ = std::make_unique<AdmissionController>(options_.admission);
  }
  RegisterMetrics();
}

void PitexService::RegisterMetrics() {
  m_.submitted = metrics_.RegisterCounter(
      "pitex_queries_submitted_total",
      "Queries offered to the service (admitted + shed)");
  m_.admitted = metrics_.RegisterCounter(
      "pitex_queries_admitted_total", "Queries accepted past admission");
  m_.shed_queue_full = metrics_.RegisterCounter(
      "pitex_queries_shed_queue_full_total",
      "Queries refused because the bounded queue was full");
  m_.shed_rate_limited = metrics_.RegisterCounter(
      "pitex_queries_shed_rate_limited_total",
      "Queries refused by the per-user token bucket");
  m_.ok = metrics_.RegisterCounter(
      "pitex_queries_ok_total",
      "Queries served to completion (cache hits included)");
  m_.degraded = metrics_.RegisterCounter(
      "pitex_queries_degraded_total",
      "Queries whose budget expired mid-search (best-so-far answer)");
  m_.deadline_expired = metrics_.RegisterCounter(
      "pitex_queries_deadline_expired_total",
      "Queries whose budget was already gone at worker pickup");
  m_.cache_hits = metrics_.RegisterCounter(
      "pitex_cache_hits_total", "Result-cache hits observed by workers");
  m_.steals = metrics_.RegisterCounter(
      "pitex_steals_total", "Queries served off another worker's deque");
  m_.publish_retries = metrics_.RegisterCounter(
      "pitex_publish_retries_total",
      "Snapshot-freeze attempts that failed and were retried");
  m_.publish_failures = metrics_.RegisterCounter(
      "pitex_publish_failures_total",
      "Publishes abandoned after exhausting every retry");
  m_.wal_appends = metrics_.RegisterCounter(
      "pitex_wal_appends_total", "Update batches appended to the WAL");
  m_.wal_fsyncs = metrics_.RegisterCounter(
      "pitex_wal_fsyncs_total", "fsync(2) calls issued by the WAL");
  m_.wal_append_failures = metrics_.RegisterCounter(
      "pitex_wal_append_failures_total",
      "Batches rejected because the WAL append/commit failed");
  m_.checkpoints = metrics_.RegisterCounter(
      "pitex_checkpoints_total", "Checkpoints written (WAL truncated)");
  m_.checkpoint_failures = metrics_.RegisterCounter(
      "pitex_checkpoint_failures_total",
      "Checkpoint attempts that failed (previous one stays valid)");
  m_.recovery_replayed = metrics_.RegisterCounter(
      "pitex_recovery_replayed_lsns_total",
      "WAL records replayed over the checkpoint by Start() recovery");
  m_.fenced_writes = metrics_.RegisterCounter(
      "pitex_fenced_writes_total",
      "Update batches rejected because this writer's term is stale");
  m_.sojourn = metrics_.RegisterHistogram(
      "pitex_query_sojourn_seconds",
      "Enqueue-to-answer latency of engine-served queries",
      {0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
       0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0});
  m_.cache_entries = metrics_.RegisterGauge(
      "pitex_cache_entries", "Result-cache entries currently resident");
  m_.cache_insertions = metrics_.RegisterGauge(
      "pitex_cache_insertions", "Result-cache insertions so far");
  m_.cache_evictions = metrics_.RegisterGauge(
      "pitex_cache_evictions", "Result-cache evictions so far");
  m_.current_epoch = metrics_.RegisterGauge(
      "pitex_current_epoch", "Epoch new queries are served from");
  m_.epochs_published = metrics_.RegisterGauge(
      "pitex_epochs_published", "Index snapshots published so far");
  m_.snapshots_alive = metrics_.RegisterGauge(
      "pitex_snapshots_alive",
      "Retired snapshots still pinned by in-flight readers");
  m_.admission_in_flight = metrics_.RegisterGauge(
      "pitex_admission_in_flight",
      "Admitted queries currently queued or executing");
  m_.publish_in_flight = metrics_.RegisterGauge(
      "pitex_publish_in_flight", "1 while a snapshot freeze is running");
  m_.durable_lsn = metrics_.RegisterGauge(
      "pitex_durable_lsn", "Last WAL LSN acknowledged as durable");
  m_.published_lsn = metrics_.RegisterGauge(
      "pitex_published_lsn", "Durable LSN covered by the served epoch");
  m_.staleness_batches = metrics_.RegisterGauge(
      "pitex_staleness_batches",
      "Applied update batches the served epoch does not cover yet");
  m_.staleness_lsns = metrics_.RegisterGauge(
      "pitex_staleness_lsns",
      "Durable LSNs the served epoch does not cover yet");
  m_.term = metrics_.RegisterGauge(
      "pitex_term", "Replication term this writer operates under");
  m_.term->Set(static_cast<int64_t>(options_.term));
  metrics_.AddCollector([this] { CollectDerivedMetrics(); });
}

void PitexService::CollectDerivedMetrics() {
  if (cache_ != nullptr) {
    // One GetStats call per collection: each shard's (insertions,
    // evictions, entries) triple is read under that shard's lock, so
    // the cache conservation identity insertions == evictions + entries
    // survives into the exported gauges.
    const ResultCache::Stats cache_stats = cache_->GetStats();
    m_.cache_entries->Set(static_cast<int64_t>(cache_stats.entries));
    m_.cache_insertions->Set(static_cast<int64_t>(cache_stats.insertions));
    m_.cache_evictions->Set(static_cast<int64_t>(cache_stats.evictions));
  }
  if (admission_ != nullptr) {
    m_.admission_in_flight->Set(
        static_cast<int64_t>(admission_->GetStats().in_flight));
  }
  m_.current_epoch->Set(static_cast<int64_t>(registry_.current_epoch()));
  m_.epochs_published->Set(static_cast<int64_t>(registry_.epochs_published()));
  m_.snapshots_alive->Set(static_cast<int64_t>(registry_.AliveSnapshots()));
  m_.publish_in_flight->Set(
      publish_in_flight_.load(std::memory_order_acquire) ? 1 : 0);
  const uint64_t applied = applied_batches_.load(std::memory_order_relaxed);
  const uint64_t published =
      published_batches_.load(std::memory_order_relaxed);
  const uint64_t durable = durable_lsn_mirror_.load(std::memory_order_relaxed);
  const uint64_t covered =
      published_lsn_mirror_.load(std::memory_order_relaxed);
  m_.durable_lsn->Set(static_cast<int64_t>(durable));
  m_.published_lsn->Set(static_cast<int64_t>(covered));
  m_.staleness_batches->Set(
      applied >= published ? static_cast<int64_t>(applied - published) : 0);
  m_.staleness_lsns->Set(
      durable >= covered ? static_cast<int64_t>(durable - covered) : 0);
}

PitexService::~PitexService() {
  if (pool_ != nullptr) {
    {
      MutexLock lock(sched_mutex_);
      stop_ = true;
    }
    work_cv_.NotifyAll();
    // ThreadPool::~ThreadPool waits for the pumps, which drain every
    // still-pending query (promises must not be abandoned) and exit.
    pool_.reset();
  }
}

void PitexService::Start() {
  if (started_.load(std::memory_order_acquire)) return;
  MutexLock start_lock(start_mutex_);
  if (started_.load(std::memory_order_relaxed)) return;

  const size_t num_threads = options_.num_threads;
  pool_ = std::make_unique<ThreadPool>(num_threads);

  // Offline cost is paid once here, exactly as BatchEngine::Prepare does
  // (deterministic mode depends on the index derivation matching).
  const Method method = options_.engine.method;
  RrIndexOptions index_options;
  index_options.eps = options_.engine.eps;
  index_options.delta = options_.engine.delta;
  index_options.cap_k = options_.engine.index_cap_k;
  index_options.theta_per_vertex = options_.engine.index_theta_per_vertex;
  index_options.max_theta = options_.engine.index_max_theta;
  index_options.seed = options_.engine.seed;

  std::shared_ptr<const IndexSnapshot> snapshot;
  if (method == Method::kIndexEst || method == Method::kIndexEstPlus) {
    if (options_.enable_updates) {
      // Shadow master: repairs mutate it privately; every published
      // epoch is an immutable packed replica. The initial state is
      // bit-identical to a freshly built RrIndex with these options.
      // Writer-side state is update_mutex_ territory even during the
      // one-time init: an ApplyUpdates racing a concurrent lazy Start()
      // must observe either "no master" (and Start() itself below, via
      // its own Start() call) or the fully built one — found by the
      // -Wthread-safety annotation pass (docs/static_analysis.md).
      MutexLock update_lock(update_mutex_);
      uint64_t initial_epoch = 1;
      if (!options_.durability_dir.empty()) {
        // Recover: newest checkpoint + WAL-tail replay. Every batch in
        // the result was acknowledged before the last shutdown/crash,
        // and the replayed master is bit-identical to a never-crashed
        // reference (src/serve/recovery.h), so serving resumes exactly
        // where the acknowledged history left off.
        RecoveredState recovered;
        std::string error;
        if (!RecoverServingState(*network_, index_options,
                                 options_.durability_dir, &recovered,
                                 &error)) {
          // Crash-adjacent: dump the flight recorder before aborting so
          // the events leading here are on the console with the reason.
          journal_.DumpTo(stderr);
          PITEX_CHECK_MSG(false, error.c_str());
        }
        master_ = std::move(recovered.master);
        touched_edges_ = std::move(recovered.touched_edges);
        last_durable_lsn_ = recovered.last_lsn;
        m_.recovery_replayed->Inc(recovered.replayed_records);
        journal_.Record(obs::EventKind::kRecoveryReplay,
                        recovered.replayed_records, recovered.last_lsn);
        durable_lsn_mirror_.store(recovered.last_lsn,
                                  std::memory_order_relaxed);
        initial_epoch = recovered.publish_epoch;
        wal_ = WriteAheadLog::Open(options_.durability_dir,
                                   recovered.last_lsn + 1, options_.wal,
                                   &error);
        if (wal_ == nullptr) {
          journal_.DumpTo(stderr);
          PITEX_CHECK_MSG(false, error.c_str());
        }
        wal_appends_seen_ = wal_->appends();
        wal_fsyncs_seen_ = wal_->fsyncs();
      } else {
        master_ = std::make_unique<DynamicRrIndex>(*network_, index_options);
        master_->Build();
      }
      if (options_.publish_threads > 1) {
        publish_pool_ = std::make_unique<ThreadPool>(options_.publish_threads);
      }
      // Same retry policy as ApplyUpdates, but there is no previous
      // epoch to fall back to: if the freeze cannot succeed within the
      // retry budget, starting the service is impossible.
      snapshot = FreezeSnapshotLocked(initial_epoch);
      if (snapshot == nullptr) {
        // The per-attempt kPublishRetry events are already in the ring.
        journal_.DumpTo(stderr);
        PITEX_CHECK_MSG(false,
                        "initial snapshot freeze failed after retries");
      }
      // The initial snapshot covers everything recovery acknowledged.
      published_lsn_mirror_.store(
          durable_lsn_mirror_.load(std::memory_order_relaxed),
          std::memory_order_relaxed);
    } else {
      index_options.num_build_threads = num_threads;
      auto index = std::make_unique<RrIndex>(*network_, index_options);
      // The pump pool doubles as the build pool (pumps are parked only
      // after the build); the index is bit-identical for any pool size.
      index->Build(pool_.get());
      snapshot = IndexSnapshot::Wrap(network_, std::move(index), "", 1);
    }
  } else {
    PITEX_CHECK_MSG(!options_.enable_updates,
                    "enable_updates requires kIndexEst or kIndexEstPlus");
    if (method == Method::kDelayMat) {
      DelayMatIndex prototype(*network_, index_options);
      prototype.Build();
      std::stringstream snapshot_stream;
      std::string error;
      PITEX_CHECK_MSG(SaveDelayMatIndex(prototype, snapshot_stream, &error),
                      error.c_str());
      snapshot =
          IndexSnapshot::Wrap(network_, nullptr, snapshot_stream.str(), 1);
    } else {
      snapshot = IndexSnapshot::Wrap(network_, nullptr, "", 1);
    }
  }
  const uint64_t first_epoch = snapshot->epoch();
  registry_.Publish(std::move(snapshot));
  journal_.Record(obs::EventKind::kEpochSwap, first_epoch,
                  durable_lsn_mirror_.load(std::memory_order_relaxed));

  for (size_t i = 0; i < num_threads; ++i) {
    PITEX_CHECK_MSG(
        pool_->SubmitIndexed([this](size_t worker) { PumpLoop(worker); }),
        "serving pool shut down before the pumps parked");
  }
  started_.store(true, std::memory_order_release);
}

void PitexService::EnqueueLocked(PendingQuery item, size_t sequence) {
  size_t worker;
  if (options_.mode == ScheduleMode::kDeterministic) {
    worker = sequence % deques_.size();
  } else {
    // User-affinity placement: the per-worker engine replicas keep
    // per-user state (IndexEst+ filter caches, DelayMat recovered
    // graphs), so a user's home deque is chosen by hash, keeping those
    // caches warm across the stream. Stealing remains the overflow
    // valve when a home deque runs hot.
    const uint64_t hash =
        static_cast<uint64_t>(item.query.user) * 0x9e3779b97f4a7c15ULL;
    worker = static_cast<size_t>(hash >> 32) % deques_.size();
  }
  deques_[worker].push_back(std::move(item));
}

bool PitexService::AnyStealableLocked(size_t thief) const {
  // Backlogs of one are left to their home worker: stealing the last
  // item buys nothing but a cold per-user cache on the thief. The
  // predicate must match TryStealLocked exactly, or an idle pump would
  // spin on work it can never claim.
  for (size_t v = 0; v < deques_.size(); ++v) {
    if (v != thief && deques_[v].size() >= 2) return true;
  }
  return false;
}

// Queries claimed per lock acquisition. Runs amortize the scheduler's
// mutex/condvar traffic across many queries while staying small enough
// that the tail of a skewed batch is still redistributed finely.
constexpr size_t kMaxRunLength = 16;

bool PitexService::TryStealLocked(size_t thief,
                                  std::vector<PendingQuery>* run) {
  size_t best = deques_.size();
  size_t best_size = 0;
  for (size_t v = 0; v < deques_.size(); ++v) {
    if (v == thief) continue;
    if (deques_[v].size() > best_size) {
      best = v;
      best_size = deques_[v].size();
    }
  }
  if (best == deques_.size() || best_size < 2) return false;
  // Steal half the victim's backlog (capped) from the back: the owner
  // pops the front, so thief and owner touch opposite ends, and one
  // steal rebalances a whole run instead of a single query.
  std::deque<PendingQuery>& victim = deques_[best];
  const size_t take = std::min(kMaxRunLength, victim.size() / 2);
  const size_t start = victim.size() - take;
  for (size_t i = start; i < victim.size(); ++i) {
    run->push_back(std::move(victim[i]));
  }
  victim.erase(victim.begin() + static_cast<ptrdiff_t>(start), victim.end());
  return true;
}

void PitexService::PumpLoop(size_t worker) {
  const bool stealing = options_.mode == ScheduleMode::kWorkStealing;
  std::vector<PendingQuery> run;
  run.reserve(kMaxRunLength);
  for (;;) {
    run.clear();
    bool stolen = false;
    {
      MutexLock lock(sched_mutex_);
      while (!stop_ && deques_[worker].empty() &&
             !(stealing && AnyStealableLocked(worker))) {
        work_cv_.Wait(lock);
      }
      std::deque<PendingQuery>& own = deques_[worker];
      if (!own.empty()) {
        // Claim a run of the own backlog. Halving (instead of taking it
        // all) leaves the rest visible to thieves, so a worker stuck on
        // an expensive run is still relieved.
        const size_t take =
            std::min(kMaxRunLength, std::max<size_t>(1, own.size() / 2));
        for (size_t i = 0; i < take; ++i) {
          run.push_back(std::move(own.front()));
          own.pop_front();
        }
      } else if (stealing && TryStealLocked(worker, &run)) {
        stolen = true;
      } else if (stop_) {
        return;  // drained: stop only ever fires after pending work
      } else {
        continue;  // another pump took the work this wakeup announced
      }
    }
    ServeRun(worker, &run, stolen);
  }
}

void PitexService::BindWorker(WorkerState* state,
                              std::shared_ptr<const IndexSnapshot> snapshot,
                              size_t worker) {
  EngineOptions worker_options = options_.engine;
  worker_options.seed = options_.engine.seed + worker;
  auto engine =
      std::make_unique<PitexEngine>(&snapshot->network(), worker_options);
  if (snapshot->rr_index() != nullptr) {
    engine->UseSharedRrIndex(snapshot->rr_index());
  } else if (!snapshot->delay_snapshot().empty()) {
    // DelayMat caches recovered graphs per query user and must not be
    // shared: hydrate a private replica from the serialized prototype.
    // Hydration reads through index_io, whose fault-injectable error
    // paths model transient I/O failures -- worth a bounded retry before
    // declaring the worker unusable (the prototype bytes are in memory,
    // so a retry rereads identical data).
    std::unique_ptr<DelayMatIndex> replica;
    std::string error;
    for (int attempt = 0; attempt < 3 && replica == nullptr; ++attempt) {
      std::stringstream snapshot_stream(snapshot->delay_snapshot());
      replica = LoadDelayMatIndex(snapshot->network(), snapshot_stream,
                                  &error);
    }
    PITEX_CHECK_MSG(replica != nullptr, error.c_str());
    engine->AdoptDelayMatIndex(std::move(replica));
  }
  engine->BuildIndex();  // wraps/attaches; cheap for adopted indexes
  state->engine = std::move(engine);
  state->engine_epoch = snapshot->epoch();
  state->snapshot = std::move(snapshot);  // pin: keeps the epoch alive
}

void PitexService::ServeRun(size_t worker, std::vector<PendingQuery>* run,
                            bool stolen) {
  // Epoch pickup is per run: a publish mid-run becomes visible on the
  // next claim. Answers are still labeled with the epoch that actually
  // computed them (state.engine_epoch), so correctness is unaffected.
  std::shared_ptr<const IndexSnapshot> snapshot = registry_.Current();
  WorkerState& state = workers_[worker];
  if (state.engine == nullptr || state.engine_epoch != snapshot->epoch()) {
    BindWorker(&state, std::move(snapshot), worker);
    journal_.Record(obs::EventKind::kWorkerRebind, worker,
                    state.engine_epoch);
  }

  ResultCacheKey key;
  key.top_n = static_cast<uint32_t>(options_.top_n);
  key.method = static_cast<uint8_t>(options_.engine.method);
  key.epoch = state.engine_epoch;

  double latencies[kMaxRunLength];
  ServedResult outs[kMaxRunLength];
  size_t count = 0;
  uint64_t hit_count = 0;
  uint64_t degraded_count = 0;
  uint64_t deadline_count = 0;

  for (PendingQuery& item : *run) {
    // Queue-wait span: the start was observed on the submitting thread
    // (enqueue time), so it crosses threads and is recorded explicitly.
    // Arming the trace for the rest of the iteration lets the cache
    // probe / solve spans (and the solver's own sites) attribute to it
    // without plumbing the id through every call.
    if (item.trace.sampled()) {
      item.trace.Record(obs::SpanKind::kQueueWait, obs::ToNs(item.enqueued),
                        obs::NowNs());
    }
    PITEX_TRACE_SCOPE(item.trace.id());
    ServedResult& out = outs[count];
    out.epoch = state.engine_epoch;
    out.worker = static_cast<uint32_t>(worker);
    out.stolen = stolen;
    out.cache_hit = false;
    out.status = ServeStatus::kOk;
    out.trace_id = item.trace.id();
    key.user = item.query.user;
    key.k = static_cast<uint32_t>(item.query.k);

    // A query budget is measured from enqueue, so queue wait counts
    // against it; the engine gets whatever remains.
    double remaining_budget = 0.0;
    if (item.query.budget_seconds > 0.0) {
      const double waited =
          std::chrono::duration<double>(Clock::now() - item.enqueued).count();
      remaining_budget = item.query.budget_seconds - waited;
      if (remaining_budget <= 0.0) {
        // Expired in queue: answering with stale-best is impossible (no
        // search ran) and starting one would only delay the queries
        // behind it -- the overload-collapse mode deadlines exist to
        // prevent. Report expiry and move on.
        out.status = ServeStatus::kDeadlineExpired;
        out.result = PitexResult{};
        out.result.degraded = true;
        out.ranking.clear();
        ++deadline_count;
        journal_.Record(obs::EventKind::kDeadlineExpired, item.query.user,
                        worker);
        latencies[count++] = std::chrono::duration<double>(Clock::now() -
                                                           item.enqueued)
                                 .count();
        continue;
      }
    }

    bool cache_hit = false;
    if (cache_ != nullptr) {
      PITEX_SPAN(kCacheProbe);
      cache_hit = cache_->Lookup(key, &out.ranking);
    }
    if (cache_hit) {
      out.cache_hit = true;
      ++hit_count;
      out.result = PitexResult{};
      out.result.tags = out.ranking.front().tags;
      out.result.influence = out.ranking.front().influence;
    } else {
      PitexQuery engine_query = item.query;
      engine_query.budget_seconds = remaining_budget;
      {
        PITEX_SPAN(kSolve);
        if (options_.top_n == 1) {
          out.result = state.engine->Explore(engine_query);
          if (out.result.degraded && out.result.tags.empty()) {
            out.ranking.clear();  // budget died before the first full set
          } else {
            out.ranking.assign(
                1, RankedTagSet{out.result.tags, out.result.influence});
          }
        } else {
          out.ranking =
              state.engine->ExploreTopN(engine_query, options_.top_n,
                                        &out.result);
        }
      }
      if (out.result.degraded) {
        out.status = ServeStatus::kDegraded;
        ++degraded_count;
        journal_.Record(obs::EventKind::kDegraded, item.query.user, worker);
        // Degraded answers are budget artifacts, not properties of
        // (user, k, epoch) -- caching one would serve a truncated
        // ranking to future unconstrained queries.
      } else if (cache_ != nullptr) {
        cache_->Insert(key, out.ranking);
      }
    }

    latencies[count++] =
        std::chrono::duration<double>(Clock::now() - item.enqueued).count();
  }

  // Admitted slots free up as soon as the answers are computed (before
  // delivery: the waiter's reaction time is not queue occupancy).
  if (admission_ != nullptr) admission_->Release(run->size());

  // Flush the counters BEFORE delivering: once the batch waiter (or a
  // future holder) unblocks, Stats() and SnapshotMetrics() must already
  // account for every query of this run. One flush per run, not per
  // query. The registry counters are lock-free; only the per-worker
  // load split and the latency ring need stats_mutex_.
  m_.ok->Inc(count - degraded_count - deadline_count);
  m_.degraded->Inc(degraded_count);
  m_.deadline_expired->Inc(deadline_count);
  m_.cache_hits->Inc(hit_count);
  if (stolen) m_.steals->Inc(count);
  for (size_t i = 0; i < count; ++i) m_.sojourn->Observe(latencies[i]);
  {
    MutexLock lock(stats_mutex_);
    WorkerCounters& counters = counters_[worker];
    counters.served += count;
    for (size_t i = 0; i < count; ++i) {
      if (counters.latency_ring.size() < options_.latency_window) {
        counters.latency_ring.push_back(latencies[i]);
      } else {
        counters.latency_ring[counters.latency_pos] = latencies[i];
        counters.latency_pos =
            (counters.latency_pos + 1) % counters.latency_ring.size();
      }
    }
  }

  for (size_t i = 0; i < count; ++i) {
    PendingQuery& item = (*run)[i];
    // Delivery span recorded between the answer handoff and the batch
    // countdown: by the time the final countdown wakes a batch waiter,
    // every span of every query in the batch is already collectible.
    // (A streaming future can win the race against its own kResult
    // record; batch waiters cannot.)
    const bool traced = item.trace.sampled();
    const int64_t delivery_start = traced ? obs::NowNs() : 0;
    if (item.promise != nullptr) {
      item.promise->set_value(std::move(outs[i]));
    } else if (item.slot != nullptr) {
      *item.slot = std::move(outs[i]);
    }
    if (traced) {
      item.trace.Record(obs::SpanKind::kResult, delivery_start,
                        obs::NowNs());
    }
    if (item.remaining != nullptr &&
        item.remaining->fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Lock/unlock pairs with the waiter's predicate check so the final
      // notify cannot slip between its check and its wait.
      MutexLock lock(batch_mutex_);
      batch_cv_.NotifyAll();
    }
  }
}

std::vector<ServedResult> PitexService::ServeAll(
    std::span<const PitexQuery> queries) {
  if (queries.empty()) return {};
  Start();
  std::vector<ServedResult> results(queries.size());
  // Admission decisions happen before enqueue: shed slots are answered
  // in place (status kShed, nothing else touched) and never reach the
  // scheduler, so `remaining` counts only admitted queries.
  size_t admitted = 0;
  std::atomic<size_t> remaining{0};
  const auto now = Clock::now();
  m_.submitted->Inc(queries.size());
  {
    MutexLock lock(sched_mutex_);
    for (size_t i = 0; i < queries.size(); ++i) {
      const obs::TraceContext trace = obs::TraceContext::Start();
      // The admission span starts at the batch arrival instant (`now`,
      // which is also the enqueue timestamp): admission covers
      // arrival -> enqueued, queue wait covers enqueued -> pickup, and
      // the shared start keeps the exported chain ordered (Collect
      // breaks start-time ties by kind).
      const int64_t admission_start = trace.sampled() ? obs::ToNs(now) : 0;
      if (admission_ != nullptr) {
        const AdmissionVerdict verdict =
            admission_->TryAdmit(queries[i].user, now);
        if (verdict != AdmissionVerdict::kAdmit) {
          const bool queue_full = verdict == AdmissionVerdict::kShedQueueFull;
          (queue_full ? m_.shed_queue_full : m_.shed_rate_limited)->Inc();
          journal_.Record(obs::EventKind::kShed, queries[i].user,
                          queue_full ? 1 : 2);
          results[i].status = ServeStatus::kShed;
          results[i].trace_id = trace.id();
          if (trace.sampled()) {
            trace.Record(obs::SpanKind::kAdmission, admission_start,
                         obs::NowNs());
          }
          continue;
        }
      }
      m_.admitted->Inc();
      ++admitted;
      PendingQuery item;
      item.query = queries[i];
      item.enqueued = now;
      item.slot = &results[i];
      item.remaining = &remaining;
      item.trace = trace;
      // Batch-local i % N placement: in deterministic mode this IS the
      // assignment (BatchEngine's round-robin); in work-stealing mode it
      // is only the initial placement.
      EnqueueLocked(std::move(item), i);
      if (trace.sampled()) {
        trace.Record(obs::SpanKind::kAdmission, admission_start,
                     obs::NowNs());
      }
    }
    remaining.store(admitted, std::memory_order_release);
  }
  if (admitted == 0) return results;
  work_cv_.NotifyAll();
  MutexLock lock(batch_mutex_);
  while (remaining.load(std::memory_order_acquire) != 0) {
    batch_cv_.Wait(lock);
  }
  return results;
}

std::future<ServedResult> PitexService::Submit(const PitexQuery& query) {
  Start();
  m_.submitted->Inc();
  PendingQuery item;
  item.query = query;
  item.enqueued = Clock::now();
  item.trace = obs::TraceContext::Start();
  const int64_t admission_start = item.trace.sampled() ? obs::NowNs() : 0;
  item.promise = std::make_unique<std::promise<ServedResult>>();
  std::future<ServedResult> future = item.promise->get_future();
  if (admission_ != nullptr) {
    const AdmissionVerdict verdict =
        admission_->TryAdmit(query.user, item.enqueued);
    if (verdict != AdmissionVerdict::kAdmit) {
      const bool queue_full = verdict == AdmissionVerdict::kShedQueueFull;
      (queue_full ? m_.shed_queue_full : m_.shed_rate_limited)->Inc();
      journal_.Record(obs::EventKind::kShed, query.user, queue_full ? 1 : 2);
      // Shed: satisfy the future immediately -- callers always get an
      // answer, overload just changes which kind.
      ServedResult shed;
      shed.status = ServeStatus::kShed;
      shed.trace_id = item.trace.id();
      if (item.trace.sampled()) {
        item.trace.Record(obs::SpanKind::kAdmission, admission_start,
                          obs::NowNs());
      }
      item.promise->set_value(std::move(shed));
      return future;
    }
  }
  m_.admitted->Inc();
  const obs::TraceContext trace = item.trace;
  {
    MutexLock lock(sched_mutex_);
    EnqueueLocked(std::move(item), stream_seq_++);
  }
  if (trace.sampled()) {
    trace.Record(obs::SpanKind::kAdmission, admission_start, obs::NowNs());
  }
  work_cv_.NotifyAll();
  return future;
}

std::shared_ptr<const IndexSnapshot> PitexService::FreezeSnapshotLocked(
    uint64_t epoch) {
  // Covers the whole retry loop (backoff sleeps included); the kPack
  // span inside IndexSnapshot::FromDynamic nests under it via the
  // thread's current trace. Inert when no trace is armed (Start()).
  PITEX_SPAN(kFreeze);
  if (admission_ != nullptr) admission_->BeginPublish();
  publish_started_ns_.store(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          Clock::now().time_since_epoch())
          .count(),
      std::memory_order_relaxed);
  publish_in_flight_.store(true, std::memory_order_release);

  std::shared_ptr<const IndexSnapshot> snapshot;
  double backoff_ms = options_.publish_backoff_initial_ms;
  const size_t attempts = std::max<size_t>(1, options_.publish_max_attempts);
  for (size_t attempt = 0; attempt < attempts; ++attempt) {
    snapshot = IndexSnapshot::FromDynamic(*master_, epoch,
                                          publish_pool_.get());
    if (snapshot != nullptr) break;
    m_.publish_retries->Inc();
    journal_.Record(obs::EventKind::kPublishRetry, epoch, attempt + 1);
    if (attempt + 1 == attempts) break;
    // Capped exponential backoff with multiplicative jitter in
    // [0.5, 1.0): decorrelates retry timing so publishers racing the
    // same transient fault don't re-collide in lockstep.
    const double jitter = 0.5 + 0.5 * backoff_rng_.NextDouble();
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(backoff_ms * jitter));
    backoff_ms = std::min(backoff_ms * 2.0, options_.publish_backoff_max_ms);
  }

  publish_in_flight_.store(false, std::memory_order_release);
  if (admission_ != nullptr) admission_->EndPublish();
  return snapshot;
}

uint64_t PitexService::ApplyUpdates(
    std::span<const EdgeInfluenceUpdate> updates,
    ApplyUpdatesOutcome* outcome) {
  Start();
  ApplyUpdatesOutcome local_outcome;
  if (outcome == nullptr) outcome = &local_outcome;
  // One trace per publish: the WAL append/fsync, freeze (with its
  // nested pack), swap and checkpoint spans below all attribute to it
  // through the thread's current trace.
  const obs::TraceContext trace = obs::TraceContext::Start();
  PITEX_TRACE_SCOPE(trace.id());
  PITEX_SPAN(kPublish);
  // The master check belongs under the lock too: reading master_ before
  // acquiring update_mutex_ was an unguarded access the annotation pass
  // rejected (harmless today only because Start() is ordered first, but
  // the contract is "writer state under update_mutex_", no exceptions).
  MutexLock lock(update_mutex_);
  PITEX_CHECK_MSG(master_ != nullptr,
                  "ApplyUpdates requires options.enable_updates");
  // Fence BEFORE anything reaches the log: a deposed primary (the term
  // authority moved past our adopted term while we were partitioned or
  // stopped) must not append, apply, or acknowledge — a fenced write
  // that reached the WAL would fork history against the promoted
  // follower's log, the exact split-brain fencing exists to prevent.
  // The check-then-append window is benign: promotion happens only
  // after the heartbeat timeout, orders of magnitude longer than one
  // ApplyUpdates call, and the authority advanced before the follower
  // acknowledged anything under its new term.
  if (options_.term_authority != nullptr) {
    const uint64_t current = options_.term_authority->Current();
    const uint64_t mine = term_.load(std::memory_order_acquire);
    if (current != mine) {
      m_.fenced_writes->Inc();
      journal_.Record(obs::EventKind::kFencedWrite, current, mine);
      *outcome = ApplyUpdatesOutcome::kFencedStaleTerm;
      return 0;
    }
  }
  // Validate BEFORE the WAL append, with exactly the checks recovery
  // applies on replay: once an invalid batch is committed it is a
  // durable poison record -- the in-process abort it used to cause
  // would recur as a recovery failure on every restart, and nothing
  // acknowledged since the last checkpoint would be reachable again.
  // Rejecting here keeps the log's invariant: every record it holds is
  // a record replay will accept.
  for (const EdgeInfluenceUpdate& update : updates) {
    bool valid = update.edge < network_->num_edges();
    for (const EdgeTopicEntry& entry : update.entries) {
      valid = valid && std::isfinite(entry.prob) && entry.prob >= 0.0 &&
              entry.prob <= 1.0;
    }
    if (!valid) {
      *outcome = ApplyUpdatesOutcome::kInvalidBatch;
      return 0;  // nothing logged, nothing applied
    }
  }
  if (wal_ != nullptr) {
    // Durable-before-apply: the batch reaches disk (and the fsync
    // commit point, per policy) before the master mutates or the caller
    // hears anything. A failed append/commit is truncated back out of
    // the log and the master is untouched -- the log's content is
    // always exactly the acknowledged-batch prefix, which is what makes
    // replay-to-bit-identical recovery possible.
    uint64_t lsn;
    {
      PITEX_SPAN(kWalAppend);
      lsn = wal_->Append(updates);
    }
    bool committed = lsn != 0;
    if (committed) {
      PITEX_SPAN(kWalFsync);
      committed = wal_->Sync();
    }
    m_.wal_appends->Inc(wal_->appends() - wal_appends_seen_);
    wal_appends_seen_ = wal_->appends();
    m_.wal_fsyncs->Inc(wal_->fsyncs() - wal_fsyncs_seen_);
    wal_fsyncs_seen_ = wal_->fsyncs();
    if (!committed) {
      m_.wal_append_failures->Inc();
      journal_.Record(obs::EventKind::kWalFailure, updates.size());
      *outcome = ApplyUpdatesOutcome::kWalFailed;
      return 0;  // rejected: not durable, not applied, not acknowledged
    }
    last_durable_lsn_ = lsn;
    durable_lsn_mirror_.store(lsn, std::memory_order_relaxed);
    for (const EdgeInfluenceUpdate& update : updates) {
      const auto it = std::lower_bound(touched_edges_.begin(),
                                       touched_edges_.end(), update.edge);
      if (it == touched_edges_.end() || *it != update.edge) {
        touched_edges_.insert(it, update.edge);
      }
    }
  }
  master_->ApplyUpdates(updates);
  applied_batches_.fetch_add(1, std::memory_order_relaxed);
  const uint64_t epoch = registry_.current_epoch() + 1;
  std::shared_ptr<const IndexSnapshot> snapshot = FreezeSnapshotLocked(epoch);
  if (snapshot == nullptr) {
    // Every freeze attempt failed. The repairs are NOT lost: they are
    // staged in the master, readers keep serving the previous epoch, and
    // the next successful publish folds them in. With durability on the
    // batch IS already committed to the WAL -- recovery replays it even
    // though no epoch carried it yet. The staleness gauges go nonzero
    // here: applied/durable advanced, published did not.
    m_.publish_failures->Inc();
    journal_.Record(obs::EventKind::kPublishFailure, epoch);
    *outcome = ApplyUpdatesOutcome::kPublishFailed;
    return 0;
  }
  {
    PITEX_SPAN(kSwap);
    registry_.Publish(snapshot);
  }
  published_batches_.store(applied_batches_.load(std::memory_order_relaxed),
                           std::memory_order_relaxed);
  published_lsn_mirror_.store(last_durable_lsn_, std::memory_order_relaxed);
  journal_.Record(obs::EventKind::kEpochSwap, epoch, last_durable_lsn_);
  work_cv_.NotifyAll();  // idle pumps may rebind eagerly on next query
  if (wal_ != nullptr) MaybeCheckpointLocked(*snapshot);
  *outcome = ApplyUpdatesOutcome::kPublished;
  return epoch;
}

void PitexService::MaybeCheckpointLocked(const IndexSnapshot& snapshot) {
  if (options_.checkpoint_every == 0) return;
  if (++publishes_since_checkpoint_ < options_.checkpoint_every) return;
  // Placed after the cadence early-returns: publishes that skip the
  // checkpoint get no (trivial) span.
  PITEX_SPAN(kCheckpoint);
  CheckpointManifest manifest;
  manifest.lsn = last_durable_lsn_;
  manifest.epoch = snapshot.epoch();
  manifest.index_version = master_->version();
  char name[64];
  std::snprintf(name, sizeof(name), "checkpoint-%016llx.rridx",
                static_cast<unsigned long long>(manifest.lsn));
  manifest.snapshot_file = name;
  // Model delta: the CURRENT topic vector of every diverged edge.
  // ReplaceEdgeTopics folds are last-writer-wins per edge, so final
  // state is exact without history -- which the truncation below is
  // about to destroy.
  manifest.model_delta.reserve(touched_edges_.size());
  for (const EdgeId e : touched_edges_) {
    EdgeInfluenceUpdate update;
    update.edge = e;
    const auto entries = master_->network().influence.EdgeTopics(e);
    update.entries.assign(entries.begin(), entries.end());
    manifest.model_delta.push_back(std::move(update));
  }
  if (!WriteCheckpoint(options_.durability_dir, *snapshot.rr_index(),
                       manifest)) {
    // Non-fatal: the previous checkpoint (or the full log) still
    // recovers everything. The counter stays >= the cadence, so the
    // next publish retries.
    m_.checkpoint_failures->Inc();
    journal_.Record(obs::EventKind::kCheckpointFailure, manifest.lsn);
    return;
  }
  publishes_since_checkpoint_ = 0;
  m_.checkpoints->Inc();
  journal_.Record(obs::EventKind::kCheckpoint, manifest.lsn, manifest.epoch);
  wal_->TruncateThrough(manifest.lsn);
}

void PitexService::AdoptTerm(uint64_t term) {
  term_.store(term, std::memory_order_release);
  m_.term->Set(static_cast<int64_t>(term));
}

WalRetentionHolds* PitexService::WalRetention() {
  MutexLock lock(update_mutex_);
  return wal_ == nullptr ? nullptr : &wal_->retention();
}

std::shared_ptr<const IndexSnapshot> PitexService::CurrentSnapshot() const {
  return registry_.Current();
}

uint64_t PitexService::current_epoch() const {
  return registry_.current_epoch();
}

size_t PitexService::SharedIndexSizeBytes() const {
  const auto snapshot = registry_.Current();
  if (snapshot == nullptr) return 0;
  if (snapshot->rr_index() != nullptr) {
    return snapshot->rr_index()->SizeBytes();
  }
  return snapshot->delay_snapshot().size();
}

void PitexService::ClearLatencyWindow() {
  MutexLock lock(stats_mutex_);
  for (WorkerCounters& counters : counters_) {
    counters.latency_ring.clear();
    counters.latency_pos = 0;
  }
}

obs::MetricsSnapshot PitexService::SnapshotMetrics() {
  return metrics_.Snapshot();
}

ServiceStats PitexService::Stats() {
  ServiceStats stats;
  std::vector<double> latencies;
  {
    MutexLock lock(stats_mutex_);
    stats.per_worker_served.reserve(counters_.size());
    for (const WorkerCounters& counters : counters_) {
      stats.per_worker_served.push_back(counters.served);
      stats.queries_served += counters.served;
      latencies.insert(latencies.end(), counters.latency_ring.begin(),
                       counters.latency_ring.end());
    }
  }
  // Scalar counters are a view over the registry handles -- the same
  // values SnapshotMetrics() exports, read here without a snapshot.
  stats.steals = m_.steals->Value();
  stats.degraded = m_.degraded->Value();
  stats.deadline_expired = m_.deadline_expired->Value();
  stats.shed_queue_full = m_.shed_queue_full->Value();
  stats.shed_rate_limited = m_.shed_rate_limited->Value();
  if (admission_ != nullptr) {
    const AdmissionController::Stats admission = admission_->GetStats();
    stats.admission_in_flight = admission.in_flight;
    stats.queue_depth = admission.queue_depth;
  }
  stats.publish_retries = m_.publish_retries->Value();
  stats.publish_failures = m_.publish_failures->Value();
  stats.wal_appends = m_.wal_appends->Value();
  stats.wal_fsyncs = m_.wal_fsyncs->Value();
  stats.wal_append_failures = m_.wal_append_failures->Value();
  stats.checkpoints = m_.checkpoints->Value();
  stats.checkpoint_failures = m_.checkpoint_failures->Value();
  stats.recovery_replayed_lsns = m_.recovery_replayed->Value();
  stats.publish_in_flight = publish_in_flight_.load(std::memory_order_acquire);
  if (stats.publish_in_flight) {
    // Watchdog: reading atomics (never update_mutex_, which the stuck
    // publish itself holds) keeps Stats() responsive during the hang.
    const int64_t started = publish_started_ns_.load(std::memory_order_relaxed);
    const int64_t now_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            Clock::now().time_since_epoch())
            .count();
    stats.publish_stuck =
        static_cast<double>(now_ns - started) * 1e-9 >
        options_.publish_stuck_after_seconds;
  }
  if (cache_ != nullptr) {
    const ResultCache::Stats cache_stats = cache_->GetStats();
    stats.cache_hits = cache_stats.hits;
    stats.cache_entries = cache_stats.entries;
    stats.cache_evictions = cache_stats.evictions;
  }
  // Cache hit counters advance per query while served counts flush per
  // run, so a concurrent poll can briefly observe hits > served; clamp
  // instead of letting the unsigned subtraction wrap.
  stats.cache_misses = stats.queries_served >= stats.cache_hits
                           ? stats.queries_served - stats.cache_hits
                           : 0;
  stats.epochs_published = registry_.epochs_published();
  stats.current_epoch = registry_.current_epoch();
  stats.snapshots_alive = registry_.AliveSnapshots();
  stats.latency = SummarizeLatencies(std::move(latencies));
  return stats;
}

}  // namespace pitex
