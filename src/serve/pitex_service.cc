#include "src/serve/pitex_service.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "src/index/index_io.h"
#include "src/util/check.h"

namespace pitex {

PitexService::PitexService(const SocialNetwork* network,
                           const ServeOptions& options)
    : network_(network), options_(options) {
  PITEX_CHECK(network != nullptr);
  options_.num_threads = std::max<size_t>(1, options_.num_threads);
  options_.top_n = std::max<size_t>(1, options_.top_n);
  options_.latency_window = std::max<size_t>(1, options_.latency_window);
  // Containers that Stats()/ClearLatencyWindow() traverse are sized here
  // and never reassigned again, so those methods stay safe to call
  // concurrently with a lazy Start() from another thread.
  deques_.resize(options_.num_threads);
  workers_ = std::vector<WorkerState>(options_.num_threads);
  counters_ = std::vector<WorkerCounters>(options_.num_threads);
  // Deterministic mode forbids the cache: a hit skips the engine, so the
  // worker's sampler RNG would not advance and every subsequent answer
  // on that worker would diverge from BatchEngine.
  if (options_.mode == ScheduleMode::kWorkStealing &&
      options_.cache_capacity > 0) {
    cache_ = std::make_unique<ResultCache>(options_.cache_capacity,
                                           options_.cache_shards);
  }
}

PitexService::~PitexService() {
  if (pool_ != nullptr) {
    {
      MutexLock lock(sched_mutex_);
      stop_ = true;
    }
    work_cv_.NotifyAll();
    // ThreadPool::~ThreadPool waits for the pumps, which drain every
    // still-pending query (promises must not be abandoned) and exit.
    pool_.reset();
  }
}

void PitexService::Start() {
  if (started_.load(std::memory_order_acquire)) return;
  MutexLock start_lock(start_mutex_);
  if (started_.load(std::memory_order_relaxed)) return;

  const size_t num_threads = options_.num_threads;
  pool_ = std::make_unique<ThreadPool>(num_threads);

  // Offline cost is paid once here, exactly as BatchEngine::Prepare does
  // (deterministic mode depends on the index derivation matching).
  const Method method = options_.engine.method;
  RrIndexOptions index_options;
  index_options.eps = options_.engine.eps;
  index_options.delta = options_.engine.delta;
  index_options.cap_k = options_.engine.index_cap_k;
  index_options.theta_per_vertex = options_.engine.index_theta_per_vertex;
  index_options.max_theta = options_.engine.index_max_theta;
  index_options.seed = options_.engine.seed;

  std::shared_ptr<const IndexSnapshot> snapshot;
  if (method == Method::kIndexEst || method == Method::kIndexEstPlus) {
    if (options_.enable_updates) {
      // Shadow master: repairs mutate it privately; every published
      // epoch is an immutable packed replica. The initial state is
      // bit-identical to a freshly built RrIndex with these options.
      // Writer-side state is update_mutex_ territory even during the
      // one-time init: an ApplyUpdates racing a concurrent lazy Start()
      // must observe either "no master" (and Start() itself below, via
      // its own Start() call) or the fully built one — found by the
      // -Wthread-safety annotation pass (docs/static_analysis.md).
      MutexLock update_lock(update_mutex_);
      master_ = std::make_unique<DynamicRrIndex>(*network_, index_options);
      master_->Build();
      if (options_.publish_threads > 1) {
        publish_pool_ = std::make_unique<ThreadPool>(options_.publish_threads);
      }
      snapshot = IndexSnapshot::FromDynamic(*master_, 1, publish_pool_.get());
    } else {
      index_options.num_build_threads = num_threads;
      auto index = std::make_unique<RrIndex>(*network_, index_options);
      // The pump pool doubles as the build pool (pumps are parked only
      // after the build); the index is bit-identical for any pool size.
      index->Build(pool_.get());
      snapshot = IndexSnapshot::Wrap(network_, std::move(index), "", 1);
    }
  } else {
    PITEX_CHECK_MSG(!options_.enable_updates,
                    "enable_updates requires kIndexEst or kIndexEstPlus");
    if (method == Method::kDelayMat) {
      DelayMatIndex prototype(*network_, index_options);
      prototype.Build();
      std::stringstream snapshot_stream;
      std::string error;
      PITEX_CHECK_MSG(SaveDelayMatIndex(prototype, snapshot_stream, &error),
                      error.c_str());
      snapshot =
          IndexSnapshot::Wrap(network_, nullptr, snapshot_stream.str(), 1);
    } else {
      snapshot = IndexSnapshot::Wrap(network_, nullptr, "", 1);
    }
  }
  registry_.Publish(std::move(snapshot));

  for (size_t i = 0; i < num_threads; ++i) {
    pool_->SubmitIndexed([this](size_t worker) { PumpLoop(worker); });
  }
  started_.store(true, std::memory_order_release);
}

void PitexService::EnqueueLocked(PendingQuery item, size_t sequence) {
  size_t worker;
  if (options_.mode == ScheduleMode::kDeterministic) {
    worker = sequence % deques_.size();
  } else {
    // User-affinity placement: the per-worker engine replicas keep
    // per-user state (IndexEst+ filter caches, DelayMat recovered
    // graphs), so a user's home deque is chosen by hash, keeping those
    // caches warm across the stream. Stealing remains the overflow
    // valve when a home deque runs hot.
    const uint64_t hash =
        static_cast<uint64_t>(item.query.user) * 0x9e3779b97f4a7c15ULL;
    worker = static_cast<size_t>(hash >> 32) % deques_.size();
  }
  deques_[worker].push_back(std::move(item));
}

bool PitexService::AnyStealableLocked(size_t thief) const {
  // Backlogs of one are left to their home worker: stealing the last
  // item buys nothing but a cold per-user cache on the thief. The
  // predicate must match TryStealLocked exactly, or an idle pump would
  // spin on work it can never claim.
  for (size_t v = 0; v < deques_.size(); ++v) {
    if (v != thief && deques_[v].size() >= 2) return true;
  }
  return false;
}

// Queries claimed per lock acquisition. Runs amortize the scheduler's
// mutex/condvar traffic across many queries while staying small enough
// that the tail of a skewed batch is still redistributed finely.
constexpr size_t kMaxRunLength = 16;

bool PitexService::TryStealLocked(size_t thief,
                                  std::vector<PendingQuery>* run) {
  size_t best = deques_.size();
  size_t best_size = 0;
  for (size_t v = 0; v < deques_.size(); ++v) {
    if (v == thief) continue;
    if (deques_[v].size() > best_size) {
      best = v;
      best_size = deques_[v].size();
    }
  }
  if (best == deques_.size() || best_size < 2) return false;
  // Steal half the victim's backlog (capped) from the back: the owner
  // pops the front, so thief and owner touch opposite ends, and one
  // steal rebalances a whole run instead of a single query.
  std::deque<PendingQuery>& victim = deques_[best];
  const size_t take = std::min(kMaxRunLength, victim.size() / 2);
  const size_t start = victim.size() - take;
  for (size_t i = start; i < victim.size(); ++i) {
    run->push_back(std::move(victim[i]));
  }
  victim.erase(victim.begin() + static_cast<ptrdiff_t>(start), victim.end());
  return true;
}

void PitexService::PumpLoop(size_t worker) {
  const bool stealing = options_.mode == ScheduleMode::kWorkStealing;
  std::vector<PendingQuery> run;
  run.reserve(kMaxRunLength);
  for (;;) {
    run.clear();
    bool stolen = false;
    {
      MutexLock lock(sched_mutex_);
      while (!stop_ && deques_[worker].empty() &&
             !(stealing && AnyStealableLocked(worker))) {
        work_cv_.Wait(lock);
      }
      std::deque<PendingQuery>& own = deques_[worker];
      if (!own.empty()) {
        // Claim a run of the own backlog. Halving (instead of taking it
        // all) leaves the rest visible to thieves, so a worker stuck on
        // an expensive run is still relieved.
        const size_t take =
            std::min(kMaxRunLength, std::max<size_t>(1, own.size() / 2));
        for (size_t i = 0; i < take; ++i) {
          run.push_back(std::move(own.front()));
          own.pop_front();
        }
      } else if (stealing && TryStealLocked(worker, &run)) {
        stolen = true;
      } else if (stop_) {
        return;  // drained: stop only ever fires after pending work
      } else {
        continue;  // another pump took the work this wakeup announced
      }
    }
    ServeRun(worker, &run, stolen);
  }
}

void PitexService::BindWorker(WorkerState* state,
                              std::shared_ptr<const IndexSnapshot> snapshot,
                              size_t worker) {
  EngineOptions worker_options = options_.engine;
  worker_options.seed = options_.engine.seed + worker;
  auto engine =
      std::make_unique<PitexEngine>(&snapshot->network(), worker_options);
  if (snapshot->rr_index() != nullptr) {
    engine->UseSharedRrIndex(snapshot->rr_index());
  } else if (!snapshot->delay_snapshot().empty()) {
    // DelayMat caches recovered graphs per query user and must not be
    // shared: hydrate a private replica from the serialized prototype.
    std::stringstream snapshot_stream(snapshot->delay_snapshot());
    std::string error;
    auto replica =
        LoadDelayMatIndex(snapshot->network(), snapshot_stream, &error);
    PITEX_CHECK_MSG(replica != nullptr, error.c_str());
    engine->AdoptDelayMatIndex(std::move(replica));
  }
  engine->BuildIndex();  // wraps/attaches; cheap for adopted indexes
  state->engine = std::move(engine);
  state->engine_epoch = snapshot->epoch();
  state->snapshot = std::move(snapshot);  // pin: keeps the epoch alive
}

void PitexService::ServeRun(size_t worker, std::vector<PendingQuery>* run,
                            bool stolen) {
  // Epoch pickup is per run: a publish mid-run becomes visible on the
  // next claim. Answers are still labeled with the epoch that actually
  // computed them (state.engine_epoch), so correctness is unaffected.
  std::shared_ptr<const IndexSnapshot> snapshot = registry_.Current();
  WorkerState& state = workers_[worker];
  if (state.engine == nullptr || state.engine_epoch != snapshot->epoch()) {
    BindWorker(&state, std::move(snapshot), worker);
  }

  ResultCacheKey key;
  key.top_n = static_cast<uint32_t>(options_.top_n);
  key.method = static_cast<uint8_t>(options_.engine.method);
  key.epoch = state.engine_epoch;

  double latencies[kMaxRunLength];
  ServedResult outs[kMaxRunLength];
  size_t count = 0;

  for (PendingQuery& item : *run) {
    ServedResult& out = outs[count];
    out.epoch = state.engine_epoch;
    out.worker = static_cast<uint32_t>(worker);
    out.stolen = stolen;
    out.cache_hit = false;
    key.user = item.query.user;
    key.k = static_cast<uint32_t>(item.query.k);

    if (cache_ != nullptr && cache_->Lookup(key, &out.ranking)) {
      out.cache_hit = true;
      out.result = PitexResult{};
      out.result.tags = out.ranking.front().tags;
      out.result.influence = out.ranking.front().influence;
    } else {
      if (options_.top_n == 1) {
        out.result = state.engine->Explore(item.query);
        out.ranking.assign(
            1, RankedTagSet{out.result.tags, out.result.influence});
      } else {
        out.ranking = state.engine->ExploreTopN(item.query, options_.top_n);
        out.result = PitexResult{};
        if (!out.ranking.empty()) {
          out.result.tags = out.ranking.front().tags;
          out.result.influence = out.ranking.front().influence;
        }
      }
      if (cache_ != nullptr) cache_->Insert(key, out.ranking);
    }

    latencies[count++] =
        std::chrono::duration<double>(Clock::now() - item.enqueued).count();
  }

  // Flush the counters BEFORE delivering: once the batch waiter (or a
  // future holder) unblocks, Stats() must already account for every
  // query of this run. One flush per run, not per query.
  {
    MutexLock lock(stats_mutex_);
    WorkerCounters& counters = counters_[worker];
    counters.served += count;
    if (stolen) counters.steals += count;
    for (size_t i = 0; i < count; ++i) {
      if (counters.latency_ring.size() < options_.latency_window) {
        counters.latency_ring.push_back(latencies[i]);
      } else {
        counters.latency_ring[counters.latency_pos] = latencies[i];
        counters.latency_pos =
            (counters.latency_pos + 1) % counters.latency_ring.size();
      }
    }
  }

  for (size_t i = 0; i < count; ++i) {
    PendingQuery& item = (*run)[i];
    if (item.promise != nullptr) {
      item.promise->set_value(std::move(outs[i]));
    } else if (item.slot != nullptr) {
      *item.slot = std::move(outs[i]);
    }
    if (item.remaining != nullptr &&
        item.remaining->fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Lock/unlock pairs with the waiter's predicate check so the final
      // notify cannot slip between its check and its wait.
      MutexLock lock(batch_mutex_);
      batch_cv_.NotifyAll();
    }
  }
}

std::vector<ServedResult> PitexService::ServeAll(
    std::span<const PitexQuery> queries) {
  if (queries.empty()) return {};
  Start();
  std::vector<ServedResult> results(queries.size());
  std::atomic<size_t> remaining{queries.size()};
  const auto now = Clock::now();
  {
    MutexLock lock(sched_mutex_);
    for (size_t i = 0; i < queries.size(); ++i) {
      PendingQuery item;
      item.query = queries[i];
      item.enqueued = now;
      item.slot = &results[i];
      item.remaining = &remaining;
      // Batch-local i % N placement: in deterministic mode this IS the
      // assignment (BatchEngine's round-robin); in work-stealing mode it
      // is only the initial placement.
      EnqueueLocked(std::move(item), i);
    }
  }
  work_cv_.NotifyAll();
  MutexLock lock(batch_mutex_);
  while (remaining.load(std::memory_order_acquire) != 0) {
    batch_cv_.Wait(lock);
  }
  return results;
}

std::future<ServedResult> PitexService::Submit(const PitexQuery& query) {
  Start();
  PendingQuery item;
  item.query = query;
  item.enqueued = Clock::now();
  item.promise = std::make_unique<std::promise<ServedResult>>();
  std::future<ServedResult> future = item.promise->get_future();
  {
    MutexLock lock(sched_mutex_);
    EnqueueLocked(std::move(item), stream_seq_++);
  }
  work_cv_.NotifyAll();
  return future;
}

uint64_t PitexService::ApplyUpdates(
    std::span<const EdgeInfluenceUpdate> updates) {
  Start();
  // The master check belongs under the lock too: reading master_ before
  // acquiring update_mutex_ was an unguarded access the annotation pass
  // rejected (harmless today only because Start() is ordered first, but
  // the contract is "writer state under update_mutex_", no exceptions).
  MutexLock lock(update_mutex_);
  PITEX_CHECK_MSG(master_ != nullptr,
                  "ApplyUpdates requires options.enable_updates");
  master_->ApplyUpdates(updates);
  const uint64_t epoch = registry_.current_epoch() + 1;
  registry_.Publish(
      IndexSnapshot::FromDynamic(*master_, epoch, publish_pool_.get()));
  work_cv_.NotifyAll();  // idle pumps may rebind eagerly on next query
  return epoch;
}

std::shared_ptr<const IndexSnapshot> PitexService::CurrentSnapshot() const {
  return registry_.Current();
}

uint64_t PitexService::current_epoch() const {
  return registry_.current_epoch();
}

size_t PitexService::SharedIndexSizeBytes() const {
  const auto snapshot = registry_.Current();
  if (snapshot == nullptr) return 0;
  if (snapshot->rr_index() != nullptr) {
    return snapshot->rr_index()->SizeBytes();
  }
  return snapshot->delay_snapshot().size();
}

void PitexService::ClearLatencyWindow() {
  MutexLock lock(stats_mutex_);
  for (WorkerCounters& counters : counters_) {
    counters.latency_ring.clear();
    counters.latency_pos = 0;
  }
}

ServiceStats PitexService::Stats() {
  ServiceStats stats;
  std::vector<double> latencies;
  {
    MutexLock lock(stats_mutex_);
    stats.per_worker_served.reserve(counters_.size());
    for (const WorkerCounters& counters : counters_) {
      stats.per_worker_served.push_back(counters.served);
      stats.queries_served += counters.served;
      stats.steals += counters.steals;
      latencies.insert(latencies.end(), counters.latency_ring.begin(),
                       counters.latency_ring.end());
    }
  }
  if (cache_ != nullptr) {
    const ResultCache::Stats cache_stats = cache_->GetStats();
    stats.cache_hits = cache_stats.hits;
    stats.cache_entries = cache_stats.entries;
    stats.cache_evictions = cache_stats.evictions;
  }
  // Cache hit counters advance per query while served counts flush per
  // run, so a concurrent poll can briefly observe hits > served; clamp
  // instead of letting the unsigned subtraction wrap.
  stats.cache_misses = stats.queries_served >= stats.cache_hits
                           ? stats.queries_served - stats.cache_hits
                           : 0;
  stats.epochs_published = registry_.epochs_published();
  stats.current_epoch = registry_.current_epoch();
  stats.snapshots_alive = registry_.AliveSnapshots();
  stats.latency = SummarizeLatencies(std::move(latencies));
  return stats;
}

}  // namespace pitex
