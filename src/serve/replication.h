// Replicated serving: WAL shipping, follower replay, and health-checked
// failover (docs/robustness.md, "Replication & failover").
//
// PR 8 made replay deterministic — the repair RNG is keyed by
// (seed, lsn, version), so two services that apply the same
// acknowledged batches in LSN order are bit-identical by construction.
// This file turns that property into a hot standby: a WalShipper on the
// primary tails the committed WAL and streams records to a
// FollowerService, which bootstraps from a shipped checkpoint, applies
// the records through the ordinary deterministic replay path, serves
// read queries the whole time, and promotes itself to primary when the
// primary's heartbeats stop. Term fencing keeps a deposed primary from
// acknowledging writes after the promotion (no split-brain
// dual-writers).
//
// The pieces, bottom-up:
//
//   * Frame codec — every message on the wire is one length-framed,
//     checksummed frame:
//
//       magic "PXRP" u32 LE | type u8 | payload-length u32 LE |
//       payload | fnv64(type | length | payload) u64 LE
//
//     DecodeReplFrame distinguishes "incomplete" (a prefix of a valid
//     frame: wait for more bytes — the stream analogue of the WAL's
//     torn tail) from "damaged" (checksum or header mismatch: discard
//     and realign at the next magic). tests/replication_test.cc pins
//     both byte-by-byte, like wal_test.cc's torn-tail sweep.
//
//   * ReplicationTransport — a duplex byte pipe with framed receive.
//     Two implementations: an in-process pair (two mutex+condvar byte
//     queues; unit tests, single-process drills) and an fd transport
//     over a Unix-domain socket(pair) for the fork-based SIGKILL
//     drills. Both carry raw bytes, not parsed frames, so injected
//     damage (torn prefixes, duplicated or reordered frames) exercises
//     the same realignment path real corruption would.
//
//   * TermAuthority (src/serve/term_authority.h) — the fencing oracle:
//     a monotonic term counter both sides consult. A write is acknowledged only while the writer's
//     term matches the authority's current term; promotion advances the
//     term, so a deposed primary's late writes fail with
//     ApplyUpdatesOutcome::kFencedStaleTerm instead of forking history.
//     In-process (atomic) for tests, file-backed (TERM file, atomic
//     replace) for cross-process drills. This models the third-party
//     coordination service a production deployment would consult; the
//     single-writer guarantee is only as strong as the authority's
//     Advance atomicity (the file variant assumes one candidate per
//     election, which the drills arrange).
//
//   * WalShipper — primary side. Sends the current checkpoint (raw
//     manifest + snapshot bytes, src/serve/recovery.h) as a bootstrap,
//     then tails the WAL directory and ships every record up to the
//     primary's durable LSN, heartbeating in between. Registers a
//     retention hold (WalRetentionHolds) pinning every un-acked LSN so
//     checkpoint truncation can never race a lagging follower out of
//     catch-up range, and rewinds its cursor on a follower's resync
//     request. All shipping fail points live in its send path so the
//     same faults drill both transports:
//
//       repl/ship_drop      frame silently dropped
//       repl/ship_dup       frame sent twice
//       repl/ship_reorder   frame held and sent after its successor
//       repl/ship_torn      only a prefix of the frame is sent
//       repl/heartbeat_drop heartbeats dropped (promotion drills)
//       repl/partition      every outbound frame dropped
//
//   * FollowerService — replica side. Installs the shipped checkpoint
//     into its own durability directory, starts an inner PitexService
//     there (recovery re-validates everything: manifest checksum,
//     snapshot fingerprint), then applies shipped records through
//     PitexService::ApplyUpdates — the follower is itself durable, and
//     its answers are bit-identical to the primary's by the determinism
//     argument above. Records must arrive densely: lsn <= applied is a
//     duplicate (dropped), lsn == applied + 1 applies, a gap or a
//     damaged frame triggers a resync request naming the last applied
//     LSN. When no primary traffic arrives for heartbeat_timeout the
//     follower advances the term authority, adopts the new term, and
//     keeps serving — now as the primary. Replication lag (primary
//     durable LSN − applied LSN), the current term, and the full
//     duplicate/resync/reject ledger export through the inner service's
//     metrics registry (docs/observability.md).

#ifndef PITEX_SRC_SERVE_REPLICATION_H_
#define PITEX_SRC_SERVE_REPLICATION_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "src/index/dynamic_index.h"
#include "src/obs/metrics.h"
#include "src/serve/pitex_service.h"
#include "src/serve/recovery.h"
#include "src/serve/term_authority.h"
#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace pitex {

// ---------------------------------------------------------------------------
// Frame codec

enum class ReplFrameType : uint8_t {
  /// Primary -> follower, once per connection before anything else:
  /// the bootstrap checkpoint (possibly "none yet"). Payload:
  /// term u64 | present u8 | manifest string | snapshot-name string |
  /// snapshot bytes string.
  kCheckpoint = 1,
  /// One committed WAL record. Payload: term u64 | lsn u64 |
  /// batch-size u64 | { edge u32 | n u64 | {topic u32, prob f64} * n }.
  kRecord = 2,
  /// Liveness + lag beacon. Payload: term u64 | durable-lsn u64.
  kHeartbeat = 3,
  /// Follower -> primary: records through this LSN are applied (and
  /// durable in the follower's own log). Payload: applied-lsn u64.
  kAck = 4,
  /// Follower -> primary: resend everything after this LSN (gap or
  /// damaged frame detected). Payload: from-lsn u64.
  kResync = 5,
};

struct ReplFrame {
  ReplFrameType type = ReplFrameType::kHeartbeat;
  std::string payload;
};

enum class ReplDecodeStatus : uint8_t {
  /// A complete, checksum-verified frame was decoded.
  kFrame,
  /// The bytes are a proper prefix of a plausible frame: read more.
  /// (A stream that ends here is the analogue of a WAL torn tail.)
  kNeedMore,
  /// Header or checksum mismatch: damaged bytes. Discard and realign
  /// (ReplResyncSkip) — the sender will be asked to resend.
  kBad,
};

/// Serializes one frame (header, payload, trailing checksum).
std::string EncodeReplFrame(const ReplFrame& frame);

/// Attempts to decode one frame from the front of `bytes`. On kFrame,
/// `*frame` holds the decoded frame and `*consumed` the bytes to
/// discard; on kNeedMore/kBad both outputs are untouched.
ReplDecodeStatus DecodeReplFrame(std::string_view bytes, ReplFrame* frame,
                                 size_t* consumed);

/// After kBad: bytes to discard so decoding resumes at the next
/// occurrence of the frame magic (>= 1; the whole buffer when no magic
/// candidate follows).
size_t ReplResyncSkip(std::string_view bytes);

// Typed payload encode/decode. Decoders return false on short, corrupt
// or oversized payloads (damage the outer checksum did not catch only
// arises from a buggy or malicious peer — rejecting is the response
// either way).

struct ReplCheckpointMsg {
  uint64_t term = 0;
  ShippedCheckpoint checkpoint;
};
struct ReplRecordMsg {
  uint64_t term = 0;
  uint64_t lsn = 0;
  std::vector<EdgeInfluenceUpdate> updates;
};
struct ReplHeartbeatMsg {
  uint64_t term = 0;
  uint64_t durable_lsn = 0;
};

ReplFrame EncodeCheckpointMsg(const ReplCheckpointMsg& msg);
ReplFrame EncodeRecordMsg(const ReplRecordMsg& msg);
ReplFrame EncodeHeartbeatMsg(const ReplHeartbeatMsg& msg);
ReplFrame EncodeAckMsg(uint64_t applied_lsn);
ReplFrame EncodeResyncMsg(uint64_t from_lsn);
bool DecodeCheckpointMsg(const ReplFrame& frame, ReplCheckpointMsg* msg);
bool DecodeRecordMsg(const ReplFrame& frame, ReplRecordMsg* msg);
bool DecodeHeartbeatMsg(const ReplFrame& frame, ReplHeartbeatMsg* msg);
bool DecodeAckMsg(const ReplFrame& frame, uint64_t* applied_lsn);
bool DecodeResyncMsg(const ReplFrame& frame, uint64_t* from_lsn);

// ---------------------------------------------------------------------------
// Transport

class ReplicationTransport {
 public:
  enum class RecvStatus : uint8_t {
    /// `*frame` holds a complete, checksum-verified frame.
    kFrame,
    /// No complete frame arrived within the timeout.
    kTimeout,
    /// Damaged bytes were discarded (checksum/header mismatch). The
    /// caller should request a resync; the next Recv resumes at the
    /// realignment point.
    kBadFrame,
    /// Peer closed and every decodable frame has been drained. A torn
    /// trailing frame (peer died mid-send) is silently discarded — the
    /// stream analogue of the WAL torn-tail rule.
    kClosed,
  };

  virtual ~ReplicationTransport() = default;

  /// Frame-level send (encode + SendBytes).
  bool Send(const ReplFrame& frame) { return SendBytes(EncodeReplFrame(frame)); }

  /// Raw byte send — the fault-injection seam: the shipper mangles the
  /// encoded bytes (torn prefix, duplicate, reorder) before handing
  /// them here, so both transports carry the damage identically.
  /// Returns false when the peer is gone.
  virtual bool SendBytes(std::string bytes) = 0;

  /// Blocks up to `timeout` for one frame. Thread-safe against a
  /// concurrent sender on the same endpoint; a single receiver is
  /// assumed.
  virtual RecvStatus Recv(ReplFrame* frame,
                          std::chrono::milliseconds timeout) = 0;

  /// Shuts the endpoint down; the peer's Recv drains then sees kClosed,
  /// its sends fail. Idempotent.
  virtual void Close() = 0;
};

/// Two connected in-process endpoints (a <-> b). Either side may be
/// used from different threads; each endpoint is one sender + one
/// receiver.
std::pair<std::unique_ptr<ReplicationTransport>,
          std::unique_ptr<ReplicationTransport>>
MakeInProcessTransportPair();

/// Wraps a connected stream fd (socketpair(AF_UNIX, SOCK_STREAM) or a
/// connected Unix-domain socket) — the transport for fork-based drills,
/// where primary and follower are separate processes. Takes ownership
/// of the fd.
std::unique_ptr<ReplicationTransport> MakeFdTransport(int fd);

// ---------------------------------------------------------------------------
// WalShipper (primary side)

struct WalShipperOptions {
  /// The primary's durability directory (WAL segments + checkpoints).
  std::string wal_dir;
  /// The primary's current term, stamped on every shipped frame.
  uint64_t term = 1;
  /// Heartbeat cadence. The follower's heartbeat_timeout should be a
  /// small multiple of this.
  double heartbeat_interval_ms = 20.0;
  /// Idle poll cadence for new WAL records / inbound acks.
  double poll_interval_ms = 2.0;
  /// Records shipped per poll wake (bounds the burst after a follower
  /// reconnects far behind).
  size_t max_records_per_poll = 256;
};

/// Tails the primary's committed WAL and streams it to one follower.
/// Owns a background thread between Start() and Stop(). Shipping is
/// asynchronous: ApplyUpdates acknowledges on local durability, and the
/// acked_lsn() watermark tells callers how far the follower has
/// confirmed — a caller wanting semi-synchronous replication waits on
/// it (the failover drill does exactly that for its acknowledged
/// rounds).
class WalShipper {
 public:
  /// `primary` and `transport` must outlive the shipper. Metrics
  /// register into the primary's registry
  /// (pitex_repl_records_shipped_total, pitex_repl_shipped_lsn,
  /// pitex_repl_acked_lsn, ...).
  WalShipper(PitexService* primary, ReplicationTransport* transport,
             const WalShipperOptions& options);
  ~WalShipper();

  WalShipper(const WalShipper&) = delete;
  WalShipper& operator=(const WalShipper&) = delete;

  /// Starts the primary (if needed), registers the retention hold,
  /// ships the bootstrap checkpoint, and launches the shipping thread.
  /// Idempotent.
  void Start();
  /// Stops the thread and releases the retention hold. Idempotent;
  /// the destructor calls it.
  void Stop();

  /// Highest LSN handed to the transport so far.
  uint64_t shipped_lsn() const {
    return shipped_lsn_.load(std::memory_order_acquire);
  }
  /// Highest LSN the follower has acknowledged as applied.
  uint64_t acked_lsn() const {
    return acked_lsn_.load(std::memory_order_acquire);
  }

 private:
  void Loop();
  /// Send with the repl/* fail points applied (drop, dup, reorder,
  /// torn, partition; heartbeat_drop for heartbeats only).
  bool SendFrameWithFaults(const ReplFrame& frame);
  void HandleInbound(const ReplFrame& frame, uint64_t* cursor);

  PitexService* primary_;
  ReplicationTransport* transport_;
  WalShipperOptions options_;

  std::thread thread_;
  std::atomic<bool> stop_{false};
  bool started_ = false;

  WalRetentionHolds* retention_ = nullptr;  // owned by the primary's WAL
  uint64_t hold_id_ = 0;

  std::atomic<uint64_t> shipped_lsn_{0};
  std::atomic<uint64_t> acked_lsn_{0};
  /// Frame held back by an armed repl/ship_reorder (sent after its
  /// successor). Shipping-thread-only.
  std::string reordered_;

  obs::Counter* records_shipped_ = nullptr;
  obs::Counter* heartbeats_sent_ = nullptr;
  obs::Counter* resyncs_served_ = nullptr;
  obs::Gauge* shipped_gauge_ = nullptr;
  obs::Gauge* acked_gauge_ = nullptr;
};

// ---------------------------------------------------------------------------
// FollowerService (replica side)

struct FollowerOptions {
  /// Options for the inner PitexService. Must enable updates, name a
  /// durability directory private to this follower, and otherwise match
  /// the primary's engine options — determinism makes the replica
  /// bit-identical only when both sides run the same configuration.
  ServeOptions serve;
  /// Promote after this long without any primary frame. Should be a
  /// small multiple of the shipper's heartbeat_interval_ms.
  double heartbeat_timeout_ms = 250.0;
  /// Transport receive granularity; also bounds how stale the promotion
  /// check can be.
  double recv_timeout_ms = 5.0;
  /// How long Start() waits for the bootstrap checkpoint frame.
  double bootstrap_timeout_ms = 60000.0;
  /// Fencing oracle shared with the primary. Required: promotion
  /// without fencing would be a split-brain generator.
  TermAuthority* authority = nullptr;
};

/// A continuously-serving replica: applies shipped records through the
/// inner service's deterministic replay, answers read queries from it
/// the whole time, and promotes itself when the primary goes quiet.
class FollowerService {
 public:
  /// `network`, `transport` and `options.authority` must outlive the
  /// follower.
  FollowerService(const SocialNetwork* network,
                  ReplicationTransport* transport,
                  const FollowerOptions& options);
  ~FollowerService();

  FollowerService(const FollowerService&) = delete;
  FollowerService& operator=(const FollowerService&) = delete;

  /// Launches the replication loop and blocks until the bootstrap
  /// checkpoint is installed and the inner service is serving (or the
  /// bootstrap times out / the transport dies: false with `*error`).
  bool Start(std::string* error = nullptr);
  /// Stops the loop thread. The inner service keeps serving (a promoted
  /// follower outlives its replication link). Idempotent.
  void Stop();

  /// The inner serving instance: read queries before promotion, full
  /// primary duties after. Valid once Start() returned true.
  PitexService& service() { return *inner_; }

  bool promoted() const { return promoted_.load(std::memory_order_acquire); }
  /// Highest densely-applied LSN.
  uint64_t applied_lsn() const {
    return applied_lsn_.load(std::memory_order_acquire);
  }
  /// The term this follower currently operates under (the primary's
  /// until promotion, its own after).
  uint64_t term() const { return term_.load(std::memory_order_acquire); }

 private:
  void Loop();
  bool Bootstrap(const ReplCheckpointMsg& msg, std::string* error);
  void FailBootstrap(std::string message);
  void HandleRecord(const ReplRecordMsg& msg,
                    std::chrono::steady_clock::time_point now);
  /// Gap, damaged frame, or local apply failure: ask the shipper to
  /// resend everything after the last applied LSN.
  void RequestResync();
  void MaybePromote(std::chrono::steady_clock::time_point now);
  void RegisterMetrics();

  const SocialNetwork* network_;
  ReplicationTransport* transport_;
  FollowerOptions options_;
  std::unique_ptr<PitexService> inner_;

  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> promoted_{false};
  std::atomic<uint64_t> applied_lsn_{0};
  std::atomic<uint64_t> term_{0};

  Mutex bootstrap_mutex_;
  CondVar bootstrap_cv_;
  bool bootstrapped_ PITEX_GUARDED_BY(bootstrap_mutex_) = false;
  std::string bootstrap_error_ PITEX_GUARDED_BY(bootstrap_mutex_);
  bool bootstrap_failed_ PITEX_GUARDED_BY(bootstrap_mutex_) = false;

  // Loop-thread-only state (no lock needed).
  std::chrono::steady_clock::time_point last_traffic_;
  bool transport_closed_ = false;
  /// Applied LSN as of the last heartbeat that showed lag; a second
  /// lagging heartbeat with no progress in between means the missing
  /// records are not merely in flight — request a resync. (A dropped
  /// FINAL record leaves no later frame to expose the gap; heartbeats
  /// are the liveness prod that heals it.)
  uint64_t stalled_applied_ = UINT64_MAX;

  obs::Counter* records_applied_ = nullptr;
  obs::Counter* duplicates_dropped_ = nullptr;
  obs::Counter* resync_requests_ = nullptr;
  obs::Counter* frames_rejected_ = nullptr;
  obs::Counter* stale_term_frames_ = nullptr;
  obs::Counter* heartbeats_seen_ = nullptr;
  obs::Gauge* applied_gauge_ = nullptr;
  obs::Gauge* primary_lsn_gauge_ = nullptr;
  obs::Gauge* lag_gauge_ = nullptr;
  obs::Gauge* promoted_gauge_ = nullptr;
};

}  // namespace pitex

#endif  // PITEX_SRC_SERVE_REPLICATION_H_
