#include "src/serve/admission.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"

namespace pitex {

namespace {

// Fibonacci-style mixing so consecutive VertexIds land in unrelated
// buckets (same multiplier as the serving layer's affinity hash).
size_t BucketIndex(VertexId user, size_t buckets) {
  const uint64_t mixed =
      (static_cast<uint64_t>(user) + 1) * 0x9e3779b97f4a7c15ULL;
  return static_cast<size_t>(mixed >> 32) % buckets;
}

}  // namespace

AdmissionController::AdmissionController(const AdmissionOptions& options)
    : options_(options) {
  PITEX_CHECK_MSG(options_.publish_headroom > 0.0 &&
                      options_.publish_headroom <= 1.0,
                  "publish_headroom must be in (0, 1]");
  PITEX_CHECK(options_.user_rate_limit >= 0.0);
  PITEX_CHECK(options_.user_burst >= 1.0);
  PITEX_CHECK(options_.user_buckets >= 1);
  if (options_.user_rate_limit > 0.0) {
    buckets_.resize(options_.user_buckets);
  }
  depth_ring_.reserve(std::max<size_t>(options_.depth_window, 1));
}

AdmissionVerdict AdmissionController::TryAdmit(VertexId user,
                                               Clock::time_point now) {
  MutexLock lock(mutex_);
  // Record the depth the arrival observed (pre-decision), so the
  // percentiles describe offered load, not just admitted load.
  const size_t window = std::max<size_t>(options_.depth_window, 1);
  const auto depth_sample = static_cast<double>(in_flight_);
  if (depth_ring_.size() < window) {
    depth_ring_.push_back(depth_sample);
  } else {
    depth_ring_[depth_pos_] = depth_sample;
    depth_pos_ = (depth_pos_ + 1) % window;
  }

  if (options_.max_queue_depth > 0) {
    // Publish priority: while a publish is in flight the bound contracts
    // so query load sheds early and the freeze+pack keeps CPU headroom.
    size_t bound = options_.max_queue_depth;
    if (publish_active_ > 0) {
      bound = std::max<size_t>(
          1, static_cast<size_t>(std::floor(
                 static_cast<double>(bound) * options_.publish_headroom)));
    }
    if (in_flight_ >= bound) {
      ++shed_queue_full_;
      return AdmissionVerdict::kShedQueueFull;
    }
  }

  if (options_.user_rate_limit > 0.0) {
    Bucket& bucket = buckets_[BucketIndex(user, buckets_.size())];
    if (!bucket.touched) {
      // First sighting: full burst allowance, clock anchored at `now`
      // (anchoring at time_point::min() would refill to +inf tokens).
      bucket.tokens = options_.user_burst;
      bucket.refilled = now;
      bucket.touched = true;
    } else if (now > bucket.refilled) {
      const double elapsed =
          std::chrono::duration<double>(now - bucket.refilled).count();
      bucket.tokens = std::min(options_.user_burst,
                               bucket.tokens +
                                   elapsed * options_.user_rate_limit);
      bucket.refilled = now;
    }
    if (bucket.tokens < 1.0) {
      ++shed_rate_limited_;
      return AdmissionVerdict::kShedRateLimited;
    }
    bucket.tokens -= 1.0;
  }

  ++in_flight_;
  ++admitted_;
  return AdmissionVerdict::kAdmit;
}

void AdmissionController::Release(size_t count) {
  if (count == 0) return;
  MutexLock lock(mutex_);
  PITEX_CHECK_MSG(in_flight_ >= count, "Release without matching TryAdmit");
  in_flight_ -= count;
}

void AdmissionController::BeginPublish() {
  MutexLock lock(mutex_);
  ++publish_active_;
}

void AdmissionController::EndPublish() {
  MutexLock lock(mutex_);
  PITEX_CHECK_MSG(publish_active_ > 0, "EndPublish without BeginPublish");
  --publish_active_;
}

AdmissionController::Stats AdmissionController::GetStats() const {
  Stats stats;
  std::vector<double> depths;
  {
    MutexLock lock(mutex_);
    stats.admitted = admitted_;
    stats.shed_queue_full = shed_queue_full_;
    stats.shed_rate_limited = shed_rate_limited_;
    stats.in_flight = in_flight_;
    depths = depth_ring_;
  }
  stats.queue_depth = SummarizeLatencies(std::move(depths));
  return stats;
}

}  // namespace pitex
