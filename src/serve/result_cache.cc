#include "src/serve/result_cache.h"

#include <algorithm>

#include "src/obs/metrics.h"
#include "src/util/failpoint.h"

namespace pitex {

ResultCache::ResultCache(size_t capacity, size_t num_shards)
    : capacity_(capacity) {
  const size_t count = std::max<size_t>(1, num_shards);
  shards_.reserve(count);
  // Ceil-divide so the shards together hold at least `capacity` entries.
  const size_t per_shard = capacity == 0 ? 0 : (capacity + count - 1) / count;
  for (size_t i = 0; i < count; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->capacity = per_shard;
    shards_.push_back(std::move(shard));
  }
}

ResultCache::Shard& ResultCache::ShardFor(const ResultCacheKey& key) {
  return *shards_[ResultCacheKeyHash{}(key) % shards_.size()];
}

bool ResultCache::Lookup(const ResultCacheKey& key,
                         std::vector<RankedTagSet>* out) {
  if (!enabled()) return false;
  PITEX_COUNT(kCacheProbes, 1);
  // Chaos hook, evaluated before the shard lock: a fired fault is a
  // forced miss, exactly the semantics of a shard that could not be
  // locked in time. The caller recomputes -- correctness is unaffected,
  // which is the property the chaos suite pins.
  if (PITEX_FAILPOINT("result_cache/shard_lock")) return false;
  Shard& shard = ShardFor(key);
  MutexLock lock(shard.mutex);
  const auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    ++shard.misses;
    return false;
  }
  ++shard.hits;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  *out = it->second->second;
  return true;
}

void ResultCache::Insert(const ResultCacheKey& key,
                         const std::vector<RankedTagSet>& ranking) {
  if (!enabled()) return;
  PITEX_COUNT(kCacheInserts, 1);
  // Same fault as Lookup's: the insert is dropped, as if the shard lock
  // was contended past a deadline. Caching is memoization, so a dropped
  // insert only costs a future recompute.
  if (PITEX_FAILPOINT("result_cache/shard_lock")) return;
  Shard& shard = ShardFor(key);
  MutexLock lock(shard.mutex);
  const auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    it->second->second = ranking;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.emplace_front(key, ranking);
  shard.index.emplace(key, shard.lru.begin());
  ++shard.insertions;
  while (shard.lru.size() > shard.capacity) {
    shard.index.erase(shard.lru.back().first);
    shard.lru.pop_back();
    ++shard.evictions;
  }
}

ResultCache::Stats ResultCache::GetStats() const {
  Stats stats;
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mutex);
    stats.hits += shard->hits;
    stats.misses += shard->misses;
    stats.insertions += shard->insertions;
    stats.evictions += shard->evictions;
    stats.entries += shard->lru.size();
  }
  return stats;
}

}  // namespace pitex
