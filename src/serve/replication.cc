#include "src/serve/replication.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <sstream>

#include "src/obs/journal.h"
#include "src/serve/wal.h"
#include "src/util/check.h"
#include "src/util/failpoint.h"
#include "src/util/serialize.h"

namespace pitex {
namespace {

// ---------------------------------------------------------------------------
// Frame codec internals

// "PXRP" as raw bytes; the decoder matches prefixes of this during
// realignment, so it is kept as an array rather than a packed u32.
constexpr char kReplMagic[4] = {'P', 'X', 'R', 'P'};
constexpr size_t kReplMagicBytes = sizeof(kReplMagic);
constexpr size_t kReplHeaderBytes = kReplMagicBytes + 1 + 4;  // magic|type|len
constexpr size_t kReplChecksumBytes = 8;
// Same ceiling as the WAL's kMaxRecordBytes: a length field above this
// is damage, not a real frame — without the cap a corrupt header could
// make the receiver buffer gigabytes waiting for a frame that never
// completes.
constexpr uint32_t kMaxReplPayloadBytes = 256u << 20;

void AppendLe(std::string* out, uint64_t value, size_t width) {
  for (size_t i = 0; i < width; ++i) {
    out->push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

uint64_t ReadLe(const char* data, size_t width) {
  uint64_t value = 0;
  for (size_t i = 0; i < width; ++i) {
    value |= static_cast<uint64_t>(static_cast<unsigned char>(data[i]))
             << (8 * i);
  }
  return value;
}

bool ValidReplFrameType(uint8_t type) {
  return type >= static_cast<uint8_t>(ReplFrameType::kCheckpoint) &&
         type <= static_cast<uint8_t>(ReplFrameType::kResync);
}

}  // namespace

std::string EncodeReplFrame(const ReplFrame& frame) {
  std::string out;
  out.reserve(kReplHeaderBytes + frame.payload.size() + kReplChecksumBytes);
  out.append(kReplMagic, kReplMagicBytes);
  out.push_back(static_cast<char>(frame.type));
  AppendLe(&out, frame.payload.size(), 4);
  out.append(frame.payload);
  Fnv1a hash;
  hash.Update(out.data() + kReplMagicBytes, out.size() - kReplMagicBytes);
  AppendLe(&out, hash.digest(), kReplChecksumBytes);
  return out;
}

ReplDecodeStatus DecodeReplFrame(std::string_view bytes, ReplFrame* frame,
                                 size_t* consumed) {
  // Magic first: a short buffer that is still a prefix of the magic may
  // become a frame once more bytes arrive; anything else is damage.
  const size_t magic_have = std::min(bytes.size(), kReplMagicBytes);
  if (bytes.compare(0, magic_have, kReplMagic, magic_have) != 0) {
    return ReplDecodeStatus::kBad;
  }
  if (bytes.size() < kReplHeaderBytes) return ReplDecodeStatus::kNeedMore;
  const uint8_t type = static_cast<uint8_t>(bytes[kReplMagicBytes]);
  const uint64_t payload_len = ReadLe(bytes.data() + kReplMagicBytes + 1, 4);
  if (!ValidReplFrameType(type) || payload_len > kMaxReplPayloadBytes) {
    return ReplDecodeStatus::kBad;
  }
  const size_t total = kReplHeaderBytes + payload_len + kReplChecksumBytes;
  if (bytes.size() < total) return ReplDecodeStatus::kNeedMore;
  Fnv1a hash;
  hash.Update(bytes.data() + kReplMagicBytes, 1 + 4 + payload_len);
  const uint64_t stored =
      ReadLe(bytes.data() + kReplHeaderBytes + payload_len, 8);
  if (stored != hash.digest()) return ReplDecodeStatus::kBad;
  frame->type = static_cast<ReplFrameType>(type);
  frame->payload.assign(bytes.data() + kReplHeaderBytes, payload_len);
  *consumed = total;
  return ReplDecodeStatus::kFrame;
}

size_t ReplResyncSkip(std::string_view bytes) {
  for (size_t i = 1; i < bytes.size(); ++i) {
    const size_t have = std::min(bytes.size() - i, kReplMagicBytes);
    if (bytes.compare(i, have, kReplMagic, have) == 0) return i;
  }
  return std::max<size_t>(bytes.size(), 1);
}

// ---------------------------------------------------------------------------
// Typed payloads

ReplFrame EncodeCheckpointMsg(const ReplCheckpointMsg& msg) {
  std::ostringstream out;
  BinaryWriter writer(&out);
  writer.WriteU64(msg.term);
  writer.WriteU8(msg.checkpoint.present ? 1 : 0);
  writer.WriteU64(msg.checkpoint.lsn);
  writer.WriteString(msg.checkpoint.manifest_bytes);
  writer.WriteString(msg.checkpoint.snapshot_name);
  writer.WriteString(msg.checkpoint.snapshot_bytes);
  return ReplFrame{ReplFrameType::kCheckpoint, std::move(out).str()};
}

bool DecodeCheckpointMsg(const ReplFrame& frame, ReplCheckpointMsg* msg) {
  if (frame.type != ReplFrameType::kCheckpoint) return false;
  std::istringstream in(frame.payload);
  BinaryReader reader(&in);
  uint8_t present = 0;
  if (!reader.ReadU64(&msg->term) || !reader.ReadU8(&present) ||
      !reader.ReadU64(&msg->checkpoint.lsn) ||
      !reader.ReadString(&msg->checkpoint.manifest_bytes) ||
      !reader.ReadString(&msg->checkpoint.snapshot_name) ||
      !reader.ReadString(&msg->checkpoint.snapshot_bytes)) {
    return false;
  }
  msg->checkpoint.present = present != 0;
  return true;
}

ReplFrame EncodeRecordMsg(const ReplRecordMsg& msg) {
  std::ostringstream out;
  BinaryWriter writer(&out);
  writer.WriteU64(msg.term);
  writer.WriteU64(msg.lsn);
  writer.WriteU64(msg.updates.size());
  for (const EdgeInfluenceUpdate& update : msg.updates) {
    writer.WriteU32(update.edge);
    writer.WriteU64(update.entries.size());
    for (const EdgeTopicEntry& entry : update.entries) {
      writer.WriteU32(entry.topic);
      writer.WriteF64(entry.prob);
    }
  }
  return ReplFrame{ReplFrameType::kRecord, std::move(out).str()};
}

bool DecodeRecordMsg(const ReplFrame& frame, ReplRecordMsg* msg) {
  if (frame.type != ReplFrameType::kRecord) return false;
  std::istringstream in(frame.payload);
  BinaryReader reader(&in);
  uint64_t batch = 0;
  if (!reader.ReadU64(&msg->term) || !reader.ReadU64(&msg->lsn) ||
      !reader.ReadU64(&batch)) {
    return false;
  }
  // Allocation bound: every update costs at least 12 encoded bytes
  // (edge u32 + entry count u64) and every entry exactly 12 (topic u32
  // + prob f64), so a count beyond payload/12 + 1 is structurally
  // impossible — the same defensive sizing the WAL reader uses.
  const uint64_t max_items = frame.payload.size() / 12 + 1;
  if (batch > max_items) return false;
  msg->updates.clear();
  msg->updates.reserve(batch);
  for (uint64_t i = 0; i < batch; ++i) {
    EdgeInfluenceUpdate update;
    uint64_t entries = 0;
    if (!reader.ReadU32(&update.edge) || !reader.ReadU64(&entries) ||
        entries > max_items) {
      return false;
    }
    update.entries.reserve(entries);
    for (uint64_t j = 0; j < entries; ++j) {
      EdgeTopicEntry entry;
      if (!reader.ReadU32(&entry.topic) || !reader.ReadF64(&entry.prob)) {
        return false;
      }
      update.entries.push_back(entry);
    }
    msg->updates.push_back(std::move(update));
  }
  return true;
}

ReplFrame EncodeHeartbeatMsg(const ReplHeartbeatMsg& msg) {
  std::ostringstream out;
  BinaryWriter writer(&out);
  writer.WriteU64(msg.term);
  writer.WriteU64(msg.durable_lsn);
  return ReplFrame{ReplFrameType::kHeartbeat, std::move(out).str()};
}

bool DecodeHeartbeatMsg(const ReplFrame& frame, ReplHeartbeatMsg* msg) {
  if (frame.type != ReplFrameType::kHeartbeat) return false;
  std::istringstream in(frame.payload);
  BinaryReader reader(&in);
  return reader.ReadU64(&msg->term) && reader.ReadU64(&msg->durable_lsn);
}

ReplFrame EncodeAckMsg(uint64_t applied_lsn) {
  std::ostringstream out;
  BinaryWriter writer(&out);
  writer.WriteU64(applied_lsn);
  return ReplFrame{ReplFrameType::kAck, std::move(out).str()};
}

bool DecodeAckMsg(const ReplFrame& frame, uint64_t* applied_lsn) {
  if (frame.type != ReplFrameType::kAck) return false;
  std::istringstream in(frame.payload);
  BinaryReader reader(&in);
  return reader.ReadU64(applied_lsn);
}

ReplFrame EncodeResyncMsg(uint64_t from_lsn) {
  std::ostringstream out;
  BinaryWriter writer(&out);
  writer.WriteU64(from_lsn);
  return ReplFrame{ReplFrameType::kResync, std::move(out).str()};
}

bool DecodeResyncMsg(const ReplFrame& frame, uint64_t* from_lsn) {
  if (frame.type != ReplFrameType::kResync) return false;
  std::istringstream in(frame.payload);
  BinaryReader reader(&in);
  return reader.ReadU64(from_lsn);
}

// ---------------------------------------------------------------------------
// In-process transport

namespace {

/// One direction of the in-process pipe: a byte-chunk queue under a
/// mutex. Chunks preserve send boundaries only incidentally — the
/// receiver concatenates them into its reassembly buffer, exactly as a
/// stream socket would.
struct InProcessDirection {
  Mutex mutex;
  CondVar cv;
  std::deque<std::string> chunks PITEX_GUARDED_BY(mutex);
  bool closed PITEX_GUARDED_BY(mutex) = false;
};

struct InProcessShared {
  // directions[0]: endpoint A sends, endpoint B receives; [1] reverse.
  InProcessDirection directions[2];
};

class InProcessTransport final : public ReplicationTransport {
 public:
  InProcessTransport(std::shared_ptr<InProcessShared> shared, int send_index)
      : shared_(std::move(shared)), send_index_(send_index) {}
  ~InProcessTransport() override { Close(); }

  bool SendBytes(std::string bytes) override {
    InProcessDirection& dir = shared_->directions[send_index_];
    {
      MutexLock lock(dir.mutex);
      if (dir.closed) return false;
      dir.chunks.push_back(std::move(bytes));
    }
    dir.cv.NotifyAll();
    return true;
  }

  RecvStatus Recv(ReplFrame* frame,
                  std::chrono::milliseconds timeout) override {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    InProcessDirection& dir = shared_->directions[1 - send_index_];
    for (;;) {
      if (!buffer_.empty()) {
        size_t consumed = 0;
        switch (DecodeReplFrame(buffer_, frame, &consumed)) {
          case ReplDecodeStatus::kFrame:
            buffer_.erase(0, consumed);
            return RecvStatus::kFrame;
          case ReplDecodeStatus::kBad:
            buffer_.erase(0, ReplResyncSkip(buffer_));
            return RecvStatus::kBadFrame;
          case ReplDecodeStatus::kNeedMore:
            break;
        }
      }
      bool drained_closed = false;
      {
        MutexLock lock(dir.mutex);
        while (dir.chunks.empty() && !dir.closed) {
          const auto now = std::chrono::steady_clock::now();
          if (now >= deadline) return RecvStatus::kTimeout;
          dir.cv.WaitFor(lock, deadline - now);
        }
        while (!dir.chunks.empty()) {
          buffer_ += dir.chunks.front();
          dir.chunks.pop_front();
        }
        drained_closed = dir.closed && dir.chunks.empty() && buffer_.empty();
        // A non-empty buffer_ after close is retried through the
        // decoder above; an undecodable remainder is the torn tail.
      }
      if (drained_closed) return RecvStatus::kClosed;
      if (buffer_.empty()) continue;
      size_t consumed = 0;
      const ReplDecodeStatus status = DecodeReplFrame(buffer_, frame,
                                                      &consumed);
      if (status == ReplDecodeStatus::kNeedMore) {
        // Peer closed with a torn trailing frame: discard it (the
        // stream analogue of the WAL torn-tail rule) and report EOF.
        MutexLock lock(dir.mutex);
        if (dir.closed && dir.chunks.empty()) {
          buffer_.clear();
          return RecvStatus::kClosed;
        }
      }
      // Otherwise loop: the top-of-loop decode handles kFrame/kBad.
    }
  }

  void Close() override {
    for (InProcessDirection& dir : shared_->directions) {
      {
        MutexLock lock(dir.mutex);
        dir.closed = true;
      }
      dir.cv.NotifyAll();
    }
  }

 private:
  std::shared_ptr<InProcessShared> shared_;
  const int send_index_;
  std::string buffer_;  // receiver-thread-only reassembly buffer
};

}  // namespace

std::pair<std::unique_ptr<ReplicationTransport>,
          std::unique_ptr<ReplicationTransport>>
MakeInProcessTransportPair() {
  auto shared = std::make_shared<InProcessShared>();
  return {std::make_unique<InProcessTransport>(shared, 0),
          std::make_unique<InProcessTransport>(shared, 1)};
}

// ---------------------------------------------------------------------------
// Fd transport

namespace {

class FdTransport final : public ReplicationTransport {
 public:
  explicit FdTransport(int fd) : fd_(fd) {}
  ~FdTransport() override {
    Close();
    // pitex-check: allow(io-checked): teardown; shutdown already flushed
    if (fd_ >= 0) ::close(fd_);
  }

  bool SendBytes(std::string bytes) override {
    size_t sent = 0;
    while (sent < bytes.size()) {
      // MSG_NOSIGNAL: a dead peer surfaces as EPIPE, not a process-wide
      // SIGPIPE — the shipper treats send failure as "follower gone".
      const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                               MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  RecvStatus Recv(ReplFrame* frame,
                  std::chrono::milliseconds timeout) override {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    for (;;) {
      if (!buffer_.empty()) {
        size_t consumed = 0;
        switch (DecodeReplFrame(buffer_, frame, &consumed)) {
          case ReplDecodeStatus::kFrame:
            buffer_.erase(0, consumed);
            return RecvStatus::kFrame;
          case ReplDecodeStatus::kBad:
            buffer_.erase(0, ReplResyncSkip(buffer_));
            return RecvStatus::kBadFrame;
          case ReplDecodeStatus::kNeedMore:
            break;
        }
      }
      if (eof_) {
        // Torn trailing frame at EOF is discarded, like the WAL's torn
        // tail: the peer died mid-send and never committed the frame.
        buffer_.clear();
        return RecvStatus::kClosed;
      }
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) return RecvStatus::kTimeout;
      const auto left =
          std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now);
      struct pollfd pfd;
      pfd.fd = fd_;
      pfd.events = POLLIN;
      pfd.revents = 0;
      const int pr =
          ::poll(&pfd, 1, static_cast<int>(std::max<int64_t>(left.count(), 1)));
      if (pr < 0) {
        if (errno == EINTR) continue;
        return RecvStatus::kClosed;
      }
      if (pr == 0) return RecvStatus::kTimeout;
      char tmp[65536];
      const ssize_t n = ::read(fd_, tmp, sizeof tmp);
      if (n > 0) {
        buffer_.append(tmp, static_cast<size_t>(n));
      } else if (n == 0) {
        eof_ = true;
      } else if (errno != EINTR && errno != EAGAIN) {
        return RecvStatus::kClosed;
      }
    }
  }

  void Close() override {
    if (!shutdown_.exchange(true)) ::shutdown(fd_, SHUT_RDWR);
  }

 private:
  const int fd_;
  std::atomic<bool> shutdown_{false};
  bool eof_ = false;        // receiver-thread-only
  std::string buffer_;      // receiver-thread-only reassembly buffer
};

}  // namespace

std::unique_ptr<ReplicationTransport> MakeFdTransport(int fd) {
  PITEX_CHECK_MSG(fd >= 0, "MakeFdTransport requires a valid fd");
  return std::make_unique<FdTransport>(fd);
}

// ---------------------------------------------------------------------------
// WalShipper

WalShipper::WalShipper(PitexService* primary, ReplicationTransport* transport,
                       const WalShipperOptions& options)
    : primary_(primary), transport_(transport), options_(options) {
  PITEX_CHECK_MSG(primary_ != nullptr && transport_ != nullptr,
                  "WalShipper requires a primary service and a transport");
  PITEX_CHECK_MSG(!options_.wal_dir.empty(),
                  "WalShipper requires the primary's durability directory");
  obs::MetricsRegistry& metrics = primary_->metrics();
  records_shipped_ = metrics.RegisterCounter(
      "pitex_repl_records_shipped_total",
      "WAL records handed to the replication transport");
  heartbeats_sent_ = metrics.RegisterCounter(
      "pitex_repl_heartbeats_sent_total", "Heartbeats sent to the follower");
  resyncs_served_ = metrics.RegisterCounter(
      "pitex_repl_resyncs_served_total",
      "Follower resync requests honored (shipping cursor rewinds)");
  shipped_gauge_ = metrics.RegisterGauge(
      "pitex_repl_shipped_lsn",
      "Highest LSN handed to the replication transport");
  acked_gauge_ = metrics.RegisterGauge(
      "pitex_repl_acked_lsn",
      "Highest LSN the follower acknowledged as applied");
}

WalShipper::~WalShipper() { Stop(); }

void WalShipper::Start() {
  if (started_) return;
  started_ = true;
  // Pin the whole log BEFORE reading the checkpoint: a checkpoint that
  // lands between "read manifest" and "register hold" could otherwise
  // truncate records the follower will need. The hold advances to
  // checkpoint_lsn + 1 once the bootstrap frame is on the wire.
  primary_->Start();
  retention_ = primary_->WalRetention();
  if (retention_ != nullptr) hold_id_ = retention_->Register(1);
  stop_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { Loop(); });
}

void WalShipper::Stop() {
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  if (retention_ != nullptr) {
    retention_->Release(hold_id_);
    retention_ = nullptr;
  }
}

bool WalShipper::SendFrameWithFaults(const ReplFrame& frame) {
  std::string bytes = EncodeReplFrame(frame);
  // A fault "succeeds" from the shipper's view — the network ate the
  // frame, the resync/ack machinery is what heals it.
  if (PITEX_FAILPOINT("repl/partition")) return true;
  if (frame.type == ReplFrameType::kHeartbeat &&
      PITEX_FAILPOINT("repl/heartbeat_drop")) {
    return true;
  }
  if (PITEX_FAILPOINT("repl/ship_drop")) return true;
  if (PITEX_FAILPOINT("repl/ship_torn")) {
    bytes.resize(bytes.size() / 2);  // a torn shipment: prefix only
  }
  if (PITEX_FAILPOINT("repl/ship_reorder") && reordered_.empty()) {
    // Hold this frame back; it goes out after its successor.
    reordered_ = std::move(bytes);
    return true;
  }
  bool ok = transport_->SendBytes(bytes);
  if (PITEX_FAILPOINT("repl/ship_dup")) {
    ok = transport_->SendBytes(std::move(bytes)) && ok;
  }
  if (!reordered_.empty()) {
    ok = transport_->SendBytes(std::move(reordered_)) && ok;
    reordered_.clear();
  }
  return ok;
}

void WalShipper::HandleInbound(const ReplFrame& frame, uint64_t* cursor) {
  if (frame.type == ReplFrameType::kAck) {
    uint64_t applied = 0;
    if (!DecodeAckMsg(frame, &applied)) return;
    if (applied > acked_lsn_.load(std::memory_order_relaxed)) {
      acked_lsn_.store(applied, std::memory_order_release);
      acked_gauge_->Set(static_cast<int64_t>(applied));
      // Everything through `applied` is durable on the follower; the
      // resend floor only needs min(acked, cursor) + 1 — the cursor
      // term covers a resync rewind that outran the latest ack.
      if (retention_ != nullptr) {
        retention_->Update(hold_id_, std::min(applied, *cursor) + 1);
      }
    }
  } else if (frame.type == ReplFrameType::kResync) {
    uint64_t from = 0;
    if (!DecodeResyncMsg(frame, &from)) return;
    if (from < *cursor) {
      *cursor = from;
      shipped_lsn_.store(from, std::memory_order_release);
      shipped_gauge_->Set(static_cast<int64_t>(from));
      // Re-pin the resend range: acks may have advanced the hold past
      // the rewound cursor (e.g. the follower lost frames after a
      // partial apply).
      if (retention_ != nullptr) retention_->Update(hold_id_, from + 1);
      resyncs_served_->Inc();
      primary_->mutable_journal().Record(obs::EventKind::kReplResync, from);
    }
  }
}

void WalShipper::Loop() {
  // Bootstrap: ship the newest checkpoint (or "none yet") so the
  // follower can install it and start serving before replay begins.
  ShippedCheckpoint checkpoint;
  std::string error;
  uint64_t cursor = 0;
  if (ReadCheckpointForShipping(options_.wal_dir, &checkpoint, &error) &&
      checkpoint.present) {
    cursor = checkpoint.lsn;
  }
  ReplCheckpointMsg bootstrap;
  bootstrap.term = options_.term;
  bootstrap.checkpoint = std::move(checkpoint);
  SendFrameWithFaults(EncodeCheckpointMsg(bootstrap));
  primary_->mutable_journal().Record(obs::EventKind::kReplShipCheckpoint,
                                     cursor, options_.term);
  if (retention_ != nullptr) retention_->Update(hold_id_, cursor + 1);
  shipped_lsn_.store(cursor, std::memory_order_release);
  shipped_gauge_->Set(static_cast<int64_t>(cursor));

  const auto heartbeat_interval =
      std::chrono::duration<double, std::milli>(options_.heartbeat_interval_ms);
  const auto poll_interval = std::chrono::milliseconds(
      std::max<int64_t>(1, static_cast<int64_t>(options_.poll_interval_ms)));
  auto last_heartbeat = std::chrono::steady_clock::time_point{};

  while (!stop_.load(std::memory_order_acquire)) {
    // Ship committed records past the cursor. durable_lsn is the
    // primary's group-commit watermark — records beyond it exist in the
    // log buffer but are not yet acknowledged, so they must not ship.
    const uint64_t durable = primary_->durable_lsn();
    if (durable > cursor) {
      std::vector<WalRecord> records;
      const WalReadResult read =
          ReadWalAfter(options_.wal_dir, cursor, &records);
      // A failed read here is transient (a rollback or truncation
      // caught mid-scan): skip this round and re-tail on the next.
      if (read.ok()) {
        size_t sent = 0;
        for (WalRecord& record : records) {
          if (record.lsn > durable || sent >= options_.max_records_per_poll) {
            break;
          }
          ReplRecordMsg msg;
          msg.term = options_.term;
          msg.lsn = record.lsn;
          msg.updates = std::move(record.updates);
          SendFrameWithFaults(EncodeRecordMsg(msg));
          cursor = record.lsn;
          records_shipped_->Inc();
          ++sent;
        }
        shipped_lsn_.store(cursor, std::memory_order_release);
        shipped_gauge_->Set(static_cast<int64_t>(cursor));
      }
    }

    const auto now = std::chrono::steady_clock::now();
    if (now - last_heartbeat >= heartbeat_interval) {
      ReplHeartbeatMsg beat;
      beat.term = options_.term;
      beat.durable_lsn = durable;
      SendFrameWithFaults(EncodeHeartbeatMsg(beat));
      heartbeats_sent_->Inc();
      last_heartbeat = now;
    }

    ReplFrame inbound;
    switch (transport_->Recv(&inbound, poll_interval)) {
      case ReplicationTransport::RecvStatus::kFrame:
        HandleInbound(inbound, &cursor);
        break;
      case ReplicationTransport::RecvStatus::kClosed:
        // Follower gone. Keep looping at poll cadence so Stop() still
        // lands promptly; sends fail harmlessly in the meantime.
        std::this_thread::sleep_for(poll_interval);
        break;
      case ReplicationTransport::RecvStatus::kBadFrame:
      case ReplicationTransport::RecvStatus::kTimeout:
        break;
    }
  }
}

// ---------------------------------------------------------------------------
// FollowerService

FollowerService::FollowerService(const SocialNetwork* network,
                                 ReplicationTransport* transport,
                                 const FollowerOptions& options)
    : network_(network), transport_(transport), options_(options) {
  PITEX_CHECK_MSG(network_ != nullptr && transport_ != nullptr,
                  "FollowerService requires a network and a transport");
  PITEX_CHECK_MSG(options_.authority != nullptr,
                  "FollowerService requires a term authority (promotion "
                  "without fencing is a split-brain generator)");
  PITEX_CHECK_MSG(
      options_.serve.enable_updates && !options_.serve.durability_dir.empty(),
      "the follower's inner service must be durable "
      "(enable_updates + durability_dir)");
  options_.serve.term_authority = options_.authority;
  // The follower's adopted term tracks the shipped frames: start at 0
  // (fenced off — nothing may write through us) until Bootstrap adopts
  // the primary's term.
  options_.serve.term = 0;
  inner_ = std::make_unique<PitexService>(network_, options_.serve);
  RegisterMetrics();
}

FollowerService::~FollowerService() { Stop(); }

void FollowerService::RegisterMetrics() {
  obs::MetricsRegistry& metrics = inner_->metrics();
  records_applied_ = metrics.RegisterCounter(
      "pitex_repl_records_applied_total",
      "Shipped records applied through deterministic replay");
  duplicates_dropped_ = metrics.RegisterCounter(
      "pitex_repl_duplicates_dropped_total",
      "Shipped records dropped as duplicates (LSN <= applied)");
  resync_requests_ = metrics.RegisterCounter(
      "pitex_repl_resync_requests_total",
      "Resyncs requested after a gap, damaged frame, or apply failure");
  frames_rejected_ = metrics.RegisterCounter(
      "pitex_repl_frames_rejected_total",
      "Frames discarded for checksum or framing damage");
  stale_term_frames_ = metrics.RegisterCounter(
      "pitex_repl_stale_term_frames_total",
      "Frames ignored because their term predates the follower's");
  heartbeats_seen_ = metrics.RegisterCounter(
      "pitex_repl_heartbeats_seen_total", "Primary heartbeats received");
  applied_gauge_ = metrics.RegisterGauge("pitex_repl_applied_lsn",
                                         "Highest densely applied LSN");
  primary_lsn_gauge_ =
      metrics.RegisterGauge("pitex_repl_primary_lsn",
                            "Primary durable LSN from its last heartbeat");
  lag_gauge_ = metrics.RegisterGauge(
      "pitex_repl_lag_lsns",
      "Replication lag: primary durable LSN minus applied LSN");
  promoted_gauge_ = metrics.RegisterGauge(
      "pitex_repl_promoted",
      "1 after this follower promoted itself to primary");
}

bool FollowerService::Start(std::string* error) {
  if (!thread_.joinable()) {
    stop_.store(false, std::memory_order_release);
    thread_ = std::thread([this] { Loop(); });
  }
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::duration<double, std::milli>(
              options_.bootstrap_timeout_ms));
  MutexLock lock(bootstrap_mutex_);
  while (!bootstrapped_ && !bootstrap_failed_) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      if (error != nullptr) {
        *error = "follower bootstrap timed out waiting for the shipped "
                 "checkpoint";
      }
      return false;
    }
    bootstrap_cv_.WaitFor(lock, deadline - now);
  }
  if (bootstrap_failed_) {
    if (error != nullptr) *error = bootstrap_error_;
    return false;
  }
  return true;
}

void FollowerService::Stop() {
  stop_.store(true, std::memory_order_release);
  {
    MutexLock lock(bootstrap_mutex_);
    if (!bootstrapped_ && !bootstrap_failed_) {
      bootstrap_failed_ = true;
      bootstrap_error_ = "follower stopped before bootstrap completed";
    }
  }
  bootstrap_cv_.NotifyAll();
  if (thread_.joinable()) thread_.join();
}

void FollowerService::FailBootstrap(std::string message) {
  {
    MutexLock lock(bootstrap_mutex_);
    if (!bootstrapped_) {
      bootstrap_failed_ = true;
      bootstrap_error_ = std::move(message);
    }
  }
  bootstrap_cv_.NotifyAll();
}

bool FollowerService::Bootstrap(const ReplCheckpointMsg& msg,
                                std::string* error) {
  // A follower restarting with local state AHEAD of the shipped
  // checkpoint keeps its own files: installing an older manifest over
  // them would point recovery at a log prefix that may already be
  // truncated. Duplicate shipped records are dropped by the dense-LSN
  // rule either way.
  CheckpointManifest local;
  bool local_present = false;
  (void)ReadCheckpointManifest(options_.serve.durability_dir, &local,
                               &local_present, nullptr);
  const bool keep_local =
      local_present && msg.checkpoint.present && local.lsn >= msg.checkpoint.lsn;
  if (!keep_local &&
      !InstallShippedCheckpoint(options_.serve.durability_dir, msg.checkpoint,
                                error)) {
    return false;
  }
  // Adopt the primary's term before starting: replayed writes must pass
  // the inner service's own fence while the primary still reigns.
  inner_->AdoptTerm(msg.term);
  term_.store(msg.term, std::memory_order_release);
  // Ordinary recovery re-validates everything the wire delivered:
  // manifest checksum, snapshot fingerprint, then replays the
  // follower's OWN WAL tail (non-empty only after a follower restart).
  inner_->Start();
  const uint64_t applied = inner_->durable_lsn();
  applied_lsn_.store(applied, std::memory_order_release);
  applied_gauge_->Set(static_cast<int64_t>(applied));
  // Tell the shipper where replay must begin; this also advances the
  // primary-side retention hold past the shipped checkpoint.
  transport_->Send(EncodeAckMsg(applied));
  {
    MutexLock lock(bootstrap_mutex_);
    bootstrapped_ = true;
  }
  bootstrap_cv_.NotifyAll();
  return true;
}

void FollowerService::RequestResync() {
  const uint64_t applied = applied_lsn_.load(std::memory_order_relaxed);
  resync_requests_->Inc();
  inner_->mutable_journal().Record(obs::EventKind::kReplResync, applied);
  transport_->Send(EncodeResyncMsg(applied));
}

void FollowerService::HandleRecord(const ReplRecordMsg& msg,
                                   std::chrono::steady_clock::time_point now) {
  if (msg.term < term_.load(std::memory_order_relaxed)) {
    // A deposed primary's late shipment (it does not yet know it lost
    // the election): not live-primary traffic, so it must neither apply
    // nor reset the promotion timer.
    stale_term_frames_->Inc();
    return;
  }
  last_traffic_ = now;
  const uint64_t applied = applied_lsn_.load(std::memory_order_relaxed);
  if (msg.lsn <= applied) {
    // Duplicate (a ship_dup fault, or a resend overlapping the ack).
    duplicates_dropped_->Inc();
    transport_->Send(EncodeAckMsg(applied));
    return;
  }
  if (msg.lsn > applied + 1) {
    // Dense-LSN violation: a dropped or reordered shipment. Ask for
    // everything after the last applied record.
    RequestResync();
    return;
  }
  ApplyUpdatesOutcome outcome = ApplyUpdatesOutcome::kPublished;
  const uint64_t epoch = inner_->ApplyUpdates(msg.updates, &outcome);
  const bool durable =
      epoch != 0 || outcome == ApplyUpdatesOutcome::kPublishFailed;
  if (!durable) {
    // Local WAL trouble (or a fence, if an election raced this apply):
    // the record is NOT durable here, so it must not be acked. A resync
    // lets a transient failure heal by resend.
    RequestResync();
    return;
  }
  applied_lsn_.store(msg.lsn, std::memory_order_release);
  records_applied_->Inc();
  applied_gauge_->Set(static_cast<int64_t>(msg.lsn));
  transport_->Send(EncodeAckMsg(msg.lsn));
}

void FollowerService::MaybePromote(std::chrono::steady_clock::time_point now) {
  if (promoted_.load(std::memory_order_relaxed)) return;
  const double quiet_ms =
      std::chrono::duration<double, std::milli>(now - last_traffic_).count();
  if (quiet_ms < options_.heartbeat_timeout_ms) return;
  const uint64_t observed =
      std::max(term_.load(std::memory_order_relaxed),
               options_.authority->Current());
  const uint64_t new_term = observed + 1;
  if (options_.authority->Advance(new_term)) {
    // Election won: from here on the inner service's fence admits OUR
    // writes and rejects the deposed primary's.
    inner_->AdoptTerm(new_term);
    term_.store(new_term, std::memory_order_release);
    promoted_.store(true, std::memory_order_release);
    promoted_gauge_->Set(1);
    lag_gauge_->Set(0);  // no primary left to lag behind
    inner_->mutable_journal().Record(
        obs::EventKind::kReplPromote, new_term,
        applied_lsn_.load(std::memory_order_relaxed));
  } else {
    // Lost the election to another candidate: adopt the winner's term
    // as its follower and restart the quiet timer.
    term_.store(options_.authority->Current(), std::memory_order_release);
    last_traffic_ = now;
  }
}

void FollowerService::Loop() {
  const auto recv_timeout = std::chrono::milliseconds(
      std::max<int64_t>(1, static_cast<int64_t>(options_.recv_timeout_ms)));

  // Phase 1: wait for the bootstrap checkpoint frame.
  bool up = false;
  while (!stop_.load(std::memory_order_acquire)) {
    ReplFrame frame;
    const auto status = transport_->Recv(&frame, recv_timeout);
    if (status == ReplicationTransport::RecvStatus::kClosed) {
      FailBootstrap("transport closed before the bootstrap checkpoint "
                    "arrived");
      return;
    }
    if (status != ReplicationTransport::RecvStatus::kFrame) continue;
    if (frame.type != ReplFrameType::kCheckpoint) continue;  // stray frame
    ReplCheckpointMsg msg;
    if (!DecodeCheckpointMsg(frame, &msg)) {
      FailBootstrap("malformed bootstrap checkpoint frame");
      return;
    }
    std::string error;
    if (!Bootstrap(msg, &error)) {
      FailBootstrap(std::move(error));
      return;
    }
    up = true;
    break;
  }
  if (!up) return;  // stopped before the checkpoint arrived

  // Phase 2: apply shipped records, watch for primary silence.
  last_traffic_ = std::chrono::steady_clock::now();
  while (!stop_.load(std::memory_order_acquire)) {
    ReplFrame frame;
    const auto status = transport_->Recv(&frame, recv_timeout);
    const auto now = std::chrono::steady_clock::now();
    switch (status) {
      case ReplicationTransport::RecvStatus::kFrame:
        switch (frame.type) {
          case ReplFrameType::kRecord: {
            ReplRecordMsg msg;
            if (DecodeRecordMsg(frame, &msg)) {
              HandleRecord(msg, now);
            } else {
              frames_rejected_->Inc();
              RequestResync();
            }
            break;
          }
          case ReplFrameType::kHeartbeat: {
            ReplHeartbeatMsg msg;
            if (!DecodeHeartbeatMsg(frame, &msg)) {
              frames_rejected_->Inc();
              break;
            }
            if (msg.term < term_.load(std::memory_order_relaxed)) {
              stale_term_frames_->Inc();
              break;
            }
            last_traffic_ = now;
            heartbeats_seen_->Inc();
            primary_lsn_gauge_->Set(static_cast<int64_t>(msg.durable_lsn));
            const uint64_t applied =
                applied_lsn_.load(std::memory_order_relaxed);
            if (msg.durable_lsn > applied) {
              lag_gauge_->Set(
                  static_cast<int64_t>(msg.durable_lsn - applied));
              // Two lagging heartbeats with zero progress in between:
              // the missing records were lost, not in flight (a dropped
              // FINAL record has no later record to expose its gap, so
              // heartbeats are the liveness prod).
              if (applied == stalled_applied_) RequestResync();
              stalled_applied_ = applied;
            } else {
              lag_gauge_->Set(0);
              stalled_applied_ = UINT64_MAX;
            }
            break;
          }
          default:
            // Late checkpoint or stray ack/resync frames: ignore.
            break;
        }
        break;
      case ReplicationTransport::RecvStatus::kBadFrame:
        // Damaged bytes (a torn or corrupted shipment). The decoder
        // realigned at the next magic; ask for a resend of everything
        // after the last applied record.
        frames_rejected_->Inc();
        RequestResync();
        break;
      case ReplicationTransport::RecvStatus::kClosed:
        transport_closed_ = true;
        std::this_thread::sleep_for(recv_timeout);
        break;
      case ReplicationTransport::RecvStatus::kTimeout:
        break;
    }
    MaybePromote(std::chrono::steady_clock::now());
  }
}

}  // namespace pitex
