// PitexService: the online query-serving subsystem.
//
// BatchEngine (src/core/batch_engine.h) answers a closed batch with
// static round-robin worker assignment — the right tool for offline
// evaluation runs, and deliberately deterministic. A serving deployment
// faces a different shape: an open stream of queries with skewed
// per-query cost (hub users cost orders of magnitude more than leaf
// users), arriving in bursts, while the underlying influence model is
// re-learned continually. PitexService covers that scenario class:
//
//   * scheduling — every query lands on a per-worker FIFO deque; idle
//     workers steal from the most loaded deque, so one hub query no
//     longer stalls the whole residue class it round-robins into. Each
//     worker owns a persistent PitexEngine replica (and thereby a
//     persistent BestEffortScratch + sampler state), so steady-state
//     serving allocates only at the scheduling layer. A `deterministic`
//     mode disables stealing and pins query i of a ServeAll batch to
//     worker i % num_threads — reproducing BatchEngine::ExploreAll
//     bit-identically (pinned by tests/pitex_service_test.cc);
//   * snapshots — queries pin the current IndexSnapshot; ApplyUpdates
//     repairs a shadow DynamicRrIndex master and publishes a fresh
//     immutable snapshot, so in-flight queries finish on the epoch they
//     started while new queries see the repaired index (see
//     src/serve/snapshot_registry.h);
//   * memoization — answers are cached per (user, k, top_n, method,
//     epoch) in a sharded LRU ResultCache; epoch keying makes update
//     invalidation free. The cache is forced off in deterministic mode
//     (a hit would skip sampler RNG advancement and change every later
//     answer on that worker).
//
// Threading: built on util/thread_pool — Start() parks one pump task per
// pool worker via SubmitIndexed, whose worker index keys the engine
// replica. ServeAll blocks until its batch drains; Submit returns a
// future for streaming callers. All public methods are thread-safe;
// ServeAll/Submit may run concurrently with ApplyUpdates.

#ifndef PITEX_SRC_SERVE_PITEX_SERVICE_H_
#define PITEX_SRC_SERVE_PITEX_SERVICE_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <span>
#include <vector>

#include "src/core/engine.h"
#include "src/index/dynamic_index.h"
#include "src/obs/journal.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/serve/admission.h"
#include "src/serve/result_cache.h"
#include "src/serve/service_stats.h"
#include "src/serve/snapshot_registry.h"
#include "src/serve/term_authority.h"
#include "src/serve/wal.h"
#include "src/util/mutex.h"
#include "src/util/random.h"
#include "src/util/thread_annotations.h"
#include "src/util/thread_pool.h"

namespace pitex {

enum class ScheduleMode {
  /// Per-worker deques with stealing: best throughput under skew; the
  /// worker (and hence sampler seed) serving a query is load-dependent.
  kWorkStealing,
  /// Static assignment (batch query i -> worker i % num_threads), no
  /// stealing, no cache: bit-identical to BatchEngine::ExploreAll for
  /// the same (options, num_threads).
  kDeterministic,
};

struct ServeOptions {
  /// Per-worker engine configuration; worker w uses seed engine.seed + w
  /// (the same derivation as BatchEngine).
  EngineOptions engine;
  size_t num_threads = 4;
  ScheduleMode mode = ScheduleMode::kWorkStealing;
  /// Ranked answers per query (1 = classic Explore).
  size_t top_n = 1;
  /// Result-cache entry budget; 0 disables. Ignored (off) in
  /// deterministic mode.
  size_t cache_capacity = 4096;
  size_t cache_shards = 8;
  /// Keep a DynamicRrIndex master so ApplyUpdates can publish repaired
  /// snapshots. Requires an RR-Graph method (kIndexEst / kIndexEstPlus).
  bool enable_updates = false;
  /// Workers for the publish-side freeze (IndexSnapshot::FromDynamic):
  /// the network copy overlaps a pool-parallel pack. The serving pool is
  /// permanently parked under the pumps, so publishes get their own
  /// small maintenance pool; it sits idle between epochs. 0 or 1 (the
  /// default) freezes serially — only worth enabling when cores are
  /// genuinely free beyond the serving pumps.
  size_t publish_threads = 0;
  /// Per-worker ring size for latency samples (Stats()).
  size_t latency_window = 1 << 14;

  // --- overload resilience (docs/robustness.md) ---

  /// Admission control (bounded queue, publish priority, per-user rate
  /// limits). Active only in work-stealing mode AND when at least one
  /// limit is set (max_queue_depth or user_rate_limit non-zero);
  /// deterministic mode never sheds -- admission would make the answer
  /// stream load-dependent.
  AdmissionOptions admission;
  /// Snapshot-freeze attempts per publish before ApplyUpdates gives up
  /// (the staged repairs stay in the master and fold into the next
  /// publish). Failed attempts back off exponentially with jitter.
  size_t publish_max_attempts = 5;
  double publish_backoff_initial_ms = 1.0;
  double publish_backoff_max_ms = 50.0;
  /// Watchdog threshold: Stats() flags `publish_stuck` when a publish
  /// has been in flight longer than this.
  double publish_stuck_after_seconds = 5.0;

  // --- durability (docs/robustness.md, "Durability") ---

  /// Directory holding the WAL and checkpoints; empty (the default)
  /// disables durability. Requires enable_updates. Start() recovers
  /// from this directory (newest checkpoint + WAL-tail replay) before
  /// serving, and ApplyUpdates makes every batch durable before
  /// applying or acknowledging it.
  std::string durability_dir;
  /// WAL tuning: segment rotation size and the fsync policy knob.
  WalOptions wal;
  /// Take a checkpoint (and truncate the WAL behind it) every N
  /// successful publishes. 0 = never checkpoint: recovery replays the
  /// whole log and the log grows without bound.
  uint64_t checkpoint_every = 8;

  // --- replication (docs/robustness.md, "Replication & failover") ---

  /// Fencing oracle shared across the replica set (not owned; must
  /// outlive the service). When set, ApplyUpdates acknowledges a batch
  /// only while the authority's current term equals this writer's
  /// adopted term (see AdoptTerm) — a deposed primary's late write
  /// returns kFencedStaleTerm before anything reaches the log, so a
  /// promotion it slept through cannot fork history. Null disables
  /// fencing (single-writer deployments).
  TermAuthority* term_authority = nullptr;
  /// The term this writer starts under. Promotion adopts a higher one
  /// through AdoptTerm.
  uint64_t term = 1;
};

/// How a query left the service (ServedResult::status).
enum class ServeStatus : uint8_t {
  /// Served to completion (cache hit or exhaustive search).
  kOk,
  /// The query's budget expired mid-search: `ranking` holds the best
  /// top-N found so far (possibly empty), not the proven optimum.
  /// Degraded answers are never cached.
  kDegraded,
  /// The budget was already exhausted when a worker picked the query up
  /// (it expired in queue). No search was run; `ranking` is empty.
  kDeadlineExpired,
  /// Refused at admission (queue full or rate-limited); never enqueued,
  /// `ranking` is empty and `epoch`/`worker` are meaningless.
  kShed,
};

/// Disposition of one ApplyUpdates call (optional out-parameter). The
/// epoch return value alone cannot tell a caller what to do with a
/// rejected batch: a WAL failure means "retry the same batch", while a
/// publish failure means the batch IS applied (and durable, when
/// enabled) and a retry would apply it twice.
enum class ApplyUpdatesOutcome : uint8_t {
  /// Applied and published; the return value is the new epoch.
  kPublished,
  /// The batch failed validation (edge out of range, non-finite or
  /// out-of-[0,1] probability). Nothing was logged or applied; the same
  /// batch fails the same way on retry — fix it, don't resend it.
  kInvalidBatch,
  /// The WAL append/commit failed: the batch is neither durable nor
  /// applied (the uncommitted bytes were rolled back). Retry the batch.
  kWalFailed,
  /// Every snapshot-freeze attempt failed: the batch is applied to the
  /// master (and durable, when enabled) but readers keep the previous
  /// epoch until the next successful publish folds it in. Do NOT retry.
  kPublishFailed,
  /// This writer's term is stale: a newer primary was elected since it
  /// last checked the term authority. Nothing was logged or applied.
  /// Do NOT retry here — re-route the write to the current primary.
  /// Folding this into kWalFailed would tell the caller to retry, the
  /// exact wrong advice for a deposed writer.
  kFencedStaleTerm,
};

/// One served answer plus serving metadata.
struct ServedResult {
  PitexResult result;
  /// Up to top_n ranked tag sets (ranking[0] == result.tags). For cache
  /// hits the PitexResult counters are zero — no work was done.
  std::vector<RankedTagSet> ranking;
  /// Index epoch the answer was computed against.
  uint64_t epoch = 0;
  /// Worker that served it.
  uint32_t worker = 0;
  bool cache_hit = false;
  /// Served off another worker's deque (work-stealing mode).
  bool stolen = false;
  /// Disposition under overload: kOk on the happy path; see ServeStatus.
  ServeStatus status = ServeStatus::kOk;
  /// Nonzero when the query was trace-sampled: the id to pass to
  /// obs::Tracer::Collect for the admission -> queue -> solve -> result
  /// span chain (docs/observability.md).
  uint64_t trace_id = 0;
};

class PitexService {
 public:
  /// `network` must outlive the service.
  PitexService(const SocialNetwork* network, const ServeOptions& options);
  ~PitexService();

  PitexService(const PitexService&) = delete;
  PitexService& operator=(const PitexService&) = delete;

  /// Builds the epoch-1 snapshot (offline index for index methods) and
  /// parks the worker pumps. Idempotent; invoked lazily by the serving
  /// entry points.
  void Start() PITEX_EXCLUDES(start_mutex_, update_mutex_);

  /// Answers a batch: results[i] corresponds to queries[i]. Blocks until
  /// every query in the batch is served; other threads may ServeAll /
  /// Submit / ApplyUpdates concurrently.
  std::vector<ServedResult> ServeAll(std::span<const PitexQuery> queries)
      PITEX_EXCLUDES(sched_mutex_, batch_mutex_);

  /// Streaming entry point: enqueues one query, returns immediately.
  std::future<ServedResult> Submit(const PitexQuery& query)
      PITEX_EXCLUDES(sched_mutex_);

  /// Repairs the shadow master index and atomically publishes the result
  /// as a new snapshot epoch (returned). In-flight queries are
  /// unaffected; subsequent queries see the repaired index. Requires
  /// options.enable_updates.
  ///
  /// Robustness: the snapshot freeze is retried up to
  /// options.publish_max_attempts times with jittered exponential
  /// backoff (failures are fault-injectable via the
  /// "serve/publish_freeze" fail point). If every attempt fails the call
  /// returns 0 and the repairs stay staged in the master copy -- readers
  /// keep serving the previous epoch, and the next successful publish
  /// folds the staged repairs in. While a freeze is in flight, admission
  /// (when enabled) tightens the query queue bound so the publish is
  /// never starved by a query storm.
  ///
  /// Durability: with options.durability_dir set, the batch is appended
  /// to the WAL and committed (fsync per policy) BEFORE the master is
  /// repaired -- a return value != 0 means the batch survives any
  /// subsequent crash. Batches are validated (edge bounds, probability
  /// range/finiteness -- the same checks recovery applies on replay)
  /// BEFORE the append: an invalid batch is rejected up front and never
  /// reaches the log, because a durable poison record would turn one
  /// bad call into a permanent recovery failure on every restart. If
  /// the WAL append or commit fails, the batch is rolled back out of
  /// the log and the master is left untouched.
  ///
  /// All three failure modes return 0; `outcome` (when non-null) tells
  /// the caller which one happened -- and therefore whether retrying is
  /// safe (kWalFailed), futile (kInvalidBatch), or double-applies the
  /// batch (kPublishFailed).
  uint64_t ApplyUpdates(std::span<const EdgeInfluenceUpdate> updates,
                        ApplyUpdatesOutcome* outcome = nullptr)
      PITEX_EXCLUDES(update_mutex_);

  /// The snapshot new queries are currently served from.
  std::shared_ptr<const IndexSnapshot> CurrentSnapshot() const;
  uint64_t current_epoch() const;

  /// Consistent counter snapshot (prunes expired snapshot observers).
  /// Since the metrics registry landed this is a view over the same
  /// counters SnapshotMetrics() exports, kept for existing callers.
  ServiceStats Stats() PITEX_EXCLUDES(stats_mutex_);

  /// Point-in-time export of every registered metric. Collector
  /// callbacks run first, mirroring internally-locked sources (cache
  /// shards, the snapshot registry, admission) and the staleness
  /// atomics into gauges, so one snapshot is internally consistent
  /// enough for the conservation invariants the chaos suite asserts
  /// (docs/observability.md, "Metric catalog").
  obs::MetricsSnapshot SnapshotMetrics() PITEX_EXCLUDES(stats_mutex_);

  /// The service's flight recorder: a lock-free ring of rare structured
  /// events (shed, degraded, WAL failure, publish retry, epoch swap...).
  /// Dumped to stderr automatically on crash-adjacent Start() failures.
  const obs::EventJournal& journal() const { return journal_; }

  /// Drops the latency sample window (e.g. after warmup, or when a
  /// metrics scraper wants per-interval percentiles). Cumulative
  /// counters are unaffected.
  void ClearLatencyWindow() PITEX_EXCLUDES(stats_mutex_);

  /// Footprint of the current snapshot's shared index (0 for online
  /// methods).
  size_t SharedIndexSizeBytes() const;

  // --- replication surface (src/serve/replication.h) ---

  /// Adopts a new term (follower promotion). ApplyUpdates fences
  /// against the authority's current term, so adoption is exactly what
  /// turns a promoted follower into an acknowledging primary.
  void AdoptTerm(uint64_t term);
  /// The term this writer currently operates under.
  uint64_t term() const { return term_.load(std::memory_order_acquire); }
  /// Last WAL LSN acknowledged as durable (0 without durability). A
  /// lock-free mirror, safe from any thread: the WAL shipper tails the
  /// log up to exactly this watermark, never past it — records beyond
  /// it may still be rolled back by a failed commit.
  uint64_t durable_lsn() const {
    return durable_lsn_mirror_.load(std::memory_order_acquire);
  }
  /// The service's metrics registry. Replication components register
  /// their series here so one --stats-out dump carries the serving and
  /// replication ledgers together (docs/observability.md).
  obs::MetricsRegistry& metrics() { return metrics_; }
  /// Journal handle for components recording on this service's
  /// timeline (ship / resync / promote events).
  obs::EventJournal& mutable_journal() { return journal_; }
  /// The WAL's retention-hold registry (internally synchronized;
  /// stable until destruction), or nullptr without durability. Only
  /// meaningful after Start().
  WalRetentionHolds* WalRetention() PITEX_EXCLUDES(update_mutex_);

  const ServeOptions& options() const { return options_; }

 private:
  using Clock = std::chrono::steady_clock;

  struct PendingQuery {
    PitexQuery query;
    Clock::time_point enqueued;
    ServedResult* slot = nullptr;                      // batch delivery
    std::unique_ptr<std::promise<ServedResult>> promise;  // streaming
    std::atomic<size_t>* remaining = nullptr;          // batch countdown
    /// Identity only (8 bytes): span storage lives in the tracer's
    /// thread-local rings, not in the query (src/obs/trace.h).
    obs::TraceContext trace;
  };

  /// Engine replica + pinned snapshot of one worker. Only pump w touches
  /// workers_[w] (worker exclusivity via SubmitIndexed — two tasks with
  /// the same index never run concurrently), so these fields carry no
  /// lock annotation. Cross-thread-read counters live in WorkerCounters.
  struct WorkerState {
    std::unique_ptr<PitexEngine> engine;
    std::shared_ptr<const IndexSnapshot> snapshot;
    uint64_t engine_epoch = 0;
  };

  /// Per-worker serving counters, flushed once per run by the pump and
  /// read by Stats()/ClearLatencyWindow() from arbitrary threads — the
  /// stats_mutex_-guarded half of the former WorkerState. Scalar
  /// disposition counts (degraded, steals, ...) moved to the registry
  /// (MetricHandles); only the per-worker load split and the latency
  /// sample window still need this mutex.
  struct WorkerCounters {
    uint64_t served = 0;
    std::vector<double> latency_ring;
    size_t latency_pos = 0;
  };

  /// Registered-once handles into metrics_ (stable for the service's
  /// lifetime; see RegisterMetrics for the name catalog). The hot paths
  /// increment through these pointers -- never a registry lookup.
  struct MetricHandles {
    // Conservation chain: submitted == admitted + shed_queue_full +
    // shed_rate_limited, and admitted == ok + degraded +
    // deadline_expired once the queue drains (asserted by the chaos
    // suite). Incremented at the verdict sites so the identities hold
    // with or without an AdmissionController.
    obs::Counter* submitted = nullptr;
    obs::Counter* admitted = nullptr;
    obs::Counter* shed_queue_full = nullptr;
    obs::Counter* shed_rate_limited = nullptr;
    obs::Counter* ok = nullptr;
    obs::Counter* degraded = nullptr;
    obs::Counter* deadline_expired = nullptr;
    obs::Counter* cache_hits = nullptr;
    obs::Counter* steals = nullptr;
    obs::Counter* publish_retries = nullptr;
    obs::Counter* publish_failures = nullptr;
    obs::Counter* wal_appends = nullptr;
    obs::Counter* wal_fsyncs = nullptr;
    obs::Counter* wal_append_failures = nullptr;
    obs::Counter* checkpoints = nullptr;
    obs::Counter* checkpoint_failures = nullptr;
    obs::Counter* recovery_replayed = nullptr;
    obs::Counter* fenced_writes = nullptr;
    obs::Histogram* sojourn = nullptr;
    // Derived gauges, written only by CollectDerivedMetrics().
    obs::Gauge* cache_entries = nullptr;
    obs::Gauge* cache_insertions = nullptr;
    obs::Gauge* cache_evictions = nullptr;
    obs::Gauge* current_epoch = nullptr;
    obs::Gauge* epochs_published = nullptr;
    obs::Gauge* snapshots_alive = nullptr;
    obs::Gauge* admission_in_flight = nullptr;
    obs::Gauge* publish_in_flight = nullptr;
    obs::Gauge* durable_lsn = nullptr;
    obs::Gauge* published_lsn = nullptr;
    obs::Gauge* staleness_batches = nullptr;
    obs::Gauge* staleness_lsns = nullptr;
    obs::Gauge* term = nullptr;
  };

  void PumpLoop(size_t worker)
      PITEX_EXCLUDES(sched_mutex_, stats_mutex_, batch_mutex_);
  void ServeRun(size_t worker, std::vector<PendingQuery>* run, bool stolen)
      PITEX_EXCLUDES(stats_mutex_, batch_mutex_);
  void BindWorker(WorkerState* state,
                  std::shared_ptr<const IndexSnapshot> snapshot,
                  size_t worker);
  /// Freezes a snapshot of the master at `epoch`, retrying with jittered
  /// exponential backoff on (possibly fault-injected) failure. Returns
  /// nullptr after options_.publish_max_attempts failures. Maintains the
  /// publish watchdog atomics and the admission publish-priority window.
  std::shared_ptr<const IndexSnapshot> FreezeSnapshotLocked(uint64_t epoch)
      PITEX_REQUIRES(update_mutex_);
  /// After a successful publish: when the checkpoint cadence is due,
  /// persists `snapshot` + a manifest through src/serve/recovery.h and
  /// truncates the WAL behind it. Failure is non-fatal (counted in
  /// checkpoint_failures; the next publish retries).
  void MaybeCheckpointLocked(const IndexSnapshot& snapshot)
      PITEX_REQUIRES(update_mutex_);
  /// Registers every per-service metric into metrics_ and installs the
  /// derived-gauge collector. Ctor only (handles are then immutable).
  void RegisterMetrics();
  /// Collector body, run under the registry lock at every Snapshot():
  /// mirrors internally-locked sources and the staleness atomics into
  /// the gauges of MetricHandles.
  void CollectDerivedMetrics();
  void EnqueueLocked(PendingQuery item, size_t sequence)
      PITEX_REQUIRES(sched_mutex_);
  bool AnyStealableLocked(size_t thief) const PITEX_REQUIRES(sched_mutex_);
  bool TryStealLocked(size_t thief, std::vector<PendingQuery>* run)
      PITEX_REQUIRES(sched_mutex_);

  const SocialNetwork* network_;
  ServeOptions options_;

  // Observability spine (docs/observability.md). Per-service instances:
  // two services in one process never share counts, which the
  // conservation-invariant tests rely on. Registered handles in m_ are
  // written lock-free from the serving paths; journal_.Record is
  // wait-free and only ever called on rare-event paths.
  obs::MetricsRegistry metrics_;
  obs::EventJournal journal_;
  MetricHandles m_;

  Mutex start_mutex_;  // serializes lazy Start()
  std::atomic<bool> started_{false};

  IndexSnapshotRegistry registry_;
  /// Serializes publishers (Start's initial build, ApplyUpdates) and
  /// guards the writer-side state they touch.
  Mutex update_mutex_;
  // Shadow copy repairs mutate privately (enable_updates only).
  std::unique_ptr<DynamicRrIndex> master_ PITEX_GUARDED_BY(update_mutex_);
  // Maintenance pool for publish-side packs (never the pump pool — its
  // workers are parked for good).
  std::unique_ptr<ThreadPool> publish_pool_ PITEX_GUARDED_BY(update_mutex_);
  // Backoff jitter for publish retries. The fixed seed is deliberate:
  // jitter decorrelates retry timing across *publishers*, which a shared
  // deterministic stream still provides, and keeping it off the query
  // seed preserves "same options => same query answers".
  Rng backoff_rng_ PITEX_GUARDED_BY(update_mutex_){0xB0FFu};
  // Publish watchdog (read by Stats() without update_mutex_ -- a stuck
  // publish holds that mutex, which is exactly when Stats() must still
  // make progress). Retry/failure COUNTS live in m_ (registry counters
  // are equally lock-free); only the in-flight flag and its start time
  // remain raw atomics.
  std::atomic<bool> publish_in_flight_{false};
  std::atomic<int64_t> publish_started_ns_{0};
  // Durability (all null/zero when options_.durability_dir is empty).
  // Writer-side state lives under update_mutex_ with the master it
  // journals; the wal_*_seen_ trackers convert the WAL's absolute
  // appends()/fsyncs() readings into registry-counter deltas (counters
  // only go up) without Stats() ever touching the publisher lock.
  std::unique_ptr<WriteAheadLog> wal_ PITEX_GUARDED_BY(update_mutex_);
  uint64_t last_durable_lsn_ PITEX_GUARDED_BY(update_mutex_) = 0;
  uint64_t publishes_since_checkpoint_ PITEX_GUARDED_BY(update_mutex_) = 0;
  uint64_t wal_appends_seen_ PITEX_GUARDED_BY(update_mutex_) = 0;
  uint64_t wal_fsyncs_seen_ PITEX_GUARDED_BY(update_mutex_) = 0;
  // Edges diverged from the base network (sorted, unique): the next
  // checkpoint's model delta. Seeded by recovery, grown per batch.
  std::vector<EdgeId> touched_edges_ PITEX_GUARDED_BY(update_mutex_);
  // Staleness feed (docs/observability.md, "Staleness"): how far the
  // served snapshot trails the acknowledged (durable) history. Written
  // under update_mutex_ serialization, read lock-free by the collector:
  //   staleness_batches = applied - published   (epoch lag)
  //   staleness_lsns    = durable - published   (ack lag)
  // Both are zero in steady state; nonzero means readers serve an epoch
  // that predates batches already applied/acked (publish failing).
  std::atomic<uint64_t> applied_batches_{0};
  std::atomic<uint64_t> published_batches_{0};
  std::atomic<uint64_t> durable_lsn_mirror_{0};
  std::atomic<uint64_t> published_lsn_mirror_{0};
  // This writer's replication term (see AdoptTerm). Atomic, not
  // update_mutex_-guarded: a promoted follower adopts from its
  // replication thread while readers poll term() freely.
  std::atomic<uint64_t> term_{1};
  std::unique_ptr<ResultCache> cache_;  // created by ctor, then immutable
  // Admission control; null unless work-stealing mode with a limit set.
  // Created by the ctor, then immutable (internally synchronized).
  std::unique_ptr<AdmissionController> admission_;

  // Scheduler state.
  Mutex sched_mutex_;
  CondVar work_cv_;
  std::vector<std::deque<PendingQuery>> deques_ PITEX_GUARDED_BY(sched_mutex_);
  bool stop_ PITEX_GUARDED_BY(sched_mutex_) = false;
  // Round-robin placement for Submit.
  uint64_t stream_seq_ PITEX_GUARDED_BY(sched_mutex_) = 0;

  // Batch completion: decrement-to-zero notifies under batch_mutex_. The
  // mutex guards no member — it exists so the final notify cannot slip
  // between a waiter's predicate check and its wait.
  Mutex batch_mutex_;
  CondVar batch_cv_;

  Mutex stats_mutex_;
  std::vector<WorkerCounters> counters_ PITEX_GUARDED_BY(stats_mutex_);
  std::vector<WorkerState> workers_;  // element w owned by pump w

  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace pitex

#endif  // PITEX_SRC_SERVE_PITEX_SERVICE_H_
