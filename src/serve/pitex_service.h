// PitexService: the online query-serving subsystem.
//
// BatchEngine (src/core/batch_engine.h) answers a closed batch with
// static round-robin worker assignment — the right tool for offline
// evaluation runs, and deliberately deterministic. A serving deployment
// faces a different shape: an open stream of queries with skewed
// per-query cost (hub users cost orders of magnitude more than leaf
// users), arriving in bursts, while the underlying influence model is
// re-learned continually. PitexService covers that scenario class:
//
//   * scheduling — every query lands on a per-worker FIFO deque; idle
//     workers steal from the most loaded deque, so one hub query no
//     longer stalls the whole residue class it round-robins into. Each
//     worker owns a persistent PitexEngine replica (and thereby a
//     persistent BestEffortScratch + sampler state), so steady-state
//     serving allocates only at the scheduling layer. A `deterministic`
//     mode disables stealing and pins query i of a ServeAll batch to
//     worker i % num_threads — reproducing BatchEngine::ExploreAll
//     bit-identically (pinned by tests/pitex_service_test.cc);
//   * snapshots — queries pin the current IndexSnapshot; ApplyUpdates
//     repairs a shadow DynamicRrIndex master and publishes a fresh
//     immutable snapshot, so in-flight queries finish on the epoch they
//     started while new queries see the repaired index (see
//     src/serve/snapshot_registry.h);
//   * memoization — answers are cached per (user, k, top_n, method,
//     epoch) in a sharded LRU ResultCache; epoch keying makes update
//     invalidation free. The cache is forced off in deterministic mode
//     (a hit would skip sampler RNG advancement and change every later
//     answer on that worker).
//
// Threading: built on util/thread_pool — Start() parks one pump task per
// pool worker via SubmitIndexed, whose worker index keys the engine
// replica. ServeAll blocks until its batch drains; Submit returns a
// future for streaming callers. All public methods are thread-safe;
// ServeAll/Submit may run concurrently with ApplyUpdates.

#ifndef PITEX_SRC_SERVE_PITEX_SERVICE_H_
#define PITEX_SRC_SERVE_PITEX_SERVICE_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <span>
#include <vector>

#include "src/core/engine.h"
#include "src/index/dynamic_index.h"
#include "src/serve/result_cache.h"
#include "src/serve/service_stats.h"
#include "src/serve/snapshot_registry.h"
#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"
#include "src/util/thread_pool.h"

namespace pitex {

enum class ScheduleMode {
  /// Per-worker deques with stealing: best throughput under skew; the
  /// worker (and hence sampler seed) serving a query is load-dependent.
  kWorkStealing,
  /// Static assignment (batch query i -> worker i % num_threads), no
  /// stealing, no cache: bit-identical to BatchEngine::ExploreAll for
  /// the same (options, num_threads).
  kDeterministic,
};

struct ServeOptions {
  /// Per-worker engine configuration; worker w uses seed engine.seed + w
  /// (the same derivation as BatchEngine).
  EngineOptions engine;
  size_t num_threads = 4;
  ScheduleMode mode = ScheduleMode::kWorkStealing;
  /// Ranked answers per query (1 = classic Explore).
  size_t top_n = 1;
  /// Result-cache entry budget; 0 disables. Ignored (off) in
  /// deterministic mode.
  size_t cache_capacity = 4096;
  size_t cache_shards = 8;
  /// Keep a DynamicRrIndex master so ApplyUpdates can publish repaired
  /// snapshots. Requires an RR-Graph method (kIndexEst / kIndexEstPlus).
  bool enable_updates = false;
  /// Workers for the publish-side freeze (IndexSnapshot::FromDynamic):
  /// the network copy overlaps a pool-parallel pack. The serving pool is
  /// permanently parked under the pumps, so publishes get their own
  /// small maintenance pool; it sits idle between epochs. 0 or 1 (the
  /// default) freezes serially — only worth enabling when cores are
  /// genuinely free beyond the serving pumps.
  size_t publish_threads = 0;
  /// Per-worker ring size for latency samples (Stats()).
  size_t latency_window = 1 << 14;
};

/// One served answer plus serving metadata.
struct ServedResult {
  PitexResult result;
  /// Up to top_n ranked tag sets (ranking[0] == result.tags). For cache
  /// hits the PitexResult counters are zero — no work was done.
  std::vector<RankedTagSet> ranking;
  /// Index epoch the answer was computed against.
  uint64_t epoch = 0;
  /// Worker that served it.
  uint32_t worker = 0;
  bool cache_hit = false;
  /// Served off another worker's deque (work-stealing mode).
  bool stolen = false;
};

class PitexService {
 public:
  /// `network` must outlive the service.
  PitexService(const SocialNetwork* network, const ServeOptions& options);
  ~PitexService();

  PitexService(const PitexService&) = delete;
  PitexService& operator=(const PitexService&) = delete;

  /// Builds the epoch-1 snapshot (offline index for index methods) and
  /// parks the worker pumps. Idempotent; invoked lazily by the serving
  /// entry points.
  void Start() PITEX_EXCLUDES(start_mutex_, update_mutex_);

  /// Answers a batch: results[i] corresponds to queries[i]. Blocks until
  /// every query in the batch is served; other threads may ServeAll /
  /// Submit / ApplyUpdates concurrently.
  std::vector<ServedResult> ServeAll(std::span<const PitexQuery> queries)
      PITEX_EXCLUDES(sched_mutex_, batch_mutex_);

  /// Streaming entry point: enqueues one query, returns immediately.
  std::future<ServedResult> Submit(const PitexQuery& query)
      PITEX_EXCLUDES(sched_mutex_);

  /// Repairs the shadow master index and atomically publishes the result
  /// as a new snapshot epoch (returned). In-flight queries are
  /// unaffected; subsequent queries see the repaired index. Requires
  /// options.enable_updates.
  uint64_t ApplyUpdates(std::span<const EdgeInfluenceUpdate> updates)
      PITEX_EXCLUDES(update_mutex_);

  /// The snapshot new queries are currently served from.
  std::shared_ptr<const IndexSnapshot> CurrentSnapshot() const;
  uint64_t current_epoch() const;

  /// Consistent counter snapshot (prunes expired snapshot observers).
  ServiceStats Stats() PITEX_EXCLUDES(stats_mutex_);

  /// Drops the latency sample window (e.g. after warmup, or when a
  /// metrics scraper wants per-interval percentiles). Cumulative
  /// counters are unaffected.
  void ClearLatencyWindow() PITEX_EXCLUDES(stats_mutex_);

  /// Footprint of the current snapshot's shared index (0 for online
  /// methods).
  size_t SharedIndexSizeBytes() const;

  const ServeOptions& options() const { return options_; }

 private:
  using Clock = std::chrono::steady_clock;

  struct PendingQuery {
    PitexQuery query;
    Clock::time_point enqueued;
    ServedResult* slot = nullptr;                      // batch delivery
    std::unique_ptr<std::promise<ServedResult>> promise;  // streaming
    std::atomic<size_t>* remaining = nullptr;          // batch countdown
  };

  /// Engine replica + pinned snapshot of one worker. Only pump w touches
  /// workers_[w] (worker exclusivity via SubmitIndexed — two tasks with
  /// the same index never run concurrently), so these fields carry no
  /// lock annotation. Cross-thread-read counters live in WorkerCounters.
  struct WorkerState {
    std::unique_ptr<PitexEngine> engine;
    std::shared_ptr<const IndexSnapshot> snapshot;
    uint64_t engine_epoch = 0;
  };

  /// Per-worker serving counters, flushed once per run by the pump and
  /// read by Stats()/ClearLatencyWindow() from arbitrary threads — the
  /// stats_mutex_-guarded half of the former WorkerState.
  struct WorkerCounters {
    uint64_t served = 0;
    uint64_t steals = 0;
    std::vector<double> latency_ring;
    size_t latency_pos = 0;
  };

  void PumpLoop(size_t worker)
      PITEX_EXCLUDES(sched_mutex_, stats_mutex_, batch_mutex_);
  void ServeRun(size_t worker, std::vector<PendingQuery>* run, bool stolen)
      PITEX_EXCLUDES(stats_mutex_, batch_mutex_);
  void BindWorker(WorkerState* state,
                  std::shared_ptr<const IndexSnapshot> snapshot,
                  size_t worker);
  void EnqueueLocked(PendingQuery item, size_t sequence)
      PITEX_REQUIRES(sched_mutex_);
  bool AnyStealableLocked(size_t thief) const PITEX_REQUIRES(sched_mutex_);
  bool TryStealLocked(size_t thief, std::vector<PendingQuery>* run)
      PITEX_REQUIRES(sched_mutex_);

  const SocialNetwork* network_;
  ServeOptions options_;

  Mutex start_mutex_;  // serializes lazy Start()
  std::atomic<bool> started_{false};

  IndexSnapshotRegistry registry_;
  /// Serializes publishers (Start's initial build, ApplyUpdates) and
  /// guards the writer-side state they touch.
  Mutex update_mutex_;
  // Shadow copy repairs mutate privately (enable_updates only).
  std::unique_ptr<DynamicRrIndex> master_ PITEX_GUARDED_BY(update_mutex_);
  // Maintenance pool for publish-side packs (never the pump pool — its
  // workers are parked for good).
  std::unique_ptr<ThreadPool> publish_pool_ PITEX_GUARDED_BY(update_mutex_);
  std::unique_ptr<ResultCache> cache_;  // created by ctor, then immutable

  // Scheduler state.
  Mutex sched_mutex_;
  CondVar work_cv_;
  std::vector<std::deque<PendingQuery>> deques_ PITEX_GUARDED_BY(sched_mutex_);
  bool stop_ PITEX_GUARDED_BY(sched_mutex_) = false;
  // Round-robin placement for Submit.
  uint64_t stream_seq_ PITEX_GUARDED_BY(sched_mutex_) = 0;

  // Batch completion: decrement-to-zero notifies under batch_mutex_. The
  // mutex guards no member — it exists so the final notify cannot slip
  // between a waiter's predicate check and its wait.
  Mutex batch_mutex_;
  CondVar batch_cv_;

  Mutex stats_mutex_;
  std::vector<WorkerCounters> counters_ PITEX_GUARDED_BY(stats_mutex_);
  std::vector<WorkerState> workers_;  // element w owned by pump w

  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace pitex

#endif  // PITEX_SRC_SERVE_PITEX_SERVICE_H_
