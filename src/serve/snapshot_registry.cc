#include "src/serve/snapshot_registry.h"

#include <algorithm>

#include "src/index/rr_sketch_pool.h"
#include "src/obs/trace.h"
#include "src/util/check.h"
#include "src/util/failpoint.h"

namespace pitex {

std::shared_ptr<const IndexSnapshot> IndexSnapshot::Wrap(
    const SocialNetwork* network, std::unique_ptr<RrIndex> rr_index,
    std::string delay_snapshot, uint64_t epoch) {
  PITEX_CHECK(network != nullptr);
  auto snapshot = std::shared_ptr<IndexSnapshot>(new IndexSnapshot());
  // Non-owning alias: the control block holds nothing, the pointer is
  // the caller's network (which outlives the snapshot by contract).
  snapshot->network_ =
      std::shared_ptr<const SocialNetwork>(std::shared_ptr<void>(), network);
  snapshot->rr_index_ = std::move(rr_index);
  snapshot->delay_snapshot_ = std::move(delay_snapshot);
  snapshot->epoch_ = epoch;
  return snapshot;
}

std::shared_ptr<const IndexSnapshot> IndexSnapshot::FromDynamic(
    const DynamicRrIndex& master, uint64_t epoch, ThreadPool* pack_pool) {
  // Chaos hook: a freeze that "fails" before any work models the
  // transient failures (allocation pressure, wedged pack pool) a real
  // publish path must survive. Callers treat nullptr as a retryable
  // error (PitexService::FreezeSnapshotLocked backs off and retries).
  if (PITEX_FAILPOINT("serve/publish_freeze")) return nullptr;
  // The pack span attributes to whichever trace is current on this
  // thread (the publish trace during ApplyUpdates); with no current
  // trace the span is inert.
  PITEX_SPAN(kPack);
  auto snapshot = std::shared_ptr<IndexSnapshot>(new IndexSnapshot());
  // The frozen network copy must live in the snapshot (stable address)
  // before the RrIndex replica can reference it.
  auto network = std::make_shared<SocialNetwork>();
  const size_t num_vertices = master.network().num_vertices();
  RrSketchPool pool;
  if (pack_pool != nullptr) {
    // The freeze has two independent halves — the (post-update) network
    // copy and the sketch pack. With a pool they overlap: the copy runs
    // as one pool task while Pack fans its copy/containing passes over
    // the remaining workers; Pack's internal Wait covers the copy task
    // (ThreadPool::Wait is global quiescence).
    PITEX_CHECK_MSG(
        pack_pool->Submit([&network, &master] { *network = master.network(); }),
        "pack pool shut down mid-freeze");
    pool = RrSketchPool::Pack(master.graphs(), num_vertices, pack_pool);
    pack_pool->Wait();
  } else {
    *network = master.network();
    pool = RrSketchPool::Pack(master.graphs(), num_vertices);
  }
  snapshot->rr_index_ = RrIndex::FromPool(*network, master.options(),
                                          master.theta(), std::move(pool));
  snapshot->network_ = std::move(network);
  snapshot->epoch_ = epoch;
  return snapshot;
}

void IndexSnapshotRegistry::Publish(
    std::shared_ptr<const IndexSnapshot> snapshot) {
  PITEX_CHECK(snapshot != nullptr);
  MutexLock lock(mutex_);
  if (current_ != nullptr) {
    PITEX_CHECK_MSG(snapshot->epoch() > current_->epoch(),
                    "published epoch must increase");
    retired_.push_back(current_);
  }
  current_ = std::move(snapshot);
  ++epochs_published_;
}

std::shared_ptr<const IndexSnapshot> IndexSnapshotRegistry::Current() const {
  MutexLock lock(mutex_);
  return current_;
}

uint64_t IndexSnapshotRegistry::current_epoch() const {
  MutexLock lock(mutex_);
  return current_ == nullptr ? 0 : current_->epoch();
}

uint64_t IndexSnapshotRegistry::epochs_published() const {
  MutexLock lock(mutex_);
  return epochs_published_;
}

size_t IndexSnapshotRegistry::AliveSnapshots() {
  MutexLock lock(mutex_);
  retired_.erase(std::remove_if(retired_.begin(), retired_.end(),
                                [](const std::weak_ptr<const IndexSnapshot>& w) {
                                  return w.expired();
                                }),
                 retired_.end());
  return retired_.size();
}

}  // namespace pitex
