// Immutable, refcounted index snapshots with atomic hot swap.
//
// The serving layer must answer queries while the underlying index
// evolves (DynamicRrIndex repairs as the influence model drifts). The
// classic lock answer — a reader/writer lock around the index — stalls
// every in-flight query for the duration of a repair batch. Instead the
// registry versions the index into immutable *snapshots*:
//
//   * an IndexSnapshot is a frozen (network copy, RrIndex replica) pair
//     stamped with a monotonically increasing epoch. It is never mutated
//     after construction, so any number of workers read it without
//     synchronization (RrIndex estimation is const + per-thread scratch);
//   * repairs run on the writer's private master DynamicRrIndex — a
//     shadow copy no reader ever sees — and publishing packs the master
//     into a fresh snapshot and swaps the registry's current pointer
//     under a mutex held for nanoseconds, not for the repair;
//   * reclamation is refcount-by-epoch: each query pins the snapshot it
//     started on via shared_ptr, so an old epoch stays alive exactly
//     until its last in-flight reader finishes, then frees itself. The
//     registry keeps weak observers of retired epochs purely for
//     stats/tests (AliveSnapshots).
//
// The registry stores snapshots only; the writer-side master and the
// publish cadence live in PitexService (src/serve/pitex_service.h).

#ifndef PITEX_SRC_SERVE_SNAPSHOT_REGISTRY_H_
#define PITEX_SRC_SERVE_SNAPSHOT_REGISTRY_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/index/dynamic_index.h"
#include "src/index/rr_index.h"
#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace pitex {

/// One immutable serving version of the index. Workers bind engine
/// replicas to a snapshot's network + index and keep a shared_ptr pin
/// for as long as any engine references it.
class IndexSnapshot {
 public:
  /// Frozen copy of the influence model the index was sampled from;
  /// posterior probabilities for queries served from this snapshot must
  /// be computed against it.
  const SocialNetwork& network() const { return *network_; }
  /// Shared RR-Graph replica (kIndexEst / kIndexEstPlus), else null.
  /// Read-only after build; safe for concurrent engines (see
  /// PitexEngine::UseSharedRrIndex).
  RrIndex* rr_index() const { return rr_index_.get(); }
  /// Serialized DelayMat prototype (kDelayMat), hydrated per worker via
  /// LoadDelayMatIndex; empty otherwise.
  const std::string& delay_snapshot() const { return delay_snapshot_; }
  uint64_t epoch() const { return epoch_; }

  /// Aliases `network` without copying (initial snapshot on a caller-
  /// owned network; `network` must outlive the snapshot). `rr_index` may
  /// be null for online methods.
  static std::shared_ptr<const IndexSnapshot> Wrap(
      const SocialNetwork* network, std::unique_ptr<RrIndex> rr_index,
      std::string delay_snapshot, uint64_t epoch);

  /// Freezes the master's current state: copies its (post-update)
  /// network and packs its sketches into an immutable pooled RrIndex
  /// replica (RrIndex::FromPool). This is the publish path for
  /// serve-during-update. When `pack_pool` is non-null the pool pack
  /// (sketch copy + containing index) runs across its workers — pass a
  /// maintenance pool, never the pool the caller is running on.
  ///
  /// Returns nullptr when the freeze fails — today only via the
  /// "serve/publish_freeze" fail point (src/util/failpoint.h), standing
  /// in for the transient failures a real publish path must survive.
  /// Callers must treat nullptr as retryable (see
  /// PitexService::ApplyUpdates for the retry/backoff policy).
  static std::shared_ptr<const IndexSnapshot> FromDynamic(
      const DynamicRrIndex& master, uint64_t epoch,
      ThreadPool* pack_pool = nullptr);

 private:
  IndexSnapshot() = default;

  std::shared_ptr<const SocialNetwork> network_;
  std::unique_ptr<RrIndex> rr_index_;
  std::string delay_snapshot_;
  uint64_t epoch_ = 0;
};

class IndexSnapshotRegistry {
 public:
  IndexSnapshotRegistry() = default;

  IndexSnapshotRegistry(const IndexSnapshotRegistry&) = delete;
  IndexSnapshotRegistry& operator=(const IndexSnapshotRegistry&) = delete;

  /// Atomically makes `snapshot` the version new queries are served
  /// from. Its epoch must exceed the current one. In-flight readers of
  /// older snapshots are unaffected; the displaced snapshot is retired
  /// and reclaimed when its last reader unpins it.
  void Publish(std::shared_ptr<const IndexSnapshot> snapshot)
      PITEX_EXCLUDES(mutex_);

  /// The snapshot new queries should pin, or null before first Publish.
  std::shared_ptr<const IndexSnapshot> Current() const PITEX_EXCLUDES(mutex_);

  /// Epoch of the current snapshot (0 before first Publish).
  uint64_t current_epoch() const PITEX_EXCLUDES(mutex_);
  uint64_t epochs_published() const PITEX_EXCLUDES(mutex_);

  /// Retired snapshots still pinned by in-flight readers. Expired
  /// observers are pruned as a side effect (epoch-based reclamation is
  /// the shared_ptr refcount; this is the observability hook).
  size_t AliveSnapshots() PITEX_EXCLUDES(mutex_);

 private:
  mutable Mutex mutex_;
  std::shared_ptr<const IndexSnapshot> current_ PITEX_GUARDED_BY(mutex_);
  std::vector<std::weak_ptr<const IndexSnapshot>> retired_
      PITEX_GUARDED_BY(mutex_);
  uint64_t epochs_published_ PITEX_GUARDED_BY(mutex_) = 0;
};

}  // namespace pitex

#endif  // PITEX_SRC_SERVE_SNAPSHOT_REGISTRY_H_
