#include "src/serve/wal.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "src/util/failpoint.h"
#include "src/util/file_sync.h"
#include "src/util/serialize.h"

// The writer needs fd-level fsync control, so this file is POSIX-only
// (matching src/util/file_sync.cc, which degrades to no-ops elsewhere).
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

namespace pitex {

namespace {

constexpr char kSegmentMagic[9] = "PITEXWAL";  // 8 bytes on disk
constexpr uint32_t kFormatVersion = 1;
constexpr uint32_t kFrameMagic = 0x52575850u;  // "PXWR" little-endian
constexpr size_t kSegmentHeaderBytes = 8 + 4 + 8;
// A record is one ApplyUpdates batch; anything near this bound is a
// corrupt length field, not a real batch.
constexpr uint32_t kMaxRecordBytes = 256u << 20;

void AppendLe(std::string* out, uint64_t value, size_t width) {
  for (size_t i = 0; i < width; ++i) {
    out->push_back(static_cast<char>(value >> (8 * i)));
  }
}

uint64_t DecodeLe(const unsigned char* buf, size_t width) {
  uint64_t value = 0;
  for (size_t i = 0; i < width; ++i) {
    value |= static_cast<uint64_t>(buf[i]) << (8 * i);
  }
  return value;
}

// write(2) the whole buffer, resuming partial writes and EINTR.
bool WriteFully(int fd, const char* data, size_t size) {
  size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;
    written += static_cast<size_t>(n);
  }
  return true;
}

struct SegmentFile {
  uint64_t start_lsn = 0;
  std::string path;
};

// Segments in `dir`, sorted by the start LSN encoded in the filename
// (the header restates it; ReadWalAfter cross-checks the two). A
// failing listing must not read as an empty log — an I/O error during
// recovery would silently discard acknowledged history — so iteration
// errors are surfaced through `io_error` (callers that only delete,
// like TruncateThrough, may pass nullptr and skip the pass instead).
std::vector<SegmentFile> ListSegments(const std::string& dir,
                                      std::error_code* io_error) {
  std::vector<SegmentFile> segments;
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  for (; !ec && it != std::filesystem::directory_iterator();
       it.increment(ec)) {
    const auto& entry = *it;
    const std::string name = entry.path().filename().string();
    if (name.size() != 4 + 16 + 4 || name.rfind("wal-", 0) != 0 ||
        name.compare(name.size() - 4, 4, ".log") != 0) {
      continue;
    }
    uint64_t lsn = 0;
    bool valid = true;
    for (size_t i = 4; i < 4 + 16; ++i) {
      const char c = name[i];
      uint64_t digit;
      if (c >= '0' && c <= '9') digit = static_cast<uint64_t>(c - '0');
      else if (c >= 'a' && c <= 'f') digit = static_cast<uint64_t>(c - 'a') + 10;
      else { valid = false; break; }
      lsn = (lsn << 4) | digit;
    }
    if (!valid) continue;
    segments.push_back(SegmentFile{lsn, entry.path().string()});
  }
  if (ec && io_error != nullptr) *io_error = ec;
  std::sort(segments.begin(), segments.end(),
            [](const SegmentFile& a, const SegmentFile& b) {
              return a.start_lsn < b.start_lsn;
            });
  return segments;
}

WalReadResult MakeResult(WalReadStatus status, std::string message) {
  WalReadResult result;
  result.status = status;
  result.message = std::move(message);
  return result;
}

}  // namespace

std::string WalSegmentName(uint64_t start_lsn) {
  char buf[4 + 16 + 4 + 1];
  std::snprintf(buf, sizeof(buf), "wal-%016llx.log",
                static_cast<unsigned long long>(start_lsn));
  return std::string(buf);
}

std::unique_ptr<WriteAheadLog> WriteAheadLog::Open(const std::string& dir,
                                                   uint64_t next_lsn,
                                                   const WalOptions& options,
                                                   std::string* error) {
  if (next_lsn == 0) next_lsn = 1;  // LSNs are dense from 1
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    if (error != nullptr) {
      *error = "cannot create WAL directory: " + ec.message();
    }
    return nullptr;
  }
  auto wal = std::unique_ptr<WriteAheadLog>(
      new WriteAheadLog(dir, next_lsn, options));
  std::string open_error;
  if (!wal->OpenSegment(next_lsn, &open_error)) {
    if (error != nullptr) *error = open_error;
    return nullptr;
  }
  return wal;
}

WriteAheadLog::~WriteAheadLog() {
  if (fd_ >= 0) {
    if (options_.fsync == WalFsyncPolicy::kAlways && ::fsync(fd_) == 0) {
      ++fsyncs_;
    }
    // pitex-check: allow(io-checked): best-effort close on teardown
    ::close(fd_);
  }
}

bool WriteAheadLog::OpenSegment(uint64_t start_lsn, std::string* error) {
  segment_path_ = dir_ + "/" + WalSegmentName(start_lsn);
  // O_TRUNC is safe: a pre-existing segment named start_lsn can only
  // hold a torn (never-acknowledged) tail — recovery computed start_lsn
  // as one past the last *committed* record.
  fd_ = ::open(segment_path_.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd_ < 0) {
    if (error != nullptr) {
      *error = "cannot open WAL segment " + segment_path_ + ": " +
               std::strerror(errno);
    }
    return false;
  }
  std::string header;
  header.append(kSegmentMagic, 8);
  AppendLe(&header, kFormatVersion, 4);
  AppendLe(&header, start_lsn, 8);
  bool ok = WriteFully(fd_, header.data(), header.size());
  if (ok && options_.fsync == WalFsyncPolicy::kAlways) {
    ok = ::fsync(fd_) == 0;
    if (ok) {
      ++fsyncs_;
      // The segment's existence must survive a crash too.
      ok = SyncParentDir(segment_path_);
    }
  }
  if (!ok) {
    if (error != nullptr) {
      *error = "cannot initialize WAL segment " + segment_path_;
    }
    // pitex-check: allow(io-checked): error path, fd abandoned anyway
    ::close(fd_);
    fd_ = -1;
    return false;
  }
  segment_start_lsn_ = start_lsn;
  offset_ = header.size();
  committed_offset_ = offset_;
  return true;
}

void WriteAheadLog::RollBackTo(uint64_t offset) {
  // If the truncate (or the seek back to the new end) fails, the file
  // still holds the rolled-back bytes while the writer's accounting
  // says they are gone: the next append would land after the stale
  // frames, and the reader would see either never-acknowledged records
  // replayed or a duplicate-LSN sequence it rightly refuses as corrupt.
  // Poison the writer instead — every later Append/Sync fails, the
  // committed prefix on disk stays exactly as acknowledged, and the
  // service degrades to rejecting updates rather than corrupting its
  // own log.
  if (::ftruncate(fd_, static_cast<off_t>(offset)) != 0 ||
      ::lseek(fd_, static_cast<off_t>(offset), SEEK_SET) < 0) {
    // pitex-check: allow(io-checked): poisoning; the fd is abandoned
    ::close(fd_);
    fd_ = -1;
    return;  // offset_ is stale but unreachable: fd_ < 0 gates all writes
  }
  offset_ = offset;
}

bool WriteAheadLog::RotateIfNeeded() {
  if (offset_ < options_.segment_bytes) return true;
  // Rotate only at a commit boundary so rollback never has to cross a
  // segment; mid-group-commit appends stay in the active segment.
  if (offset_ != committed_offset_) return true;
  if (options_.fsync == WalFsyncPolicy::kAlways) {
    if (::fsync(fd_) != 0) return false;
    ++fsyncs_;
  }
  if (::close(fd_) != 0) {
    fd_ = -1;
    return false;
  }
  fd_ = -1;
  std::string error;
  return OpenSegment(next_lsn_, &error);
}

uint64_t WriteAheadLog::Append(std::span<const EdgeInfluenceUpdate> updates) {
  if (fd_ < 0) return 0;
  if (PITEX_FAILPOINT("wal/append")) return 0;
  if (!RotateIfNeeded()) return 0;

  const uint64_t lsn = next_lsn_;
  std::ostringstream blob_stream;
  BinaryWriter writer(&blob_stream);
  writer.WriteU64(lsn);
  writer.WriteU64(updates.size());
  for (const EdgeInfluenceUpdate& update : updates) {
    writer.WriteU32(update.edge);
    writer.WriteU64(update.entries.size());
    for (const EdgeTopicEntry& entry : update.entries) {
      writer.WriteU32(entry.topic);
      writer.WriteF64(entry.prob);
    }
  }
  writer.WriteChecksum();
  if (!writer.ok()) return 0;
  const std::string blob = blob_stream.str();
  if (blob.size() > kMaxRecordBytes) return 0;

  std::string frame;
  frame.reserve(8 + blob.size());
  AppendLe(&frame, kFrameMagic, 4);
  AppendLe(&frame, blob.size(), 4);
  frame += blob;
  if (!WriteFully(fd_, frame.data(), frame.size())) {
    RollBackTo(offset_);
    return 0;
  }
  offset_ += frame.size();
  ++next_lsn_;
  ++appends_;
  return lsn;
}

bool WriteAheadLog::Sync() {
  if (fd_ < 0) return false;
  bool failed = PITEX_FAILPOINT("wal/fsync");
  if (!failed && options_.fsync == WalFsyncPolicy::kAlways &&
      offset_ != committed_offset_) {
    failed = ::fsync(fd_) != 0;
    if (!failed) ++fsyncs_;
  }
  if (failed) {
    // Roll the whole uncommitted group back out of the file and rewind
    // the LSN cursor: the log must never hold records whose append the
    // caller was told failed (they were never applied to the master).
    RollBackTo(committed_offset_);
    next_lsn_ = committed_lsn_;
    return false;
  }
  committed_offset_ = offset_;
  committed_lsn_ = next_lsn_;
  return true;
}

uint64_t WalRetentionHolds::Register(uint64_t first_needed_lsn) {
  MutexLock lock(mutex_);
  const uint64_t id = next_id_++;
  holds_.emplace_back(id, first_needed_lsn);
  return id;
}

void WalRetentionHolds::Update(uint64_t id, uint64_t first_needed_lsn) {
  MutexLock lock(mutex_);
  for (auto& hold : holds_) {
    if (hold.first == id) {
      hold.second = first_needed_lsn;
      return;
    }
  }
}

void WalRetentionHolds::Release(uint64_t id) {
  MutexLock lock(mutex_);
  for (size_t i = 0; i < holds_.size(); ++i) {
    if (holds_[i].first == id) {
      holds_[i] = holds_.back();
      holds_.pop_back();
      return;
    }
  }
}

uint64_t WalRetentionHolds::Floor() const {
  MutexLock lock(mutex_);
  uint64_t floor = UINT64_MAX;
  for (const auto& hold : holds_) {
    floor = std::min(floor, hold.second);
  }
  return floor;
}

void WriteAheadLog::TruncateThrough(uint64_t lsn) {
  // A registered hold names the first LSN its consumer still needs;
  // nothing at or above the minimum across holds may be deleted, even
  // when the checkpoint has advanced past it (the shipping/truncation
  // race of docs/robustness.md, "Replication & failover").
  const uint64_t floor = retention_.Floor();
  if (floor != UINT64_MAX) {
    if (floor == 0) return;  // a hold at 0 retains the whole log
    lsn = std::min(lsn, floor - 1);
  }
  // Deletion is best effort (a skipped pass only delays reclamation),
  // so a listing error is ignored rather than surfaced.
  const std::vector<SegmentFile> segments = ListSegments(dir_, nullptr);
  for (size_t i = 0; i + 1 < segments.size(); ++i) {
    // Segment i's records all precede segment i+1's start; the active
    // segment (always last) is never deleted.
    if (segments[i + 1].start_lsn > lsn + 1) break;
    if (segments[i].path == segment_path_) break;
    std::error_code ec;
    std::filesystem::remove(segments[i].path, ec);
  }
}

WalReadResult ReadWalAfter(const std::string& dir, uint64_t after_lsn,
                           std::vector<WalRecord>* records) {
  std::error_code ec;
  if (!std::filesystem::exists(dir, ec)) {
    return MakeResult(WalReadStatus::kOk, "");  // absent dir == empty log
  }
  std::error_code list_error;
  const std::vector<SegmentFile> segments = ListSegments(dir, &list_error);
  if (list_error) {
    // A failed listing is indistinguishable from "some segments
    // invisible" — reporting kOk with whatever subset survived would
    // present an I/O error as a shorter history.
    return MakeResult(WalReadStatus::kIoError,
                      "cannot list WAL directory " + dir + ": " +
                          list_error.message());
  }
  uint64_t expected = 0;  // next LSN demanded by continuity; 0 = unanchored
  for (size_t s = 0; s < segments.size(); ++s) {
    const bool last_segment = s + 1 == segments.size();
    std::ifstream in(segments[s].path, std::ios::binary);
    if (!in) {
      return MakeResult(WalReadStatus::kIoError,
                        "cannot open WAL segment " + segments[s].path);
    }
    unsigned char header[kSegmentHeaderBytes];
    in.read(reinterpret_cast<char*>(header), sizeof(header));
    if (static_cast<size_t>(in.gcount()) != sizeof(header)) {
      if (last_segment) {
        // Crash during rotation: the fresh segment's header never made
        // it out. Nothing was committed past the previous segment.
        return MakeResult(WalReadStatus::kTornTail,
                          "torn segment header at end of log");
      }
      return MakeResult(WalReadStatus::kCorrupt,
                        "short segment header mid-log: " + segments[s].path);
    }
    if (std::memcmp(header, kSegmentMagic, 8) != 0 ||
        DecodeLe(header + 8, 4) != kFormatVersion ||
        DecodeLe(header + 12, 8) != segments[s].start_lsn) {
      return MakeResult(WalReadStatus::kCorrupt,
                        "bad segment header: " + segments[s].path);
    }
    if (expected != 0 && segments[s].start_lsn != expected) {
      return MakeResult(WalReadStatus::kCorrupt,
                        "LSN gap between segments: " + segments[s].path);
    }
    if (expected == 0) {
      // The oldest surviving segment must reach back to the reader's
      // resume point: records (after_lsn, start_lsn) missing means the
      // log was truncated past its checkpoint.
      if (segments[s].start_lsn > after_lsn + 1) {
        return MakeResult(WalReadStatus::kCorrupt,
                          "log starts past the checkpoint LSN");
      }
      expected = segments[s].start_lsn;
    }

    // A torn record at the *physical end* of an older segment is legal
    // in exactly one shape: the writer crashed mid-append, restarted,
    // and recovery reopened a fresh segment at the first uncommitted
    // LSN — which is precisely the LSN the torn record would have
    // carried. The successor segment anchoring there proves the damage
    // was superseded, never acknowledged; anything else is corruption.
    const auto superseded_torn_tail = [&]() {
      return !last_segment && segments[s + 1].start_lsn == expected;
    };
    for (;;) {
      unsigned char frame[8];
      in.read(reinterpret_cast<char*>(frame), sizeof(frame));
      const auto frame_got = static_cast<size_t>(in.gcount());
      if (frame_got == 0) break;  // clean end of segment
      if (frame_got < sizeof(frame)) {
        if (last_segment) {
          return MakeResult(WalReadStatus::kTornTail,
                            "torn record frame at end of log");
        }
        if (superseded_torn_tail()) break;
        return MakeResult(WalReadStatus::kCorrupt,
                          "short record frame mid-log");
      }
      if (DecodeLe(frame, 4) != kFrameMagic) {
        return MakeResult(WalReadStatus::kCorrupt, "bad record frame magic");
      }
      const auto blob_len = static_cast<uint32_t>(DecodeLe(frame + 4, 4));
      if (blob_len > kMaxRecordBytes) {
        return MakeResult(WalReadStatus::kCorrupt,
                          "implausible record length");
      }
      std::string blob(blob_len, '\0');
      in.read(blob.data(), static_cast<std::streamsize>(blob_len));
      if (static_cast<size_t>(in.gcount()) != blob_len) {
        if (last_segment) {
          return MakeResult(WalReadStatus::kTornTail,
                            "torn record payload at end of log");
        }
        if (superseded_torn_tail()) break;
        return MakeResult(WalReadStatus::kCorrupt,
                          "short record payload mid-log");
      }
      const bool at_eof = in.peek() == std::char_traits<char>::eof();

      std::istringstream blob_stream(blob);
      BinaryReader reader(&blob_stream);
      WalRecord record;
      uint64_t count = 0;
      // Declared counts are untrusted until the checksum verifies, and
      // the reserve below runs before that: bound them by what the blob
      // could physically encode — an update costs at least 12 bytes
      // (edge u32 + entry-count u64), an entry exactly 12 (topic u32 +
      // prob f64) — so a corrupt count field caps the up-front
      // allocation at the record's own size instead of multi-GB.
      constexpr uint64_t kMinUpdateBytes = 12;
      bool parsed = reader.ReadU64(&record.lsn) && reader.ReadU64(&count) &&
                    count <= blob_len / kMinUpdateBytes;
      if (parsed) {
        record.updates.reserve(count);
        for (uint64_t i = 0; parsed && i < count; ++i) {
          EdgeInfluenceUpdate& update = record.updates.emplace_back();
          uint32_t edge = 0;
          uint64_t entries = 0;
          parsed = reader.ReadU32(&edge) && reader.ReadU64(&entries) &&
                   entries <= blob_len / kMinUpdateBytes;
          update.edge = edge;
          for (uint64_t j = 0; parsed && j < entries; ++j) {
            EdgeTopicEntry entry;
            parsed = reader.ReadU32(&entry.topic) && reader.ReadF64(&entry.prob);
            if (parsed) update.entries.push_back(entry);
          }
        }
      }
      if (parsed) parsed = reader.VerifyChecksum();
      if (!parsed) {
        if (last_segment && at_eof) {
          // Full-length but checksum-failing final record: block-level
          // write reordering can persist a record's tail before its
          // head. Still the crash artifact, not bit rot.
          return MakeResult(WalReadStatus::kTornTail,
                            "unverifiable record at end of log");
        }
        if (at_eof && superseded_torn_tail()) break;
        return MakeResult(WalReadStatus::kCorrupt,
                          "record checksum/framing failure mid-log");
      }
      if (record.lsn != expected) {
        return MakeResult(WalReadStatus::kCorrupt,
                          "record LSN out of sequence");
      }
      ++expected;
      if (record.lsn > after_lsn) records->push_back(std::move(record));
    }
  }
  return MakeResult(WalReadStatus::kOk, "");
}

}  // namespace pitex
