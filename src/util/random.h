// Deterministic, splittable random number generation.
//
// All stochastic components in the library take an explicit seed so that
// every experiment is reproducible. The core generator is xoshiro256**,
// seeded through SplitMix64 (the recommended seeding procedure). On top of
// the raw generator we provide the distributions the PITEX algorithms need:
// uniform doubles, uniform integer ranges, Bernoulli coins, and the
// geometric "skip" variate that powers lazy propagation sampling (Sec 5.1
// of the paper).

#ifndef PITEX_SRC_UTIL_RANDOM_H_
#define PITEX_SRC_UTIL_RANDOM_H_

#include <cstdint>
#include <limits>

namespace pitex {

/// SplitMix64 step; used for seeding and as a cheap standalone generator.
uint64_t SplitMix64(uint64_t* state);

/// xoshiro256** pseudo-random generator. Deterministic, fast, and
/// statistically strong enough for Monte-Carlo estimation. Not
/// cryptographically secure.
class Rng {
 public:
  /// Seeds the generator deterministically from `seed` via SplitMix64.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Returns the next raw 64-bit value.
  uint64_t NextU64();

  /// Returns a double uniformly distributed in [0, 1).
  double NextDouble();

  /// Returns an integer uniformly distributed in [0, bound). Requires
  /// bound > 0. Uses Lemire's nearly-divisionless method.
  uint64_t NextBounded(uint64_t bound);

  /// Returns true with probability `p` (clamped to [0, 1]).
  bool NextBernoulli(double p);

  /// Returns a Geometric(p) variate: the 1-based index of the first success
  /// in a sequence of independent Bernoulli(p) trials. Requires p in (0, 1].
  /// For p == 1 the result is always 1. The value can be very large for
  /// tiny p; it saturates at kGeometricInfinity.
  uint64_t NextGeometric(double p);

  /// Sentinel returned by NextGeometric when the skip exceeds any realistic
  /// sample budget (also used by callers for p == 0 edges).
  static constexpr uint64_t kGeometricInfinity =
      std::numeric_limits<uint64_t>::max() / 2;

  /// Returns a new independent generator derived from this one. Splitting
  /// is used to give each worker/sample stream its own deterministic
  /// sub-stream.
  Rng Split();

 private:
  uint64_t s_[4];
};

}  // namespace pitex

#endif  // PITEX_SRC_UTIL_RANDOM_H_
