#include "src/util/serialize.h"

#include <bit>
#include <cstring>
#include <istream>
#include <ostream>

namespace pitex {

void Fnv1a::Update(const void* data, size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  uint64_t h = state_;
  for (size_t i = 0; i < size; ++i) {
    h ^= bytes[i];
    h *= kPrime;
  }
  state_ = h;
}

namespace {

// Assembles `width` little-endian bytes from `value` into `buf`.
void EncodeLe(uint64_t value, size_t width, unsigned char* buf) {
  for (size_t i = 0; i < width; ++i) {
    buf[i] = static_cast<unsigned char>(value >> (8 * i));
  }
}

uint64_t DecodeLe(const unsigned char* buf, size_t width) {
  uint64_t value = 0;
  for (size_t i = 0; i < width; ++i) {
    value |= static_cast<uint64_t>(buf[i]) << (8 * i);
  }
  return value;
}

}  // namespace

void BinaryWriter::WriteBytes(const void* data, size_t size) {
  hash_.Update(data, size);
  out_->write(static_cast<const char*>(data), static_cast<std::streamsize>(size));
}

void BinaryWriter::WriteU8(uint8_t value) { WriteBytes(&value, 1); }

void BinaryWriter::WriteU32(uint32_t value) {
  unsigned char buf[4];
  EncodeLe(value, 4, buf);
  WriteBytes(buf, 4);
}

void BinaryWriter::WriteU64(uint64_t value) {
  unsigned char buf[8];
  EncodeLe(value, 8, buf);
  WriteBytes(buf, 8);
}

void BinaryWriter::WriteF32(float value) {
  WriteU32(std::bit_cast<uint32_t>(value));
}

void BinaryWriter::WriteF64(double value) {
  WriteU64(std::bit_cast<uint64_t>(value));
}

void BinaryWriter::WriteString(std::string_view value) {
  WriteU64(value.size());
  WriteBytes(value.data(), value.size());
}

void BinaryWriter::WriteChecksum() {
  const uint64_t digest = hash_.digest();
  unsigned char buf[8];
  EncodeLe(digest, 8, buf);
  out_->write(reinterpret_cast<const char*>(buf), 8);
}

bool BinaryWriter::ok() const { return static_cast<bool>(*out_); }

bool BinaryReader::ReadBytes(void* data, size_t size) {
  if (failed_) return false;
  in_->read(static_cast<char*>(data), static_cast<std::streamsize>(size));
  if (static_cast<size_t>(in_->gcount()) != size) {
    failed_ = true;
    return false;
  }
  hash_.Update(data, size);
  return true;
}

bool BinaryReader::at_end_of_stream() const { return in_->eof(); }

bool BinaryReader::ReadU8(uint8_t* value) { return ReadBytes(value, 1); }

bool BinaryReader::ReadU32(uint32_t* value) {
  unsigned char buf[4];
  if (!ReadBytes(buf, 4)) return false;
  *value = static_cast<uint32_t>(DecodeLe(buf, 4));
  return true;
}

bool BinaryReader::ReadU64(uint64_t* value) {
  unsigned char buf[8];
  if (!ReadBytes(buf, 8)) return false;
  *value = DecodeLe(buf, 8);
  return true;
}

bool BinaryReader::ReadF32(float* value) {
  uint32_t bits = 0;
  if (!ReadU32(&bits)) return false;
  *value = std::bit_cast<float>(bits);
  return true;
}

bool BinaryReader::ReadF64(double* value) {
  uint64_t bits = 0;
  if (!ReadU64(&bits)) return false;
  *value = std::bit_cast<double>(bits);
  return true;
}

bool BinaryReader::ReadString(std::string* value) {
  uint64_t size = 0;
  if (!ReadU64(&size)) return false;
  // Strings in index files are short (magic tags, dataset names); a huge
  // length here means the file is corrupt.
  constexpr uint64_t kMaxStringBytes = 1 << 20;
  if (size > kMaxStringBytes) {
    failed_ = true;
    return false;
  }
  value->resize(size);
  return size == 0 || ReadBytes(value->data(), size);
}

bool BinaryReader::VerifyChecksum() {
  if (failed_) return false;
  const uint64_t expected = hash_.digest();  // digest before consuming it
  unsigned char buf[8];
  in_->read(reinterpret_cast<char*>(buf), 8);
  if (in_->gcount() != 8) {
    failed_ = true;
    return false;
  }
  if (DecodeLe(buf, 8) != expected) {
    failed_ = true;
    return false;
  }
  return true;
}

}  // namespace pitex
