// Lightweight invariant-checking macros.
//
// PITEX_CHECK(cond) aborts with a message when `cond` is false. It is used
// for programmer errors and internal invariants that must never fail in a
// correct program; it is enabled in all build types (the cost is a branch).
// PITEX_DCHECK(cond) compiles away in NDEBUG builds and is used on hot paths.

#ifndef PITEX_SRC_UTIL_CHECK_H_
#define PITEX_SRC_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

#define PITEX_CHECK(cond)                                                    \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "PITEX_CHECK failed at %s:%d: %s\n", __FILE__,    \
                   __LINE__, #cond);                                         \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#define PITEX_CHECK_MSG(cond, msg)                                           \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "PITEX_CHECK failed at %s:%d: %s (%s)\n",         \
                   __FILE__, __LINE__, #cond, msg);                          \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#ifdef NDEBUG
#define PITEX_DCHECK(cond) \
  do {                     \
  } while (0)
#else
#define PITEX_DCHECK(cond) PITEX_CHECK(cond)
#endif

#endif  // PITEX_SRC_UTIL_CHECK_H_
