// Chernoff-bound sample-size arithmetic used throughout the paper.
//
// Lemma 2 / Eq. (2):  theta_W = (2+eps)/eps^2 * |R_W(u)| *
//                     (ln delta + ln C(|Omega|, k) + ln 2) / E[I(u|W)]
// Eq. (7) (offline):  theta   = (2+eps)/eps^2 * |V| *
//                     (ln delta + ln phi_K + ln 2)
// where phi_K = sum_{i=1..K} C(|Omega|, i).
//
// These quantities involve log-binomials, which we compute via lgamma to
// avoid overflow for large vocabularies.

#ifndef PITEX_SRC_UTIL_CHERNOFF_H_
#define PITEX_SRC_UTIL_CHERNOFF_H_

#include <cstdint>

namespace pitex {

/// Returns ln C(n, k); 0 for degenerate inputs (k <= 0 or k >= n).
double LogBinomial(int64_t n, int64_t k);

/// Exact C(n, k) in integer arithmetic; returns 0 when the value (or an
/// intermediate product) overflows uint64 — a safe sentinel since real
/// binomials are >= 1. Requires 0 <= k <= n.
uint64_t BinomialExact(int64_t n, int64_t k);

/// Returns ln phi_K where phi_K = sum_{i=1..K} C(n, i); computed stably in
/// log space. Requires K >= 1 and n >= 1.
double LogPhi(int64_t n, int64_t cap_k);

/// The Lambda factor of the paper's complexity analyses:
/// (2+eps)/eps^2 * (ln delta + ln C(|Omega|, k) + ln 2).
double Lambda(double eps, double delta, int64_t n_tags, int64_t k);

}  // namespace pitex

#endif  // PITEX_SRC_UTIL_CHERNOFF_H_
