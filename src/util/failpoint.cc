#include "src/util/failpoint.h"

#include <csignal>
#include <chrono>
#include <cstdlib>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace pitex {

namespace {

void SetParseError(std::string* error, std::string_view spec,
                   const char* message) {
  if (error == nullptr) return;
  *error = message;
  *error += ": '";
  error->append(spec);
  *error += "'";
}

// Strict base-10 parse of a spec value (no sign, no suffix junk).
bool ParseU64(std::string_view text, uint64_t* value) {
  if (text.empty()) return false;
  uint64_t v = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    if (v > UINT64_MAX / 10) return false;
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  *value = v;
  return true;
}

}  // namespace

FailpointRegistry& FailpointRegistry::Instance() {
  static FailpointRegistry* registry = new FailpointRegistry();
  return *registry;
}

FailpointRegistry::FailpointRegistry() {
  const char* spec = std::getenv("PITEX_FAILPOINTS");
  if (spec != nullptr && spec[0] != '\0') {
    // A malformed env spec is ignored point-by-point rather than
    // aborting: fault drills must never take the binary down on a typo.
    ParseSpec(spec);
  }
}

FailpointRegistry::Point* FailpointRegistry::FindLocked(
    std::string_view name) {
  for (Point& point : points_) {
    if (point.name == name) return &point;
  }
  return nullptr;
}

const FailpointRegistry::Point* FailpointRegistry::FindLocked(
    std::string_view name) const {
  for (const Point& point : points_) {
    if (point.name == name) return &point;
  }
  return nullptr;
}

void FailpointRegistry::Enable(std::string_view name,
                               const FailpointConfig& config) {
  MutexLock lock(mutex_);
  Point* point = FindLocked(name);
  if (point == nullptr) {
    points_.push_back(Point{std::string(name), config, 0, 0});
    point = &points_.back();
  } else {
    const bool was_armed = point->config.mode != FailpointMode::kOff;
    point->config = config;
    point->hits = 0;
    point->fired = 0;
    if (was_armed) armed_count_.fetch_sub(1, std::memory_order_relaxed);
  }
  if (config.mode != FailpointMode::kOff) {
    armed_count_.fetch_add(1, std::memory_order_relaxed);
  }
}

void FailpointRegistry::Disable(std::string_view name) {
  MutexLock lock(mutex_);
  for (size_t i = 0; i < points_.size(); ++i) {
    if (points_[i].name != name) continue;
    if (points_[i].config.mode != FailpointMode::kOff) {
      armed_count_.fetch_sub(1, std::memory_order_relaxed);
    }
    points_.erase(points_.begin() + static_cast<ptrdiff_t>(i));
    return;
  }
}

void FailpointRegistry::DisableAll() {
  MutexLock lock(mutex_);
  size_t armed = 0;
  for (const Point& point : points_) {
    if (point.config.mode != FailpointMode::kOff) ++armed;
  }
  points_.clear();
  armed_count_.fetch_sub(armed, std::memory_order_relaxed);
}

uint64_t FailpointRegistry::HitCount(std::string_view name) const {
  MutexLock lock(mutex_);
  const Point* point = FindLocked(name);
  return point == nullptr ? 0 : point->hits;
}

uint64_t FailpointRegistry::FireCount(std::string_view name) const {
  MutexLock lock(mutex_);
  const Point* point = FindLocked(name);
  return point == nullptr ? 0 : point->fired;
}

bool FailpointRegistry::Evaluate(std::string_view name) {
  uint32_t delay_ms = 0;
  bool fire_error = false;
  bool fire_crash = false;
  {
    MutexLock lock(mutex_);
    Point* point = FindLocked(name);
    if (point == nullptr || point->config.mode == FailpointMode::kOff) {
      return false;
    }
    ++point->hits;
    if (point->hits <= point->config.skip) return false;
    if (point->fired >= point->config.fires) return false;
    ++point->fired;
    if (point->config.mode == FailpointMode::kDelay) {
      delay_ms = point->config.delay_ms;
    } else if (point->config.mode == FailpointMode::kCrash) {
      fire_crash = true;
    } else {
      fire_error = true;
    }
  }
  if (fire_crash) {
    // SIGKILL, not abort(): no atexit handlers, no buffered-I/O flush,
    // no sanitizer teardown -- the closest in-process stand-in for a
    // power cut, which is what the crash-recovery drills must survive.
#if defined(__unix__) || defined(__APPLE__)
    kill(getpid(), SIGKILL);
#endif
    std::raise(SIGKILL);  // unreachable on POSIX; portability fallback
  }
  // Sleep outside the lock: concurrent delayed threads must stack up on
  // the injected latency, not on the registry mutex.
  if (delay_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
  }
  return fire_error;
}

bool FailpointRegistry::ParseSpec(std::string_view spec, std::string* error) {
  size_t pos = 0;
  while (pos <= spec.size()) {
    size_t end = spec.find(',', pos);
    if (end == std::string_view::npos) end = spec.size();
    const std::string_view entry = spec.substr(pos, end - pos);
    pos = end + 1;
    if (entry.empty()) continue;

    const size_t eq = entry.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      SetParseError(error, entry, "failpoint spec entry needs name=mode");
      return false;
    }
    const std::string_view name = entry.substr(0, eq);
    std::string_view rest = entry.substr(eq + 1);

    size_t colon = rest.find(':');
    const std::string_view mode_text = rest.substr(0, colon);
    FailpointConfig config;
    if (mode_text == "error") {
      config.mode = FailpointMode::kError;
    } else if (mode_text == "delay") {
      config.mode = FailpointMode::kDelay;
    } else if (mode_text == "crash") {
      config.mode = FailpointMode::kCrash;
    } else if (mode_text == "off") {
      config.mode = FailpointMode::kOff;
    } else {
      SetParseError(error, mode_text, "unknown failpoint mode");
      return false;
    }
    while (colon != std::string_view::npos) {
      rest = rest.substr(colon + 1);
      colon = rest.find(':');
      const std::string_view kv = rest.substr(0, colon);
      const size_t kv_eq = kv.find('=');
      if (kv_eq == std::string_view::npos) {
        SetParseError(error, kv, "failpoint option needs key=value");
        return false;
      }
      const std::string_view key = kv.substr(0, kv_eq);
      uint64_t value = 0;
      if (!ParseU64(kv.substr(kv_eq + 1), &value)) {
        SetParseError(error, kv, "failpoint option value not a number");
        return false;
      }
      if (key == "skip") {
        config.skip = value;
      } else if (key == "fires") {
        config.fires = value;
      } else if (key == "ms") {
        config.delay_ms = static_cast<uint32_t>(value);
      } else {
        SetParseError(error, key, "unknown failpoint option");
        return false;
      }
    }
    Enable(name, config);
    if (end == spec.size()) break;
  }
  return true;
}

}  // namespace pitex
