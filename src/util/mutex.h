// Capability-annotated mutex primitives.
//
// libstdc++'s std::mutex carries no thread-safety attributes, so Clang's
// -Wthread-safety analysis cannot check code written against it. These
// wrappers are zero-cost shims over std::mutex / std::condition_variable
// that attach the capability annotations (src/util/thread_annotations.h);
// all lock discipline in the repo is written against them:
//
//   pitex::Mutex mu_;
//   int counter_ PITEX_GUARDED_BY(mu_);
//
//   void Bump() PITEX_EXCLUDES(mu_) {
//     MutexLock lock(mu_);
//     ++counter_;  // OK: analysis sees the scoped hold
//   }
//
// Condition waits use explicit while-loops instead of predicate lambdas
// (a lambda body is a separate function to the analysis and would not
// inherit the hold):
//
//   MutexLock lock(mu_);
//   while (!ready_) cv_.Wait(lock);

#ifndef PITEX_SRC_UTIL_MUTEX_H_
#define PITEX_SRC_UTIL_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "src/util/thread_annotations.h"

namespace pitex {

class CondVar;
class MutexLock;

/// Standard exclusive mutex, annotated as a capability. Same semantics,
/// size and cost as the std::mutex it wraps (TSan instruments the
/// underlying mutex as usual).
class PITEX_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() PITEX_ACQUIRE() { mu_.lock(); }
  void Unlock() PITEX_RELEASE() { mu_.unlock(); }
  bool TryLock() PITEX_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  friend class MutexLock;

  std::mutex mu_;
};

/// RAII hold of a Mutex for a scope (the std::scoped_lock/lock_guard
/// replacement). Backed by std::unique_lock so CondVar can wait on it;
/// the lock is held for the entire MutexLock lifetime.
class PITEX_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) PITEX_ACQUIRE(mu) : lock_(mu.mu_) {}
  ~MutexLock() PITEX_RELEASE() = default;

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;

  std::unique_lock<std::mutex> lock_;
};

/// Condition variable tied to pitex::Mutex. Wait releases the lock while
/// blocked and has reacquired it when it returns, so annotations that
/// held before the wait hold after it.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// `lock` must hold the mutex guarding the waited-on state. Spurious
  /// wakeups are possible: always wait in a while-loop.
  void Wait(MutexLock& lock) { cv_.wait(lock.lock_); }

  /// Timed wait: returns false when `timeout` elapsed without a notify,
  /// true on a notify (or spurious wakeup — re-check the predicate
  /// either way, exactly as with Wait). Used by the replication
  /// transport's bounded Recv (src/serve/replication.h), where a caller
  /// polling for frames must regain control to notice heartbeat loss.
  template <class Rep, class Period>
  bool WaitFor(MutexLock& lock,
               const std::chrono::duration<Rep, Period>& timeout) {
    return cv_.wait_for(lock.lock_, timeout) == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace pitex

#endif  // PITEX_SRC_UTIL_MUTEX_H_
