// Small statistics accumulators used by tests and benchmark harnesses.

#ifndef PITEX_SRC_UTIL_STATS_H_
#define PITEX_SRC_UTIL_STATS_H_

#include <cstdint>
#include <vector>

namespace pitex {

/// Streaming mean/variance accumulator (Welford's algorithm).
class RunningStats {
 public:
  /// Adds one observation.
  void Add(double x);

  int64_t count() const { return count_; }
  double mean() const { return mean_; }
  /// Sample variance (n-1 denominator); 0 when fewer than 2 observations.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Returns the q-quantile (0 <= q <= 1) of `values` using linear
/// interpolation; `values` is copied and sorted. Returns 0 for empty input.
double Quantile(std::vector<double> values, double q);

}  // namespace pitex

#endif  // PITEX_SRC_UTIL_STATS_H_
