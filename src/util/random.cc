#include "src/util/random.h"

#include <cmath>

#include "src/util/check.h"

namespace pitex {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> uniform double in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  PITEX_DCHECK(bound > 0);
  // Lemire's method: multiply-shift with rejection to remove modulo bias.
  uint64_t x = NextU64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t t = -bound % bound;
    while (l < t) {
      x = NextU64();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

uint64_t Rng::NextGeometric(double p) {
  PITEX_DCHECK(p > 0.0 && p <= 1.0);
  if (p >= 1.0) return 1;
  // Inverse transform: X = floor(log(U) / log(1-p)) + 1 with U in (0, 1].
  double u = 1.0 - NextDouble();  // in (0, 1]
  double x = std::floor(std::log(u) / std::log1p(-p)) + 1.0;
  if (!(x < static_cast<double>(kGeometricInfinity))) return kGeometricInfinity;
  if (x < 1.0) return 1;
  return static_cast<uint64_t>(x);
}

Rng Rng::Split() { return Rng(NextU64()); }

}  // namespace pitex
