// Named fail points for fault-injection testing (docs/robustness.md).
//
// A fail point is a compiled-in hook at a subsystem boundary where tests
// (or an operator chasing a production incident) can inject a failure
// without touching the code under test:
//
//   // Library code -- the wired-in site:
//   if (PITEX_FAILPOINT("index_io/load")) {
//     SetError(error, IndexIoCode::kFaultInjected, "injected I/O fault");
//     return nullptr;
//   }
//
//   // Test code -- arming it:
//   FailpointRegistry::Instance().Enable(
//       "index_io/load", {.mode = FailpointMode::kError, .fires = 2});
//
// Supported behaviors: return-error (the macro yields true and the call
// site takes its real error path), inject-delay (the evaluating thread
// sleeps, the macro yields false), crash (the process raises SIGKILL at
// the point -- the primitive behind the durability crash drills in
// tests/crash_recovery_test.cc), and skip-N-then-fire (the first `skip`
// evaluations pass through before the point starts firing, for
// targeting e.g. "the third publish"). Points can also be armed from the
// environment -- PITEX_FAILPOINTS="index_io/load=error:skip=2" -- so a
// binary can be fault-drilled without recompiling.
//
// Cost model: when the tree is configured with -DPITEX_FAILPOINTS=OFF
// the macro compiles to a constant `false` -- a branch-free no-op the
// optimizer deletes. When compiled in (the default) but with no point
// armed, an evaluation is one relaxed atomic load; the registry mutex is
// only touched while at least one point is armed. Fail points therefore
// belong at subsystem boundaries (I/O, publish, dispatch, lock
// acquisition), never inside PITEX_NOALLOC hot loops -- tools/check
// enforces that (rule `failpoint-hotpath`).

#ifndef PITEX_SRC_UTIL_FAILPOINT_H_
#define PITEX_SRC_UTIL_FAILPOINT_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

// CMake sets this to 0 under -DPITEX_FAILPOINTS=OFF; standalone header
// compiles (and the default build) get the framework.
#ifndef PITEX_FAILPOINTS_ENABLED
#define PITEX_FAILPOINTS_ENABLED 1
#endif

namespace pitex {

enum class FailpointMode : uint8_t {
  kOff,    // registered but inert
  kError,  // Evaluate() returns true: the call site takes its error path
  kDelay,  // Evaluate() sleeps delay_ms, then returns false
  kCrash,  // Evaluate() raises SIGKILL: the process dies mid-operation
};

struct FailpointConfig {
  FailpointMode mode = FailpointMode::kError;
  /// Evaluations that pass through before the point starts firing
  /// (skip-N-then-fire).
  uint64_t skip = 0;
  /// Times the point fires once past `skip`; afterwards it is inert.
  uint64_t fires = UINT64_MAX;
  /// Sleep per firing evaluation (kDelay only), applied outside the
  /// registry lock so delayed threads do not serialize each other.
  uint32_t delay_ms = 0;
};

/// Process-wide registry of named fail points. All methods are
/// thread-safe; tests that arm points must disarm them (Disable /
/// DisableAll) before finishing so suites stay independent.
class FailpointRegistry {
 public:
  /// The process singleton. First use parses the PITEX_FAILPOINTS
  /// environment variable (see ParseSpec) so deployments can arm points
  /// without code changes.
  static FailpointRegistry& Instance();

  void Enable(std::string_view name, const FailpointConfig& config)
      PITEX_EXCLUDES(mutex_);
  void Disable(std::string_view name) PITEX_EXCLUDES(mutex_);
  void DisableAll() PITEX_EXCLUDES(mutex_);

  /// Evaluations that reached `name` while armed (skipped ones included).
  uint64_t HitCount(std::string_view name) const PITEX_EXCLUDES(mutex_);
  /// Evaluations on which `name` actually fired.
  uint64_t FireCount(std::string_view name) const PITEX_EXCLUDES(mutex_);

  /// True while any point is armed -- the macro's fast-path gate (one
  /// relaxed load; the name lookup is skipped entirely when disarmed).
  bool armed() const { return armed_count_.load(std::memory_order_relaxed) > 0; }

  /// Evaluates the point: returns true when an armed kError point fires
  /// (caller takes its error path); kDelay sleeps and returns false.
  bool Evaluate(std::string_view name) PITEX_EXCLUDES(mutex_);

  /// Arms points from a spec string:
  ///   spec   := point (',' point)*
  ///   point  := name '=' mode (':' key '=' value)*
  ///   mode   := 'error' | 'delay' | 'crash' | 'off'
  ///   key    := 'skip' | 'fires' | 'ms'
  /// e.g. "index_io/load=error:skip=2:fires=1,thread_pool/dispatch=delay:ms=5".
  /// Returns false (and sets `*error` when non-null) on a malformed
  /// spec; well-formed points before the malformed one stay armed.
  bool ParseSpec(std::string_view spec, std::string* error = nullptr)
      PITEX_EXCLUDES(mutex_);

 private:
  struct Point {
    std::string name;
    FailpointConfig config;
    uint64_t hits = 0;
    uint64_t fired = 0;
  };

  FailpointRegistry();

  Point* FindLocked(std::string_view name) PITEX_REQUIRES(mutex_);
  const Point* FindLocked(std::string_view name) const PITEX_REQUIRES(mutex_);

  mutable Mutex mutex_;
  std::vector<Point> points_ PITEX_GUARDED_BY(mutex_);
  // Armed-point count, mirrored outside the mutex for the fast gate.
  std::atomic<size_t> armed_count_{0};
};

#if PITEX_FAILPOINTS_ENABLED
/// Evaluates the named fail point; yields true when the call site must
/// take its error path. Sites without an error path (pure delay hooks)
/// cast the result to void.
#define PITEX_FAILPOINT(name)                          \
  (::pitex::FailpointRegistry::Instance().armed() &&   \
   ::pitex::FailpointRegistry::Instance().Evaluate(name))
#else
#define PITEX_FAILPOINT(name) (false)
#endif

}  // namespace pitex

#endif  // PITEX_SRC_UTIL_FAILPOINT_H_
