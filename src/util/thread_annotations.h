// Compile-time concurrency contracts.
//
// Thin macro layer over Clang's thread-safety attributes
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html), in the style
// of absl/base/thread_annotations.h. Annotating a mutex-protected member
// with PITEX_GUARDED_BY (and locking functions with
// PITEX_ACQUIRE/RELEASE/REQUIRES) turns the repo's lock discipline —
// serve-during-update via epoch-swapped snapshots, sharded caches, the
// work-stealing scheduler — into contracts the compiler checks: under
// clang the build carries -Wthread-safety (plus -Werror in CI), so an
// access to a guarded member without its mutex fails compilation instead
// of maybe tripping TSan at runtime. GCC compiles the annotations away.
//
// The annotations attach to pitex::Mutex (src/util/mutex.h), the
// PITEX_CAPABILITY-annotated wrapper this repo uses instead of a bare
// std::mutex (libstdc++'s std::mutex carries no capability attributes,
// so the analysis cannot see through it).
//
// PITEX_NOALLOC is the second contract in this header: it marks a
// function as part of a zero-steady-state-allocation hot path. The
// compiler ignores it (it expands to a clang `annotate` attribute when
// available, nothing otherwise); tools/check/pitex_check.py enforces it
// by rejecting any reachable allocating call in the same translation
// unit. See docs/static_analysis.md.

#ifndef PITEX_SRC_UTIL_THREAD_ANNOTATIONS_H_
#define PITEX_SRC_UTIL_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && (!defined(SWIG))
#define PITEX_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define PITEX_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op
#endif

/// Declares a data member protected by the given capability (mutex).
/// Reading requires the capability shared; writing requires it exclusive.
#define PITEX_GUARDED_BY(x) \
  PITEX_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

/// Like PITEX_GUARDED_BY for pointer members: the *pointed-to* data is
/// protected, the pointer itself may be read freely.
#define PITEX_PT_GUARDED_BY(x) \
  PITEX_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

/// Declares that the caller must hold the given capabilities exclusively
/// before invoking the function (the `Locked` suffix convention).
#define PITEX_REQUIRES(...) \
  PITEX_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

/// Declares that the caller must hold the given capabilities at least
/// shared.
#define PITEX_REQUIRES_SHARED(...) \
  PITEX_THREAD_ANNOTATION_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability exclusively and does not release it.
#define PITEX_ACQUIRE(...) \
  PITEX_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))

/// Function releases the (exclusively held) capability.
#define PITEX_RELEASE(...) \
  PITEX_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

/// Function acquires the capability when it returns the given boolean.
#define PITEX_TRY_ACQUIRE(...) \
  PITEX_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))

/// Declares that the caller must NOT hold the given capabilities
/// (deadlock prevention for self-locking public entry points).
#define PITEX_EXCLUDES(...) \
  PITEX_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/// Marks a type as a capability (applied to pitex::Mutex).
#define PITEX_CAPABILITY(x) \
  PITEX_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

/// Marks an RAII type whose lifetime equals a capability hold
/// (applied to pitex::MutexLock).
#define PITEX_SCOPED_CAPABILITY \
  PITEX_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

/// Returns a reference to the capability protecting the returned data.
#define PITEX_RETURN_CAPABILITY(x) \
  PITEX_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Every use must
/// carry a comment explaining why the discipline holds anyway.
#define PITEX_NO_THREAD_SAFETY_ANALYSIS \
  PITEX_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

// ---------------------------------------------------------------------------
// Allocation contract (enforced by tools/check, not the compiler).

#if defined(__clang__)
#define PITEX_NOALLOC __attribute__((annotate("pitex::noalloc")))
#else
/// Marks a function as a zero-steady-state-allocation hot path: no
/// reachable `new` / `malloc` / allocating-container call in the same
/// translation unit (tools/check/pitex_check.py, rule `noalloc`).
/// Intentional capacity-retaining growth points are suppressed inline
/// with `// pitex-check: allow(noalloc): <reason>`.
#define PITEX_NOALLOC
#endif

#endif  // PITEX_SRC_UTIL_THREAD_ANNOTATIONS_H_
