#include "src/util/chernoff.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/util/check.h"

#if defined(__GLIBC__)
// std::lgamma writes the POSIX process-global `signgam`, so concurrent
// callers (every batch/serve worker computes a stopping threshold) race
// on it. The reentrant variant keeps the sign local; it is not declared
// under -std=c++20's strict mode, so declare it here.
extern "C" double lgamma_r(double, int*);
#endif

namespace pitex {

namespace {
inline double LGamma(double x) {
#if defined(__GLIBC__)
  int sign = 0;
  return lgamma_r(x, &sign);
#else
  return std::lgamma(x);
#endif
}
}  // namespace

double LogBinomial(int64_t n, int64_t k) {
  if (k <= 0 || k >= n) return 0.0;
  return LGamma(static_cast<double>(n + 1)) -
         LGamma(static_cast<double>(k + 1)) -
         LGamma(static_cast<double>(n - k + 1));
}

uint64_t BinomialExact(int64_t n, int64_t k) {
  PITEX_CHECK(n >= 0 && k >= 0 && k <= n);
  k = std::min(k, n - k);
  uint64_t c = 1;
  for (int64_t i = 1; i <= k; ++i) {
    const auto factor = static_cast<uint64_t>(n - k + i);
    // C(n-k+i, i) = C(n-k+i-1, i-1) * (n-k+i) / i, exactly divisible
    // after the multiply — so overflow of c * factor is the only hazard.
    if (c > std::numeric_limits<uint64_t>::max() / factor) return 0;
    c = c * factor / static_cast<uint64_t>(i);
  }
  return c;
}

double LogPhi(int64_t n, int64_t cap_k) {
  PITEX_CHECK(n >= 1 && cap_k >= 1);
  cap_k = std::min(cap_k, n);
  // log-sum-exp over ln C(n, i), i = 1..K.
  double max_term = 0.0;
  for (int64_t i = 1; i <= cap_k; ++i) {
    max_term = std::max(max_term, LogBinomial(n, i));
  }
  double sum = 0.0;
  for (int64_t i = 1; i <= cap_k; ++i) {
    sum += std::exp(LogBinomial(n, i) - max_term);
  }
  return max_term + std::log(sum);
}

double Lambda(double eps, double delta, int64_t n_tags, int64_t k) {
  PITEX_CHECK(eps > 0.0 && delta > 1.0);
  const double log_terms =
      std::log(delta) + LogBinomial(n_tags, k) + std::log(2.0);
  return (2.0 + eps) / (eps * eps) * log_terms;
}

}  // namespace pitex
