#include "src/util/file_sync.h"

#include <cstdio>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>
#define PITEX_HAVE_POSIX_FSYNC 1
#else
#define PITEX_HAVE_POSIX_FSYNC 0
#endif

namespace pitex {

namespace {

#if PITEX_HAVE_POSIX_FSYNC
bool FsyncPath(const char* path, int open_flags) {
  const int fd = ::open(path, open_flags);
  if (fd < 0) return false;
  bool ok = true;
  if (::fsync(fd) != 0) ok = false;
  if (::close(fd) != 0) ok = false;
  return ok;
}
#endif

}  // namespace

std::string TempPathFor(std::string_view path) {
  std::string tmp(path);
  tmp += ".tmp";
  return tmp;
}

bool SyncFile(const std::string& path) {
#if PITEX_HAVE_POSIX_FSYNC
  return FsyncPath(path.c_str(), O_RDONLY);
#else
  (void)path;
  return true;  // no fsync on this platform; best effort
#endif
}

bool SyncParentDir(const std::string& path) {
#if PITEX_HAVE_POSIX_FSYNC
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : (slash == 0 ? std::string("/")
                                            : path.substr(0, slash));
  return FsyncPath(dir.c_str(), O_RDONLY | O_DIRECTORY);
#else
  (void)path;
  return true;
#endif
}

bool AtomicReplaceFile(const std::string& tmp_path, const std::string& path) {
  if (!SyncFile(tmp_path)) {
    std::remove(tmp_path.c_str());
    return false;
  }
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    return false;
  }
  // The rename is visible; now make it durable. A failure here is still
  // reported -- the caller's durability promise depends on it.
  return SyncParentDir(path);
}

}  // namespace pitex
