#include "src/util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>

#include "src/util/check.h"

namespace pitex {

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t count = std::max<size_t>(1, num_threads);
  workers_.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  Wait();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  PITEX_CHECK(task != nullptr);
  SubmitIndexed([task = std::move(task)](size_t) { task(); });
}

void ThreadPool::SubmitIndexed(std::function<void(size_t)> task) {
  PITEX_CHECK(task != nullptr);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    PITEX_CHECK_MSG(!shutting_down_, "Submit after shutdown");
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop(size_t worker_index) {
  for (;;) {
    std::function<void(size_t)> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task(worker_index);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_idle_.notify_all();
    }
  }
}

void ParallelFor(ThreadPool* pool, size_t begin, size_t end,
                 const std::function<void(size_t)>& fn) {
  if (begin >= end) return;
  const size_t total = end - begin;
  // Small chunks balance power-law skew; large enough to amortize the
  // claim. One shared cursor, claimed in chunks of ~total/(8*threads).
  const size_t chunk = std::max<size_t>(
      1, total / (8 * std::max<size_t>(1, pool->num_threads())));
  auto cursor = std::make_shared<std::atomic<size_t>>(begin);
  const size_t num_tasks = std::min(pool->num_threads(), total);
  for (size_t t = 0; t < num_tasks; ++t) {
    pool->Submit([cursor, end, chunk, &fn] {
      for (;;) {
        const size_t start = cursor->fetch_add(chunk);
        if (start >= end) return;
        const size_t stop = std::min(end, start + chunk);
        for (size_t i = start; i < stop; ++i) fn(i);
      }
    });
  }
  pool->Wait();
}

}  // namespace pitex
