#include "src/util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>

#include "src/obs/metrics.h"
#include "src/util/check.h"
#include "src/util/failpoint.h"

namespace pitex {

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t count = std::max<size_t>(1, num_threads);
  workers_.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  Wait();
  Shutdown();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Shutdown() {
  {
    MutexLock lock(mutex_);
    if (shutting_down_) return;
    shutting_down_ = true;
  }
  work_available_.NotifyAll();
}

bool ThreadPool::Submit(std::function<void()> task) {
  PITEX_CHECK(task != nullptr);
  return SubmitIndexed([task = std::move(task)](size_t) { task(); });
}

bool ThreadPool::SubmitIndexed(std::function<void(size_t)> task) {
  PITEX_CHECK(task != nullptr);
  {
    MutexLock lock(mutex_);
    if (shutting_down_) return false;  // rejected, defined behavior
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.NotifyOne();
  return true;
}

void ThreadPool::Wait() {
  MutexLock lock(mutex_);
  while (in_flight_ != 0) all_idle_.Wait(lock);
}

void ThreadPool::WorkerLoop(size_t worker_index) {
  for (;;) {
    std::function<void(size_t)> task;
    {
      MutexLock lock(mutex_);
      while (!shutting_down_ && queue_.empty()) work_available_.Wait(lock);
      if (queue_.empty()) return;  // shutting down and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    // Chaos hook between claim and execution: a delay here models a
    // descheduled worker, widening the window for races the chaos suite
    // hunts (TSan sees them; correctness must not depend on timing). The
    // fired/not-fired bit is meaningless for a dispatch -- there is no
    // error path to take -- so the result is discarded.
    (void)PITEX_FAILPOINT("thread_pool/dispatch");
    PITEX_COUNT(kPoolTasks, 1);
    task(worker_index);
    {
      MutexLock lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_idle_.NotifyAll();
    }
  }
}

void ParallelForSlots(ThreadPool* pool, size_t begin, size_t end,
                      const std::function<void(size_t, size_t)>& fn) {
  if (begin >= end) return;
  const size_t total = end - begin;
  const size_t num_tasks = std::min(pool->num_threads(), total);
  auto cursor = std::make_shared<std::atomic<size_t>>(begin);
  for (size_t t = 0; t < num_tasks; ++t) {
    // A rejection here would deadlock the Wait below with iterations
    // unclaimed -- running a parallel loop on a shut-down pool is a
    // logic error, not a recoverable overload.
    const bool submitted = pool->Submit([cursor, end, num_tasks, t, &fn] {
      for (;;) {
        // Guided claims: chunk = remaining/(4 * tasks), shrinking toward
        // 1 at the tail. The remaining estimate races with other claims,
        // which only perturbs the chunk size, never coverage: fetch_add
        // hands out disjoint ranges and the clamp below bounds them.
        const size_t seen = cursor->load(std::memory_order_relaxed);
        if (seen >= end) return;
        const size_t chunk =
            std::max<size_t>(1, (end - seen) / (4 * num_tasks));
        const size_t start =
            cursor->fetch_add(chunk, std::memory_order_relaxed);
        if (start >= end) return;
        const size_t stop = std::min(end, start + chunk);
        for (size_t i = start; i < stop; ++i) fn(t, i);
      }
    });
    PITEX_CHECK_MSG(submitted, "ParallelFor on a shut-down pool");
  }
  pool->Wait();
}

void ParallelFor(ThreadPool* pool, size_t begin, size_t end,
                 const std::function<void(size_t)>& fn) {
  ParallelForSlots(pool, begin, end, [&fn](size_t, size_t i) { fn(i); });
}

}  // namespace pitex
