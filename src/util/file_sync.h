// Crash-atomic file plumbing shared by index_io saves, the WAL, and the
// checkpoint manifest (docs/robustness.md, "Durability").
//
// The contract every writer in this tree follows:
//
//   1. write the full payload to `path + ".tmp"`,
//   2. fsync the temp file (data must be on the platter before the
//      rename makes it reachable),
//   3. rename(tmp, path)  -- atomic on POSIX,
//   4. fsync the parent directory (the rename itself must be durable).
//
// AtomicReplaceFile does steps 2-4; callers do step 1 however they like
// (ofstream, fd, BinaryWriter). A crash at any point leaves either the
// old file intact or a `*.tmp` orphan that readers never look at.

#ifndef PITEX_SRC_UTIL_FILE_SYNC_H_
#define PITEX_SRC_UTIL_FILE_SYNC_H_

#include <string>
#include <string_view>

namespace pitex {

/// The temp-file twin of `path` used by the atomic-replace protocol
/// (`path + ".tmp"`). Readers skip files with this suffix.
std::string TempPathFor(std::string_view path);

/// fsyncs the file at `path` (open, fsync, close). Returns false with
/// errno intact on any failure.
bool SyncFile(const std::string& path);

/// fsyncs the directory containing `path` so a completed rename/create
/// of `path` survives power loss. Returns false on failure; on
/// filesystems where directories cannot be opened (rare), the failure
/// is reported and callers decide whether it is fatal.
bool SyncParentDir(const std::string& path);

/// Steps 2-4 of the protocol above: fsync `tmp_path`, rename it over
/// `path`, fsync the parent directory. On failure the temp file is
/// unlinked (best effort) so no orphan survives; `path` is either the
/// old content or the new, never a mix.
bool AtomicReplaceFile(const std::string& tmp_path, const std::string& path);

}  // namespace pitex

#endif  // PITEX_SRC_UTIL_FILE_SYNC_H_
