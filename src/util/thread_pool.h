// A fixed-size worker pool for batch query processing.
//
// The pool is deliberately minimal: submit void() tasks, wait for
// quiescence, destructor joins. PITEX uses it for three workloads with
// different shapes:
//   * batch PITEX queries (src/core/batch_engine.h): many independent
//     medium-sized tasks, claimed via an atomic cursor;
//   * bulk index construction (src/index/rr_index.cc): ParallelForSlots
//     over theta samples, one SketchArena per claiming slot, guided
//     chunk claims absorbing the power-law skew of sketch sizes;
//   * the online serving layer (src/serve/pitex_service.h): long-lived
//     pump tasks that need to know which worker runs them so they can
//     bind to per-worker engine replicas — SubmitIndexed passes the
//     executing worker's index into the task. Two tasks observing the
//     same index never run concurrently (a worker runs one task at a
//     time), so index-keyed state needs no locking.
//
// ParallelFor is the convenience wrapper for index-style static ranges.
//
// Lock discipline is machine-checked: the queue state is annotated
// against mutex_ (src/util/thread_annotations.h) and clang builds carry
// -Wthread-safety. Tasks must own their state by value — capturing a
// caller's scratch object by reference across the Submit boundary is
// rejected by tools/check (rule `scratch-capture`).

#ifndef PITEX_SRC_UTIL_THREAD_POOL_H_
#define PITEX_SRC_UTIL_THREAD_POOL_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace pitex {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least one).
  explicit ThreadPool(size_t num_threads);

  /// Waits for all submitted tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Tasks must not throw (the library does not use
  /// exceptions); a task may Submit further tasks. Returns false --
  /// without enqueueing -- once Shutdown() has been called: submission
  /// after shutdown is an ordinary race in teardown paths (a drain
  /// thread racing the owner's destructor), so it is defined behavior,
  /// not a crash. Callers for whom a rejection is a logic error should
  /// PITEX_CHECK the result.
  bool Submit(std::function<void()> task) PITEX_EXCLUDES(mutex_);

  /// Like Submit, but the task receives the index (in [0, num_threads))
  /// of the pool worker executing it. The index identifies an exclusive
  /// slot: tasks seeing the same index are serialized, so per-worker
  /// state (engine replicas, scratch buffers) indexed by it is safe
  /// without synchronization. Returns false after Shutdown().
  bool SubmitIndexed(std::function<void(size_t)> task) PITEX_EXCLUDES(mutex_);

  /// Stops accepting new tasks: every later Submit/SubmitIndexed returns
  /// false. Tasks already queued still run to completion (use Wait() to
  /// block for them); workers are joined by the destructor, not here.
  /// Idempotent, safe from any thread, called implicitly by the
  /// destructor.
  void Shutdown() PITEX_EXCLUDES(mutex_);

  /// Blocks until every submitted task (including tasks submitted by
  /// running tasks) has finished.
  void Wait() PITEX_EXCLUDES(mutex_);

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop(size_t worker_index) PITEX_EXCLUDES(mutex_);

  Mutex mutex_;
  CondVar work_available_;
  CondVar all_idle_;
  std::deque<std::function<void(size_t)>> queue_ PITEX_GUARDED_BY(mutex_);
  size_t in_flight_ PITEX_GUARDED_BY(mutex_) = 0;  // queued + running tasks
  bool shutting_down_ PITEX_GUARDED_BY(mutex_) = false;
  std::vector<std::thread> workers_;  // written only by ctor/dtor
};

/// Runs fn(i) for i in [begin, end) across the pool, blocking until all
/// iterations finish. Iterations are claimed dynamically in *guided*
/// chunks off a shared cursor (like PitexService's run claims): each
/// claim takes remaining/(4 * tasks) iterations, so early claims are
/// large (amortizing the atomic) and tail claims shrink toward 1 —
/// a power-law-cost item landing in the last fixed-size chunk can no
/// longer stall the join while every other task sits idle. Results are
/// independent of thread count and claim interleaving as long as fn(i)
/// depends only on i.
void ParallelFor(ThreadPool* pool, size_t begin, size_t end,
                 const std::function<void(size_t)>& fn);

/// ParallelFor variant whose callback also receives a stable *slot* id in
/// [0, min(pool->num_threads(), end - begin)): each slot is one claiming
/// task, so invocations sharing a slot are serialized. Callers key
/// per-task state (e.g. one SketchArena per slot in the index build) by
/// it without synchronization.
void ParallelForSlots(ThreadPool* pool, size_t begin, size_t end,
                      const std::function<void(size_t, size_t)>& fn);

}  // namespace pitex

#endif  // PITEX_SRC_UTIL_THREAD_POOL_H_
