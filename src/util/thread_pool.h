// A fixed-size worker pool for batch query processing.
//
// The pool is deliberately minimal: submit void() tasks, wait for
// quiescence, destructor joins. PITEX uses it for two workloads with
// different shapes:
//   * batch PITEX queries (src/core/batch_engine.h): many independent
//     medium-sized tasks, claimed via an atomic cursor;
//   * bulk index construction already handles its own threading
//     (src/index/rr_index.cc) because its partitioning is static.
//
// ParallelFor is the convenience wrapper for index-style static ranges.

#ifndef PITEX_SRC_UTIL_THREAD_POOL_H_
#define PITEX_SRC_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pitex {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least one).
  explicit ThreadPool(size_t num_threads);

  /// Waits for all submitted tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Tasks must not throw (the library does not use
  /// exceptions); a task may Submit further tasks.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task (including tasks submitted by
  /// running tasks) has finished.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_idle_;
  std::deque<std::function<void()>> queue_;
  size_t in_flight_ = 0;  // queued + currently running tasks
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;
};

/// Runs fn(i) for i in [begin, end) across the pool, blocking until all
/// iterations finish. Iterations are claimed dynamically in chunks so
/// uneven per-item costs (e.g. power-law reach sizes) still balance.
void ParallelFor(ThreadPool* pool, size_t begin, size_t end,
                 const std::function<void(size_t)>& fn);

}  // namespace pitex

#endif  // PITEX_SRC_UTIL_THREAD_POOL_H_
