// Binary little-endian serialization primitives with checksumming.
//
// Index files (src/index/index_io.h) are binary because an RR-Graph index
// is orders of magnitude larger than its source network (Table 3): text
// encoding would triple the footprint and dominate load time. The writer
// streams fixed-width little-endian scalars and length-prefixed vectors
// while folding every byte into a running FNV-1a hash; the reader verifies
// the trailing checksum so that truncated or bit-flipped files are
// rejected instead of silently yielding a corrupt index.
//
// The encoding is independent of host endianness (bytes are assembled
// explicitly), so files are portable across platforms.

#ifndef PITEX_SRC_UTIL_SERIALIZE_H_
#define PITEX_SRC_UTIL_SERIALIZE_H_

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace pitex {

/// Incremental FNV-1a (64-bit) hash, used as the file checksum. Not
/// cryptographic; detects truncation and random corruption.
class Fnv1a {
 public:
  static constexpr uint64_t kOffsetBasis = 0xcbf29ce484222325ULL;
  static constexpr uint64_t kPrime = 0x100000001b3ULL;

  void Update(const void* data, size_t size);
  uint64_t digest() const { return state_; }

 private:
  uint64_t state_ = kOffsetBasis;
};

/// Streams little-endian binary values to an ostream, checksumming as it
/// goes. All Write* calls fail silently once the underlying stream fails;
/// call ok() (or check the stream) before trusting the output.
class BinaryWriter {
 public:
  /// `out` must outlive the writer.
  explicit BinaryWriter(std::ostream* out) : out_(out) {}

  void WriteU8(uint8_t value);
  void WriteU32(uint32_t value);
  void WriteU64(uint64_t value);
  /// Doubles and floats are encoded via their IEEE-754 bit patterns.
  void WriteF32(float value);
  void WriteF64(double value);
  /// Length-prefixed (u64) byte string.
  void WriteString(std::string_view value);
  /// Raw bytes, no length prefix (caller encodes the count separately).
  void WriteBytes(const void* data, size_t size);

  /// Length-prefixed vector of fixed-width scalars.
  template <typename T>
  void WriteVector(std::span<const T> values);

  /// Appends the running checksum (not itself checksummed). Call exactly
  /// once, last.
  void WriteChecksum();

  /// True while every write so far has succeeded.
  bool ok() const;
  uint64_t digest() const { return hash_.digest(); }

 private:
  std::ostream* out_;
  Fnv1a hash_;
};

/// Reads values written by BinaryWriter, re-computing the checksum.
/// Every Read* returns false on stream failure; after a false return the
/// reader is poisoned and all further reads fail.
class BinaryReader {
 public:
  /// `in` must outlive the reader.
  explicit BinaryReader(std::istream* in) : in_(in) {}

  bool ReadU8(uint8_t* value);
  bool ReadU32(uint32_t* value);
  bool ReadU64(uint64_t* value);
  bool ReadF32(float* value);
  bool ReadF64(double* value);
  bool ReadString(std::string* value);
  bool ReadBytes(void* data, size_t size);

  /// Length-prefixed vector of fixed-width scalars. `max_elements` guards
  /// against allocating pathological sizes from corrupt headers.
  template <typename T>
  bool ReadVector(std::vector<T>* values, uint64_t max_elements);

  /// Reads the trailing checksum and compares with the recomputed digest.
  bool VerifyChecksum();

  bool ok() const { return !failed_; }
  /// After a failed read: true when the failure was the stream ending
  /// (EOF) rather than a device error -- the signature of a torn write
  /// (an interrupted writer left a valid prefix). Meaningless while
  /// ok() is still true.
  bool at_end_of_stream() const;
  uint64_t digest() const { return hash_.digest(); }

 private:
  std::istream* in_;
  Fnv1a hash_;
  bool failed_ = false;
};

// Implementation details only below here.

template <typename T>
void BinaryWriter::WriteVector(std::span<const T> values) {
  static_assert(std::is_trivially_copyable_v<T>,
                "WriteVector requires trivially copyable elements");
  WriteU64(values.size());
  for (const T& v : values) {
    if constexpr (sizeof(T) == 1) {
      WriteU8(static_cast<uint8_t>(v));
    } else if constexpr (sizeof(T) == 4 && std::is_floating_point_v<T>) {
      WriteF32(static_cast<float>(v));
    } else if constexpr (sizeof(T) == 4) {
      WriteU32(static_cast<uint32_t>(v));
    } else if constexpr (sizeof(T) == 8 && std::is_floating_point_v<T>) {
      WriteF64(static_cast<double>(v));
    } else {
      static_assert(sizeof(T) == 8, "unsupported element width");
      WriteU64(static_cast<uint64_t>(v));
    }
  }
}

template <typename T>
bool BinaryReader::ReadVector(std::vector<T>* values, uint64_t max_elements) {
  static_assert(std::is_trivially_copyable_v<T>,
                "ReadVector requires trivially copyable elements");
  uint64_t count = 0;
  if (!ReadU64(&count) || count > max_elements) {
    failed_ = true;
    return false;
  }
  // Grow incrementally instead of resize(count): callers pass generous
  // max_elements bounds, so a corrupt length prefix could otherwise
  // drive one pathological upfront allocation before a single payload
  // byte is validated. With push_back, memory stays proportional to
  // bytes actually present -- a truncated stream fails at its first
  // missing element (tests/fuzz/index_io_fuzz.cc exercises this).
  values->clear();
  for (uint64_t i = 0; i < count; ++i) {
    T v;
    bool read_ok;
    if constexpr (sizeof(T) == 1) {
      uint8_t raw;
      read_ok = ReadU8(&raw);
      v = static_cast<T>(raw);
    } else if constexpr (sizeof(T) == 4 && std::is_floating_point_v<T>) {
      float raw;
      read_ok = ReadF32(&raw);
      v = static_cast<T>(raw);
    } else if constexpr (sizeof(T) == 4) {
      uint32_t raw;
      read_ok = ReadU32(&raw);
      v = static_cast<T>(raw);
    } else if constexpr (sizeof(T) == 8 && std::is_floating_point_v<T>) {
      double raw;
      read_ok = ReadF64(&raw);
      v = static_cast<T>(raw);
    } else {
      static_assert(sizeof(T) == 8, "unsupported element width");
      uint64_t raw;
      read_ok = ReadU64(&raw);
      v = static_cast<T>(raw);
    }
    if (!read_ok) return false;
    values->push_back(v);
  }
  return true;
}

}  // namespace pitex

#endif  // PITEX_SRC_UTIL_SERIALIZE_H_
