// Synthetic analogs of the paper's four evaluation datasets (Table 2).
//
// The real datasets (lastfm, diggs, dblp, twitter) and their learned TIC
// parameters are not available offline, so every benchmark consumes a
// generated network matching the published *shape*: |V|, |E|, |Z|, |Omega|
// of Table 2, power-law degree distribution, sparse per-edge topic
// vectors with weighted-cascade-scale probabilities, and a tag-topic
// matrix at the density the paper reports per dataset (Sec. 7.3: 0.16,
// 0.08, 0.32, 0.17). See DESIGN.md "Substitutions" for why this preserves
// the evaluated behaviour. The dblp and twitter analogs are scaled down
// by default so the harness runs on a laptop; `scale` restores Table-2
// sizes.

#ifndef PITEX_SRC_DATASETS_SYNTHETIC_H_
#define PITEX_SRC_DATASETS_SYNTHETIC_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/model/influence_graph.h"

namespace pitex {

/// Generator parameters for one dataset analog.
struct DatasetSpec {
  std::string name;
  size_t num_vertices = 1000;
  /// Target |E| ~= avg_out_degree * |V| (fractional values honored).
  double avg_out_degree = 8.0;
  size_t num_topics = 10;
  size_t num_tags = 50;
  /// Target fraction of non-zero p(w|z) entries.
  double tag_topic_density = 0.2;
  /// Scale of edge probabilities: p ~ U(0, edge_prob_scale) / in-degree
  /// (weighted-cascade flavor), clamped to [0, 1].
  double edge_prob_scale = 4.0;
  /// Probability that an edge carries a second (spillover) topic.
  double secondary_topic_prob = 0.4;
  uint64_t seed = 13;
};

/// Table-2 presets. `scale` multiplies |V| (degree, |Z|, |Omega| fixed).
DatasetSpec LastfmSpec(double scale = 1.0);   // 1.3K / 12K,  Z=20, W=50
DatasetSpec DiggsSpec(double scale = 1.0);    // 15K / 0.2M,  Z=20, W=50
DatasetSpec DblpSpec(double scale = 0.1);     // 0.5M / 6M,   Z=9,  W=276
DatasetSpec TwitterSpec(double scale = 0.01); // 10M / 12M,   Z=50, W=250

/// Generates the full network (graph + topic model + p(e|z) + tag names).
SocialNetwork GenerateDataset(const DatasetSpec& spec);

/// Query-user groups of Sec. 7.1: among users with outgoing edges, "high"
/// is the top 1% by out-degree, "mid" is top 1-10%, "low" is the rest.
enum class UserGroup { kHigh, kMid, kLow };

const char* UserGroupName(UserGroup group);

/// Draws `count` distinct users from the group (fewer if the group is
/// smaller than `count`).
std::vector<VertexId> SampleUserGroup(const Graph& graph, UserGroup group,
                                      size_t count, uint64_t seed);

}  // namespace pitex

#endif  // PITEX_SRC_DATASETS_SYNTHETIC_H_
