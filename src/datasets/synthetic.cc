#include "src/datasets/synthetic.h"

#include <algorithm>
#include <cmath>

#include "src/graph/generators.h"
#include "src/util/check.h"
#include "src/util/random.h"

namespace pitex {

DatasetSpec LastfmSpec(double scale) {
  DatasetSpec spec;
  spec.name = "lastfm";
  spec.num_vertices = std::max<size_t>(64, static_cast<size_t>(1300 * scale));
  spec.avg_out_degree = 8.7;
  spec.num_topics = 20;
  spec.num_tags = 50;
  spec.tag_topic_density = 0.16;
  spec.seed = 101;
  return spec;
}

DatasetSpec DiggsSpec(double scale) {
  DatasetSpec spec;
  spec.name = "diggs";
  spec.num_vertices = std::max<size_t>(64, static_cast<size_t>(15000 * scale));
  spec.avg_out_degree = 13.3;
  spec.num_topics = 20;
  spec.num_tags = 50;
  spec.tag_topic_density = 0.08;
  spec.seed = 102;
  return spec;
}

DatasetSpec DblpSpec(double scale) {
  DatasetSpec spec;
  spec.name = "dblp";
  spec.num_vertices =
      std::max<size_t>(64, static_cast<size_t>(500000 * scale));
  spec.avg_out_degree = 11.9;
  spec.num_topics = 9;
  spec.num_tags = 276;
  spec.tag_topic_density = 0.32;
  spec.seed = 103;
  return spec;
}

DatasetSpec TwitterSpec(double scale) {
  DatasetSpec spec;
  spec.name = "twitter";
  spec.num_vertices =
      std::max<size_t>(64, static_cast<size_t>(10000000 * scale));
  spec.avg_out_degree = 1.2;
  spec.num_topics = 50;
  spec.num_tags = 250;
  spec.tag_topic_density = 0.17;
  spec.seed = 104;
  return spec;
}

namespace {

Graph GenerateTopology(const DatasetSpec& spec, Rng* rng) {
  const size_t n = spec.num_vertices;
  const auto base_degree =
      static_cast<size_t>(std::floor(spec.avg_out_degree));
  const auto target_edges =
      static_cast<size_t>(std::llround(spec.avg_out_degree *
                                       static_cast<double>(n)));
  if (base_degree >= 1) {
    Graph pa = PreferentialAttachment(n, base_degree, rng);
    if (pa.num_edges() >= target_edges) return pa;
    // Top up the fractional remainder with random edges biased towards
    // high in-degree targets (keeps the power-law shape).
    GraphBuilder builder(n);
    for (EdgeId e = 0; e < pa.num_edges(); ++e) {
      builder.AddEdge(pa.Tail(e), pa.Head(e));
    }
    const size_t extra = target_edges - pa.num_edges();
    for (size_t i = 0; i < extra; ++i) {
      const auto u = static_cast<VertexId>(rng->NextBounded(n));
      // Pick the head of a random existing edge: probability proportional
      // to in-degree.
      const auto pick =
          static_cast<EdgeId>(rng->NextBounded(pa.num_edges()));
      const VertexId v = pa.Head(pick);
      if (u != v) builder.AddEdge(u, v);
    }
    return builder.Build();
  }
  // avg degree < 1 (the twitter analog): sparse preferential edges.
  GraphBuilder builder(n);
  std::vector<VertexId> targets{0};
  for (size_t i = 0; i < target_edges; ++i) {
    const auto u = static_cast<VertexId>(rng->NextBounded(n));
    VertexId v = targets[rng->NextBounded(targets.size())];
    if (rng->NextBernoulli(0.3)) {
      v = static_cast<VertexId>(rng->NextBounded(n));  // exploration
    }
    if (u == v) continue;
    builder.AddEdge(u, v);
    targets.push_back(v);
  }
  return builder.Build();
}

TopicModel GenerateTopicModel(const DatasetSpec& spec, Rng* rng) {
  TopicModel topics(spec.num_topics, spec.num_tags);
  // Every tag gets a primary topic with a strong likelihood, partitioning
  // the vocabulary; extra entries are sprinkled until the target density
  // is met (Sec. 7.3 discusses how this density controls pruning power).
  for (TagId w = 0; w < spec.num_tags; ++w) {
    const auto primary = static_cast<TopicId>(w % spec.num_topics);
    topics.SetTagTopic(w, primary, 0.5 + 0.5 * rng->NextDouble());
  }
  const auto total =
      static_cast<size_t>(spec.tag_topic_density *
                          static_cast<double>(spec.num_tags) *
                          static_cast<double>(spec.num_topics));
  size_t nonzero = spec.num_tags;  // one primary entry per tag
  size_t attempts = 0;
  const size_t max_attempts = 20 * spec.num_tags * spec.num_topics;
  while (nonzero < total && attempts++ < max_attempts) {
    const auto w = static_cast<TagId>(rng->NextBounded(spec.num_tags));
    const auto z = static_cast<TopicId>(rng->NextBounded(spec.num_topics));
    if (topics.TagTopic(w, z) > 0.0) continue;
    topics.SetTagTopic(w, z, 0.05 + 0.45 * rng->NextDouble());
    ++nonzero;
  }
  return topics;
}

InfluenceGraph GenerateInfluence(const DatasetSpec& spec, const Graph& graph,
                                 Rng* rng) {
  // Vertices belong to topic communities; an edge's primary topic is its
  // tail's community so that a user's influence is topically coherent.
  std::vector<TopicId> community(graph.num_vertices());
  for (auto& c : community) {
    c = static_cast<TopicId>(rng->NextBounded(spec.num_topics));
  }
  InfluenceGraphBuilder builder(graph.num_edges());
  std::vector<EdgeTopicEntry> entries;
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    entries.clear();
    const VertexId head = graph.Head(e);
    const double in_deg =
        std::max<double>(1.0, static_cast<double>(graph.InDegree(head)));
    // Weighted-cascade flavor: harder to influence popular users.
    const double p =
        std::min(1.0, spec.edge_prob_scale * rng->NextDouble() / in_deg);
    const TopicId primary = community[graph.Tail(e)];
    entries.push_back({primary, p});
    if (spec.num_topics > 1 && rng->NextBernoulli(spec.secondary_topic_prob)) {
      auto secondary =
          static_cast<TopicId>(rng->NextBounded(spec.num_topics - 1));
      if (secondary >= primary) ++secondary;
      entries.push_back({secondary, p * 0.5});
    }
    builder.SetEdgeTopics(e, entries);
  }
  return builder.Build();
}

}  // namespace

SocialNetwork GenerateDataset(const DatasetSpec& spec) {
  PITEX_CHECK(spec.num_vertices >= 2);
  PITEX_CHECK(spec.num_topics >= 1 && spec.num_tags >= 1);
  Rng rng(spec.seed);
  SocialNetwork network;
  network.graph = GenerateTopology(spec, &rng);
  network.topics = GenerateTopicModel(spec, &rng);
  network.influence = GenerateInfluence(spec, network.graph, &rng);
  for (size_t w = 0; w < spec.num_tags; ++w) {
    network.tags.Intern(spec.name + "_tag_" + std::to_string(w));
  }
  return network;
}

const char* UserGroupName(UserGroup group) {
  switch (group) {
    case UserGroup::kHigh: return "high";
    case UserGroup::kMid: return "mid";
    case UserGroup::kLow: return "low";
  }
  return "?";
}

std::vector<VertexId> SampleUserGroup(const Graph& graph, UserGroup group,
                                      size_t count, uint64_t seed) {
  // Users with no outgoing edge are filtered (Sec. 7.1), the rest ranked
  // by out-degree.
  std::vector<VertexId> users;
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    if (graph.OutDegree(v) > 0) users.push_back(v);
  }
  std::sort(users.begin(), users.end(), [&](VertexId a, VertexId b) {
    return graph.OutDegree(a) > graph.OutDegree(b);
  });
  const size_t n = users.size();
  size_t begin = 0, end = n;
  const size_t p1 = std::max<size_t>(1, n / 100);
  const size_t p10 = std::max<size_t>(p1 + 1, n / 10);
  switch (group) {
    case UserGroup::kHigh: begin = 0; end = p1; break;
    case UserGroup::kMid: begin = p1; end = p10; break;
    case UserGroup::kLow: begin = p10; end = n; break;
  }
  end = std::max(end, std::min(n, begin + 1));
  std::vector<VertexId> pool(users.begin() + static_cast<long>(begin),
                             users.begin() + static_cast<long>(end));
  Rng rng(seed);
  // Fisher-Yates prefix shuffle.
  const size_t take = std::min(count, pool.size());
  for (size_t i = 0; i < take; ++i) {
    const size_t j = i + rng.NextBounded(pool.size() - i);
    std::swap(pool[i], pool[j]);
  }
  pool.resize(take);
  return pool;
}

}  // namespace pitex
