#include "src/datasets/case_study.h"

#include <algorithm>
#include <array>

#include "src/graph/generators.h"
#include "src/util/check.h"
#include "src/util/random.h"

namespace pitex {

namespace {

// Eight research areas and five keywords each (the tag vocabulary).
constexpr size_t kNumAreas = 8;
constexpr size_t kTagsPerArea = 5;
constexpr std::array<const char*, kNumAreas> kAreaNames = {
    "machine-learning", "data-mining", "databases",    "theory",
    "systems",          "networks",    "vision",       "algorithms"};
constexpr std::array<std::array<const char*, kTagsPerArea>, kNumAreas>
    kAreaTags = {{
        {"learning", "neural", "representation", "inference", "speech"},
        {"mining", "patterns", "clustering", "knowledge", "analysis"},
        {"data", "management", "storage", "transactions", "query"},
        {"complexity", "foundations", "automata", "combinatorial", "proofs"},
        {"systems", "distributed", "parallel", "dependable", "performance"},
        {"networks", "social", "internet", "communications", "society"},
        {"image", "recognition", "detection", "segmentation", "tracking"},
        {"algorithms", "approximation", "randomized", "mathematical",
         "optimization"},
    }};

struct ResearcherSpec {
  const char* name;
  std::vector<TopicId> topics;
};

std::vector<ResearcherSpec> ResearcherSpecs() {
  return {
      {"jordan", {0}},      {"lecun", {0, 6}},       {"han", {1}},
      {"leskovec", {1, 5}}, {"stonebraker", {2, 4}}, {"gray", {2}},
      {"karp", {3, 7}},     {"valiant", {3}},
  };
}

}  // namespace

CaseStudyData GenerateCaseStudy(const CaseStudyOptions& options) {
  PITEX_CHECK(options.num_vertices >= 100);
  Rng rng(options.seed);
  CaseStudyData data;

  // Tag vocabulary + topic model. Each tag is supported by its primary
  // area (p ~ 0.8) plus one random *secondary* area (p ~ 0.1), zeros
  // elsewhere — density 2/8 = 0.25, matching the paper's dblp regime
  // (0.32, Sec. 7.3). Sparsity is what lets best-effort exploration prune
  // the C(40, 5) candidate space down to the few hundred tag sets whose
  // members co-support a topic; a dense matrix here makes the k = 5
  // search effectively exhaustive. Random (rather than systematic)
  // secondaries keep cross-area tag sets from acquiring a shared topic,
  // so the planted within-area sets dominate.
  const size_t num_tags = kNumAreas * kTagsPerArea;
  data.network.topics = TopicModel(kNumAreas, num_tags);
  std::vector<TopicId> primary_of(num_tags);
  for (size_t a = 0; a < kNumAreas; ++a) {
    for (size_t i = 0; i < kTagsPerArea; ++i) {
      const TagId w = data.network.tags.Intern(kAreaTags[a][i]);
      primary_of[w] = static_cast<TopicId>(a);
    }
  }
  for (TagId w = 0; w < num_tags; ++w) {
    data.network.topics.SetTagTopic(w, primary_of[w],
                                    0.75 + 0.25 * rng.NextDouble());
    auto secondary =
        static_cast<TopicId>(rng.NextBounded(kNumAreas - 1));
    if (secondary >= primary_of[w]) ++secondary;
    data.network.topics.SetTagTopic(w, secondary,
                                    0.05 + 0.1 * rng.NextDouble());
  }

  // Base co-authorship-style topology.
  Graph base = PreferentialAttachment(options.num_vertices, 3, &rng);
  GraphBuilder builder(options.num_vertices);
  for (EdgeId e = 0; e < base.num_edges(); ++e) {
    builder.AddEdge(base.Tail(e), base.Head(e));
  }

  // Researchers become hubs with `hub_degree` extra outgoing edges.
  const auto specs = ResearcherSpecs();
  const size_t num_base_edges = base.num_edges();
  std::vector<std::pair<size_t, size_t>> hub_edge_ranges;
  for (size_t r = 0; r < specs.size(); ++r) {
    const auto vertex = static_cast<VertexId>(
        (r + 1) * options.num_vertices / (specs.size() + 1));
    const size_t first_edge = builder.num_edges();
    for (size_t i = 0; i < options.hub_degree; ++i) {
      auto target =
          static_cast<VertexId>(rng.NextBounded(options.num_vertices - 1));
      if (target >= vertex) ++target;
      builder.AddEdge(vertex, target);
    }
    hub_edge_ranges.emplace_back(first_edge, builder.num_edges());
    Researcher researcher;
    researcher.name = specs[r].name;
    researcher.vertex = vertex;
    researcher.topics = specs[r].topics;
    // Ground truth: every tag with support on one of the researcher's
    // areas (primary or secondary). Influence depends on a tag set only
    // through the posterior p(z|W), so tags whose secondary support
    // yields the same saturated posterior as the area's own tags are
    // genuinely optimal answers — the planted-truth analog of the
    // paper's human annotators accepting related keywords (Table 4
    // lists "speech" for Michael Jordan and "theory" for LeCun).
    for (TagId w = 0; w < num_tags; ++w) {
      for (const TopicId z : specs[r].topics) {
        if (data.network.topics.TagTopic(w, z) > 0.0) {
          researcher.ground_truth.push_back(w);
          break;
        }
      }
    }
    data.researchers.push_back(std::move(researcher));
  }
  data.network.graph = builder.Build();

  // Influence probabilities: hub edges concentrate on the researcher's
  // planted areas; base edges carry weak probabilities on random areas.
  InfluenceGraphBuilder influence(data.network.graph.num_edges());
  std::vector<EdgeTopicEntry> entries;
  auto owner_of_edge = [&](EdgeId e) -> const Researcher* {
    for (size_t r = 0; r < hub_edge_ranges.size(); ++r) {
      if (e >= hub_edge_ranges[r].first && e < hub_edge_ranges[r].second) {
        return &data.researchers[r];
      }
    }
    return nullptr;
  };
  for (EdgeId e = 0; e < data.network.graph.num_edges(); ++e) {
    entries.clear();
    if (e < num_base_edges) {
      const auto z = static_cast<TopicId>(rng.NextBounded(kNumAreas));
      entries.push_back({z, 0.01 + 0.05 * rng.NextDouble()});
    } else if (const Researcher* owner = owner_of_edge(e)) {
      for (TopicId z : owner->topics) {
        entries.push_back({z, 0.25 + 0.35 * rng.NextDouble()});
      }
    }
    influence.SetEdgeTopics(e, entries);
  }
  data.network.influence = influence.Build();
  return data;
}

double CaseStudyAccuracy(std::span<const TagId> selected,
                         std::span<const TagId> truth) {
  if (selected.empty()) return 0.0;
  size_t hits = 0;
  for (TagId w : selected) {
    if (std::find(truth.begin(), truth.end(), w) != truth.end()) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(selected.size());
}

}  // namespace pitex
