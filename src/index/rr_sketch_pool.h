// Pooled storage for the offline RR-Graph index (Sec. 6.1): all theta
// sketches flattened into one contiguous vertex array, one edge array and
// one offsets array (a CSR of per-sketch CSRs), plus a CSR-flattened
// inverted "containing" index.
//
// The IndexEst estimate path walks theta(u) tiny sketches per query; with
// one heap object per sketch (three vectors each) those walks chase
// pointers all over the heap and the allocator dominates build time. The
// pool keeps every sketch's data adjacent, hands out non-owning RRViews,
// and answers Containing(u) from one flat array — no per-sketch or
// per-vertex heap objects at all, and SizeBytes() is O(1).
//
// Layout for sketch i (n_i vertices, m_i edges):
//   roots_[i]                                     root vertex
//   vertices_[vertex_starts_[i] .. vertex_starts_[i+1])   sorted vertex ids
//   offsets_[vertex_starts_[i] + i ..  + n_i + 1)  local CSR (starts at 0)
//   edges_[edge_starts_[i] .. edge_starts_[i+1])   local out-edges
// The offsets position is derived: sketch i's offsets block starts at
// vertex_starts_[i] + i because every earlier sketch contributed n_j + 1
// entries.
//
// The pool is immutable after Pack(): DynamicRrIndex, which repairs
// individual sketches in place, deliberately keeps per-sketch owning
// RRGraphs instead (mutating a pooled sketch would force a full repack).

#ifndef PITEX_SRC_INDEX_RR_SKETCH_POOL_H_
#define PITEX_SRC_INDEX_RR_SKETCH_POOL_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "src/index/rr_graph.h"
#include "src/index/sketch_arena.h"
#include "src/util/thread_pool.h"

namespace pitex {

class RrSketchPool {
 public:
  RrSketchPool() = default;

  /// Flattens per-sketch owning graphs into one pool and builds the
  /// inverted containing index with a counting pass (exact-size
  /// allocation, no push_back growth). `num_vertices` is the global
  /// vertex universe; every graph vertex must lie inside it. When `pool`
  /// is non-null the sketch copy and the containing fill run across its
  /// workers (the serve-layer publish path packs a repaired master this
  /// way); the result is identical for any pool size.
  static RrSketchPool Pack(std::span<const RRGraph> graphs,
                           size_t num_vertices,
                           ThreadPool* pool = nullptr);

  /// Two-pass pack straight from build arenas, replacing the old
  /// copy-of-a-copy (owning staging RRGraphs, then Pack): pass one sizes
  /// every pooled array exactly from per-arena counters; pass two copies
  /// each sketch's segments once — in parallel when `pool` is non-null.
  /// The arenas' recorded sample indices must cover [0, num_sketches)
  /// exactly once; sketch i of the pool is the arena sketch with sample
  /// index i, so the result is bit-identical for any arena count /
  /// claim interleaving.
  static RrSketchPool PackFrom(std::span<const SketchArena> arenas,
                               uint64_t num_sketches, size_t num_vertices,
                               ThreadPool* pool = nullptr);

  size_t num_sketches() const { return roots_.size(); }
  bool empty() const { return roots_.empty(); }

  /// Non-owning view of sketch i (valid while the pool is alive).
  RRView View(size_t i) const {
    const uint64_t vb = vertex_starts_[i];
    const uint64_t n = vertex_starts_[i + 1] - vb;
    const uint64_t eb = edge_starts_[i];
    return RRView{
        roots_[i],
        {vertices_.data() + vb, n},
        {offsets_.data() + vb + i, n + 1},
        {edges_.data() + eb, edge_starts_[i + 1] - eb}};
  }

  VertexId root(size_t i) const { return roots_[i]; }

  /// Ids (sketch positions) of the sketches containing u, ascending.
  std::span<const uint32_t> Containing(VertexId u) const {
    return {containing_.data() + containing_starts_[u],
            containing_.data() + containing_starts_[u + 1]};
  }
  /// theta(u): how many sketches contain u (Sec. 6.3 notation).
  size_t CountContaining(VertexId u) const {
    return containing_starts_[u + 1] - containing_starts_[u];
  }
  /// Number of vertices the containing index covers.
  size_t num_universe_vertices() const {
    return containing_starts_.empty() ? 0 : containing_starts_.size() - 1;
  }

  /// Totals across all sketches.
  uint64_t total_vertices() const { return vertices_.size(); }
  uint64_t total_edges() const { return edges_.size(); }
  /// Largest per-sketch vertex count (scratch pre-sizing).
  size_t max_sketch_vertices() const { return max_sketch_vertices_; }

  /// Exact footprint of the pooled arrays, computed in O(1).
  size_t SizeBytes() const;

 private:
  friend class IndexIo;  // persistence reads/writes the raw arrays

  /// Rebuilds containing_starts_/containing_ from the packed vertex
  /// arrays (counting pass + prefix sum + fill in ascending sketch-id
  /// order). Also recomputes max_sketch_vertices_. With a pool, count
  /// and fill run over sketch ranges balanced by vertex volume, with
  /// per-range histograms turned into deterministic per-range cursors —
  /// the fill order per vertex is still ascending sketch id.
  void BuildContaining(size_t num_vertices, ThreadPool* pool = nullptr);

  std::vector<VertexId> roots_;          // one per sketch
  std::vector<uint64_t> vertex_starts_;  // num_sketches + 1
  std::vector<VertexId> vertices_;       // all sketch vertex arrays
  std::vector<uint32_t> offsets_;        // all local CSRs; n_i + 1 each
  std::vector<uint64_t> edge_starts_;    // num_sketches + 1
  std::vector<RRLocalEdge> edges_;       // all sketch edge arrays
  std::vector<uint64_t> containing_starts_;  // num_vertices + 1
  std::vector<uint32_t> containing_;         // sketch ids, CSR by vertex
  size_t max_sketch_vertices_ = 0;
};

}  // namespace pitex

#endif  // PITEX_SRC_INDEX_RR_SKETCH_POOL_H_
