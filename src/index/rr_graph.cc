#include "src/index/rr_graph.h"

#include <algorithm>

#include "src/index/sketch_arena.h"
#include "src/util/check.h"

namespace pitex {

std::optional<uint32_t> RRView::LocalIndex(VertexId v) const {
  auto it = std::lower_bound(vertices.begin(), vertices.end(), v);
  if (it == vertices.end() || *it != v) return std::nullopt;
  return static_cast<uint32_t>(it - vertices.begin());
}

size_t RRGraph::SizeBytes() const {
  return sizeof(RRGraph) + vertices.capacity() * sizeof(VertexId) +
         offsets.capacity() * sizeof(uint32_t) +
         edges.capacity() * sizeof(RRLocalEdge);
}

void EstimateScratch::Reserve(size_t max_vertices) {
  if (visited_.size() < max_vertices) visited_.resize(max_vertices, 0);
}

RRGraph AssembleRRGraph(VertexId root, std::vector<VertexId> vertices,
                        std::span<const GlobalEdgeSample> edges) {
  RRGraph rr;
  rr.root = root;
  std::sort(vertices.begin(), vertices.end());
  vertices.erase(std::unique(vertices.begin(), vertices.end()),
                 vertices.end());
  rr.vertices = std::move(vertices);
  const size_t n = rr.vertices.size();

  auto local_of = [&](VertexId v) -> std::optional<uint32_t> {
    return rr.LocalIndex(v);
  };

  // Counting sort the surviving edges by local tail.
  std::vector<std::pair<uint32_t, RRLocalEdge>> staged;
  staged.reserve(edges.size());
  for (const auto& e : edges) {
    const auto tail = local_of(e.tail);
    const auto head = local_of(e.head);
    if (!tail || !head) continue;
    staged.emplace_back(*tail, RRLocalEdge{*head, e.edge, e.threshold});
  }
  rr.offsets.assign(n + 1, 0);
  for (const auto& [tail, local] : staged) ++rr.offsets[tail + 1];
  for (size_t i = 0; i < n; ++i) rr.offsets[i + 1] += rr.offsets[i];
  rr.edges.resize(staged.size());
  std::vector<uint32_t> pos(rr.offsets.begin(), rr.offsets.end() - 1);
  for (const auto& [tail, local] : staged) rr.edges[pos[tail]++] = local;
  return rr;
}

void DecomposeRRGraphInto(const RRGraph& rr,
                          std::vector<GlobalEdgeSample>* edges) {
  edges->clear();
  edges->reserve(rr.edges.size());
  for (uint32_t tail = 0; tail + 1 < rr.offsets.size(); ++tail) {
    for (uint32_t i = rr.offsets[tail]; i < rr.offsets[tail + 1]; ++i) {
      const RRLocalEdge& local = rr.edges[i];
      edges->push_back(GlobalEdgeSample{rr.vertices[tail],
                                        rr.vertices[local.head_local],
                                        local.edge, local.threshold});
    }
  }
}

std::vector<GlobalEdgeSample> DecomposeRRGraph(const RRGraph& rr) {
  std::vector<GlobalEdgeSample> edges;
  DecomposeRRGraphInto(rr, &edges);
  return edges;
}

RRGraph GenerateRRGraph(const Graph& graph, const InfluenceGraph& influence,
                        VertexId root, Rng* rng) {
  // One-off entry point over the arena core: identical draws to the
  // table-backed bulk build (SketchArena materializes the envelope floats
  // per visited vertex), owning-RRGraph output for callers that keep
  // per-sketch storage (DynamicRrIndex, TIM planning, tests).
  thread_local SketchArena arena;
  arena.Clear();
  arena.Generate(graph, influence, root, rng, /*sample_index=*/0);
  RRGraph out;
  arena.Export(0, &out);
  return out;
}

PITEX_NOALLOC bool IsReachable(const RRView& rr, VertexId u,
                               const EdgeProbFn& probs,
                               uint64_t* edges_visited,
                               EstimateScratch* scratch) {
  const auto start = rr.LocalIndex(u);
  if (!start) return false;
  const auto target = rr.LocalIndex(rr.root);
  PITEX_DCHECK(target.has_value());
  if (*start == *target) return true;

  const size_t n = rr.vertices.size();
  auto& visited = scratch->visited_;
  if (visited.size() < n) visited.resize(n, 0);
  // Epoch stamping: bumping the epoch invalidates every old mark without
  // touching memory. On the (once per 2^32 calls) wrap, clear explicitly.
  if (++scratch->epoch_ == 0) {
    std::fill(visited.begin(), visited.end(), 0);
    scratch->epoch_ = 1;
  }
  const uint32_t epoch = scratch->epoch_;

  auto& stack = scratch->stack_;
  stack.clear();
  stack.push_back(*start);
  visited[*start] = epoch;
  uint64_t probes = 0;
  bool found = false;
  while (!stack.empty() && !found) {
    const uint32_t v = stack.back();
    stack.pop_back();
    for (uint32_t i = rr.offsets[v]; i < rr.offsets[v + 1]; ++i) {
      const auto& edge = rr.edges[i];
      ++probes;
      if (visited[edge.head_local] == epoch) continue;
      if (probs.Prob(edge.edge) < edge.threshold) continue;  // dead under W
      if (edge.head_local == *target) {
        found = true;
        break;
      }
      visited[edge.head_local] = epoch;
      stack.push_back(edge.head_local);
    }
  }
  if (edges_visited != nullptr) *edges_visited += probes;
  return found;
}

bool IsReachable(const RRView& rr, VertexId u, const EdgeProbFn& probs,
                 uint64_t* edges_visited) {
  EstimateScratch scratch;
  return IsReachable(rr, u, probs, edges_visited, &scratch);
}

}  // namespace pitex
