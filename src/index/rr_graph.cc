#include "src/index/rr_graph.h"

#include <algorithm>
#include <unordered_map>

#include "src/util/check.h"

namespace pitex {

std::optional<uint32_t> RRGraph::LocalIndex(VertexId v) const {
  auto it = std::lower_bound(vertices.begin(), vertices.end(), v);
  if (it == vertices.end() || *it != v) return std::nullopt;
  return static_cast<uint32_t>(it - vertices.begin());
}

size_t RRGraph::SizeBytes() const {
  return sizeof(RRGraph) + vertices.capacity() * sizeof(VertexId) +
         offsets.capacity() * sizeof(uint32_t) +
         edges.capacity() * sizeof(LocalEdge);
}

RRGraph AssembleRRGraph(VertexId root, std::vector<VertexId> vertices,
                        std::span<const GlobalEdgeSample> edges) {
  RRGraph rr;
  rr.root = root;
  std::sort(vertices.begin(), vertices.end());
  vertices.erase(std::unique(vertices.begin(), vertices.end()),
                 vertices.end());
  rr.vertices = std::move(vertices);
  const size_t n = rr.vertices.size();

  auto local_of = [&](VertexId v) -> std::optional<uint32_t> {
    return rr.LocalIndex(v);
  };

  // Counting sort the surviving edges by local tail.
  std::vector<std::pair<uint32_t, RRGraph::LocalEdge>> staged;
  staged.reserve(edges.size());
  for (const auto& e : edges) {
    const auto tail = local_of(e.tail);
    const auto head = local_of(e.head);
    if (!tail || !head) continue;
    staged.emplace_back(*tail,
                        RRGraph::LocalEdge{*head, e.edge, e.threshold});
  }
  rr.offsets.assign(n + 1, 0);
  for (const auto& [tail, local] : staged) ++rr.offsets[tail + 1];
  for (size_t i = 0; i < n; ++i) rr.offsets[i + 1] += rr.offsets[i];
  rr.edges.resize(staged.size());
  std::vector<uint32_t> pos(rr.offsets.begin(), rr.offsets.end() - 1);
  for (const auto& [tail, local] : staged) rr.edges[pos[tail]++] = local;
  return rr;
}

std::vector<GlobalEdgeSample> DecomposeRRGraph(const RRGraph& rr) {
  std::vector<GlobalEdgeSample> edges;
  edges.reserve(rr.edges.size());
  for (uint32_t tail = 0; tail + 1 < rr.offsets.size(); ++tail) {
    for (uint32_t i = rr.offsets[tail]; i < rr.offsets[tail + 1]; ++i) {
      const RRGraph::LocalEdge& local = rr.edges[i];
      edges.push_back(GlobalEdgeSample{rr.vertices[tail],
                                       rr.vertices[local.head_local],
                                       local.edge, local.threshold});
    }
  }
  return edges;
}

RRGraph GenerateRRGraph(const Graph& graph, const InfluenceGraph& influence,
                        VertexId root, Rng* rng) {
  // Reverse BFS from the root over live edges; each in-edge of a visited
  // vertex is probed exactly once (its head is unique).
  std::vector<VertexId> vertices{root};
  std::vector<GlobalEdgeSample> live;
  std::unordered_map<VertexId, uint8_t> visited;
  visited.emplace(root, 1);
  std::vector<VertexId> stack{root};
  while (!stack.empty()) {
    const VertexId v = stack.back();
    stack.pop_back();
    for (const auto& [w, e] : graph.InEdges(v)) {
      const double p = influence.MaxProb(e);
      if (p <= 0.0) continue;
      if (!rng->NextBernoulli(p)) continue;  // dead for every W
      const auto threshold = static_cast<float>(rng->NextDouble() * p);
      live.push_back(GlobalEdgeSample{w, v, e, threshold});
      if (visited.emplace(w, 1).second) {
        vertices.push_back(w);
        stack.push_back(w);
      }
    }
  }
  return AssembleRRGraph(root, std::move(vertices), live);
}

bool IsReachable(const RRGraph& rr, VertexId u, const EdgeProbFn& probs,
                 uint64_t* edges_visited) {
  const auto start = rr.LocalIndex(u);
  if (!start) return false;
  const auto target = rr.LocalIndex(rr.root);
  PITEX_DCHECK(target.has_value());
  if (*start == *target) return true;

  std::vector<uint8_t> visited(rr.vertices.size(), 0);
  std::vector<uint32_t> stack{*start};
  visited[*start] = 1;
  uint64_t probes = 0;
  bool found = false;
  while (!stack.empty() && !found) {
    const uint32_t v = stack.back();
    stack.pop_back();
    for (uint32_t i = rr.offsets[v]; i < rr.offsets[v + 1]; ++i) {
      const auto& edge = rr.edges[i];
      ++probes;
      if (visited[edge.head_local]) continue;
      if (probs.Prob(edge.edge) < edge.threshold) continue;  // dead under W
      if (edge.head_local == *target) {
        found = true;
        break;
      }
      visited[edge.head_local] = 1;
      stack.push_back(edge.head_local);
    }
  }
  if (edges_visited != nullptr) *edges_visited += probes;
  return found;
}

}  // namespace pitex
