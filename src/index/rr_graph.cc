#include "src/index/rr_graph.h"

#include <algorithm>

#include "src/util/check.h"

namespace pitex {

std::optional<uint32_t> RRView::LocalIndex(VertexId v) const {
  auto it = std::lower_bound(vertices.begin(), vertices.end(), v);
  if (it == vertices.end() || *it != v) return std::nullopt;
  return static_cast<uint32_t>(it - vertices.begin());
}

size_t RRGraph::SizeBytes() const {
  return sizeof(RRGraph) + vertices.capacity() * sizeof(VertexId) +
         offsets.capacity() * sizeof(uint32_t) +
         edges.capacity() * sizeof(RRLocalEdge);
}

void EstimateScratch::Reserve(size_t max_vertices) {
  if (visited_.size() < max_vertices) visited_.resize(max_vertices, 0);
}

RRGraph AssembleRRGraph(VertexId root, std::vector<VertexId> vertices,
                        std::span<const GlobalEdgeSample> edges) {
  RRGraph rr;
  rr.root = root;
  std::sort(vertices.begin(), vertices.end());
  vertices.erase(std::unique(vertices.begin(), vertices.end()),
                 vertices.end());
  rr.vertices = std::move(vertices);
  const size_t n = rr.vertices.size();

  auto local_of = [&](VertexId v) -> std::optional<uint32_t> {
    return rr.LocalIndex(v);
  };

  // Counting sort the surviving edges by local tail.
  std::vector<std::pair<uint32_t, RRLocalEdge>> staged;
  staged.reserve(edges.size());
  for (const auto& e : edges) {
    const auto tail = local_of(e.tail);
    const auto head = local_of(e.head);
    if (!tail || !head) continue;
    staged.emplace_back(*tail, RRLocalEdge{*head, e.edge, e.threshold});
  }
  rr.offsets.assign(n + 1, 0);
  for (const auto& [tail, local] : staged) ++rr.offsets[tail + 1];
  for (size_t i = 0; i < n; ++i) rr.offsets[i + 1] += rr.offsets[i];
  rr.edges.resize(staged.size());
  std::vector<uint32_t> pos(rr.offsets.begin(), rr.offsets.end() - 1);
  for (const auto& [tail, local] : staged) rr.edges[pos[tail]++] = local;
  return rr;
}

std::vector<GlobalEdgeSample> DecomposeRRGraph(const RRGraph& rr) {
  std::vector<GlobalEdgeSample> edges;
  edges.reserve(rr.edges.size());
  for (uint32_t tail = 0; tail + 1 < rr.offsets.size(); ++tail) {
    for (uint32_t i = rr.offsets[tail]; i < rr.offsets[tail + 1]; ++i) {
      const RRLocalEdge& local = rr.edges[i];
      edges.push_back(GlobalEdgeSample{rr.vertices[tail],
                                       rr.vertices[local.head_local],
                                       local.edge, local.threshold});
    }
  }
  return edges;
}

namespace {

// Per-thread visited stamps for GenerateRRGraph's reverse BFS: a dense
// epoch array over the global vertex space replaces the previous
// unordered_map (no hashing, no rehash growth on the build hot path).
// Deterministic: only the membership-set representation changed, so the
// RNG consumes exactly the same draws.
struct GenerateScratch {
  std::vector<uint32_t> mark;
  std::vector<VertexId> stack;
  uint32_t epoch = 0;

  // Starts a new traversal over `num_vertices` global vertices; returns
  // the epoch stamp marking "visited in this traversal".
  uint32_t Begin(size_t num_vertices) {
    if (mark.size() < num_vertices) mark.resize(num_vertices, 0);
    if (++epoch == 0) {
      std::fill(mark.begin(), mark.end(), 0);
      epoch = 1;
    }
    return epoch;
  }
};

}  // namespace

RRGraph GenerateRRGraph(const Graph& graph, const InfluenceGraph& influence,
                        VertexId root, Rng* rng) {
  thread_local GenerateScratch scratch;
  const uint32_t epoch = scratch.Begin(graph.num_vertices());

  // Reverse BFS from the root over live edges; each in-edge of a visited
  // vertex is probed exactly once (its head is unique).
  std::vector<VertexId> vertices{root};
  std::vector<GlobalEdgeSample> live;
  scratch.mark[root] = epoch;
  auto& stack = scratch.stack;
  stack.assign(1, root);
  while (!stack.empty()) {
    const VertexId v = stack.back();
    stack.pop_back();
    for (const auto& [w, e] : graph.InEdges(v)) {
      const double p = influence.MaxProb(e);
      if (p <= 0.0) continue;
      if (!rng->NextBernoulli(p)) continue;  // dead for every W
      const auto threshold = static_cast<float>(rng->NextDouble() * p);
      live.push_back(GlobalEdgeSample{w, v, e, threshold});
      if (scratch.mark[w] != epoch) {
        scratch.mark[w] = epoch;
        vertices.push_back(w);
        stack.push_back(w);
      }
    }
  }
  return AssembleRRGraph(root, std::move(vertices), live);
}

bool IsReachable(const RRView& rr, VertexId u, const EdgeProbFn& probs,
                 uint64_t* edges_visited, EstimateScratch* scratch) {
  const auto start = rr.LocalIndex(u);
  if (!start) return false;
  const auto target = rr.LocalIndex(rr.root);
  PITEX_DCHECK(target.has_value());
  if (*start == *target) return true;

  const size_t n = rr.vertices.size();
  auto& visited = scratch->visited_;
  if (visited.size() < n) visited.resize(n, 0);
  // Epoch stamping: bumping the epoch invalidates every old mark without
  // touching memory. On the (once per 2^32 calls) wrap, clear explicitly.
  if (++scratch->epoch_ == 0) {
    std::fill(visited.begin(), visited.end(), 0);
    scratch->epoch_ = 1;
  }
  const uint32_t epoch = scratch->epoch_;

  auto& stack = scratch->stack_;
  stack.clear();
  stack.push_back(*start);
  visited[*start] = epoch;
  uint64_t probes = 0;
  bool found = false;
  while (!stack.empty() && !found) {
    const uint32_t v = stack.back();
    stack.pop_back();
    for (uint32_t i = rr.offsets[v]; i < rr.offsets[v + 1]; ++i) {
      const auto& edge = rr.edges[i];
      ++probes;
      if (visited[edge.head_local] == epoch) continue;
      if (probs.Prob(edge.edge) < edge.threshold) continue;  // dead under W
      if (edge.head_local == *target) {
        found = true;
        break;
      }
      visited[edge.head_local] = epoch;
      stack.push_back(edge.head_local);
    }
  }
  if (edges_visited != nullptr) *edges_visited += probes;
  return found;
}

bool IsReachable(const RRView& rr, VertexId u, const EdgeProbFn& probs,
                 uint64_t* edges_visited) {
  EstimateScratch scratch;
  return IsReachable(rr, u, probs, edges_visited, &scratch);
}

}  // namespace pitex
