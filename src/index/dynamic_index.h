// Incremental maintenance of the RR-Graph index under influence-model
// updates.
//
// The paper's Sec. 2 observes that reliability-query indexes assume a
// *fixed* input graph, and its own index (Sec. 6) is built offline once.
// In deployments the influence model is re-learned continually (new
// cascades arrive, p(e|z) drifts), and rebuilding theta RR-Graphs per
// refresh is the dominant cost (Table 3 build times). DynamicRrIndex
// repairs the index instead of rebuilding it.
//
// Repair rule (coin coupling). Model each edge's sampling randomness as
// a latent uniform U(e): the edge is live in a world iff U(e) < p(e),
// and the stored threshold c(e) of a live edge is exactly U(e). An
// RR-Graph probed edge e = (t, v) iff it contains v, so:
//
//   * graphs without v never examined U(e) — untouched, distribution
//     unchanged (they probed only edges whose probabilities are
//     unchanged);
//   * e live in the graph (c < p_old): stays live iff c < p_new — the
//     exact conditional P[U < p_new | U < p_old]; on death the graph is
//     pruned back to the vertices still reaching the root;
//   * e dead (v present, e absent; latent U uniform on [p_old, 1)):
//     resurrects with probability (p_new - p_old)/(1 - p_old), drawing
//     c uniform on [p_old, p_new); if the tail t was outside the graph
//     the reverse sampling *expands* from t, flipping the in-edge coins
//     of every newly reached vertex for the first time.
//
// Every branch is the exact conditional law of the new model given the
// old world, so after any update history the ensemble is distributed as
// a freshly built index on the current model — same estimator, same
// guarantees. Cost per update is proportional to the affected graphs
// (theta(v) of the edge's head, small on average by the power-law
// argument of Lemma 9), not to theta. bench/ablation_dynamic.cc
// quantifies repair vs. rebuild.
//
// Repairs consult an O(1)-updatable envelope mirror, and the owned
// influence CSR is folded once per ApplyUpdates batch (O(|E| + nnz) per
// batch, not per edge), so a batch costs O(|E|) plus work proportional
// to the affected graphs only.

#ifndef PITEX_SRC_INDEX_DYNAMIC_INDEX_H_
#define PITEX_SRC_INDEX_DYNAMIC_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "src/index/rr_graph.h"
#include "src/index/rr_index.h"
#include "src/index/sketch_arena.h"

namespace pitex {

/// One influence-model change: edge e's sparse topic vector is replaced
/// by `entries` (empty entries delete the edge's influence entirely).
struct EdgeInfluenceUpdate {
  EdgeId edge = 0;
  std::vector<EdgeTopicEntry> entries;
};

class DynamicRrIndex final : public InfluenceOracle {
 public:
  /// Copies `network` (the index owns the evolving model; the caller's
  /// network stays frozen at the construction-time state).
  DynamicRrIndex(const SocialNetwork& network, const RrIndexOptions& options);

  /// Samples the initial theta RR-Graphs. With equal options and seed the
  /// initial state is bit-identical to a freshly built RrIndex.
  void Build();

  /// Applies model updates in order: each replaces one edge's topic
  /// vector and repairs every affected RR-Graph (those containing the
  /// edge's head) by the coin-coupling rule above.
  void ApplyUpdates(std::span<const EdgeInfluenceUpdate> updates);

  /// Convenience single-edge form.
  void UpdateEdgeTopics(EdgeId edge, std::span<const EdgeTopicEntry> entries);

  /// Recovery hook (src/serve/recovery.h), called instead of -- and
  /// before any stand-in for -- Build() on a freshly constructed index:
  /// folds `replacements` (the current topic vector of every edge that
  /// has diverged from the base network) into the owned influence CSR
  /// and restores the repair-RNG version counter, reproducing the model
  /// state a checkpoint was taken at. The fold is the same
  /// ReplaceEdgeTopics splice ApplyUpdates ends a batch with, so only
  /// each edge's *final* entries matter -- not the update history.
  void RestoreModel(std::span<const EdgeInfluenceUpdate> replacements,
                    uint64_t version);

  /// Recovery hook, the stand-in for Build(): adopts the sketches of a
  /// loaded checkpoint index as this index's mutable state -- unpacks
  /// the pool into owning per-sketch graphs, rebuilds containment
  /// (ascending sketch id, exactly as Build() leaves it), and mirrors
  /// the envelope of the restored influence model. The checkpoint must
  /// have been saved against a model equal to the restored one;
  /// LoadRrIndex's fingerprint check proves exactly that.
  void AdoptSketches(const RrIndex& checkpoint);

  /// Edge updates applied over this index's lifetime; salts the repair
  /// RNG (StreamFor), so checkpoints persist it and recovery restores it
  /// before replay -- replayed repairs then re-draw the same coins.
  uint64_t version() const { return version_; }

  Estimate EstimateInfluence(VertexId u, const EdgeProbFn& probs) override;
  const char* Name() const override { return "DYN-INDEXEST"; }

  /// The current (post-update) network. Posterior probabilities for
  /// queries must be computed against this copy, not the construction
  /// argument.
  const SocialNetwork& network() const { return network_; }

  uint64_t theta() const { return theta_; }
  size_t num_graphs() const { return graphs_.size(); }
  const RRGraph& graph(size_t i) const { return graphs_[i]; }
  /// All current sketches, in sample order — the snapshot hook: the serve
  /// layer packs them into an immutable RrSketchPool (RrIndex::FromPool)
  /// to publish a frozen, concurrently readable replica of this index.
  std::span<const RRGraph> graphs() const { return graphs_; }
  const RrIndexOptions& options() const { return options_; }
  const std::vector<uint32_t>& Containing(VertexId u) const {
    return containing_[u];
  }

  /// Maintenance counters (ablation metrics).
  struct Stats {
    uint64_t update_batches = 0;
    uint64_t edges_updated = 0;
    /// Affected graphs examined (containing the updated edge's head).
    uint64_t graphs_examined = 0;
    /// Graphs whose structure actually changed (edge died, resurrected,
    /// or membership shifted).
    uint64_t graphs_changed = 0;
  };
  const Stats& stats() const { return stats_; }

  size_t SizeBytes() const;

 private:
  // Repairs graph `id` for edge `e` transitioning envelope p_old ->
  // p_new. Precondition: the graph contains head(e).
  void RepairGraph(uint32_t id, EdgeId e, double p_old, double p_new,
                   Rng* rng);

  SocialNetwork network_;
  RrIndexOptions options_;
  uint64_t theta_ = 0;
  uint64_t version_ = 0;  // bumped per update; salts the repair RNG
  // Unlike the read-only RrIndex (pooled CSR store), repairs rewrite
  // individual sketches in place, so each keeps its own storage; only
  // the estimate path shares the view-based zero-allocation machinery.
  std::vector<RRGraph> graphs_;
  std::vector<VertexId> roots_;  // root of graph i (stable across repairs)
  std::vector<std::vector<uint32_t>> containing_;
  // Envelope mirror: the same dense float table the static build reads
  // (EnvelopeProbability(max_z p(e|z)) of the *current* model, including
  // updates applied earlier in the running batch — the CSR is only
  // folded at batch end). Repairs and expansions read this, so repair
  // coins are drawn against exactly the envelope the sketches were (or
  // would have been) sampled with.
  EnvelopeTable envelope_;
  Stats stats_;
  // Per-instance reachability scratch (a DynamicRrIndex is single-owner
  // mutable state, never shared across threads).
  EstimateScratch scratch_;
  // Build/repair scratch: sketch generation and repaired-sketch assembly
  // run through the arena, so steady-state repairs reuse flat buffers
  // instead of per-repair hash sets and staging vectors.
  SketchArena arena_;
  std::vector<GlobalEdgeSample> repair_edges_;
  std::vector<VertexId> repair_stack_;
  std::vector<uint32_t> present_mark_;  // expansion membership stamps
  uint32_t present_epoch_ = 0;
  bool built_ = false;
};

}  // namespace pitex

#endif  // PITEX_SRC_INDEX_DYNAMIC_INDEX_H_
