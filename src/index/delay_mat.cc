#include "src/index/delay_mat.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "src/util/check.h"
#include "src/util/timer.h"

namespace pitex {

DelayMatIndex::DelayMatIndex(const SocialNetwork& network,
                             const RrIndexOptions& options)
    : network_(network),
      options_(options),
      counts_(network.num_vertices(), 0),
      query_rng_(options.seed ^ 0xd1b54a32d192ed03ULL) {
  RrIndex sizing(network, options);  // reuse theta policy
  theta_ = sizing.theta();
}

void DelayMatIndex::Build() {
  PITEX_CHECK_MSG(!built_, "Build() called twice");
  Timer timer;
  Rng rng(options_.seed);
  // Counting pass: sample theta RR-Graphs, remember only membership
  // counts. The traversal mirrors GenerateRRGraph but skips edge storage
  // and CSR assembly, which is what makes the build cheaper (Table 3).
  std::unordered_set<VertexId> visited;
  std::vector<VertexId> stack;
  for (uint64_t i = 0; i < theta_; ++i) {
    const auto root =
        static_cast<VertexId>(rng.NextBounded(network_.num_vertices()));
    visited.clear();
    visited.insert(root);
    stack.assign(1, root);
    ++counts_[root];
    while (!stack.empty()) {
      const VertexId v = stack.back();
      stack.pop_back();
      for (const auto& [w, e] : network_.graph.InEdges(v)) {
        const double p = network_.influence.MaxProb(e);
        if (p <= 0.0 || !rng.NextBernoulli(p)) continue;
        if (visited.insert(w).second) {
          ++counts_[w];
          stack.push_back(w);
        }
      }
    }
  }
  build_seconds_ = timer.Seconds();
  built_ = true;
}

DelayMatIndex::RecoveredGraph DelayMatIndex::RecoverRRGraph(VertexId u) {
  // Step 1: forward live sample G' = (V', E') from u under p(e).
  std::vector<VertexId> live_vertices{u};
  std::vector<GlobalEdgeSample> live_edges;
  std::unordered_set<VertexId> visited{u};
  std::vector<VertexId> stack{u};
  while (!stack.empty()) {
    const VertexId v = stack.back();
    stack.pop_back();
    for (const auto& [w, e] : network_.graph.OutEdges(v)) {
      const double p = network_.influence.MaxProb(e);
      if (p <= 0.0 || !query_rng_.NextBernoulli(p)) continue;
      // Step 3 (folded in): c(e) ~ U[0, p(e)) for live edges.
      live_edges.push_back(GlobalEdgeSample{
          v, w, e, static_cast<float>(query_rng_.NextDouble() * p)});
      if (visited.insert(w).second) {
        live_vertices.push_back(w);
        stack.push_back(w);
      }
    }
  }

  // Step 2: uniform root v' from V'; keep the vertices of V' that reach v'
  // inside the live edge set (reverse BFS over live edges).
  const VertexId root =
      live_vertices[query_rng_.NextBounded(live_vertices.size())];
  std::unordered_map<VertexId, std::vector<size_t>> in_edges_of;
  for (size_t i = 0; i < live_edges.size(); ++i) {
    in_edges_of[live_edges[i].head].push_back(i);
  }
  std::vector<VertexId> keep{root};
  std::unordered_set<VertexId> reaches{root};
  stack.assign(1, root);
  while (!stack.empty()) {
    const VertexId v = stack.back();
    stack.pop_back();
    auto it = in_edges_of.find(v);
    if (it == in_edges_of.end()) continue;
    for (size_t i : it->second) {
      const VertexId tail = live_edges[i].tail;
      if (reaches.insert(tail).second) {
        keep.push_back(tail);
        stack.push_back(tail);
      }
    }
  }
  // AssembleRRGraph drops live edges with an endpoint outside `keep`.
  const uint64_t live_reach = live_vertices.size();
  return RecoveredGraph{AssembleRRGraph(root, std::move(keep), live_edges),
                        live_reach};
}

const std::vector<DelayMatIndex::RecoveredGraph>& DelayMatIndex::RecoveredFor(
    VertexId u) {
  if (has_cached_user_ && cached_user_ == u) return cached_graphs_;
  cached_graphs_.clear();
  const uint32_t count = counts_[u];
  cached_graphs_.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    cached_graphs_.push_back(RecoverRRGraph(u));
  }
  has_cached_user_ = true;
  cached_user_ = u;
  return cached_graphs_;
}

Estimate DelayMatIndex::EstimateInfluence(VertexId u, const EdgeProbFn& probs) {
  PITEX_CHECK_MSG(built_, "index not built");
  Estimate result;
  // Importance-corrected estimator (see header): average of
  // |R_g(u)| * 1[u ~>_W root].
  double weighted_hits = 0.0;
  double sum_squares = 0.0;
  for (const RecoveredGraph& rec : RecoveredFor(u)) {
    ++result.samples;
    if (IsReachable(rec.graph, u, probs, &result.edges_visited, &scratch_)) {
      const auto weight = static_cast<double>(rec.live_reach);
      weighted_hits += weight;
      sum_squares += weight * weight;
    }
  }
  result.influence =
      result.samples == 0
          ? 1.0
          : weighted_hits / static_cast<double>(result.samples);
  result.influence = std::max(result.influence, 1.0);
  result.std_error =
      SampleMeanStdError(weighted_hits, sum_squares, result.samples);
  return result;
}

size_t DelayMatIndex::SizeBytes() const {
  return sizeof(DelayMatIndex) + counts_.capacity() * sizeof(uint32_t);
}

}  // namespace pitex
