// Persistence for the offline indexes (Sec. 6): RR-Graphs (IndexEst /
// IndexEst+) and delay-materialization counters (DelayMat).
//
// The paper's Table 3 charges index construction as a one-time offline
// cost; a production deployment amortizes it by building once and
// serving every process restart from disk. This module provides that:
//
//   SaveRrIndex(index, "dblp.rridx");
//   auto loaded = LoadRrIndex(network, "dblp.rridx", &error);
//
// File format (binary little-endian, src/util/serialize.h):
//
//   magic "PITEXIDX" | version u32 | kind u8 | network fingerprint u64
//   options (eps f64, delta f64, cap_k u64, seed u64) | payload | fnv64
//
// Version 2 (current) stores the RR-Graph payload as the pooled
// CSR-of-CSRs arrays of RrSketchPool — written and loaded in bulk.
// Version 1 stored one record per graph; v1 files are still readable
// (graphs are re-packed into a pool on load). The DelayMat payload is
// identical in both versions.
//
// The fingerprint binds an index file to the network it was sampled
// from: loading against a different graph (changed topology, edge count,
// or influence entries) is rejected, because RR-Graphs reference global
// EdgeIds and are meaningless — and silently wrong — on any other graph.
// A trailing FNV-1a checksum rejects truncated or corrupted files.
//
// IndexEst+ needs no file of its own: PrunedRrIndex derives its edge-cut
// filters lazily from a (possibly loaded) RrIndex.

#ifndef PITEX_SRC_INDEX_INDEX_IO_H_
#define PITEX_SRC_INDEX_INDEX_IO_H_

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>

#include "src/index/delay_mat.h"
#include "src/index/rr_index.h"

namespace pitex {

/// Deterministic fingerprint of the network's topology and influence
/// model; indexes are only loadable against the network they were built
/// from. Tag names are excluded (renaming a tag does not invalidate
/// sampled RR-Graphs).
uint64_t NetworkFingerprint(const SocialNetwork& network);

/// Writes a built RR-Graph index. Returns false (and sets `*error` when
/// non-null) on I/O failure or when the index is not built.
bool SaveRrIndex(const RrIndex& index, const std::string& path,
                 std::string* error = nullptr);
bool SaveRrIndex(const RrIndex& index, std::ostream& out,
                 std::string* error = nullptr);

/// Loads an RR-Graph index previously written by SaveRrIndex. `network`
/// must be the network the index was built from (checked via
/// fingerprint). Returns nullptr and sets `*error` on failure.
std::unique_ptr<RrIndex> LoadRrIndex(const SocialNetwork& network,
                                     const std::string& path,
                                     std::string* error = nullptr);
std::unique_ptr<RrIndex> LoadRrIndex(const SocialNetwork& network,
                                     std::istream& in,
                                     std::string* error = nullptr);

/// Writes a built DelayMat index (one counter per vertex).
bool SaveDelayMatIndex(const DelayMatIndex& index, const std::string& path,
                       std::string* error = nullptr);
bool SaveDelayMatIndex(const DelayMatIndex& index, std::ostream& out,
                       std::string* error = nullptr);

/// Loads a DelayMat index previously written by SaveDelayMatIndex.
std::unique_ptr<DelayMatIndex> LoadDelayMatIndex(
    const SocialNetwork& network, const std::string& path,
    std::string* error = nullptr);
std::unique_ptr<DelayMatIndex> LoadDelayMatIndex(
    const SocialNetwork& network, std::istream& in,
    std::string* error = nullptr);

}  // namespace pitex

#endif  // PITEX_SRC_INDEX_INDEX_IO_H_
