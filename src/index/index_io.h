// Persistence for the offline indexes (Sec. 6): RR-Graphs (IndexEst /
// IndexEst+) and delay-materialization counters (DelayMat).
//
// The paper's Table 3 charges index construction as a one-time offline
// cost; a production deployment amortizes it by building once and
// serving every process restart from disk. This module provides that:
//
//   SaveRrIndex(index, "dblp.rridx");
//   auto loaded = LoadRrIndex(network, "dblp.rridx", &error);
//
// File format (binary little-endian, src/util/serialize.h):
//
//   magic "PITEXIDX" | version u32 | kind u8 | network fingerprint u64
//   options (eps f64, delta f64, cap_k u64, seed u64) | payload | fnv64
//
// Version 2 (current) stores the RR-Graph payload as the pooled
// CSR-of-CSRs arrays of RrSketchPool — written and loaded in bulk.
// Version 1 stored one record per graph; v1 files are still readable
// (graphs are re-packed into a pool on load). The DelayMat payload is
// identical in both versions.
//
// The fingerprint binds an index file to the network it was sampled
// from: loading against a different graph (changed topology, edge count,
// or influence entries) is rejected, because RR-Graphs reference global
// EdgeIds and are meaningless — and silently wrong — on any other graph.
// A trailing FNV-1a checksum rejects truncated or corrupted files.
//
// IndexEst+ needs no file of its own: PrunedRrIndex derives its edge-cut
// filters lazily from a (possibly loaded) RrIndex.

#ifndef PITEX_SRC_INDEX_INDEX_IO_H_
#define PITEX_SRC_INDEX_INDEX_IO_H_

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>

#include "src/index/delay_mat.h"
#include "src/index/rr_index.h"

namespace pitex {

/// Deterministic fingerprint of the network's topology and influence
/// model; indexes are only loadable against the network they were built
/// from. Tag names are excluded (renaming a tag does not invalidate
/// sampled RR-Graphs).
uint64_t NetworkFingerprint(const SocialNetwork& network);

/// Failure taxonomy for index persistence. A free-form string tells a
/// human what went wrong; the code tells a *program* what to do about it
/// — retry (transient), rebuild (corrupt file), or fix the call site
/// (wrong network / unbuilt index). Every failure path sets exactly one
/// code; kNone means success.
enum class IndexIoCode : uint8_t {
  kNone = 0,
  /// The file could not be opened (missing path, permissions). Retryable
  /// in the sense that the environment, not the bytes, is at fault.
  kOpenFailed,
  /// Save called on an index whose Build() never ran — caller bug.
  kNotBuilt,
  /// The output stream failed mid-write (disk full, closed pipe).
  kWriteFailed,
  /// The magic string is absent: not a PITEX index file at all.
  kBadMagic,
  /// A PITEX file, but a format version this build cannot read.
  kBadVersion,
  /// A PITEX file of the other index kind (RR-Graphs vs DelayMat).
  kWrongKind,
  /// Built from a different network than the one supplied to Load.
  kFingerprintMismatch,
  /// Header options are implausible (non-finite eps/delta, absurd
  /// cap_k): the header itself is corrupt even if well-framed.
  kBadOptions,
  /// Structurally invalid payload (out-of-range ids, broken CSR).
  kCorruptPayload,
  /// The stream ended before the payload did.
  kTruncated,
  /// Framing parsed but the trailing FNV-1a digest does not match.
  kChecksumMismatch,
  /// The file is a valid prefix cut short at EOF: an interrupted writer
  /// (crash mid-save) left a torn file. Distinct from kTruncated /
  /// kChecksumMismatch so operators know to fall back to an older file
  /// rather than suspect bit rot. Save paths in this module are
  /// crash-atomic (temp file + fsync + rename), so a torn file at a
  /// final path means some *other* writer skipped the protocol.
  kTornWrite,
  /// A fail point ("index_io/load" / "index_io/save") fired — chaos
  /// testing only; treat as transient and retryable.
  kFaultInjected,
};

/// Stable identifier string for logs/metrics (e.g. "checksum-mismatch").
const char* IndexIoCodeName(IndexIoCode code);

/// Typed error report for the Save*/Load* overloads below.
struct IndexIoError {
  IndexIoCode code = IndexIoCode::kNone;
  std::string message;

  bool ok() const { return code == IndexIoCode::kNone; }
  /// True for failures where retrying the same call can succeed
  /// (environmental or injected); false when the bytes themselves are
  /// wrong and every retry must fail identically.
  bool retryable() const {
    return code == IndexIoCode::kOpenFailed ||
           code == IndexIoCode::kWriteFailed ||
           code == IndexIoCode::kFaultInjected;
  }
};

/// Writes a built RR-Graph index. Returns false (and sets `*error` when
/// non-null) on I/O failure or when the index is not built. The
/// std::string overloads report just the message; the IndexIoError
/// overloads add the typed code. The path overloads are crash-atomic:
/// the payload goes to `path + ".tmp"`, is fsynced, and is renamed over
/// `path` (src/util/file_sync.h) -- a crash mid-save leaves the old
/// file intact and never a torn file at the final path.
bool SaveRrIndex(const RrIndex& index, const std::string& path,
                 std::string* error = nullptr);
bool SaveRrIndex(const RrIndex& index, std::ostream& out,
                 std::string* error = nullptr);
bool SaveRrIndex(const RrIndex& index, const std::string& path,
                 IndexIoError* error);
bool SaveRrIndex(const RrIndex& index, std::ostream& out,
                 IndexIoError* error);

/// Loads an RR-Graph index previously written by SaveRrIndex. `network`
/// must be the network the index was built from (checked via
/// fingerprint). Returns nullptr and sets `*error` on failure.
std::unique_ptr<RrIndex> LoadRrIndex(const SocialNetwork& network,
                                     const std::string& path,
                                     std::string* error = nullptr);
std::unique_ptr<RrIndex> LoadRrIndex(const SocialNetwork& network,
                                     std::istream& in,
                                     std::string* error = nullptr);
std::unique_ptr<RrIndex> LoadRrIndex(const SocialNetwork& network,
                                     const std::string& path,
                                     IndexIoError* error);
std::unique_ptr<RrIndex> LoadRrIndex(const SocialNetwork& network,
                                     std::istream& in, IndexIoError* error);

/// Writes a built DelayMat index (one counter per vertex).
bool SaveDelayMatIndex(const DelayMatIndex& index, const std::string& path,
                       std::string* error = nullptr);
bool SaveDelayMatIndex(const DelayMatIndex& index, std::ostream& out,
                       std::string* error = nullptr);
bool SaveDelayMatIndex(const DelayMatIndex& index, const std::string& path,
                       IndexIoError* error);
bool SaveDelayMatIndex(const DelayMatIndex& index, std::ostream& out,
                       IndexIoError* error);

/// Loads a DelayMat index previously written by SaveDelayMatIndex.
std::unique_ptr<DelayMatIndex> LoadDelayMatIndex(
    const SocialNetwork& network, const std::string& path,
    std::string* error = nullptr);
std::unique_ptr<DelayMatIndex> LoadDelayMatIndex(
    const SocialNetwork& network, std::istream& in,
    std::string* error = nullptr);
std::unique_ptr<DelayMatIndex> LoadDelayMatIndex(
    const SocialNetwork& network, const std::string& path,
    IndexIoError* error);
std::unique_ptr<DelayMatIndex> LoadDelayMatIndex(
    const SocialNetwork& network, std::istream& in, IndexIoError* error);

}  // namespace pitex

#endif  // PITEX_SRC_INDEX_INDEX_IO_H_
