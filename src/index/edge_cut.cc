#include "src/index/edge_cut.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"

namespace pitex {

PrunedRrIndex::PrunedRrIndex(const RrIndex* base,
                             const InfluenceGraph* influence,
                             CutPolicy policy)
    : base_(base), influence_(influence), policy_(policy) {
  scratch_.Reserve(base->pool().max_sketch_vertices());
}

const PrunedRrIndex::UserFilter& PrunedRrIndex::FilterFor(VertexId u) {
  auto it = cache_.find(u);
  if (it != cache_.end()) return it->second;

  UserFilter filter;
  filter.num_graphs = base_->CountContaining(u);
  // edge -> list index, local to this filter.
  std::unordered_map<EdgeId, size_t> list_of;

  for (uint32_t id : base_->Containing(u)) {
    const RRView rr = base_->graph(id);
    if (rr.root == u) {
      filter.trivial.push_back(id);
      continue;
    }
    const auto u_local = rr.LocalIndex(u);
    const auto root_local = rr.LocalIndex(rr.root);
    PITEX_DCHECK(u_local && root_local);

    // Candidate cut 1: u's out-edges inside the RR-Graph.
    // Candidate cut 2: the root's in-edges inside the RR-Graph.
    // Pruning probability of a cut = prod_e Pr[p(e|W) < c(e)] under the
    // uniform heuristic = prod_e c(e)/p(e); pick the larger (Example 7).
    std::vector<std::pair<EdgeId, float>> cut1;
    double log_prune1 = 0.0;
    for (uint32_t i = rr.offsets[*u_local]; i < rr.offsets[*u_local + 1];
         ++i) {
      const auto& e = rr.edges[i];
      cut1.emplace_back(e.edge, e.threshold);
      const double p = influence_->MaxProb(e.edge);
      log_prune1 += std::log(std::max(1e-12, e.threshold / p));
    }
    std::vector<std::pair<EdgeId, float>> cut2;
    double log_prune2 = 0.0;
    for (uint32_t tail = 0; tail < rr.vertices.size(); ++tail) {
      for (uint32_t i = rr.offsets[tail]; i < rr.offsets[tail + 1]; ++i) {
        const auto& e = rr.edges[i];
        if (e.head_local != *root_local) continue;
        cut2.emplace_back(e.edge, e.threshold);
        const double p = influence_->MaxProb(e.edge);
        log_prune2 += std::log(std::max(1e-12, e.threshold / p));
      }
    }
    // An empty cut means the side is disconnected: always prunable (both
    // candidate cuts are sound filters, so a forced policy stays correct).
    const auto& cut = [&]() -> const std::vector<std::pair<EdgeId, float>>& {
      if (cut1.empty() || cut2.empty()) return cut1.empty() ? cut1 : cut2;
      switch (policy_) {
        case CutPolicy::kOutEdges: return cut1;
        case CutPolicy::kRootInEdges: return cut2;
        case CutPolicy::kBestOfTwo: break;
      }
      return log_prune1 >= log_prune2 ? cut1 : cut2;
    }();
    for (const auto& [edge, threshold] : cut) {
      auto [entry, inserted] = list_of.try_emplace(edge, filter.lists.size());
      if (inserted) {
        filter.cut_edges.push_back(edge);
        filter.lists.emplace_back();
      }
      filter.lists[entry->second].push_back(InvertedEntry{threshold, id});
    }
  }
  for (auto& list : filter.lists) {
    std::sort(list.begin(), list.end(),
              [](const InvertedEntry& a, const InvertedEntry& b) {
                return a.threshold < b.threshold;
              });
  }
  return cache_.emplace(u, std::move(filter)).first->second;
}

Estimate PrunedRrIndex::EstimateInfluence(VertexId u, const EdgeProbFn& probs) {
  const UserFilter& filter = FilterFor(u);
  Estimate result;
  result.samples = filter.num_graphs;

  uint64_t hits = filter.trivial.size();
  // Filter step: scan each cut edge's inverted list while c(e) <= p(e|W).
  std::vector<uint32_t>& candidates = candidates_;
  candidates.clear();
  for (size_t i = 0; i < filter.cut_edges.size(); ++i) {
    const double p = probs.Prob(filter.cut_edges[i]);
    if (p <= 0.0) continue;
    for (const auto& entry : filter.lists[i]) {
      if (static_cast<double>(entry.threshold) > p) break;
      candidates.push_back(entry.graph_id);
    }
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());

  // Verification step.
  for (uint32_t id : candidates) {
    if (IsReachable(base_->graph(id), u, probs, &result.edges_visited,
                    &scratch_)) {
      ++hits;
    }
  }
  last_stats_.candidates = candidates.size();
  last_stats_.pruned =
      filter.num_graphs - filter.trivial.size() - candidates.size();

  result.influence = static_cast<double>(hits) /
                     static_cast<double>(base_->theta()) *
                     static_cast<double>(base_->num_vertices());
  result.influence = std::max(result.influence, 1.0);
  return result;
}

}  // namespace pitex
