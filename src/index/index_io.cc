#include "src/index/index_io.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <utility>
#include <vector>

#include "src/util/failpoint.h"
#include "src/util/file_sync.h"
#include "src/util/serialize.h"

namespace pitex {

namespace {

constexpr char kMagic[] = "PITEXIDX";
// v1 stored RR-Graphs one record per graph; v2 stores the pooled
// CSR-of-CSRs arrays (RrSketchPool) in bulk. v1 files remain readable:
// their graphs are re-packed into a pool on load. The DelayMat payload is
// identical in both versions.
constexpr uint32_t kVersionV1 = 1;
constexpr uint32_t kVersionCurrent = 2;
constexpr uint8_t kKindRrGraphs = 1;
constexpr uint8_t kKindDelayMat = 2;

void SetError(IndexIoError* error, IndexIoCode code, const char* message) {
  if (error != nullptr) {
    error->code = code;
    error->message = message;
  }
}

// Plausibility bound for cap_k: the search never selects more tags than
// this, and a header claiming more is corruption, not configuration.
constexpr uint64_t kMaxPlausibleCapK = 1u << 20;

// a * b, saturating at UINT64_MAX (bounds for ReadVector guards built
// from untrusted counts).
uint64_t SaturatingMul(uint64_t a, uint64_t b) {
  if (b != 0 && a > UINT64_MAX / b) return UINT64_MAX;
  return a * b;
}

// Writes the shared header (magic, version, kind, fingerprint, options).
void WriteHeader(BinaryWriter* writer, uint8_t kind, uint64_t fingerprint,
                 const RrIndexOptions& options) {
  writer->WriteString(kMagic);
  writer->WriteU32(kVersionCurrent);
  writer->WriteU8(kind);
  writer->WriteU64(fingerprint);
  writer->WriteF64(options.eps);
  writer->WriteF64(options.delta);
  writer->WriteU64(static_cast<uint64_t>(options.cap_k));
  writer->WriteU64(options.seed);
}

// Reads and validates the shared header; fills `options` fields that are
// persisted and reports the file's format version through `*version`.
// Returns false with `*error` set on any mismatch.
bool ReadHeader(BinaryReader* reader, uint8_t expected_kind,
                uint64_t expected_fingerprint, RrIndexOptions* options,
                uint32_t* version, IndexIoError* error) {
  std::string magic;
  uint8_t kind = 0;
  uint64_t fingerprint = 0;
  if (!reader->ReadString(&magic) || magic != kMagic) {
    SetError(error, IndexIoCode::kBadMagic, "not a PITEX index file");
    return false;
  }
  if (!reader->ReadU32(version) ||
      (*version != kVersionV1 && *version != kVersionCurrent)) {
    SetError(error, IndexIoCode::kBadVersion,
             "unsupported index file version");
    return false;
  }
  if (!reader->ReadU8(&kind) || kind != expected_kind) {
    SetError(error, IndexIoCode::kWrongKind,
             "index file holds a different index kind");
    return false;
  }
  if (!reader->ReadU64(&fingerprint) || fingerprint != expected_fingerprint) {
    SetError(error, IndexIoCode::kFingerprintMismatch,
             "index was built from a different network");
    return false;
  }
  uint64_t cap_k = 0;
  if (!reader->ReadF64(&options->eps) || !reader->ReadF64(&options->delta) ||
      !reader->ReadU64(&cap_k) || !reader->ReadU64(&options->seed)) {
    SetError(error, IndexIoCode::kTruncated, "truncated index header");
    return false;
  }
  // The options steer sample-size formulas downstream; a NaN eps or an
  // absurd cap_k used to flow through silently and only misbehave at
  // query time. Reject implausible values as header corruption here.
  if (!std::isfinite(options->eps) || options->eps <= 0.0 ||
      !std::isfinite(options->delta) || options->delta <= 0.0) {
    SetError(error, IndexIoCode::kBadOptions,
             "implausible accuracy options: corrupt header");
    return false;
  }
  if (cap_k == 0 || cap_k > kMaxPlausibleCapK) {
    SetError(error, IndexIoCode::kBadOptions,
             "implausible cap_k: corrupt header");
    return false;
  }
  options->cap_k = static_cast<int64_t>(cap_k);
  return true;
}

}  // namespace

uint64_t NetworkFingerprint(const SocialNetwork& network) {
  Fnv1a hash;
  auto fold_u64 = [&hash](uint64_t v) { hash.Update(&v, sizeof(v)); };
  fold_u64(network.num_vertices());
  fold_u64(network.num_edges());
  for (EdgeId e = 0; e < network.num_edges(); ++e) {
    fold_u64(network.graph.Tail(e));
    fold_u64(network.graph.Head(e));
    for (const auto& [z, p] : network.influence.EdgeTopics(e)) {
      fold_u64(z);
      hash.Update(&p, sizeof(p));
    }
  }
  fold_u64(network.topics.num_topics());
  fold_u64(network.topics.num_tags());
  for (TopicId z = 0; z < network.topics.num_topics(); ++z) {
    const double prior = network.topics.prior()[z];
    hash.Update(&prior, sizeof(prior));
    for (TagId w = 0; w < network.topics.num_tags(); ++w) {
      const double p = network.topics.TagTopic(w, z);
      if (p > 0.0) {
        fold_u64(w);
        hash.Update(&p, sizeof(p));
      }
    }
  }
  return hash.digest();
}

// Befriended by RrIndex and DelayMatIndex: reads/writes their private
// payloads.
class IndexIo {
 public:
  static bool WriteRr(const RrIndex& index, std::ostream& out,
                      IndexIoError* error) {
    if (PITEX_FAILPOINT("index_io/save")) {
      SetError(error, IndexIoCode::kFaultInjected,
               "fault injected: index_io/save");
      return false;
    }
    if (!index.built_) {
      SetError(error, IndexIoCode::kNotBuilt,
               "index not built; call Build() before saving");
      return false;
    }
    const RrSketchPool& pool = index.pool_;
    BinaryWriter writer(&out);
    WriteHeader(&writer, kKindRrGraphs,
                NetworkFingerprint(index.network_), index.options_);
    writer.WriteU64(index.theta_);
    writer.WriteU64(pool.num_sketches());
    // v2 payload: the pooled arrays verbatim (the containing index is
    // rebuilt on load — it is a permutation of the vertex array). Edges
    // are written field-wise so the encoding stays layout-independent.
    writer.WriteVector<VertexId>(pool.roots_);
    writer.WriteVector<uint64_t>(pool.vertex_starts_);
    writer.WriteVector<VertexId>(pool.vertices_);
    writer.WriteVector<uint32_t>(pool.offsets_);
    writer.WriteVector<uint64_t>(pool.edge_starts_);
    writer.WriteU64(pool.edges_.size());
    for (const RRLocalEdge& edge : pool.edges_) {
      writer.WriteU32(edge.head_local);
      writer.WriteU32(edge.edge);
      writer.WriteF32(edge.threshold);
    }
    writer.WriteF64(index.build_seconds_);
    writer.WriteChecksum();
    if (!writer.ok()) {
      SetError(error, IndexIoCode::kWriteFailed,
               "I/O failure while writing index");
      return false;
    }
    return true;
  }

  // v1 payload: one record per graph. Read into staging RRGraphs, then
  // packed into the pool by the caller.
  static bool ReadRrGraphsV1(BinaryReader* reader, uint64_t num_graphs,
                             uint64_t max_vertices, uint64_t max_edges,
                             std::vector<RRGraph>* staging,
                             IndexIoError* error) {
    // num_graphs is bounded only by the file's own theta, so grow the
    // staging area as records actually parse instead of resizing up
    // front -- a fabricated count then costs only the bytes present in
    // the stream before the first corrupt record is rejected.
    staging->clear();
    for (uint64_t g = 0; g < num_graphs; ++g) {
      RRGraph& rr = staging->emplace_back();
      uint32_t root = 0;
      if (!reader->ReadU32(&root) || root >= max_vertices) {
        SetError(error, IndexIoCode::kCorruptPayload, "corrupt RR-Graph root");
        return false;
      }
      rr.root = root;
      if (!reader->ReadVector(&rr.vertices, max_vertices) ||
          !reader->ReadVector(&rr.offsets, max_vertices + 1)) {
        SetError(error, IndexIoCode::kCorruptPayload, "corrupt RR-Graph vertex data");
        return false;
      }
      uint64_t num_local_edges = 0;
      if (!reader->ReadU64(&num_local_edges) || num_local_edges > max_edges) {
        SetError(error, IndexIoCode::kCorruptPayload, "corrupt RR-Graph edge count");
        return false;
      }
      rr.edges.resize(num_local_edges);
      for (RRLocalEdge& edge : rr.edges) {
        if (!reader->ReadU32(&edge.head_local) ||
            !reader->ReadU32(&edge.edge) ||
            !reader->ReadF32(&edge.threshold) ||
            edge.head_local >= rr.vertices.size() || edge.edge >= max_edges) {
          SetError(error, IndexIoCode::kCorruptPayload, "corrupt RR-Graph edge data");
          return false;
        }
      }
      if (rr.offsets.size() != rr.vertices.size() + 1 ||
          (rr.offsets.empty() ? 0 : rr.offsets.back()) != rr.edges.size()) {
        SetError(error, IndexIoCode::kCorruptPayload, "inconsistent RR-Graph CSR layout");
        return false;
      }
      // Same structural guarantees the v2 loader enforces — the pooled
      // consumers (BuildContaining, LocalIndex, IsReachable) rely on
      // in-range sorted vertices, a member root and monotone offsets.
      for (size_t j = 0; j < rr.vertices.size(); ++j) {
        if (rr.vertices[j] >= max_vertices ||
            (j > 0 && rr.vertices[j] <= rr.vertices[j - 1])) {
          SetError(error, IndexIoCode::kCorruptPayload, "corrupt RR-Graph vertex array");
          return false;
        }
      }
      if (!std::binary_search(rr.vertices.begin(), rr.vertices.end(),
                              rr.root)) {
        SetError(error, IndexIoCode::kCorruptPayload, "RR-Graph root not a member");
        return false;
      }
      for (size_t j = 0; j + 1 < rr.offsets.size(); ++j) {
        if (rr.offsets[j] > rr.offsets[j + 1]) {
          SetError(error, IndexIoCode::kCorruptPayload, "non-monotone RR-Graph CSR offsets");
          return false;
        }
      }
    }
    return true;
  }

  // v2 payload: the pooled arrays, validated wholesale (per-sketch CSR
  // consistency, sorted vertex arrays, in-range edge ids).
  static bool ReadRrPoolV2(BinaryReader* reader, uint64_t num_sketches,
                           uint64_t max_vertices, uint64_t max_edges,
                           RrSketchPool* pool, IndexIoError* error) {
    const uint64_t max_total_vertices =
        SaturatingMul(num_sketches, max_vertices);
    if (!reader->ReadVector(&pool->roots_, num_sketches) ||
        pool->roots_.size() != num_sketches ||
        !reader->ReadVector(&pool->vertex_starts_, num_sketches + 1) ||
        pool->vertex_starts_.size() != num_sketches + 1 ||
        !reader->ReadVector(&pool->vertices_, max_total_vertices) ||
        !reader->ReadVector(&pool->offsets_,
                            SaturatingMul(num_sketches, max_vertices + 1)) ||
        !reader->ReadVector(&pool->edge_starts_, num_sketches + 1) ||
        pool->edge_starts_.size() != num_sketches + 1) {
      SetError(error, IndexIoCode::kCorruptPayload, "corrupt pooled sketch arrays");
      return false;
    }
    uint64_t num_edges = 0;
    if (!reader->ReadU64(&num_edges) ||
        num_edges > SaturatingMul(num_sketches, max_edges)) {
      SetError(error, IndexIoCode::kCorruptPayload, "corrupt pooled edge count");
      return false;
    }
    // The num_edges guard saturates (num_sketches * max_edges can hit
    // UINT64_MAX), so never allocate it up front: append edges as they
    // parse and let a truncated or fabricated stream fail on its first
    // missing field.
    pool->edges_.clear();
    for (uint64_t j = 0; j < num_edges; ++j) {
      RRLocalEdge edge;
      if (!reader->ReadU32(&edge.head_local) || !reader->ReadU32(&edge.edge) ||
          !reader->ReadF32(&edge.threshold) || edge.edge >= max_edges) {
        SetError(error, IndexIoCode::kCorruptPayload, "corrupt pooled edge data");
        return false;
      }
      pool->edges_.push_back(edge);
    }

    // Structural validation of the CSR-of-CSRs.
    if (pool->vertex_starts_.front() != 0 ||
        pool->vertex_starts_.back() != pool->vertices_.size() ||
        pool->edge_starts_.front() != 0 ||
        pool->edge_starts_.back() != pool->edges_.size() ||
        pool->offsets_.size() != pool->vertices_.size() + num_sketches) {
      SetError(error, IndexIoCode::kCorruptPayload, "inconsistent pooled sketch layout");
      return false;
    }
    for (uint64_t i = 0; i < num_sketches; ++i) {
      const uint64_t vb = pool->vertex_starts_[i];
      const uint64_t ve = pool->vertex_starts_[i + 1];
      const uint64_t eb = pool->edge_starts_[i];
      const uint64_t ee = pool->edge_starts_[i + 1];
      if (ve < vb || ve > pool->vertices_.size() || ee < eb ||
          ee > pool->edges_.size()) {
        SetError(error, IndexIoCode::kCorruptPayload, "inconsistent pooled sketch bounds");
        return false;
      }
      const uint64_t n = ve - vb;
      const uint64_t m = ee - eb;
      if (n == 0 || n > max_vertices) {
        SetError(error, IndexIoCode::kCorruptPayload, "corrupt sketch vertex count");
        return false;
      }
      // Vertices sorted strictly ascending and in range (LocalIndex
      // binary-searches them); root must be a member.
      for (uint64_t j = vb; j < ve; ++j) {
        if (pool->vertices_[j] >= max_vertices ||
            (j > vb && pool->vertices_[j] <= pool->vertices_[j - 1])) {
          SetError(error, IndexIoCode::kCorruptPayload, "corrupt sketch vertex array");
          return false;
        }
      }
      if (!std::binary_search(pool->vertices_.begin() + vb,
                              pool->vertices_.begin() + ve,
                              pool->roots_[i])) {
        SetError(error, IndexIoCode::kCorruptPayload, "sketch root not a sketch member");
        return false;
      }
      // Local CSR: starts at 0, non-decreasing, ends at the edge count;
      // edge heads stay inside the sketch.
      const uint64_t ob = vb + i;
      if (pool->offsets_[ob] != 0 || pool->offsets_[ob + n] != m) {
        SetError(error, IndexIoCode::kCorruptPayload, "inconsistent sketch CSR offsets");
        return false;
      }
      for (uint64_t j = 0; j < n; ++j) {
        if (pool->offsets_[ob + j] > pool->offsets_[ob + j + 1]) {
          SetError(error, IndexIoCode::kCorruptPayload, "non-monotone sketch CSR offsets");
          return false;
        }
      }
      for (uint64_t j = eb; j < ee; ++j) {
        if (pool->edges_[j].head_local >= n) {
          SetError(error, IndexIoCode::kCorruptPayload, "sketch edge head out of range");
          return false;
        }
      }
    }
    return true;
  }

  // A read failure at EOF means the file is a valid prefix cut short --
  // a torn write left by an interrupted writer, not bit rot. Upgrade
  // the code so callers can react (fall back to an older checkpoint)
  // without parsing the message. Validation failures with bytes still
  // present (reader.ok() or no EOF) keep their specific code.
  static void UpgradeTornWrite(const BinaryReader& reader,
                               IndexIoError* error) {
    if (error == nullptr || reader.ok() || !reader.at_end_of_stream()) return;
    if (error->code == IndexIoCode::kTruncated ||
        error->code == IndexIoCode::kChecksumMismatch ||
        error->code == IndexIoCode::kCorruptPayload) {
      error->code = IndexIoCode::kTornWrite;
      error->message =
          "file ends mid-payload: torn write (interrupted writer)";
    }
  }

  static std::unique_ptr<RrIndex> ReadRr(const SocialNetwork& network,
                                         std::istream& in,
                                         IndexIoError* error) {
    if (PITEX_FAILPOINT("index_io/load")) {
      SetError(error, IndexIoCode::kFaultInjected,
               "fault injected: index_io/load");
      return nullptr;
    }
    BinaryReader reader(&in);
    auto index = ReadRrBody(network, &reader, error);
    if (index == nullptr) UpgradeTornWrite(reader, error);
    return index;
  }

  static std::unique_ptr<RrIndex> ReadRrBody(const SocialNetwork& network,
                                             BinaryReader* reader_ptr,
                                             IndexIoError* error) {
    BinaryReader& reader = *reader_ptr;
    RrIndexOptions options;
    uint32_t version = 0;
    if (!ReadHeader(&reader, kKindRrGraphs, NetworkFingerprint(network),
                    &options, &version, error)) {
      return nullptr;
    }
    uint64_t theta = 0, num_graphs = 0;
    if (!reader.ReadU64(&theta) || !reader.ReadU64(&num_graphs) ||
        num_graphs > theta) {
      SetError(error, IndexIoCode::kCorruptPayload, "corrupt index payload header");
      return nullptr;
    }
    options.theta_override = theta;
    auto index = std::unique_ptr<RrIndex>(new RrIndex(network, options));
    const uint64_t max_vertices = network.num_vertices();
    const uint64_t max_edges = network.num_edges();

    std::vector<RRGraph> staging;  // v1 only
    if (version == kVersionV1) {
      if (!ReadRrGraphsV1(&reader, num_graphs, max_vertices, max_edges,
                          &staging, error)) {
        return nullptr;
      }
    } else {
      if (!ReadRrPoolV2(&reader, num_graphs, max_vertices, max_edges,
                        &index->pool_, error)) {
        return nullptr;
      }
    }
    if (!reader.ReadF64(&index->build_seconds_)) {
      SetError(error, IndexIoCode::kTruncated, "truncated index trailer");
      return nullptr;
    }
    if (!reader.VerifyChecksum()) {
      SetError(error,
               IndexIoCode::kChecksumMismatch,
               "checksum mismatch: file truncated or corrupted");
      return nullptr;
    }
    if (version == kVersionV1) {
      index->pool_ = RrSketchPool::Pack(staging, network.num_vertices());
    } else {
      // The containing index is a permutation of the vertex array:
      // cheaper to recompute than to store.
      index->pool_.BuildContaining(network.num_vertices());
    }
    index->built_ = true;
    return index;
  }

  static bool WriteDelay(const DelayMatIndex& index, std::ostream& out,
                         IndexIoError* error) {
    if (PITEX_FAILPOINT("index_io/save")) {
      SetError(error, IndexIoCode::kFaultInjected,
               "fault injected: index_io/save");
      return false;
    }
    if (!index.built_) {
      SetError(error, IndexIoCode::kNotBuilt,
               "index not built; call Build() before saving");
      return false;
    }
    BinaryWriter writer(&out);
    WriteHeader(&writer, kKindDelayMat,
                NetworkFingerprint(index.network_), index.options_);
    writer.WriteU64(index.theta_);
    writer.WriteVector<uint32_t>(index.counts_);
    writer.WriteF64(index.build_seconds_);
    writer.WriteChecksum();
    if (!writer.ok()) {
      SetError(error, IndexIoCode::kWriteFailed,
               "I/O failure while writing index");
      return false;
    }
    return true;
  }

  static std::unique_ptr<DelayMatIndex> ReadDelay(
      const SocialNetwork& network, std::istream& in, IndexIoError* error) {
    if (PITEX_FAILPOINT("index_io/load")) {
      SetError(error, IndexIoCode::kFaultInjected,
               "fault injected: index_io/load");
      return nullptr;
    }
    BinaryReader reader(&in);
    auto index = ReadDelayBody(network, &reader, error);
    if (index == nullptr) UpgradeTornWrite(reader, error);
    return index;
  }

  static std::unique_ptr<DelayMatIndex> ReadDelayBody(
      const SocialNetwork& network, BinaryReader* reader_ptr,
      IndexIoError* error) {
    BinaryReader& reader = *reader_ptr;
    RrIndexOptions options;
    uint32_t version = 0;  // DelayMat payload is identical in v1 and v2
    if (!ReadHeader(&reader, kKindDelayMat, NetworkFingerprint(network),
                    &options, &version, error)) {
      return nullptr;
    }
    uint64_t theta = 0;
    if (!reader.ReadU64(&theta)) {
      SetError(error, IndexIoCode::kCorruptPayload, "corrupt index payload header");
      return nullptr;
    }
    options.theta_override = theta;
    auto index =
        std::unique_ptr<DelayMatIndex>(new DelayMatIndex(network, options));
    if (!reader.ReadVector(&index->counts_, network.num_vertices()) ||
        index->counts_.size() != network.num_vertices()) {
      SetError(error, IndexIoCode::kCorruptPayload, "corrupt counter payload");
      return nullptr;
    }
    for (uint32_t count : index->counts_) {
      if (count > theta) {
        SetError(error, IndexIoCode::kCorruptPayload, "counter exceeds theta: corrupt payload");
        return nullptr;
      }
    }
    if (!reader.ReadF64(&index->build_seconds_)) {
      SetError(error, IndexIoCode::kTruncated, "truncated index trailer");
      return nullptr;
    }
    if (!reader.VerifyChecksum()) {
      SetError(error,
               IndexIoCode::kChecksumMismatch,
               "checksum mismatch: file truncated or corrupted");
      return nullptr;
    }
    index->built_ = true;
    return index;
  }
};

const char* IndexIoCodeName(IndexIoCode code) {
  switch (code) {
    case IndexIoCode::kNone: return "ok";
    case IndexIoCode::kOpenFailed: return "open-failed";
    case IndexIoCode::kNotBuilt: return "not-built";
    case IndexIoCode::kWriteFailed: return "write-failed";
    case IndexIoCode::kBadMagic: return "bad-magic";
    case IndexIoCode::kBadVersion: return "bad-version";
    case IndexIoCode::kWrongKind: return "wrong-kind";
    case IndexIoCode::kFingerprintMismatch: return "fingerprint-mismatch";
    case IndexIoCode::kBadOptions: return "bad-options";
    case IndexIoCode::kCorruptPayload: return "corrupt-payload";
    case IndexIoCode::kTruncated: return "truncated";
    case IndexIoCode::kChecksumMismatch: return "checksum-mismatch";
    case IndexIoCode::kTornWrite: return "torn-write";
    case IndexIoCode::kFaultInjected: return "fault-injected";
  }
  return "?";
}

namespace {

// The std::string overloads keep their historical contract (message
// only) by delegating to the typed implementations and copying the
// message out.
void CopyMessage(const IndexIoError& typed, std::string* error) {
  if (error != nullptr) *error = typed.message;
}

// Crash-atomic path save: stream the payload into `path + ".tmp"`,
// fsync, rename over `path`, fsync the directory (src/util/file_sync.h).
// A crash at any point leaves the previous file intact; a failure
// removes the temp file so no orphan survives. `write` streams the
// payload and sets `*error` itself when it fails.
template <typename WriteFn>
bool SaveAtomically(const std::string& path, IndexIoError* error,
                    WriteFn&& write) {
  const std::string tmp = TempPathFor(path);
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      SetError(error, IndexIoCode::kOpenFailed,
               "cannot open temp file for writing");
      return false;
    }
    if (!write(out)) {
      out.close();
      std::remove(tmp.c_str());
      return false;
    }
    out.close();
    if (!out) {
      std::remove(tmp.c_str());
      SetError(error, IndexIoCode::kWriteFailed,
               "I/O failure while flushing index");
      return false;
    }
  }
  if (!AtomicReplaceFile(tmp, path)) {
    SetError(error, IndexIoCode::kWriteFailed,
             "failed to fsync+rename index into place");
    return false;
  }
  return true;
}

}  // namespace

// --- typed overloads (primary implementations) ---

bool SaveRrIndex(const RrIndex& index, std::ostream& out,
                 IndexIoError* error) {
  return IndexIo::WriteRr(index, out, error);
}

bool SaveRrIndex(const RrIndex& index, const std::string& path,
                 IndexIoError* error) {
  return SaveAtomically(path, error, [&](std::ostream& out) {
    return IndexIo::WriteRr(index, out, error);
  });
}

std::unique_ptr<RrIndex> LoadRrIndex(const SocialNetwork& network,
                                     std::istream& in, IndexIoError* error) {
  return IndexIo::ReadRr(network, in, error);
}

std::unique_ptr<RrIndex> LoadRrIndex(const SocialNetwork& network,
                                     const std::string& path,
                                     IndexIoError* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    SetError(error, IndexIoCode::kOpenFailed, "cannot open file for reading");
    return nullptr;
  }
  return IndexIo::ReadRr(network, in, error);
}

bool SaveDelayMatIndex(const DelayMatIndex& index, std::ostream& out,
                       IndexIoError* error) {
  return IndexIo::WriteDelay(index, out, error);
}

bool SaveDelayMatIndex(const DelayMatIndex& index, const std::string& path,
                       IndexIoError* error) {
  return SaveAtomically(path, error, [&](std::ostream& out) {
    return IndexIo::WriteDelay(index, out, error);
  });
}

std::unique_ptr<DelayMatIndex> LoadDelayMatIndex(const SocialNetwork& network,
                                                 std::istream& in,
                                                 IndexIoError* error) {
  return IndexIo::ReadDelay(network, in, error);
}

std::unique_ptr<DelayMatIndex> LoadDelayMatIndex(const SocialNetwork& network,
                                                 const std::string& path,
                                                 IndexIoError* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    SetError(error, IndexIoCode::kOpenFailed, "cannot open file for reading");
    return nullptr;
  }
  return IndexIo::ReadDelay(network, in, error);
}

// --- string-message compatibility overloads ---

bool SaveRrIndex(const RrIndex& index, std::ostream& out, std::string* error) {
  IndexIoError typed;
  const bool ok = SaveRrIndex(index, out, &typed);
  if (!ok) CopyMessage(typed, error);
  return ok;
}

bool SaveRrIndex(const RrIndex& index, const std::string& path,
                 std::string* error) {
  IndexIoError typed;
  const bool ok = SaveRrIndex(index, path, &typed);
  if (!ok) CopyMessage(typed, error);
  return ok;
}

std::unique_ptr<RrIndex> LoadRrIndex(const SocialNetwork& network,
                                     std::istream& in, std::string* error) {
  IndexIoError typed;
  auto index = LoadRrIndex(network, in, &typed);
  if (index == nullptr) CopyMessage(typed, error);
  return index;
}

std::unique_ptr<RrIndex> LoadRrIndex(const SocialNetwork& network,
                                     const std::string& path,
                                     std::string* error) {
  IndexIoError typed;
  auto index = LoadRrIndex(network, path, &typed);
  if (index == nullptr) CopyMessage(typed, error);
  return index;
}

bool SaveDelayMatIndex(const DelayMatIndex& index, std::ostream& out,
                       std::string* error) {
  IndexIoError typed;
  const bool ok = SaveDelayMatIndex(index, out, &typed);
  if (!ok) CopyMessage(typed, error);
  return ok;
}

bool SaveDelayMatIndex(const DelayMatIndex& index, const std::string& path,
                       std::string* error) {
  IndexIoError typed;
  const bool ok = SaveDelayMatIndex(index, path, &typed);
  if (!ok) CopyMessage(typed, error);
  return ok;
}

std::unique_ptr<DelayMatIndex> LoadDelayMatIndex(const SocialNetwork& network,
                                                 std::istream& in,
                                                 std::string* error) {
  IndexIoError typed;
  auto index = LoadDelayMatIndex(network, in, &typed);
  if (index == nullptr) CopyMessage(typed, error);
  return index;
}

std::unique_ptr<DelayMatIndex> LoadDelayMatIndex(const SocialNetwork& network,
                                                 const std::string& path,
                                                 std::string* error) {
  IndexIoError typed;
  auto index = LoadDelayMatIndex(network, path, &typed);
  if (index == nullptr) CopyMessage(typed, error);
  return index;
}

}  // namespace pitex
