#include "src/index/index_io.h"

#include <fstream>
#include <limits>

#include "src/util/serialize.h"

namespace pitex {

namespace {

constexpr char kMagic[] = "PITEXIDX";
constexpr uint32_t kVersion = 1;
constexpr uint8_t kKindRrGraphs = 1;
constexpr uint8_t kKindDelayMat = 2;

void SetError(std::string* error, const char* message) {
  if (error != nullptr) *error = message;
}

// Writes the shared header (magic, version, kind, fingerprint, options).
void WriteHeader(BinaryWriter* writer, uint8_t kind, uint64_t fingerprint,
                 const RrIndexOptions& options) {
  writer->WriteString(kMagic);
  writer->WriteU32(kVersion);
  writer->WriteU8(kind);
  writer->WriteU64(fingerprint);
  writer->WriteF64(options.eps);
  writer->WriteF64(options.delta);
  writer->WriteU64(static_cast<uint64_t>(options.cap_k));
  writer->WriteU64(options.seed);
}

// Reads and validates the shared header; fills `options` fields that are
// persisted. Returns false with `*error` set on any mismatch.
bool ReadHeader(BinaryReader* reader, uint8_t expected_kind,
                uint64_t expected_fingerprint, RrIndexOptions* options,
                std::string* error) {
  std::string magic;
  uint32_t version = 0;
  uint8_t kind = 0;
  uint64_t fingerprint = 0;
  if (!reader->ReadString(&magic) || magic != kMagic) {
    SetError(error, "not a PITEX index file");
    return false;
  }
  if (!reader->ReadU32(&version) || version != kVersion) {
    SetError(error, "unsupported index file version");
    return false;
  }
  if (!reader->ReadU8(&kind) || kind != expected_kind) {
    SetError(error, "index file holds a different index kind");
    return false;
  }
  if (!reader->ReadU64(&fingerprint) || fingerprint != expected_fingerprint) {
    SetError(error, "index was built from a different network");
    return false;
  }
  uint64_t cap_k = 0;
  if (!reader->ReadF64(&options->eps) || !reader->ReadF64(&options->delta) ||
      !reader->ReadU64(&cap_k) || !reader->ReadU64(&options->seed)) {
    SetError(error, "truncated index header");
    return false;
  }
  options->cap_k = static_cast<int64_t>(cap_k);
  return true;
}

}  // namespace

uint64_t NetworkFingerprint(const SocialNetwork& network) {
  Fnv1a hash;
  auto fold_u64 = [&hash](uint64_t v) { hash.Update(&v, sizeof(v)); };
  fold_u64(network.num_vertices());
  fold_u64(network.num_edges());
  for (EdgeId e = 0; e < network.num_edges(); ++e) {
    fold_u64(network.graph.Tail(e));
    fold_u64(network.graph.Head(e));
    for (const auto& [z, p] : network.influence.EdgeTopics(e)) {
      fold_u64(z);
      hash.Update(&p, sizeof(p));
    }
  }
  fold_u64(network.topics.num_topics());
  fold_u64(network.topics.num_tags());
  for (TopicId z = 0; z < network.topics.num_topics(); ++z) {
    const double prior = network.topics.prior()[z];
    hash.Update(&prior, sizeof(prior));
    for (TagId w = 0; w < network.topics.num_tags(); ++w) {
      const double p = network.topics.TagTopic(w, z);
      if (p > 0.0) {
        fold_u64(w);
        hash.Update(&p, sizeof(p));
      }
    }
  }
  return hash.digest();
}

// Befriended by RrIndex and DelayMatIndex: reads/writes their private
// payloads.
class IndexIo {
 public:
  static bool WriteRr(const RrIndex& index, std::ostream& out,
                      std::string* error) {
    if (index.graphs_.empty() && index.theta_ > 0) {
      SetError(error, "index not built; call Build() before saving");
      return false;
    }
    BinaryWriter writer(&out);
    WriteHeader(&writer, kKindRrGraphs,
                NetworkFingerprint(index.network_), index.options_);
    writer.WriteU64(index.theta_);
    writer.WriteU64(index.graphs_.size());
    for (const RRGraph& rr : index.graphs_) {
      writer.WriteU32(rr.root);
      writer.WriteVector<VertexId>(rr.vertices);
      writer.WriteVector<uint32_t>(rr.offsets);
      writer.WriteU64(rr.edges.size());
      for (const RRGraph::LocalEdge& edge : rr.edges) {
        writer.WriteU32(edge.head_local);
        writer.WriteU32(edge.edge);
        writer.WriteF32(edge.threshold);
      }
    }
    writer.WriteF64(index.build_seconds_);
    writer.WriteChecksum();
    if (!writer.ok()) {
      SetError(error, "I/O failure while writing index");
      return false;
    }
    return true;
  }

  static std::unique_ptr<RrIndex> ReadRr(const SocialNetwork& network,
                                         std::istream& in,
                                         std::string* error) {
    BinaryReader reader(&in);
    RrIndexOptions options;
    if (!ReadHeader(&reader, kKindRrGraphs, NetworkFingerprint(network),
                    &options, error)) {
      return nullptr;
    }
    uint64_t theta = 0, num_graphs = 0;
    if (!reader.ReadU64(&theta) || !reader.ReadU64(&num_graphs) ||
        num_graphs > theta) {
      SetError(error, "corrupt index payload header");
      return nullptr;
    }
    options.theta_override = theta;
    auto index = std::unique_ptr<RrIndex>(new RrIndex(network, options));
    index->graphs_.resize(num_graphs);
    const uint64_t max_vertices = network.num_vertices();
    const uint64_t max_edges = network.num_edges();
    for (RRGraph& rr : index->graphs_) {
      uint32_t root = 0;
      if (!reader.ReadU32(&root) || root >= max_vertices) {
        SetError(error, "corrupt RR-Graph root");
        return nullptr;
      }
      rr.root = root;
      if (!reader.ReadVector(&rr.vertices, max_vertices) ||
          !reader.ReadVector(&rr.offsets, max_vertices + 1)) {
        SetError(error, "corrupt RR-Graph vertex data");
        return nullptr;
      }
      uint64_t num_local_edges = 0;
      if (!reader.ReadU64(&num_local_edges) || num_local_edges > max_edges) {
        SetError(error, "corrupt RR-Graph edge count");
        return nullptr;
      }
      rr.edges.resize(num_local_edges);
      for (RRGraph::LocalEdge& edge : rr.edges) {
        if (!reader.ReadU32(&edge.head_local) || !reader.ReadU32(&edge.edge) ||
            !reader.ReadF32(&edge.threshold) ||
            edge.head_local >= rr.vertices.size() || edge.edge >= max_edges) {
          SetError(error, "corrupt RR-Graph edge data");
          return nullptr;
        }
      }
      if (rr.offsets.size() != rr.vertices.size() + 1 ||
          (rr.offsets.empty() ? 0 : rr.offsets.back()) != rr.edges.size()) {
        SetError(error, "inconsistent RR-Graph CSR layout");
        return nullptr;
      }
    }
    if (!reader.ReadF64(&index->build_seconds_)) {
      SetError(error, "truncated index trailer");
      return nullptr;
    }
    if (!reader.VerifyChecksum()) {
      SetError(error, "checksum mismatch: file truncated or corrupted");
      return nullptr;
    }
    // Rebuild the containment lists (cheaper to recompute than to store:
    // they are a permutation of the graphs' vertex arrays).
    index->containing_.assign(network.num_vertices(), {});
    for (uint32_t id = 0; id < index->graphs_.size(); ++id) {
      for (VertexId v : index->graphs_[id].vertices) {
        index->containing_[v].push_back(id);
      }
    }
    return index;
  }

  static bool WriteDelay(const DelayMatIndex& index, std::ostream& out,
                         std::string* error) {
    if (!index.built_) {
      SetError(error, "index not built; call Build() before saving");
      return false;
    }
    BinaryWriter writer(&out);
    WriteHeader(&writer, kKindDelayMat,
                NetworkFingerprint(index.network_), index.options_);
    writer.WriteU64(index.theta_);
    writer.WriteVector<uint32_t>(index.counts_);
    writer.WriteF64(index.build_seconds_);
    writer.WriteChecksum();
    if (!writer.ok()) {
      SetError(error, "I/O failure while writing index");
      return false;
    }
    return true;
  }

  static std::unique_ptr<DelayMatIndex> ReadDelay(
      const SocialNetwork& network, std::istream& in, std::string* error) {
    BinaryReader reader(&in);
    RrIndexOptions options;
    if (!ReadHeader(&reader, kKindDelayMat, NetworkFingerprint(network),
                    &options, error)) {
      return nullptr;
    }
    uint64_t theta = 0;
    if (!reader.ReadU64(&theta)) {
      SetError(error, "corrupt index payload header");
      return nullptr;
    }
    options.theta_override = theta;
    auto index =
        std::unique_ptr<DelayMatIndex>(new DelayMatIndex(network, options));
    if (!reader.ReadVector(&index->counts_, network.num_vertices()) ||
        index->counts_.size() != network.num_vertices()) {
      SetError(error, "corrupt counter payload");
      return nullptr;
    }
    for (uint32_t count : index->counts_) {
      if (count > theta) {
        SetError(error, "counter exceeds theta: corrupt payload");
        return nullptr;
      }
    }
    if (!reader.ReadF64(&index->build_seconds_)) {
      SetError(error, "truncated index trailer");
      return nullptr;
    }
    if (!reader.VerifyChecksum()) {
      SetError(error, "checksum mismatch: file truncated or corrupted");
      return nullptr;
    }
    index->built_ = true;
    return index;
  }
};

bool SaveRrIndex(const RrIndex& index, std::ostream& out, std::string* error) {
  return IndexIo::WriteRr(index, out, error);
}

bool SaveRrIndex(const RrIndex& index, const std::string& path,
                 std::string* error) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    SetError(error, "cannot open file for writing");
    return false;
  }
  return IndexIo::WriteRr(index, out, error);
}

std::unique_ptr<RrIndex> LoadRrIndex(const SocialNetwork& network,
                                     std::istream& in, std::string* error) {
  return IndexIo::ReadRr(network, in, error);
}

std::unique_ptr<RrIndex> LoadRrIndex(const SocialNetwork& network,
                                     const std::string& path,
                                     std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    SetError(error, "cannot open file for reading");
    return nullptr;
  }
  return IndexIo::ReadRr(network, in, error);
}

bool SaveDelayMatIndex(const DelayMatIndex& index, std::ostream& out,
                       std::string* error) {
  return IndexIo::WriteDelay(index, out, error);
}

bool SaveDelayMatIndex(const DelayMatIndex& index, const std::string& path,
                       std::string* error) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    SetError(error, "cannot open file for writing");
    return false;
  }
  return IndexIo::WriteDelay(index, out, error);
}

std::unique_ptr<DelayMatIndex> LoadDelayMatIndex(const SocialNetwork& network,
                                                 std::istream& in,
                                                 std::string* error) {
  return IndexIo::ReadDelay(network, in, error);
}

std::unique_ptr<DelayMatIndex> LoadDelayMatIndex(const SocialNetwork& network,
                                                 const std::string& path,
                                                 std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    SetError(error, "cannot open file for reading");
    return nullptr;
  }
  return IndexIo::ReadDelay(network, in, error);
}

}  // namespace pitex
