// RR-Graph index: offline sampling + online estimation (Sec. 6.1,
// Algorithm 3) — the paper's "IndexEst".
//
// Offline, theta RR-Graphs are sampled for uniformly random roots and
// flattened into a pooled CSR store (src/index/rr_sketch_pool.h): the
// estimate path walks contiguous memory and a reusable EstimateScratch,
// so a query performs zero heap allocations after warmup. Online,
// E[I(u|W)] is estimated as |V| * (reachable fraction) over the RR-Graphs
// that contain u. Eq. (7) gives the theta needed for the full
// (1-eps)/(1+eps) guarantee; since it is proportional to |V| * Lambda it
// is far beyond laptop budgets for large graphs, so the default
// configuration uses theta = theta_per_vertex * |V| (capped) and exposes
// the theoretical value through TheoreticalTheta() — the same
// accuracy/space trade-off the paper's Table 3 makes implicitly.

#ifndef PITEX_SRC_INDEX_RR_INDEX_H_
#define PITEX_SRC_INDEX_RR_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>

#include "src/index/rr_graph.h"
#include "src/index/rr_sketch_pool.h"
#include "src/sampling/influence_estimator.h"
#include "src/util/thread_annotations.h"
#include "src/util/thread_pool.h"

namespace pitex {

struct RrIndexOptions {
  double eps = 0.7;
  double delta = 1000.0;
  /// Upper bound K on query k (footnote 2: K = 10 in the paper's setup).
  int64_t cap_k = 10;
  /// RR-Graphs sampled per vertex (theta = theta_per_vertex * |V|).
  double theta_per_vertex = 1.0;
  /// Hard cap on theta.
  uint64_t max_theta = 4'000'000;
  /// If non-zero, overrides the theta computation entirely.
  uint64_t theta_override = 0;
  uint64_t seed = 42;
  /// Build threads when Build() is not handed an external pool. Each
  /// RR-Graph derives its RNG stream from (seed, sample index), so the
  /// built index is bit-identical for any thread count.
  size_t num_build_threads = 1;
};

class RrIndex final : public InfluenceOracle {
 public:
  /// Eq. (7): the theoretically prescribed offline sample size.
  static double TheoreticalTheta(const RrIndexOptions& options,
                                 size_t num_vertices, size_t num_tags);

  RrIndex(const SocialNetwork& network, const RrIndexOptions& options);

  /// Snapshot hook (src/serve): wraps an externally packed sketch pool as
  /// a built, immutable index — how a DynamicRrIndex master is frozen
  /// into a serving replica after repairs. `network` must be the (frozen
  /// copy of the) network whose EdgeIds the pooled sketches reference and
  /// must outlive the index; `theta` is the ensemble size the estimator
  /// normalizes by.
  static std::unique_ptr<RrIndex> FromPool(const SocialNetwork& network,
                                           const RrIndexOptions& options,
                                           uint64_t theta, RrSketchPool pool);

  /// Samples the RR-Graphs and packs them into the pool. Must be called
  /// once before estimation. When `pool` is non-null its workers run the
  /// sampling pass (BatchEngine reuses its query pool this way);
  /// otherwise an internal pool of options.num_build_threads workers is
  /// used. The result is bit-identical for any thread count.
  void Build(ThreadPool* pool = nullptr);

  Estimate EstimateInfluence(VertexId u, const EdgeProbFn& probs) override;
  /// Scratch-explicit variant: const, thread-safe for concurrent callers
  /// with distinct scratches, and allocation-free after scratch warmup.
  PITEX_NOALLOC Estimate EstimateInfluence(VertexId u,
                                           const EdgeProbFn& probs,
                                           EstimateScratch* scratch) const;
  const char* Name() const override { return "INDEXEST"; }

  uint64_t theta() const { return theta_; }
  size_t num_vertices() const { return network_.num_vertices(); }
  size_t num_graphs() const { return pool_.num_sketches(); }
  /// Non-owning view of RR-Graph i (valid while the index is alive).
  RRView graph(size_t i) const { return pool_.View(i); }
  /// Ids (sketch positions) of the RR-Graphs containing u, ascending.
  std::span<const uint32_t> Containing(VertexId u) const {
    return pool_.Containing(u);
  }
  /// theta(u): how many RR-Graphs contain u (Sec. 6.3 notation).
  size_t CountContaining(VertexId u) const {
    return pool_.CountContaining(u);
  }
  /// The pooled sketch store backing this index.
  const RrSketchPool& pool() const { return pool_; }

  /// Approximate index footprint (Table 3 metric), O(1).
  size_t SizeBytes() const;
  double build_seconds() const { return build_seconds_; }

 private:
  friend class IndexIo;  // persistence (src/index/index_io.h)

  const SocialNetwork& network_;
  RrIndexOptions options_;
  uint64_t theta_ = 0;
  RrSketchPool pool_;
  bool built_ = false;
  double build_seconds_ = 0.0;
};

}  // namespace pitex

#endif  // PITEX_SRC_INDEX_RR_INDEX_H_
