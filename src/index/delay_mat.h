// Delay materialization (Sec. 6.3, Algorithm 4) — the paper's "DelayMat".
//
// Instead of storing theta RR-Graphs, the index keeps only theta(u) = the
// number of RR-Graphs containing u, for every u (one counter per vertex —
// the Table-3 space win). At query time, theta(u) RR-Graphs are
// *recovered* with the correct conditional distribution (Theorem 3):
//   1. draw a forward live sample G' from u under the envelope p(e)
//      (every recovered graph must contain u, and conditioning a uniform
//      root on "contains u" is exactly "root uniform over R_g(u)");
//   2. pick the root v' uniformly from G' and keep the vertices of G'
//      that reach v' inside G';
//   3. re-draw c(e) ~ U[0, p(e)) for surviving edges (conditioned on
//      being live, the original c(e) had exactly this distribution).
//
// Estimation note: conditioning an offline RR-Graph on "contains u"
// re-weights the live world g proportionally to |R_g(u)| (a uniform root
// lands inside R_g(u) with probability |R_g(u)|/|V|). The paper's
// Theorem-3 proof drops this size-bias term; plugging recovered graphs
// into the plain hits/theta * |V| estimator is therefore biased. We use
// the importance-corrected unbiased estimator instead:
//
//   E[I(u|W)] = E_g[ |R_g(u)| * Pr_{v' ~ U(R_g(u))}[u ~>_W v'] ]
//             ~ (1/m) * sum_i |R_{g_i}(u)| * 1[u ~>_W v'_i],
//
// with m = theta(u) recovered samples (the counters still calibrate the
// per-user sample size exactly as in the paper).

#ifndef PITEX_SRC_INDEX_DELAY_MAT_H_
#define PITEX_SRC_INDEX_DELAY_MAT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/index/rr_graph.h"
#include "src/index/rr_index.h"

namespace pitex {

class DelayMatIndex final : public InfluenceOracle {
 public:
  DelayMatIndex(const SocialNetwork& network, const RrIndexOptions& options);

  /// Counts theta(u) for all u by sampling (and discarding) theta
  /// RR-Graphs.
  void Build();

  Estimate EstimateInfluence(VertexId u, const EdgeProbFn& probs) override;
  const char* Name() const override { return "DELAYMAT"; }

  uint64_t theta() const { return theta_; }
  size_t CountContaining(VertexId u) const { return counts_[u]; }

  /// Index footprint: one counter per vertex (Table 3 metric).
  size_t SizeBytes() const;
  double build_seconds() const { return build_seconds_; }

 private:
  friend class IndexIo;  // persistence (src/index/index_io.h)

  /// A recovered RR-Graph plus its importance weight |R_g(u)|.
  struct RecoveredGraph {
    RRGraph graph;
    uint64_t live_reach;  // |R_g(u)| of the world it was recovered from
  };

  /// Recovers one RR-Graph conditioned on containing u (Algorithm 4).
  RecoveredGraph RecoverRRGraph(VertexId u);

  /// Recovers (and caches) the theta(u) RR-Graphs for a query user; a
  /// PITEX query evaluates many tag sets against the same recovered
  /// graphs, exactly as Sec. 6.3 describes.
  const std::vector<RecoveredGraph>& RecoveredFor(VertexId u);

  const SocialNetwork& network_;
  RrIndexOptions options_;
  uint64_t theta_ = 0;
  std::vector<uint32_t> counts_;
  Rng query_rng_;
  // Per-instance reachability scratch (DelayMat caches per query user and
  // is never shared across threads; see BatchEngine).
  EstimateScratch scratch_;
  double build_seconds_ = 0.0;
  bool built_ = false;
  bool has_cached_user_ = false;
  VertexId cached_user_ = 0;
  std::vector<RecoveredGraph> cached_graphs_;
};

}  // namespace pitex

#endif  // PITEX_SRC_INDEX_DELAY_MAT_H_
