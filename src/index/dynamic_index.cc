#include "src/index/dynamic_index.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "src/util/check.h"

namespace pitex {

namespace {

// RNG stream for sample i at repair version `version`. version == 0
// reproduces RrIndex::Build exactly (bit-identical initial index).
Rng StreamFor(uint64_t seed, uint64_t i, uint64_t version) {
  uint64_t mix = seed ^ (0x9e3779b97f4a7c15ULL * (i + 1));
  if (version > 0) mix ^= 0xbf58476d1ce4e5b9ULL * version;
  return Rng(SplitMix64(&mix));
}

// Vertices that reach `root` along `edges` (tail reaches head): reverse
// BFS from the root following edges head -> tail.
std::vector<VertexId> ReachingRoot(VertexId root,
                                   std::span<const GlobalEdgeSample> edges) {
  std::unordered_map<VertexId, std::vector<VertexId>> tails_of;
  for (const GlobalEdgeSample& e : edges) {
    tails_of[e.head].push_back(e.tail);
  }
  std::vector<VertexId> result{root};
  std::unordered_set<VertexId> seen{root};
  std::vector<VertexId> stack{root};
  while (!stack.empty()) {
    const VertexId v = stack.back();
    stack.pop_back();
    const auto it = tails_of.find(v);
    if (it == tails_of.end()) continue;
    for (const VertexId t : it->second) {
      if (seen.insert(t).second) {
        result.push_back(t);
        stack.push_back(t);
      }
    }
  }
  return result;
}

}  // namespace

DynamicRrIndex::DynamicRrIndex(const SocialNetwork& network,
                               const RrIndexOptions& options)
    : network_(network), options_(options) {
  if (options_.theta_override > 0) {
    theta_ = options_.theta_override;
  } else {
    const double theta = options_.theta_per_vertex *
                         static_cast<double>(network_.num_vertices());
    theta_ = std::min<uint64_t>(
        options_.max_theta,
        std::max<uint64_t>(64, static_cast<uint64_t>(std::llround(theta))));
  }
}

void DynamicRrIndex::Build() {
  PITEX_CHECK_MSG(!built_, "Build() called twice");
  built_ = true;
  graphs_.resize(theta_);
  roots_.resize(theta_);
  containing_.assign(network_.num_vertices(), {});
  max_prob_.resize(network_.num_edges());
  for (EdgeId e = 0; e < network_.num_edges(); ++e) {
    max_prob_[e] = network_.influence.MaxProb(e);
  }
  for (uint64_t i = 0; i < theta_; ++i) {
    Rng rng = StreamFor(options_.seed, i, /*version=*/0);
    roots_[i] =
        static_cast<VertexId>(rng.NextBounded(network_.num_vertices()));
    graphs_[i] =
        GenerateRRGraph(network_.graph, network_.influence, roots_[i], &rng);
  }
  for (uint32_t id = 0; id < graphs_.size(); ++id) {
    for (VertexId v : graphs_[id].vertices) containing_[v].push_back(id);
  }
}

void DynamicRrIndex::ApplyUpdates(
    std::span<const EdgeInfluenceUpdate> updates) {
  PITEX_CHECK_MSG(built_, "call Build() before ApplyUpdates()");
  if (updates.empty()) return;
  ++stats_.update_batches;

  // Updates apply sequentially; the CSR fold below keeps the *last*
  // entries per edge, matching the sequential envelope transitions.
  std::unordered_map<EdgeId, std::span<const EdgeTopicEntry>> pending;
  for (const EdgeInfluenceUpdate& update : updates) {
    const EdgeId e = update.edge;
    PITEX_CHECK(e < network_.num_edges());
    ++version_;
    ++stats_.edges_updated;

    const double p_old = max_prob_[e];
    double p_new = 0.0;
    for (const EdgeTopicEntry& entry : update.entries) {
      PITEX_CHECK_MSG(entry.prob >= 0.0 && entry.prob <= 1.0,
                      "edge probability out of [0, 1]");
      p_new = std::max(p_new, entry.prob);
    }
    max_prob_[e] = p_new;
    pending[e] = update.entries;

    // Only graphs containing head(e) ever probed e. Snapshot the list:
    // repairs splice containment as membership changes.
    const VertexId head = network_.graph.Head(e);
    const std::vector<uint32_t> affected = containing_[head];
    for (const uint32_t id : affected) {
      ++stats_.graphs_examined;
      Rng rng = StreamFor(options_.seed, id, version_);
      RepairGraph(id, e, p_old, p_new, &rng);
    }
  }

  // Fold the batch into the influence CSR once (O(|E| + nnz)).
  InfluenceGraphBuilder builder(network_.num_edges());
  for (EdgeId e = 0; e < network_.num_edges(); ++e) {
    const auto it = pending.find(e);
    builder.SetEdgeTopics(e, it != pending.end()
                                 ? it->second
                                 : network_.influence.EdgeTopics(e));
  }
  network_.influence = builder.Build();
}

void DynamicRrIndex::UpdateEdgeTopics(EdgeId edge,
                                      std::span<const EdgeTopicEntry> entries) {
  EdgeInfluenceUpdate update;
  update.edge = edge;
  update.entries.assign(entries.begin(), entries.end());
  ApplyUpdates(std::span(&update, 1));
}

void DynamicRrIndex::RepairGraph(uint32_t id, EdgeId e, double p_old,
                                 double p_new, Rng* rng) {
  RRGraph& rr = graphs_[id];
  std::vector<GlobalEdgeSample> edges = DecomposeRRGraph(rr);
  const auto it =
      std::find_if(edges.begin(), edges.end(),
                   [e](const GlobalEdgeSample& s) { return s.edge == e; });

  bool changed = false;
  if (it != edges.end()) {
    // Live under the old model with threshold c = U(e) < p_old. The
    // exact conditional keeps it live iff U(e) < p_new.
    if (static_cast<double>(it->threshold) >= p_new) {
      edges.erase(it);
      changed = true;  // prune below: some vertices may lose the root
    }
    // else: survives, threshold unchanged (U(e) < p_new already).
  } else if (p_new > p_old && p_old < 1.0) {
    // Dead under the old model: latent U(e) uniform on [p_old, 1).
    if (rng->NextDouble() < (p_new - p_old) / (1.0 - p_old)) {
      const VertexId tail = network_.graph.Tail(e);
      const VertexId head = network_.graph.Head(e);
      const auto threshold = static_cast<float>(
          p_old + rng->NextDouble() * (p_new - p_old));
      edges.push_back(GlobalEdgeSample{tail, head, e, threshold});
      changed = true;

      // If the tail newly reaches the root, reverse sampling expands:
      // every vertex entering the graph flips its in-edge coins for the
      // first time (exactly as GenerateRRGraph would have). Coins use
      // the envelope mirror, which reflects all updates applied so far.
      std::unordered_set<VertexId> present(rr.vertices.begin(),
                                           rr.vertices.end());
      if (!present.contains(tail)) {
        std::vector<VertexId> stack{tail};
        present.insert(tail);
        while (!stack.empty()) {
          const VertexId x = stack.back();
          stack.pop_back();
          for (const auto& [y, in_edge] : network_.graph.InEdges(x)) {
            const double p = max_prob_[in_edge];
            if (p <= 0.0 || !rng->NextBernoulli(p)) continue;
            const auto c = static_cast<float>(rng->NextDouble() * p);
            edges.push_back(GlobalEdgeSample{y, x, in_edge, c});
            if (present.insert(y).second) stack.push_back(y);
          }
        }
      }
    }
  }
  if (!changed) return;
  ++stats_.graphs_changed;

  // Re-close the graph: keep exactly the vertices still reaching the
  // root (an edge death can orphan a subtree; an expansion adds one).
  std::vector<VertexId> vertices = ReachingRoot(roots_[id], edges);

  // Splice containment: detach old membership, attach new.
  for (const VertexId v : rr.vertices) {
    auto& list = containing_[v];
    list.erase(std::find(list.begin(), list.end(), id));
  }
  rr = AssembleRRGraph(roots_[id], std::move(vertices), edges);
  for (const VertexId v : rr.vertices) {
    auto& list = containing_[v];
    list.insert(std::lower_bound(list.begin(), list.end(), id), id);
  }
}

Estimate DynamicRrIndex::EstimateInfluence(VertexId u,
                                           const EdgeProbFn& probs) {
  PITEX_CHECK_MSG(built_, "call Build() first");
  Estimate result;
  uint64_t hits = 0;
  for (const uint32_t id : containing_[u]) {
    ++result.samples;
    if (IsReachable(graphs_[id], u, probs, &result.edges_visited,
                    &scratch_)) {
      ++hits;
    }
  }
  result.influence = static_cast<double>(hits) / static_cast<double>(theta_) *
                     static_cast<double>(network_.num_vertices());
  result.influence = std::max(result.influence, 1.0);
  const auto scale = static_cast<double>(network_.num_vertices());
  result.std_error = SampleMeanStdError(
      static_cast<double>(hits) * scale,
      static_cast<double>(hits) * scale * scale, theta_);
  return result;
}

size_t DynamicRrIndex::SizeBytes() const {
  size_t bytes = sizeof(DynamicRrIndex);
  for (const RRGraph& rr : graphs_) bytes += rr.SizeBytes();
  for (const auto& list : containing_) {
    bytes += list.capacity() * sizeof(uint32_t) + sizeof(list);
  }
  bytes += roots_.capacity() * sizeof(VertexId);
  return bytes;
}

}  // namespace pitex
