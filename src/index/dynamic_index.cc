#include "src/index/dynamic_index.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "src/util/check.h"

namespace pitex {

namespace {

// RNG stream for sample i at repair version `version`. version == 0
// reproduces RrIndex::Build exactly (bit-identical initial index).
Rng StreamFor(uint64_t seed, uint64_t i, uint64_t version) {
  uint64_t mix = seed ^ (0x9e3779b97f4a7c15ULL * (i + 1));
  if (version > 0) mix ^= 0xbf58476d1ce4e5b9ULL * version;
  return Rng(SplitMix64(&mix));
}

}  // namespace

DynamicRrIndex::DynamicRrIndex(const SocialNetwork& network,
                               const RrIndexOptions& options)
    : network_(network), options_(options) {
  if (options_.theta_override > 0) {
    theta_ = options_.theta_override;
  } else {
    const double theta = options_.theta_per_vertex *
                         static_cast<double>(network_.num_vertices());
    theta_ = std::min<uint64_t>(
        options_.max_theta,
        std::max<uint64_t>(64, static_cast<uint64_t>(std::llround(theta))));
  }
}

void DynamicRrIndex::Build() {
  PITEX_CHECK_MSG(!built_, "Build() called twice");
  built_ = true;
  graphs_.resize(theta_);
  roots_.resize(theta_);
  containing_.assign(network_.num_vertices(), {});
  envelope_ = EnvelopeTable(network_.graph, network_.influence);
  // Arena-staged generation against the envelope mirror: the same table
  // the static build materializes, so the initial state is bit-identical
  // to RrIndex::Build with equal options and seed.
  for (uint64_t i = 0; i < theta_; ++i) {
    Rng rng = StreamFor(options_.seed, i, /*version=*/0);
    roots_[i] =
        static_cast<VertexId>(rng.NextBounded(network_.num_vertices()));
    arena_.Clear();
    arena_.Generate(network_.graph, envelope_, roots_[i], &rng, i);
    arena_.Export(0, &graphs_[i]);
  }
  for (uint32_t id = 0; id < graphs_.size(); ++id) {
    for (VertexId v : graphs_[id].vertices) containing_[v].push_back(id);
  }
}

void DynamicRrIndex::ApplyUpdates(
    std::span<const EdgeInfluenceUpdate> updates) {
  PITEX_CHECK_MSG(built_, "call Build() before ApplyUpdates()");
  if (updates.empty()) return;
  ++stats_.update_batches;

  // Updates apply sequentially; the CSR fold below keeps the *last*
  // entries per edge, matching the sequential envelope transitions.
  std::unordered_map<EdgeId, std::span<const EdgeTopicEntry>> pending;
  for (const EdgeInfluenceUpdate& update : updates) {
    const EdgeId e = update.edge;
    PITEX_CHECK(e < network_.num_edges());
    ++version_;
    ++stats_.edges_updated;

    // Transitions are taken in the float-quantized envelope space the
    // sketches were sampled in (EnvelopeProbability), so the coupling
    // conditionals below are exact w.r.t. the stored thresholds.
    const auto p_old = static_cast<double>(envelope_.Prob(e));
    double p_new_raw = 0.0;
    for (const EdgeTopicEntry& entry : update.entries) {
      PITEX_CHECK_MSG(entry.prob >= 0.0 && entry.prob <= 1.0,
                      "edge probability out of [0, 1]");
      p_new_raw = std::max(p_new_raw, entry.prob);
    }
    const auto p_new =
        static_cast<double>(EnvelopeProbability(p_new_raw));
    envelope_.Update(network_.graph, e, p_new_raw);
    pending[e] = update.entries;

    // Only graphs containing head(e) ever probed e. Snapshot the list:
    // repairs splice containment as membership changes.
    const VertexId head = network_.graph.Head(e);
    const std::vector<uint32_t> affected = containing_[head];
    for (const uint32_t id : affected) {
      ++stats_.graphs_examined;
      Rng rng = StreamFor(options_.seed, id, version_);
      RepairGraph(id, e, p_old, p_new, &rng);
    }
  }

  // Fold the batch into the influence CSR once: a single exact-size
  // splice pass (O(|E| + nnz), three allocations) instead of re-staging
  // every edge through InfluenceGraphBuilder's per-edge vectors.
  std::vector<EdgeTopicsReplacement> replacements;
  replacements.reserve(pending.size());
  for (const auto& [e, entries] : pending) {
    replacements.push_back(EdgeTopicsReplacement{e, entries});
  }
  network_.influence = ReplaceEdgeTopics(network_.influence, replacements);
}

void DynamicRrIndex::UpdateEdgeTopics(EdgeId edge,
                                      std::span<const EdgeTopicEntry> entries) {
  EdgeInfluenceUpdate update;
  update.edge = edge;
  update.entries.assign(entries.begin(), entries.end());
  ApplyUpdates(std::span(&update, 1));
}

void DynamicRrIndex::RestoreModel(
    std::span<const EdgeInfluenceUpdate> replacements, uint64_t version) {
  PITEX_CHECK_MSG(!built_, "RestoreModel() must precede Build()/Adopt");
  if (!replacements.empty()) {
    std::vector<EdgeTopicsReplacement> folded;
    folded.reserve(replacements.size());
    for (const EdgeInfluenceUpdate& r : replacements) {
      PITEX_CHECK(r.edge < network_.num_edges());
      folded.push_back(EdgeTopicsReplacement{r.edge, r.entries});
    }
    network_.influence = ReplaceEdgeTopics(network_.influence, folded);
  }
  version_ = version;
}

void DynamicRrIndex::AdoptSketches(const RrIndex& checkpoint) {
  PITEX_CHECK_MSG(!built_, "AdoptSketches() on an already built index");
  built_ = true;
  theta_ = checkpoint.theta();
  const RrSketchPool& pool = checkpoint.pool();
  const size_t n = pool.num_sketches();
  graphs_.resize(n);
  roots_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    const RRView view = pool.View(i);
    RRGraph& rr = graphs_[i];
    rr.root = view.root;
    rr.vertices.assign(view.vertices.begin(), view.vertices.end());
    rr.offsets.assign(view.offsets.begin(), view.offsets.end());
    rr.edges.assign(view.edges.begin(), view.edges.end());
    roots_[i] = view.root;
  }
  containing_.assign(network_.num_vertices(), {});
  for (uint32_t id = 0; id < graphs_.size(); ++id) {
    for (VertexId v : graphs_[id].vertices) containing_[v].push_back(id);
  }
  envelope_ = EnvelopeTable(network_.graph, network_.influence);
}

void DynamicRrIndex::RepairGraph(uint32_t id, EdgeId e, double p_old,
                                 double p_new, Rng* rng) {
  RRGraph& rr = graphs_[id];
  auto& edges = repair_edges_;
  DecomposeRRGraphInto(rr, &edges);
  const auto it =
      std::find_if(edges.begin(), edges.end(),
                   [e](const GlobalEdgeSample& s) { return s.edge == e; });

  bool changed = false;
  if (it != edges.end()) {
    // Live under the old model with threshold c = U(e) < p_old. The
    // exact conditional keeps it live iff U(e) < p_new.
    if (static_cast<double>(it->threshold) >= p_new) {
      edges.erase(it);
      changed = true;  // prune below: some vertices may lose the root
    }
    // else: survives, threshold unchanged (U(e) < p_new already).
  } else if (p_new > p_old && p_old < 1.0) {
    // Dead under the old model: latent U(e) uniform on [p_old, 1).
    if (rng->NextDouble() < (p_new - p_old) / (1.0 - p_old)) {
      const VertexId tail = network_.graph.Tail(e);
      const VertexId head = network_.graph.Head(e);
      const auto threshold = static_cast<float>(
          p_old + rng->NextDouble() * (p_new - p_old));
      edges.push_back(GlobalEdgeSample{tail, head, e, threshold});
      changed = true;

      // If the tail newly reaches the root, reverse sampling expands:
      // every vertex entering the graph flips its in-edge coins for the
      // first time, through the same combined-draw + geometric-skip
      // probe the bulk build uses (SampleLiveInEdges) against the
      // envelope mirror, which reflects all updates applied so far.
      if (!rr.LocalIndex(tail).has_value()) {
        if (present_mark_.size() < network_.num_vertices()) {
          present_mark_.resize(network_.num_vertices(), 0);
        }
        if (++present_epoch_ == 0) {
          std::fill(present_mark_.begin(), present_mark_.end(), 0);
          present_epoch_ = 1;
        }
        const uint32_t epoch = present_epoch_;
        for (const VertexId v : rr.vertices) present_mark_[v] = epoch;
        present_mark_[tail] = epoch;
        std::vector<VertexId>& stack = repair_stack_;
        stack.assign(1, tail);
        while (!stack.empty()) {
          const VertexId x = stack.back();
          stack.pop_back();
          const auto in = network_.graph.InEdges(x);
          SampleLiveInEdges(envelope_.InEnvelopes(network_.graph, x),
                            envelope_.VertexMax(x), rng,
                            [&](size_t j, double u) {
                              const auto& [y, in_edge] = in[j];
                              edges.push_back(GlobalEdgeSample{
                                  y, x, in_edge, static_cast<float>(u)});
                              if (present_mark_[y] != epoch) {
                                present_mark_[y] = epoch;
                                stack.push_back(y);
                              }
                            });
        }
      }
    }
  }
  if (!changed) return;
  ++stats_.graphs_changed;

  // Splice containment: detach old membership, re-close the sketch (keep
  // exactly the vertices still reaching the root — an edge death can
  // orphan a subtree; an expansion adds one) and attach the new
  // membership. The arena rebuild reuses rr's own capacity.
  for (const VertexId v : rr.vertices) {
    auto& list = containing_[v];
    list.erase(std::find(list.begin(), list.end(), id));
  }
  arena_.RebuildRepairedSketch(roots_[id], network_.num_vertices(), edges,
                               &rr);
  for (const VertexId v : rr.vertices) {
    auto& list = containing_[v];
    list.insert(std::lower_bound(list.begin(), list.end(), id), id);
  }
}

Estimate DynamicRrIndex::EstimateInfluence(VertexId u,
                                           const EdgeProbFn& probs) {
  PITEX_CHECK_MSG(built_, "call Build() first");
  Estimate result;
  uint64_t hits = 0;
  for (const uint32_t id : containing_[u]) {
    ++result.samples;
    if (IsReachable(graphs_[id], u, probs, &result.edges_visited,
                    &scratch_)) {
      ++hits;
    }
  }
  result.influence = static_cast<double>(hits) / static_cast<double>(theta_) *
                     static_cast<double>(network_.num_vertices());
  result.influence = std::max(result.influence, 1.0);
  const auto scale = static_cast<double>(network_.num_vertices());
  result.std_error = SampleMeanStdError(
      static_cast<double>(hits) * scale,
      static_cast<double>(hits) * scale * scale, theta_);
  return result;
}

size_t DynamicRrIndex::SizeBytes() const {
  size_t bytes = sizeof(DynamicRrIndex);
  for (const RRGraph& rr : graphs_) bytes += rr.SizeBytes();
  for (const auto& list : containing_) {
    bytes += list.capacity() * sizeof(uint32_t) + sizeof(list);
  }
  bytes += roots_.capacity() * sizeof(VertexId);
  bytes += envelope_.SizeBytes();
  return bytes;
}

}  // namespace pitex
