#include "src/index/sketch_arena.h"

#include <algorithm>

#include "src/util/check.h"

namespace pitex {

void SketchArena::Clear() {
  meta_.clear();
  vertices_.clear();
  offsets_.clear();
  edges_.clear();
  max_sketch_vertices_ = 0;
}

RRView SketchArena::View(size_t slot) const {
  const Meta& m = meta_[slot];
  const uint64_t n = VertexEnd(slot) - m.vertex_start;
  return RRView{m.root,
                {vertices_.data() + m.vertex_start, n},
                {offsets_.data() + m.offset_start, n + 1},
                {edges_.data() + m.edge_start, EdgeEnd(slot) - m.edge_start}};
}

uint32_t SketchArena::BeginTraversal(size_t num_vertices) {
  if (mark_.size() < num_vertices) {
    mark_.resize(num_vertices, 0);
    local_index_.resize(num_vertices, 0);
  }
  if (++epoch_ == 0) {
    std::fill(mark_.begin(), mark_.end(), 0);
    epoch_ = 1;
  }
  return epoch_;
}

template <typename EnvOf>
PITEX_NOALLOC void SketchArena::GenerateImpl(const Graph& graph,
                                             const EnvOf& env_of,
                               VertexId root, Rng* rng,
                               uint64_t sample_index) {
  const uint32_t epoch = BeginTraversal(graph.num_vertices());
  Meta meta;
  meta.sample = sample_index;
  meta.root = root;
  meta.vertex_start = vertices_.size();
  meta.offset_start = offsets_.size();
  meta.edge_start = edges_.size();

  // Reverse BFS from the root over live in-edges; each in-edge of a
  // visited vertex is probed exactly once (its head is unique).
  staged_.clear();
  mark_[root] = epoch;
  vertices_.push_back(root);
  stack_.assign(1, root);
  while (!stack_.empty()) {
    const VertexId v = stack_.back();
    stack_.pop_back();
    const auto in = graph.InEdges(v);
    const auto [env, vmax] = env_of(v);
    SampleLiveInEdges(env, vmax, rng, [&](size_t j, double u) {
      const auto& [w, e] = in[j];
      staged_.push_back(GlobalEdgeSample{w, v, e, static_cast<float>(u)});
      if (mark_[w] != epoch) {
        mark_[w] = epoch;
        vertices_.push_back(w);
        stack_.push_back(w);
      }
    });
  }

  // Local assembly in place: sort the vertex segment (no duplicates by
  // construction), dense global -> local map via the epoch marks, then
  // counting-sort the staged edges by local tail (stable, so per-tail
  // edge order is probe order — same as AssembleRRGraph's staging).
  const auto vbegin =
      vertices_.begin() + static_cast<ptrdiff_t>(meta.vertex_start);
  std::sort(vbegin, vertices_.end());
  const size_t n = vertices_.size() - meta.vertex_start;
  for (size_t j = 0; j < n; ++j) {
    local_index_[*(vbegin + static_cast<ptrdiff_t>(j))] =
        static_cast<uint32_t>(j);
  }
  counts_.assign(n + 1, 0);
  for (const GlobalEdgeSample& s : staged_) {
    ++counts_[local_index_[s.tail] + 1];
  }
  for (size_t j = 0; j < n; ++j) counts_[j + 1] += counts_[j];
  offsets_.insert(offsets_.end(), counts_.begin(), counts_.end());
  edges_.resize(meta.edge_start + staged_.size());
  RRLocalEdge* const out = edges_.data() + meta.edge_start;
  for (const GlobalEdgeSample& s : staged_) {
    out[counts_[local_index_[s.tail]]++] =
        RRLocalEdge{local_index_[s.head], s.edge, s.threshold};
  }

  max_sketch_vertices_ = std::max(max_sketch_vertices_, n);
  meta_.push_back(meta);
}

PITEX_NOALLOC void SketchArena::Generate(const Graph& graph,
                                         const EnvelopeTable& envelope,
                           VertexId root, Rng* rng, uint64_t sample_index) {
  GenerateImpl(
      graph,
      [&](VertexId v) {
        return std::pair<std::span<const float>, float>(
            envelope.InEnvelopes(graph, v), envelope.VertexMax(v));
      },
      root, rng, sample_index);
}

PITEX_NOALLOC void SketchArena::Generate(
    const Graph& graph, const InfluenceGraph& influence, VertexId root,
                           Rng* rng, uint64_t sample_index) {
  GenerateImpl(
      graph,
      [&](VertexId v) {
        const auto in = graph.InEdges(v);
        if (env_scratch_.size() < in.size()) env_scratch_.resize(in.size());
        float* const env = env_scratch_.data();
        float vmax = 0.0f;
        for (size_t j = 0; j < in.size(); ++j) {
          const float p = EnvelopeProbability(influence.MaxProb(in[j].edge));
          env[j] = p;
          vmax = std::max(vmax, p);
        }
        return std::pair<std::span<const float>, float>(
            std::span<const float>(env, in.size()), vmax);
      },
      root, rng, sample_index);
}

void SketchArena::Export(size_t slot, RRGraph* out) const {
  const Meta& m = meta_[slot];
  out->root = m.root;
  const uint64_t n = VertexEnd(slot) - m.vertex_start;
  out->vertices.assign(vertices_.begin() + static_cast<ptrdiff_t>(m.vertex_start),
                       vertices_.begin() +
                           static_cast<ptrdiff_t>(m.vertex_start + n));
  out->offsets.assign(
      offsets_.begin() + static_cast<ptrdiff_t>(m.offset_start),
      offsets_.begin() + static_cast<ptrdiff_t>(m.offset_start + n + 1));
  out->edges.assign(edges_.begin() + static_cast<ptrdiff_t>(m.edge_start),
                    edges_.begin() + static_cast<ptrdiff_t>(EdgeEnd(slot)));
}

PITEX_NOALLOC void SketchArena::RebuildRepairedSketch(
    VertexId root, size_t num_vertices,
                                        std::span<const GlobalEdgeSample> edges,
                                        RRGraph* out) {
  // 1. Candidate set = {root} + every edge endpoint, provisional local
  // ids in first-seen order via the epoch marks.
  uint32_t epoch = BeginTraversal(num_vertices);
  cand_.clear();
  auto add_cand = [&](VertexId v) {
    if (mark_[v] != epoch) {
      mark_[v] = epoch;
      local_index_[v] = static_cast<uint32_t>(cand_.size());
      cand_.push_back(v);
    }
  };
  add_cand(root);
  for (const GlobalEdgeSample& s : edges) {
    add_cand(s.tail);
    add_cand(s.head);
  }
  const size_t c = cand_.size();

  // 2. Reverse adjacency (edges bucketed by local head id) so "which
  // tails feed v" is a slice, not a hash lookup.
  counts_.assign(c + 1, 0);
  for (const GlobalEdgeSample& s : edges) {
    ++counts_[local_index_[s.head] + 1];
  }
  for (size_t j = 0; j < c; ++j) counts_[j + 1] += counts_[j];
  adj_.resize(edges.size());
  for (size_t i = 0; i < edges.size(); ++i) {
    adj_[counts_[local_index_[edges[i].head]]++] = static_cast<uint32_t>(i);
  }
  // counts_[j] now ends bucket j; bucket j starts at counts_[j - 1].

  // 3. Reverse BFS from the root: mark every candidate that reaches it.
  reach_.assign(c, 0);
  reach_[local_index_[root]] = 1;
  stack_.assign(1, root);
  while (!stack_.empty()) {
    const VertexId v = stack_.back();
    stack_.pop_back();
    const uint32_t lv = local_index_[v];
    const uint32_t begin = lv == 0 ? 0 : counts_[lv - 1];
    for (uint32_t i = begin; i < counts_[lv]; ++i) {
      const VertexId tail = edges[adj_[i]].tail;
      uint8_t& seen = reach_[local_index_[tail]];
      if (seen == 0) {
        seen = 1;
        stack_.push_back(tail);
      }
    }
  }

  // 4. Kept vertices, sorted ascending, with final local ids stamped
  // under a fresh epoch (so dropped candidates read as absent).
  out->root = root;
  out->vertices.clear();
  for (const VertexId v : cand_) {
    if (reach_[local_index_[v]] != 0) out->vertices.push_back(v);
  }
  std::sort(out->vertices.begin(), out->vertices.end());
  epoch = BeginTraversal(num_vertices);
  const size_t n = out->vertices.size();
  for (size_t j = 0; j < n; ++j) {
    mark_[out->vertices[j]] = epoch;
    local_index_[out->vertices[j]] = static_cast<uint32_t>(j);
  }

  // 5. Counting-sort the surviving edges by local tail (stable: per-tail
  // order is input order, matching AssembleRRGraph).
  counts_.assign(n + 1, 0);
  size_t kept_edges = 0;
  auto kept = [&](const GlobalEdgeSample& s) {
    return mark_[s.tail] == epoch && mark_[s.head] == epoch;
  };
  for (const GlobalEdgeSample& s : edges) {
    if (!kept(s)) continue;
    ++counts_[local_index_[s.tail] + 1];
    ++kept_edges;
  }
  for (size_t j = 0; j < n; ++j) counts_[j + 1] += counts_[j];
  out->offsets.assign(counts_.begin(), counts_.end());
  out->edges.resize(kept_edges);
  for (const GlobalEdgeSample& s : edges) {
    if (!kept(s)) continue;
    out->edges[counts_[local_index_[s.tail]]++] =
        RRLocalEdge{local_index_[s.head], s.edge, s.threshold};
  }
}

}  // namespace pitex
