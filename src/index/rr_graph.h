// RR-Graph: the reverse-reachable sample graph of Definition 2, plus the
// tag-aware reachability check of Definition 3.
//
// An RR-Graph for root v is a reverse IC sample drawn under the envelope
// probabilities p(e) = max_z p(e|z). Every kept edge carries the threshold
// c(e) it was sampled with; conditioned on the edge being live, c(e) is
// uniform on [0, p(e)). At query time the edge is live for tag set W iff
// p(e|W) >= c(e) — so one offline sample serves every query user and
// every tag set, and the spread is never underestimated (p(e) >= p(e|W)).

#ifndef PITEX_SRC_INDEX_RR_GRAPH_H_
#define PITEX_SRC_INDEX_RR_GRAPH_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "src/sampling/influence_estimator.h"
#include "src/util/random.h"

namespace pitex {

/// One materialized reverse-reachable sample graph. Vertices are stored
/// sorted; edges are stored as a local CSR out-adjacency so tag-aware
/// reachability is a forward BFS from the query user towards the root.
struct RRGraph {
  struct LocalEdge {
    uint32_t head_local;  // index into `vertices`
    EdgeId edge;          // global EdgeId (for p(e|W) lookups)
    float threshold;      // c(e)
  };

  VertexId root = 0;
  std::vector<VertexId> vertices;   // sorted ascending
  std::vector<uint32_t> offsets;    // CSR over local tails
  std::vector<LocalEdge> edges;

  /// Local index of global vertex v, or nullopt if absent.
  std::optional<uint32_t> LocalIndex(VertexId v) const;

  /// Approximate in-memory footprint.
  size_t SizeBytes() const;
};

/// Samples one RR-Graph rooted at `root` (Definition 2): reverse BFS from
/// the root keeping each in-edge with probability p(e); kept edges get
/// c(e) ~ U[0, p(e)).
RRGraph GenerateRRGraph(const Graph& graph, const InfluenceGraph& influence,
                        VertexId root, Rng* rng);

/// Definition 3: true iff `u` reaches the root of `rr` along edges with
/// probs.Prob(e) >= c(e). Adds probed-edge counts to `edges_visited` when
/// non-null.
bool IsReachable(const RRGraph& rr, VertexId u, const EdgeProbFn& probs,
                 uint64_t* edges_visited);

/// A sampled live edge in global vertex coordinates, before local CSR
/// assembly.
struct GlobalEdgeSample {
  VertexId tail;
  VertexId head;
  EdgeId edge;
  float threshold;  // c(e)
};

/// Assembles an RRGraph from a vertex set and sampled live edges (used by
/// both GenerateRRGraph and delay materialization, which recovers graphs
/// at query time). Edges with an endpoint outside `vertices` are dropped.
RRGraph AssembleRRGraph(VertexId root, std::vector<VertexId> vertices,
                        std::span<const GlobalEdgeSample> edges);

/// Inverse of AssembleRRGraph: the graph's live edges back in global
/// vertex coordinates (used by incremental index repair).
std::vector<GlobalEdgeSample> DecomposeRRGraph(const RRGraph& rr);

}  // namespace pitex

#endif  // PITEX_SRC_INDEX_RR_GRAPH_H_
