// RR-Graph: the reverse-reachable sample graph of Definition 2, plus the
// tag-aware reachability check of Definition 3.
//
// An RR-Graph for root v is a reverse IC sample drawn under the envelope
// probabilities p(e) = max_z p(e|z). Every kept edge carries the threshold
// c(e) it was sampled with; conditioned on the edge being live, c(e) is
// uniform on [0, p(e)). At query time the edge is live for tag set W iff
// p(e|W) >= c(e) — so one offline sample serves every query user and
// every tag set, and the spread is never underestimated (p(e) >= p(e|W)).
//
// Two representations exist:
//   * RRGraph owns its storage. It is the unit of generation, dynamic
//     repair and delayed recovery — anything that builds or mutates one
//     sketch at a time.
//   * RRView is a non-owning std::span view. The estimate hot path only
//     ever reads sketches, so it runs on views — either over an RRGraph
//     or, for the offline index, over the pooled CSR-of-CSRs store
//     (src/index/rr_sketch_pool.h) that keeps all theta sketches in three
//     contiguous arrays.
// Reachability scratch (visited stamps + DFS stack) lives in a reusable
// EstimateScratch so repeated IsReachable calls allocate nothing once the
// scratch has grown to the largest sketch.

#ifndef PITEX_SRC_INDEX_RR_GRAPH_H_
#define PITEX_SRC_INDEX_RR_GRAPH_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "src/sampling/influence_estimator.h"
#include "src/util/random.h"
#include "src/util/thread_annotations.h"

namespace pitex {

/// One edge of a sketch's local CSR out-adjacency.
struct RRLocalEdge {
  uint32_t head_local;  // index into the sketch's vertex array
  EdgeId edge;          // global EdgeId (for p(e|W) lookups)
  float threshold;      // c(e)
};

/// Non-owning view of one reverse-reachable sample graph. Vertices are
/// sorted; edges are a local CSR out-adjacency so tag-aware reachability
/// is a forward BFS from the query user towards the root. The spans may
/// point into an owning RRGraph or into an RrSketchPool.
struct RRView {
  VertexId root = 0;
  std::span<const VertexId> vertices;   // sorted ascending
  std::span<const uint32_t> offsets;    // CSR over local tails
  std::span<const RRLocalEdge> edges;

  /// Local index of global vertex v, or nullopt if absent.
  std::optional<uint32_t> LocalIndex(VertexId v) const;
};

/// One materialized, storage-owning reverse-reachable sample graph.
struct RRGraph {
  using LocalEdge = RRLocalEdge;

  VertexId root = 0;
  std::vector<VertexId> vertices;   // sorted ascending
  std::vector<uint32_t> offsets;    // CSR over local tails
  std::vector<RRLocalEdge> edges;

  /// Non-owning view over this graph (valid while the graph is alive and
  /// unmodified). Implicit so every RRView consumer accepts an RRGraph.
  RRView View() const {
    return RRView{root, vertices, offsets, edges};
  }
  operator RRView() const { return View(); }  // NOLINT(runtime/explicit)

  /// Local index of global vertex v, or nullopt if absent.
  std::optional<uint32_t> LocalIndex(VertexId v) const {
    return View().LocalIndex(v);
  }

  /// Approximate in-memory footprint.
  size_t SizeBytes() const;
};

/// Reusable traversal scratch for IsReachable: an epoch-stamped visited
/// array (no clearing between calls) plus the DFS stack. Grows to the
/// largest sketch it has seen, then stays allocation-free. Not
/// thread-safe; use one instance per thread.
class EstimateScratch {
 public:
  /// Pre-sizes the visited array for sketches of up to `max_vertices`
  /// local vertices (optional; the scratch also grows on demand).
  void Reserve(size_t max_vertices);

 private:
  friend bool IsReachable(const RRView&, VertexId, const EdgeProbFn&,
                          uint64_t*, EstimateScratch*);

  std::vector<uint32_t> visited_;  // visited_[i] == epoch_ <=> visited
  std::vector<uint32_t> stack_;
  uint32_t epoch_ = 0;
};

/// Samples one RR-Graph rooted at `root` (Definition 2): reverse BFS from
/// the root keeping each in-edge with probability p(e); kept edges get
/// c(e) ~ U[0, p(e)). Implemented on the arena generation core
/// (src/index/sketch_arena.h): envelopes are float (rounded up, so the
/// envelope invariant holds), the Bernoulli coin doubles as the threshold
/// draw, and low-probability in-edge runs are probed with geometric
/// skips. Draws are bit-identical to the table-backed bulk build.
RRGraph GenerateRRGraph(const Graph& graph, const InfluenceGraph& influence,
                        VertexId root, Rng* rng);

/// Definition 3: true iff `u` reaches the root of `rr` along edges with
/// probs.Prob(e) >= c(e). Adds probed-edge counts to `edges_visited` when
/// non-null. Uses `scratch` for the visited stamps and stack: zero
/// allocations once the scratch has warmed up.
PITEX_NOALLOC bool IsReachable(const RRView& rr, VertexId u,
                               const EdgeProbFn& probs,
                               uint64_t* edges_visited,
                               EstimateScratch* scratch);

/// Convenience overload with call-local scratch (tests, one-off checks).
bool IsReachable(const RRView& rr, VertexId u, const EdgeProbFn& probs,
                 uint64_t* edges_visited);

/// A sampled live edge in global vertex coordinates, before local CSR
/// assembly.
struct GlobalEdgeSample {
  VertexId tail;
  VertexId head;
  EdgeId edge;
  float threshold;  // c(e)
};

/// Assembles an RRGraph from a vertex set and sampled live edges (used by
/// both GenerateRRGraph and delay materialization, which recovers graphs
/// at query time). Edges with an endpoint outside `vertices` are dropped.
RRGraph AssembleRRGraph(VertexId root, std::vector<VertexId> vertices,
                        std::span<const GlobalEdgeSample> edges);

/// Inverse of AssembleRRGraph: the graph's live edges back in global
/// vertex coordinates (used by incremental index repair).
std::vector<GlobalEdgeSample> DecomposeRRGraph(const RRGraph& rr);

/// Non-allocating variant: clears and fills `*edges`, reusing capacity
/// (the repair hot path decomposes one sketch per affected graph).
void DecomposeRRGraphInto(const RRGraph& rr,
                          std::vector<GlobalEdgeSample>* edges);

}  // namespace pitex

#endif  // PITEX_SRC_INDEX_RR_GRAPH_H_
