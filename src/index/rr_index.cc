#include "src/index/rr_index.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "src/util/chernoff.h"
#include "src/util/check.h"
#include "src/util/timer.h"

namespace pitex {

double RrIndex::TheoreticalTheta(const RrIndexOptions& options,
                                 size_t num_vertices, size_t num_tags) {
  const double log_terms = std::log(options.delta) +
                           LogPhi(static_cast<int64_t>(num_tags),
                                  options.cap_k) +
                           std::log(2.0);
  return (2.0 + options.eps) / (options.eps * options.eps) *
         static_cast<double>(num_vertices) * log_terms;
}

RrIndex::RrIndex(const SocialNetwork& network, const RrIndexOptions& options)
    : network_(network), options_(options) {
  if (options_.theta_override > 0) {
    theta_ = options_.theta_override;
  } else {
    const double theta =
        options_.theta_per_vertex *
        static_cast<double>(network.num_vertices());
    theta_ = std::min<uint64_t>(
        options_.max_theta,
        std::max<uint64_t>(64, static_cast<uint64_t>(std::llround(theta))));
  }
}

std::unique_ptr<RrIndex> RrIndex::FromPool(const SocialNetwork& network,
                                           const RrIndexOptions& options,
                                           uint64_t theta, RrSketchPool pool) {
  PITEX_CHECK(theta > 0);
  RrIndexOptions adopted = options;
  adopted.theta_override = theta;
  auto index = std::make_unique<RrIndex>(network, adopted);
  index->pool_ = std::move(pool);
  index->built_ = true;
  return index;
}

void RrIndex::Build(ThreadPool* pool) {
  PITEX_CHECK_MSG(!built_, "Build() called twice");
  Timer timer;

  // Arena-staged construction: the envelope table is materialized once
  // (O(|E|)), every worker slot samples straight into its own arena
  // (zero allocations at steady state), and PackFrom flattens the arenas
  // into the pooled store with exactly one copy per sketch.
  const EnvelopeTable envelope(network_.graph, network_.influence);

  // Each sample i owns an independent RNG stream derived from (seed, i),
  // making the index bit-identical regardless of thread count.
  auto generate = [&](SketchArena* arena, size_t i) {
    uint64_t mix = options_.seed ^ (0x9e3779b97f4a7c15ULL * (i + 1));
    Rng rng(SplitMix64(&mix));
    const auto root =
        static_cast<VertexId>(rng.NextBounded(network_.num_vertices()));
    arena->Generate(network_.graph, envelope, root, &rng, i);
  };

  const size_t threads = std::max<size_t>(1, options_.num_build_threads);
  std::unique_ptr<ThreadPool> local_pool;
  if (pool == nullptr && threads > 1 && theta_ >= 2 * threads) {
    local_pool = std::make_unique<ThreadPool>(threads);
    pool = local_pool.get();
  }
  if (pool != nullptr && theta_ >= 2) {
    std::vector<SketchArena> arenas(
        std::min<size_t>(pool->num_threads(), theta_));
    ParallelForSlots(pool, 0, theta_, [&](size_t slot, size_t i) {
      generate(&arenas[slot], i);
    });
    pool_ = RrSketchPool::PackFrom(arenas, theta_, network_.num_vertices(),
                                   pool);
  } else {
    std::vector<SketchArena> arenas(1);
    for (uint64_t i = 0; i < theta_; ++i) generate(&arenas[0], i);
    pool_ = RrSketchPool::PackFrom(arenas, theta_, network_.num_vertices());
  }
  built_ = true;
  build_seconds_ = timer.Seconds();
}

PITEX_NOALLOC Estimate RrIndex::EstimateInfluence(
    VertexId u, const EdgeProbFn& probs, EstimateScratch* scratch) const {
  PITEX_CHECK_MSG(built_, "index not built");
  Estimate result;
  uint64_t hits = 0;
  for (uint32_t id : pool_.Containing(u)) {
    ++result.samples;
    if (IsReachable(pool_.View(id), u, probs, &result.edges_visited,
                    scratch)) {
      ++hits;
    }
  }
  result.influence = static_cast<double>(hits) /
                     static_cast<double>(theta_) *
                     static_cast<double>(network_.num_vertices());
  result.influence = std::max(result.influence, 1.0);
  // Over all theta offline samples, the observation for sample i is
  // |V| * 1[u in graph i and u ~>_W root_i].
  const auto scale = static_cast<double>(network_.num_vertices());
  result.std_error = SampleMeanStdError(
      static_cast<double>(hits) * scale,
      static_cast<double>(hits) * scale * scale, theta_);
  return result;
}

Estimate RrIndex::EstimateInfluence(VertexId u, const EdgeProbFn& probs) {
  // One RrIndex backs many concurrent readers (BatchEngine shares it
  // across workers), so the oracle-interface entry point keeps its
  // scratch per thread: concurrent estimates stay safe and allocation-
  // free without any caller-side plumbing. Pre-sizing to the largest
  // sketch makes the very first walk allocation-free too.
  thread_local EstimateScratch scratch;
  scratch.Reserve(pool_.max_sketch_vertices());
  return EstimateInfluence(u, probs, &scratch);
}

size_t RrIndex::SizeBytes() const {
  return sizeof(RrIndex) - sizeof(RrSketchPool) + pool_.SizeBytes();
}

}  // namespace pitex
