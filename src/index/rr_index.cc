#include "src/index/rr_index.h"

#include <algorithm>
#include <cmath>
#include <thread>

#include "src/util/chernoff.h"
#include "src/util/check.h"
#include "src/util/timer.h"

namespace pitex {

double RrIndex::TheoreticalTheta(const RrIndexOptions& options,
                                 size_t num_vertices, size_t num_tags) {
  const double log_terms = std::log(options.delta) +
                           LogPhi(static_cast<int64_t>(num_tags),
                                  options.cap_k) +
                           std::log(2.0);
  return (2.0 + options.eps) / (options.eps * options.eps) *
         static_cast<double>(num_vertices) * log_terms;
}

RrIndex::RrIndex(const SocialNetwork& network, const RrIndexOptions& options)
    : network_(network), options_(options) {
  if (options_.theta_override > 0) {
    theta_ = options_.theta_override;
  } else {
    const double theta =
        options_.theta_per_vertex *
        static_cast<double>(network.num_vertices());
    theta_ = std::min<uint64_t>(
        options_.max_theta,
        std::max<uint64_t>(64, static_cast<uint64_t>(std::llround(theta))));
  }
}

void RrIndex::Build() {
  PITEX_CHECK_MSG(graphs_.empty(), "Build() called twice");
  Timer timer;
  graphs_.resize(theta_);
  containing_.assign(network_.num_vertices(), {});

  // Each sample i owns an independent RNG stream derived from (seed, i),
  // making the index bit-identical regardless of thread count.
  auto generate_range = [&](uint64_t begin, uint64_t end) {
    for (uint64_t i = begin; i < end; ++i) {
      uint64_t mix = options_.seed ^ (0x9e3779b97f4a7c15ULL * (i + 1));
      Rng rng(SplitMix64(&mix));
      const auto root =
          static_cast<VertexId>(rng.NextBounded(network_.num_vertices()));
      graphs_[i] =
          GenerateRRGraph(network_.graph, network_.influence, root, &rng);
    }
  };

  const size_t threads = std::max<size_t>(1, options_.num_build_threads);
  if (threads == 1 || theta_ < 2 * threads) {
    generate_range(0, theta_);
  } else {
    std::vector<std::thread> workers;
    const uint64_t chunk = (theta_ + threads - 1) / threads;
    for (size_t t = 0; t < threads; ++t) {
      const uint64_t begin = t * chunk;
      const uint64_t end = std::min<uint64_t>(theta_, begin + chunk);
      if (begin >= end) break;
      workers.emplace_back(generate_range, begin, end);
    }
    for (auto& w : workers) w.join();
  }

  for (uint32_t id = 0; id < graphs_.size(); ++id) {
    for (VertexId v : graphs_[id].vertices) containing_[v].push_back(id);
  }
  build_seconds_ = timer.Seconds();
}

Estimate RrIndex::EstimateInfluence(VertexId u, const EdgeProbFn& probs) {
  PITEX_CHECK_MSG(!graphs_.empty() || theta_ == 0, "index not built");
  Estimate result;
  uint64_t hits = 0;
  for (uint32_t id : containing_[u]) {
    ++result.samples;
    if (IsReachable(graphs_[id], u, probs, &result.edges_visited)) ++hits;
  }
  result.influence = static_cast<double>(hits) /
                     static_cast<double>(theta_) *
                     static_cast<double>(network_.num_vertices());
  result.influence = std::max(result.influence, 1.0);
  // Over all theta offline samples, the observation for sample i is
  // |V| * 1[u in graph i and u ~>_W root_i].
  const auto scale = static_cast<double>(network_.num_vertices());
  result.std_error = SampleMeanStdError(
      static_cast<double>(hits) * scale,
      static_cast<double>(hits) * scale * scale, theta_);
  return result;
}

size_t RrIndex::SizeBytes() const {
  size_t bytes = sizeof(RrIndex);
  for (const auto& rr : graphs_) bytes += rr.SizeBytes();
  for (const auto& list : containing_) {
    bytes += list.capacity() * sizeof(uint32_t) + sizeof(list);
  }
  return bytes;
}

}  // namespace pitex
