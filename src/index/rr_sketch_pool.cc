#include "src/index/rr_sketch_pool.h"

#include <algorithm>

#include "src/util/check.h"

namespace pitex {

RrSketchPool RrSketchPool::Pack(std::span<const RRGraph> graphs,
                                size_t num_vertices) {
  RrSketchPool pool;
  const size_t s = graphs.size();
  pool.roots_.resize(s);
  pool.vertex_starts_.assign(s + 1, 0);
  pool.edge_starts_.assign(s + 1, 0);
  for (size_t i = 0; i < s; ++i) {
    PITEX_DCHECK(graphs[i].offsets.size() == graphs[i].vertices.size() + 1);
    pool.vertex_starts_[i + 1] =
        pool.vertex_starts_[i] + graphs[i].vertices.size();
    pool.edge_starts_[i + 1] = pool.edge_starts_[i] + graphs[i].edges.size();
  }
  pool.vertices_.resize(pool.vertex_starts_[s]);
  pool.offsets_.resize(pool.vertex_starts_[s] + s);
  pool.edges_.resize(pool.edge_starts_[s]);
  for (size_t i = 0; i < s; ++i) {
    const RRGraph& rr = graphs[i];
    pool.roots_[i] = rr.root;
    std::copy(rr.vertices.begin(), rr.vertices.end(),
              pool.vertices_.begin() +
                  static_cast<ptrdiff_t>(pool.vertex_starts_[i]));
    std::copy(rr.offsets.begin(), rr.offsets.end(),
              pool.offsets_.begin() +
                  static_cast<ptrdiff_t>(pool.vertex_starts_[i] + i));
    std::copy(rr.edges.begin(), rr.edges.end(),
              pool.edges_.begin() +
                  static_cast<ptrdiff_t>(pool.edge_starts_[i]));
  }
  pool.BuildContaining(num_vertices);
  return pool;
}

void RrSketchPool::BuildContaining(size_t num_vertices) {
  // Counting pass: theta(u) per vertex, then prefix sums, then one fill
  // in ascending sketch-id order (so each per-vertex list is sorted).
  containing_starts_.assign(num_vertices + 1, 0);
  for (const VertexId v : vertices_) ++containing_starts_[v + 1];
  for (size_t v = 0; v < num_vertices; ++v) {
    containing_starts_[v + 1] += containing_starts_[v];
  }
  containing_.resize(vertices_.size());
  std::vector<uint64_t> cursor(containing_starts_.begin(),
                               containing_starts_.end() - 1);
  max_sketch_vertices_ = 0;
  for (size_t i = 0; i < num_sketches(); ++i) {
    const uint64_t vb = vertex_starts_[i];
    const uint64_t ve = vertex_starts_[i + 1];
    max_sketch_vertices_ =
        std::max<size_t>(max_sketch_vertices_, ve - vb);
    for (uint64_t j = vb; j < ve; ++j) {
      containing_[cursor[vertices_[j]]++] = static_cast<uint32_t>(i);
    }
  }
}

size_t RrSketchPool::SizeBytes() const {
  return sizeof(RrSketchPool) +
         roots_.capacity() * sizeof(VertexId) +
         vertex_starts_.capacity() * sizeof(uint64_t) +
         vertices_.capacity() * sizeof(VertexId) +
         offsets_.capacity() * sizeof(uint32_t) +
         edge_starts_.capacity() * sizeof(uint64_t) +
         edges_.capacity() * sizeof(RRLocalEdge) +
         containing_starts_.capacity() * sizeof(uint64_t) +
         containing_.capacity() * sizeof(uint32_t);
}

}  // namespace pitex
