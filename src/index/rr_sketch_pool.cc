#include "src/index/rr_sketch_pool.h"

#include <algorithm>
#include <utility>

#include "src/util/check.h"

namespace pitex {

RrSketchPool RrSketchPool::Pack(std::span<const RRGraph> graphs,
                                size_t num_vertices, ThreadPool* pool) {
  RrSketchPool out;
  const size_t s = graphs.size();
  out.roots_.resize(s);
  out.vertex_starts_.assign(s + 1, 0);
  out.edge_starts_.assign(s + 1, 0);
  for (size_t i = 0; i < s; ++i) {
    PITEX_DCHECK(graphs[i].offsets.size() == graphs[i].vertices.size() + 1);
    out.vertex_starts_[i + 1] =
        out.vertex_starts_[i] + graphs[i].vertices.size();
    out.edge_starts_[i + 1] = out.edge_starts_[i] + graphs[i].edges.size();
  }
  out.vertices_.resize(out.vertex_starts_[s]);
  out.offsets_.resize(out.vertex_starts_[s] + s);
  out.edges_.resize(out.edge_starts_[s]);
  const auto copy_one = [&](size_t i) {
    const RRGraph& rr = graphs[i];
    out.roots_[i] = rr.root;
    std::copy(rr.vertices.begin(), rr.vertices.end(),
              out.vertices_.begin() +
                  static_cast<ptrdiff_t>(out.vertex_starts_[i]));
    std::copy(rr.offsets.begin(), rr.offsets.end(),
              out.offsets_.begin() +
                  static_cast<ptrdiff_t>(out.vertex_starts_[i] + i));
    std::copy(rr.edges.begin(), rr.edges.end(),
              out.edges_.begin() +
                  static_cast<ptrdiff_t>(out.edge_starts_[i]));
  };
  if (pool != nullptr && s >= 2) {
    ParallelFor(pool, 0, s, copy_one);
  } else {
    for (size_t i = 0; i < s; ++i) copy_one(i);
  }
  out.BuildContaining(num_vertices, pool);
  return out;
}

RrSketchPool RrSketchPool::PackFrom(std::span<const SketchArena> arenas,
                                    uint64_t num_sketches,
                                    size_t num_vertices, ThreadPool* pool) {
  RrSketchPool out;
  const size_t s = num_sketches;
  // Pass 1: locate each sample across the arenas and size every pooled
  // array exactly from the arena counters — no growth, no staging.
  std::vector<std::pair<uint32_t, uint32_t>> where(s);
  size_t located = 0;
  for (uint32_t a = 0; a < arenas.size(); ++a) {
    for (uint32_t slot = 0; slot < arenas[a].num_sketches(); ++slot) {
      const uint64_t sample = arenas[a].sample_index(slot);
      PITEX_CHECK_MSG(sample < s, "arena sample index out of range");
      where[sample] = {a, slot};
      ++located;
    }
  }
  PITEX_CHECK_MSG(located == s, "arenas must cover every sample exactly once");

  out.roots_.resize(s);
  out.vertex_starts_.assign(s + 1, 0);
  out.edge_starts_.assign(s + 1, 0);
  for (size_t i = 0; i < s; ++i) {
    const auto [a, slot] = where[i];
    // located == s plus this round-trip rules out duplicate samples
    // silently shadowing a missing one (O(s), negligible vs the copy).
    PITEX_CHECK_MSG(arenas[a].sample_index(slot) == i,
                    "duplicate arena sample index");
    out.roots_[i] = arenas[a].root(slot);
    out.vertex_starts_[i + 1] =
        out.vertex_starts_[i] + arenas[a].sketch_vertices(slot);
    out.edge_starts_[i + 1] =
        out.edge_starts_[i] + arenas[a].sketch_edges(slot);
  }
  out.vertices_.resize(out.vertex_starts_[s]);
  out.offsets_.resize(out.vertex_starts_[s] + s);
  out.edges_.resize(out.edge_starts_[s]);

  // Pass 2: copy each sketch's segments once, straight arena -> pool.
  const auto copy_one = [&](size_t i) {
    const auto [a, slot] = where[i];
    const RRView rr = arenas[a].View(slot);
    std::copy(rr.vertices.begin(), rr.vertices.end(),
              out.vertices_.begin() +
                  static_cast<ptrdiff_t>(out.vertex_starts_[i]));
    std::copy(rr.offsets.begin(), rr.offsets.end(),
              out.offsets_.begin() +
                  static_cast<ptrdiff_t>(out.vertex_starts_[i] + i));
    std::copy(rr.edges.begin(), rr.edges.end(),
              out.edges_.begin() +
                  static_cast<ptrdiff_t>(out.edge_starts_[i]));
  };
  if (pool != nullptr && s >= 2) {
    ParallelFor(pool, 0, s, copy_one);
  } else {
    for (size_t i = 0; i < s; ++i) copy_one(i);
  }
  out.BuildContaining(num_vertices, pool);
  return out;
}

void RrSketchPool::BuildContaining(size_t num_vertices, ThreadPool* pool) {
  const size_t s = num_sketches();
  max_sketch_vertices_ = 0;
  for (size_t i = 0; i < s; ++i) {
    max_sketch_vertices_ = std::max<size_t>(
        max_sketch_vertices_, vertex_starts_[i + 1] - vertex_starts_[i]);
  }
  containing_starts_.assign(num_vertices + 1, 0);
  containing_.resize(vertices_.size());

  const size_t tasks =
      pool == nullptr
          ? 1
          : std::min<size_t>({pool->num_threads(), s, 8});
  if (tasks <= 1) {
    // Counting pass: theta(u) per vertex, then prefix sums, then one fill
    // in ascending sketch-id order (so each per-vertex list is sorted).
    for (const VertexId v : vertices_) ++containing_starts_[v + 1];
    for (size_t v = 0; v < num_vertices; ++v) {
      containing_starts_[v + 1] += containing_starts_[v];
    }
    std::vector<uint64_t> cursor(containing_starts_.begin(),
                                 containing_starts_.end() - 1);
    for (size_t i = 0; i < s; ++i) {
      for (uint64_t j = vertex_starts_[i]; j < vertex_starts_[i + 1]; ++j) {
        containing_[cursor[vertices_[j]]++] = static_cast<uint32_t>(i);
      }
    }
    return;
  }

  // Parallel variant: contiguous sketch ranges balanced by vertex
  // volume. Each range histograms its vertices; a serial prefix over
  // (range, vertex) turns the histograms into per-range write cursors,
  // so range r fills its sketches (ascending ids) into the slice after
  // every earlier range's entries — per-vertex order is still ascending
  // sketch id, bit-identical to the serial fill. Transient memory is
  // tasks * |V| counters (tasks is capped at 8).
  std::vector<size_t> bounds(tasks + 1, s);
  bounds[0] = 0;
  const uint64_t total = vertices_.size();
  for (size_t t = 1; t < tasks; ++t) {
    const uint64_t target = total * t / tasks;
    bounds[t] = static_cast<size_t>(
        std::lower_bound(vertex_starts_.begin(), vertex_starts_.end(),
                         target) -
        vertex_starts_.begin());
  }
  std::vector<std::vector<uint64_t>> hist(tasks);
  ParallelFor(pool, 0, tasks, [&](size_t t) {
    auto& h = hist[t];
    h.assign(num_vertices, 0);
    for (uint64_t j = vertex_starts_[bounds[t]];
         j < vertex_starts_[bounds[t + 1]]; ++j) {
      ++h[vertices_[j]];
    }
  });
  for (size_t v = 0; v < num_vertices; ++v) {
    uint64_t running = containing_starts_[v];
    for (size_t t = 0; t < tasks; ++t) {
      const uint64_t count = hist[t][v];
      hist[t][v] = running;  // becomes range t's cursor for vertex v
      running += count;
    }
    containing_starts_[v + 1] = running;
  }
  ParallelFor(pool, 0, tasks, [&](size_t t) {
    auto& cursor = hist[t];
    for (size_t i = bounds[t]; i < bounds[t + 1]; ++i) {
      for (uint64_t j = vertex_starts_[i]; j < vertex_starts_[i + 1]; ++j) {
        containing_[cursor[vertices_[j]]++] = static_cast<uint32_t>(i);
      }
    }
  });
}

size_t RrSketchPool::SizeBytes() const {
  return sizeof(RrSketchPool) +
         roots_.capacity() * sizeof(VertexId) +
         vertex_starts_.capacity() * sizeof(uint64_t) +
         vertices_.capacity() * sizeof(VertexId) +
         offsets_.capacity() * sizeof(uint32_t) +
         edge_starts_.capacity() * sizeof(uint64_t) +
         edges_.capacity() * sizeof(RRLocalEdge) +
         containing_starts_.capacity() * sizeof(uint64_t) +
         containing_.capacity() * sizeof(uint32_t);
}

}  // namespace pitex
