// Edge-cut pruning with inverted lists over RR-Graphs (Sec. 6.2) — the
// paper's "IndexEst+".
//
// For a query user u and each RR-Graph containing u, a small edge cut is
// chosen such that u can reach the root only if at least one cut edge is
// live under W. Two candidate cuts are compared (Example 7): u's out-edges
// inside the RR-Graph, and the root's in-edges inside it; the one with the
// higher pruning probability prod_e c(e)/p(e) wins. Cut edges are indexed
// by inverted lists sorted by c(e): given W, scanning a list stops at the
// first entry with c(e) > p(e|W), and every unvisited RR-Graph whose cut
// is entirely dead is pruned without traversal. Surviving candidates are
// verified by the Definition-3 BFS.
//
// Per-user filters are built lazily on first query and cached.

#ifndef PITEX_SRC_INDEX_EDGE_CUT_H_
#define PITEX_SRC_INDEX_EDGE_CUT_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/index/rr_index.h"

namespace pitex {

/// Which edge cut to use as the per-RR-Graph filter. The paper picks the
/// better of the two candidates per graph (Example 7); the fixed policies
/// exist for the ablation bench.
enum class CutPolicy {
  kBestOfTwo,    // paper behaviour: higher pruning probability wins
  kOutEdges,     // always the query user's out-edges
  kRootInEdges,  // always the root's in-edges
};

class PrunedRrIndex final : public InfluenceOracle {
 public:
  /// `base` must outlive this object and be built.
  explicit PrunedRrIndex(const RrIndex* base, const InfluenceGraph* influence,
                         CutPolicy policy = CutPolicy::kBestOfTwo);

  Estimate EstimateInfluence(VertexId u, const EdgeProbFn& probs) override;
  const char* Name() const override { return "INDEXEST+"; }

  /// Statistics from the most recent estimation (for Fig. 7 analysis).
  struct FilterStats {
    uint64_t candidates = 0;
    uint64_t pruned = 0;
  };
  const FilterStats& last_stats() const { return last_stats_; }

 private:
  struct InvertedEntry {
    float threshold;   // c(e) in the owning RR-Graph
    uint32_t graph_id;  // position in the base index
  };
  struct UserFilter {
    /// Distinct cut edges, paralleled by their inverted lists (sorted by
    /// ascending threshold).
    std::vector<EdgeId> cut_edges;
    std::vector<std::vector<InvertedEntry>> lists;
    /// RR-Graphs rooted at u itself: always reachable, never filtered.
    std::vector<uint32_t> trivial;
    uint64_t num_graphs = 0;
  };

  const UserFilter& FilterFor(VertexId u);

  const RrIndex* base_;
  const InfluenceGraph* influence_;
  CutPolicy policy_;
  std::unordered_map<VertexId, UserFilter> cache_;
  FilterStats last_stats_;
  // Per-instance query scratch (a PrunedRrIndex is per-worker state, like
  // its filter cache): verification BFS scratch plus the surviving-
  // candidate buffer, both reused so estimation stops allocating once
  // warmed up.
  EstimateScratch scratch_;
  std::vector<uint32_t> candidates_;
};

}  // namespace pitex

#endif  // PITEX_SRC_INDEX_EDGE_CUT_H_
