// Arena-staged RR-Graph construction (the build-side counterpart of the
// pooled read-side store in src/index/rr_sketch_pool.h).
//
// The pre-arena build pipeline materialized every sketch as an owning
// RRGraph — three vectors allocated per sketch, an AssembleRRGraph
// sort/copy into a staging vector, and a second full copy when
// RrSketchPool::Pack flattened the staging set. A SketchArena removes
// both the allocations and one of the copies: GenerateRRGraph writes
// each sketch *directly* into the arena's flat segment-coded buffers
// (vertex, local-CSR-offset and edge segments appended back to back),
// reusing epoch-stamped traversal scratch, so steady-state sketch
// generation performs zero heap allocations once the buffers have grown
// to the working-set high-water mark. RrSketchPool::PackFrom then sizes
// the pooled arrays from arena counters and copies each segment exactly
// once.
//
// In-edge probing uses SampleLiveInEdges below: one uniform draw per
// probed edge (the draw doubles as the Bernoulli coin and, on success,
// the threshold c(e) — conditioned on u < p, u is exactly U[0, p)), and
// geometric skips across low-probability in-edge runs (vertex max
// envelope < kGeometricSkipMax): the skip selects each edge as a
// candidate with probability q = vmax, and the candidate's uniform
// thins it to its own envelope p <= q, so the joint law of (live,
// threshold) per edge is exactly the per-edge Bernoulli + uniform of
// Definition 2 while the RNG consumes ~q*d + |live| draws instead of d.
// The draw *sequence* differs from the pre-arena generator, which is
// pinned by tests/index_build_equivalence_test.cc (fixed-seed golden +
// chi-squared spread-distribution agreement with a verbatim reference).

#ifndef PITEX_SRC_INDEX_SKETCH_ARENA_H_
#define PITEX_SRC_INDEX_SKETCH_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "src/index/rr_graph.h"
#include "src/model/influence_graph.h"
#include "src/util/random.h"
#include "src/util/thread_annotations.h"

namespace pitex {

/// Per-vertex envelope maxima below this use geometric-skip probing; at
/// or above it, a plain per-edge loop is cheaper (a skip draw costs a
/// log; it pays off once it jumps ~16 edges on average).
inline constexpr float kGeometricSkipMax = 1.0f / 16.0f;

/// Probes one vertex's in-edge run under float envelope probabilities
/// `env` (aligned with the InEdges span it was built from; `vmax` must
/// be max(env)). Invokes sink(j, u) for every live in-edge index j,
/// where u ~ U[0, env[j]) is the threshold draw. Per-edge law is
/// identical across both regimes (see file comment); only the RNG draw
/// sequence depends on the regime.
template <typename Sink>
PITEX_NOALLOC inline void SampleLiveInEdges(std::span<const float> env, float vmax,
                              Rng* rng, Sink&& sink) {
  const size_t d = env.size();
  if (d == 0 || vmax <= 0.0f) return;
  if (vmax < kGeometricSkipMax) {
    const auto q = static_cast<double>(vmax);
    size_t j = 0;
    while (j < d) {
      const uint64_t skip = rng->NextGeometric(q);  // 1-based candidate
      if (skip > d - j) break;  // next candidate lies beyond the run
      j += static_cast<size_t>(skip) - 1;
      // Thinning: candidate (selected w.p. q) survives w.p. env[j]/q,
      // so it is live w.p. env[j]; conditioned on u*q < env[j], u*q is
      // exactly U[0, env[j]) — the acceptance coin IS the threshold.
      const double u = rng->NextDouble() * q;
      if (u < static_cast<double>(env[j])) sink(j, u);
      ++j;
    }
  } else {
    for (size_t j = 0; j < d; ++j) {
      const auto p = static_cast<double>(env[j]);
      if (p <= 0.0) continue;  // dead for every W, no draw
      const double u = rng->NextDouble();
      if (u < p) sink(j, u);
    }
  }
}

/// Reusable flat storage for a batch of generated sketches plus the
/// traversal/assembly scratch. Not thread-safe: parallel builds use one
/// arena per ParallelForSlots slot. Cleared between builds; capacity is
/// retained, so repeated Generate calls stop allocating once warmed up.
class SketchArena {
 public:
  SketchArena() = default;

  /// Drops all sketches, keeps every buffer's capacity.
  void Clear();

  size_t num_sketches() const { return meta_.size(); }
  /// Build-order sample index recorded at Generate time (PackFrom places
  /// the sketch at this position in the pool).
  uint64_t sample_index(size_t slot) const { return meta_[slot].sample; }
  VertexId root(size_t slot) const { return meta_[slot].root; }
  size_t sketch_vertices(size_t slot) const {
    return VertexEnd(slot) - meta_[slot].vertex_start;
  }
  size_t sketch_edges(size_t slot) const {
    return EdgeEnd(slot) - meta_[slot].edge_start;
  }
  /// Non-owning view of sketch `slot` (valid until the next Generate /
  /// Clear on this arena).
  RRView View(size_t slot) const;

  uint64_t total_vertices() const { return vertices_.size(); }
  uint64_t total_edges() const { return edges_.size(); }
  size_t max_sketch_vertices() const { return max_sketch_vertices_; }

  /// Samples one RR-Graph rooted at `root` (Definition 2) and appends it
  /// to the arena, reading envelopes from the dense table.
  PITEX_NOALLOC void Generate(const Graph& graph,
                              const EnvelopeTable& envelope,
                VertexId root, Rng* rng, uint64_t sample_index);
  /// Table-free overload for one-off callers (tests, delayed repair
  /// expansion seeding): envelope floats are materialized per visited
  /// vertex into arena scratch, producing bit-identical draws to the
  /// table path at ~2x the in-edge memory traffic.
  PITEX_NOALLOC void Generate(const Graph& graph,
                              const InfluenceGraph& influence,
                VertexId root, Rng* rng, uint64_t sample_index);

  /// Copies sketch `slot` into an owning RRGraph, reusing out's vector
  /// capacity (DynamicRrIndex keeps owning per-sketch storage).
  void Export(size_t slot, RRGraph* out) const;

  /// Repair-side assembly (DynamicRrIndex): keeps exactly the vertices
  /// reaching `root` through `edges` (tail -> head), drops edges with a
  /// dropped endpoint, and writes the re-closed sketch into *out reusing
  /// its capacity. Byte-identical to ReachingRoot + AssembleRRGraph on
  /// the same inputs, with arena scratch instead of per-call hash maps.
  /// `num_vertices` is the global vertex universe.
  PITEX_NOALLOC void RebuildRepairedSketch(VertexId root,
                                           size_t num_vertices,
                             std::span<const GlobalEdgeSample> edges,
                             RRGraph* out);

 private:
  struct Meta {
    uint64_t sample = 0;
    VertexId root = 0;
    uint64_t vertex_start = 0;
    uint64_t offset_start = 0;
    uint64_t edge_start = 0;
  };

  uint64_t VertexEnd(size_t slot) const {
    return slot + 1 < meta_.size() ? meta_[slot + 1].vertex_start
                                   : vertices_.size();
  }
  uint64_t EdgeEnd(size_t slot) const {
    return slot + 1 < meta_.size() ? meta_[slot + 1].edge_start
                                   : edges_.size();
  }

  /// Starts a new traversal over `num_vertices` global ids; returns the
  /// epoch stamp marking "touched in this traversal".
  uint32_t BeginTraversal(size_t num_vertices);

  template <typename EnvOf>
  PITEX_NOALLOC void GenerateImpl(const Graph& graph, const EnvOf& env_of, VertexId root,
                    Rng* rng, uint64_t sample_index);

  // Sketch storage: segments appended back to back, one Meta per sketch.
  std::vector<Meta> meta_;
  std::vector<VertexId> vertices_;   // sorted ascending per sketch
  std::vector<uint32_t> offsets_;    // local CSR, n_i + 1 entries each
  std::vector<RRLocalEdge> edges_;   // counting-sorted by local tail
  size_t max_sketch_vertices_ = 0;

  // Traversal / assembly scratch (epoch-stamped over global vertex ids:
  // no O(|V|) clearing between sketches).
  std::vector<uint32_t> mark_;
  std::vector<uint32_t> local_index_;  // valid where mark_ == epoch_
  uint32_t epoch_ = 0;
  std::vector<VertexId> stack_;
  std::vector<GlobalEdgeSample> staged_;  // one sketch's live edges
  std::vector<uint32_t> counts_;          // counting-sort cursors
  std::vector<float> env_scratch_;        // table-free envelope slice
  // RebuildRepairedSketch scratch (local-id space of one sketch).
  std::vector<VertexId> cand_;
  std::vector<uint32_t> adj_;
  std::vector<uint8_t> reach_;
};

}  // namespace pitex

#endif  // PITEX_SRC_INDEX_SKETCH_ARENA_H_
