// Figure 14 (Appendix D): query efficiency when varying the confidence
// parameter delta in {10, 100, 1000, 10000}.
//
// Expected shape (paper): running time grows only logarithmically with
// delta (Eq. 2's sample size is proportional to log delta); the index
// methods keep their orders-of-magnitude lead at every delta.

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  pitex::bench::InitBench(argc, argv);
  using namespace pitex;
  using namespace pitex::bench;

  const size_t k = 2;
  const size_t queries = BenchQueries();
  std::printf("=== Fig 14: vary delta ===\n");
  std::printf("mid user group, k=%zu, eps=0.7\n", k);

  for (const auto& d : MakeBenchDatasets()) {
    std::printf("\n[%s]\n", d.name.c_str());
    std::printf("%-10s %8s %14s\n", "method", "delta", "time(s)");
    const auto users =
        SampleUserGroup(d.network.graph, UserGroup::kMid, queries, 17);
    for (Method method : OfflineComparisonMethods()) {
      for (double delta : {10.0, 100.0, 1000.0, 10000.0}) {
        EngineOptions options = BenchOptions(method);
        options.delta = delta;
        options.max_samples = 4096;
        PitexEngine engine(&d.network, options);
        engine.BuildIndex();
        const QuerySetResult r = RunQuerySet(&engine, users, k);
        std::printf("%-10s %8.0f %14.4f\n", MethodName(method), delta,
                    r.avg_seconds);
      }
    }
  }
  std::printf(
      "\nshape check: time grows ~log(delta), not explosively; index "
      "methods dominate at every delta.\n");
  return 0;
}
