// Figure 13 (Appendix D): number of edges visited by the online sampling
// methods (RR, MC, LAZY) per user group.
//
// Expected shape (paper): high-degree users cost more probes everywhere;
// MC and RR trade places across datasets (their ratio tracks
// E[I(u~>v_ot)] / E[I(v_in~>v*)]); LAZY probes >= 10x fewer edges than
// both.

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  pitex::bench::InitBench(argc, argv);
  using namespace pitex;
  using namespace pitex::bench;

  const size_t k = 2;
  const size_t queries = BenchQueries();
  std::printf("=== Fig 13: edges visited by online sampling ===\n");
  std::printf("k=%zu, eps=0.7, delta=1000\n", k);

  const std::vector<Method> online = {Method::kRr, Method::kMc,
                                      Method::kLazy};
  for (const auto& d : MakeBenchDatasets()) {
    std::printf("\n[%s]\n", d.name.c_str());
    std::printf("%-10s %-6s %18s\n", "method", "group", "edges visited");
    for (Method method : online) {
      PitexEngine engine(&d.network, BenchOptions(method));
      for (UserGroup group : AllGroups()) {
        const auto users =
            SampleUserGroup(d.network.graph, group, queries, 17);
        const QuerySetResult r = RunQuerySet(&engine, users, k);
        std::printf("%-10s %-6s %18.0f\n", MethodName(method),
                    UserGroupName(group), r.avg_edges_visited);
      }
    }
  }
  std::printf(
      "\nshape check: LAZY visits ~an order of magnitude fewer edges than "
      "MC and RR in every group.\n");
  return 0;
}
