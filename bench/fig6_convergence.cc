// Figure 6: empirical convergence of sampling-based influence estimation.
//
// For each dataset: take the user with the largest out-degree and its most
// influential single tag, then estimate the influence spread with
// MC / RR / Lazy at increasing sample counts theta_W. Expected shape:
// all three estimators converge to the same value, with MC/Lazy settling
// at smaller theta_W than RR (Bernoulli samples are the Chernoff worst
// case).

#include "bench/bench_common.h"
#include "src/sampling/lazy_sampler.h"
#include "src/sampling/mc_sampler.h"
#include "src/sampling/rr_sampler.h"

namespace {

using namespace pitex;

// Forces an exact sample count (no early stop, no Eq.-2 cap).
SampleSizePolicy FixedPolicy(uint64_t theta) {
  SampleSizePolicy policy;
  policy.eps = 1e-6;  // threshold effectively unreachable
  policy.delta = 1e12;
  policy.num_tags = 1;
  policy.k = 1;
  policy.min_samples = theta;
  policy.max_samples = theta;
  return policy;
}

VertexId MaxOutDegreeUser(const Graph& g) {
  VertexId best = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (g.OutDegree(v) > g.OutDegree(best)) best = v;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  pitex::bench::InitBench(argc, argv);
  using namespace pitex::bench;

  std::printf("=== Fig 6: sampling convergence (influence vs theta_W) ===\n");
  for (const auto& d : MakeBenchDatasets()) {
    const VertexId user = MaxOutDegreeUser(d.network.graph);

    // Most influential single tag, judged by a high-sample Lazy pass.
    TagId best_tag = 0;
    double best_inf = -1.0;
    LazySampler probe(d.network.graph, FixedPolicy(2000), 19);
    for (TagId w = 0; w < d.network.topics.num_tags(); ++w) {
      const TagId tags[] = {w};
      const auto post = d.network.topics.Posterior(tags);
      const PosteriorProbs probs(d.network.influence, post);
      const double inf = probe.EstimateInfluence(user, probs).influence;
      if (inf > best_inf) {
        best_inf = inf;
        best_tag = w;
      }
    }
    const TagId tags[] = {best_tag};
    const auto post = d.network.topics.Posterior(tags);
    const PosteriorProbs probs(d.network.influence, post);

    std::printf("\n[%s] user=%u (out-degree %zu), tag=%u\n", d.name.c_str(),
                user, d.network.graph.OutDegree(user), best_tag);
    std::printf("%10s %12s %12s %12s\n", "theta_W", "MC", "RR", "LAZY");
    for (uint64_t theta : {100ull, 1000ull, 10000ull, 100000ull}) {
      McSampler mc(d.network.graph, FixedPolicy(theta), 5);
      RrSampler rr(d.network.graph, FixedPolicy(theta), 5);
      LazySampler lazy(d.network.graph, FixedPolicy(theta), 5);
      std::printf("%10llu %12.3f %12.3f %12.3f\n",
                  static_cast<unsigned long long>(theta),
                  mc.EstimateInfluence(user, probs).influence,
                  rr.EstimateInfluence(user, probs).influence,
                  lazy.EstimateInfluence(user, probs).influence);
    }
  }
  std::printf(
      "\nshape check: all columns converge to the same value; MC/LAZY "
      "stabilize at smaller theta than RR.\n");
  return 0;
}
