// Table 4: the case study — PITEX answers for eight researchers on the
// dblp-style co-authorship network, scored against planted ground truth
// (the offline stand-in for the paper's human annotators; see DESIGN.md).
//
// Expected shape (paper): per-researcher accuracies in the 0.6-0.95 band,
// average around 0.78 — judged by human annotators. Against *planted*
// ground truth (every tag with topic support on the researcher's areas;
// see src/datasets/case_study.cc) recovery is near-perfect by
// construction, so accuracies here should sit at ~1.0; the interesting
// output is the tag mix, which — like the paper's Table 4 — blends the
// area's own keywords with related ones carried by secondary topic
// support.

#include <string>

#include "bench/bench_common.h"
#include "src/datasets/case_study.h"

int main(int argc, char** argv) {
  pitex::bench::InitBench(argc, argv);
  using namespace pitex;

  std::printf("=== Table 4: case study (k = 5) ===\n\n");
  const CaseStudyData data = GenerateCaseStudy({});

  EngineOptions options;
  options.method = Method::kLazy;
  options.eps = 0.4;
  options.min_samples = 1000;
  options.max_samples = 6000;
  PitexEngine engine(&data.network, options);

  std::printf("%-14s %-55s %s\n", "researcher", "inferential tags",
              "accuracy");
  double total = 0.0;
  for (const auto& researcher : data.researchers) {
    const PitexResult result =
        engine.Explore({.user = researcher.vertex, .k = 5});
    std::string tags;
    for (TagId w : result.tags) {
      if (!tags.empty()) tags += ", ";
      tags += data.network.tags.Name(w);
    }
    const double accuracy =
        CaseStudyAccuracy(result.tags, researcher.ground_truth);
    total += accuracy;
    std::printf("%-14s %-55s %.2f\n", researcher.name.c_str(), tags.c_str(),
                accuracy);
  }
  std::printf("\naverage accuracy: %.2f (paper: 0.78)\n",
              total / static_cast<double>(data.researchers.size()));
  return 0;
}
