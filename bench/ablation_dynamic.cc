// Ablation: incremental index repair vs. full rebuild under influence
// model updates.
//
// Not a paper figure — the paper builds its index once offline (Table 3)
// and Sec. 2 notes reliability indexes assume fixed graphs. This
// harness measures what DynamicRrIndex buys when p(e|z) drifts: repair
// cost grows with the number of affected RR-Graphs (theta(head) per
// updated edge, small on average by the power-law argument of Lemma 9),
// while a rebuild always pays the full Table-3 construction time.
// Expected shape: repair is orders of magnitude cheaper for small update
// batches and approaches rebuild cost as the batch saturates the index.

#include "bench/bench_common.h"
#include "src/index/dynamic_index.h"
#include "src/util/random.h"

int main(int argc, char** argv) {
  pitex::bench::InitBench(argc, argv);
  using namespace pitex;
  using namespace pitex::bench;

  std::printf("=== Ablation: incremental repair vs full rebuild ===\n\n");
  std::printf("%-10s %8s | %12s %12s %10s | %12s %8s\n", "dataset", "updates",
              "repair(s)", "rebuild(s)", "speedup", "examined", "frac");

  for (const auto& d : MakeBenchDatasets()) {
    RrIndexOptions options;
    options.theta_per_vertex = 4.0;
    options.seed = 7;

    for (const size_t batch : {1, 10, 100, 1000}) {
      DynamicRrIndex dynamic_index(d.network, options);
      dynamic_index.Build();

      // Random re-learned entries for `batch` distinct edges.
      Rng rng(19);
      std::vector<EdgeInfluenceUpdate> updates;
      updates.reserve(batch);
      for (size_t i = 0; i < batch; ++i) {
        EdgeInfluenceUpdate update;
        update.edge =
            static_cast<EdgeId>(rng.NextBounded(d.network.num_edges()));
        update.entries = {
            {static_cast<TopicId>(
                 rng.NextBounded(d.network.topics.num_topics())),
             0.05 + 0.4 * rng.NextDouble()}};
        updates.push_back(std::move(update));
      }

      Timer repair_timer;
      dynamic_index.ApplyUpdates(updates);
      const double repair = repair_timer.Seconds();

      Timer rebuild_timer;
      RrIndex rebuilt(dynamic_index.network(), options);
      rebuilt.Build();
      const double rebuild = rebuild_timer.Seconds();

      const auto& stats = dynamic_index.stats();
      std::printf("%-10s %8zu | %12.4f %12.4f %9.1fx | %12llu %7.1f%%\n",
                  d.name.c_str(), batch, repair, rebuild,
                  rebuild / std::max(repair, 1e-9),
                  static_cast<unsigned long long>(stats.graphs_examined),
                  100.0 * static_cast<double>(stats.graphs_examined) /
                      static_cast<double>(dynamic_index.num_graphs()));
    }
  }
  std::printf(
      "\nshape check: repair speedup should be largest for single-edge "
      "updates and\nshrink as the batch touches most RR-Graphs.\n");
  return 0;
}
