// Ablation: edge-cut selection policy for IndexEst+ (Sec. 6.2).
//
// The paper compares two candidate cuts per RR-Graph (the query user's
// out-edges vs the root's in-edges) and keeps the one with the higher
// pruning probability (Example 7). This bench quantifies what that choice
// buys: candidates surviving the filter and verification edge probes for
// each fixed policy vs best-of-two.

#include "bench/bench_common.h"
#include "src/index/edge_cut.h"

int main(int argc, char** argv) {
  pitex::bench::InitBench(argc, argv);
  using namespace pitex;
  using namespace pitex::bench;

  const size_t queries = BenchQueries();
  std::printf("=== Ablation: edge-cut policy for INDEXEST+ ===\n");
  std::printf("%-10s %-12s %14s %14s %16s\n", "dataset", "policy",
              "time(s)", "candidates", "edges probed");

  struct Policy {
    CutPolicy policy;
    const char* name;
  };
  const Policy policies[] = {
      {CutPolicy::kOutEdges, "out-edges"},
      {CutPolicy::kRootInEdges, "root-in"},
      {CutPolicy::kBestOfTwo, "best-of-two"},
  };

  for (const auto& d : MakeBenchDatasets()) {
    RrIndexOptions options;
    options.theta_per_vertex = 4.0;
    options.seed = 7;
    RrIndex base(d.network, options);
    base.Build();

    const auto users =
        SampleUserGroup(d.network.graph, UserGroup::kMid, queries, 17);
    Rng tag_rng(23);
    for (const Policy& p : policies) {
      PrunedRrIndex pruned(&base, &d.network.influence, p.policy);
      RunningStats seconds, candidates, edges;
      for (VertexId u : users) {
        for (int trial = 0; trial < 10; ++trial) {
          const TagId tags[] = {
              static_cast<TagId>(
                  tag_rng.NextBounded(d.network.topics.num_tags())),
          };
          const auto post = d.network.topics.Posterior(tags);
          const PosteriorProbs probs(d.network.influence, post);
          Timer timer;
          const Estimate est = pruned.EstimateInfluence(u, probs);
          seconds.Add(timer.Seconds());
          candidates.Add(static_cast<double>(pruned.last_stats().candidates));
          edges.Add(static_cast<double>(est.edges_visited));
        }
      }
      std::printf("%-10s %-12s %14.6f %14.1f %16.1f\n", d.name.c_str(),
                  p.name, seconds.mean(), candidates.mean(), edges.mean());
    }
  }
  std::printf(
      "\nshape check: best-of-two admits the fewest candidates / probes "
      "the fewest edges of the three policies.\n");
  return 0;
}
