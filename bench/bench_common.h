// Shared helpers for the paper-reproduction benchmark harnesses.
//
// Every bench binary runs argument-free at laptop scale: the four Table-2
// dataset analogs are generated at reduced |V| and |Omega| so each binary
// finishes in seconds-to-minutes on two cores, while preserving the
// *relative* shapes the paper's plots depend on (lastfm smallest/densest
// degree, twitter largest/sparsest, per-dataset tag-topic densities).
// Environment knobs:
//   PITEX_BENCH_SCALE    multiplies |V| of every dataset (default 1.0)
//   PITEX_BENCH_QUERIES  queries per user group            (default 3)
// CLI flags (parsed by InitBench):
//   --smoke              shrink datasets ~10x and run one query per group
//                        so the full code path finishes in seconds; this
//                        is what the bench_smoke_* CTest entries run

#ifndef PITEX_BENCH_BENCH_COMMON_H_
#define PITEX_BENCH_BENCH_COMMON_H_

#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "src/core/engine.h"
#include "src/datasets/synthetic.h"
#include "src/util/stats.h"
#include "src/util/timer.h"

namespace pitex::bench {

inline bool& SmokeMode() {
  static bool smoke = false;
  return smoke;
}

/// Parses the common bench CLI flags; every bench main calls this first.
inline void InitBench(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      SmokeMode() = true;
    } else {
      std::fprintf(stderr, "unknown flag %s (supported: --smoke)\n", argv[i]);
      std::exit(2);
    }
  }
  if (SmokeMode()) std::printf("[smoke mode: ~10x smaller datasets]\n");
}

inline double BenchScale() {
  const char* env = std::getenv("PITEX_BENCH_SCALE");
  double scale = env != nullptr ? std::atof(env) : 1.0;
  if (SmokeMode()) scale *= 0.1;
  return scale;
}

inline size_t BenchQueries() {
  if (SmokeMode()) return 1;
  const char* env = std::getenv("PITEX_BENCH_QUERIES");
  return env != nullptr ? static_cast<size_t>(std::atoi(env)) : 3;
}

struct BenchDataset {
  std::string name;
  DatasetSpec spec;
  SocialNetwork network;
};

/// Bench-scale specs: Table-2 relative shapes, reduced sizes. The paper's
/// tag-topic densities (0.16 / 0.08 / 0.32 / 0.17) are preserved because
/// they drive best-effort pruning (Sec. 7.3).
inline std::vector<DatasetSpec> BenchSpecs() {
  const double s = BenchScale();
  DatasetSpec lastfm = LastfmSpec(0.5 * s);   // ~650 vertices
  lastfm.num_tags = 20;
  lastfm.num_topics = 10;

  DatasetSpec diggs = DiggsSpec(0.1 * s);     // ~1500 vertices
  diggs.num_tags = 20;
  diggs.num_topics = 10;

  DatasetSpec dblp = DblpSpec(0.006 * s);     // ~3000 vertices
  dblp.num_tags = 36;
  dblp.num_topics = 9;

  DatasetSpec twitter = TwitterSpec(0.0005 * s);  // ~5000 vertices
  twitter.num_tags = 30;
  twitter.num_topics = 15;
  return {lastfm, diggs, dblp, twitter};
}

inline std::vector<BenchDataset> MakeBenchDatasets() {
  std::vector<BenchDataset> datasets;
  for (const DatasetSpec& spec : BenchSpecs()) {
    BenchDataset d;
    d.name = spec.name;
    d.spec = spec;
    d.network = GenerateDataset(spec);
    datasets.push_back(std::move(d));
  }
  return datasets;
}

/// Engine options tuned for bench latency (the accuracy knobs match the
/// paper defaults eps = 0.7, delta = 1000 unless a sweep overrides them).
inline EngineOptions BenchOptions(Method method) {
  EngineOptions options;
  options.method = method;
  options.eps = 0.7;
  options.delta = 1000.0;
  options.min_samples = 32;
  options.max_samples = 512;
  options.index_theta_per_vertex = 4.0;
  options.seed = 7;
  return options;
}

struct QuerySetResult {
  double avg_seconds = 0.0;
  double avg_influence = 0.0;
  double avg_edges_visited = 0.0;
};

/// Runs one PITEX query per user and averages time/influence/edge-visits.
inline QuerySetResult RunQuerySet(PitexEngine* engine,
                                  const std::vector<VertexId>& users,
                                  size_t k) {
  QuerySetResult out;
  if (users.empty()) return out;
  RunningStats seconds, influence, edges;
  for (VertexId u : users) {
    Timer timer;
    const PitexResult r = engine->Explore({.user = u, .k = k});
    seconds.Add(timer.Seconds());
    influence.Add(r.influence);
    edges.Add(static_cast<double>(r.edges_visited));
  }
  out.avg_seconds = seconds.mean();
  out.avg_influence = influence.mean();
  out.avg_edges_visited = edges.mean();
  return out;
}

inline const std::vector<Method>& AllMethods() {
  static const std::vector<Method> methods = {
      Method::kRr,       Method::kMc,           Method::kLazy,
      Method::kTim,      Method::kIndexEst,     Method::kIndexEstPlus,
      Method::kDelayMat};
  return methods;
}

/// The subset the paper plots after Fig. 8 ("we only compare Lazy with
/// other offline solutions in the remaining part").
inline const std::vector<Method>& OfflineComparisonMethods() {
  static const std::vector<Method> methods = {
      Method::kLazy, Method::kIndexEst, Method::kIndexEstPlus,
      Method::kDelayMat};
  return methods;
}

inline const std::vector<UserGroup>& AllGroups() {
  static const std::vector<UserGroup> groups = {
      UserGroup::kHigh, UserGroup::kMid, UserGroup::kLow};
  return groups;
}

}  // namespace pitex::bench

#endif  // PITEX_BENCH_BENCH_COMMON_H_
