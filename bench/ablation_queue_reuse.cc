// Ablation: lazy-sampler priority-queue reuse (Appendix D future work).
//
// The paper observes that Lazy's edge-visit win over MC/RR "does not
// fully translate to run time" because a priority queue is created for
// each visited user and deleted after every tag-set computation, and
// proposes queue reuse as future work. This library implements the
// reuse (epoch-stamped per-vertex heaps that persist across
// estimations); the ablation measures full PITEX queries with reuse on
// vs. off. Expected shape: reuse wins consistently, most on queries
// that evaluate many tag sets over the same reach (the allocation cost
// repeats per tag set without it).

#include "bench/bench_common.h"
#include "src/core/best_effort_solver.h"
#include "src/core/upper_bound.h"
#include "src/sampling/lazy_sampler.h"

int main(int argc, char** argv) {
  pitex::bench::InitBench(argc, argv);
  using namespace pitex;
  using namespace pitex::bench;

  std::printf("=== Ablation: lazy priority-queue reuse (Appendix D) ===\n\n");
  std::printf("%-10s %-6s | %12s %12s | %8s\n", "dataset", "group",
              "reuse(ms)", "fresh(ms)", "speedup");

  for (const auto& d : MakeBenchDatasets()) {
    SampleSizePolicy policy;
    policy.eps = 0.7;
    policy.delta = 1000.0;
    policy.num_tags = static_cast<int64_t>(d.network.topics.num_tags());
    policy.k = 3;
    policy.use_phi = true;
    policy.max_samples = 512;

    UpperBoundContext bounds(d.network.topics);
    for (const UserGroup group : AllGroups()) {
      const auto users = SampleUserGroup(d.network.graph, group,
                                         BenchQueries(), 3);
      if (users.empty()) continue;

      double reuse_ms = 0.0;
      double fresh_ms = 0.0;
      for (const bool reuse : {true, false}) {
        LazySampler sampler(d.network.graph, policy, 7, reuse);
        Timer timer;
        for (const VertexId u : users) {
          (void)SolveByBestEffort(d.network, {.user = u, .k = 3}, bounds,
                                  &sampler);
        }
        const double ms =
            timer.Seconds() * 1e3 / static_cast<double>(users.size());
        (reuse ? reuse_ms : fresh_ms) = ms;
      }
      std::printf("%-10s %-6s | %12.2f %12.2f | %7.2fx\n", d.name.c_str(),
                  UserGroupName(group), reuse_ms, fresh_ms,
                  fresh_ms / std::max(reuse_ms, 1e-9));
    }
  }
  std::printf("\nshape check: reuse should never lose and helps most where "
              "many tag sets\nare evaluated per query (dense tag-topic "
              "datasets, high-degree users).\n");
  return 0;
}
