// Figure 11: query efficiency when varying the number of selected tags
// k in {1, 2, 3, 4}, for the offline comparison methods.
//
// Expected shape (paper): running time grows with k but NOT exponentially
// despite the exponential number of k-size tag sets, because low tag-topic
// densities let best-effort exploration prune most partial sets; the
// pruning advantage of INDEXEST+/DELAYMAT over INDEXEST grows with k.

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  pitex::bench::InitBench(argc, argv);
  using namespace pitex;
  using namespace pitex::bench;

  const size_t queries = BenchQueries();
  std::printf("=== Fig 11: vary k ===\n");
  std::printf("mid user group, eps=0.7, delta=1000\n");

  for (const auto& d : MakeBenchDatasets()) {
    std::printf("\n[%s] density=%.2f\n", d.name.c_str(),
                d.network.topics.Density());
    std::printf("%-10s %3s %14s %16s\n", "method", "k", "time(s)",
                "sets evaluated");
    const auto users =
        SampleUserGroup(d.network.graph, UserGroup::kMid, queries, 17);
    for (Method method : OfflineComparisonMethods()) {
      PitexEngine engine(&d.network, BenchOptions(method));
      engine.BuildIndex();
      for (size_t k = 1; k <= 4; ++k) {
        RunningStats seconds, sets;
        for (VertexId u : users) {
          Timer timer;
          const PitexResult r = engine.Explore({.user = u, .k = k});
          seconds.Add(timer.Seconds());
          sets.Add(static_cast<double>(r.sets_evaluated));
        }
        std::printf("%-10s %3zu %14.4f %16.1f\n", MethodName(method), k,
                    seconds.mean(), sets.mean());
      }
    }
  }
  std::printf(
      "\nshape check: time grows sub-exponentially in k (best-effort "
      "pruning); INDEXEST+ advantage grows with k.\n");
  return 0;
}
