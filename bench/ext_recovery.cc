// Extension bench: durability overhead and recovery time (RTO).
//
// Not a paper figure — the paper serves from an in-memory index; this
// harness measures what the durable serving tier (src/serve/wal.h,
// src/serve/recovery.h, docs/robustness.md "Durability") costs and how
// fast it comes back:
//   1. acknowledged-update throughput with the write-ahead log on
//      (append + group-commit fsync per batch) vs off — the price of
//      the zero-acknowledged-loss guarantee;
//   2. recovery time as a function of checkpoint age: restart after N
//      acknowledged batches with the checkpoint 0%, 50% and 100% of the
//      log behind the tail. Replay dominates RTO, so recovery time
//      should fall roughly linearly as the checkpoint gets fresher —
//      the knob ServeOptions::checkpoint_every trades against publish
//      overhead.

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/serve/pitex_service.h"

int main(int argc, char** argv) {
  pitex::bench::InitBench(argc, argv);
  using namespace pitex;
  using namespace pitex::bench;
  namespace fs = std::filesystem;

  const size_t kBatches = SmokeMode() ? 16 : 128;
  const std::string dir =
      (fs::temp_directory_path() / "pitex_ext_recovery").string();

  const auto make_batch = [](const SocialNetwork& network, uint64_t i) {
    std::vector<EdgeInfluenceUpdate> batch(1);
    batch[0].edge = static_cast<EdgeId>((i * 97) % network.num_edges());
    batch[0].entries = {
        {static_cast<TopicId>(i % network.topics.num_topics()),
         0.2 + 0.1 * static_cast<double>(i % 5)}};
    return batch;
  };

  std::printf("=== Extension: durability overhead and recovery time ===\n");
  std::printf("(%zu single-edge update batches per run; WAL fsync policy: "
              "always)\n\n", kBatches);

  for (const auto& d : MakeBenchDatasets()) {
    ServeOptions base;
    base.engine = BenchOptions(Method::kIndexEst);
    base.num_threads = 2;
    base.enable_updates = true;

    // --- 1. acknowledged-update throughput, WAL off vs on ---------------
    double volatile_seconds = 0.0, durable_seconds = 0.0;
    {
      PitexService service(&d.network, base);
      service.Start();
      Timer timer;
      for (uint64_t i = 0; i < kBatches; ++i) {
        (void)service.ApplyUpdates(make_batch(d.network, i));
      }
      volatile_seconds = timer.Seconds();
    }
    {
      fs::remove_all(dir);
      ServeOptions durable = base;
      durable.durability_dir = dir;
      durable.checkpoint_every = 0;  // isolate the WAL cost
      PitexService service(&d.network, durable);
      service.Start();
      Timer timer;
      for (uint64_t i = 0; i < kBatches; ++i) {
        (void)service.ApplyUpdates(make_batch(d.network, i));
      }
      durable_seconds = timer.Seconds();
    }
    std::printf("%-10s apply+publish: volatile %8.2f ms/batch, durable "
                "%8.2f ms/batch (%.2fx)\n",
                d.name.c_str(),
                volatile_seconds * 1e3 / static_cast<double>(kBatches),
                durable_seconds * 1e3 / static_cast<double>(kBatches),
                durable_seconds / std::max(volatile_seconds, 1e-9));

    // --- 2. recovery time vs checkpoint age ------------------------------
    // checkpoint_every = 0 (never: replay the whole log), kBatches/2+1
    // (the one checkpoint lands just past mid-log: replay ~half), 1
    // (checkpoint at the tail: replay ~nothing).
    for (const uint64_t cadence :
         {uint64_t{0}, static_cast<uint64_t>(kBatches / 2 + 1),
          uint64_t{1}}) {
      fs::remove_all(dir);
      ServeOptions durable = base;
      durable.durability_dir = dir;
      durable.checkpoint_every = cadence;
      {
        PitexService service(&d.network, durable);
        service.Start();
        for (uint64_t i = 0; i < kBatches; ++i) {
          (void)service.ApplyUpdates(make_batch(d.network, i));
        }
      }  // "crash": only the directory survives

      Timer timer;
      PitexService recovered(&d.network, durable);
      recovered.Start();  // checkpoint load + WAL replay + publish
      const double rto = timer.Seconds();
      const ServiceStats stats = recovered.Stats();
      std::printf("%-10s checkpoint_every=%-3llu -> RTO %8.2f ms "
                  "(%llu LSNs replayed)\n",
                  d.name.c_str(), static_cast<unsigned long long>(cadence),
                  rto * 1e3,
                  static_cast<unsigned long long>(
                      stats.recovery_replayed_lsns));
    }
    std::printf("\n");
  }
  fs::remove_all(dir);
  std::printf("shape check: durable acknowledgement costs one fsync per "
              "batch on top of the\npublish; RTO shrinks as the checkpoint "
              "nears the tail (replay-dominated), at the\ncost of one "
              "snapshot save per checkpoint_every publishes while "
              "serving.\n");
  return 0;
}
