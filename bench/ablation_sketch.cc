// Ablation: bottom-k sketch screening vs. sampling the envelope online.
//
// Not a paper figure — this quantifies the extension module
// src/sampling/sketch_oracle.h. The screening question ("how influential
// can u ever be?") equals influence estimation under the |W| = 0 root
// bound of best-effort exploration (Lemma 8); the baseline answers it by
// running lazy propagation sampling with envelope probabilities, the
// sketch by one O(k) lookup. Expected shape: per-user lookups are
// microseconds vs. milliseconds online — orders of magnitude — with
// relative error around 1/sqrt(sketch_size), at a one-time build cost
// comparable to a handful of online queries.

#include <cmath>

#include "bench/bench_common.h"
#include "src/sampling/lazy_sampler.h"
#include "src/sampling/sketch_oracle.h"

int main(int argc, char** argv) {
  pitex::bench::InitBench(argc, argv);
  using namespace pitex;
  using namespace pitex::bench;

  std::printf("=== Ablation: sketch screening vs online envelope ===\n\n");
  std::printf("%-10s | %10s %12s | %12s %12s | %10s\n", "dataset", "build(s)",
              "sketch(us)", "online(us)", "speedup", "rel.err");

  for (const auto& d : MakeBenchDatasets()) {
    SketchOptions options;
    options.sketch_size = 64;
    options.num_worlds = 32;
    SketchOracle oracle(&d.network, options);
    oracle.Build();

    SampleSizePolicy policy;
    policy.num_tags = static_cast<int64_t>(d.network.topics.num_tags());
    policy.k = 3;
    policy.max_samples = 512;
    LazySampler lazy(d.network.graph, policy, 3);
    const EnvelopeProbs envelope(d.network.influence);

    const auto users = SampleUserGroup(d.network.graph, UserGroup::kMid,
                                       std::max<size_t>(8, BenchQueries()), 5);
    RunningStats sketch_us, online_us, rel_err;
    for (const VertexId u : users) {
      Timer sketch_timer;
      const double screened = oracle.EnvelopeInfluence(u);
      sketch_us.Add(sketch_timer.Seconds() * 1e6);

      Timer online_timer;
      const double sampled = lazy.EstimateInfluence(u, envelope).influence;
      online_us.Add(online_timer.Seconds() * 1e6);

      rel_err.Add(std::abs(screened - sampled) / std::max(sampled, 1.0));
    }
    std::printf("%-10s | %10.3f %12.2f | %12.2f %11.0fx | %9.1f%%\n",
                d.name.c_str(), oracle.build_seconds(), sketch_us.mean(),
                online_us.mean(), online_us.mean() / sketch_us.mean(),
                100.0 * rel_err.mean());
  }
  std::printf(
      "\nshape check: sketch lookups should be orders of magnitude faster "
      "than online\nestimation with relative error ~1/sqrt(sketch_size) "
      "(~12%% at k=64).\n");
  return 0;
}
