// Component micro-benchmarks (google-benchmark): the hot primitives every
// PITEX query is built from.

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <sstream>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/engine.h"
#include "src/obs/journal.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/serve/admission.h"
#include "src/util/failpoint.h"
#include "src/index/dynamic_index.h"
#include "src/index/index_io.h"
#include "src/index/rr_graph.h"
#include "src/index/rr_index.h"
#include "src/sampling/lazy_sampler.h"
#include "src/sampling/mc_sampler.h"
#include "src/sampling/rr_sampler.h"
#include "src/sampling/sketch_oracle.h"
#include "src/sampling/triggering_sampler.h"
#include "src/serve/replication.h"
#include "src/serve/snapshot_registry.h"
#include "src/serve/wal.h"
#include "src/util/thread_pool.h"

#include <filesystem>

namespace {

using namespace pitex;

const SocialNetwork& Network() {
  static const SocialNetwork* network =
      new SocialNetwork(GenerateDataset(DiggsSpec(0.1)));
  return *network;
}

void BM_Posterior(benchmark::State& state) {
  const auto& n = Network();
  const auto k = static_cast<size_t>(state.range(0));
  std::vector<TagId> tags(k);
  for (size_t i = 0; i < k; ++i) tags[i] = static_cast<TagId>(i * 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(n.topics.Posterior(tags));
  }
}
BENCHMARK(BM_Posterior)->Arg(1)->Arg(3)->Arg(5);

void BM_EdgeProbSparseDot(benchmark::State& state) {
  const auto& n = Network();
  const TagId tags[] = {0, 3};
  const auto post = n.topics.Posterior(tags);
  EdgeId e = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(n.influence.EdgeProb(e, post));
    e = (e + 1) % n.num_edges();
  }
}
BENCHMARK(BM_EdgeProbSparseDot);

void BM_GeometricSkip(benchmark::State& state) {
  Rng rng(1);
  const double p = 1.0 / static_cast<double>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.NextGeometric(p));
  }
}
BENCHMARK(BM_GeometricSkip)->Arg(10)->Arg(1000);

void BM_ReachableSet(benchmark::State& state) {
  const auto& n = Network();
  const TagId tags[] = {0, 3};
  const auto post = n.topics.Posterior(tags);
  const auto users = SampleUserGroup(n.graph, UserGroup::kHigh, 1, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ComputeReachableSet(n.graph, n.influence, post, users[0]));
  }
}
BENCHMARK(BM_ReachableSet);

void BM_GenerateRRGraph(benchmark::State& state) {
  const auto& n = Network();
  Rng rng(2);
  for (auto _ : state) {
    const auto root =
        static_cast<VertexId>(rng.NextBounded(n.num_vertices()));
    benchmark::DoNotOptimize(
        GenerateRRGraph(n.graph, n.influence, root, &rng));
  }
}
BENCHMARK(BM_GenerateRRGraph);

template <typename Sampler>
void BM_OnlineEstimate(benchmark::State& state) {
  const auto& n = Network();
  SampleSizePolicy policy;
  policy.num_tags = static_cast<int64_t>(n.topics.num_tags());
  policy.k = 2;
  policy.min_samples = 64;
  policy.max_samples = static_cast<uint64_t>(state.range(0));
  Sampler sampler(n.graph, policy, 3);
  const TagId tags[] = {0, 3};
  const auto post = n.topics.Posterior(tags);
  const PosteriorProbs probs(n.influence, post);
  const auto users = SampleUserGroup(n.graph, UserGroup::kHigh, 1, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.EstimateInfluence(users[0], probs));
  }
}
BENCHMARK_TEMPLATE(BM_OnlineEstimate, McSampler)->Arg(256);
BENCHMARK_TEMPLATE(BM_OnlineEstimate, RrSampler)->Arg(256);
BENCHMARK_TEMPLATE(BM_OnlineEstimate, LazySampler)->Arg(256);

void BM_IndexBuild(benchmark::State& state) {
  // Full offline index construction (Def.-2 sampling + pool pack) at
  // bench scale, swept over build threads for per-thread scaling.
  const auto& n = Network();
  RrIndexOptions options;
  options.theta_per_vertex = 4.0;
  options.num_build_threads = static_cast<size_t>(state.range(0));
  uint64_t sketches = 0;
  for (auto _ : state) {
    RrIndex index(n, options);
    index.Build();
    sketches += index.num_graphs();
    benchmark::DoNotOptimize(index.SizeBytes());
  }
  state.SetItemsProcessed(static_cast<int64_t>(sketches));
}
BENCHMARK(BM_IndexBuild)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_SnapshotPublish(benchmark::State& state) {
  // Serve-mode epoch swap: freeze the shadow master (network copy + pool
  // pack into an immutable RrIndex replica) and publish the snapshot.
  // Arg is the maintenance-pool size (0 = serial freeze; >=2 overlaps the
  // network copy with a pool-parallel pack, the PitexService default).
  static DynamicRrIndex* master = [] {
    RrIndexOptions options;
    options.theta_per_vertex = 4.0;
    auto* m = new DynamicRrIndex(Network(), options);
    m->Build();
    return m;
  }();
  const auto pack_threads = static_cast<size_t>(state.range(0));
  std::unique_ptr<ThreadPool> pack_pool;
  if (pack_threads > 1) pack_pool = std::make_unique<ThreadPool>(pack_threads);
  IndexSnapshotRegistry registry;
  uint64_t epoch = 0;
  for (auto _ : state) {
    registry.Publish(
        IndexSnapshot::FromDynamic(*master, ++epoch, pack_pool.get()));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_SnapshotPublish)->Arg(0)->Arg(2)->Unit(benchmark::kMillisecond);

void BM_WalAppend(benchmark::State& state) {
  // Durable update logging: append edge-update batches and group-commit
  // every Arg batches with one fsync. Arg=1 is the PitexService
  // behavior (commit per acknowledged batch); larger groups show how
  // much of the cost is the fsync barrier vs the framing + write(2).
  const auto group = static_cast<uint64_t>(state.range(0));
  const std::string dir =
      (std::filesystem::temp_directory_path() / "pitex_bm_wal").string();
  std::filesystem::remove_all(dir);
  std::string error;
  auto wal = WriteAheadLog::Open(dir, /*next_lsn=*/1, WalOptions(), &error);
  if (wal == nullptr) {
    state.SkipWithError(error.c_str());
    return;
  }
  std::vector<EdgeInfluenceUpdate> batch(1);
  batch[0].edge = 7;
  batch[0].entries = {{0, 0.3}, {1, 0.25}, {2, 0.1}};
  uint64_t pending = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(wal->Append(batch));
    if (++pending == group) {
      if (!wal->Sync()) state.SkipWithError("wal fsync failed");
      pending = 0;
    }
  }
  if (pending != 0) (void)wal->Sync();
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  wal.reset();
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_WalAppend)->Arg(1)->Arg(8)->Arg(64)
    ->Unit(benchmark::kMicrosecond);

void BM_WalShip(benchmark::State& state) {
  // Replication shipping path minus the disk: encode one committed WAL
  // batch as a record frame, push it through the in-process transport,
  // and decode it on the follower side. Arg is the updates-per-batch
  // fan-in; the items rate is records/s (docs/perf.md).
  const auto batch_size = static_cast<size_t>(state.range(0));
  auto [primary_end, follower_end] = MakeInProcessTransportPair();
  ReplRecordMsg msg;
  msg.term = 1;
  msg.updates.resize(batch_size);
  for (size_t i = 0; i < batch_size; ++i) {
    msg.updates[i].edge = static_cast<EdgeId>(i);
    msg.updates[i].entries = {{0, 0.3}, {1, 0.25}, {2, 0.1}};
  }
  uint64_t lsn = 0;
  ReplFrame frame;
  for (auto _ : state) {
    msg.lsn = ++lsn;
    if (!primary_end->Send(EncodeRecordMsg(msg))) {
      state.SkipWithError("transport send failed");
      return;
    }
    if (follower_end->Recv(&frame, std::chrono::milliseconds(1000)) !=
        ReplicationTransport::RecvStatus::kFrame) {
      state.SkipWithError("transport recv failed");
      return;
    }
    ReplRecordMsg decoded;
    if (!DecodeRecordMsg(frame, &decoded) || decoded.lsn != lsn) {
      state.SkipWithError("record decode failed");
      return;
    }
    benchmark::DoNotOptimize(decoded);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.counters["updates/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) *
          static_cast<double>(batch_size),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_WalShip)->Arg(1)->Arg(8)->Arg(64)
    ->Unit(benchmark::kMicrosecond);

void BM_IndexEstimate(benchmark::State& state) {
  const auto& n = Network();
  static RrIndex* index = [] {
    RrIndexOptions options;
    options.theta_per_vertex = 4.0;
    auto* idx = new RrIndex(Network(), options);
    idx->Build();
    return idx;
  }();
  const TagId tags[] = {0, 3};
  const auto post = n.topics.Posterior(tags);
  const PosteriorProbs probs(n.influence, post);
  const auto users = SampleUserGroup(n.graph, UserGroup::kHigh, 1, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(index->EstimateInfluence(users[0], probs));
  }
}
BENCHMARK(BM_IndexEstimate);

void BM_IndexEstimateSweep(benchmark::State& state) {
  // Sweeps the query user round-robin over the whole vertex set: the
  // aggregate estimate hot path (thousands of tiny sketch walks), which is
  // what the pooled layout and scratch reuse target.
  const auto& n = Network();
  static RrIndex* index = [] {
    RrIndexOptions options;
    options.theta_per_vertex = 4.0;
    auto* idx = new RrIndex(Network(), options);
    idx->Build();
    return idx;
  }();
  const TagId tags[] = {0, 3};
  const auto post = n.topics.Posterior(tags);
  const PosteriorProbs probs(n.influence, post);
  VertexId u = 0;
  uint64_t edges_visited = 0;
  for (auto _ : state) {
    const Estimate est = index->EstimateInfluence(u, probs);
    edges_visited += est.edges_visited;
    benchmark::DoNotOptimize(est);
    u = (u + 1) % static_cast<VertexId>(n.num_vertices());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.counters["edges_visited"] =
      benchmark::Counter(static_cast<double>(edges_visited),
                         benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_IndexEstimateSweep);

void BM_IsReachable(benchmark::State& state) {
  // Raw Definition-3 reachability over one pre-built index's non-trivial
  // sketches (u != root, so the BFS actually runs): isolates the per-call
  // visited/stack cost from estimator bookkeeping.
  const auto& n = Network();
  static RrIndex* index = [] {
    RrIndexOptions options;
    options.theta_per_vertex = 4.0;
    auto* idx = new RrIndex(Network(), options);
    idx->Build();
    return idx;
  }();
  const TagId tags[] = {0, 3};
  const auto post = n.topics.Posterior(tags);
  const PosteriorProbs probs(n.influence, post);
  // (sketch, user) pairs where the user is a non-root member, gathered
  // across the whole index so the BFS actually walks edges.
  std::vector<std::pair<uint32_t, VertexId>> pairs;
  for (uint32_t id = 0; id < index->num_graphs() && pairs.size() < 1024;
       ++id) {
    const RRView rr = index->graph(id);
    for (const VertexId v : rr.vertices) {
      if (v != rr.root) {
        pairs.emplace_back(id, v);
        break;
      }
    }
  }
  if (pairs.empty()) {
    state.SkipWithError("no RR-Graph has a non-root member");
    return;
  }
  EstimateScratch scratch;
  size_t next = 0;
  uint64_t visits = 0;
  for (auto _ : state) {
    const auto& [id, u] = pairs[next];
    benchmark::DoNotOptimize(
        IsReachable(index->graph(id), u, probs, &visits, &scratch));
    next = (next + 1) % pairs.size();
  }
}
BENCHMARK(BM_IsReachable);

void BM_UpperBoundProbs(benchmark::State& state) {
  const auto& n = Network();
  static const UpperBoundContext* ctx = new UpperBoundContext(n.topics);
  const TagId partial[] = {0};
  for (auto _ : state) {
    const UpperBoundProbs bound(n.influence, *ctx, partial, 3);
    benchmark::DoNotOptimize(bound.Prob(0));
  }
}
BENCHMARK(BM_UpperBoundProbs);

void BM_UpperBoundMultipliers(benchmark::State& state) {
  // The Lemma-8 topic-multiplier computation, once per explored partial
  // set in best-effort search — the bound-side hot path, measured through
  // the scratch-based production entry point.
  const auto& n = Network();
  static const UpperBoundContext* ctx = new UpperBoundContext(n.topics);
  static BoundScratch* scratch = new BoundScratch();
  const auto size = static_cast<size_t>(state.range(0));
  std::vector<TagId> partial(size);
  for (size_t i = 0; i < size; ++i) partial[i] = static_cast<TagId>(i * 2);
  for (auto _ : state) {
    ctx->TopicMultipliersInto(partial, 4, scratch);
    benchmark::DoNotOptimize(scratch->multipliers.data());
  }
}
BENCHMARK(BM_UpperBoundMultipliers)->Arg(1)->Arg(3);

void BM_LazySamplerEstimate(benchmark::State& state) {
  // One lazy-propagation estimate exactly as the best-effort solver
  // drives it per explored node (fixed tag set, reused sampler; the
  // sampler self-materializes the probabilities during its sweep).
  const auto& n = Network();
  SampleSizePolicy policy;
  policy.num_tags = static_cast<int64_t>(n.topics.num_tags());
  policy.k = 2;
  policy.use_phi = true;
  policy.min_samples = 32;
  policy.max_samples = 256;
  LazySampler sampler(n.graph, policy, 3);
  const TagId tags[] = {0, 3};
  const auto post = n.topics.Posterior(tags);
  const PosteriorProbs probs(n.influence, post);
  const auto users = SampleUserGroup(n.graph, UserGroup::kHigh, 1, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.EstimateInfluence(users[0], probs));
  }
}
BENCHMARK(BM_LazySamplerEstimate);

void BM_BestEffortQuery(benchmark::State& state) {
  // End-to-end best-effort PITEX query (Sec. 5 / Algorithm 1) through the
  // engine facade with the LAZY oracle: heap exploration, Lemma-8 bounds,
  // and online sampling together.
  const auto& n = Network();
  EngineOptions options = [] {
    EngineOptions o;
    o.method = Method::kLazy;
    o.best_effort = true;
    o.min_samples = 32;
    o.max_samples = 256;
    o.seed = 7;
    return o;
  }();
  PitexEngine engine(&n, options);
  const auto k = static_cast<size_t>(state.range(0));
  const auto users = SampleUserGroup(n.graph, UserGroup::kHigh, 1, 1);
  uint64_t sets = 0;
  for (auto _ : state) {
    const PitexResult r = engine.Explore({.user = users[0], .k = k});
    sets += r.sets_evaluated + r.bounds_evaluated;
    benchmark::DoNotOptimize(r.influence);
  }
  state.counters["sets"] = benchmark::Counter(
      static_cast<double>(sets), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_BestEffortQuery)->Arg(2)->Arg(3);

void BM_SerializeRrIndex(benchmark::State& state) {
  static RrIndex* index = [] {
    RrIndexOptions options;
    options.theta_per_vertex = 2.0;
    auto* idx = new RrIndex(Network(), options);
    idx->Build();
    return idx;
  }();
  size_t bytes = 0;
  for (auto _ : state) {
    std::stringstream file;
    benchmark::DoNotOptimize(SaveRrIndex(*index, file));
    bytes = file.str().size();
  }
  state.SetBytesProcessed(static_cast<int64_t>(bytes) *
                          static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_SerializeRrIndex);

void BM_LoadRrIndex(benchmark::State& state) {
  static const std::string* snapshot = [] {
    RrIndexOptions options;
    options.theta_per_vertex = 2.0;
    RrIndex index(Network(), options);
    index.Build();
    std::stringstream file;
    SaveRrIndex(index, file);
    return new std::string(file.str());
  }();
  for (auto _ : state) {
    std::stringstream file(*snapshot);
    benchmark::DoNotOptimize(LoadRrIndex(Network(), file));
  }
  state.SetBytesProcessed(static_cast<int64_t>(snapshot->size()) *
                          static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_LoadRrIndex);

void BM_SketchLookup(benchmark::State& state) {
  static SketchOracle* oracle = [] {
    auto* o = new SketchOracle(&Network());
    o->Build();
    return o;
  }();
  VertexId u = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(oracle->EnvelopeInfluence(u));
    u = (u + 1) % static_cast<VertexId>(Network().num_vertices());
  }
}
BENCHMARK(BM_SketchLookup);

void BM_DynamicRepairSingleEdge(benchmark::State& state) {
  const auto& n = Network();
  RrIndexOptions options;
  options.theta_per_vertex = 2.0;
  DynamicRrIndex index(n, options);
  index.Build();
  Rng rng(9);
  for (auto _ : state) {
    EdgeInfluenceUpdate update;
    update.edge = static_cast<EdgeId>(rng.NextBounded(n.num_edges()));
    update.entries = {{static_cast<TopicId>(
                           rng.NextBounded(n.topics.num_topics())),
                       0.05 + 0.3 * rng.NextDouble()}};
    index.ApplyUpdates(std::span(&update, 1));
  }
}
BENCHMARK(BM_DynamicRepairSingleEdge);

void BM_ThreadPoolDispatch(benchmark::State& state) {
  static ThreadPool* pool = new ThreadPool(4);
  const auto tasks = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    std::atomic<size_t> counter{0};
    for (size_t i = 0; i < tasks; ++i) {
      pool->Submit([&counter] { counter.fetch_add(1); });
    }
    pool->Wait();
    benchmark::DoNotOptimize(counter.load());
  }
  state.SetItemsProcessed(static_cast<int64_t>(tasks) *
                          static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ThreadPoolDispatch)->Arg(64)->Arg(1024);

void BM_AdmissionOverhead(benchmark::State& state) {
  // Happy-path admission (TryAdmit + Release, nothing sheds): the cost a
  // fully-admitted query pays on top of its engine time. A PITEX query
  // runs for tens of microseconds at minimum, so this must stay well
  // under 1% of that -- i.e. low hundreds of nanoseconds.
  AdmissionOptions options;
  options.max_queue_depth = 1 << 20;  // never full
  options.user_rate_limit = 1e9;      // never limits
  AdmissionController controller(options);
  VertexId user = 0;
  for (auto _ : state) {
    const auto now = AdmissionController::Clock::now();
    benchmark::DoNotOptimize(controller.TryAdmit(user, now));
    controller.Release(1);
    user = (user + 1) % 4096;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_AdmissionOverhead);

void BM_FailpointDisarmed(benchmark::State& state) {
  // The disarmed fast gate every instrumented call site pays in
  // production: one relaxed atomic load. Nanoseconds, or the fail-point
  // framework could not ship enabled in release builds.
  FailpointRegistry::Instance().DisableAll();
  for (auto _ : state) {
    benchmark::DoNotOptimize(PITEX_FAILPOINT("bench/disarmed"));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_FailpointDisarmed);

void BM_MetricsIncrement(benchmark::State& state) {
  // The registered-handle fast path every serving counter pays: one
  // relaxed fetch_add into the calling thread's cacheline-padded shard.
  // Must match BM_FailpointDisarmed's order of magnitude or counters
  // could not ride the per-query path.
  static obs::Counter* counter = new obs::Counter();
  for (auto _ : state) {
    counter->Inc();
  }
  benchmark::DoNotOptimize(counter->Value());
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_MetricsIncrement);

void BM_HotCounterIncrement(benchmark::State& state) {
  // The PITEX_COUNT macro form sanctioned inside PITEX_NOALLOC bodies:
  // a constant array index plus the same relaxed fetch_add.
  for (auto _ : state) {
    PITEX_COUNT(kSolveFrontierPops, 1);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_HotCounterIncrement);

void BM_SpanStartStop(benchmark::State& state) {
  // PITEX_SPAN cost, both regimes (docs/perf.md). Arg(0) = disarmed
  // (sampling off: a thread-local load and a branch, no clock read);
  // Arg(1) = armed (every trace sampled: two steady_clock reads plus a
  // ring append under the thread-local buffer's uncontended mutex).
  const bool armed = state.range(0) != 0;
  obs::Tracer::Instance().SetSampleEvery(armed ? 1 : 0);
  obs::Tracer::Instance().Clear();
  const uint64_t trace_id = obs::Tracer::Instance().StartTrace();
  for (auto _ : state) {
    PITEX_TRACE_SCOPE(trace_id);
    PITEX_SPAN(kSolve);
  }
  obs::Tracer::Instance().SetSampleEvery(0);
  obs::Tracer::Instance().Clear();
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_SpanStartStop)->Arg(0)->Arg(1);

void BM_JournalRecord(benchmark::State& state) {
  // Wait-free flight-recorder append: fetch_add claim + five relaxed
  // stores behind a seqlock stamp. Rare-event paths only, but cheap
  // enough that recording never needs gating.
  static obs::EventJournal* journal = new obs::EventJournal(1024);
  for (auto _ : state) {
    journal->Record(obs::EventKind::kShed, 1, 2);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_JournalRecord);

void BM_TriggeringEstimate(benchmark::State& state) {
  const auto& n = Network();
  SampleSizePolicy policy;
  policy.num_tags = static_cast<int64_t>(n.topics.num_tags());
  policy.k = 2;
  policy.min_samples = 64;
  policy.max_samples = 256;
  static const IcTriggering* ic = new IcTriggering();
  TriggeringSampler sampler(n.graph, ic, policy, 3);
  const TagId tags[] = {0, 3};
  const auto post = n.topics.Posterior(tags);
  const PosteriorProbs probs(n.influence, post);
  const auto users = SampleUserGroup(n.graph, UserGroup::kHigh, 1, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.EstimateInfluence(users[0], probs));
  }
}
BENCHMARK(BM_TriggeringEstimate);

}  // namespace

// Hand-rolled BENCHMARK_MAIN so the binary understands the repo-wide
// --smoke flag: each benchmark then runs a single short iteration window,
// which is enough for the bench_smoke_* CTest entry to prove the harness
// still builds and runs.
int main(int argc, char** argv) {
  std::vector<char*> args;
  bool smoke = false;
  for (int i = 0; i < argc; ++i) {
    if (i > 0 && std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      args.push_back(argv[i]);
    }
  }
  static char min_time[] = "--benchmark_min_time=0.001";
  if (smoke) args.push_back(min_time);

  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
