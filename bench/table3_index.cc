// Table 3: index sizes (MB) and construction time (s) for the RR-Graphs
// index vs. delay materialization, per dataset.
//
// Expected shape (paper): DelayMat is orders of magnitude smaller than the
// RR-Graphs index and builds faster (it skips edge storage and CSR
// assembly).

#include <sstream>

#include "bench/bench_common.h"
#include "src/index/delay_mat.h"
#include "src/index/index_io.h"
#include "src/index/rr_index.h"

int main(int argc, char** argv) {
  pitex::bench::InitBench(argc, argv);
  using namespace pitex;
  using namespace pitex::bench;

  std::printf("=== Table 3: Index Sizes (MB) & Construction Time (s) ===\n\n");
  std::printf("%-10s %10s | %12s %12s %12s | %12s %12s %12s\n", "dataset",
              "data(MB)", "RR size(MB)", "RR disk(MB)", "RR time(s)",
              "DM size(MB)", "DM disk(MB)", "DM time(s)");

  for (const auto& d : MakeBenchDatasets()) {
    RrIndexOptions options;
    options.theta_per_vertex = 4.0;
    options.seed = 7;

    RrIndex rr(d.network, options);
    rr.Build();
    DelayMatIndex dm(d.network, options);
    dm.Build();

    // Serialized footprint (src/index/index_io.h): what a deployment
    // actually ships between the offline build and query serving.
    std::stringstream rr_file, dm_file;
    SaveRrIndex(rr, rr_file);
    SaveDelayMatIndex(dm, dm_file);
    const auto rr_disk = static_cast<double>(rr_file.str().size());
    const auto dm_disk = static_cast<double>(dm_file.str().size());

    // Raw data footprint: edges (8B topology) + topic entries (8B each).
    size_t data_bytes = d.network.num_edges() * 8;
    for (EdgeId e = 0; e < d.network.num_edges(); ++e) {
      data_bytes += d.network.influence.EdgeTopics(e).size() * 8;
    }
    const double mb = 1024.0 * 1024.0;
    std::printf("%-10s %10.2f | %12.2f %12.2f %12.3f | %12.4f %12.4f %12.3f\n",
                d.name.c_str(), static_cast<double>(data_bytes) / mb,
                static_cast<double>(rr.SizeBytes()) / mb, rr_disk / mb,
                rr.build_seconds(),
                static_cast<double>(dm.SizeBytes()) / mb, dm_disk / mb,
                dm.build_seconds());
  }
  std::printf(
      "\nshape check: DelayMat index should be orders of magnitude smaller "
      "than RR-Graphs\n(paper: 0.005 vs 6.02 MB on lastfm, 20.9 vs 2912 MB "
      "on twitter).\n");
  return 0;
}
