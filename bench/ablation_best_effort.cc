// Ablation: best-effort exploration (Sec. 5.2) vs plain enumeration
// (Sec. 4), across the four datasets (whose tag-topic densities differ —
// the paper attributes best-effort's power to low density).
//
// Expected shape: best-effort evaluates a small fraction of the C(|W|, k)
// tag sets on sparse models (diggs: density 0.08) and a larger fraction
// on dense ones (dblp: 0.32), with correspondingly smaller speedups.

#include "bench/bench_common.h"
#include "src/core/tagset_enumerator.h"

int main(int argc, char** argv) {
  pitex::bench::InitBench(argc, argv);
  using namespace pitex;
  using namespace pitex::bench;

  const size_t k = 2;
  const size_t queries = BenchQueries();
  std::printf("=== Ablation: best-effort vs enumeration (LAZY, k=%zu) ===\n",
              k);
  std::printf("%-10s %8s | %12s %12s | %12s %12s | %8s\n", "dataset",
              "density", "enum time", "enum sets", "be time", "be sets",
              "speedup");

  for (const auto& d : MakeBenchDatasets()) {
    const auto users =
        SampleUserGroup(d.network.graph, UserGroup::kMid, queries, 17);

    EngineOptions enum_options = BenchOptions(Method::kLazy);
    enum_options.best_effort = false;
    PitexEngine enum_engine(&d.network, enum_options);

    EngineOptions be_options = BenchOptions(Method::kLazy);
    be_options.best_effort = true;
    PitexEngine be_engine(&d.network, be_options);

    RunningStats enum_time, enum_sets, be_time, be_sets;
    for (VertexId u : users) {
      Timer t1;
      const PitexResult r1 = enum_engine.Explore({.user = u, .k = k});
      enum_time.Add(t1.Seconds());
      enum_sets.Add(static_cast<double>(r1.sets_evaluated));
      Timer t2;
      const PitexResult r2 = be_engine.Explore({.user = u, .k = k});
      be_time.Add(t2.Seconds());
      be_sets.Add(static_cast<double>(r2.sets_evaluated));
    }
    std::printf("%-10s %8.2f | %12.4f %12.1f | %12.4f %12.1f | %7.1fx\n",
                d.name.c_str(), d.network.topics.Density(), enum_time.mean(),
                enum_sets.mean(), be_time.mean(), be_sets.mean(),
                enum_time.mean() / std::max(1e-9, be_time.mean()));
  }
  std::printf(
      "\nshape check: best-effort evaluates far fewer sets; the advantage "
      "is largest at low density.\n");
  return 0;
}
