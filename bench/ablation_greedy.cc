// Ablation: greedy heuristic vs best-effort exploration.
//
// PITEX's objective is not submodular, so greedy can be arbitrarily bad
// in theory; this bench measures how it fares in practice on the four
// dataset analogs — answer quality (influence ratio vs best-effort) and
// speed (estimations are O(k|Omega|) instead of a pruned exponential).

#include "bench/bench_common.h"
#include "src/core/best_effort_solver.h"
#include "src/core/greedy_solver.h"
#include "src/sampling/lazy_sampler.h"

int main(int argc, char** argv) {
  pitex::bench::InitBench(argc, argv);
  using namespace pitex;
  using namespace pitex::bench;

  const size_t k = 2;
  const size_t queries = BenchQueries();
  std::printf("=== Ablation: greedy vs best-effort (LAZY, k=%zu) ===\n", k);
  std::printf("%-10s | %12s %12s | %12s %12s | %10s\n", "dataset",
              "greedy time", "greedy inf", "be time", "be inf",
              "inf ratio");

  for (const auto& d : MakeBenchDatasets()) {
    const UpperBoundContext context(d.network.topics);
    SampleSizePolicy policy;
    policy.num_tags = static_cast<int64_t>(d.network.topics.num_tags());
    policy.k = static_cast<int64_t>(k);
    policy.use_phi = true;
    policy.min_samples = 32;
    policy.max_samples = 512;

    const auto users =
        SampleUserGroup(d.network.graph, UserGroup::kMid, queries, 17);
    LazySampler greedy_sampler(d.network.graph, policy, 7);
    LazySampler be_sampler(d.network.graph, policy, 7);
    RunningStats g_time, g_inf, b_time, b_inf;
    for (VertexId u : users) {
      Timer t1;
      const PitexResult g =
          SolveByGreedy(d.network, {.user = u, .k = k}, &greedy_sampler);
      g_time.Add(t1.Seconds());
      g_inf.Add(g.influence);
      Timer t2;
      const PitexResult b = SolveByBestEffort(
          d.network, {.user = u, .k = k}, context, &be_sampler);
      b_time.Add(t2.Seconds());
      b_inf.Add(b.influence);
    }
    std::printf("%-10s | %12.4f %12.3f | %12.4f %12.3f | %10.3f\n",
                d.name.c_str(), g_time.mean(), g_inf.mean(), b_time.mean(),
                b_inf.mean(), g_inf.mean() / std::max(1e-9, b_inf.mean()));
  }
  std::printf(
      "\nshape check: greedy is faster but its influence ratio can dip "
      "below 1.0 (no guarantee; the objective is not submodular).\n");
  return 0;
}
