// Extension bench: batch query throughput vs. worker count, plus the
// serving-layer comparison.
//
// Not a paper figure — the paper reports single-query latency; this
// harness measures the deployment-side metrics:
//   1. queries/second when a stream of PITEX queries shares one offline
//      index across a worker pool (BatchEngine). Expected shape:
//      near-linear scaling below the physical core count, IndexEst+
//      sustaining the highest absolute throughput (Fig. 7 ordering);
//   2. BatchEngine (static round-robin) vs. PitexService (work-stealing)
//      on a *skewed* workload where expensive hub queries pile onto one
//      round-robin residue class — the imbalance the per-worker
//      BatchWorkerStats expose and the stealing scheduler removes;
//   3. p50/p95/p99 sojourn latency of the service under a bursty arrival
//      schedule (waves of concurrent Submits separated by idle gaps).

#include <algorithm>
#include <future>
#include <thread>

#include "bench/bench_common.h"
#include "src/core/batch_engine.h"
#include "src/serve/pitex_service.h"

int main(int argc, char** argv) {
  pitex::bench::InitBench(argc, argv);
  using namespace pitex;
  using namespace pitex::bench;

  std::printf("=== Extension: Batch Throughput (queries/s) vs threads ===\n");
  std::printf("(shared RR-Graph index across workers; mid-degree users; "
              "k=3)\n\n");

  const size_t kBatch = 256;
  const std::vector<size_t> kThreadCounts = {1, 2, 4, 8};
  const std::vector<Method> kMethods = {Method::kLazy, Method::kIndexEst,
                                        Method::kIndexEstPlus,
                                        Method::kDelayMat};

  for (const auto& d : MakeBenchDatasets()) {
    std::printf("--- %s (|V|=%zu |E|=%zu) ---\n", d.name.c_str(),
                d.network.num_vertices(), d.network.num_edges());
    std::printf("%-10s", "method");
    for (const size_t t : kThreadCounts) std::printf(" %9zu-thr", t);
    std::printf("\n");

    const auto users =
        SampleUserGroup(d.network.graph, UserGroup::kMid, kBatch, 3);
    std::vector<PitexQuery> queries;
    for (size_t i = 0; i < kBatch; ++i) {
      queries.push_back({.user = users[i % users.size()], .k = 3});
    }

    for (const Method method : kMethods) {
      std::printf("%-10s", MethodName(method));
      for (const size_t threads : kThreadCounts) {
        BatchOptions options;
        options.engine = BenchOptions(method);
        options.num_threads = threads;
        BatchEngine batch(&d.network, options);
        batch.Prepare();                // offline cost excluded
        (void)batch.ExploreAll(queries);  // warm worker caches
        const auto results = batch.ExploreAll(queries);
        const double qps =
            static_cast<double>(results.size()) /
            std::max(batch.last_batch_seconds(), 1e-9);
        std::printf(" %13.1f", qps);
      }
      std::printf("\n");
    }
    std::printf("\n");
  }
  std::printf("shape check: throughput should rise with threads (sub-linear "
              "beyond core count)\nand rank INDEXEST+ >= DELAYMAT > INDEXEST "
              ">> LAZY, matching Fig. 7 latencies.\n\n");

  // --- 2. skewed workload: static round-robin vs. work-stealing ----------
  // Hub queries land on residue class 0 of the round-robin assignment, so
  // BatchEngine's worker 0 carries nearly all the work while the others
  // idle; the stealing scheduler redistributes it.
  std::printf("=== Skewed workload: BatchEngine (round-robin) vs "
              "PitexService (work-stealing) ===\n");
  const size_t kServeThreads = 4;
  for (const auto& d : MakeBenchDatasets()) {
    auto hubs = SampleUserGroup(d.network.graph, UserGroup::kHigh, 8, 5);
    const auto leaves =
        SampleUserGroup(d.network.graph, UserGroup::kLow, kBatch, 6);
    if (hubs.empty() || leaves.empty()) continue;  // degenerate smoke graph
    std::vector<PitexQuery> skewed;
    for (size_t i = 0; i < kBatch; ++i) {
      const bool hub = i % kServeThreads == 0;
      skewed.push_back({.user = hub ? hubs[i % hubs.size()]
                                    : leaves[i % leaves.size()],
                        .k = 3});
    }

    for (const Method method : {Method::kIndexEst, Method::kIndexEstPlus}) {
      BatchOptions batch_options;
      batch_options.engine = BenchOptions(method);
      batch_options.num_threads = kServeThreads;
      BatchEngine batch(&d.network, batch_options);
      batch.Prepare();
      (void)batch.ExploreAll(skewed);  // warm caches
      const auto batch_results = batch.ExploreAll(skewed);
      const double batch_qps = static_cast<double>(skewed.size()) /
                               std::max(batch.last_batch_seconds(), 1e-9);
      double busiest = 0.0, idlest = 1e30;
      for (const BatchWorkerStats& w : batch.last_worker_stats()) {
        busiest = std::max(busiest, w.seconds);
        idlest = std::min(idlest, w.seconds);
      }

      // Scheduling model from the measured per-query costs: round-robin
      // makespan (what static assignment pays on kServeThreads real
      // cores) vs. list-scheduling makespan (what stealing approximates
      // online). Host-core-count independent — on a single-core runner
      // the measured wall times below cannot show the gap, this model
      // can.
      std::vector<double> rr_load(kServeThreads, 0.0);
      std::vector<double> balanced_load(kServeThreads, 0.0);
      for (size_t i = 0; i < batch_results.size(); ++i) {
        rr_load[i % kServeThreads] += batch_results[i].seconds;
        size_t least = 0;
        for (size_t w = 1; w < kServeThreads; ++w) {
          if (balanced_load[w] < balanced_load[least]) least = w;
        }
        balanced_load[least] += batch_results[i].seconds;
      }
      const double rr_makespan =
          *std::max_element(rr_load.begin(), rr_load.end());
      const double balanced_makespan =
          *std::max_element(balanced_load.begin(), balanced_load.end());

      ServeOptions serve_options;
      serve_options.engine = batch_options.engine;
      serve_options.num_threads = kServeThreads;
      serve_options.mode = ScheduleMode::kWorkStealing;
      serve_options.cache_capacity = 0;  // measure scheduling, not caching
      PitexService service(&d.network, serve_options);
      service.Start();
      (void)service.ServeAll(skewed);  // warm engine replicas
      Timer serve_timer;
      (void)service.ServeAll(skewed);
      const double serve_seconds = serve_timer.Seconds();
      const double serve_qps =
          static_cast<double>(skewed.size()) / std::max(serve_seconds, 1e-9);
      const ServiceStats stats = service.Stats();

      std::printf("%-10s %-10s batch %9.1f q/s (busy %.3fs / idle %.3fs)  "
                  "serve %9.1f q/s (steals %llu)  speedup %.2fx  "
                  "[modeled %zu-core makespan: rr %.3fms vs balanced "
                  "%.3fms, %.2fx]\n",
                  d.name.c_str(), MethodName(method), batch_qps, busiest,
                  idlest, serve_qps,
                  static_cast<unsigned long long>(stats.steals),
                  serve_qps / std::max(batch_qps, 1e-9), kServeThreads,
                  rr_makespan * 1e3, balanced_makespan * 1e3,
                  rr_makespan / std::max(balanced_makespan, 1e-9));
    }
  }
  std::printf("shape check: the work-stealing service should beat the "
              "static batch on this skew\n(hub cost concentrated on one "
              "residue class), with a visible busy/idle gap.\n"
              "On hosts with fewer cores than workers "
              "(hardware_concurrency=%u here) the measured\nspeedup "
              "saturates at ~1.0x — the modeled makespans isolate the "
              "scheduling effect.\n\n",
              std::thread::hardware_concurrency());

  // --- 3. bursty arrivals: service latency percentiles --------------------
  std::printf("=== Bursty arrivals: PitexService sojourn latency ===\n");
  const size_t kBursts = SmokeMode() ? 3 : 8;
  const size_t kBurstSize = SmokeMode() ? 16 : 64;
  for (const auto& d : MakeBenchDatasets()) {
    ServeOptions serve_options;
    serve_options.engine = BenchOptions(Method::kIndexEstPlus);
    serve_options.num_threads = kServeThreads;
    serve_options.cache_capacity = 0;
    PitexService service(&d.network, serve_options);
    service.Start();

    const auto users =
        SampleUserGroup(d.network.graph, UserGroup::kMid, kBurstSize, 7);
    // Warm the engine replicas outside the measured window.
    std::vector<PitexQuery> warm;
    for (size_t i = 0; i < kBurstSize; ++i) {
      warm.push_back({.user = users[i % users.size()], .k = 3});
    }
    (void)service.ServeAll(warm);
    service.ClearLatencyWindow();  // percentiles cover the bursts only

    Timer burst_timer;
    std::vector<std::future<ServedResult>> futures;
    for (size_t burst = 0; burst < kBursts; ++burst) {
      // A whole wave arrives at once...
      for (size_t i = 0; i < kBurstSize; ++i) {
        futures.push_back(service.Submit(
            {.user = users[(burst + i) % users.size()], .k = 3}));
      }
      // ...then the stream goes quiet while the queue drains.
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    for (auto& future : futures) (void)future.get();
    const double wall = burst_timer.Seconds();

    const LatencySummary latency = service.Stats().latency;
    std::printf("%-10s %4zu queries in %zu bursts: %8.1f q/s  "
                "p50 %7.2fms  p95 %7.2fms  p99 %7.2fms  max %7.2fms\n",
                d.name.c_str(), futures.size(), kBursts,
                static_cast<double>(futures.size()) / std::max(wall, 1e-9),
                latency.p50 * 1e3, latency.p95 * 1e3, latency.p99 * 1e3,
                latency.max * 1e3);
  }
  std::printf("shape check: p99 >> p50 under bursts (queue wait dominates "
              "the tail); the gap\nshrinks as burst size approaches the "
              "worker count.\n\n");

  // --- 4. overload: admission control + deadlines under a query storm ----
  // A storm several times the service capacity arrives at once. Without
  // admission every query queues (the tail explodes but everyone is
  // eventually served); with a bounded queue the excess sheds instantly
  // and the admitted tail stays flat; with per-query budgets on top,
  // queue-aged queries degrade instead of blocking the ones behind them.
  std::printf("=== Overload: admission + deadlines (docs/robustness.md) "
              "===\n");
  const size_t kStorm = SmokeMode() ? 48 : 256;
  const size_t kStormThreads = 2;  // deliberately under-provisioned
  struct StormOutcome {
    size_t served = 0, shed = 0, degraded = 0, expired = 0;
    double wall = 0.0;
    LatencySummary latency;
  };
  const auto run_storm = [&](const SocialNetwork& network,
                             const ServeOptions& serve_options,
                             const std::vector<PitexQuery>& storm) {
    PitexService service(&network, serve_options);
    service.Start();
    std::vector<PitexQuery> warm(storm.begin(),
                                 storm.begin() + storm.size() / 4);
    for (PitexQuery& q : warm) q.budget_seconds = 0.0;
    (void)service.ServeAll(warm);
    service.ClearLatencyWindow();
    StormOutcome outcome;
    Timer timer;
    std::vector<std::future<ServedResult>> futures;
    futures.reserve(storm.size());
    for (const PitexQuery& query : storm) {
      futures.push_back(service.Submit(query));
    }
    for (auto& future : futures) {
      switch (future.get().status) {
        case ServeStatus::kOk: ++outcome.served; break;
        case ServeStatus::kShed: ++outcome.shed; break;
        case ServeStatus::kDegraded: ++outcome.degraded; break;
        case ServeStatus::kDeadlineExpired: ++outcome.expired; break;
      }
    }
    outcome.wall = timer.Seconds();
    outcome.latency = service.Stats().latency;
    return outcome;
  };

  for (const auto& d : MakeBenchDatasets()) {
    const auto users =
        SampleUserGroup(d.network.graph, UserGroup::kMid, kStorm, 9);
    std::vector<PitexQuery> storm;
    for (size_t i = 0; i < kStorm; ++i) {
      storm.push_back({.user = users[i % users.size()], .k = 3});
    }

    ServeOptions base;
    base.engine = BenchOptions(Method::kIndexEstPlus);
    base.num_threads = kStormThreads;
    base.cache_capacity = 0;  // every admitted query costs real work

    ServeOptions bounded = base;
    bounded.admission.max_queue_depth = 4 * kStormThreads;

    ServeOptions deadlined = bounded;
    std::vector<PitexQuery> budgeted = storm;
    for (PitexQuery& q : budgeted) q.budget_seconds = 0.002;

    const StormOutcome open = run_storm(d.network, base, storm);
    const StormOutcome shed = run_storm(d.network, bounded, storm);
    const StormOutcome soft = run_storm(d.network, deadlined, budgeted);

    std::printf("%-10s open-queue : served %3zu shed %3zu  p99 %8.2fms  "
                "wall %6.1fms\n",
                d.name.c_str(), open.served, open.shed,
                open.latency.p99 * 1e3, open.wall * 1e3);
    std::printf("%-10s bounded    : served %3zu shed %3zu  p99 %8.2fms  "
                "wall %6.1fms\n",
                d.name.c_str(), shed.served, shed.shed,
                shed.latency.p99 * 1e3, shed.wall * 1e3);
    std::printf("%-10s +deadlines : served %3zu shed %3zu degraded %3zu "
                "expired %3zu  p99 %8.2fms\n",
                d.name.c_str(), soft.served, soft.shed, soft.degraded,
                soft.expired, soft.latency.p99 * 1e3);
  }
  std::printf("shape check: the bounded queue sheds most of the storm and "
              "its served-p99 drops\nwell below the open queue's; with "
              "budgets, queue-aged queries report degraded/expired\n"
              "instead of inflating the tail.\n");
  return 0;
}
