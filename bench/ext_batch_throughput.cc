// Extension bench: batch query throughput vs. worker count.
//
// Not a paper figure — the paper reports single-query latency; this
// harness measures the deployment-side metric (queries/second when a
// stream of PITEX queries shares one offline index across a worker
// pool). Expected shape: near-linear scaling for the index methods while
// workers are below the physical core count, with IndexEst+ sustaining
// the highest absolute throughput (same ordering as Fig. 7 latencies).

#include "bench/bench_common.h"
#include "src/core/batch_engine.h"

int main(int argc, char** argv) {
  pitex::bench::InitBench(argc, argv);
  using namespace pitex;
  using namespace pitex::bench;

  std::printf("=== Extension: Batch Throughput (queries/s) vs threads ===\n");
  std::printf("(shared RR-Graph index across workers; mid-degree users; "
              "k=3)\n\n");

  const size_t kBatch = 256;
  const std::vector<size_t> kThreadCounts = {1, 2, 4, 8};
  const std::vector<Method> kMethods = {Method::kLazy, Method::kIndexEst,
                                        Method::kIndexEstPlus,
                                        Method::kDelayMat};

  for (const auto& d : MakeBenchDatasets()) {
    std::printf("--- %s (|V|=%zu |E|=%zu) ---\n", d.name.c_str(),
                d.network.num_vertices(), d.network.num_edges());
    std::printf("%-10s", "method");
    for (const size_t t : kThreadCounts) std::printf(" %9zu-thr", t);
    std::printf("\n");

    const auto users =
        SampleUserGroup(d.network.graph, UserGroup::kMid, kBatch, 3);
    std::vector<PitexQuery> queries;
    for (size_t i = 0; i < kBatch; ++i) {
      queries.push_back({.user = users[i % users.size()], .k = 3});
    }

    for (const Method method : kMethods) {
      std::printf("%-10s", MethodName(method));
      for (const size_t threads : kThreadCounts) {
        BatchOptions options;
        options.engine = BenchOptions(method);
        options.num_threads = threads;
        BatchEngine batch(&d.network, options);
        batch.Prepare();                // offline cost excluded
        (void)batch.ExploreAll(queries);  // warm worker caches
        const auto results = batch.ExploreAll(queries);
        const double qps =
            static_cast<double>(results.size()) /
            std::max(batch.last_batch_seconds(), 1e-9);
        std::printf(" %13.1f", qps);
      }
      std::printf("\n");
    }
    std::printf("\n");
  }
  std::printf("shape check: throughput should rise with threads (sub-linear "
              "beyond core count)\nand rank INDEXEST+ >= DELAYMAT > INDEXEST "
              ">> LAZY, matching Fig. 7 latencies.\n");
  return 0;
}
