// Extension bench: topic-aware influence maximization (the Sec. 2
// related-work problem) on the Table-2 analogs.
//
// Not a paper figure — PITEX searches tag sets for a user; this harness
// exercises the dual problem the library also ships: fixed tag set,
// best k seed users. Two classic IM shapes are checked:
//   1. diminishing returns — greedy marginal spread per seed decays;
//   2. seed quality — greedy RIS beats top-out-degree beats random, by
//      forward-simulated spread.

#include <algorithm>

#include "bench/bench_common.h"
#include "src/core/im_solver.h"
#include "src/sampling/influence_estimator.h"
#include "src/util/random.h"

namespace {

using namespace pitex;

double SimulateSpread(const Graph& graph, const EdgeProbFn& probs,
                      std::span<const VertexId> seeds, int trials,
                      uint64_t seed) {
  Rng rng(seed);
  double total = 0.0;
  std::vector<uint8_t> active(graph.num_vertices());
  std::vector<VertexId> frontier;
  for (int t = 0; t < trials; ++t) {
    std::fill(active.begin(), active.end(), 0);
    frontier.assign(seeds.begin(), seeds.end());
    for (const VertexId s : seeds) active[s] = 1;
    size_t spread = 0;
    while (!frontier.empty()) {
      const VertexId v = frontier.back();
      frontier.pop_back();
      ++spread;
      for (const auto& [w, e] : graph.OutEdges(v)) {
        if (!active[w] && rng.NextBernoulli(probs.Prob(e))) {
          active[w] = 1;
          frontier.push_back(w);
        }
      }
    }
    total += static_cast<double>(spread);
  }
  return total / trials;
}

}  // namespace

int main(int argc, char** argv) {
  pitex::bench::InitBench(argc, argv);
  using namespace pitex::bench;

  std::printf("=== Extension: topic-aware influence maximization ===\n");
  std::printf("(per-dataset tag set = top-3 tags of the best-supported "
              "topic; greedy RIS vs degree vs random seeds; k = 10)\n\n");
  std::printf("%-10s | %10s %10s %10s | %14s\n", "dataset", "greedy",
              "degree", "random", "marginals k=1,5,10");

  for (const auto& d : MakeBenchDatasets()) {
    // Pick a *live* tag set: the topic with the most supporting tags,
    // then its three strongest tags (a random triple is posterior-dead
    // at the sparse densities of Table 2).
    const TopicModel& topics = d.network.topics;
    TopicId best_topic = 0;
    size_t best_support = 0;
    for (TopicId z = 0; z < topics.num_topics(); ++z) {
      size_t support = 0;
      for (TagId w = 0; w < topics.num_tags(); ++w) {
        support += (topics.TagTopic(w, z) > 0.0);
      }
      if (support > best_support) {
        best_support = support;
        best_topic = z;
      }
    }
    std::vector<TagId> ranked(topics.num_tags());
    for (TagId w = 0; w < topics.num_tags(); ++w) ranked[w] = w;
    const size_t take = std::min<size_t>(3, std::max<size_t>(1, best_support));
    std::partial_sort(ranked.begin(),
                      ranked.begin() + static_cast<ptrdiff_t>(take),
                      ranked.end(), [&](TagId a, TagId b) {
                        return topics.TagTopic(a, best_topic) >
                               topics.TagTopic(b, best_topic);
                      });
    ranked.resize(take);
    const std::span<const TagId> tags(ranked);
    ImOptions options;
    options.num_seeds = 10;
    options.theta_per_vertex = 8.0;
    const ImResult greedy = SolveTopicAwareIm(d.network, tags, options);

    const auto post = d.network.topics.Posterior(tags);
    const PosteriorProbs probs(d.network.influence, post);

    // Degree baseline: top-k by out-degree.
    std::vector<VertexId> by_degree(d.network.num_vertices());
    for (VertexId v = 0; v < d.network.num_vertices(); ++v) by_degree[v] = v;
    std::partial_sort(by_degree.begin(), by_degree.begin() + 10,
                      by_degree.end(), [&](VertexId a, VertexId b) {
                        return d.network.graph.OutDegree(a) >
                               d.network.graph.OutDegree(b);
                      });
    by_degree.resize(10);

    // Random baseline.
    Rng rng(71);
    std::vector<VertexId> random_seeds;
    while (random_seeds.size() < 10) {
      const auto v = static_cast<VertexId>(
          rng.NextBounded(d.network.num_vertices()));
      if (std::find(random_seeds.begin(), random_seeds.end(), v) ==
          random_seeds.end()) {
        random_seeds.push_back(v);
      }
    }

    const int kTrials = 400;
    const double greedy_spread =
        SimulateSpread(d.network.graph, probs, greedy.seeds, kTrials, 7);
    const double degree_spread =
        SimulateSpread(d.network.graph, probs, by_degree, kTrials, 7);
    const double random_spread =
        SimulateSpread(d.network.graph, probs, random_seeds, kTrials, 7);

    const auto marginal_at = [&](size_t i) {
      return i < greedy.marginal_spread.size() ? greedy.marginal_spread[i]
                                               : 0.0;
    };
    std::printf("%-10s | %10.1f %10.1f %10.1f | %4.1f %4.1f %4.1f\n",
                d.name.c_str(), greedy_spread, degree_spread, random_spread,
                marginal_at(0), marginal_at(4), marginal_at(9));
  }
  std::printf(
      "\nshape check: greedy >= degree >= random spread on every dataset; "
      "marginal\nspread decays with seed rank (submodularity).\n");
  return 0;
}
