// Table 2: statistics of the (synthetic analog) datasets.
//
// Prints both the paper's published statistics and the statistics of the
// generated bench-scale analogs, so the scale factor is explicit.

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  pitex::bench::InitBench(argc, argv);
  using namespace pitex;
  using namespace pitex::bench;

  std::printf("=== Table 2: Statistics of Datasets ===\n\n");
  std::printf("paper-published targets:\n");
  std::printf("%-10s %10s %10s %8s %5s %5s %8s\n", "dataset", "|V|", "|E|",
              "|E|/|V|", "|Z|", "|W|", "density");
  struct PaperRow {
    const char* name;
    const char* v;
    const char* e;
    double ratio;
    int z, w;
    double density;
  };
  const PaperRow paper[] = {
      {"lastfm", "1.3K", "12K", 8.7, 20, 50, 0.16},
      {"diggs", "15K", "0.2M", 19.9, 20, 50, 0.08},
      {"dblp", "0.5M", "6M", 11.9, 9, 276, 0.32},
      {"twitter", "10M", "12M", 1.2, 50, 250, 0.17},
  };
  for (const auto& row : paper) {
    std::printf("%-10s %10s %10s %8.1f %5d %5d %8.2f\n", row.name, row.v,
                row.e, row.ratio, row.z, row.w, row.density);
  }

  std::printf("\ngenerated bench-scale analogs (PITEX_BENCH_SCALE=%.2f):\n",
              BenchScale());
  std::printf("%-10s %10s %10s %8s %5s %5s %8s\n", "dataset", "|V|", "|E|",
              "|E|/|V|", "|Z|", "|W|", "density");
  for (const auto& d : MakeBenchDatasets()) {
    std::printf("%-10s %10zu %10zu %8.1f %5zu %5zu %8.2f\n", d.name.c_str(),
                d.network.num_vertices(), d.network.num_edges(),
                d.network.graph.AverageDegree(),
                d.network.topics.num_topics(), d.network.topics.num_tags(),
                d.network.topics.Density());
  }
  return 0;
}
