// Extension: Linear Threshold propagation (paper footnote 1).
//
// Compares the IC and LT spreads of each user group's best tags and the
// query cost of LT-based exploration, demonstrating that the PITEX
// framework is propagation-model-agnostic: the LT sampler implements the
// same InfluenceOracle interface and plugs into the same solvers.

#include "bench/bench_common.h"
#include "src/core/best_effort_solver.h"
#include "src/sampling/lazy_sampler.h"
#include "src/sampling/lt_sampler.h"

int main(int argc, char** argv) {
  pitex::bench::InitBench(argc, argv);
  using namespace pitex;
  using namespace pitex::bench;

  const size_t k = 2;
  const size_t queries = BenchQueries();
  std::printf("=== Extension: PITEX under the Linear Threshold model ===\n");
  std::printf("%-10s %-6s | %10s %12s | %10s %12s\n", "dataset", "group",
              "IC time", "IC spread", "LT time", "LT spread");

  for (const auto& d : MakeBenchDatasets()) {
    const UpperBoundContext context(d.network.topics);
    SampleSizePolicy policy;
    policy.num_tags = static_cast<int64_t>(d.network.topics.num_tags());
    policy.k = static_cast<int64_t>(k);
    policy.use_phi = true;
    policy.min_samples = 32;
    policy.max_samples = 512;

    for (UserGroup group : {UserGroup::kHigh, UserGroup::kMid}) {
      const auto users = SampleUserGroup(d.network.graph, group, queries, 17);
      LazySampler ic(d.network.graph, policy, 7);
      LtSampler lt(d.network.graph, policy, 7);
      RunningStats ic_time, ic_spread, lt_time, lt_spread;
      for (VertexId u : users) {
        Timer t1;
        const PitexResult r1 =
            SolveByBestEffort(d.network, {.user = u, .k = k}, context, &ic);
        ic_time.Add(t1.Seconds());
        ic_spread.Add(r1.influence);
        Timer t2;
        const PitexResult r2 =
            SolveByBestEffort(d.network, {.user = u, .k = k}, context, &lt);
        lt_time.Add(t2.Seconds());
        lt_spread.Add(r2.influence);
      }
      std::printf("%-10s %-6s | %10.4f %12.3f | %10.4f %12.3f\n",
                  d.name.c_str(), UserGroupName(group), ic_time.mean(),
                  ic_spread.mean(), lt_time.mean(), lt_spread.mean());
    }
  }
  std::printf(
      "\nshape check: LT runs at IC-like cost; spreads differ (LT is "
      "linear in incoming weight, IC is noisy-or).\n");
  return 0;
}
