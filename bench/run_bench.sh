#!/usr/bin/env bash
# Runs the google-benchmark micro suite (bench/micro_components.cc) in a
# Release build and writes the results to BENCH_micro.json so perf
# trajectory data accumulates across changes.
#
# Usage:
#   bench/run_bench.sh [output.json] [extra benchmark args...]
#
# Environment:
#   BUILD_DIR    Release build directory (default: build-bench)
#   REPETITIONS  benchmark repetitions for aggregates (default: 3)
#
# Compare two runs with google-benchmark's tools/compare.py, or diff the
# JSON directly; docs/perf.md records the pooled-layout before/after.

set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
out_json="${1:-${repo_root}/BENCH_micro.json}"
shift || true

build_dir="${BUILD_DIR:-${repo_root}/build-bench}"
repetitions="${REPETITIONS:-3}"

cmake -B "${build_dir}" -S "${repo_root}" -DCMAKE_BUILD_TYPE=Release \
  -DPITEX_BUILD_TESTS=OFF -DPITEX_BUILD_EXAMPLES=OFF
cmake --build "${build_dir}" -j "$(nproc)" --target micro_components

bench_bin="${build_dir}/bench/micro_components"
if [[ ! -x "${bench_bin}" ]]; then
  echo "error: ${bench_bin} was not built (is libbenchmark-dev installed?)" >&2
  exit 1
fi

"${bench_bin}" \
  --benchmark_repetitions="${repetitions}" \
  --benchmark_report_aggregates_only=true \
  --benchmark_out="${out_json}" \
  --benchmark_out_format=json \
  "$@"

echo "wrote ${out_json}"
