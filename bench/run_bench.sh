#!/usr/bin/env bash
# Runs the google-benchmark micro suite (bench/micro_components.cc) in a
# Release build and writes the results to BENCH_micro.json so perf
# trajectory data accumulates across changes.
#
# Usage:
#   bench/run_bench.sh [output.json] [--compare baseline.json] [extra args...]
#
# --compare diffs the fresh run against a baseline BENCH_micro.json
# (mean-aggregate real_time per benchmark) and flags regressions above
# 25%. It is report-only: the exit code stays 0 so CI jobs can surface
# the table without gating on noisy shared-runner timings. The baseline
# is snapshotted before the run, so comparing against the output path
# itself ("how does this commit compare to the committed numbers?") works.
# The comparison table is also written to <output>.compare.txt next to
# the JSON (the release-bench CI job uploads both as artifacts).
#
# The suite covers the query-side micro benchmarks plus the offline
# pipeline: BM_IndexBuild (arena-staged construction, per-thread sweep),
# BM_SnapshotPublish (serve-mode epoch freeze, serial vs maintenance
# pool) and BM_DynamicRepairSingleEdge.
#
# Environment:
#   BUILD_DIR    Release build directory (default: build-bench)
#   REPETITIONS  benchmark repetitions for aggregates (default: 3)
#
# Compare two runs with google-benchmark's tools/compare.py, or diff the
# JSON directly; docs/perf.md records the pooled-layout and best-effort
# before/after numbers.

set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"

out_json=""
compare_baseline=""
extra_args=()
while (($#)); do
  case "$1" in
    --compare)
      [[ $# -ge 2 ]] || { echo "error: --compare needs a baseline path" >&2; exit 2; }
      compare_baseline="$2"
      shift 2
      ;;
    *)
      if [[ -z "${out_json}" ]]; then
        out_json="$1"
      else
        extra_args+=("$1")
      fi
      shift
      ;;
  esac
done
out_json="${out_json:-${repo_root}/BENCH_micro.json}"

baseline_snapshot=""
if [[ -n "${compare_baseline}" ]]; then
  if [[ ! -f "${compare_baseline}" ]]; then
    echo "error: baseline ${compare_baseline} not found" >&2
    exit 2
  fi
  baseline_snapshot="$(mktemp)"
  trap 'rm -f "${baseline_snapshot}"' EXIT
  cp "${compare_baseline}" "${baseline_snapshot}"
fi

build_dir="${BUILD_DIR:-${repo_root}/build-bench}"
repetitions="${REPETITIONS:-3}"

cmake -B "${build_dir}" -S "${repo_root}" -DCMAKE_BUILD_TYPE=Release \
  -DPITEX_BUILD_TESTS=OFF -DPITEX_BUILD_EXAMPLES=OFF
cmake --build "${build_dir}" -j "$(nproc)" --target micro_components

bench_bin="${build_dir}/bench/micro_components"
if [[ ! -x "${bench_bin}" ]]; then
  echo "error: ${bench_bin} was not built (is libbenchmark-dev installed?)" >&2
  exit 1
fi

"${bench_bin}" \
  --benchmark_repetitions="${repetitions}" \
  --benchmark_report_aggregates_only=true \
  --benchmark_out="${out_json}" \
  --benchmark_out_format=json \
  ${extra_args[@]+"${extra_args[@]}"}

echo "wrote ${out_json}"

if [[ -n "${baseline_snapshot}" ]]; then
  compare_txt="${out_json%.json}.compare.txt"
  python3 - "${baseline_snapshot}" "${out_json}" << 'PYEOF' | tee "${compare_txt}"
import json
import sys

REGRESSION_PCT = 25.0

def mean_times(path):
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for bench in doc.get("benchmarks", []):
        # With report_aggregates_only the file holds aggregates; fall back
        # to raw entries for baselines produced without repetitions.
        if bench.get("aggregate_name", "") not in ("", "mean"):
            continue
        name = bench.get("run_name", bench.get("name", ""))
        out[name] = (bench.get("real_time", 0.0), bench.get("time_unit", "ns"))
    return out

base = mean_times(sys.argv[1])
cur = mean_times(sys.argv[2])

shared = sorted(set(base) & set(cur))
added = sorted(set(cur) - set(base))
removed = sorted(set(base) - set(cur))

print()
print(f"=== benchmark comparison vs baseline (mean real_time, >"
      f"{REGRESSION_PCT:.0f}% slower flagged) ===")
print(f"{'benchmark':<44} {'baseline':>12} {'current':>12} {'delta':>8}")
regressions = []
for name in shared:
    b, unit = base[name]
    c, _ = cur[name]
    delta = 0.0 if b == 0 else (c - b) / b * 100.0
    flag = ""
    if delta > REGRESSION_PCT:
        flag = "  REGRESSION"
        regressions.append((name, delta))
    print(f"{name:<44} {b:>10.1f}{unit:<2} {c:>10.1f}{unit:<2} "
          f"{delta:>+7.1f}%{flag}")
for name in added:
    print(f"{name:<44} {'-':>12} {cur[name][0]:>10.1f}{cur[name][1]:<2}     new")
for name in removed:
    print(f"{name:<44} {base[name][0]:>10.1f}{base[name][1]:<2} {'-':>12} removed")
print()
if regressions:
    print(f"{len(regressions)} benchmark(s) regressed more than "
          f"{REGRESSION_PCT:.0f}% (report-only, not gating):")
    for name, delta in regressions:
        print(f"  {name}: {delta:+.1f}%")
else:
    print("no regressions above the threshold")
PYEOF
  echo "wrote ${compare_txt}"
fi
