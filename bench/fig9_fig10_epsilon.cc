// Figures 9 + 10: query efficiency and influence spread when varying the
// accuracy parameter eps in {0.3, 0.5, 0.7, 0.9}, for the offline
// comparison methods (LAZY, INDEXEST, INDEXEST+, DELAYMAT) on the mid
// user group.
//
// Expected shape (paper): smaller eps -> more samples -> slower for every
// method; index methods keep their orders-of-magnitude lead; influence
// spreads drift apart as eps grows (fewer samples, noisier estimates).

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  pitex::bench::InitBench(argc, argv);
  using namespace pitex;
  using namespace pitex::bench;

  const size_t k = 2;
  const size_t queries = BenchQueries();
  std::printf("=== Fig 9 (time) + Fig 10 (influence): vary eps ===\n");
  std::printf("mid user group, k=%zu, delta=1000\n", k);

  for (const auto& d : MakeBenchDatasets()) {
    std::printf("\n[%s]\n", d.name.c_str());
    std::printf("%-10s %6s %14s %14s\n", "method", "eps", "time(s)",
                "influence");
    const auto users =
        SampleUserGroup(d.network.graph, UserGroup::kMid, queries, 17);
    for (Method method : OfflineComparisonMethods()) {
      for (double eps : {0.3, 0.5, 0.7, 0.9}) {
        EngineOptions options = BenchOptions(method);
        options.eps = eps;
        // Let the sample budget actually respond to eps.
        options.max_samples = 4096;
        PitexEngine engine(&d.network, options);
        engine.BuildIndex();
        const QuerySetResult r = RunQuerySet(&engine, users, k);
        std::printf("%-10s %6.1f %14.4f %14.3f\n", MethodName(method), eps,
                    r.avg_seconds, r.avg_influence);
      }
    }
  }
  std::printf(
      "\nshape check: time decreases with larger eps; index methods "
      "dominate LAZY at every eps.\n");
  return 0;
}
