// Extension bench: replication catch-up and time-to-promote (failover).
//
// Not a paper figure — the paper serves from one in-memory index; this
// harness measures what the replicated serving tier
// (src/serve/replication.h, docs/robustness.md "Replication &
// failover") costs on the availability axis:
//   1. catch-up time as a function of follower lag: a follower that
//      connects L acknowledged batches behind the primary must bootstrap
//      and replay the backlog before it is a credible failover target.
//      Shipping is replay-bound, so catch-up should grow roughly
//      linearly with L;
//   2. time-to-promote after the primary goes quiet, measured at the
//      same lag levels. Because the follower replays continuously (it
//      never batches the backlog for later), promotion waits only on
//      the heartbeat timeout — the curve should be flat in L, and that
//      flatness is the point: lag costs you during steady state, not
//      during the outage.

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/serve/pitex_service.h"
#include "src/serve/replication.h"
#include "src/serve/term_authority.h"

int main(int argc, char** argv) {
  pitex::bench::InitBench(argc, argv);
  using namespace pitex;
  using namespace pitex::bench;
  namespace fs = std::filesystem;

  const std::vector<uint64_t> lags =
      SmokeMode() ? std::vector<uint64_t>{4, 16}
                  : std::vector<uint64_t>{16, 64, 256};
  constexpr double kHeartbeatTimeoutMs = 150.0;
  const std::string dir =
      (fs::temp_directory_path() / "pitex_ext_failover").string();

  const auto make_batch = [](const SocialNetwork& network, uint64_t i) {
    std::vector<EdgeInfluenceUpdate> batch(1);
    batch[0].edge = static_cast<EdgeId>((i * 97) % network.num_edges());
    batch[0].entries = {
        {static_cast<TopicId>(i % network.topics.num_topics()),
         0.2 + 0.1 * static_cast<double>(i % 5)}};
    return batch;
  };

  std::printf("=== Extension: replication catch-up and time-to-promote ===\n");
  std::printf("(follower connects L batches behind; heartbeat timeout "
              "%.0f ms)\n\n", kHeartbeatTimeoutMs);

  for (const auto& d : MakeBenchDatasets()) {
    for (const uint64_t lag : lags) {
      fs::remove_all(dir);
      InProcessTermAuthority authority(1);
      ServeOptions primary_options;
      primary_options.engine = BenchOptions(Method::kIndexEst);
      primary_options.num_threads = 2;
      primary_options.enable_updates = true;
      primary_options.durability_dir = dir + "/primary";
      primary_options.checkpoint_every = 0;  // backlog lives in the WAL
      primary_options.term_authority = &authority;
      primary_options.term = 1;
      PitexService primary(&d.network, primary_options);
      primary.Start();
      // The primary races ahead while the follower does not exist yet:
      // this is the lag the failover target must erase.
      for (uint64_t i = 0; i < lag; ++i) {
        (void)primary.ApplyUpdates(make_batch(d.network, i));
      }

      auto [primary_end, follower_end] = MakeInProcessTransportPair();
      WalShipperOptions ship;
      ship.wal_dir = primary_options.durability_dir;
      WalShipper shipper(&primary, primary_end.get(), ship);
      FollowerOptions follower_options;
      follower_options.serve = primary_options;
      follower_options.serve.durability_dir = dir + "/follower";
      follower_options.serve.term_authority = nullptr;
      follower_options.heartbeat_timeout_ms = kHeartbeatTimeoutMs;
      follower_options.authority = &authority;
      FollowerService follower(&d.network, follower_end.get(),
                               follower_options);
      shipper.Start();
      Timer catch_up_timer;
      std::string error;
      if (!follower.Start(&error)) {
        std::printf("follower bootstrap failed: %s\n", error.c_str());
        return 1;
      }
      const uint64_t target = primary.durable_lsn();
      while (follower.applied_lsn() < target) {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
      const double catch_up_seconds = catch_up_timer.Seconds();

      // The caught-up follower loses its primary: silence, timeout,
      // election. Promotion should not care how big the backlog was.
      shipper.Stop();
      Timer promote_timer;
      while (!follower.promoted()) {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
      const double promote_seconds = promote_timer.Seconds();
      follower.Stop();
      std::printf("%-10s lag=%-4llu catch-up %8.2f ms (%6.2f ms/batch), "
                  "time-to-promote %7.2f ms (timeout %.0f ms)\n",
                  d.name.c_str(), static_cast<unsigned long long>(lag),
                  catch_up_seconds * 1e3,
                  catch_up_seconds * 1e3 / static_cast<double>(lag),
                  promote_seconds * 1e3, kHeartbeatTimeoutMs);
    }
    std::printf("\n");
  }
  fs::remove_all(dir);
  std::printf("shape check: catch-up grows with the backlog (replay-bound); "
              "time-to-promote\nstays pinned to the heartbeat timeout because "
              "the follower replays continuously\nand needs no catch-up pass "
              "at election time.\n");
  return 0;
}
