// Figures 7 + 8: query efficiency and influence spread when varying the
// query user group (high / mid / low out-degree), for all seven methods on
// all four dataset analogs. Defaults match Sec. 7.3: eps=0.7, delta=1000,
// k is reduced from the paper's 3 to 2 to keep the argument-free run
// laptop-sized (set PITEX_BENCH_K=3 for the paper value).
//
// Expected shape (paper): LAZY beats MC/RR; TIM sits between LAZY and the
// index methods on large graphs; INDEXEST is orders of magnitude faster
// than online sampling; INDEXEST+ ~4-6x over INDEXEST; DELAYMAT close to
// INDEXEST+. Influence spreads are comparable for all guaranteed methods;
// TIM is inferior.

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  pitex::bench::InitBench(argc, argv);
  using namespace pitex;
  using namespace pitex::bench;

  const char* env_k = std::getenv("PITEX_BENCH_K");
  const size_t k = env_k != nullptr ? static_cast<size_t>(std::atoi(env_k)) : 2;
  const size_t queries = BenchQueries();

  std::printf("=== Fig 7 (time) + Fig 8 (influence): vary user group ===\n");
  std::printf("k=%zu, eps=0.7, delta=1000, %zu queries per group\n", k,
              queries);

  for (const auto& d : MakeBenchDatasets()) {
    std::printf("\n[%s] |V|=%zu |E|=%zu\n", d.name.c_str(),
                d.network.num_vertices(), d.network.num_edges());
    std::printf("%-10s %-6s %14s %14s\n", "method", "group", "time(s)",
                "influence");
    for (Method method : AllMethods()) {
      PitexEngine engine(&d.network, BenchOptions(method));
      engine.BuildIndex();
      for (UserGroup group : AllGroups()) {
        const auto users =
            SampleUserGroup(d.network.graph, group, queries, 17);
        const QuerySetResult r = RunQuerySet(&engine, users, k);
        std::printf("%-10s %-6s %14.4f %14.3f\n", MethodName(method),
                    UserGroupName(group), r.avg_seconds, r.avg_influence);
      }
    }
  }
  std::printf(
      "\nshape check: time INDEXEST+ <= DELAYMAT < INDEXEST << LAZY < "
      "MC/RR; influence comparable for all but TIM (lower).\n");
  return 0;
}
