// Figure 12: scalability on the twitter analog — (a) varying the tag
// vocabulary size |Omega|, (b) varying the topic count |Z|.
//
// Expected shape (paper): time grows with |Omega| (more candidate sets);
// time *decreases* with |Z| because the tag-topic density drops and
// best-effort pruning strengthens.

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  pitex::bench::InitBench(argc, argv);
  using namespace pitex;
  using namespace pitex::bench;

  const size_t k = 2;
  const size_t queries = BenchQueries();
  DatasetSpec base = BenchSpecs().back();  // the twitter analog

  std::printf("=== Fig 12a: vary |Omega| (twitter analog) ===\n");
  std::printf("%-10s %6s %14s\n", "method", "|W|", "time(s)");
  for (size_t num_tags : {10u, 20u, 30u, 40u, 50u}) {
    DatasetSpec spec = base;
    spec.num_tags = num_tags;
    const SocialNetwork network = GenerateDataset(spec);
    const auto users =
        SampleUserGroup(network.graph, UserGroup::kMid, queries, 17);
    for (Method method : OfflineComparisonMethods()) {
      PitexEngine engine(&network, BenchOptions(method));
      engine.BuildIndex();
      const QuerySetResult r = RunQuerySet(&engine, users, k);
      std::printf("%-10s %6zu %14.4f\n", MethodName(method), num_tags,
                  r.avg_seconds);
    }
  }

  std::printf("\n=== Fig 12b: vary |Z| (twitter analog) ===\n");
  std::printf("%-10s %6s %10s %14s\n", "method", "|Z|", "density", "time(s)");
  for (size_t num_topics : {5u, 10u, 20u, 30u, 40u}) {
    DatasetSpec spec = base;
    spec.num_topics = num_topics;
    const SocialNetwork network = GenerateDataset(spec);
    const auto users =
        SampleUserGroup(network.graph, UserGroup::kMid, queries, 17);
    for (Method method : OfflineComparisonMethods()) {
      PitexEngine engine(&network, BenchOptions(method));
      engine.BuildIndex();
      const QuerySetResult r = RunQuerySet(&engine, users, k);
      std::printf("%-10s %6zu %10.3f %14.4f\n", MethodName(method),
                  num_topics, network.topics.Density(), r.avg_seconds);
    }
  }
  std::printf(
      "\nshape check: 12a time grows with |Omega|; 12b time shrinks as |Z| "
      "grows (density falls -> stronger pruning).\n");
  return 0;
}
