// Tests for the planted case study (Table 4): structure, ground truth,
// and end-to-end accuracy of PITEX answers against the planted tags.

#include <gtest/gtest.h>

#include "src/core/engine.h"
#include "src/datasets/case_study.h"

namespace pitex {
namespace {

TEST(CaseStudyTest, HasEightResearchersWithGroundTruth) {
  const CaseStudyData data = GenerateCaseStudy({});
  ASSERT_EQ(data.researchers.size(), 8u);
  for (const auto& r : data.researchers) {
    EXPECT_FALSE(r.name.empty());
    EXPECT_LT(r.vertex, data.network.num_vertices());
    EXPECT_FALSE(r.topics.empty());
    // At least the 5 primary tags per planted area, plus the tags whose
    // random secondary support lands on the researcher's areas.
    EXPECT_GE(r.ground_truth.size(), 5 * r.topics.size());
    EXPECT_LT(r.ground_truth.size(), 40u);
  }
}

TEST(CaseStudyTest, ResearchersAreHubs) {
  CaseStudyOptions options;
  options.hub_degree = 60;
  const CaseStudyData data = GenerateCaseStudy(options);
  for (const auto& r : data.researchers) {
    EXPECT_GE(data.network.graph.OutDegree(r.vertex), options.hub_degree);
  }
}

TEST(CaseStudyTest, VocabularyUsesResearchKeywords) {
  const CaseStudyData data = GenerateCaseStudy({});
  EXPECT_EQ(data.network.tags.size(), 40u);
  EXPECT_TRUE(data.network.tags.Find("mining").has_value());
  EXPECT_TRUE(data.network.tags.Find("distributed").has_value());
  EXPECT_TRUE(data.network.tags.Find("complexity").has_value());
}

TEST(CaseStudyAccuracyTest, Formula) {
  const std::vector<TagId> truth{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(CaseStudyAccuracy(std::vector<TagId>{1, 2, 9}, truth),
                   2.0 / 3.0);
  EXPECT_DOUBLE_EQ(CaseStudyAccuracy(std::vector<TagId>{8, 9}, truth), 0.0);
  EXPECT_DOUBLE_EQ(CaseStudyAccuracy(std::vector<TagId>{1}, truth), 1.0);
  EXPECT_DOUBLE_EQ(CaseStudyAccuracy({}, truth), 0.0);
}

TEST(CaseStudyTest, PitexRecoversPlantedTags) {
  // The Table-4 experiment end to end: query each researcher with k = 5;
  // average accuracy against planted ground truth should be high (the
  // paper reports 0.78 with human annotators).
  const CaseStudyData data = GenerateCaseStudy({});
  EngineOptions options;
  options.method = Method::kLazy;
  options.eps = 0.4;
  options.min_samples = 1000;
  options.max_samples = 6000;
  PitexEngine engine(&data.network, options);

  double total_accuracy = 0.0;
  for (const auto& r : data.researchers) {
    const PitexResult result = engine.Explore({.user = r.vertex, .k = 5});
    total_accuracy += CaseStudyAccuracy(result.tags, r.ground_truth);
  }
  // Planted ground truth is objective (unlike the paper's annotators),
  // so recovery should be near-perfect — every posterior-optimal tag is
  // in the truth set by construction.
  const double avg = total_accuracy / 8.0;
  EXPECT_GT(avg, 0.85);
}

TEST(CaseStudyTest, DeterministicUnderSeed) {
  const CaseStudyData a = GenerateCaseStudy({});
  const CaseStudyData b = GenerateCaseStudy({});
  EXPECT_EQ(a.network.num_edges(), b.network.num_edges());
  for (size_t i = 0; i < a.researchers.size(); ++i) {
    EXPECT_EQ(a.researchers[i].vertex, b.researchers[i].vertex);
    EXPECT_EQ(a.researchers[i].ground_truth, b.researchers[i].ground_truth);
  }
}

}  // namespace
}  // namespace pitex
