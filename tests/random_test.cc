#include "src/util/random.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace pitex {
namespace {

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a.NextU64() == b.NextU64());
  EXPECT_LT(equal, 2);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, DoubleMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, BoundedWithinRange) {
  Rng rng(5);
  for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, BoundedCoversAllValues) {
  Rng rng(17);
  std::vector<int> counts(7, 0);
  for (int i = 0; i < 7000; ++i) ++counts[rng.NextBounded(7)];
  for (int c : counts) EXPECT_GT(c, 700);  // ~1000 each
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
    EXPECT_FALSE(rng.NextBernoulli(-1.0));
    EXPECT_TRUE(rng.NextBernoulli(2.0));
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(29);
  int heads = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) heads += rng.NextBernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(heads) / n, 0.3, 0.01);
}

TEST(RngTest, GeometricOneAlwaysOne) {
  Rng rng(31);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.NextGeometric(1.0), 1u);
}

TEST(RngTest, GeometricMeanMatches) {
  // E[Geometric(p)] = 1/p.
  Rng rng(37);
  for (double p : {0.5, 0.2, 0.05}) {
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
      sum += static_cast<double>(rng.NextGeometric(p));
    }
    EXPECT_NEAR(sum / n, 1.0 / p, 0.05 / p) << "p=" << p;
  }
}

TEST(RngTest, GeometricAtLeastOne) {
  Rng rng(41);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(rng.NextGeometric(0.9), 1u);
}

TEST(RngTest, SplitIndependent) {
  Rng parent(99);
  Rng child = parent.Split();
  // The split stream should not replay the parent's stream.
  Rng parent_again(99);
  parent_again.NextU64();  // advance past the split draw
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    equal += (child.NextU64() == parent_again.NextU64());
  }
  EXPECT_LT(equal, 2);
}

TEST(SplitMix64Test, KnownSequenceIsStable) {
  uint64_t s1 = 42, s2 = 42;
  for (int i = 0; i < 10; ++i) EXPECT_EQ(SplitMix64(&s1), SplitMix64(&s2));
}

}  // namespace
}  // namespace pitex
