#include "src/graph/generators.h"

#include <gtest/gtest.h>

namespace pitex {
namespace {

TEST(ErdosRenyiTest, EdgeCountAndNoSelfLoops) {
  Rng rng(1);
  Graph g = ErdosRenyi(100, 500, &rng);
  EXPECT_EQ(g.num_vertices(), 100u);
  EXPECT_EQ(g.num_edges(), 500u);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_NE(g.Tail(e), g.Head(e));
  }
}

TEST(PreferentialAttachmentTest, BasicShape) {
  Rng rng(2);
  Graph g = PreferentialAttachment(500, 3, &rng);
  EXPECT_EQ(g.num_vertices(), 500u);
  // Each vertex v >= 1 emits min(3, v) edges minus rare self-collisions.
  EXPECT_GT(g.num_edges(), 1300u);
  EXPECT_LE(g.num_edges(), 3 * 499u);
}

TEST(PreferentialAttachmentTest, ProducesSkewedInDegrees) {
  Rng rng(3);
  Graph g = PreferentialAttachment(2000, 2, &rng);
  size_t max_in = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    max_in = std::max(max_in, g.InDegree(v));
  }
  // Power-law-ish: the hub should be far above the mean (~2).
  EXPECT_GT(max_in, 20u);
}

TEST(StarTest, MatchesFig3a) {
  Graph g = Star(11);
  EXPECT_EQ(g.num_vertices(), 11u);
  EXPECT_EQ(g.num_edges(), 10u);
  EXPECT_EQ(g.OutDegree(0), 10u);
  for (VertexId v = 1; v < 11; ++v) {
    EXPECT_EQ(g.InDegree(v), 1u);
    EXPECT_EQ(g.OutDegree(v), 0u);
  }
}

TEST(CelebrityTest, MatchesFig3b) {
  const size_t n = 5;
  Graph g = Celebrity(n);
  EXPECT_EQ(g.num_vertices(), 2 * n + 1);
  EXPECT_EQ(g.num_edges(), 2 * n);
  EXPECT_EQ(g.OutDegree(0), n);  // center -> followers
  EXPECT_EQ(g.InDegree(0), n);   // fans -> center
  for (VertexId v = 1; v <= n; ++v) EXPECT_EQ(g.InDegree(v), 1u);
  for (VertexId v = n + 1; v <= 2 * n; ++v) EXPECT_EQ(g.OutDegree(v), 1u);
}

TEST(ChainTest, LinearStructure) {
  Graph g = Chain(5);
  EXPECT_EQ(g.num_edges(), 4u);
  for (EdgeId e = 0; e < 4; ++e) {
    EXPECT_EQ(g.Tail(e) + 1, g.Head(e));
  }
}

TEST(ChainTest, SingleVertex) {
  Graph g = Chain(1);
  EXPECT_EQ(g.num_vertices(), 1u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(GeneratorsTest, DeterministicUnderSameSeed) {
  Rng rng1(9), rng2(9);
  Graph a = PreferentialAttachment(200, 2, &rng1);
  Graph b = PreferentialAttachment(200, 2, &rng2);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (EdgeId e = 0; e < a.num_edges(); ++e) {
    EXPECT_EQ(a.Tail(e), b.Tail(e));
    EXPECT_EQ(a.Head(e), b.Head(e));
  }
}

}  // namespace
}  // namespace pitex
