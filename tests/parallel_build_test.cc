// Deterministic parallel index construction: the index must be
// bit-identical for every thread count.

#include <gtest/gtest.h>

#include <algorithm>

#include "running_example.h"
#include "src/datasets/synthetic.h"
#include "src/index/rr_index.h"

namespace pitex {
namespace {

void ExpectIndexesIdentical(const RrIndex& a, const RrIndex& b) {
  ASSERT_EQ(a.num_graphs(), b.num_graphs());
  for (size_t i = 0; i < a.num_graphs(); ++i) {
    const RRView ga = a.graph(i);
    const RRView gb = b.graph(i);
    ASSERT_EQ(ga.root, gb.root) << "graph " << i;
    ASSERT_TRUE(std::ranges::equal(ga.vertices, gb.vertices))
        << "graph " << i;
    ASSERT_TRUE(std::ranges::equal(ga.offsets, gb.offsets)) << "graph " << i;
    ASSERT_EQ(ga.edges.size(), gb.edges.size()) << "graph " << i;
    for (size_t j = 0; j < ga.edges.size(); ++j) {
      EXPECT_EQ(ga.edges[j].head_local, gb.edges[j].head_local);
      EXPECT_EQ(ga.edges[j].edge, gb.edges[j].edge);
      EXPECT_EQ(ga.edges[j].threshold, gb.edges[j].threshold);
    }
  }
}

TEST(ParallelBuildTest, OneVsTwoThreadsIdentical) {
  SocialNetwork n = MakeRunningExample();
  RrIndexOptions serial;
  serial.theta_override = 2000;
  RrIndexOptions parallel = serial;
  parallel.num_build_threads = 2;

  RrIndex a(n, serial), b(n, parallel);
  a.Build();
  b.Build();
  ExpectIndexesIdentical(a, b);
}

TEST(ParallelBuildTest, FourThreadsOnSyntheticDataset) {
  SocialNetwork n = GenerateDataset(LastfmSpec(0.1));
  RrIndexOptions serial;
  serial.theta_override = 500;
  RrIndexOptions parallel = serial;
  parallel.num_build_threads = 4;

  RrIndex a(n, serial), b(n, parallel);
  a.Build();
  b.Build();
  ExpectIndexesIdentical(a, b);
}

TEST(ParallelBuildTest, ContainingListsIdentical) {
  SocialNetwork n = MakeRunningExample();
  RrIndexOptions serial;
  serial.theta_override = 1000;
  RrIndexOptions parallel = serial;
  parallel.num_build_threads = 3;

  RrIndex a(n, serial), b(n, parallel);
  a.Build();
  b.Build();
  for (VertexId v = 0; v < n.num_vertices(); ++v) {
    EXPECT_TRUE(std::ranges::equal(a.Containing(v), b.Containing(v)))
        << "vertex " << v;
  }
}

TEST(ParallelBuildTest, EstimatesIdentical) {
  SocialNetwork n = MakeRunningExample();
  RrIndexOptions serial;
  serial.theta_override = 3000;
  RrIndexOptions parallel = serial;
  parallel.num_build_threads = 2;

  RrIndex a(n, serial), b(n, parallel);
  a.Build();
  b.Build();
  const TagId tags[] = {2, 3};
  const auto post = n.topics.Posterior(tags);
  const PosteriorProbs probs(n.influence, post);
  EXPECT_DOUBLE_EQ(a.EstimateInfluence(0, probs).influence,
                   b.EstimateInfluence(0, probs).influence);
}

}  // namespace
}  // namespace pitex
