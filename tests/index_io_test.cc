// Tests for index persistence (src/index/index_io.h): byte-exact round
// trips of RR-Graph and DelayMat indexes, fingerprint binding to the
// source network, and rejection of truncated / corrupted / mismatched
// files.

#include "src/index/index_io.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <limits>
#include <sstream>
#include <string>

#include "running_example.h"
#include "src/datasets/synthetic.h"
#include "src/index/edge_cut.h"
#include "src/util/failpoint.h"
#include "src/util/serialize.h"

namespace pitex {
namespace {

RrIndexOptions SmallOptions() {
  RrIndexOptions options;
  options.theta_override = 4000;
  options.seed = 11;
  return options;
}

// A second, structurally different network for fingerprint tests.
SocialNetwork MakeOtherNetwork() {
  SocialNetwork network = MakeRunningExample();
  // Perturb one influence probability: same topology, different model.
  InfluenceGraphBuilder influence(network.graph.num_edges());
  for (EdgeId e = 0; e < network.graph.num_edges(); ++e) {
    std::vector<EdgeTopicEntry> entries(
        network.influence.EdgeTopics(e).begin(),
        network.influence.EdgeTopics(e).end());
    if (e == 0) entries[0].prob *= 0.5;
    influence.SetEdgeTopics(e, entries);
  }
  network.influence = influence.Build();
  return network;
}

TEST(NetworkFingerprintTest, StableAndSensitive) {
  const SocialNetwork a = MakeRunningExample();
  const SocialNetwork b = MakeRunningExample();
  EXPECT_EQ(NetworkFingerprint(a), NetworkFingerprint(b));
  const SocialNetwork c = MakeOtherNetwork();
  EXPECT_NE(NetworkFingerprint(a), NetworkFingerprint(c));
}

TEST(IndexIoTest, RrIndexRoundTripsExactly) {
  const SocialNetwork n = MakeRunningExample();
  RrIndex index(n, SmallOptions());
  index.Build();

  std::stringstream file;
  std::string error;
  ASSERT_TRUE(SaveRrIndex(index, file, &error)) << error;
  const auto loaded = LoadRrIndex(n, file, &error);
  ASSERT_NE(loaded, nullptr) << error;

  ASSERT_EQ(loaded->theta(), index.theta());
  ASSERT_EQ(loaded->num_graphs(), index.num_graphs());
  for (size_t i = 0; i < index.num_graphs(); ++i) {
    const RRView original = index.graph(i);
    const RRView restored = loaded->graph(i);
    EXPECT_EQ(restored.root, original.root);
    EXPECT_TRUE(std::ranges::equal(restored.vertices, original.vertices));
    EXPECT_TRUE(std::ranges::equal(restored.offsets, original.offsets));
    ASSERT_EQ(restored.edges.size(), original.edges.size());
    for (size_t j = 0; j < original.edges.size(); ++j) {
      EXPECT_EQ(restored.edges[j].head_local, original.edges[j].head_local);
      EXPECT_EQ(restored.edges[j].edge, original.edges[j].edge);
      EXPECT_EQ(restored.edges[j].threshold, original.edges[j].threshold);
    }
  }
  for (VertexId v = 0; v < n.num_vertices(); ++v) {
    EXPECT_TRUE(std::ranges::equal(loaded->Containing(v),
                                   index.Containing(v)))
        << "vertex " << v;
  }
}

TEST(IndexIoTest, LoadedIndexGivesIdenticalEstimates) {
  const SocialNetwork n = MakeRunningExample();
  RrIndex index(n, SmallOptions());
  index.Build();

  std::stringstream file;
  ASSERT_TRUE(SaveRrIndex(index, file));
  const auto loaded = LoadRrIndex(n, file);
  ASSERT_NE(loaded, nullptr);

  for (TagId a = 0; a < 4; ++a) {
    for (TagId b = a + 1; b < 4; ++b) {
      const TagId tags[] = {a, b};
      const auto post = n.topics.Posterior(tags);
      const PosteriorProbs probs(n.influence, post);
      for (VertexId u = 0; u < n.num_vertices(); ++u) {
        const Estimate original = index.EstimateInfluence(u, probs);
        const Estimate restored = loaded->EstimateInfluence(u, probs);
        EXPECT_EQ(restored.influence, original.influence);
        EXPECT_EQ(restored.samples, original.samples);
      }
    }
  }
}

TEST(IndexIoTest, LoadedIndexServesIndexEstPlus) {
  const SocialNetwork n = MakeRunningExample();
  RrIndex index(n, SmallOptions());
  index.Build();

  std::stringstream file;
  ASSERT_TRUE(SaveRrIndex(index, file));
  const auto loaded = LoadRrIndex(n, file);
  ASSERT_NE(loaded, nullptr);

  PrunedRrIndex pruned_original(&index, &n.influence);
  PrunedRrIndex pruned_loaded(loaded.get(), &n.influence);
  const TagId tags[] = {2, 3};
  const auto post = n.topics.Posterior(tags);
  const PosteriorProbs probs(n.influence, post);
  for (VertexId u = 0; u < n.num_vertices(); ++u) {
    EXPECT_EQ(pruned_loaded.EstimateInfluence(u, probs).influence,
              pruned_original.EstimateInfluence(u, probs).influence);
  }
}

// Re-encodes a built index in the legacy v1 format (one record per
// graph) exactly as the pre-pool writer produced it.
std::string EncodeAsV1(const RrIndex& index, const SocialNetwork& n,
                       const RrIndexOptions& options) {
  std::stringstream out;
  BinaryWriter writer(&out);
  writer.WriteString("PITEXIDX");
  writer.WriteU32(1);  // version 1
  writer.WriteU8(1);   // kind: RR-Graphs
  writer.WriteU64(NetworkFingerprint(n));
  writer.WriteF64(options.eps);
  writer.WriteF64(options.delta);
  writer.WriteU64(static_cast<uint64_t>(options.cap_k));
  writer.WriteU64(options.seed);
  writer.WriteU64(index.theta());
  writer.WriteU64(index.num_graphs());
  for (size_t i = 0; i < index.num_graphs(); ++i) {
    const RRView rr = index.graph(i);
    writer.WriteU32(rr.root);
    writer.WriteVector<VertexId>(rr.vertices);
    writer.WriteVector<uint32_t>(rr.offsets);
    writer.WriteU64(rr.edges.size());
    for (const RRLocalEdge& edge : rr.edges) {
      writer.WriteU32(edge.head_local);
      writer.WriteU32(edge.edge);
      writer.WriteF32(edge.threshold);
    }
  }
  writer.WriteF64(index.build_seconds());
  writer.WriteChecksum();
  return out.str();
}

TEST(IndexIoTest, ReadsVersion1Files) {
  // Read-compat: a legacy v1 file must load into the pooled index with
  // identical sketches, containment and estimates.
  const SocialNetwork n = MakeRunningExample();
  const RrIndexOptions options = SmallOptions();
  RrIndex index(n, options);
  index.Build();

  std::stringstream v1(EncodeAsV1(index, n, options));
  std::string error;
  const auto loaded = LoadRrIndex(n, v1, &error);
  ASSERT_NE(loaded, nullptr) << error;

  ASSERT_EQ(loaded->theta(), index.theta());
  ASSERT_EQ(loaded->num_graphs(), index.num_graphs());
  for (size_t i = 0; i < index.num_graphs(); ++i) {
    const RRView original = index.graph(i);
    const RRView restored = loaded->graph(i);
    ASSERT_EQ(restored.root, original.root) << "graph " << i;
    ASSERT_TRUE(std::ranges::equal(restored.vertices, original.vertices));
    ASSERT_TRUE(std::ranges::equal(restored.offsets, original.offsets));
    ASSERT_EQ(restored.edges.size(), original.edges.size());
  }
  for (VertexId v = 0; v < n.num_vertices(); ++v) {
    EXPECT_TRUE(std::ranges::equal(loaded->Containing(v),
                                   index.Containing(v)));
  }
  const TagId tags[] = {2, 3};
  const auto post = n.topics.Posterior(tags);
  const PosteriorProbs probs(n.influence, post);
  for (VertexId u = 0; u < n.num_vertices(); ++u) {
    EXPECT_EQ(loaded->EstimateInfluence(u, probs).influence,
              index.EstimateInfluence(u, probs).influence);
  }
}

TEST(IndexIoTest, TruncatedVersion1Rejected) {
  const SocialNetwork n = MakeRunningExample();
  const RrIndexOptions options = SmallOptions();
  RrIndex index(n, options);
  index.Build();
  const std::string bytes = EncodeAsV1(index, n, options);
  for (const size_t keep : {bytes.size() - 5, bytes.size() / 2}) {
    std::stringstream truncated(bytes.substr(0, keep));
    std::string error;
    EXPECT_EQ(LoadRrIndex(n, truncated, &error), nullptr)
        << "kept " << keep << " of " << bytes.size();
  }
}

TEST(IndexIoTest, UnbuiltRrIndexRefusesToSave) {
  const SocialNetwork n = MakeRunningExample();
  RrIndex index(n, SmallOptions());  // Build() not called
  std::stringstream file;
  std::string error;
  EXPECT_FALSE(SaveRrIndex(index, file, &error));
  EXPECT_FALSE(error.empty());
}

TEST(IndexIoTest, WrongNetworkRejected) {
  const SocialNetwork n = MakeRunningExample();
  RrIndex index(n, SmallOptions());
  index.Build();
  std::stringstream file;
  ASSERT_TRUE(SaveRrIndex(index, file));

  const SocialNetwork other = MakeOtherNetwork();
  std::string error;
  EXPECT_EQ(LoadRrIndex(other, file, &error), nullptr);
  EXPECT_NE(error.find("different network"), std::string::npos) << error;
}

TEST(IndexIoTest, KindMismatchRejected) {
  const SocialNetwork n = MakeRunningExample();
  DelayMatIndex delay(n, SmallOptions());
  delay.Build();
  std::stringstream file;
  ASSERT_TRUE(SaveDelayMatIndex(delay, file));

  std::string error;
  EXPECT_EQ(LoadRrIndex(n, file, &error), nullptr);
  EXPECT_NE(error.find("different index kind"), std::string::npos) << error;
}

TEST(IndexIoTest, GarbageRejected) {
  const SocialNetwork n = MakeRunningExample();
  std::stringstream file("this is not an index file at all");
  std::string error;
  EXPECT_EQ(LoadRrIndex(n, file, &error), nullptr);
  EXPECT_FALSE(error.empty());
}

TEST(IndexIoTest, TruncationRejected) {
  const SocialNetwork n = MakeRunningExample();
  RrIndex index(n, SmallOptions());
  index.Build();
  std::stringstream file;
  ASSERT_TRUE(SaveRrIndex(index, file));

  std::string bytes = file.str();
  for (const size_t keep :
       {bytes.size() - 7, bytes.size() / 2, bytes.size() / 4}) {
    std::stringstream truncated(bytes.substr(0, keep));
    std::string error;
    EXPECT_EQ(LoadRrIndex(n, truncated, &error), nullptr)
        << "kept " << keep << " of " << bytes.size() << " bytes";
  }
}

TEST(IndexIoTest, PayloadCorruptionRejected) {
  const SocialNetwork n = MakeRunningExample();
  RrIndex index(n, SmallOptions());
  index.Build();
  std::stringstream file;
  ASSERT_TRUE(SaveRrIndex(index, file));

  std::string bytes = file.str();
  // Flip a bit deep inside the payload (past header; before checksum).
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x01);
  std::stringstream corrupted(bytes);
  std::string error;
  EXPECT_EQ(LoadRrIndex(n, corrupted, &error), nullptr);
}

TEST(IndexIoTest, DelayMatRoundTripsExactly) {
  const SocialNetwork n = MakeRunningExample();
  DelayMatIndex index(n, SmallOptions());
  index.Build();

  std::stringstream file;
  std::string error;
  ASSERT_TRUE(SaveDelayMatIndex(index, file, &error)) << error;
  const auto loaded = LoadDelayMatIndex(n, file, &error);
  ASSERT_NE(loaded, nullptr) << error;

  EXPECT_EQ(loaded->theta(), index.theta());
  for (VertexId v = 0; v < n.num_vertices(); ++v) {
    EXPECT_EQ(loaded->CountContaining(v), index.CountContaining(v));
  }
  EXPECT_EQ(loaded->SizeBytes(), index.SizeBytes());
}

TEST(IndexIoTest, LoadedDelayMatEstimatesWithinTolerance) {
  const SocialNetwork n = MakeRunningExample();
  DelayMatIndex index(n, SmallOptions());
  index.Build();

  std::stringstream file;
  ASSERT_TRUE(SaveDelayMatIndex(index, file));
  auto loaded = LoadDelayMatIndex(n, file);
  ASSERT_NE(loaded, nullptr);

  // DelayMat recovers fresh graphs per query, so estimates are stochastic;
  // loaded counters must support estimation in the same accuracy regime.
  const TagId tags[] = {2, 3};
  const auto post = n.topics.Posterior(tags);
  const PosteriorProbs probs(n.influence, post);
  const Estimate original = index.EstimateInfluence(0, probs);
  const Estimate restored = loaded->EstimateInfluence(0, probs);
  EXPECT_NEAR(restored.influence, original.influence,
              0.25 * original.influence + 0.25);
}

TEST(IndexIoTest, UnbuiltDelayMatRefusesToSave) {
  const SocialNetwork n = MakeRunningExample();
  DelayMatIndex index(n, SmallOptions());
  std::stringstream file;
  std::string error;
  EXPECT_FALSE(SaveDelayMatIndex(index, file, &error));
  EXPECT_FALSE(error.empty());
}

TEST(IndexIoTest, FileRoundTripOnDisk) {
  DatasetSpec spec = LastfmSpec();
  spec.seed = 3;
  const SocialNetwork n = GenerateDataset(spec);
  RrIndexOptions options;
  options.theta_override = 2000;
  RrIndex index(n, options);
  index.Build();

  const std::string path = ::testing::TempDir() + "/lastfm.rridx";
  std::string error;
  ASSERT_TRUE(SaveRrIndex(index, path, &error)) << error;
  const auto loaded = LoadRrIndex(n, path, &error);
  ASSERT_NE(loaded, nullptr) << error;
  EXPECT_EQ(loaded->num_graphs(), index.num_graphs());
  std::remove(path.c_str());
}

TEST(IndexIoTest, MissingFileFailsCleanly) {
  const SocialNetwork n = MakeRunningExample();
  std::string error;
  EXPECT_EQ(LoadRrIndex(n, "/nonexistent/dir/file.rridx", &error), nullptr);
  EXPECT_NE(error.find("cannot open"), std::string::npos) << error;
}

// --- typed error codes (IndexIoError) ---------------------------------
//
// The string overloads tell a human what broke; the typed overloads tell
// a caller what to *do* (retry / rebuild / fix the call). Each failure
// class must map to exactly one stable code.

// Encodes just a file header; payload absent. Enough to drive every
// header-validation path deterministically.
std::string EncodeHeader(uint32_t version, uint8_t kind,
                         uint64_t fingerprint, double eps, double delta,
                         uint64_t cap_k) {
  std::stringstream out;
  BinaryWriter writer(&out);
  writer.WriteString("PITEXIDX");
  writer.WriteU32(version);
  writer.WriteU8(kind);
  writer.WriteU64(fingerprint);
  writer.WriteF64(eps);
  writer.WriteF64(delta);
  writer.WriteU64(cap_k);
  writer.WriteU64(11);  // seed
  return out.str();
}

IndexIoCode LoadRrCode(const SocialNetwork& n, const std::string& bytes) {
  std::stringstream in(bytes);
  IndexIoError error;
  EXPECT_EQ(LoadRrIndex(n, in, &error), nullptr);
  EXPECT_FALSE(error.ok());
  EXPECT_FALSE(error.message.empty());
  return error.code;
}

TEST(IndexIoTypedErrorTest, HeaderFailuresClassified) {
  const SocialNetwork n = MakeRunningExample();
  const uint64_t fp = NetworkFingerprint(n);
  constexpr uint8_t kRr = 1;

  EXPECT_EQ(LoadRrCode(n, "garbage bytes"), IndexIoCode::kBadMagic);
  EXPECT_EQ(LoadRrCode(n, EncodeHeader(99, kRr, fp, 0.1, 0.01, 8)),
            IndexIoCode::kBadVersion);
  EXPECT_EQ(LoadRrCode(n, EncodeHeader(2, 2, fp, 0.1, 0.01, 8)),
            IndexIoCode::kWrongKind);
  EXPECT_EQ(LoadRrCode(n, EncodeHeader(2, kRr, fp + 1, 0.1, 0.01, 8)),
            IndexIoCode::kFingerprintMismatch);

  // Option plausibility: NaN / non-positive accuracy knobs and absurd
  // cap_k are header corruption even when the framing parses.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(LoadRrCode(n, EncodeHeader(2, kRr, fp, nan, 0.01, 8)),
            IndexIoCode::kBadOptions);
  EXPECT_EQ(LoadRrCode(n, EncodeHeader(2, kRr, fp, 0.1, -1.0, 8)),
            IndexIoCode::kBadOptions);
  EXPECT_EQ(LoadRrCode(n, EncodeHeader(2, kRr, fp, 0.1, 0.01, 0)),
            IndexIoCode::kBadOptions);
  EXPECT_EQ(LoadRrCode(n, EncodeHeader(2, kRr, fp, 0.1, 0.01,
                                       uint64_t{1} << 30)),
            IndexIoCode::kBadOptions);

  // A header cut mid-options at end-of-stream reads as a torn write
  // (the file simply ends early -- the signature of a crashed
  // non-atomic save); kTruncated is reserved for streams with bytes
  // still behind the short read.
  const std::string header = EncodeHeader(2, kRr, fp, 0.1, 0.01, 8);
  EXPECT_EQ(LoadRrCode(n, header.substr(0, 40)), IndexIoCode::kTornWrite);
}

TEST(IndexIoTypedErrorTest, ChecksumMismatchClassified) {
  const SocialNetwork n = MakeRunningExample();
  RrIndex index(n, SmallOptions());
  index.Build();
  std::stringstream file;
  ASSERT_TRUE(SaveRrIndex(index, file));
  std::string bytes = file.str();
  // Flip a bit inside the stored trailing digest itself: the payload
  // parses, the verification must not.
  bytes.back() = static_cast<char>(bytes.back() ^ 0x01);
  EXPECT_EQ(LoadRrCode(n, bytes), IndexIoCode::kChecksumMismatch);
}

TEST(IndexIoTypedErrorTest, CallerBugsAndEnvironmentClassified) {
  const SocialNetwork n = MakeRunningExample();

  RrIndex unbuilt(n, SmallOptions());
  std::stringstream sink;
  IndexIoError error;
  EXPECT_FALSE(SaveRrIndex(unbuilt, sink, &error));
  EXPECT_EQ(error.code, IndexIoCode::kNotBuilt);
  EXPECT_FALSE(error.retryable());  // retrying cannot build the index

  EXPECT_EQ(LoadRrIndex(n, "/nonexistent/dir/file.rridx", &error), nullptr);
  EXPECT_EQ(error.code, IndexIoCode::kOpenFailed);
  EXPECT_TRUE(error.retryable());  // the environment, not the bytes
}

TEST(IndexIoTypedErrorTest, InjectedFaultsClassifiedRetryable) {
#if !PITEX_FAILPOINTS_ENABLED
  GTEST_SKIP() << "fail points compiled out (-DPITEX_FAILPOINTS=OFF)";
#endif
  FailpointRegistry::Instance().DisableAll();
  const SocialNetwork n = MakeRunningExample();
  RrIndex index(n, SmallOptions());
  index.Build();
  std::stringstream file;
  ASSERT_TRUE(SaveRrIndex(index, file));
  const std::string bytes = file.str();

  FailpointConfig config;
  config.mode = FailpointMode::kError;

  FailpointRegistry::Instance().Enable("index_io/save", config);
  std::stringstream sink;
  IndexIoError error;
  EXPECT_FALSE(SaveRrIndex(index, sink, &error));
  EXPECT_EQ(error.code, IndexIoCode::kFaultInjected);
  EXPECT_TRUE(error.retryable());
  FailpointRegistry::Instance().DisableAll();

  FailpointRegistry::Instance().Enable("index_io/load", config);
  std::stringstream in(bytes);
  EXPECT_EQ(LoadRrIndex(n, in, &error), nullptr);
  EXPECT_EQ(error.code, IndexIoCode::kFaultInjected);
  EXPECT_TRUE(error.retryable());
  FailpointRegistry::Instance().DisableAll();

  // With the faults cleared the very same bytes load fine: the typed
  // code told the truth about retryability.
  std::stringstream retry(bytes);
  EXPECT_NE(LoadRrIndex(n, retry, &error), nullptr);
}

TEST(IndexIoTypedErrorTest, TornWriteClassified) {
  // A valid prefix cut short at EOF is an interrupted writer, not bit
  // rot: the code must say "torn-write" so operators fall back to an
  // older file instead of suspecting the disk.
  const SocialNetwork n = MakeRunningExample();
  RrIndex index(n, SmallOptions());
  index.Build();
  std::stringstream file;
  ASSERT_TRUE(SaveRrIndex(index, file));
  const std::string bytes = file.str();

  std::stringstream torn(bytes.substr(0, bytes.size() - 5));
  IndexIoError error;
  EXPECT_EQ(LoadRrIndex(n, torn, &error), nullptr);
  EXPECT_EQ(error.code, IndexIoCode::kTornWrite);
  EXPECT_FALSE(error.retryable());  // the bytes are gone for good

  // Damage with bytes still behind it keeps its specific code: only a
  // clean cut AT end-of-file reads as a torn write.
  std::string flipped = bytes;
  flipped[bytes.size() / 2] ^= 0x01;
  std::stringstream corrupt(flipped);
  EXPECT_EQ(LoadRrIndex(n, corrupt, &error), nullptr);
  EXPECT_NE(error.code, IndexIoCode::kTornWrite);
}

TEST(IndexIoTypedErrorTest, PathSaveIsCrashAtomic) {
  // The path overload stages to *.tmp and renames: a failed save must
  // leave the previous file byte-identical and no temp orphan behind.
  const SocialNetwork n = MakeRunningExample();
  RrIndex index(n, SmallOptions());
  index.Build();
  const std::string path = ::testing::TempDir() + "/atomic.rridx";
  const std::string tmp = path + ".tmp";
  std::remove(path.c_str());
  std::remove(tmp.c_str());

  IndexIoError error;
  ASSERT_TRUE(SaveRrIndex(index, path, &error)) << error.message;
  EXPECT_FALSE(std::filesystem::exists(tmp)) << "temp file left behind";
  const auto before = std::filesystem::file_size(path);
  EXPECT_GT(before, 0u);

#if PITEX_FAILPOINTS_ENABLED
  FailpointRegistry::Instance().DisableAll();
  FailpointConfig config;
  config.mode = FailpointMode::kError;
  FailpointRegistry::Instance().Enable("index_io/save", config);
  EXPECT_FALSE(SaveRrIndex(index, path, &error));
  FailpointRegistry::Instance().DisableAll();
  EXPECT_FALSE(std::filesystem::exists(tmp)) << "orphan after failed save";
  EXPECT_EQ(std::filesystem::file_size(path), before)
      << "failed save disturbed the published file";
  EXPECT_NE(LoadRrIndex(n, path, &error), nullptr) << error.message;
#endif
  std::remove(path.c_str());
}

TEST(IndexIoTypedErrorTest, StringAndTypedOverloadsAgree) {
  const SocialNetwork n = MakeRunningExample();
  RrIndex index(n, SmallOptions());
  index.Build();
  std::stringstream file;
  ASSERT_TRUE(SaveRrIndex(index, file));
  const std::string bytes = file.str();

  const SocialNetwork other = MakeOtherNetwork();
  std::stringstream typed_in(bytes), string_in(bytes);
  IndexIoError typed;
  std::string message;
  EXPECT_EQ(LoadRrIndex(other, typed_in, &typed), nullptr);
  EXPECT_EQ(LoadRrIndex(other, string_in, &message), nullptr);
  EXPECT_EQ(typed.code, IndexIoCode::kFingerprintMismatch);
  EXPECT_EQ(typed.message, message);  // one implementation, two views
}

TEST(IndexIoTypedErrorTest, CodeNamesAreStable) {
  EXPECT_STREQ(IndexIoCodeName(IndexIoCode::kNone), "ok");
  EXPECT_STREQ(IndexIoCodeName(IndexIoCode::kChecksumMismatch),
               "checksum-mismatch");
  EXPECT_STREQ(IndexIoCodeName(IndexIoCode::kFaultInjected),
               "fault-injected");
  EXPECT_STREQ(IndexIoCodeName(IndexIoCode::kBadOptions), "bad-options");
  EXPECT_STREQ(IndexIoCodeName(IndexIoCode::kTornWrite), "torn-write");
}

}  // namespace
}  // namespace pitex
