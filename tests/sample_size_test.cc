#include "src/sampling/sample_size.h"

#include <gtest/gtest.h>

#include "src/util/chernoff.h"

namespace pitex {
namespace {

SampleSizePolicy Default() {
  SampleSizePolicy p;
  p.num_tags = 50;
  p.k = 3;
  return p;
}

TEST(SampleSizePolicyTest, ThresholdMatchesLambda) {
  SampleSizePolicy p = Default();
  EXPECT_NEAR(p.StoppingThreshold(), Lambda(p.eps, p.delta, 50, 3), 1e-9);
}

TEST(SampleSizePolicyTest, PhiVariantIsLarger) {
  SampleSizePolicy p = Default();
  SampleSizePolicy phi = p;
  phi.use_phi = true;
  EXPECT_GT(phi.StoppingThreshold(), p.StoppingThreshold());
}

TEST(SampleSizePolicyTest, CapScalesWithReachableSize) {
  SampleSizePolicy p = Default();
  p.max_samples = 1ull << 40;  // effectively uncapped
  const uint64_t small = p.SampleCap(10);
  const uint64_t large = p.SampleCap(1000);
  EXPECT_GT(large, small);
  EXPECT_NEAR(static_cast<double>(large) / static_cast<double>(small), 100.0,
              1.0);
}

TEST(SampleSizePolicyTest, CapRespectsBounds) {
  SampleSizePolicy p = Default();
  p.min_samples = 100;
  p.max_samples = 1000;
  EXPECT_EQ(p.SampleCap(0), 100u);   // clamped up
  EXPECT_EQ(p.SampleCap(1u << 30), 1000u);  // clamped down
}

TEST(SampleSizePolicyTest, SmallerEpsMoreSamples) {
  SampleSizePolicy loose = Default();
  loose.eps = 0.9;
  SampleSizePolicy tight = Default();
  tight.eps = 0.3;
  tight.max_samples = loose.max_samples = 1ull << 40;
  EXPECT_GT(tight.SampleCap(100), loose.SampleCap(100));
}

TEST(SampleSizePolicyTest, LargerDeltaMoreSamples) {
  SampleSizePolicy a = Default();
  a.delta = 10;
  SampleSizePolicy b = Default();
  b.delta = 10000;
  a.max_samples = b.max_samples = 1ull << 40;
  EXPECT_LT(a.SampleCap(100), b.SampleCap(100));
}

TEST(SampleSizePolicyDeathTest, RejectsInvalidEps) {
  SampleSizePolicy p = Default();
  p.eps = 0.0;
  EXPECT_DEATH(p.StoppingThreshold(), "PITEX_CHECK");
}

}  // namespace
}  // namespace pitex
