// Tests for the Table-2 analog generators: sizes, densities, degree
// skew, and user-group sampling.

#include <gtest/gtest.h>

#include "src/datasets/synthetic.h"

namespace pitex {
namespace {

TEST(DatasetSpecsTest, MatchTable2Shapes) {
  const DatasetSpec lastfm = LastfmSpec();
  EXPECT_EQ(lastfm.num_vertices, 1300u);
  EXPECT_EQ(lastfm.num_topics, 20u);
  EXPECT_EQ(lastfm.num_tags, 50u);

  const DatasetSpec diggs = DiggsSpec();
  EXPECT_EQ(diggs.num_vertices, 15000u);
  EXPECT_EQ(diggs.num_topics, 20u);

  const DatasetSpec dblp = DblpSpec(1.0);
  EXPECT_EQ(dblp.num_vertices, 500000u);
  EXPECT_EQ(dblp.num_topics, 9u);
  EXPECT_EQ(dblp.num_tags, 276u);

  const DatasetSpec twitter = TwitterSpec(1.0);
  EXPECT_EQ(twitter.num_vertices, 10000000u);
  EXPECT_EQ(twitter.num_topics, 50u);
  EXPECT_EQ(twitter.num_tags, 250u);
}

TEST(GenerateDatasetTest, EdgeCountNearTarget) {
  const DatasetSpec spec = LastfmSpec();
  const SocialNetwork n = GenerateDataset(spec);
  EXPECT_EQ(n.num_vertices(), spec.num_vertices);
  const double target =
      spec.avg_out_degree * static_cast<double>(spec.num_vertices);
  EXPECT_NEAR(static_cast<double>(n.num_edges()), target, 0.1 * target);
}

TEST(GenerateDatasetTest, DensityNearTarget) {
  for (const DatasetSpec& spec :
       {LastfmSpec(0.2), DiggsSpec(0.05), DblpSpec(0.01)}) {
    const SocialNetwork n = GenerateDataset(spec);
    EXPECT_NEAR(n.topics.Density(), spec.tag_topic_density,
                0.05 + 0.2 * spec.tag_topic_density)
        << spec.name;
  }
}

TEST(GenerateDatasetTest, EveryEdgeHasTopicsInRange) {
  const SocialNetwork n = GenerateDataset(LastfmSpec(0.2));
  for (EdgeId e = 0; e < n.num_edges(); ++e) {
    const auto topics = n.influence.EdgeTopics(e);
    ASSERT_FALSE(topics.empty());
    for (const auto& [z, p] : topics) {
      EXPECT_LT(z, n.topics.num_topics());
      EXPECT_GT(p, 0.0);
      EXPECT_LE(p, 1.0);
    }
  }
}

TEST(GenerateDatasetTest, TwitterAnalogIsSparse) {
  const SocialNetwork n = GenerateDataset(TwitterSpec(0.002));
  EXPECT_LT(n.graph.AverageDegree(), 2.0);
}

TEST(GenerateDatasetTest, InDegreesSkewed) {
  const SocialNetwork n = GenerateDataset(DiggsSpec(0.1));
  size_t max_in = 0;
  for (VertexId v = 0; v < n.num_vertices(); ++v) {
    max_in = std::max(max_in, n.graph.InDegree(v));
  }
  EXPECT_GT(static_cast<double>(max_in), 8.0 * n.graph.AverageDegree());
}

TEST(GenerateDatasetTest, DeterministicUnderSeed) {
  const SocialNetwork a = GenerateDataset(LastfmSpec(0.1));
  const SocialNetwork b = GenerateDataset(LastfmSpec(0.1));
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (EdgeId e = 0; e < a.num_edges(); ++e) {
    EXPECT_EQ(a.graph.Tail(e), b.graph.Tail(e));
    EXPECT_DOUBLE_EQ(a.influence.MaxProb(e), b.influence.MaxProb(e));
  }
}

TEST(GenerateDatasetTest, TagNamesInterned) {
  const SocialNetwork n = GenerateDataset(LastfmSpec(0.1));
  EXPECT_EQ(n.tags.size(), 50u);
  EXPECT_TRUE(n.tags.Find("lastfm_tag_0").has_value());
}

TEST(UserGroupTest, GroupsAreDisjointAndOrderedByDegree) {
  const SocialNetwork n = GenerateDataset(DiggsSpec(0.1));
  const auto high = SampleUserGroup(n.graph, UserGroup::kHigh, 20, 1);
  const auto mid = SampleUserGroup(n.graph, UserGroup::kMid, 20, 1);
  const auto low = SampleUserGroup(n.graph, UserGroup::kLow, 20, 1);
  ASSERT_FALSE(high.empty());
  ASSERT_FALSE(mid.empty());
  ASSERT_FALSE(low.empty());

  auto min_degree = [&](const std::vector<VertexId>& users) {
    size_t m = SIZE_MAX;
    for (VertexId u : users) m = std::min(m, n.graph.OutDegree(u));
    return m;
  };
  auto max_degree = [&](const std::vector<VertexId>& users) {
    size_t m = 0;
    for (VertexId u : users) m = std::max(m, n.graph.OutDegree(u));
    return m;
  };
  EXPECT_GE(min_degree(high), max_degree(mid));
  EXPECT_GE(min_degree(mid), max_degree(low));
}

TEST(UserGroupTest, AllSampledUsersHaveOutEdges) {
  const SocialNetwork n = GenerateDataset(TwitterSpec(0.002));
  for (UserGroup g : {UserGroup::kHigh, UserGroup::kMid, UserGroup::kLow}) {
    for (VertexId u : SampleUserGroup(n.graph, g, 50, 2)) {
      EXPECT_GT(n.graph.OutDegree(u), 0u);
    }
  }
}

TEST(UserGroupTest, SamplingIsDeterministic) {
  const SocialNetwork n = GenerateDataset(LastfmSpec(0.2));
  const auto a = SampleUserGroup(n.graph, UserGroup::kMid, 10, 7);
  const auto b = SampleUserGroup(n.graph, UserGroup::kMid, 10, 7);
  EXPECT_EQ(a, b);
}

TEST(UserGroupTest, NamesStable) {
  EXPECT_STREQ(UserGroupName(UserGroup::kHigh), "high");
  EXPECT_STREQ(UserGroupName(UserGroup::kMid), "mid");
  EXPECT_STREQ(UserGroupName(UserGroup::kLow), "low");
}

}  // namespace
}  // namespace pitex
