#include "src/model/action_log.h"

#include <set>
#include <unordered_map>

#include <gtest/gtest.h>

#include "running_example.h"
#include "src/datasets/synthetic.h"

namespace pitex {
namespace {

TEST(ActionLogTest, CascadesHaveSeedsAtStepZero) {
  SocialNetwork n = MakeRunningExample();
  Rng rng(1);
  const ActionLog log = SimulateCascades(n, {.num_cascades = 50}, &rng);
  ASSERT_EQ(log.cascades.size(), 50u);
  for (const auto& c : log.cascades) {
    ASSERT_FALSE(c.activations.empty());
    EXPECT_EQ(c.activations.front().second, 0u);  // seed at step 0
  }
}

TEST(ActionLogTest, TagsAreDistinctAndSorted) {
  SocialNetwork n = MakeRunningExample();
  Rng rng(2);
  const ActionLog log =
      SimulateCascades(n, {.num_cascades = 100, .tags_per_item = 2}, &rng);
  for (const auto& c : log.cascades) {
    EXPECT_EQ(c.item_tags.size(), 2u);
    EXPECT_LT(c.item_tags[0], c.item_tags[1]);
  }
}

TEST(ActionLogTest, ActivationsFollowEdges) {
  // Every non-seed activation must have an in-neighbor activated at the
  // previous step.
  SocialNetwork n = MakeRunningExample();
  Rng rng(3);
  const ActionLog log = SimulateCascades(n, {.num_cascades = 200}, &rng);
  for (const auto& c : log.cascades) {
    std::unordered_map<VertexId, uint32_t> step_of;
    for (const auto& [v, s] : c.activations) step_of[v] = s;
    for (const auto& [v, s] : c.activations) {
      if (s == 0) continue;
      bool has_parent = false;
      for (const auto& [w, e] : n.graph.InEdges(v)) {
        auto it = step_of.find(w);
        if (it != step_of.end() && it->second == s - 1) {
          has_parent = true;
          break;
        }
      }
      EXPECT_TRUE(has_parent) << "orphan activation";
    }
  }
}

TEST(ActionLogTest, NoDuplicateActivations) {
  SocialNetwork n = MakeRunningExample();
  Rng rng(4);
  const ActionLog log = SimulateCascades(n, {.num_cascades = 200}, &rng);
  for (const auto& c : log.cascades) {
    std::set<VertexId> seen;
    for (const auto& [v, s] : c.activations) {
      EXPECT_TRUE(seen.insert(v).second) << "duplicate activation of " << v;
    }
  }
}

TEST(ActionLogTest, TotalActivationsCountsAll) {
  SocialNetwork n = MakeRunningExample();
  Rng rng(5);
  const ActionLog log = SimulateCascades(n, {.num_cascades = 30}, &rng);
  size_t manual = 0;
  for (const auto& c : log.cascades) manual += c.activations.size();
  EXPECT_EQ(log.TotalActivations(), manual);
  EXPECT_GE(log.TotalActivations(), 30u);  // at least the seeds
}

TEST(ActionLogTest, AverageCascadeSizeTracksInfluence) {
  // On a dataset with non-trivial probabilities, cascades must propagate
  // beyond the seed reasonably often.
  SocialNetwork n = GenerateDataset(LastfmSpec(0.1));
  Rng rng(6);
  const ActionLog log = SimulateCascades(n, {.num_cascades = 500}, &rng);
  EXPECT_GT(log.TotalActivations(), 505u);
}

}  // namespace
}  // namespace pitex
