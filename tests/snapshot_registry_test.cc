// Tests for epoch-swapped index snapshots (src/serve/snapshot_registry.h):
// publish/swap semantics, refcount reclamation of retired epochs, and the
// DynamicRrIndex freeze path (FromDynamic must estimate identically to
// the master it was packed from).

#include "src/serve/snapshot_registry.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "running_example.h"
#include "src/index/rr_index.h"

namespace pitex {
namespace {

RrIndexOptions DenseOptions() {
  RrIndexOptions options;
  options.theta_override = 4000;
  options.seed = 11;
  return options;
}

TEST(SnapshotRegistryTest, PublishSwapsCurrentAndBumpsEpoch) {
  const SocialNetwork n = MakeRunningExample();
  IndexSnapshotRegistry registry;
  EXPECT_EQ(registry.Current(), nullptr);
  EXPECT_EQ(registry.current_epoch(), 0u);

  registry.Publish(IndexSnapshot::Wrap(&n, nullptr, "", 1));
  EXPECT_EQ(registry.current_epoch(), 1u);
  registry.Publish(IndexSnapshot::Wrap(&n, nullptr, "", 2));
  EXPECT_EQ(registry.current_epoch(), 2u);
  EXPECT_EQ(registry.epochs_published(), 2u);
  EXPECT_EQ(&registry.Current()->network(), &n);
}

TEST(SnapshotRegistryTest, RetiredEpochLivesWhilePinnedThenReclaims) {
  const SocialNetwork n = MakeRunningExample();
  IndexSnapshotRegistry registry;
  registry.Publish(IndexSnapshot::Wrap(&n, nullptr, "", 1));

  // An in-flight query pins epoch 1.
  std::shared_ptr<const IndexSnapshot> pinned = registry.Current();
  registry.Publish(IndexSnapshot::Wrap(&n, nullptr, "", 2));

  // The old epoch is retired but must stay alive for its reader.
  EXPECT_EQ(registry.AliveSnapshots(), 1u);
  EXPECT_EQ(pinned->epoch(), 1u);
  EXPECT_EQ(registry.Current()->epoch(), 2u);

  // Reader finishes: epoch 1 reclaims itself.
  pinned.reset();
  EXPECT_EQ(registry.AliveSnapshots(), 0u);
}

TEST(SnapshotRegistryTest, FromDynamicMatchesMasterEstimates) {
  const SocialNetwork n = MakeRunningExample();
  DynamicRrIndex master(n, DenseOptions());
  master.Build();

  // Drift the model, then freeze.
  std::vector<EdgeInfluenceUpdate> updates(2);
  updates[0].edge = 2;
  updates[0].entries = {{0, 0.9}};
  updates[1].edge = 4;
  updates[1].entries = {{2, 0.1}};
  master.ApplyUpdates(updates);

  const auto snapshot = IndexSnapshot::FromDynamic(master, 3);
  ASSERT_NE(snapshot->rr_index(), nullptr);
  EXPECT_EQ(snapshot->epoch(), 3u);
  EXPECT_EQ(snapshot->rr_index()->theta(), master.theta());
  EXPECT_EQ(snapshot->rr_index()->num_graphs(), master.num_graphs());
  // The frozen network is a copy carrying the post-update model, not the
  // construction-time network.
  EXPECT_NE(&snapshot->network(), &n);
  EXPECT_NE(&snapshot->network(), &master.network());

  // The packed replica must estimate exactly what the master estimates:
  // same sketches, same containing sets, same estimator arithmetic.
  const TagId tags[] = {2, 3};
  const auto posterior = snapshot->network().topics.Posterior(tags);
  const PosteriorProbs probs(snapshot->network().influence, posterior);
  const PosteriorProbs master_probs(master.network().influence, posterior);
  for (VertexId u = 0; u < n.num_vertices(); ++u) {
    const Estimate frozen = snapshot->rr_index()->EstimateInfluence(u, probs);
    const Estimate live = master.EstimateInfluence(u, master_probs);
    EXPECT_DOUBLE_EQ(frozen.influence, live.influence) << "user " << u;
    EXPECT_EQ(frozen.samples, live.samples) << "user " << u;
  }

  // Snapshots are independent of the master's continued evolution.
  std::vector<EdgeInfluenceUpdate> more(1);
  more[0].edge = 0;
  master.ApplyUpdates(more);
  const Estimate still_frozen = snapshot->rr_index()->EstimateInfluence(0, probs);
  const Estimate frozen_again = snapshot->rr_index()->EstimateInfluence(0, probs);
  EXPECT_DOUBLE_EQ(still_frozen.influence, frozen_again.influence);
}

TEST(SnapshotRegistryTest, FromPoolRoundTripsSketches) {
  const SocialNetwork n = MakeRunningExample();
  DynamicRrIndex master(n, DenseOptions());
  master.Build();
  const auto snapshot = IndexSnapshot::FromDynamic(master, 1);
  // Spot-check sketch-level equality between master and packed replica.
  ASSERT_EQ(snapshot->rr_index()->num_graphs(), master.num_graphs());
  for (size_t i = 0; i < master.num_graphs(); i += 97) {
    const RRView packed = snapshot->rr_index()->graph(i);
    const RRGraph& original = master.graph(i);
    EXPECT_EQ(packed.root, original.root);
    ASSERT_EQ(packed.vertices.size(), original.vertices.size());
    for (size_t v = 0; v < packed.vertices.size(); ++v) {
      EXPECT_EQ(packed.vertices[v], original.vertices[v]);
    }
    ASSERT_EQ(packed.edges.size(), original.edges.size());
  }
}

}  // namespace
}  // namespace pitex
