// Integration tests for PitexEngine: every method answers the running
// example correctly, index methods require/build their index, and the
// direct-estimation API agrees with the exact oracle.

#include <gtest/gtest.h>

#include "running_example.h"
#include "src/core/engine.h"
#include "src/sampling/exact.h"

namespace pitex {
namespace {

EngineOptions BaseOptions(Method method) {
  EngineOptions options;
  options.method = method;
  options.eps = 0.2;
  options.min_samples = 4000;
  options.max_samples = 20000;
  options.index_theta_per_vertex = 4000.0;  // dense index for a 7-vertex toy
  options.seed = 3;
  return options;
}

class EngineMethodTest : public testing::TestWithParam<Method> {};

INSTANTIATE_TEST_SUITE_P(
    AllMethods, EngineMethodTest,
    testing::Values(Method::kMc, Method::kRr, Method::kLazy,
                    Method::kIndexEst, Method::kIndexEstPlus,
                    Method::kDelayMat),
    [](const testing::TestParamInfo<Method>& param_info) {
      std::string name = MethodName(param_info.param);
      const size_t plus = name.find('+');
      if (plus != std::string::npos) name.replace(plus, 1, "PLUS");
      return name;
    });

TEST_P(EngineMethodTest, SolvesRunningExample) {
  SocialNetwork n = MakeRunningExample();
  PitexEngine engine(&n, BaseOptions(GetParam()));
  engine.BuildIndex();
  const PitexResult r = engine.Explore({.user = 0, .k = 2});
  EXPECT_EQ(r.tags, (std::vector<TagId>{2, 3}))
      << MethodName(GetParam());
  EXPECT_NEAR(r.influence, 1.733, 0.12) << MethodName(GetParam());
  EXPECT_GT(r.seconds, 0.0);
}

TEST_P(EngineMethodTest, EstimateInfluenceMatchesExact) {
  SocialNetwork n = MakeRunningExample();
  PitexEngine engine(&n, BaseOptions(GetParam()));
  engine.BuildIndex();
  const TagId tags[] = {0, 1};
  const Estimate est = engine.EstimateInfluence(0, tags);
  EXPECT_NEAR(est.influence, 1.5125, 0.1) << MethodName(GetParam());
}

TEST_P(EngineMethodTest, EnumerationModeAgreesWithBestEffort) {
  SocialNetwork n = MakeRunningExample();
  EngineOptions options = BaseOptions(GetParam());
  options.best_effort = false;
  PitexEngine plain(&n, options);
  plain.BuildIndex();
  const PitexResult r = plain.Explore({.user = 0, .k = 2});
  EXPECT_EQ(r.tags, (std::vector<TagId>{2, 3}));
  EXPECT_EQ(r.sets_evaluated, 6u);  // no pruning in enumeration mode
}

TEST(EngineTest, TimMethodRunsAndRanksReasonably) {
  // TIM has no guarantee, but on the running example (a tree for every tag
  // set) its path-based estimate is exact enough to find the optimum.
  SocialNetwork n = MakeRunningExample();
  EngineOptions options = BaseOptions(Method::kTim);
  options.tim.path_threshold = 0.001;
  PitexEngine engine(&n, options);
  const PitexResult r = engine.Explore({.user = 0, .k = 2});
  EXPECT_EQ(r.tags, (std::vector<TagId>{2, 3}));
}

TEST(EngineTest, IndexMethodsReportSizeAndBuildTime) {
  SocialNetwork n = MakeRunningExample();
  PitexEngine online(&n, BaseOptions(Method::kLazy));
  online.BuildIndex();
  EXPECT_EQ(online.IndexSizeBytes(), 0u);
  EXPECT_EQ(online.IndexBuildSeconds(), 0.0);

  PitexEngine indexed(&n, BaseOptions(Method::kIndexEst));
  indexed.BuildIndex();
  EXPECT_GT(indexed.IndexSizeBytes(), 0u);
  EXPECT_GE(indexed.IndexBuildSeconds(), 0.0);

  PitexEngine delayed(&n, BaseOptions(Method::kDelayMat));
  delayed.BuildIndex();
  EXPECT_GT(delayed.IndexSizeBytes(), 0u);
  EXPECT_LT(delayed.IndexSizeBytes(), indexed.IndexSizeBytes());
}

TEST(EngineTest, BuildIndexIsIdempotent) {
  SocialNetwork n = MakeRunningExample();
  PitexEngine engine(&n, BaseOptions(Method::kIndexEst));
  engine.BuildIndex();
  const size_t size = engine.IndexSizeBytes();
  engine.BuildIndex();  // no-op
  EXPECT_EQ(engine.IndexSizeBytes(), size);
}

TEST(EngineTest, LtMethodSolvesRunningExample) {
  // The LT extension plugs into the same engine; on the running example
  // the live graphs are trees, where LT and IC spreads coincide, so the
  // optimum is still {w3, w4}.
  SocialNetwork n = MakeRunningExample();
  PitexEngine engine(&n, BaseOptions(Method::kLt));
  const PitexResult r = engine.Explore({.user = 0, .k = 2});
  EXPECT_EQ(r.tags, (std::vector<TagId>{2, 3}));
  EXPECT_NEAR(r.influence, 1.733, 0.12);
}

TEST(EngineTest, MethodNamesMatchPaper) {
  EXPECT_STREQ(MethodName(Method::kMc), "MC");
  EXPECT_STREQ(MethodName(Method::kRr), "RR");
  EXPECT_STREQ(MethodName(Method::kLazy), "LAZY");
  EXPECT_STREQ(MethodName(Method::kTim), "TIM");
  EXPECT_STREQ(MethodName(Method::kIndexEst), "INDEXEST");
  EXPECT_STREQ(MethodName(Method::kIndexEstPlus), "INDEXEST+");
  EXPECT_STREQ(MethodName(Method::kDelayMat), "DELAYMAT");
}

TEST(EngineTest, VaryingKReusesEngine) {
  SocialNetwork n = MakeRunningExample();
  PitexEngine engine(&n, BaseOptions(Method::kLazy));
  for (size_t k = 1; k <= 3; ++k) {
    const PitexResult r = engine.Explore({.user = 0, .k = k});
    EXPECT_EQ(r.tags.size(), k);
  }
}

TEST(EngineDeathTest, IndexMethodWithoutBuildDies) {
  SocialNetwork n = MakeRunningExample();
  PitexEngine engine(&n, BaseOptions(Method::kIndexEst));
  EXPECT_DEATH(engine.Explore({.user = 0, .k = 2}), "BuildIndex");
}

TEST(EngineTest, ExploreTopNRanksAndContainsArgmax) {
  SocialNetwork n = MakeRunningExample();
  PitexEngine engine(&n, BaseOptions(Method::kIndexEst));
  engine.BuildIndex();

  const PitexQuery query{.user = 0, .k = 2};
  const PitexResult best = engine.Explore(query);
  const auto top = engine.ExploreTopN(query, 3);
  ASSERT_EQ(top.size(), 3u);
  // Descending influence; the argmax heads the list.
  EXPECT_EQ(top[0].tags, best.tags);
  EXPECT_GE(top[0].influence, top[1].influence);
  EXPECT_GE(top[1].influence, top[2].influence);
  // Distinct sets.
  EXPECT_NE(top[0].tags, top[1].tags);
  EXPECT_NE(top[1].tags, top[2].tags);
}

TEST(EngineTest, AdoptedDelayMatServesQueries) {
  SocialNetwork n = MakeRunningExample();
  const EngineOptions options = BaseOptions(Method::kDelayMat);

  RrIndexOptions index_options;
  index_options.theta_per_vertex = options.index_theta_per_vertex;
  index_options.seed = options.seed;
  auto index = std::make_unique<DelayMatIndex>(n, index_options);
  index->Build();

  PitexEngine engine(&n, options);
  engine.AdoptDelayMatIndex(std::move(index));
  engine.BuildIndex();  // attaches, builds nothing
  const PitexResult r = engine.Explore({.user = 0, .k = 2});
  EXPECT_EQ(r.tags.size(), 2u);
  EXPECT_GE(r.influence, 1.0);
}

}  // namespace
}  // namespace pitex
